// E10 — Erasure-coded storage (paper section 4.4).
//
// Claim: replacing replicas by Rabin IDA pieces cuts the stored bytes from
// Theta(log n) * |I| to a constant-factor blowup L/K while the committee
// machinery keeps >= K pieces alive across handovers.
//
// Measurement: replication vs IDA across a churn sweep and a surplus sweep:
// bytes stored network-wide per item, persistence, and retrieval success.
#include "common.h"

using namespace churnstore;
using namespace churnstore::bench;

namespace {

struct ErasureRow {
  double stored_bytes = 0.0;
  double persist = 0.0;
  double fetch_rate = 0.0;
};

ErasureRow run_once(std::uint32_t n, double cm, bool erasure,
                    std::uint32_t surplus, std::uint64_t seed) {
  SystemConfig cfg = default_system_config(n, seed);
  cfg.sim.churn.multiplier = cm;
  cfg.protocol.use_erasure_coding = erasure;
  cfg.protocol.ida_surplus = surplus;
  cfg.protocol.item_bits = 8192;
  P2PSystem sys(cfg);
  sys.run_rounds(sys.warmup_rounds());
  const ItemId item = 0xE0;
  for (int i = 0; i < 20 && !sys.store_item(3, item); ++i) sys.run_round();
  sys.run_rounds(2 * sys.tau());

  std::size_t bytes = 0;
  for (Vertex v = 0; v < sys.n(); ++v) {
    if (const Membership* m = sys.committees().membership_at(v, item)) {
      bytes += m->payload.size();
    }
  }

  // Age through several handovers, then search from survivors.
  sys.run_rounds(6 * sys.committees().refresh_period());
  ErasureRow row;
  row.stored_bytes = static_cast<double>(bytes);
  row.persist = sys.store().is_recoverable(item) ? 1.0 : 0.0;

  Rng rng(seed ^ 5);
  std::uint32_t ok = 0, eligible = 0;
  std::vector<std::uint64_t> sids;
  for (int s = 0; s < 6; ++s) {
    sids.push_back(
        sys.search(static_cast<Vertex>(rng.next_below(sys.n())), item));
  }
  sys.run_rounds(sys.search_timeout() + 4);
  for (const auto sid : sids) {
    const SearchStatus* st = sys.search_status(sid);
    if (!st || (st->initiator_churned && !st->succeeded_locate())) continue;
    ++eligible;
    ok += st->succeeded_fetch();
  }
  row.fetch_rate = eligible ? static_cast<double>(ok) / eligible : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto args = BenchArgs::parse(cli, {512}, 2);

  banner("E10 bench_erasure — IDA vs replication (section 4.4)",
         "stored bytes per item drop from Theta(log n)*|I| to ~L/K * |I| "
         "while persistence and retrieval stay intact");

  Table t({"mode", "n", "churn/rd", "surplus", "stored bytes", "x item size",
           "persisted", "fetch rate"});
  const double item_bytes = 8192.0 / 8.0;
  for (const auto n64 : args.n_list) {
    const auto n = static_cast<std::uint32_t>(n64);
    for (const double cm : {0.25, args.churn_mult}) {
      ChurnSpec spec;
      spec.kind = AdversaryKind::kUniform;
      spec.k = 1.5;
      spec.multiplier = cm;
      const auto churn_rd = static_cast<std::int64_t>(spec.per_round(n));
      // Replication reference.
      {
        RunningStat bytes, persist, fetch;
        for (std::uint32_t trial = 0; trial < args.trials; ++trial) {
          const auto r = run_once(n, cm, false, 3,
                                  mix64(args.seed + trial * 71 + n));
          bytes.add(r.stored_bytes);
          persist.add(r.persist);
          fetch.add(r.fetch_rate);
        }
        t.begin_row()
            .cell("replication")
            .cell(static_cast<std::int64_t>(n))
            .cell(churn_rd)
            .cell("-")
            .cell(bytes.mean(), 0)
            .cell(bytes.mean() / item_bytes, 2)
            .cell(persist.mean(), 2)
            .cell(fetch.mean(), 2);
      }
      for (const std::uint32_t surplus : {2u, 3u, 4u}) {
        RunningStat bytes, persist, fetch;
        for (std::uint32_t trial = 0; trial < args.trials; ++trial) {
          const auto r = run_once(n, cm, true, surplus,
                                  mix64(args.seed + trial * 71 + n));
          bytes.add(r.stored_bytes);
          persist.add(r.persist);
          fetch.add(r.fetch_rate);
        }
        t.begin_row()
            .cell("ida")
            .cell(static_cast<std::int64_t>(n))
            .cell(churn_rd)
            .cell(static_cast<std::int64_t>(surplus))
            .cell(bytes.mean(), 0)
            .cell(bytes.mean() / item_bytes, 2)
            .cell(persist.mean(), 2)
            .cell(fetch.mean(), 2);
      }
    }
  }
  emit(t, args.csv);
  return 0;
}
