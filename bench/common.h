// Shared plumbing for the experiment benches (DESIGN.md E1-E13).
//
// Every bench accepts --n=..., --trials=..., --churn-mult=..., --seed=...
// (or CHURNSTORE_* environment variables) so the whole suite can be scaled
// up or down without editing code. Each bench prints the table recorded in
// EXPERIMENTS.md; pass --csv for machine-readable output.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "core/experiment.h"
#include "core/system.h"
#include "util/cli.h"
#include "util/table.h"

namespace churnstore::bench {

struct BenchArgs {
  std::vector<std::int64_t> n_list;
  std::uint32_t trials;
  double churn_mult;
  std::uint64_t seed;
  bool csv;

  static BenchArgs parse(const Cli& cli, std::vector<std::int64_t> default_n,
                         std::uint32_t default_trials = 2) {
    BenchArgs a;
    a.n_list = cli.get_int_list("n", std::move(default_n));
    a.trials = static_cast<std::uint32_t>(
        cli.get_int("trials", default_trials));
    a.churn_mult = cli.get_double("churn-mult", 0.5);
    a.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    a.csv = cli.get_bool("csv", false);
    return a;
  }
};

inline void emit(const Table& table, bool csv) {
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

inline void banner(const std::string& experiment, const std::string& claim) {
  std::printf("== %s ==\n%s\n\n", experiment.c_str(), claim.c_str());
}

}  // namespace churnstore::bench
