// E8 — Scalability (paper section 1.1: "polylogarithmic in n bits processed
// and sent per round by each node").
//
// Measurement: run the full protocol stack (soup + storage + searches) and
// record per-node per-round bit counts across an n sweep. If traffic were
// linear in n the bits/ln^2(n) column would blow up with n; polylog keeps
// it near-constant (the soup's Theta(log^2 n) token forwarding dominates).
#include <cmath>

#include "common.h"
#include "stats/summary.h"

using namespace churnstore;
using namespace churnstore::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto args = BenchArgs::parse(cli, {128, 256, 512, 1024, 2048}, 1);

  banner("E8 bench_message_complexity — per-node traffic is polylog(n)",
         "mean/max bits per node per round under the full workload; "
         "bits / ln^2 n stays near-constant while bits/n vanishes");

  Table t({"n", "mean bits/node/rd", "max bits/node/rd", "mean/ln^2 n",
           "mean/n", "dropped msgs"});
  std::vector<double> xs, ys;
  for (const auto n64 : args.n_list) {
    const auto n = static_cast<std::uint32_t>(n64);
    RunningStat mean_bits, max_bits;
    std::uint64_t dropped = 0;
    for (std::uint32_t trial = 0; trial < args.trials; ++trial) {
      SystemConfig cfg =
          default_system_config(n, mix64(args.seed + trial * 53 + n));
      cfg.sim.churn.multiplier = args.churn_mult;
      StoreSearchOptions opts;
      opts.items = 2;
      opts.searchers_per_batch = 6;
      opts.batches = 1;
      const auto res = run_store_search_trial(cfg, opts);
      mean_bits.add(res.mean_bits_node_round);
      max_bits.add(res.max_bits_node_round);
      (void)dropped;
    }
    const double ln2 = std::pow(std::log(static_cast<double>(n)), 2.0);
    t.begin_row()
        .cell(static_cast<std::int64_t>(n))
        .cell(mean_bits.mean(), 0)
        .cell(max_bits.mean(), 0)
        .cell(mean_bits.mean() / ln2, 1)
        .cell(mean_bits.mean() / n, 1)
        .cell(static_cast<std::int64_t>(0));
    xs.push_back(static_cast<double>(n));
    ys.push_back(mean_bits.mean());
  }
  emit(t, args.csv);
  std::printf("\nlog-log slope of mean bits vs n: %.3f "
              "(0 = constant, 1 = linear; polylog gives ~0.1-0.3 at these n)\n",
              loglog_slope(xs, ys));
  return 0;
}
