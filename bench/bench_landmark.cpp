// E5 — Landmark set size (paper Lemma 8).
//
// Claim: the landmark trees built by a committee contain between sqrt(n)
// and O(n^{0.5+delta} log n) nodes, near-uniformly distributed over the
// Core.
//
// Measurement: peak live landmark count across an n sweep, compared to
// sqrt(n) and n^{0.75} ln n; the log-log slope of the count against n
// should sit in [0.5, 0.75].
#include <cmath>

#include "common.h"
#include "stats/summary.h"

using namespace churnstore;
using namespace churnstore::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto args = BenchArgs::parse(cli, {256, 512, 1024, 2048, 4096}, 2);

  banner("E5 bench_landmark — landmark set size (Lemma 8)",
         "sqrt(n) <= |M_I| <= O(n^{0.5+delta} log n); log-log slope of the "
         "landmark count vs n should land in [0.5, 0.75]");

  Table t({"n", "tree depth", "peak landmarks", "mean landmarks", "sqrt(n)",
           "n^0.75*ln n", "peak/sqrt(n)"});
  std::vector<double> xs, ys;
  for (const auto n64 : args.n_list) {
    const auto n = static_cast<std::uint32_t>(n64);
    RunningStat peak, mean;
    std::uint32_t depth = 0;
    for (std::uint32_t trial = 0; trial < args.trials; ++trial) {
      SystemConfig cfg =
          default_system_config(n, mix64(args.seed + trial * 31 + n));
      cfg.sim.churn.multiplier = args.churn_mult;
      P2PSystem sys(cfg);
      depth = sys.landmarks().tree_depth();
      sys.run_rounds(sys.warmup_rounds());
      for (int i = 0; i < 20 && !sys.store_item(0, 1); ++i) sys.run_round();
      // Observe across two refresh cycles after the first wave completes.
      sys.run_rounds(depth + 3);
      std::size_t mx = 0;
      RunningStat trace;
      for (std::uint32_t r = 0; r < 2 * sys.committees().refresh_period();
           ++r) {
        sys.run_round();
        const std::size_t live = sys.landmarks().live_count(1);
        mx = std::max(mx, live);
        trace.add(static_cast<double>(live));
      }
      peak.add(static_cast<double>(mx));
      mean.add(trace.mean());
    }
    const double sqrt_n = std::sqrt(static_cast<double>(n));
    const double upper =
        std::pow(static_cast<double>(n), 0.75) * std::log(n);
    t.begin_row()
        .cell(static_cast<std::int64_t>(n))
        .cell(static_cast<std::int64_t>(depth))
        .cell(peak.mean(), 1)
        .cell(mean.mean(), 1)
        .cell(sqrt_n, 1)
        .cell(upper, 1)
        .cell(peak.mean() / sqrt_n, 2);
    xs.push_back(static_cast<double>(n));
    ys.push_back(peak.mean());
  }
  emit(t, args.csv);
  std::printf("\nlog-log slope of peak landmarks vs n: %.3f "
              "(Lemma 8 predicts within [0.5, 0.75])\n",
              loglog_slope(xs, ys));
  return 0;
}
