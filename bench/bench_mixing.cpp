// E2 — Dynamic mixing (paper Lemma 1).
//
// Claim: on a dynamic d-regular expander (edges changing every round, no
// churn), a walk of T = Theta(log n) steps lands within [1/2n, 3/2n] of
// every node, and all walks complete T steps within tau = O(log n) rounds.
//
// Measurement: many probe walks from a SINGLE source (injected in batches
// under the forwarding cap), sweeping the walk length and the edge-dynamics
// mode. The per-source destination TVD collapses once T crosses ~2.5 ln n
// for d = 8 — identically for static, rewired, and regenerated topologies,
// which is exactly the "dynamic mixing time" claim.
#include <vector>

#include "common.h"
#include "net/network.h"
#include "stats/divergence.h"
#include "walk/token_soup.h"

using namespace churnstore;
using namespace churnstore::bench;

namespace {

UniformityReport measure(std::uint32_t n, EdgeDynamics dynamics,
                         double t_mult, std::uint64_t seed,
                         std::uint32_t total_probes) {
  SimConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.churn.kind = AdversaryKind::kNone;
  cfg.edge_dynamics = dynamics;
  Network net(cfg);
  WalkConfig wc;
  wc.t_mult = t_mult;
  TokenSoup soup(net, wc);
  soup.set_spawning(false);

  std::vector<std::uint64_t> arrivals(n, 0);
  std::uint64_t done = 0;
  soup.set_probe_hook(
      [&](std::uint64_t, Vertex d, Round) { ++arrivals[d]; ++done; });

  // Inject from vertex 0 in batches of cap/2 per round so nothing queues,
  // then drain.
  const std::uint32_t batch = std::max(1u, soup.cap() / 2);
  std::uint32_t injected = 0;
  while (done < total_probes) {
    net.begin_round();
    for (std::uint32_t i = 0; i < batch && injected < total_probes; ++i) {
      soup.inject_probe(0, 0, soup.walk_length());
      ++injected;
    }
    soup.step();
    net.deliver();
  }
  return uniformity_report(arrivals);
}

const char* mode_name(EdgeDynamics d) {
  switch (d) {
    case EdgeDynamics::kStatic: return "static";
    case EdgeDynamics::kRewire: return "rewire";
    case EdgeDynamics::kRegenerate: return "regenerate";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto args = BenchArgs::parse(cli, {1024}, 1);
  const auto probes =
      static_cast<std::uint32_t>(cli.get_int("probes", 40000));

  banner("E2 bench_mixing — dynamic mixing time (Lemma 1)",
         "single-source destination TVD vs walk length, per edge-dynamics "
         "mode; T ~ 2.5 ln n suffices on every mode (mixing is Theta(log n))");

  Table t({"n", "mode", "T (steps)", "T/ln n", "tvd", "min p*n", "max p*n",
           "zero frac"});
  for (const auto n64 : args.n_list) {
    const auto n = static_cast<std::uint32_t>(n64);
    for (const EdgeDynamics mode :
         {EdgeDynamics::kStatic, EdgeDynamics::kRewire,
          EdgeDynamics::kRegenerate}) {
      for (const double tm : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
        RunningStat tvd, min_pn, max_pn, zero;
        std::uint32_t steps = 0;
        for (std::uint32_t trial = 0; trial < args.trials; ++trial) {
          WalkConfig wc;
          wc.t_mult = tm;
          steps = walk_length(n, wc);
          const auto rep =
              measure(n, mode, tm, mix64(args.seed + trial + n), probes);
          tvd.add(rep.tvd);
          min_pn.add(rep.min_prob_times_n);
          max_pn.add(rep.max_prob_times_n);
          zero.add(rep.zero_fraction);
        }
        t.begin_row()
            .cell(static_cast<std::int64_t>(n))
            .cell(mode_name(mode))
            .cell(static_cast<std::int64_t>(steps))
            .cell(tm, 1)
            .cell(tvd.mean())
            .cell(min_pn.mean(), 3)
            .cell(max_pn.mean(), 3)
            .cell(zero.mean(), 3);
      }
    }
  }
  emit(t, args.csv);
  return 0;
}
