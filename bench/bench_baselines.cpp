// E9 — churnstore vs the baselines (paper section 4 paragraph 1 and the
// related-work comparisons).
//
//   flooding          — persists trivially but costs Theta(d * |I|) bits per
//                       node per round (the scalability failure);
//   sqrt-replication  — birthday-paradox placement with no maintenance:
//                       availability decays with churn exposure;
//   k-walker          — unstructured walk search over an unmaintained
//                       replica set: walkers AND replicas die under churn;
//   chord             — structured DHT with periodic stabilization: loses
//                       data outright once churn outruns the repair period;
//   churnstore        — committee-maintained storage + landmark search.
//
// Measurement: same store -> age -> search workload for every system across
// a churn sweep; success rates and per-node cost.
#include <cmath>

#include "baseline/chord.h"
#include "baseline/flooding.h"
#include "baseline/kwalker.h"
#include "baseline/sqrt_replication.h"
#include "common.h"

using namespace churnstore;
using namespace churnstore::bench;

namespace {

struct Outcome {
  double success = 0.0;
  double mean_bits = 0.0;
};

/// Drives Network+TokenSoup rounds with a protocol hook and handler.
template <typename Proto>
void pump(Network& net, TokenSoup& soup, Proto&& proto_round,
          const std::function<bool(Vertex, const Message&)>& handler,
          std::uint32_t rounds) {
  for (std::uint32_t r = 0; r < rounds; ++r) {
    net.begin_round();
    soup.step();
    proto_round();
    net.deliver();
    for (Vertex v = 0; v < net.n(); ++v) {
      for (const Message& m : net.inbox(v)) handler(v, m);
    }
  }
}

SimConfig baseline_sim(std::uint32_t n, double cm, std::uint64_t seed) {
  SimConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.churn.kind = cm > 0 ? AdversaryKind::kUniform : AdversaryKind::kNone;
  cfg.churn.k = 1.5;
  cfg.churn.multiplier = cm;
  return cfg;
}

Outcome run_churnstore(std::uint32_t n, double cm, std::uint64_t seed,
                       std::uint32_t searches, double age_taus) {
  SystemConfig cfg = default_system_config(n, seed);
  cfg.sim.churn.multiplier = cm;
  if (cm == 0.0) cfg.sim.churn.kind = AdversaryKind::kNone;
  StoreSearchOptions opts;
  opts.items = 2;
  opts.searchers_per_batch = searches;
  opts.batches = 1;
  opts.age_taus = age_taus;
  const auto res = run_store_search_trial(cfg, opts);
  return Outcome{res.fetch_rate(), res.mean_bits_node_round};
}

Outcome run_sqrt(std::uint32_t n, double cm, std::uint64_t seed,
                 std::uint32_t searches, double age_taus) {
  Network net(baseline_sim(n, cm, seed));
  TokenSoup soup(net, WalkConfig{});
  SqrtReplication repl(net, soup, SqrtReplication::Options{});
  auto handler = [&](Vertex v, const Message& m) { return repl.handle(v, m); };
  pump(net, soup, [] {}, handler, 2 * soup.tau());
  for (int i = 0; i < 20 && repl.store(0, 42) == 0; ++i)
    pump(net, soup, [] {}, handler, 1);
  pump(net, soup, [] {}, handler,
       static_cast<std::uint32_t>(age_taus * soup.tau()));  // age under churn
  Rng rng(seed ^ 1);
  std::vector<std::uint64_t> sids;
  for (std::uint32_t s = 0; s < searches; ++s) {
    sids.push_back(repl.search(static_cast<Vertex>(rng.next_below(n)), 42,
                               4 * soup.tau()));
  }
  pump(net, soup, [&] { repl.on_round(); }, handler, 4 * soup.tau() + 2);
  std::uint32_t ok = 0, eligible = 0;
  for (const auto sid : sids) {
    const auto out = repl.outcome(sid);
    if (out.censored) continue;
    ++eligible;
    ok += out.success;
  }
  return Outcome{eligible ? static_cast<double>(ok) / eligible : 0.0,
                 net.metrics().mean_bits_per_node_round().mean()};
}

Outcome run_kwalker(std::uint32_t n, double cm, std::uint64_t seed,
                    std::uint32_t searches, double age_taus) {
  Network net(baseline_sim(n, cm, seed));
  TokenSoup soup(net, WalkConfig{});
  KWalkerSearch kw(net, soup, KWalkerSearch::Options{.walkers = 16});
  auto handler = [&](Vertex, const Message&) { return true; };
  pump(net, soup, [] {}, handler, 2 * soup.tau());
  for (int i = 0; i < 20 && kw.store(0, 42) == 0; ++i)
    pump(net, soup, [] {}, handler, 1);
  pump(net, soup, [] {}, handler,
       static_cast<std::uint32_t>(age_taus * soup.tau()));
  Rng rng(seed ^ 2);
  std::vector<std::uint64_t> sids;
  for (std::uint32_t s = 0; s < searches; ++s) {
    sids.push_back(kw.search(static_cast<Vertex>(rng.next_below(n)), 42,
                             4 * soup.tau()));
  }
  pump(net, soup, [&] { kw.on_round(); }, handler, 4 * soup.tau() + 2);
  std::uint32_t ok = 0;
  for (const auto sid : sids) ok += kw.outcome(sid).success;
  return Outcome{static_cast<double>(ok) / searches,
                 net.metrics().mean_bits_per_node_round().mean()};
}

Outcome run_chord(std::uint32_t n, double cm, std::uint64_t seed,
                  std::uint32_t searches, double age_taus) {
  ChurnSpec spec;
  spec.kind = AdversaryKind::kUniform;
  spec.k = 1.5;
  spec.multiplier = cm;
  ChordSim sim(ChordSim::Options{.n = n,
                                 .replication = 8,
                                 .stabilize_period = 8,
                                 .churn_per_round = spec.per_round(n),
                                 .seed = seed});
  for (std::uint32_t i = 0; i < searches; ++i) sim.store(1000 + i);
  // Same aging exposure as the others.
  WalkConfig wc;
  sim.run_rounds(
      static_cast<std::uint32_t>((age_taus + 2) * tau_rounds(n, wc)));
  std::uint32_t ok = 0;
  for (std::uint32_t i = 0; i < searches; ++i) {
    ok += sim.lookup(1000 + i).success;
  }
  return Outcome{static_cast<double>(ok) / searches,
                 0.0 /* cost accounted as stabilize msgs below */};
}

Outcome run_flooding(std::uint32_t n, double cm, std::uint64_t seed) {
  Network net(baseline_sim(n, cm, seed));
  FloodingStore flood(net, FloodingStore::Options{.refresh_period = 8});
  auto handler = [&](Vertex v, const Message& m) { return flood.handle(v, m); };
  flood.store(0, 42);
  for (std::uint32_t r = 0; r < 80; ++r) {
    net.begin_round();
    flood.on_round();
    net.deliver();
    for (Vertex v = 0; v < net.n(); ++v)
      for (const Message& m : net.inbox(v)) handler(v, m);
  }
  return Outcome{flood.coverage(42),
                 net.metrics().mean_bits_per_node_round().mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto args = BenchArgs::parse(cli, {512}, 2);
  const auto searches = static_cast<std::uint32_t>(cli.get_int("searches", 10));
  // How long items sit under churn before anyone searches. The maintained
  // protocol is indifferent to this; the unmaintained baselines decay with
  // it — which is the paper's whole point.
  const double age_taus = cli.get_double("age-taus", 10.0);

  banner("E9 bench_baselines — protocol comparison under churn",
         "retrieval success and per-node cost: churnstore keeps succeeding "
         "where unmaintained/structured baselines decay, at polylog cost");

  Table t({"system", "n", "churn/rd", "success", "mean bits/node/rd"});
  for (const auto n64 : args.n_list) {
    const auto n = static_cast<std::uint32_t>(n64);
    for (const double cm : {0.0, 0.25, args.churn_mult, 2 * args.churn_mult}) {
      ChurnSpec spec;
      spec.kind = cm > 0 ? AdversaryKind::kUniform : AdversaryKind::kNone;
      spec.k = 1.5;
      spec.multiplier = cm;
      const auto churn_rd = static_cast<std::int64_t>(spec.per_round(n));

      RunningStat cs, sq, kw, ch, fl, cs_bits, sq_bits, kw_bits, fl_bits;
      for (std::uint32_t trial = 0; trial < args.trials; ++trial) {
        const std::uint64_t seed = mix64(args.seed + trial * 61 + n);
        const auto a = run_churnstore(n, cm, seed, searches, age_taus);
        const auto b = run_sqrt(n, cm, seed, searches, age_taus);
        const auto c = run_kwalker(n, cm, seed, searches, age_taus);
        const auto d = run_chord(n, cm, seed, searches, age_taus);
        const auto e = run_flooding(n, cm, seed);
        cs.add(a.success);
        sq.add(b.success);
        kw.add(c.success);
        ch.add(d.success);
        fl.add(e.success);
        cs_bits.add(a.mean_bits);
        sq_bits.add(b.mean_bits);
        kw_bits.add(c.mean_bits);
        fl_bits.add(e.mean_bits);
      }
      auto row = [&](const char* name, const RunningStat& s,
                     const RunningStat* bits) {
        t.begin_row().cell(name).cell(static_cast<std::int64_t>(n)).cell(
            churn_rd);
        t.cell(s.mean(), 3);
        if (bits) {
          t.cell(bits->mean(), 0);
        } else {
          t.cell("n/a (overlay msgs)");
        }
      };
      row("churnstore", cs, &cs_bits);
      row("sqrt-replication", sq, &sq_bits);
      row("k-walker", kw, &kw_bits);
      row("chord (stab=8)", ch, nullptr);
      row("flooding (coverage)", fl, &fl_bits);
    }
  }
  emit(t, args.csv);
  return 0;
}
