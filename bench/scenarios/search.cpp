// E7 — Data retrieval (paper Theorem 4).
//
// Claim: n - o(n) nodes can retrieve an available item within O(log n)
// rounds under churn up to O(n/log^{1+delta} n).
//
// Measurement: searches from random initiators across an (n x churn) grid;
// report locate/fetch success among nodes that stayed alive, censoring, and
// the locate-time distribution. The locate time should scale like ln n
// (log-log slope vs ln n near 1, i.e. O(log n) rounds).
#include <cmath>

#include "scenario_common.h"
#include "stats/summary.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

CHURNSTORE_SCENARIO(search, "E7: retrieval success and latency (Theorem 4)") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {256, 512, 1024};
  if (!cli.has("items")) base.workload.items = 3;
  if (!cli.has("searches")) base.workload.searchers_per_batch = 12;

  banner(base, "E7 search — retrieval success and latency (Theorem 4)",
         "locate/fetch rates among surviving searchers and rounds-to-locate "
         "vs n and churn; latency grows like log n, success stays ~1");

  Runner runner(base);
  // Tail-latency quantiles appended after the historical columns (same
  // observations as "locate rds mean", full distribution via locate_hist).
  Table t({"n", "churn/rd", "searches", "censored", "locate rate",
           "fetch rate", "avail", "avail ci95", "locate rds mean",
           "locate rds max", "tau", "lat p50", "lat p95", "lat p99",
           "lat p999"});
  std::vector<double> lnns, latencies;
  for (const std::uint32_t n : base.ns) {
    for (const double cm :
         {0.0, base.churn.multiplier, 2 * base.churn.multiplier}) {
      ScenarioSpec cell = at_churn(base, n, cm).with_seed(base.seed + n);
      const StoreSearchResult res = runner.store_search(cell);
      const std::uint32_t tau = tau_rounds(n, cell.walk);
      t.begin_row()
          .cell(static_cast<std::int64_t>(n))
          .cell(static_cast<std::int64_t>(cell.churn.per_round(n)))
          .cell(res.searches)
          .cell(res.censored)
          .cell(res.locate_rate(), 3)
          .cell(res.fetch_rate(), 3)
          .cell(res.availability.mean(), 3)
          .cell(res.availability.ci95_halfwidth(), 3)
          .cell(res.locate_rounds.mean(), 1)
          .cell(res.locate_rounds.max(), 1)
          .cell(static_cast<std::int64_t>(tau));
      if (res.locate_hist.total() > 0) {
        t.cell(res.locate_hist.quantile(0.50), 1)
            .cell(res.locate_hist.quantile(0.95), 1)
            .cell(res.locate_hist.quantile(0.99), 1)
            .cell(res.locate_hist.quantile(0.999), 1);
      } else {
        t.cell("n/a").cell("n/a").cell("n/a").cell("n/a");
      }
      if (cm == base.churn.multiplier && res.locate_rounds.count() > 0) {
        lnns.push_back(std::log(static_cast<double>(n)));
        latencies.push_back(res.locate_rounds.mean());
      }
    }
  }
  emit(t, base);
  if (lnns.size() >= 2 && !base.csv && !base.json) {
    std::printf("\nlocate-rounds vs ln(n): linear slope %.2f rounds per ln n "
                "unit (Theorem 4: O(log n) rounds)\n",
                linear_slope(lnns, latencies));
  }
}

}  // namespace
}  // namespace churnstore
