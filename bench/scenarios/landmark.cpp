// E5 — Landmark set size (paper Lemma 8).
//
// Claim: the landmark trees built by a committee contain between sqrt(n)
// and O(n^{0.5+delta} log n) nodes, near-uniformly distributed over the
// Core.
//
// Measurement: peak live landmark count across an n sweep, compared to
// sqrt(n) and n^{0.75} ln n; the log-log slope of the count against n
// should sit in [0.5, 0.75].
#include <algorithm>
#include <cmath>

#include "scenario_common.h"
#include "stats/summary.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

struct LandmarkRow {
  double peak = 0.0;
  double mean = 0.0;
  std::uint32_t depth = 0;
};

CHURNSTORE_SCENARIO(landmark, "E5: landmark set size vs sqrt(n) (Lemma 8)") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {256, 512, 1024, 2048, 4096};

  banner(base, "E5 landmark — landmark set size (Lemma 8)",
         "sqrt(n) <= |M_I| <= O(n^{0.5+delta} log n); log-log slope of the "
         "landmark count vs n should land in [0.5, 0.75]");

  Runner runner(base);
  Table t({"n", "tree depth", "peak landmarks", "mean landmarks", "sqrt(n)",
           "n^0.75*ln n", "peak/sqrt(n)"});
  std::vector<double> xs, ys;
  for (const std::uint32_t n : base.ns) {
    const ScenarioSpec cell = base.with_n(n);
    const auto rows = runner.map_trials<LandmarkRow>(
        base.trials, [&cell, n](std::uint32_t trial) {
          SystemConfig cfg = cell.system_config();
          cfg.sim.seed = Runner::trial_seed(cell.seed + n, trial);
          P2PSystem sys(cfg);
          LandmarkRow row;
          row.depth = sys.landmarks().tree_depth();
          sys.run_rounds(sys.warmup_rounds());
          for (int i = 0; i < 20 && !sys.store_item(0, 1); ++i)
            sys.run_round();
          // Observe across two refresh cycles after the first wave
          // completes.
          sys.run_rounds(row.depth + 3);
          std::size_t mx = 0;
          RunningStat trace;
          for (std::uint32_t r = 0;
               r < 2 * sys.committees().refresh_period(); ++r) {
            sys.run_round();
            const std::size_t live = sys.landmarks().live_count(1);
            mx = std::max(mx, live);
            trace.add(static_cast<double>(live));
          }
          row.peak = static_cast<double>(mx);
          row.mean = trace.mean();
          return row;
        });
    RunningStat peak, mean;
    std::uint32_t depth = 0;
    for (const LandmarkRow& row : rows) {
      peak.add(row.peak);
      mean.add(row.mean);
      depth = row.depth;
    }
    const double sqrt_n = std::sqrt(static_cast<double>(n));
    const double upper = std::pow(static_cast<double>(n), 0.75) * std::log(n);
    t.begin_row()
        .cell(static_cast<std::int64_t>(n))
        .cell(static_cast<std::int64_t>(depth))
        .cell(peak.mean(), 1)
        .cell(mean.mean(), 1)
        .cell(sqrt_n, 1)
        .cell(upper, 1)
        .cell(peak.mean() / sqrt_n, 2);
    xs.push_back(static_cast<double>(n));
    ys.push_back(peak.mean());
  }
  emit(t, base);
  if (!base.csv && !base.json) {
    std::printf("\nlog-log slope of peak landmarks vs n: %.3f "
                "(Lemma 8 predicts within [0.5, 0.75])\n",
                loglog_slope(xs, ys));
  }
}

}  // namespace
}  // namespace churnstore
