// E13 — Design ablations around the paper's constants.
//
// Sweeps the knobs DESIGN.md calls out: committee refresh period (paper:
// every 2 tau), invitation oversampling (our finite-n compensation for
// sample staleness), landmark tree fanout (paper: 2) and TTL (paper: 2
// tau), and walk length. Each row reports item persistence, search
// success, and the per-node traffic the setting costs.
#include "scenario_common.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

struct AblationResult {
  double persist = 0.0;
  double locate = 0.0;
  double bits = 0.0;
};

AblationResult run(Runner& runner, SystemConfig cfg,
                   const StoreSearchOptions& workload, std::uint32_t trials,
                   std::uint64_t seed) {
  struct Row {
    double persist = 0.0, locate = 0.0, bits = 0.0;
  };
  const auto rows = runner.map_trials<Row>(
      trials, [&cfg, &workload, seed](std::uint32_t trial) {
        SystemConfig trial_cfg = cfg;
        trial_cfg.sim.seed = Runner::trial_seed(seed, trial);
        Row row;
        const auto trace = run_availability_trial(trial_cfg, 10.0);
        row.persist = trace.recoverable_fraction();
        const auto res = run_store_search_trial(trial_cfg, workload);
        row.locate = res.locate_rate();
        row.bits = res.bits_node_round_mean.mean();
        return row;
      });
  RunningStat persist, locate, bits;
  for (const Row& row : rows) {
    persist.add(row.persist);
    locate.add(row.locate);
    bits.add(row.bits);
  }
  return AblationResult{persist.mean(), locate.mean(), bits.mean()};
}

CHURNSTORE_SCENARIO(ablation,
                    "E13: sweep each protocol constant around the paper's "
                    "choice") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {512};
  if (!cli.has("items")) base.workload.items = 1;
  if (!cli.has("searches")) base.workload.searchers_per_batch = 8;
  if (!cli.has("batches")) base.workload.batches = 1;
  const std::uint32_t n = base.n();

  banner(base, "E13 ablation — design-choice sweeps",
         "persistence / search success / cost as each protocol constant "
         "moves around the paper's choice");

  Runner runner(base);
  Table t({"knob", "value", "recoverable", "locate rate",
           "mean bits/node/rd"});
  const SystemConfig base_cfg = base.with_n(n).system_config();

  for (const double v : {0.5, 1.0, 2.0}) {
    SystemConfig cfg = base_cfg;
    cfg.protocol.refresh_taus = v;
    const auto r = run(runner, cfg, base.workload, base.trials, base.seed + 1);
    t.begin_row().cell("refresh period (taus)").cell(v, 1).cell(r.persist, 3)
        .cell(r.locate, 3).cell(r.bits, 0);
  }
  for (const double v : {1.0, 2.0, 3.0, 4.0}) {
    SystemConfig cfg = base_cfg;
    cfg.protocol.invite_oversample = v;
    const auto r = run(runner, cfg, base.workload, base.trials, base.seed + 2);
    t.begin_row().cell("invite oversample").cell(v, 1).cell(r.persist, 3)
        .cell(r.locate, 3).cell(r.bits, 0);
  }
  for (const std::uint32_t v : {2u, 3u, 4u}) {
    SystemConfig cfg = base_cfg;
    cfg.protocol.tree_fanout = v;
    const auto r = run(runner, cfg, base.workload, base.trials, base.seed + 3);
    t.begin_row().cell("tree fanout").cell(static_cast<std::int64_t>(v))
        .cell(r.persist, 3).cell(r.locate, 3).cell(r.bits, 0);
  }
  for (const double v : {1.0, 2.0, 3.0}) {
    SystemConfig cfg = base_cfg;
    cfg.protocol.landmark_ttl_taus = v;
    const auto r = run(runner, cfg, base.workload, base.trials, base.seed + 4);
    t.begin_row().cell("landmark TTL (taus)").cell(v, 1).cell(r.persist, 3)
        .cell(r.locate, 3).cell(r.bits, 0);
  }
  for (const double v : {2.0, 2.5, 3.0}) {
    SystemConfig cfg = base_cfg;
    cfg.walk.t_mult = v;
    const auto r = run(runner, cfg, base.workload, base.trials, base.seed + 5);
    t.begin_row().cell("walk length (x ln n)").cell(v, 1).cell(r.persist, 3)
        .cell(r.locate, 3).cell(r.bits, 0);
  }
  for (const double v : {1.0, 1.5, 2.5}) {
    SystemConfig cfg = base_cfg;
    cfg.walk.rate_mult = v;
    const auto r = run(runner, cfg, base.workload, base.trials, base.seed + 6);
    t.begin_row().cell("walk rate (x ln n)").cell(v, 1).cell(r.persist, 3)
        .cell(r.locate, 3).cell(r.bits, 0);
  }
  emit(t, base);
}

}  // namespace
}  // namespace churnstore
