// E9 — churnstore vs the baselines (paper section 4 paragraph 1 and the
// related-work comparisons).
//
//   flooding          — persists trivially but costs Theta(d * |I|) bits per
//                       node per round (the scalability failure);
//   sqrt-replication  — birthday-paradox placement with no maintenance:
//                       availability decays with churn exposure;
//   k-walker          — unstructured walk search over an unmaintained
//                       replica set: walkers AND replicas die under churn;
//   chord             — structured DHT with periodic stabilization: loses
//                       data outright once churn outruns the repair period;
//   churnstore        — committee-maintained storage + landmark search.
//
// Every system is a registered protocol stack behind the same
// StorageService facade, so this scenario is nothing but the SAME
// store -> age -> search workload re-run with a different `protocol=` value
// per row — the comparison the old bespoke bench hand-rolled per baseline.
#include "scenario_common.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

CHURNSTORE_SCENARIO(baselines,
                    "E9: paper protocol vs chord/flooding/k-walker/sqrt "
                    "baselines under churn") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {512};
  if (!cli.has("items")) base.workload.items = 2;
  if (!cli.has("searches")) base.workload.searchers_per_batch = 10;
  if (!cli.has("batches")) base.workload.batches = 1;
  // How long items sit under churn before anyone searches. The maintained
  // protocol is indifferent to this; the unmaintained baselines decay with
  // it — which is the paper's whole point.
  if (!cli.has("age-taus")) base.workload.age_taus = 10.0;

  banner(base, "E9 baselines — protocol comparison under churn",
         "retrieval success and per-node cost: churnstore keeps succeeding "
         "where unmaintained/structured baselines decay, at polylog cost");

  const std::vector<std::string> stacks =
      cli.has("protocol")
          ? std::vector<std::string>{base.protocol}
          : std::vector<std::string>{"churnstore", "sqrt-replication",
                                     "k-walker", "chord", "flooding"};

  Runner runner(base);
  Table t({"system", "n", "churn/rd", "locate rate", "censored", "avail",
           "avail ci95", "locate rds", "mean bits/node/rd"});
  for (const std::uint32_t n : base.ns) {
    for (const double cm : {0.0, 0.25, base.churn.multiplier,
                            2 * base.churn.multiplier}) {
      for (const std::string& stack : stacks) {
        ScenarioSpec cell = at_churn(base, n, cm).with_seed(
            mix64(base.seed + n));
        cell.protocol = stack;
        const StoreSearchResult res = runner.store_search(cell);
        t.begin_row()
            .cell(stack)
            .cell(static_cast<std::int64_t>(n))
            .cell(static_cast<std::int64_t>(cell.churn.per_round(n)))
            .cell(res.locate_rate(), 3)
            .cell(res.censored)
            .cell(res.availability.mean(), 3)
            .cell(res.availability.ci95_halfwidth(), 3)
            .cell(res.locate_rounds.count() ? res.locate_rounds.mean() : 0.0,
                  1);
        if (stack == "chord" && cell.extra("chord", "net") == "ring") {
          // The legacy ring sim routes in its own simulator; its overlay
          // traffic is not charged to Network metrics, so a 0 here would
          // read as "free" next to the accounted stacks. chord=net (the
          // default) charges every lookup/stabilize/transfer for real and
          // reports measured bits like everyone else.
          t.cell("n/a (overlay msgs)");
        } else {
          t.cell(res.bits_node_round_mean.mean(), 0);
        }
      }
    }
  }
  emit(t, base);
}

}  // namespace
}  // namespace churnstore
