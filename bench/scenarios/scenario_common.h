// Shared plumbing for the registered scenarios (DESIGN.md E1-E13).
//
// Every scenario receives a parsed ScenarioSpec (network sizes, churn,
// workload shape, trials, output format) plus the raw Cli for
// scenario-specific knobs, runs its Monte-Carlo trials through the Runner
// (all cores, deterministic), and prints the table recorded in
// EXPERIMENTS.md through emit().
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "core/experiment.h"
#include "core/runner.h"
#include "core/scenario.h"
#include "core/stacks.h"
#include "core/system.h"
#include "util/cli.h"
#include "util/table.h"

namespace churnstore::bench {

inline void emit(const Table& table, const ScenarioSpec& spec) {
  emit_table(table, spec, std::cout);
}

inline void banner(const ScenarioSpec& spec, const std::string& experiment,
                   const std::string& claim) {
  if (spec.csv || spec.json) return;  // keep machine output clean
  std::printf("== %s ==\n%s\n\n", experiment.c_str(), claim.c_str());
}

/// Churn sweep helper: spec variant at multiplier `cm` (kNone at 0).
inline ScenarioSpec at_churn(const ScenarioSpec& spec, std::uint32_t n,
                             double cm) {
  return spec.with_n(n).with_churn_multiplier(cm);
}

}  // namespace churnstore::bench
