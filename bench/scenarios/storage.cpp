// E6 — Data storage persistence (paper Theorem 3).
//
// Claim: an item stored by a node is *available* (recoverable + findable
// through a Omega(sqrt n) landmark set) for a polynomial number of rounds
// under churn up to O(n/log^{1+delta} n), with only Theta(log n) copies.
//
// Measurement: availability traces across a churn sweep — fraction of
// sampled rounds where the item is recoverable/available, the number of
// live copies, committee generations completed, and when (if ever) the
// item was lost.
#include <algorithm>

#include "scenario_common.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

struct StorageRow {
  double recoverable = 0.0;
  double available = 0.0;
  double copies_mean = 0.0;
  double copies_min = 0.0;
  double generations = 0.0;
  std::int64_t lost_at = -1;
  std::uint32_t horizon = 0;
};

CHURNSTORE_SCENARIO(storage, "E6: storage persistence traces (Theorem 3)") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {512};
  if (!cli.has("trials")) base.trials = 3;
  const double horizon_taus = cli.get_double("horizon-taus", 20.0);

  banner(base, "E6 storage — storage persistence (Theorem 3)",
         "availability over a long horizon vs churn; copies stay Theta(log "
         "n), the item survives every committee handover");

  Runner runner(base);
  Table t({"n", "churn/rd", "horizon rds", "recoverable", "available",
           "copies mean", "copies min", "generations", "lost@round"});
  for (const std::uint32_t n : base.ns) {
    for (const double cm : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const ScenarioSpec cell = at_churn(base, n, cm);
      const auto rows = runner.map_trials<StorageRow>(
          base.trials, [&cell, n, horizon_taus](std::uint32_t trial) {
            SystemConfig cfg = cell.system_config();
            cfg.sim.seed = Runner::trial_seed(cell.seed + n, trial);
            const auto trace = run_availability_trial(cfg, horizon_taus);
            StorageRow row;
            row.horizon =
                static_cast<std::uint32_t>(trace.rounds.size()) * 4;
            row.recoverable = trace.recoverable_fraction();
            row.available = trace.availability_fraction();
            RunningStat c;
            std::uint64_t mn = ~0ull;
            for (const auto v : trace.copies) {
              c.add(static_cast<double>(v));
              mn = std::min(mn, v);
            }
            row.copies_mean = c.mean();
            row.copies_min = static_cast<double>(mn);
            row.generations = static_cast<double>(trace.generations);
            row.lost_at = trace.first_unrecoverable();
            return row;
          });
      RunningStat reco, avail, copies_mean, copies_min, gens;
      std::int64_t lost_at = -1;
      std::uint32_t horizon = 0;
      for (const StorageRow& row : rows) {
        reco.add(row.recoverable);
        avail.add(row.available);
        copies_mean.add(row.copies_mean);
        copies_min.add(row.copies_min);
        gens.add(row.generations);
        if (row.lost_at >= 0) lost_at = row.lost_at;
        horizon = row.horizon;
      }
      t.begin_row()
          .cell(static_cast<std::int64_t>(n))
          .cell(static_cast<std::int64_t>(cell.churn.per_round(n)))
          .cell(static_cast<std::int64_t>(horizon))
          .cell(reco.mean(), 3)
          .cell(avail.mean(), 3)
          .cell(copies_mean.mean(), 1)
          .cell(copies_min.mean(), 1)
          .cell(gens.mean(), 1)
          .cell(lost_at);
    }
  }
  emit(t, base);
}

}  // namespace
}  // namespace churnstore
