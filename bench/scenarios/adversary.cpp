// E12 — Adversary-strategy ablation (the oblivious adversary of section 2).
//
// The analysis only needs the adversary to be oblivious to protocol coins;
// it may otherwise churn whatever it likes. Panel 1 runs the same storage
// workload against every implemented oblivious strategy — uniform
// replacement, contiguous block sweeps, a hammered fixed region, and
// lifetime-targeted (oldest/youngest-first) — and shows the guarantees are
// strategy-independent (random placement makes all oblivious choices look
// alike). Panel 2 flips the one switch the model forbids: an ADAPTIVE
// adversary that subscribes to the AdaptiveTargetQuery event and churns
// exactly the current committee members.
#include "scenario_common.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

struct StrategyRow {
  double recoverable = 0.0;
  double available = 0.0;
  double locate = 0.0;
  double fetch = 0.0;
};

CHURNSTORE_SCENARIO(adversary,
                    "E12: oblivious strategy ablation + the adaptive "
                    "model-violation demo") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {512};
  if (!cli.has("items")) base.workload.items = 2;
  if (!cli.has("searches")) base.workload.searchers_per_batch = 8;
  if (!cli.has("batches")) base.workload.batches = 1;

  banner(base, "E12 adversary — oblivious strategy ablation",
         "same churn volume, different victim-selection strategies: the "
         "random placement of committees/landmarks equalizes them all");

  Runner runner(base);
  Table t({"adversary", "n", "churn/rd", "recoverable", "available",
           "locate rate", "fetch rate"});
  for (const std::uint32_t n : base.ns) {
    for (const double cm :
         {0.5 * base.churn.multiplier, base.churn.multiplier}) {
      for (const AdversaryKind kind :
           {AdversaryKind::kUniform, AdversaryKind::kBlockSweep,
            AdversaryKind::kRegionRepeat, AdversaryKind::kOldestFirst,
            AdversaryKind::kYoungestFirst}) {
        ScenarioSpec cell = at_churn(base, n, cm);
        cell.churn.kind = kind;
        const auto rows = runner.map_trials<StrategyRow>(
            base.trials, [&cell, n](std::uint32_t trial) {
              SystemConfig cfg = cell.system_config();
              cfg.sim.seed = Runner::trial_seed(cell.seed + n, trial);
              StrategyRow row;
              const auto trace = run_availability_trial(cfg, 8.0);
              row.recoverable = trace.recoverable_fraction();
              row.available = trace.availability_fraction();
              const auto res =
                  run_store_search_trial(cfg, cell.workload);
              row.locate = res.locate_rate();
              row.fetch = res.fetch_rate();
              return row;
            });
        RunningStat reco, avail, locate, fetch;
        for (const StrategyRow& row : rows) {
          reco.add(row.recoverable);
          avail.add(row.available);
          locate.add(row.locate);
          fetch.add(row.fetch);
        }
        t.begin_row()
            .cell(std::string(to_name(kind)))
            .cell(static_cast<std::int64_t>(n))
            .cell(static_cast<std::int64_t>(cell.churn.per_round(n)))
            .cell(reco.mean(), 3)
            .cell(avail.mean(), 3)
            .cell(locate.mean(), 3)
            .cell(fetch.mean(), 3);
      }
    }
  }
  emit(t, base);

  // Second panel: what obliviousness buys. Same churn VOLUME, but the
  // adversary is allowed to see committee membership (model violation).
  if (!base.csv && !base.json) {
    std::printf(
        "\n-- adaptive (non-oblivious) adversary, same churn volume --\n");
  }
  Table t2({"adversary", "n", "churn/rd", "recoverable after 8 taus"});
  for (const std::uint32_t n : base.ns) {
    for (const bool adaptive : {false, true}) {
      ScenarioSpec cell =
          at_churn(base, n, 0.5 * base.churn.multiplier);
      if (adaptive) cell.churn.kind = AdversaryKind::kAdaptive;
      const auto rows = runner.map_trials<double>(
          base.trials, [&cell, n, adaptive](std::uint32_t trial) {
            SystemConfig cfg = cell.system_config();
            cfg.sim.seed = Runner::trial_seed(cell.seed + n, trial);
            P2PSystem sys(cfg);
            if (adaptive) sys.enable_adaptive_adversary();
            sys.run_rounds(sys.warmup_rounds());
            for (int i = 0; i < 20 && !sys.store_item(0, 1); ++i)
              sys.run_round();
            sys.run_rounds(8 * sys.tau());
            return sys.store().is_recoverable(1) ? 1.0 : 0.0;
          });
      RunningStat reco;
      for (const double r : rows) reco.add(r);
      t2.begin_row()
          .cell(adaptive ? "ADAPTIVE (sees committees)" : "oblivious uniform")
          .cell(static_cast<std::int64_t>(n))
          .cell(static_cast<std::int64_t>(cell.churn.per_round(n)))
          .cell(reco.mean(), 2);
    }
  }
  emit(t2, base);
}

}  // namespace
}  // namespace churnstore
