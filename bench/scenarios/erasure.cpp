// E10 — Erasure-coded storage (paper section 4.4).
//
// Claim: replacing replicas by Rabin IDA pieces cuts the stored bytes from
// Theta(log n) * |I| to a constant-factor blowup L/K while the committee
// machinery keeps >= K pieces alive across handovers.
//
// Measurement: replication vs IDA across a churn sweep and a surplus sweep:
// bytes stored network-wide per item, persistence, and retrieval success.
#include "scenario_common.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

struct ErasureRow {
  double stored_bytes = 0.0;
  double persist = 0.0;
  double fetch_rate = 0.0;
};

ErasureRow run_once(const ScenarioSpec& spec, bool erasure,
                    std::uint32_t surplus, std::uint64_t seed) {
  SystemConfig cfg = spec.system_config();
  cfg.sim.seed = seed;
  cfg.protocol.use_erasure_coding = erasure;
  cfg.protocol.ida_surplus = surplus;
  cfg.protocol.item_bits = 8192;
  P2PSystem sys(cfg);
  sys.run_rounds(sys.warmup_rounds());
  const ItemId item = 0xE0;
  for (int i = 0; i < 20 && !sys.store_item(3, item); ++i) sys.run_round();
  sys.run_rounds(2 * sys.tau());

  std::size_t bytes = 0;
  for (Vertex v = 0; v < sys.n(); ++v) {
    if (const Membership* m = sys.committees().membership_at(v, item)) {
      bytes += m->payload.size();
    }
  }

  // Age through several handovers, then search from survivors.
  sys.run_rounds(6 * sys.committees().refresh_period());
  ErasureRow row;
  row.stored_bytes = static_cast<double>(bytes);
  row.persist = sys.store().is_recoverable(item) ? 1.0 : 0.0;

  Rng rng(seed ^ 5);
  std::uint32_t ok = 0, eligible = 0;
  std::vector<std::uint64_t> sids;
  for (int s = 0; s < 6; ++s) {
    sids.push_back(
        sys.search(static_cast<Vertex>(rng.next_below(sys.n())), item));
  }
  sys.run_rounds(sys.search_timeout() + 4);
  for (const auto sid : sids) {
    const SearchStatus* st = sys.search_status(sid);
    if (!st || (st->initiator_churned && !st->succeeded_locate())) continue;
    ++eligible;
    ok += st->succeeded_fetch();
  }
  row.fetch_rate = eligible ? static_cast<double>(ok) / eligible : 0.0;
  return row;
}

CHURNSTORE_SCENARIO(erasure, "E10: IDA pieces vs replication (section 4.4)") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {512};

  banner(base, "E10 erasure — IDA vs replication (section 4.4)",
         "stored bytes per item drop from Theta(log n)*|I| to ~L/K * |I| "
         "while persistence and retrieval stay intact");

  Runner runner(base);
  Table t({"mode", "n", "churn/rd", "surplus", "stored bytes", "x item size",
           "persisted", "fetch rate"});
  const double item_bytes = 8192.0 / 8.0;
  for (const std::uint32_t n : base.ns) {
    for (const double cm : {0.25, base.churn.multiplier}) {
      const ScenarioSpec cell = at_churn(base, n, cm);
      const auto churn_rd =
          static_cast<std::int64_t>(cell.churn.per_round(n));
      auto sweep = [&](const char* mode, bool erasure_mode,
                       std::uint32_t surplus, const std::string& label) {
        const auto rows = runner.map_trials<ErasureRow>(
            base.trials,
            [&cell, erasure_mode, surplus, n](std::uint32_t trial) {
              return run_once(cell, erasure_mode, surplus,
                              Runner::trial_seed(cell.seed + n, trial));
            });
        RunningStat bytes, persist, fetch;
        for (const ErasureRow& row : rows) {
          bytes.add(row.stored_bytes);
          persist.add(row.persist);
          fetch.add(row.fetch_rate);
        }
        t.begin_row()
            .cell(mode)
            .cell(static_cast<std::int64_t>(n))
            .cell(churn_rd)
            .cell(label)
            .cell(bytes.mean(), 0)
            .cell(bytes.mean() / item_bytes, 2)
            .cell(persist.mean(), 2)
            .cell(fetch.mean(), 2);
      };
      sweep("replication", false, 3, "-");
      for (const std::uint32_t surplus : {2u, 3u, 4u}) {
        sweep("ida", true, surplus, std::to_string(surplus));
      }
    }
  }
  emit(t, base);
}

}  // namespace
}  // namespace churnstore
