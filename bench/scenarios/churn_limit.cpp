// E11 — How much churn can the random-walk approach absorb? (paper
// section 5 conjecture: a fundamental limit at o(n/log n) churn per round,
// because Omega(n/log n) churn destroys a constant fraction of walks before
// they mix.)
//
// Measurement: sweep the churn multiplier in BOTH functional forms —
// c * n / ln^{1.5} n (the paper's tolerated rate) and c * n / ln n (the
// conjectured wall) — and watch walk survival, storage persistence, and
// search success collapse as churn-per-mixing-time approaches 1.
#include <algorithm>
#include <cmath>

#include "scenario_common.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

struct LimitRow {
  double walk_survival = 0.0;
  double persist = 0.0;
  double locate_rate = 0.0;
};

LimitRow run_once(const ScenarioSpec& spec, std::int64_t churn_abs,
                  std::uint64_t seed) {
  SystemConfig cfg = spec.system_config();
  cfg.sim.seed = seed;
  cfg.sim.churn.kind =
      churn_abs > 0 ? AdversaryKind::kUniform : AdversaryKind::kNone;
  cfg.sim.churn.absolute = churn_abs;
  LimitRow row;

  P2PSystem sys(cfg);
  sys.run_rounds(sys.warmup_rounds());
  const auto& m = sys.metrics();
  const double denom =
      static_cast<double>(m.tokens_completed() + m.tokens_lost());
  row.walk_survival =
      denom > 0 ? static_cast<double>(m.tokens_completed()) / denom : 0.0;

  const ItemId item = 0x117;
  for (int i = 0; i < 20 && !sys.store_item(3, item); ++i) sys.run_round();
  sys.run_rounds(4 * sys.committees().refresh_period());
  row.persist = sys.store().is_recoverable(item) ? 1.0 : 0.0;

  Rng rng(seed ^ 9);
  std::uint32_t ok = 0, eligible = 0;
  std::vector<std::uint64_t> sids;
  for (int s = 0; s < 6; ++s) {
    sids.push_back(
        sys.search(static_cast<Vertex>(rng.next_below(sys.n())), item));
  }
  sys.run_rounds(sys.search_timeout() + 2);
  for (const auto sid : sids) {
    const SearchStatus* st = sys.search_status(sid);
    if (!st || (st->initiator_churned && !st->succeeded_locate())) continue;
    ++eligible;
    ok += st->succeeded_locate();
  }
  row.locate_rate = eligible ? static_cast<double>(ok) / eligible : 0.0;
  return row;
}

CHURNSTORE_SCENARIO(churn_limit,
                    "E11: the churn wall in both functional forms (section "
                    "5 conjecture)") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {512};

  banner(base, "E11 churn_limit — the churn wall (section 5 conjecture)",
         "sweep churn in both functional forms; the protocol degrades as "
         "the per-mixing-time churn fraction approaches a constant "
         "(conjectured wall at Omega(n/log n) per round)");

  Runner runner(base);
  Table t({"form", "c", "churn/rd", "frac/rd", "frac/tau", "walk survival",
           "persisted", "locate rate"});
  for (const std::uint32_t n : base.ns) {
    const double ln_n = std::log(static_cast<double>(n));
    const std::uint32_t tau = tau_rounds(n, base.walk);
    const ScenarioSpec cell = base.with_n(n);
    auto sweep = [&](const char* form, double divisor, double c) {
      const auto churn =
          static_cast<std::int64_t>(c * static_cast<double>(n) / divisor);
      const auto rows = runner.map_trials<LimitRow>(
          base.trials, [&cell, churn, n](std::uint32_t trial) {
            return run_once(cell, churn,
                            Runner::trial_seed(cell.seed + n, trial));
          });
      RunningStat surv, persist, locate;
      for (const LimitRow& row : rows) {
        surv.add(row.walk_survival);
        persist.add(row.persist);
        locate.add(row.locate_rate);
      }
      const double frac = static_cast<double>(churn) / n;
      t.begin_row()
          .cell(form)
          .cell(c, 2)
          .cell(churn)
          .cell(frac, 4)
          .cell(std::min(1.0, frac * tau), 3)
          .cell(surv.mean(), 3)
          .cell(persist.mean(), 2)
          .cell(locate.mean(), 3);
    };
    for (const double c : {0.25, 0.5, 1.0, 1.5, 2.0}) {
      sweep("n/ln^1.5 n", std::pow(ln_n, 1.5), c);
    }
    for (const double c : {0.1, 0.2, 0.3, 0.5}) {
      sweep("n/ln n", ln_n, c);
    }
  }
  emit(t, base);
}

}  // namespace
}  // namespace churnstore
