// E14 — Chord on the Network layer: measured lookup hops, maintenance
// traffic, and ring health vs churn.
//
// The old ChordBaseline ring simulator ESTIMATED its cost columns
// (idealized ceil(log2 n)-hop routing, un-charged overlay messages); the
// chord=net subsystem routes, stabilizes, and repairs through real typed
// Messages, so every column here is measured through the normal Network
// charge path — hop counts from the protocol's own counters, bits from the
// golden bit-charge accounting, maxrss from getrusage. chord=ring rows can
// be requested for comparison (chord=ring or chord=both): their lookup
// success comes from the ring sim and the bit column is honest about being
// unmeasured.
//
//   bench_driver --scenario=chord                      # n=1024,4096
//   bench_driver --scenario=chord n=10000,100000 json=true   # BENCH_chord
//   bench_driver --scenario=chord chord=both churn-mult=0.25
//
// Keys: chord (net | ring | both), chord-replication, chord-stabilize,
// chord-replicate, items, searches.
#include <cmath>
#include <optional>

#include "baseline/chord.h"
#include "baseline/chord_net/chord_net.h"
#include "obs/export.h"
#include "scenario_common.h"
#include "stats/histogram.h"
#include "util/resource.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

struct ChordCell {
  std::uint64_t searches = 0;
  std::uint64_t censored = 0;
  std::uint64_t ok = 0;
  double mean_hops = 0.0;
  std::uint64_t max_hops = 0;
  double availability = 0.0;
  /// Ring god views and traffic; < 0 = not measurable (ring sim).
  double joined_fraction = -1.0;
  double consistency = -1.0;
  double bits_node_round = -1.0;
  double locate_rounds = 0.0;
  /// Hop-count distribution over successful lookups (protocol histogram)
  /// and lookup-latency distribution in rounds (scenario-side histogram
  /// over located searches); < 0 = no mass / not measurable (ring sim).
  double hops_p50 = -1.0;
  double hops_p95 = -1.0;
  double hops_p99 = -1.0;
  double lat_p50 = -1.0;
  double lat_p95 = -1.0;
  double lat_p99 = -1.0;
  double lat_p999 = -1.0;
};

/// One measured cell: build the chord stack (net or ring), run the
/// store -> age -> search workload through the StorageService facade, and
/// read the protocol's own counters for the hop/health columns.
ChordCell run_cell(const ScenarioSpec& spec, bool ring,
                   const std::string& obs_label) {
  ScenarioSpec cell = spec;
  cell.protocol = "chord";
  cell.extras["chord"] = ring ? "ring" : "net";
  BuiltSystem built =
      build_stack(cell.protocol, cell.system_config(), cell.extras);
  P2PSystem& sys = *built.system;
  StorageService& svc = *built.service;

  // obs=jsonl|chrome attaches a per-cell exporter session; each cell gets
  // its own labelled file. Declared after `built` so the session (whose
  // trace lanes borrow the network's shard arenas) dies first.
  ObsConfig obs = obs_config_from_extras(cell.extras);
  std::optional<ObsSession> session;
  if (obs.mode != ObsConfig::Mode::kNone) {
    if (obs.path.empty()) {
      obs.path = obs.mode == ObsConfig::Mode::kJsonl ? "obs.jsonl"
                                                     : "obs_trace.json";
    }
    obs.path = obs_path_with_label(obs.path, obs_label);
    session.emplace(sys, obs);
  }

  Rng workload(mix64(cell.seed ^ 0x776f726bULL));
  sys.run_rounds(sys.warmup_rounds());

  std::vector<ItemId> items;
  for (std::uint32_t i = 0; i < cell.workload.items; ++i) {
    const ItemId item = mix64(cell.seed * 1000 + i) | 1;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto creator = static_cast<Vertex>(workload.next_below(sys.n()));
      if (svc.try_store(creator, item)) {
        items.push_back(item);
        break;
      }
      sys.run_round();
    }
  }
  sys.run_rounds(
      static_cast<std::uint32_t>(cell.workload.age_taus * sys.tau()));

  ChordCell out;
  std::uint64_t avail = 0;
  for (const ItemId item : items) avail += svc.is_available(item);
  out.availability = items.empty() ? 0.0
                                   : static_cast<double>(avail) /
                                         static_cast<double>(items.size());

  std::vector<std::uint64_t> sids;
  const Round start = sys.round();
  for (std::uint32_t s = 0; s < cell.workload.searchers_per_batch; ++s) {
    if (items.empty()) break;
    const ItemId item = items[workload.next_below(items.size())];
    const auto initiator = static_cast<Vertex>(workload.next_below(sys.n()));
    sids.push_back(svc.begin_search(initiator, item));
  }
  sys.run_rounds(svc.search_timeout() + 4);

  RunningStat locate;
  Histogram latency(0.0, 256.0, 256);
  for (const std::uint64_t sid : sids) {
    const WorkloadOutcome o = svc.search_outcome(sid);
    ++out.searches;
    if (o.censored && !o.located) {
      ++out.censored;
      continue;
    }
    if (o.located) {
      ++out.ok;
      const auto rounds = static_cast<double>(o.located_round - start);
      locate.add(rounds);
      latency.add(rounds);
    }
  }
  out.locate_rounds = locate.count() ? locate.mean() : 0.0;
  if (latency.total() > 0) {
    out.lat_p50 = latency.quantile(0.50);
    out.lat_p95 = latency.quantile(0.95);
    out.lat_p99 = latency.quantile(0.99);
    out.lat_p999 = latency.quantile(0.999);
  }

  if (const auto* chord = sys.find_protocol<ChordNetProtocol>()) {
    const auto& st = chord->stats();
    out.mean_hops = st.mean_hops();
    out.max_hops = st.ok_hops_max;
    out.joined_fraction = static_cast<double>(chord->joined_count()) /
                          static_cast<double>(sys.n());
    out.consistency = chord->ring_consistency();
    out.bits_node_round = sys.metrics().mean_bits_per_node_round().mean();
    if (st.ok_hops.total() > 0) {
      out.hops_p50 = st.ok_hops.quantile(0.50);
      out.hops_p95 = st.ok_hops.quantile(0.95);
      out.hops_p99 = st.ok_hops.quantile(0.99);
    }
  } else {
    // Ring sim: idealized routing, overlay traffic not charged.
    out.mean_hops = std::ceil(std::log2(static_cast<double>(sys.n())));
    out.max_hops = static_cast<std::uint64_t>(out.mean_hops);
    out.bits_node_round = -1.0;
  }
  return out;
}

CHURNSTORE_SCENARIO(chord,
                    "E14: message-accurate Chord — measured hops, bits, and "
                    "ring health vs churn (chord=net|ring|both)") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {1024, 4096};
  if (!cli.has("trials")) base.trials = 1;
  if (!cli.has("items")) base.workload.items = 8;
  if (!cli.has("searches")) base.workload.searchers_per_batch = 24;
  if (!cli.has("age-taus")) base.workload.age_taus = 2.0;

  banner(base, "E14 chord — message-accurate Chord DHT on the Network layer",
         "lookup success and MEASURED hop/bit cost via the normal charge "
         "path; the ring-sim rows (chord=ring) estimate hops and cannot "
         "measure bits");

  const std::string variant = base.extra("chord", "net");
  std::vector<bool> rings;
  if (variant == "both") {
    rings = {false, true};
  } else if (variant == "ring") {
    rings = {true};
  } else {
    rings = {false};
  }

  // New observability columns are APPENDED so downstream consumers of the
  // historical BENCH_chord.json column set keep their positions.
  Table t({"variant", "n", "churn/rd", "searches", "censored", "ok rate",
           "avail", "mean hops", "max hops", "hops/log2 n", "joined",
           "succ consist", "mean bits/node/rd", "locate rds", "maxrss MB",
           "hops p50", "hops p95", "hops p99", "lat p50", "lat p95",
           "lat p99", "lat p999"});
  for (const std::uint32_t n : base.ns) {
    for (const double cm : {0.0, 0.25 * base.churn.multiplier,
                            0.5 * base.churn.multiplier,
                            base.churn.multiplier}) {
      for (const bool ring : rings) {
        const ScenarioSpec cell =
            at_churn(base, n, cm).with_seed(mix64(base.seed + n));
        const std::string obs_label =
            std::string(ring ? "ring" : "net") + ".n" + std::to_string(n) +
            ".c" +
            std::to_string(static_cast<std::int64_t>(cell.churn.per_round(n)));
        const ChordCell res = run_cell(cell, ring, obs_label);
        const double log2n = std::log2(static_cast<double>(n));
        const std::uint64_t eligible = res.searches - res.censored;
        t.begin_row()
            .cell(ring ? "ring" : "net")
            .cell(static_cast<std::int64_t>(n))
            .cell(static_cast<std::int64_t>(cell.churn.per_round(n)))
            .cell(res.searches)
            .cell(res.censored)
            .cell(eligible ? static_cast<double>(res.ok) /
                                 static_cast<double>(eligible)
                           : 0.0,
                  3)
            .cell(res.availability, 3)
            .cell(res.mean_hops, 2)
            .cell(res.max_hops)
            .cell(res.mean_hops / log2n, 2);
        // The ring sim has no measurable ring state or charged traffic;
        // printing its defaults next to measured columns would read as
        // perfect health.
        const auto measured = [&t](double v, int precision) {
          if (v < 0.0) {
            t.cell("n/a (ring sim)");
          } else {
            t.cell(v, precision);
          }
        };
        measured(res.joined_fraction, 3);
        measured(res.consistency, 3);
        measured(res.bits_node_round, 0);
        t.cell(res.locate_rounds, 1)
            .cell(static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0),
                  1);
        // Quantile columns: "n/a" when the histogram has no mass (no
        // successful lookups) or is unmeasurable (ring sim has no real
        // routing, so no measured hop distribution).
        const auto quant = [&t](double v, int precision) {
          if (v < 0.0) {
            t.cell("n/a");
          } else {
            t.cell(v, precision);
          }
        };
        quant(res.hops_p50, 1);
        quant(res.hops_p95, 1);
        quant(res.hops_p99, 1);
        quant(res.lat_p50, 1);
        quant(res.lat_p95, 1);
        quant(res.lat_p99, 1);
        quant(res.lat_p999, 1);
      }
    }
  }
  emit(t, base);
}

}  // namespace
}  // namespace churnstore
