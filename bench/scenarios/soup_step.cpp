// M2 — Soup-step throughput vs shard count (the engine's microbench).
//
// Isolates the sharded TokenSoup::step() kernel: a standalone soup on a
// churning network, warmed to steady state, then a timed run of bare
// begin_round/step/deliver rounds at each shard count. Emits the table the
// BENCH_soup_step.json baseline is generated from:
//
//   bench_driver --scenario=soup_step json=true > BENCH_soup_step.json
//   bench_driver --scenario=soup_step n=100000 shard-sweep=1,4,16
//
// Keys: shard-sweep (default 1,4,16), steps (timed rounds, default 128);
// threads caps the pool (0 = hardware). scatter=direct|single|two|auto
// forces the forward-loop scatter strategy (A/B tool; results are
// bit-identical across modes). counters=true adds perf-counter columns
// (cycles / LLC misses / dTLB misses per forwarded token) when
// perf_event_open works, "n/a" where it is denied. baseline-sps=X pins the
// speedup denominator to a steps/sec value from an earlier row, so stitched
// single-row runs (one process per row, e.g. the n=1M rows) carry real
// ratios instead of self-baselined 1.00 — scripts/bench_diff.py --restitch
// recomputes the column for already-published JSON. The google-benchmark
// variant of the same kernel lives in bench_micro (BM_SoupStepSharded).
#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "scenario_common.h"
#include "util/heap_sentinel.h"
#include "util/perf_counters.h"
#include "util/resource.h"
#include "util/thread_pool.h"
#include "walk/token_soup.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

ScatterMode parse_scatter(const std::string& name) {
  if (name == "auto") return ScatterMode::kAuto;
  if (name == "direct") return ScatterMode::kDirect;
  if (name == "single") return ScatterMode::kWcSingle;
  if (name == "two") return ScatterMode::kWcTwoLevel;
  throw std::invalid_argument(
      "soup_step: scatter= must be auto|direct|single|two");
}

CHURNSTORE_SCENARIO(soup_step,
                    "M2: sharded soup-step throughput (S sweep, "
                    "BENCH_soup_step.json baseline)") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {4096, 16384};
  const auto steps =
      static_cast<std::uint32_t>(cli.get_int("steps", 128));
  const ScatterMode scatter = parse_scatter(cli.get("scatter", "auto"));
  const bool want_counters = cli.get_bool("counters", false);
  const double pinned_baseline = cli.get_double("baseline-sps", 0.0);
  // Big-n memory guard: the steady state holds ~ n * walks * length tokens
  // (x2 transiently during the handoff merge) plus the sample-buffer
  // window, which at the default soup density is tens of GB for n=1M. Large
  // runs therefore use a thinner soup so n=1M stays inside a 4 GB host.
  // The thinning is NOT silent: the applied density is a table/JSON column
  // ("walk-rate"/"thinned"), and explicit user-set densities at this scale
  // are rejected up front — running them would either blow the memory
  // budget or mislabel the workload, and the guard must never silently
  // substitute its own numbers for the caller's.
  const std::uint32_t big_n =
      *std::max_element(base.ns.begin(), base.ns.end());
  const bool thinned = big_n >= 500000;
  if (thinned) {
    if (cli.has("walk-rate") || cli.has("walk-t") || cli.has("walk-window")) {
      throw std::invalid_argument(
          "soup_step: explicit walk-rate/walk-t/walk-window are not "
          "honored at n >= 500000 — the big-n memory guard pins the soup "
          "density (walk-rate=0.25 walk-t=0.75 walk-window=1.0, reported "
          "in the walk-rate/thinned columns). Run n < 500000 to sweep "
          "densities, or drop the density keys.");
    }
    base.walk.rate_mult = 0.25;
    base.walk.t_mult = 0.75;
    base.walk.window_mult = 1.0;
  }
  base.walk.scatter = scatter;

  banner(base, "M2 soup_step — sharded soup-step throughput",
         "steady-state token moves per second vs shard count; >= 2x at 4+ "
         "shards on a multi-core host is the engine's acceptance bar");
  if (thinned && !base.csv && !base.json) {
    std::printf(
        "NOTE: n >= 500000 — soup density thinned to walk-rate=%.2f "
        "walk-t=%.2f walk-window=%.2f (big-n memory guard)\n\n",
        base.walk.rate_mult, base.walk.t_mult, base.walk.window_mult);
  }

  std::vector<std::uint32_t> sweep;
  for (const std::int64_t s : cli.get_int_list("shard-sweep", {1, 4, 16})) {
    sweep.push_back(static_cast<std::uint32_t>(s));
  }

  ThreadPool pool(base.threads);
  std::vector<std::string> cols = {"n",       "shards",      "threads",
                                   "steps/sec", "Mtokens/sec", "speedup",
                                   "walk-rate", "thinned",     "maxrss MB"};
  if (want_counters) {
    cols.insert(cols.end(),
                {"cyc/tok", "LLCm/tok", "dTLBm/tok", "allocs/rnd", "heapB/rnd"});
  }
  Table t(cols);
  for (const std::uint32_t n : base.ns) {
    double baseline_sps = pinned_baseline;
    for (const std::uint32_t shards : sweep) {
      SystemConfig cfg = base.with_n(n).system_config();
      cfg.sim.shards = shards;
      Network net(cfg.sim);
      if (shards != 1 && base.parallel) net.set_worker_pool(&pool);
      TokenSoup soup(net, cfg.walk);
      // Fill the pipeline so the timed section measures the steady state.
      for (std::uint32_t i = 0; i < 2 * soup.tau(); ++i) {
        net.begin_round();
        soup.step();
        net.deliver();
      }
      const double tokens_per_step =
          static_cast<double>(soup.tokens_alive());
      PerfCounters counters;
      if (want_counters) counters.start();
      const HeapQuiesceScope heap_probe;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::uint32_t i = 0; i < steps; ++i) {
        net.begin_round();
        soup.step();
        net.deliver();
      }
      const auto t1 = std::chrono::steady_clock::now();
      if (want_counters) counters.stop();
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      const double sps = secs > 0.0 ? steps / secs : 0.0;
      if (baseline_sps == 0.0) baseline_sps = sps;
      auto& row =
          t.begin_row()
              .cell(static_cast<std::int64_t>(n))
              .cell(static_cast<std::int64_t>(shards))
              .cell(static_cast<std::int64_t>(pool.size()))
              .cell(sps, 2)
              .cell(sps * tokens_per_step / 1e6, 2)
              .cell(baseline_sps > 0.0 ? sps / baseline_sps : 0.0, 2)
              .cell(base.walk.rate_mult, 2)
              .cell(static_cast<std::int64_t>(thinned ? 1 : 0))
              .cell(static_cast<double>(peak_rss_bytes()) /
                        (1024.0 * 1024.0),
                    1);
      if (want_counters) {
        // Per-token rates over the whole timed region. Counters that did
        // not open (denied/absent perf_event_open) print "n/a": the
        // degraded path is a supported, CI-exercised state, never a crash
        // and never silent zeros dressed up as measurements.
        const PerfCounters::Values v = counters.read();
        const double toks = tokens_per_step * steps;
        const auto rate_cell = [&](bool ok, std::uint64_t count) {
          if (ok && toks > 0.0) {
            row.cell(static_cast<double>(count) / toks, 3);
          } else {
            row.cell("n/a");
          }
        };
        rate_cell(v.cycles_ok, v.cycles);
        rate_cell(v.llc_misses_ok, v.llc_misses);
        rate_cell(v.dtlb_misses_ok, v.dtlb_misses);
        // Heap-sentinel columns (util/heap_sentinel.h): allocations and
        // bytes per round across the timed region — the steady-state claim
        // the HeapQuiesce tests pin, visible per configuration. Same "n/a"
        // degradation contract as the perf counters when the sentinel is
        // compiled out or forced off.
        if (HeapSentinel::available() && steps > 0) {
          const HeapSentinel::Totals d = heap_probe.delta();
          row.cell(static_cast<double>(d.allocs) / steps, 3);
          row.cell(static_cast<double>(d.bytes) / steps, 1);
        } else {
          row.cell("n/a");
          row.cell("n/a");
        }
      }
    }
  }
  emit(t, base);
}

}  // namespace
}  // namespace churnstore
