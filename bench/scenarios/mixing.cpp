// E2 — Dynamic mixing (paper Lemma 1).
//
// Claim: on a dynamic d-regular expander (edges changing every round, no
// churn), a walk of T = Theta(log n) steps lands within [1/2n, 3/2n] of
// every node, and all walks complete T steps within tau = O(log n) rounds.
//
// Measurement: many probe walks from a SINGLE source (injected in batches
// under the forwarding cap), sweeping the walk length and the edge-dynamics
// mode. The per-source destination TVD collapses once T crosses ~2.5 ln n
// for d = 8 — identically for static, rewired, and regenerated topologies,
// which is exactly the "dynamic mixing time" claim.
#include <vector>

#include "net/network.h"
#include "scenario_common.h"
#include "stats/divergence.h"
#include "walk/token_soup.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

UniformityReport measure(const ScenarioSpec& spec, EdgeDynamics dynamics,
                         double t_mult, std::uint64_t seed,
                         std::uint32_t total_probes) {
  SimConfig cfg = spec.system_config().sim;
  cfg.seed = seed;
  cfg.churn.kind = AdversaryKind::kNone;
  cfg.edge_dynamics = dynamics;
  const std::uint32_t n = cfg.n;
  Network net(cfg);
  WalkConfig wc = spec.walk;
  wc.t_mult = t_mult;
  TokenSoup soup(net, wc);
  soup.set_spawning(false);

  std::vector<std::uint64_t> arrivals(n, 0);
  std::uint64_t done = 0;
  soup.set_probe_hook(
      [&](std::uint64_t, Vertex d, Round) { ++arrivals[d]; ++done; });

  // Inject from vertex 0 in batches of cap/2 per round so nothing queues,
  // then drain.
  const std::uint32_t batch = std::max(1u, soup.cap() / 2);
  std::uint32_t injected = 0;
  while (done < total_probes) {
    net.begin_round();
    for (std::uint32_t i = 0; i < batch && injected < total_probes; ++i) {
      soup.inject_probe(0, 0, soup.walk_length());
      ++injected;
    }
    soup.step();
    net.deliver();
  }
  return uniformity_report(arrivals);
}

CHURNSTORE_SCENARIO(mixing, "E2: dynamic mixing time per edge mode (Lemma 1)") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {1024};
  if (!cli.has("trials")) base.trials = 1;
  const auto probes =
      static_cast<std::uint32_t>(cli.get_int("probes", 40000));

  banner(base, "E2 mixing — dynamic mixing time (Lemma 1)",
         "single-source destination TVD vs walk length, per edge-dynamics "
         "mode; T ~ 2.5 ln n suffices on every mode (mixing is Theta(log n))");

  struct Cell {
    double tvd = 0.0, min_pn = 0.0, max_pn = 0.0, zero = 0.0;
  };

  Runner runner(base);
  Table t({"n", "mode", "T (steps)", "T/ln n", "tvd", "min p*n", "max p*n",
           "zero frac"});
  for (const std::uint32_t n : base.ns) {
    for (const EdgeDynamics mode :
         {EdgeDynamics::kStatic, EdgeDynamics::kRewire,
          EdgeDynamics::kRegenerate}) {
      for (const double tm : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
        const ScenarioSpec cell_spec = base.with_n(n);
        const auto cells = runner.map_trials<Cell>(
            base.trials, [&cell_spec, mode, tm, n, probes](std::uint32_t trial) {
              const auto rep =
                  measure(cell_spec, mode, tm,
                          Runner::trial_seed(cell_spec.seed + n, trial),
                          probes);
              return Cell{rep.tvd, rep.min_prob_times_n, rep.max_prob_times_n,
                          rep.zero_fraction};
            });
        WalkConfig wc = base.walk;
        wc.t_mult = tm;
        const std::uint32_t steps = walk_length(n, wc);
        RunningStat tvd, min_pn, max_pn, zero;
        for (const Cell& c : cells) {
          tvd.add(c.tvd);
          min_pn.add(c.min_pn);
          max_pn.add(c.max_pn);
          zero.add(c.zero);
        }
        t.begin_row()
            .cell(static_cast<std::int64_t>(n))
            .cell(std::string(to_name(mode)))
            .cell(static_cast<std::int64_t>(steps))
            .cell(tm, 1)
            .cell(tvd.mean())
            .cell(min_pn.mean(), 3)
            .cell(max_pn.mean(), 3)
            .cell(zero.mean(), 3);
      }
    }
  }
  emit(t, base);
}

}  // namespace
}  // namespace churnstore
