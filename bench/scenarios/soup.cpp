// E1 — Soup Theorem (paper Theorem 1).
//
// Claim: with churn 4n/log^k n, there is a Core of >= n - 8n/log^{(k-1)/2} n
// nodes such that a walk from any core node ends at any core node with
// probability in [1/17n, 3/2n] after 2*tau rounds.
//
// Measurement: inject tagged probes from every node, run them for T steps
// under churn, and report (a) per-source survival (the |S| of Lemma 2),
// (b) destination uniformity (min/max arrival probability x n, TVD), and
// (c) the fraction of nodes inside the theorem's probability band.
#include <vector>

#include "net/network.h"
#include "scenario_common.h"
#include "stats/divergence.h"
#include "walk/token_soup.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

struct SoupRow {
  double survival = 0.0;
  double tvd = 0.0;
  double min_pn = 0.0;
  double max_pn = 0.0;
  double core_fraction = 0.0;  ///< dest nodes inside [1/17n, 3/2n] band
  double source_good = 0.0;    ///< sources with >= 50% of probes surviving
};

SoupRow run_once(const ScenarioSpec& spec, std::uint64_t seed,
                 std::uint32_t probes_per_node) {
  SimConfig cfg = spec.system_config().sim;
  cfg.seed = seed;
  const std::uint32_t n = cfg.n;
  Network net(cfg);
  TokenSoup soup(net, spec.walk);
  soup.set_spawning(false);  // isolate the probe measurement

  std::vector<std::uint64_t> arrivals(n, 0);
  std::vector<std::uint32_t> survived_per_source(n, 0);
  soup.set_probe_hook([&](std::uint64_t tag, Vertex d, Round) {
    ++arrivals[d];
    ++survived_per_source[tag];
  });

  net.begin_round();
  for (Vertex v = 0; v < n; ++v)
    for (std::uint32_t i = 0; i < probes_per_node; ++i)
      soup.inject_probe(v, v, soup.walk_length());
  for (std::uint32_t r = 0; r < soup.walk_length() + 2; ++r) {
    if (r > 0) net.begin_round();
    soup.step();
    net.deliver();
  }

  SoupRow row;
  const auto rep = uniformity_report(arrivals);
  const double injected = static_cast<double>(n) * probes_per_node;
  row.survival = static_cast<double>(rep.total) / injected;
  row.tvd = rep.tvd;
  row.min_pn = rep.min_prob_times_n;
  row.max_pn = rep.max_prob_times_n;

  // Theorem band: arrival probability within [1/17n, 3/2n].
  std::uint64_t in_band = 0;
  for (const auto a : arrivals) {
    const double pn = static_cast<double>(a) /
                      static_cast<double>(rep.total) * static_cast<double>(n);
    in_band += (pn >= 1.0 / 17.0 && pn <= 1.5);
  }
  row.core_fraction = static_cast<double>(in_band) / n;

  std::uint64_t good_sources = 0;
  for (const auto s : survived_per_source)
    good_sources += (2 * s >= probes_per_node);
  row.source_good = static_cast<double>(good_sources) / n;
  return row;
}

CHURNSTORE_SCENARIO(soup, "E1: Soup Theorem probe uniformity (Theorem 1)") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {256, 512, 1024};
  if (!cli.has("trials")) base.trials = 3;
  const auto probes = static_cast<std::uint32_t>(cli.get_int("probes", 24));

  banner(base, "E1 soup — Soup Theorem (Theorem 1)",
         "walks from a large Core land near-uniformly despite churn: "
         "min p*n >= 1/17, max p*n <= 3/2, Core ~ n - o(n)");

  Runner runner(base);
  Table t({"n", "churn/rd", "survival", "tvd", "min p*n", "max p*n",
           "band frac", "good src frac"});
  for (const std::uint32_t n : base.ns) {
    for (const double cm : {0.0, 0.25, base.churn.multiplier,
                            2 * base.churn.multiplier}) {
      const ScenarioSpec cell = at_churn(base, n, cm);
      const auto rows = runner.map_trials<SoupRow>(
          base.trials, [&cell, n, probes](std::uint32_t trial) {
            return run_once(cell, Runner::trial_seed(cell.seed + n, trial),
                            probes);
          });
      RunningStat survival, tvd, min_pn, max_pn, band, src;
      for (const SoupRow& row : rows) {
        survival.add(row.survival);
        tvd.add(row.tvd);
        min_pn.add(row.min_pn);
        max_pn.add(row.max_pn);
        band.add(row.core_fraction);
        src.add(row.source_good);
      }
      t.begin_row()
          .cell(static_cast<std::int64_t>(n))
          .cell(static_cast<std::int64_t>(cell.churn.per_round(n)))
          .cell(survival.mean())
          .cell(tvd.mean())
          .cell(min_pn.mean(), 3)
          .cell(max_pn.mean(), 3)
          .cell(band.mean(), 3)
          .cell(src.mean(), 3);
    }
  }
  emit(t, base);
}

}  // namespace
}  // namespace churnstore
