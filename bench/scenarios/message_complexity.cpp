// E8 — Scalability (paper section 1.1: "polylogarithmic in n bits processed
// and sent per round by each node").
//
// Measurement: run the full protocol stack (soup + storage + searches) and
// record per-node per-round bit counts across an n sweep. If traffic were
// linear in n the bits/ln^2(n) column would blow up with n; polylog keeps
// it near-constant (the soup's Theta(log^2 n) token forwarding dominates).
//
// `protocol=` swaps the stack under the same measurement: protocol=chord
// (chord=net) charges its lookup/stabilize/transfer messages through the
// same Network path, so the DHT's maintenance cost curve is measured
// like-for-like against the paper stack — the comparison the old ring-sim
// Chord could only estimate.
#include <cmath>

#include "scenario_common.h"
#include "stats/summary.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

CHURNSTORE_SCENARIO(message_complexity,
                    "E8: per-node traffic is polylog(n), not linear") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {128, 256, 512, 1024, 2048};
  if (!cli.has("trials")) base.trials = 1;
  if (!cli.has("items")) base.workload.items = 2;
  if (!cli.has("searches")) base.workload.searchers_per_batch = 6;
  if (!cli.has("batches")) base.workload.batches = 1;

  banner(base, "E8 message_complexity — per-node traffic is polylog(n)",
         "mean/max bits per node per round under the full workload; "
         "bits / ln^2 n stays near-constant while bits/n vanishes");

  Runner runner(base);
  Table t({"n", "mean bits/node/rd", "mean ci95", "max bits/node/rd",
           "mean/ln^2 n", "mean/n"});
  std::vector<double> xs, ys;
  for (const std::uint32_t n : base.ns) {
    const ScenarioSpec cell = base.with_n(n).with_seed(base.seed + n);
    const StoreSearchResult res = runner.store_search(cell);
    const double mean_bits = res.bits_node_round_mean.mean();
    const double ln2 = std::pow(std::log(static_cast<double>(n)), 2.0);
    t.begin_row()
        .cell(static_cast<std::int64_t>(n))
        .cell(mean_bits, 0)
        .cell(res.bits_node_round_mean.ci95_halfwidth(), 0)
        // .max() over trials: the column is the WORST trial's per-round
        // peak average, matching the paper's per-node bound reading.
        .cell(res.bits_node_round_max.max(), 0)
        .cell(mean_bits / ln2, 1)
        .cell(mean_bits / n, 1);
    xs.push_back(static_cast<double>(n));
    ys.push_back(mean_bits);
  }
  emit(t, base);
  if (!base.csv && !base.json) {
    std::printf(
        "\nlog-log slope of mean bits vs n: %.3f "
        "(0 = constant, 1 = linear; polylog gives ~0.1-0.3 at these n)\n",
        loglog_slope(xs, ys));
  }
}

}  // namespace
}  // namespace churnstore
