// C1 — Capacity: one big network instead of many small trials.
//
// The regime where the Soup Theorem's log-n bounds actually matter is
// n >= 100k — and a single run at that scale is exactly what per-trial
// parallelism cannot speed up. This scenario is the sharded round engine's
// showcase: many stored items with concurrent searchers in flight, the SAME
// seed re-run at each shard count, reporting wall-clock rounds/sec serial
// vs sharded. Results (locate rate, tokens) are bit-identical across rows
// of one n; only the speed changes.
//
//   bench_driver --scenario=capacity                         # n=100000
//   bench_driver --scenario=capacity n=16384 shard-sweep=1,4,16
//   bench_driver --scenario=capacity protocol=chord n=100000  # DHT at scale
//
// Keys: shard-sweep (default 1,4,16), measure-rounds (default 2 tau),
// items, searches; threads caps the pool (0 = hardware). Besides total
// rounds/sec the table breaks the round into phases (soup / handler /
// delivery rounds-per-second), so the per-phase sharding wins are visible
// in isolation; BENCH_capacity.json records the json=true baseline.
#include <chrono>

#include "scenario_common.h"
#include "util/resource.h"
#include "util/thread_pool.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

CHURNSTORE_SCENARIO(capacity,
                    "C1: large-n capacity — rounds/sec serial vs sharded, "
                    "same seed, bit-identical results") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {100000};
  if (!cli.has("items")) base.workload.items = 64;
  if (!cli.has("searches")) base.workload.searchers_per_batch = 128;

  banner(base, "C1 capacity — sharded round engine at large n",
         "rounds/sec for one big run vs shard count; the workload outcome "
         "is bit-identical per n (sharding is an execution detail)");

  std::vector<std::uint32_t> sweep;
  for (const std::int64_t s : cli.get_int_list("shard-sweep", {1, 4, 16})) {
    sweep.push_back(static_cast<std::uint32_t>(s));
  }

  ThreadPool pool(base.threads);
  // Per-phase columns isolate where a round goes: soup = TokenSoup's token
  // moves, handlers = every other protocol's (sharded) round hooks,
  // delivery = outbox flush + inbox fill + message dispatch. Each prints as
  // rounds/sec of that phase alone, so the handler-sharding win is
  // measurable separately from the soup's.
  Table t({"n", "shards", "churn/rd", "rounds/sec", "speedup", "soup r/s",
           "handler r/s", "deliver r/s", "tokens", "searches",
           "locate rate", "maxrss MB"});
  for (const std::uint32_t n : base.ns) {
    double baseline_rps = 0.0;
    for (const std::uint32_t shards : sweep) {
      SystemConfig cfg = base.with_n(n).system_config();
      cfg.sim.shards = shards;
      // Any registered stack runs here (protocol=chord measures the DHT at
      // capacity scale); the soup phase column is 0 for soup-less stacks.
      BuiltSystem built = build_stack(base.protocol, cfg, base.extras);
      P2PSystem& sys = *built.system;
      if (shards != 1 && base.parallel) sys.set_shard_pool(&pool);
      StorageService& svc = *built.service;
      Rng workload(mix64(base.seed ^ 0x63617061ULL));

      sys.run_rounds(sys.warmup_rounds());
      std::vector<ItemId> items;
      for (std::uint32_t i = 0; i < base.workload.items; ++i) {
        const ItemId item = mix64(base.seed * 1000 + i) | 1;
        for (int attempt = 0; attempt < 16; ++attempt) {
          const auto creator =
              static_cast<Vertex>(workload.next_below(sys.n()));
          if (svc.try_store(creator, item)) {
            items.push_back(item);
            break;
          }
          sys.run_round();
        }
      }
      std::vector<std::uint64_t> sids;
      for (std::uint32_t s = 0; s < base.workload.searchers_per_batch; ++s) {
        if (items.empty()) break;
        const ItemId item = items[workload.next_below(items.size())];
        const auto initiator =
            static_cast<Vertex>(workload.next_below(sys.n()));
        sids.push_back(svc.begin_search(initiator, item));
      }

      // Timed section: full-stack rounds with searches in flight.
      const auto measure = static_cast<std::uint32_t>(
          cli.get_int("measure-rounds", 2 * sys.tau()));
      sys.enable_phase_timing(true);
      sys.reset_phase_timers();
      const auto t0 = std::chrono::steady_clock::now();
      sys.run_rounds(measure);
      const auto t1 = std::chrono::steady_clock::now();
      sys.enable_phase_timing(false);
      const RoundPhaseTimers& ph = sys.phase_timers();
      const double secs = std::chrono::duration<double>(t1 - t0).count();
      const double rps = secs > 0.0 ? measure / secs : 0.0;
      if (baseline_rps == 0.0) baseline_rps = rps;
      auto phase_rps = [measure](double phase_secs) {
        return phase_secs > 0.0 ? measure / phase_secs : 0.0;
      };

      // Settle the searches (untimed) so the rate column means something.
      const std::uint32_t settled = measure >= svc.search_timeout() + 4
                                        ? 0
                                        : svc.search_timeout() + 4 - measure;
      sys.run_rounds(settled);
      std::uint64_t located = 0;
      for (const std::uint64_t sid : sids) {
        located += svc.search_outcome(sid).located;
      }
      t.begin_row()
          .cell(static_cast<std::int64_t>(n))
          .cell(static_cast<std::int64_t>(shards))
          .cell(static_cast<std::int64_t>(cfg.sim.churn.per_round(n)))
          .cell(rps, 2)
          .cell(baseline_rps > 0.0 ? rps / baseline_rps : 0.0, 2)
          .cell(phase_rps(ph.soup_secs), 2)
          .cell(phase_rps(ph.handler_secs), 2)
          .cell(phase_rps(ph.deliver_secs + ph.dispatch_secs), 2)
          .cell(static_cast<std::uint64_t>(
              sys.find_protocol<TokenSoup>() != nullptr
                  ? sys.soup().tokens_alive()
                  : 0))
          .cell(static_cast<std::uint64_t>(sids.size()))
          .cell(sids.empty() ? 0.0
                             : static_cast<double>(located) /
                                   static_cast<double>(sids.size()),
                3)
          .cell(static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0), 1);
    }
  }
  emit(t, base);
}

}  // namespace
}  // namespace churnstore
