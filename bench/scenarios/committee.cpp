// E4 — Committee maintenance (paper Theorem 2 / Corollary 2).
//
// Claim: a committee of Theta(log n) nodes, re-formed every refresh period
// by the most-sampled member, stays "good" for a long (poly(n)) time under
// churn; the failure probability per cycle is n^{-Omega(1)}.
//
// Measurement: run a committee for many refresh periods across a churn
// sweep; report survival to the horizon, generations completed, size
// statistics, and failed handovers.
#include <algorithm>

#include "committee/committee.h"
#include "scenario_common.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

struct CommitteeRow {
  bool valid = false;
  double survived = 0.0;
  double generations = 0.0;
  double min_size = 0.0;
  double mean_size = 0.0;
  double failed = 0.0;
};

CHURNSTORE_SCENARIO(committee, "E4: committee maintenance (Theorem 2)") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {512};
  if (!cli.has("trials")) base.trials = 3;
  const auto horizon_periods =
      static_cast<std::uint32_t>(cli.get_int("periods", 24));

  banner(base, "E4 committee — committee maintenance (Theorem 2)",
         "committee survival over many refresh periods vs churn; size stays "
         "Theta(log n), re-formation succeeds almost every cycle");

  Runner runner(base);
  Table t({"n", "churn/rd", "periods", "survived", "generations",
           "min size", "mean size", "failed handovers"});
  for (const std::uint32_t n : base.ns) {
    for (const double cm : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const ScenarioSpec cell = at_churn(base, n, cm);
      const auto rows = runner.map_trials<CommitteeRow>(
          base.trials, [&cell, n, horizon_periods](std::uint32_t trial) {
            SystemConfig cfg = cell.system_config();
            cfg.sim.seed = Runner::trial_seed(cell.seed + n, trial);
            P2PSystem sys(cfg);
            sys.run_rounds(sys.warmup_rounds());
            bool created = false;
            for (int i = 0; i < 20 && !created; ++i) {
              created = sys.committees().create(0, 1, Purpose::kStorage, 1,
                                                kNoPeer, {1}, -1);
              if (!created) sys.run_round();
            }
            CommitteeRow row;
            if (!created) return row;
            row.valid = true;

            RunningStat size_trace;
            std::size_t min_sz = 1u << 30;
            const std::uint32_t period = sys.committees().refresh_period();
            for (std::uint32_t p = 0; p < horizon_periods; ++p) {
              sys.run_rounds(period);
              const std::size_t sz = sys.committees().alive_members(1);
              size_trace.add(static_cast<double>(sz));
              min_sz = std::min(min_sz, sz);
              if (sz == 0) break;
            }
            row.survived = sys.committees().alive_members(1) > 0 ? 1.0 : 0.0;
            row.generations =
                static_cast<double>(sys.committees().info(1)->generations);
            row.min_size = static_cast<double>(min_sz);
            row.mean_size = size_trace.mean();
            row.failed =
                static_cast<double>(sys.metrics().committees_lost());
            return row;
          });
      RunningStat survived, gens, min_size, mean_size, failed;
      for (const CommitteeRow& row : rows) {
        if (!row.valid) continue;
        survived.add(row.survived);
        gens.add(row.generations);
        min_size.add(row.min_size);
        mean_size.add(row.mean_size);
        failed.add(row.failed);
      }
      t.begin_row()
          .cell(static_cast<std::int64_t>(n))
          .cell(static_cast<std::int64_t>(cell.churn.per_round(n)))
          .cell(static_cast<std::int64_t>(horizon_periods))
          .cell(survived.mean(), 2)
          .cell(gens.mean(), 1)
          .cell(min_size.mean(), 1)
          .cell(mean_size.mean(), 1)
          .cell(failed.mean(), 1);
    }
  }
  emit(t, base);
}

}  // namespace
}  // namespace churnstore
