// E3 — Walk survival under churn (paper Lemma 2).
//
// Claim: with churn 4n/log^k n per round, at least n - 4n/log^{(k-1)/2} n
// source nodes lose at most a 1/log^{(k-1)/2} n fraction of their walks
// before the mixing time.
//
// Measurement: per-source walk survival across a churn sweep; report the
// mean survival rate and the fraction of sources meeting the lemma's
// per-source survival bound.
#include <cmath>
#include <vector>

#include "net/network.h"
#include "scenario_common.h"
#include "walk/token_soup.h"

namespace churnstore {
namespace {

using namespace churnstore::bench;

struct SurvivalRow {
  double survival = 0.0;
  double frac_bound = 0.0;
  double frac_half = 0.0;
};

CHURNSTORE_SCENARIO(survival, "E3: walk survival under churn (Lemma 2)") {
  ScenarioSpec base = spec;
  if (!cli.has("n")) base.ns = {256, 512, 1024, 2048};
  const auto probes = static_cast<std::uint32_t>(cli.get_int("probes", 24));

  banner(base, "E3 survival — walk survival (Lemma 2)",
         "fraction of walks surviving to the mixing time vs churn; |S| = "
         "sources within the lemma's loss bound stays ~ n - o(n)");

  Runner runner(base);
  Table t(
      {"n", "churn/rd", "churn frac", "mean survival", "lemma bound",
       "|S|/n (>=bound)", "|S|/n (>=50%)"});
  for (const std::uint32_t n : base.ns) {
    const double ln_n = std::log(static_cast<double>(n));
    // Lemma's per-source survival requirement: 1 - 1/log^{(k-1)/2} n.
    const double lemma_bound = 1.0 - 1.0 / std::pow(ln_n, 0.25);
    for (const double cm : {0.1, 0.25, 0.5, 1.0}) {
      const ScenarioSpec cell = at_churn(base, n, cm);
      const auto rows = runner.map_trials<SurvivalRow>(
          base.trials,
          [&cell, n, probes, lemma_bound](std::uint32_t trial) {
            SimConfig cfg = cell.system_config().sim;
            cfg.seed = Runner::trial_seed(cell.seed + n, trial);
            Network net(cfg);
            TokenSoup soup(net, cell.walk);
            soup.set_spawning(false);
            std::vector<std::uint32_t> ok(n, 0);
            soup.set_probe_hook(
                [&](std::uint64_t tag, Vertex, Round) { ++ok[tag]; });
            net.begin_round();
            for (Vertex v = 0; v < n; ++v)
              for (std::uint32_t i = 0; i < probes; ++i)
                soup.inject_probe(v, v, soup.walk_length());
            for (std::uint32_t r = 0; r < soup.walk_length() + 2; ++r) {
              if (r > 0) net.begin_round();
              soup.step();
              net.deliver();
            }
            std::uint64_t total = 0, meets_bound = 0, meets_half = 0;
            for (const auto s : ok) {
              total += s;
              const double rate =
                  static_cast<double>(s) / static_cast<double>(probes);
              meets_bound += (rate >= lemma_bound);
              meets_half += (rate >= 0.5);
            }
            SurvivalRow row;
            row.survival = static_cast<double>(total) /
                           (static_cast<double>(n) * probes);
            row.frac_bound = static_cast<double>(meets_bound) / n;
            row.frac_half = static_cast<double>(meets_half) / n;
            return row;
          });
      RunningStat survival, frac_bound, frac_half;
      for (const SurvivalRow& row : rows) {
        survival.add(row.survival);
        frac_bound.add(row.frac_bound);
        frac_half.add(row.frac_half);
      }
      const std::uint32_t churn_rd = cell.churn.per_round(n);
      t.begin_row()
          .cell(static_cast<std::int64_t>(n))
          .cell(static_cast<std::int64_t>(churn_rd))
          .cell(static_cast<double>(churn_rd) / n, 4)
          .cell(survival.mean())
          .cell(lemma_bound, 3)
          .cell(frac_bound.mean(), 3)
          .cell(frac_half.mean(), 3);
    }
  }
  emit(t, base);
}

}  // namespace
}  // namespace churnstore
