// E7 — Data retrieval (paper Theorem 4).
//
// Claim: n - o(n) nodes can retrieve an available item within O(log n)
// rounds under churn up to O(n/log^{1+delta} n).
//
// Measurement: searches from random initiators across an (n x churn) grid;
// report locate/fetch success among nodes that stayed alive, censoring, and
// the locate-time distribution. The locate time should scale like ln n
// (log-log slope vs ln n near 1, i.e. O(log n) rounds).
#include <cmath>

#include "common.h"
#include "stats/summary.h"

using namespace churnstore;
using namespace churnstore::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto args = BenchArgs::parse(cli, {256, 512, 1024}, 2);

  banner("E7 bench_search — retrieval success and latency (Theorem 4)",
         "locate/fetch rates among surviving searchers and rounds-to-locate "
         "vs n and churn; latency grows like log n, success stays ~1");

  Table t({"n", "churn/rd", "searches", "censored", "locate rate",
           "fetch rate", "locate rds mean", "locate rds max", "tau"});
  std::vector<double> lnns, latencies;
  for (const auto n64 : args.n_list) {
    const auto n = static_cast<std::uint32_t>(n64);
    for (const double cm : {0.0, args.churn_mult, 2 * args.churn_mult}) {
      SystemConfig cfg = default_system_config(n, args.seed + n);
      cfg.sim.churn.multiplier = cm;
      if (cm == 0.0) cfg.sim.churn.kind = AdversaryKind::kNone;
      StoreSearchOptions opts;
      opts.items = 3;
      opts.searchers_per_batch = 12;
      opts.batches = 2;
      const auto res = run_store_search_trials(cfg, opts, args.trials);
      std::uint32_t tau = 0;
      {
        P2PSystem probe(cfg);
        tau = probe.tau();
      }
      t.begin_row()
          .cell(static_cast<std::int64_t>(n))
          .cell(static_cast<std::int64_t>(cfg.sim.churn.per_round(n)))
          .cell(res.searches)
          .cell(res.censored)
          .cell(res.locate_rate(), 3)
          .cell(res.fetch_rate(), 3)
          .cell(res.locate_rounds.mean(), 1)
          .cell(res.locate_rounds.max(), 1)
          .cell(static_cast<std::int64_t>(tau));
      if (cm == args.churn_mult && res.locate_rounds.count() > 0) {
        lnns.push_back(std::log(static_cast<double>(n)));
        latencies.push_back(res.locate_rounds.mean());
      }
    }
  }
  emit(t, args.csv);
  if (lnns.size() >= 2) {
    std::printf("\nlocate-rounds vs ln(n): linear slope %.2f rounds per ln n "
                "unit (Theorem 4: O(log n) rounds)\n",
                linear_slope(lnns, latencies));
  }
  return 0;
}
