// Microbenchmarks (google-benchmark) for the hot kernels underneath the
// simulation: PRNG, GF(256) fused multiply-accumulate, IDA encode/decode,
// graph generation and rewiring, spectral estimation, and a full soup step.
#include <benchmark/benchmark.h>

#include "coding/gf256.h"
#include "coding/ida.h"
#include "graph/regular_generator.h"
#include "graph/rewirer.h"
#include "graph/spectral.h"
#include "net/network.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "walk/token_soup.h"

using namespace churnstore;

namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngNextBelow(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_below(8));
}
BENCHMARK(BM_RngNextBelow);

void BM_Gf256MulAcc(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> src(len, 0x5a), dst(len, 0x11);
  gf256::ensure_tables();
  for (auto _ : state) {
    gf256::mul_acc(dst.data(), src.data(), 0x37, len);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_Gf256MulAcc)->Arg(256)->Arg(4096);

void BM_IdaEncode(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> data(size, 0xab);
  IdaCodec codec(6, 12);
  for (auto _ : state) {
    auto pieces = codec.encode(data);
    benchmark::DoNotOptimize(pieces.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_IdaEncode)->Arg(1024)->Arg(16384);

void BM_IdaDecode(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> data(size, 0xab);
  IdaCodec codec(6, 12);
  const auto pieces = codec.encode(data);
  std::vector<IdaPiece> subset(pieces.begin() + 3, pieces.begin() + 9);
  for (auto _ : state) {
    auto out = codec.decode(subset, size);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_IdaDecode)->Arg(1024)->Arg(16384);

void BM_RandomRegularGraph(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    auto g = random_regular_graph(n, 8, rng);
    benchmark::DoNotOptimize(g.slot_count());
  }
}
BENCHMARK(BM_RandomRegularGraph)->Arg(1024)->Arg(8192);

void BM_RewireRound(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(7);
  auto g = random_regular_graph(n, 8, rng);
  Rewirer rw(Rewirer::Options{.swaps_per_round = n / 8,
                              .connectivity_check_period = 0},
             rng.fork(1));
  for (auto _ : state) benchmark::DoNotOptimize(rw.apply(g));
}
BENCHMARK(BM_RewireRound)->Arg(1024)->Arg(8192);

void BM_SpectralEstimate(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(7);
  const auto g = random_regular_graph(n, 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(second_eigenvalue_estimate(g, rng));
  }
}
BENCHMARK(BM_SpectralEstimate)->Arg(1024)->Arg(4096);

void BM_SoupStep(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  SimConfig cfg;
  cfg.n = n;
  cfg.seed = 3;
  cfg.churn.kind = AdversaryKind::kUniform;
  cfg.churn.k = 1.5;
  cfg.churn.multiplier = 0.5;
  Network net(cfg);
  TokenSoup soup(net, WalkConfig{});
  // Fill the pipeline so we measure the steady state.
  for (std::uint32_t i = 0; i < 2 * soup.tau(); ++i) {
    net.begin_round();
    soup.step();
    net.deliver();
  }
  for (auto _ : state) {
    net.begin_round();
    soup.step();
    net.deliver();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(soup.tokens_alive()));
}
BENCHMARK(BM_SoupStep)->Arg(1024)->Arg(4096);

void BM_SoupStepSharded(benchmark::State& state) {
  // The sharded engine at S shards on a worker pool; bit-identical to the
  // serial run, so any throughput difference is pure execution. Compare
  // S=1 vs S=4/16 rows for the speedup (>= 2x at 4+ shards on a multi-core
  // host is the acceptance bar; a single-core host pins all rows at ~1x).
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto shards = static_cast<std::uint32_t>(state.range(1));
  SimConfig cfg;
  cfg.n = n;
  cfg.seed = 3;
  cfg.churn.kind = AdversaryKind::kUniform;
  cfg.churn.k = 1.5;
  cfg.churn.multiplier = 0.5;
  cfg.shards = shards;
  ThreadPool pool;
  Network net(cfg);
  if (shards != 1) net.set_worker_pool(&pool);
  TokenSoup soup(net, WalkConfig{});
  for (std::uint32_t i = 0; i < 2 * soup.tau(); ++i) {
    net.begin_round();
    soup.step();
    net.deliver();
  }
  for (auto _ : state) {
    net.begin_round();
    soup.step();
    net.deliver();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(soup.tokens_alive()));
}
BENCHMARK(BM_SoupStepSharded)
    ->Args({4096, 1})
    ->Args({4096, 4})
    ->Args({4096, 16})
    ->Args({100000, 1})
    ->Args({100000, 4})
    ->Args({100000, 16})
    ->Unit(benchmark::kMillisecond);

void BM_SoupStepScatter(benchmark::State& state) {
  // A/B of the forward-loop scatter strategies (results are bit-identical,
  // so the delta is pure execution cost): 0=direct pushes, 1=single-level
  // WC staging (line-batched flushes, non-temporal when
  // CHURNSTORE_NT_STORES is on), 2=two-level run demux. Auto picks by page
  // count; these rows force each mode at a size whose page table makes the
  // choice non-trivial (n=16384 -> 64 destination pages).
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto mode = static_cast<ScatterMode>(
      static_cast<std::uint8_t>(state.range(1) + 1));  // skip kAuto
  SimConfig cfg;
  cfg.n = n;
  cfg.seed = 3;
  cfg.churn.kind = AdversaryKind::kUniform;
  cfg.churn.k = 1.5;
  cfg.churn.multiplier = 0.5;
  Network net(cfg);
  WalkConfig wc;
  wc.scatter = mode;
  TokenSoup soup(net, wc);
  for (std::uint32_t i = 0; i < 2 * soup.tau(); ++i) {
    net.begin_round();
    soup.step();
    net.deliver();
  }
  for (auto _ : state) {
    net.begin_round();
    soup.step();
    net.deliver();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(soup.tokens_alive()));
}
BENCHMARK(BM_SoupStepScatter)
    ->Args({16384, 0})
    ->Args({16384, 1})
    ->Args({16384, 2})
    ->Unit(benchmark::kMillisecond);

/// --- walk-forward inner loop, isolated ------------------------------------
/// The exact per-token work of TokenSoup phase 1 (read token, decrement the
/// hop counter, pick a uniform neighbor, stage the handoff) over a synthetic
/// soup, in the three designs the hot-loop rework chose between:
///   AosPerToken  — 16-byte array-of-structs tokens, one next_below per token
///                  (the pre-rework layout and draw pattern)
///   SoaPerToken  — flat SoA columns (8-byte src + 2-byte packed meta),
///                  still one next_below per token
///   SoaBatched   — SoA columns plus stream_fill_below: the whole per-vertex
///                  draw batch is generated up front and neighbors are
///                  gathered off the buffer (the shipped design)
/// items/sec is tokens forwarded per second; compare the three rates.

constexpr std::uint32_t kWalkV = 4096;  ///< vertices
constexpr std::uint32_t kWalkK = 24;    ///< tokens per vertex
constexpr std::uint32_t kWalkD = 16;    ///< degree

struct WalkAosToken {
  std::uint64_t src;
  std::uint16_t meta;
};  // padded to 16 bytes, like the pre-rework Token

std::vector<Vertex> walk_neighbor_table() {
  std::vector<Vertex> nbr(static_cast<std::size_t>(kWalkV) * kWalkD);
  Rng rng(77);
  for (auto& u : nbr) u = static_cast<Vertex>(rng.next_below(kWalkV));
  return nbr;
}

void BM_WalkInnerAosPerToken(benchmark::State& state) {
  const std::vector<Vertex> nbr = walk_neighbor_table();
  std::vector<WalkAosToken> q(static_cast<std::size_t>(kWalkV) * kWalkK);
  for (std::size_t i = 0; i < q.size(); ++i) {
    q[i] = WalkAosToken{i, static_cast<std::uint16_t>(40)};
  }
  struct Staged {
    std::uint64_t src;
    Vertex dst;
    std::uint16_t meta;
  };
  std::vector<Staged> out(q.size());
  std::uint64_t key = 1;
  for (auto _ : state) {
    Staged* o = out.data();
    for (Vertex v = 0; v < kWalkV; ++v) {
      Rng rng = stream_rng(key, v);
      const Vertex* row = nbr.data() + static_cast<std::size_t>(v) * kWalkD;
      const WalkAosToken* t = q.data() + static_cast<std::size_t>(v) * kWalkK;
      for (std::uint32_t j = 0; j < kWalkK; ++j) {
        const Vertex u = row[rng.next_below(kWalkD)];
        *o++ = Staged{t[j].src, u, static_cast<std::uint16_t>(t[j].meta - 2)};
      }
    }
    benchmark::DoNotOptimize(out.data());
    ++key;  // fresh streams each iteration, as rounds do
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(q.size()));
}
BENCHMARK(BM_WalkInnerAosPerToken);

void BM_WalkInnerSoaPerToken(benchmark::State& state) {
  const std::vector<Vertex> nbr = walk_neighbor_table();
  const std::size_t total = static_cast<std::size_t>(kWalkV) * kWalkK;
  std::vector<std::uint64_t> qsrc(total);
  std::vector<std::uint16_t> qmeta(total, 40);
  for (std::size_t i = 0; i < total; ++i) qsrc[i] = i;
  std::vector<std::uint64_t> osrc(total);
  std::vector<Vertex> odst(total);
  std::vector<std::uint16_t> ometa(total);
  std::uint64_t key = 1;
  for (auto _ : state) {
    std::size_t w = 0;
    for (Vertex v = 0; v < kWalkV; ++v) {
      Rng rng = stream_rng(key, v);
      const Vertex* row = nbr.data() + static_cast<std::size_t>(v) * kWalkD;
      const std::size_t base = static_cast<std::size_t>(v) * kWalkK;
      for (std::uint32_t j = 0; j < kWalkK; ++j, ++w) {
        osrc[w] = qsrc[base + j];
        odst[w] = row[rng.next_below(kWalkD)];
        ometa[w] = static_cast<std::uint16_t>(qmeta[base + j] - 2);
      }
    }
    benchmark::DoNotOptimize(osrc.data());
    benchmark::DoNotOptimize(odst.data());
    ++key;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_WalkInnerSoaPerToken);

void BM_WalkInnerSoaBatched(benchmark::State& state) {
  const std::vector<Vertex> nbr = walk_neighbor_table();
  const std::size_t total = static_cast<std::size_t>(kWalkV) * kWalkK;
  std::vector<std::uint64_t> qsrc(total);
  std::vector<std::uint16_t> qmeta(total, 40);
  for (std::size_t i = 0; i < total; ++i) qsrc[i] = i;
  std::vector<std::uint64_t> osrc(total);
  std::vector<Vertex> odst(total);
  std::vector<std::uint16_t> ometa(total);
  std::vector<std::uint32_t> draws(kWalkK);
  std::uint64_t key = 1;
  for (auto _ : state) {
    std::size_t w = 0;
    for (Vertex v = 0; v < kWalkV; ++v) {
      stream_fill_below(key, v, kWalkD, draws.data(), kWalkK);
      const Vertex* row = nbr.data() + static_cast<std::size_t>(v) * kWalkD;
      const std::size_t base = static_cast<std::size_t>(v) * kWalkK;
      for (std::uint32_t j = 0; j < kWalkK; ++j, ++w) {
        osrc[w] = qsrc[base + j];
        odst[w] = row[draws[j]];
        ometa[w] = static_cast<std::uint16_t>(qmeta[base + j] - 2);
      }
    }
    benchmark::DoNotOptimize(osrc.data());
    benchmark::DoNotOptimize(odst.data());
    ++key;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_WalkInnerSoaBatched);

}  // namespace

BENCHMARK_MAIN();
