// E4 — Committee maintenance (paper Theorem 2 / Corollary 2).
//
// Claim: a committee of Theta(log n) nodes, re-formed every refresh period
// by the most-sampled member, stays "good" for a long (poly(n)) time under
// churn; the failure probability per cycle is n^{-Omega(1)}.
//
// Measurement: run a committee for many refresh periods across a churn
// sweep; report survival to the horizon, generations completed, size
// statistics, and failed handovers.
#include "committee/committee.h"
#include "common.h"

using namespace churnstore;
using namespace churnstore::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto args = BenchArgs::parse(cli, {512}, 3);
  const auto horizon_periods =
      static_cast<std::uint32_t>(cli.get_int("periods", 24));

  banner("E4 bench_committee — committee maintenance (Theorem 2)",
         "committee survival over many refresh periods vs churn; size stays "
         "Theta(log n), re-formation succeeds almost every cycle");

  Table t({"n", "churn/rd", "periods", "survived", "generations",
           "min size", "mean size", "failed handovers"});
  for (const auto n64 : args.n_list) {
    const auto n = static_cast<std::uint32_t>(n64);
    for (const double cm : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      RunningStat survived, gens, min_size, mean_size, failed;
      std::uint32_t churn_rd = 0;
      for (std::uint32_t trial = 0; trial < args.trials; ++trial) {
        SystemConfig cfg = default_system_config(
            n, mix64(args.seed + trial * 23 + n));
        cfg.sim.churn.multiplier = cm;
        if (cm == 0.0) cfg.sim.churn.kind = AdversaryKind::kNone;
        churn_rd = cfg.sim.churn.per_round(n);
        P2PSystem sys(cfg);
        sys.run_rounds(sys.warmup_rounds());
        bool created = false;
        for (int i = 0; i < 20 && !created; ++i) {
          created = sys.committees().create(0, 1, Purpose::kStorage, 1,
                                            kNoPeer, {1}, -1);
          if (!created) sys.run_round();
        }
        if (!created) continue;

        RunningStat size_trace;
        std::size_t min_sz = 1u << 30;
        const std::uint32_t period = sys.committees().refresh_period();
        for (std::uint32_t p = 0; p < horizon_periods; ++p) {
          sys.run_rounds(period);
          const std::size_t sz = sys.committees().alive_members(1);
          size_trace.add(static_cast<double>(sz));
          min_sz = std::min(min_sz, sz);
          if (sz == 0) break;
        }
        survived.add(sys.committees().alive_members(1) > 0 ? 1.0 : 0.0);
        gens.add(static_cast<double>(sys.committees().info(1)->generations));
        min_size.add(static_cast<double>(min_sz));
        mean_size.add(size_trace.mean());
        failed.add(static_cast<double>(sys.metrics().committees_lost()));
      }
      t.begin_row()
          .cell(static_cast<std::int64_t>(n))
          .cell(static_cast<std::int64_t>(churn_rd))
          .cell(static_cast<std::int64_t>(horizon_periods))
          .cell(survived.mean(), 2)
          .cell(gens.mean(), 1)
          .cell(min_size.mean(), 1)
          .cell(mean_size.mean(), 1)
          .cell(failed.mean(), 1);
    }
  }
  emit(t, args.csv);
  return 0;
}
