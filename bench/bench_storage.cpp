// E6 — Data storage persistence (paper Theorem 3).
//
// Claim: an item stored by a node is *available* (recoverable + findable
// through a Omega(sqrt n) landmark set) for a polynomial number of rounds
// under churn up to O(n/log^{1+delta} n), with only Theta(log n) copies.
//
// Measurement: availability traces across a churn sweep — fraction of
// sampled rounds where the item is recoverable/available, the number of
// live copies, committee generations completed, and when (if ever) the
// item was lost.
#include "common.h"

using namespace churnstore;
using namespace churnstore::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto args = BenchArgs::parse(cli, {512}, 3);
  const double horizon_taus = cli.get_double("horizon-taus", 20.0);

  banner("E6 bench_storage — storage persistence (Theorem 3)",
         "availability over a long horizon vs churn; copies stay Theta(log "
         "n), the item survives every committee handover");

  Table t({"n", "churn/rd", "horizon rds", "recoverable", "available",
           "copies mean", "copies min", "generations", "lost@round"});
  for (const auto n64 : args.n_list) {
    const auto n = static_cast<std::uint32_t>(n64);
    for (const double cm : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      RunningStat reco, avail, copies_mean, copies_min, gens;
      std::int64_t lost_at = -1;
      std::uint32_t churn_rd = 0, horizon = 0;
      for (std::uint32_t trial = 0; trial < args.trials; ++trial) {
        SystemConfig cfg =
            default_system_config(n, mix64(args.seed + trial * 41 + n));
        cfg.sim.churn.multiplier = cm;
        if (cm == 0.0) cfg.sim.churn.kind = AdversaryKind::kNone;
        churn_rd = cfg.sim.churn.per_round(n);
        const auto trace = run_availability_trial(cfg, horizon_taus);
        horizon = static_cast<std::uint32_t>(trace.rounds.size()) * 4;
        reco.add(trace.recoverable_fraction());
        avail.add(trace.availability_fraction());
        RunningStat c;
        std::uint64_t mn = ~0ull;
        for (const auto v : trace.copies) {
          c.add(static_cast<double>(v));
          mn = std::min(mn, v);
        }
        copies_mean.add(c.mean());
        copies_min.add(static_cast<double>(mn));
        gens.add(static_cast<double>(trace.generations));
        if (trace.first_unrecoverable() >= 0) {
          lost_at = trace.first_unrecoverable();
        }
      }
      t.begin_row()
          .cell(static_cast<std::int64_t>(n))
          .cell(static_cast<std::int64_t>(churn_rd))
          .cell(static_cast<std::int64_t>(horizon))
          .cell(reco.mean(), 3)
          .cell(avail.mean(), 3)
          .cell(copies_mean.mean(), 1)
          .cell(copies_min.mean(), 1)
          .cell(gens.mean(), 1)
          .cell(lost_at);
    }
  }
  emit(t, args.csv);
  return 0;
}
