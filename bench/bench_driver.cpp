// The unified experiment driver: every workload that used to be its own
// bench binary is a registered scenario (see bench/scenarios/) selected at
// run time.
//
//   bench_driver --list
//   bench_driver --stacks
//   bench_driver --scenario=search n=256,512 trials=4 churn-mult=1.0
//   bench_driver --scenario=baselines protocol=chord n=512 json=true
//
// All spec keys are bare key=value (or --key=value); CHURNSTORE_<KEY>
// environment variables act as defaults, so the whole suite scales up or
// down without editing command lines.
#include <cstdio>
#include <exception>

#include "core/scenario.h"
#include "core/stacks.h"
#include "util/cli.h"

using namespace churnstore;

namespace {

void print_usage() {
  std::printf(
      "usage: bench_driver --scenario=<name> [key=value ...]\n"
      "       bench_driver --list      (scenario catalog)\n"
      "       bench_driver --stacks    (protocol stack catalog)\n"
      "\ncommon keys: protocol n degree seed trials churn churn-mult edge\n"
      "             items searches batches age-taus threads parallel csv "
      "json\n");
}

void print_catalog() {
  std::printf("registered scenarios:\n");
  for (const ScenarioDef* def : ScenarioRegistry::instance().all()) {
    std::printf("  %-20s %s\n", def->name.c_str(), def->summary.c_str());
  }
}

void print_stacks() {
  std::printf("protocol stacks (spec key: protocol=<name>):\n");
  for (const auto& [name, summary] : stack_catalog()) {
    std::printf("  %-18s %s\n", name.c_str(), summary.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.get_bool("help", false)) {
    print_usage();
    return 0;
  }
  if (cli.get_bool("list", false)) {
    print_catalog();
    return 0;
  }
  if (cli.get_bool("stacks", false)) {
    print_stacks();
    return 0;
  }

  std::string name = cli.get("scenario", "");
  if (name.empty() && !cli.positional().empty()) name = cli.positional().front();
  if (name.empty()) {
    print_usage();
    std::printf("\n");
    print_catalog();
    return 2;
  }

  const ScenarioDef* def = ScenarioRegistry::instance().find(name);
  if (!def) {
    std::fprintf(stderr, "unknown scenario: %s\n\n", name.c_str());
    print_catalog();
    return 2;
  }

  try {
    const ScenarioSpec spec = ScenarioSpec::from_cli(cli);
    def->run(spec, cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario %s failed: %s\n", name.c_str(), e.what());
    return 1;
  }
  return 0;
}
