// E13 — Design ablations around the paper's constants.
//
// Sweeps the knobs DESIGN.md calls out: committee refresh period (paper:
// every 2 tau), invitation oversampling (our finite-n compensation for
// sample staleness), landmark tree fanout (paper: 2) and TTL (paper: 2
// tau), and walk length. Each row reports item persistence, search
// success, and the per-node traffic the setting costs.
#include "common.h"

using namespace churnstore;
using namespace churnstore::bench;

namespace {

struct AblationResult {
  double persist = 0.0;
  double locate = 0.0;
  double bits = 0.0;
};

AblationResult run(SystemConfig cfg, std::uint32_t trials,
                   std::uint64_t seed) {
  RunningStat persist, locate, bits;
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    cfg.sim.seed = mix64(seed + trial * 101);
    const auto trace = run_availability_trial(cfg, 10.0);
    persist.add(trace.recoverable_fraction());
    StoreSearchOptions opts;
    opts.items = 1;
    opts.searchers_per_batch = 8;
    opts.batches = 1;
    const auto res = run_store_search_trial(cfg, opts);
    locate.add(res.locate_rate());
    bits.add(res.mean_bits_node_round);
  }
  return AblationResult{persist.mean(), locate.mean(), bits.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto args = BenchArgs::parse(cli, {512}, 2);
  const auto n = static_cast<std::uint32_t>(args.n_list.front());

  banner("E13 bench_ablation — design-choice sweeps",
         "persistence / search success / cost as each protocol constant "
         "moves around the paper's choice");

  Table t({"knob", "value", "recoverable", "locate rate",
           "mean bits/node/rd"});
  auto base = [&] {
    SystemConfig cfg = default_system_config(n, args.seed);
    cfg.sim.churn.multiplier = args.churn_mult;
    return cfg;
  };

  for (const double v : {0.5, 1.0, 2.0}) {
    SystemConfig cfg = base();
    cfg.protocol.refresh_taus = v;
    const auto r = run(cfg, args.trials, args.seed + 1);
    t.begin_row().cell("refresh period (taus)").cell(v, 1).cell(r.persist, 3)
        .cell(r.locate, 3).cell(r.bits, 0);
  }
  for (const double v : {1.0, 2.0, 3.0, 4.0}) {
    SystemConfig cfg = base();
    cfg.protocol.invite_oversample = v;
    const auto r = run(cfg, args.trials, args.seed + 2);
    t.begin_row().cell("invite oversample").cell(v, 1).cell(r.persist, 3)
        .cell(r.locate, 3).cell(r.bits, 0);
  }
  for (const std::uint32_t v : {2u, 3u, 4u}) {
    SystemConfig cfg = base();
    cfg.protocol.tree_fanout = v;
    const auto r = run(cfg, args.trials, args.seed + 3);
    t.begin_row().cell("tree fanout").cell(static_cast<std::int64_t>(v))
        .cell(r.persist, 3).cell(r.locate, 3).cell(r.bits, 0);
  }
  for (const double v : {1.0, 2.0, 3.0}) {
    SystemConfig cfg = base();
    cfg.protocol.landmark_ttl_taus = v;
    const auto r = run(cfg, args.trials, args.seed + 4);
    t.begin_row().cell("landmark TTL (taus)").cell(v, 1).cell(r.persist, 3)
        .cell(r.locate, 3).cell(r.bits, 0);
  }
  for (const double v : {2.0, 2.5, 3.0}) {
    SystemConfig cfg = base();
    cfg.walk.t_mult = v;
    const auto r = run(cfg, args.trials, args.seed + 5);
    t.begin_row().cell("walk length (x ln n)").cell(v, 1).cell(r.persist, 3)
        .cell(r.locate, 3).cell(r.bits, 0);
  }
  for (const double v : {1.0, 1.5, 2.5}) {
    SystemConfig cfg = base();
    cfg.walk.rate_mult = v;
    const auto r = run(cfg, args.trials, args.seed + 6);
    t.begin_row().cell("walk rate (x ln n)").cell(v, 1).cell(r.persist, 3)
        .cell(r.locate, 3).cell(r.bits, 0);
  }
  emit(t, args.csv);
  return 0;
}
