// E12 — Adversary-strategy ablation (the oblivious adversary of section 2).
//
// The analysis only needs the adversary to be oblivious to protocol coins;
// it may otherwise churn whatever it likes. This bench runs the same
// storage workload against every implemented oblivious strategy — uniform
// replacement, contiguous block sweeps, a hammered fixed region, and
// lifetime-targeted (oldest/youngest-first) — and shows the guarantees are
// strategy-independent (random placement makes all oblivious choices look
// alike).
#include "common.h"

using namespace churnstore;
using namespace churnstore::bench;

namespace {

const char* kind_name(AdversaryKind k) {
  switch (k) {
    case AdversaryKind::kNone: return "none";
    case AdversaryKind::kUniform: return "uniform";
    case AdversaryKind::kBlockSweep: return "block-sweep";
    case AdversaryKind::kRegionRepeat: return "region-repeat";
    case AdversaryKind::kOldestFirst: return "oldest-first";
    case AdversaryKind::kYoungestFirst: return "youngest-first";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto args = BenchArgs::parse(cli, {512}, 2);

  banner("E12 bench_adversary — oblivious strategy ablation",
         "same churn volume, different victim-selection strategies: the "
         "random placement of committees/landmarks equalizes them all");

  Table t({"adversary", "n", "churn/rd", "recoverable", "available",
           "locate rate", "fetch rate"});
  for (const auto n64 : args.n_list) {
    const auto n = static_cast<std::uint32_t>(n64);
    for (const double cm : {0.5 * args.churn_mult, args.churn_mult}) {
    for (const AdversaryKind kind :
         {AdversaryKind::kUniform, AdversaryKind::kBlockSweep,
          AdversaryKind::kRegionRepeat, AdversaryKind::kOldestFirst,
          AdversaryKind::kYoungestFirst}) {
      RunningStat reco, avail, locate, fetch;
      std::uint32_t churn_rd = 0;
      for (std::uint32_t trial = 0; trial < args.trials; ++trial) {
        SystemConfig cfg =
            default_system_config(n, mix64(args.seed + trial * 91 + n));
        cfg.sim.churn.kind = kind;
        cfg.sim.churn.multiplier = cm;
        churn_rd = cfg.sim.churn.per_round(n);
        const auto trace = run_availability_trial(cfg, 8.0);
        reco.add(trace.recoverable_fraction());
        avail.add(trace.availability_fraction());

        StoreSearchOptions opts;
        opts.items = 2;
        opts.searchers_per_batch = 8;
        opts.batches = 1;
        const auto res = run_store_search_trial(cfg, opts);
        locate.add(res.locate_rate());
        fetch.add(res.fetch_rate());
      }
      t.begin_row()
          .cell(kind_name(kind))
          .cell(static_cast<std::int64_t>(n))
          .cell(static_cast<std::int64_t>(churn_rd))
          .cell(reco.mean(), 3)
          .cell(avail.mean(), 3)
          .cell(locate.mean(), 3)
          .cell(fetch.mean(), 3);
    }
    }
  }
  emit(t, args.csv);

  // Second panel: what obliviousness buys. Same churn VOLUME, but the
  // adversary is allowed to see committee membership (model violation).
  std::printf("\n-- adaptive (non-oblivious) adversary, same churn volume --\n");
  Table t2({"adversary", "n", "churn/rd", "recoverable after 8 taus"});
  for (const auto n64 : args.n_list) {
    const auto n = static_cast<std::uint32_t>(n64);
    for (const bool adaptive : {false, true}) {
      RunningStat reco;
      std::uint32_t churn_rd = 0;
      for (std::uint32_t trial = 0; trial < args.trials; ++trial) {
        SystemConfig cfg =
            default_system_config(n, mix64(args.seed + trial * 97 + n));
        cfg.sim.churn.multiplier = 0.5 * args.churn_mult;
        if (adaptive) cfg.sim.churn.kind = AdversaryKind::kAdaptive;
        churn_rd = cfg.sim.churn.per_round(n);
        P2PSystem sys(cfg);
        if (adaptive) sys.enable_adaptive_adversary();
        sys.run_rounds(sys.warmup_rounds());
        for (int i = 0; i < 20 && !sys.store_item(0, 1); ++i) sys.run_round();
        sys.run_rounds(8 * sys.tau());
        reco.add(sys.store().is_recoverable(1) ? 1.0 : 0.0);
      }
      t2.begin_row()
          .cell(adaptive ? "ADAPTIVE (sees committees)" : "oblivious uniform")
          .cell(static_cast<std::int64_t>(n))
          .cell(static_cast<std::int64_t>(churn_rd))
          .cell(reco.mean(), 2);
    }
  }
  emit(t2, args.csv);
  return 0;
}
