// Oblivious churn adversaries.
//
// The paper's adversary commits to the entire sequence of graphs (which
// peers join/leave when, and how edges change) before round 0, with no
// access to the algorithm's random choices. We realize obliviousness by
// giving the adversary its own RNG stream with no feedback path from any
// protocol state: every strategy below is a function of (round, vertex
// birth schedule, adversary coins) only — quantities the adversary itself
// determines — so generating choices lazily is equivalent to pre-commitment.
#pragma once

#include <cstdint>
#include <vector>

#include "net/config.h"
#include "net/types.h"
#include "util/rng.h"

namespace churnstore {

class Adversary {
 public:
  Adversary(AdversaryKind kind, std::uint32_t n, Rng rng);

  /// Vertices to replace at the start of round `r` (count entries,
  /// distinct), written into `out` (cleared first; reuse the same buffer
  /// every round and the call is allocation-free once its capacity and
  /// the internal scratch reach steady state — this runs inside the
  /// heap-quiet region HeapQuiesceScope polices). `birth_round[v]` is the
  /// round the current occupant of v joined — a schedule the adversary
  /// itself produced, hence oblivious-safe input.
  void select(Round r, std::uint32_t count,
              const std::vector<Round>& birth_round, std::vector<Vertex>& out);

  [[nodiscard]] AdversaryKind kind() const noexcept { return kind_; }

 private:
  AdversaryKind kind_;
  std::uint32_t n_;
  Rng rng_;
  Vertex sweep_pos_ = 0;        ///< cursor for kBlockSweep
  std::vector<Vertex> region_;  ///< fixed victim region for kRegionRepeat
  // shardcheck:cold-state(sampling scratch grown to n on the first round, reused in place after)
  std::vector<std::uint32_t> index_scratch_;
  // shardcheck:cold-state(sampling scratch grown to n on the first round, reused in place after)
  std::vector<std::uint8_t> seen_scratch_;
  // shardcheck:cold-state(region-index picks buffer, capacity steady after the first round)
  std::vector<std::uint32_t> pick_scratch_;
};

}  // namespace churnstore
