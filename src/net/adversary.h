// Oblivious churn adversaries.
//
// The paper's adversary commits to the entire sequence of graphs (which
// peers join/leave when, and how edges change) before round 0, with no
// access to the algorithm's random choices. We realize obliviousness by
// giving the adversary its own RNG stream with no feedback path from any
// protocol state: every strategy below is a function of (round, vertex
// birth schedule, adversary coins) only — quantities the adversary itself
// determines — so generating choices lazily is equivalent to pre-commitment.
#pragma once

#include <cstdint>
#include <vector>

#include "net/config.h"
#include "net/types.h"
#include "util/rng.h"

namespace churnstore {

class Adversary {
 public:
  Adversary(AdversaryKind kind, std::uint32_t n, Rng rng);

  /// Vertices to replace at the start of round `r` (count entries, distinct).
  /// `birth_round[v]` is the round the current occupant of v joined — a
  /// schedule the adversary itself produced, hence oblivious-safe input.
  [[nodiscard]] std::vector<Vertex> select(Round r, std::uint32_t count,
                                           const std::vector<Round>& birth_round);

  [[nodiscard]] AdversaryKind kind() const noexcept { return kind_; }

 private:
  AdversaryKind kind_;
  std::uint32_t n_;
  Rng rng_;
  Vertex sweep_pos_ = 0;        ///< cursor for kBlockSweep
  std::vector<Vertex> region_;  ///< fixed victim region for kRegionRepeat
};

}  // namespace churnstore
