// Wire messages. All non-walk protocol traffic in the paper is point-to-
// point by peer id (invitations, clique exchanges, landmark growth,
// inquiries, reports), so the Message is a typed word vector addressed to a
// PeerId; delivery fails silently when the target has been churned out.
//
// Size accounting: a message is charged header (src + dst + type) plus 64
// bits per payload word plus any opaque payload bits (used for data-item
// bytes, so the scalability measurements include item transfer costs).
//
// Queueing: serial protocol code queues through Network::send; shard tasks
// of the sharded round engine queue through Network::send_sharded (one
// lock-free lane per shard). Network::deliver merges the lanes behind the
// serial outbox in ascending shard order, which keeps delivery order — and
// therefore every downstream protocol decision — independent of the shard
// count (see util/sharding.h for why contiguous shards make that hold).
#pragma once

#include <cstdint>

#include "net/types.h"
#include "util/small_vec.h"

namespace churnstore {

enum class MsgType : std::uint32_t {
  kNone = 0,
  // Committee protocol (Algorithm 1).
  kCommitteeInvite,    ///< creator/candidate -> future member
  kCommitteeCount,     ///< member -> member: walk count of record round
  kCommitteeCandidateAlive,  ///< candidate -> all members: "my invites went out"
  kCommitteeAccept,    ///< invitee -> candidate
  kCommitteeConfirm,   ///< candidate -> accepted member: committee final
  kCommitteeHandover,  ///< candidate -> old members: successor confirmed, resign
  kCommitteeDissolve,  ///< outranked candidate -> its invitees
  // Landmark protocol (Algorithm 2).
  kLandmarkGrow,       ///< parent -> child: join tree, grow further
  // Storage / retrieval protocols (Algorithms 3 & 4).
  kInquiry,            ///< search landmark -> sampled node: "do you know I?"
  kInquiryHit,         ///< storage landmark/member -> search landmark
  kReport,             ///< search landmark -> search initiator
  kFetchRequest,       ///< initiator -> holder
  kFetchReply,         ///< holder -> initiator (carries item payload bits)
  // Baseline protocols.
  kFloodData,
  kProbe,
  kProbeHit,
  // Chord DHT on the Network layer (baseline/chord_net). Iterative
  // find_successor routing plus ring maintenance, all as charged messages.
  kChordLookup,          ///< initiator -> hop: route key ([key, token, want_data])
  kChordLookupReply,     ///< hop -> initiator: next hop, or holder + succ list
  kChordStabilize,       ///< node -> successor: "who is your predecessor?"
  kChordStabilizeReply,  ///< successor -> node: predecessor + successor list
  kChordNotify,          ///< node -> successor: "I might be your predecessor"
  kChordFetch,           ///< initiator -> holder: retrieve item payload
  kChordFetchReply,      ///< holder -> initiator: payload blob (or not-found)
  kChordTransfer,        ///< replica push / range handover (carries payload)
  kChordStoreAck,        ///< holder -> store initiator: copy placed
};

/// Inline word capacity. Every fixed-layout message in the repo — committee
/// count/accept/alive/handover/dissolve, re-formation invites (12 words),
/// landmark grow headers, inquiries, probes, fetch requests — fits without
/// touching an allocator; only member/holder list tails spill, and those go
/// to the sending shard's arena (Arena::current()), not the global heap.
inline constexpr std::size_t kInlineWords = 12;
/// Inline blob capacity; real item payloads/IDA pieces spill to the arena.
inline constexpr std::size_t kInlineBlobBytes = 16;

struct Message {
  PeerId src = kNoPeer;
  PeerId dst = kNoPeer;
  MsgType type = MsgType::kNone;
  /// Protocol-defined scalar fields (ids, rounds, ranks, list payloads).
  SmallVec<std::uint64_t, kInlineWords> words;
  /// Data bytes carried by the message (item payloads, IDA pieces). Carried
  /// for real so end-to-end integrity is testable, and charged bit-exactly.
  SmallVec<std::uint8_t, kInlineBlobBytes> blob;
  /// Additional opaque bits charged but not materialized.
  std::uint64_t payload_bits = 0;
  /// Optional request-trace correlation id (obs/trace.h); 0 = untraced. A
  /// set id is charged as one extra header word below, so traced runs
  /// account their own overhead honestly while untraced messages cost
  /// exactly what they did before tracing existed.
  std::uint64_t trace_id = 0;

  [[nodiscard]] std::uint64_t size_bits() const noexcept {
    return 3 * 64 + 64 * static_cast<std::uint64_t>(words.size()) +
           8 * static_cast<std::uint64_t>(blob.size()) + payload_bits +
           (trace_id != 0 ? 64 : 0);
  }
};

}  // namespace churnstore
