#include "net/network.h"

#include <thread>

#include "graph/regular_generator.h"
#include "util/thread_pool.h"

namespace churnstore {

namespace {

Rewirer::Options rewire_options(const SimConfig& c) {
  Rewirer::Options o;
  if (c.edge_dynamics == EdgeDynamics::kRewire) {
    o.swaps_per_round = c.rewire_swaps != 0 ? c.rewire_swaps : c.n / 8;
  } else {
    o.swaps_per_round = 0;
  }
  return o;
}

}  // namespace

Network::Network(const SimConfig& config)
    : config_(config),
      topology_rng_(mix64(config.seed ^ 0x746f706fULL)),
      churn_rng_(mix64(config.seed ^ 0x63687572ULL)),
      protocol_rng_(mix64(config.seed ^ 0x70726f74ULL)),
      graph_(random_regular_graph(config.n, config.degree, topology_rng_)),
      rewirer_(rewire_options(config), topology_rng_.fork(0x7265)),
      adversary_(config.churn.kind, config.n, churn_rng_.fork(0x6164)),
      peer_at_(config.n, kNoPeer),
      birth_(config.n, 0),
      shards_(config.n, config.shards != 0
                            ? config.shards
                            : std::max(1u, std::thread::hardware_concurrency())),
      inbox_(config.n),
      metrics_(config.n, shards_.count()) {
  arenas_.reserve(shards_.count());
  shard_lanes_.reserve(shards_.count());
  deliver_buckets_.resize(shards_.count());
  for (std::uint32_t s = 0; s < shards_.count(); ++s) {
    arenas_.push_back(std::make_unique<Arena>());
    shard_lanes_.emplace_back(arenas_.back().get());
  }
  vertex_of_.init(config.n);
  for (Vertex v = 0; v < config_.n; ++v) {
    peer_at_[v] = next_peer_++;
    vertex_of_.insert(peer_at_[v], v);
  }
}

std::optional<Vertex> Network::find_vertex(PeerId p) const noexcept {
  return vertex_of_.find(p);
}

void Network::churn_vertex(Vertex v) {
  const PeerId old_peer = peer_at_[v];
  vertex_of_.erase(old_peer);
  const PeerId fresh = next_peer_++;
  peer_at_[v] = fresh;
  vertex_of_.insert(fresh, v);
  birth_[v] = round_;
  ++churn_events_;
  PeerChurned ev{v, old_peer, fresh};
  events_.publish(ev);
}

const std::vector<Vertex>& Network::begin_round() {
  ++round_;

  // (1) Adversarial churn: replace up to C peers.
  const std::uint32_t c = config_.churn.per_round(config_.n);
  if (config_.churn.kind == AdversaryKind::kAdaptive) {
    // Non-oblivious: ask subscribers for protocol-state-informed victims
    // first, pad the quota with uniform picks.
    last_churned_.clear();
    if (churn_taken_.size() != config_.n) churn_taken_.assign(config_.n, 0);
    AdaptiveTargetQuery query;
    query.quota = c;
    events_.publish(query);
    for (const Vertex v : query.victims) {
      if (last_churned_.size() >= c) break;
      if (v < config_.n && !churn_taken_[v]) {
        churn_taken_[v] = 1;
        last_churned_.push_back(v);
      }
    }
    while (config_.churn.adaptive_pad_uniform && last_churned_.size() < c) {
      const auto v = static_cast<Vertex>(churn_rng_.next_below(config_.n));
      if (!churn_taken_[v]) {
        churn_taken_[v] = 1;
        last_churned_.push_back(v);
      }
    }
    for (const Vertex v : last_churned_) churn_taken_[v] = 0;  // leave zeroed
  } else {
    adversary_.select(round_, c, birth_, last_churned_);
  }
  for (const Vertex v : last_churned_) churn_vertex(v);

  // (2) Adversarial edge dynamics.
  switch (config_.edge_dynamics) {
    case EdgeDynamics::kStatic:
      break;
    case EdgeDynamics::kRewire:
      rewirer_.apply(graph_);
      break;
    case EdgeDynamics::kRegenerate:
      graph_ = random_regular_graph(config_.n, config_.degree, topology_rng_);
      break;
  }

  // (3) Fresh inboxes for the new round.
  for (auto& box : inbox_) box.clear();
  return last_churned_;
}

void Network::send(Vertex from, const Message& m) { send(from, Message(m)); }

void Network::send(Vertex from, Message&& m) {
  metrics_.charge_bits(from, m.size_bits());
  metrics_.count_message();
  outbox_.push_back(std::move(m));
}

void Network::send_sharded(std::uint32_t shard, Vertex from, Message&& m) {
  OutLane& lane = shard_lanes_[shard];
  lane.froms.push_back(from);
  lane.msgs.push_back(std::move(m));
}

void Network::run_sharded(const std::function<void(std::uint32_t)>& fn) {
  const std::uint32_t count = shards_.count();
  // Each task runs with its shard's arena bound as the thread's SmallVec
  // spill target, so messages built inside the task (including their
  // spilled word/blob tails) draw from the shard arena, not the heap.
  auto task = [this, &fn](std::uint32_t s) {
    ScopedArenaBind bind(arenas_[s].get());
    fn(s);
  };
  if (count <= 1 || worker_pool_ == nullptr) {
    for (std::uint32_t s = 0; s < count; ++s) task(s);
    return;
  }
  worker_pool_->for_each_helping(
      count, [&task](std::size_t s) { task(static_cast<std::uint32_t>(s)); });
}

void Network::flush_shard_lanes() {
  // Ascending shard order + ascending vertex iteration inside each shard
  // task = merged stream in ascending global sender order, independent of
  // the shard count (see send_sharded).
  for (OutLane& lane : shard_lanes_) {
    for (std::size_t i = 0; i < lane.msgs.size(); ++i) {
      metrics_.charge_bits(lane.froms[i], lane.msgs[i].size_bits());
      metrics_.count_message();
      outbox_.push_back(std::move(lane.msgs[i]));
    }
    lane.msgs.clear();
    lane.froms.clear();
    for (const auto& [v, bits] : lane.charges) metrics_.charge_bits(v, bits);
    lane.charges.clear();
  }
  // Trace lanes merge at exactly the message-lane merge points, so the
  // trace stream inherits the same canonical (phase, shard, vertex) order
  // for every shard count.
  if (trace_ != nullptr) trace_->flush_lanes();
}

void Network::deliver() {
  flush_shard_lanes();

  // Serial pass: resolve destinations, count drops, account the global bit
  // total, and bucket surviving messages by destination shard.
  for (auto& bucket : deliver_buckets_) bucket.clear();
  for (std::size_t i = 0; i < outbox_.size(); ++i) {
    const std::optional<Vertex> v = find_vertex(outbox_[i].dst);
    if (!v) {
      metrics_.count_dropped();
      continue;
    }
    metrics_.add_total_bits(outbox_[i].size_bits());
    deliver_buckets_[shards_.shard_of(*v)].emplace_back(
        static_cast<std::uint32_t>(i), *v);
  }

  // Sharded pass: each destination shard files its own messages, scanning
  // its bucket in staging (= outbox = sender) order, so every per-vertex
  // inbox sequence equals the serial one. Receiving also costs processing;
  // charge the receiver symmetrically so the per-node bound covers both
  // directions.
  run_sharded([this](std::uint32_t s) {
    for (const auto& [i, v] : deliver_buckets_[s]) {
      Message& m = outbox_[i];
      metrics_.charge_bits_local(v, m.size_bits(), s);
      inbox_[v].push_back(std::move(m));
    }
  });
  outbox_.clear();
  metrics_.end_round();
}

}  // namespace churnstore
