// PeerIndex — fixed-capacity open-addressing PeerId -> Vertex index.
//
// The live peer population is exactly n (churn replaces peers, never grows
// the set), so the table is sized once at >= 4x the live count and never
// rehashes or allocates after construction: erase uses backward-shift
// deletion (no tombstones to accumulate), insert reuses the vacated
// slots. This is what makes Network::begin_round's churn loop heap-quiet —
// the unordered_map it replaces allocated one node per churn event, C
// allocs per round, every round, forever (shardcheck R6's runtime twin,
// HeapQuiesceScope, is how it was caught).
//
// PeerIds grow monotonically, so after enough churn the live id window
// exceeds the table and identity hashing would cluster contiguous runs;
// slots are picked with a 64-bit multiplicative mix instead. kNoPeer (0)
// is the empty-slot sentinel and is never a valid key.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/types.h"

namespace churnstore {

class PeerIndex {
 public:
  PeerIndex() = default;
  explicit PeerIndex(std::uint32_t live_count) { init(live_count); }

  /// Size the table for `live_count` simultaneously-present keys. The only
  /// allocation this class ever performs; O(1) everything afterwards.
  void init(std::uint32_t live_count) {
    std::size_t cap = 16;
    while (cap < 4ull * live_count) cap <<= 1;
    mask_ = cap - 1;
    key_slots_.assign(cap, kNoPeer);
    val_slots_.assign(cap, Vertex{0});
    live_ = 0;
  }

  /// Insert a key that is not present. Asserts on kNoPeer, duplicates, and
  /// overflow past the sized live count (none can occur in Network's use:
  /// one live peer per vertex, always).
  void insert(PeerId p, Vertex v) noexcept {
    assert(p != kNoPeer && "kNoPeer is the empty-slot sentinel");
    assert(live_ < capacity() && "PeerIndex sized for fewer live keys");
    std::size_t i = slot(p);
    while (key_slots_[i] != kNoPeer) {
      assert(key_slots_[i] != p && "duplicate PeerId insert");
      i = (i + 1) & mask_;
    }
    key_slots_[i] = p;
    val_slots_[i] = v;
    ++live_;
  }

  /// Remove a key if present; true when it was. Backward-shift deletion
  /// compacts the probe run so lookups stay tombstone-free forever.
  bool erase(PeerId p) noexcept {
    if (p == kNoPeer) return false;
    std::size_t i = slot(p);
    while (key_slots_[i] != p) {
      if (key_slots_[i] == kNoPeer) return false;
      i = (i + 1) & mask_;
    }
    std::size_t hole = i;
    std::size_t j = (i + 1) & mask_;
    while (key_slots_[j] != kNoPeer) {
      // Shift j's entry into the hole unless its home slot lies cyclically
      // inside (hole, j] — moving those would break their probe chains.
      const std::size_t home = slot(key_slots_[j]);
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        key_slots_[hole] = key_slots_[j];
        val_slots_[hole] = val_slots_[j];
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    key_slots_[hole] = kNoPeer;
    --live_;
    return true;
  }

  [[nodiscard]] std::optional<Vertex> find(PeerId p) const noexcept {
    if (p == kNoPeer) return std::nullopt;
    std::size_t i = slot(p);
    while (key_slots_[i] != kNoPeer) {
      if (key_slots_[i] == p) return val_slots_[i];
      i = (i + 1) & mask_;
    }
    return std::nullopt;
  }

  [[nodiscard]] bool contains(PeerId p) const noexcept {
    return find(p).has_value();
  }

  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  [[nodiscard]] std::size_t slot(PeerId p) const noexcept {
    // Fibonacci hashing: spreads the sequential id stream over the table.
    return static_cast<std::size_t>((p * 0x9E3779B97F4A7C15ull) >> 32) & mask_;
  }

  std::size_t mask_ = 0;
  std::size_t live_ = 0;
  // shardcheck:cold-state(table storage sized once by init; churn-path mutation is in-place slot writes)
  std::vector<PeerId> key_slots_;
  // shardcheck:cold-state(table storage sized once by init; churn-path mutation is in-place slot writes)
  std::vector<Vertex> val_slots_;
};

}  // namespace churnstore
