// The synchronous dynamic network with churn (paper section 2.1).
//
// Vertex-slot model: the topology is a d-regular expander on n vertex
// slots; each slot is occupied by one peer. Churn replaces the peer at a
// slot with a fresh peer (all protocol state at the slot is lost via the
// PeerChurned event); edge dynamics rewire the graph. This realizes the
// paper's model exactly: |V^r| = n at all times, up to C vertices replaced
// per round, every G^r a d-regular non-bipartite expander, and the
// adversary's choices independent of protocol randomness.
//
// Round structure (paper section 2.1):
//   1. begin_round(): adversary applies churn + edge changes; G^r is fixed;
//      nodes learn their current neighbors.
//   2. Protocols run: random-walk tokens advance along neighbor edges
//      (TokenSoup), and nodes send() direct messages to known peer ids.
//   3. deliver(): messages sent this round reach live targets by the end of
//      the round; messages to churned-out peers vanish.
//
// Cross-module coupling goes through the typed EventBus (events()):
//   PeerChurned        — published for every replaced vertex slot.
//   AdaptiveTargetQuery — published by the kAdaptive adversary before each
//                         round to let a (non-oblivious) subscriber choose
//                         victims; see AdversaryKind::kAdaptive.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/rewirer.h"
#include "net/adversary.h"
#include "net/config.h"
#include "net/peer_index.h"
#include "net/event_bus.h"
#include "net/message.h"
#include "net/metrics.h"
#include "obs/trace.h"
#include "net/types.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/sharding.h"

namespace churnstore {

class ThreadPool;

/// Published (via Network::events()) when the peer occupying `vertex` is
/// replaced by a fresh one; all protocol state at the slot must be dropped.
struct PeerChurned {
  Vertex vertex = 0;
  PeerId old_peer = kNoPeer;
  PeerId new_peer = kNoPeer;
};

/// Published by the kAdaptive adversary at the start of each round.
/// Subscribers append up to `quota` protocol-chosen victims; any remaining
/// quota is filled uniformly when the ChurnSpec says to pad. Subscribing
/// makes the adversary NON-oblivious — the capability exists to demonstrate
/// why the paper's obliviousness assumption is necessary (bench adversary
/// scenario).
struct AdaptiveTargetQuery {
  std::uint32_t quota = 0;
  std::vector<Vertex> victims;
};

class Network {
 public:
  explicit Network(const SimConfig& config);

  /// --- topology / population ------------------------------------------
  [[nodiscard]] std::uint32_t n() const noexcept { return config_.n; }
  [[nodiscard]] std::uint32_t degree() const noexcept { return config_.degree; }
  [[nodiscard]] Round round() const noexcept { return round_; }
  [[nodiscard]] const RegularGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

  [[nodiscard]] PeerId peer_at(Vertex v) const noexcept { return peer_at_[v]; }
  [[nodiscard]] Round birth_round(Vertex v) const noexcept { return birth_[v]; }
  /// Vertex currently hosting `p`, or nullopt if p has left the network.
  [[nodiscard]] std::optional<Vertex> find_vertex(PeerId p) const noexcept;
  [[nodiscard]] bool is_alive(PeerId p) const noexcept {
    return vertex_of_.contains(p);
  }

  /// --- round driver -----------------------------------------------------
  /// Advances to the next round: adversary churn + edge dynamics. Returns
  /// the churned vertex set (fresh peers already installed).
  const std::vector<Vertex>& begin_round();

  /// Queue a direct message from the peer at vertex `from` (charged to it).
  /// Serial-context sends only; from shard tasks use send_sharded.
  void send(Vertex from, const Message& m);
  void send(Vertex from, Message&& m);

  /// Queue a message from shard task `shard` (one lane per shard, so
  /// concurrent shards never contend). Charging is deferred to deliver(),
  /// where lanes merge behind the serial outbox in ascending shard order.
  /// Deterministic-merge contract: a shard task that iterates its contiguous
  /// vertex range in ascending order makes the merged stream equal to the
  /// ascending global vertex order — independent of shard count.
  void send_sharded(std::uint32_t shard, Vertex from, Message&& m);

  /// Charge processing bits to `v` from shard task `shard`. Deferred like
  /// send_sharded (the per-vertex counters are not safe to touch for
  /// vertices outside the calling shard); settled at the next lane flush.
  void charge_sharded(std::uint32_t shard, Vertex v, std::uint64_t bits) {
    shard_lanes_[shard].charges.emplace_back(v, bits);
  }

  /// Merge the shard lanes behind the serial outbox in ascending shard
  /// order and settle their deferred charges. The round driver calls this
  /// after EACH protocol's sharded phase: flushing per phase keeps the
  /// global outbox ordered [protocol A in vertex order, protocol B in
  /// vertex order, ...] for every shard count — lanes never interleave two
  /// protocols' sends. deliver() flushes once more for stragglers.
  void flush_shard_lanes();

  /// Deliver all queued messages into per-vertex inboxes; drops messages
  /// whose destination peer is gone. Inbox fill runs sharded by destination
  /// (per-vertex order is the outbox order either way). Ends per-round
  /// metric accounting.
  void deliver();

  [[nodiscard]] const std::vector<Message>& inbox(Vertex v) const noexcept {
    return inbox_[v];
  }

  /// Charge non-message processing work (e.g. token forwarding) to a node.
  void charge_processing(Vertex v, std::uint64_t bits) noexcept {
    metrics_.charge_bits(v, bits);
  }

  /// --- request tracing -----------------------------------------------------
  /// Install (or clear, with nullptr) the trace collector. Borrowed, not
  /// owned; the collector must be bound to THIS network (its lanes draw
  /// from the shard arenas) and destroyed before it. With none installed
  /// the trace hooks below are branch-and-return no-ops.
  void set_trace_collector(TraceCollector* tc) noexcept { trace_ = tc; }
  [[nodiscard]] TraceCollector* trace_collector() const noexcept {
    return trace_;
  }
  /// Stage a trace event on `shard`'s lane (sharded hooks route here via
  /// ShardContext::trace); merged canonically at the next lane flush.
  // shardcheck:sharded-hook(forwards to the caller shard's trace lane; no cross-shard state)
  void trace_sharded(std::uint32_t shard, const TraceEvent& ev) {
    if (trace_ != nullptr) trace_->lane_append(shard, ev);
  }
  /// Record a trace event from serial context (request start/finish).
  // shardcheck:hot-path(appends to the collector's recycled merged log)
  void trace_serial(const TraceEvent& ev) {
    if (trace_ != nullptr) trace_->record(ev);
  }

  /// --- events -------------------------------------------------------------
  [[nodiscard]] EventBus& events() noexcept { return events_; }
  [[nodiscard]] const EventBus& events() const noexcept { return events_; }

  [[nodiscard]] Metrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// Protocol-facing RNG (separate fork from the adversary's stream).
  [[nodiscard]] Rng& protocol_rng() noexcept { return protocol_rng_; }

  /// Total churn events so far.
  [[nodiscard]] std::uint64_t churn_events() const noexcept { return churn_events_; }

  /// --- sharded execution ---------------------------------------------------
  /// The vertex-slot partition the round engine runs over (SimConfig::shards).
  [[nodiscard]] const ShardPlan& shards() const noexcept { return shards_; }

  /// Install (or clear, with nullptr) the worker pool shard tasks run on.
  /// Borrowed, not owned; without a pool run_sharded degrades to serial with
  /// bit-identical results.
  void set_worker_pool(ThreadPool* pool) noexcept { worker_pool_ = pool; }
  [[nodiscard]] ThreadPool* worker_pool() const noexcept { return worker_pool_; }

  /// Run fn(shard) for every shard of the plan — on the worker pool (caller
  /// helping, so nesting inside a pool task cannot deadlock) when one is
  /// installed, inline otherwise. fn must only mutate state owned by its
  /// shard (or per-shard staging buffers).
  void run_sharded(const std::function<void(std::uint32_t)>& fn);

  /// Shard-local slab allocator (util/arena.h). Only shard `s`'s task may
  /// allocate/free through it during a sharded phase; serial context may
  /// touch any arena between phases.
  [[nodiscard]] Arena& shard_arena(std::uint32_t s) noexcept {
    return *arenas_[s];
  }

 private:
  void churn_vertex(Vertex v);

  SimConfig config_;
  Rng topology_rng_;   ///< adversary-side: graph generation + rewiring
  Rng churn_rng_;      ///< adversary-side: victim selection
  Rng protocol_rng_;   ///< algorithm-side: walks, sampling, protocol coins

  RegularGraph graph_;
  Rewirer rewirer_;
  Adversary adversary_;

  std::vector<PeerId> peer_at_;
  std::vector<Round> birth_;
  /// Fixed-capacity open-addressing index: the churn loop's erase/insert
  /// pair is allocation-free, unlike the unordered_map node per event it
  /// replaced (heap-quiet begin_round; see net/peer_index.h).
  PeerIndex vertex_of_;
  PeerId next_peer_ = 1;

  Round round_ = 0;
  std::vector<Vertex> last_churned_;
  // shardcheck:cold-state(adaptive-churn dedup bitmap sized on first adaptive round, cleared in place after)
  std::vector<std::uint8_t> churn_taken_;
  EventBus events_;

  ShardPlan shards_;
  /// One arena per shard. Declared before every arena-backed container so
  /// the containers are destroyed first (they return blocks to the arenas).
  std::vector<std::unique_ptr<Arena>> arenas_;

  std::vector<Message> outbox_;
  /// One lane per shard for send_sharded / charge_sharded; sender vertices
  /// ride along so the deferred metrics charge lands on the right node at
  /// flush time. The lane vectors themselves are arena-backed: they churn
  /// every round and the shard's own task does all the growing.
  struct OutLane {
    std::vector<Message, ArenaAllocator<Message>> msgs;
    std::vector<Vertex, ArenaAllocator<Vertex>> froms;
    std::vector<std::pair<Vertex, std::uint64_t>,
                ArenaAllocator<std::pair<Vertex, std::uint64_t>>>
        charges;

    explicit OutLane(Arena* a) : msgs(ArenaAllocator<Message>(a)),
                                 froms(ArenaAllocator<Vertex>(a)),
                                 charges(ArenaAllocator<std::pair<Vertex, std::uint64_t>>(a)) {}
  };
  std::vector<OutLane> shard_lanes_;
  std::vector<std::vector<Message>> inbox_;
  /// Destination-shard buckets of (outbox index, dest vertex), reused
  /// across rounds.
  std::vector<std::vector<std::pair<std::uint32_t, Vertex>>> deliver_buckets_;
  Metrics metrics_;
  std::uint64_t churn_events_ = 0;

  ThreadPool* worker_pool_ = nullptr;
  TraceCollector* trace_ = nullptr;
};

}  // namespace churnstore
