// Simulation configuration: network size, degree, churn specification,
// edge dynamics, and the protocol constants mapped from the paper's symbols
// (see DESIGN.md section 4 for the mapping table).
#pragma once

#include <cstdint>

#include "net/types.h"

namespace churnstore {

enum class AdversaryKind {
  kNone,            ///< no churn
  kUniform,         ///< replace uniformly random vertices each round
  kBlockSweep,      ///< sweep contiguous vertex blocks (kills whole regions)
  kRegionRepeat,    ///< hammer one random region over and over
  kOldestFirst,     ///< always replace the longest-lived peers
  kYoungestFirst,   ///< always replace the newest peers
  /// ADAPTIVE (deliberately violates the paper's oblivious model): the
  /// adversary reads protocol state each round (via a targeter callback)
  /// and churns exactly the nodes doing the work. Exists to demonstrate
  /// *why* the obliviousness assumption is necessary (bench_adversary).
  kAdaptive,
};

struct ChurnSpec {
  AdversaryKind kind = AdversaryKind::kUniform;
  /// Paper churn limit: multiplier * n / (ln n)^k per round.
  double k = 1.5;
  double multiplier = 4.0;
  /// If >= 0, overrides the formula with an absolute per-round count.
  std::int64_t absolute = -1;
  /// kAdaptive only: pad the per-round quota with uniform victims when the
  /// targeter supplies fewer (true = fair-volume comparisons; false =
  /// surgical failure injection that churns exactly the chosen vertices).
  bool adaptive_pad_uniform = true;

  /// Per-round replacement count for a network of size n (capped at n/4 so
  /// the simulation stays meaningful even for absurd parameters).
  [[nodiscard]] std::uint32_t per_round(std::uint32_t n) const noexcept;
};

enum class EdgeDynamics {
  kStatic,       ///< fixed topology (for Lemma 1 style baselines)
  kRewire,       ///< random double-edge swaps each round (default)
  kRegenerate,   ///< fresh random d-regular graph every round (worst case)
};

struct SimConfig {
  std::uint32_t n = 1024;
  std::uint32_t degree = 8;
  std::uint64_t seed = 1;
  ChurnSpec churn{};
  EdgeDynamics edge_dynamics = EdgeDynamics::kRewire;
  /// Rewire swaps per round; 0 means "n / 8" (a quarter of edges touched).
  std::uint32_t rewire_swaps = 0;
  /// Shards the per-round engine partitions the vertex slots into
  /// (0 = hardware concurrency). Results are bit-identical for every value:
  /// sharding is an execution detail, not a model parameter (see
  /// util/sharding.h). Shards only run concurrently when a worker pool is
  /// installed (P2PSystem::set_shard_pool / Runner).
  std::uint32_t shards = 1;
};

/// How TokenSoup's phase-1 forward loop routes emissions into the
/// per-(src shard, dst page) handoff buckets. Pure execution detail:
/// every mode produces byte-identical bucket contents (and therefore
/// bit-identical results); the knob exists for A/B measurement and for
/// forcing the two-level path in tests.
enum class ScatterMode : std::uint8_t {
  kAuto = 0,     ///< pick by page count at attach (the default)
  kDirect,       ///< push straight to bucket tails (pre-PR-8 behavior)
  kWcSingle,     ///< one write-combining table over the final buckets
  kWcTwoLevel,   ///< coarse WC runs first, then per-run WC scatter
};

struct WalkConfig {
  /// Walks started per node per round = max(1, round(rate_mult * ln n)).
  /// Paper: alpha * log n.
  double rate_mult = 1.5;
  /// Walk length T = max(2, round(t_mult * ln n)). Paper: Theta(log n).
  /// For d = 8 random expanders (lambda ~ 0.66), T = 2.5 ln n drives the
  /// per-walk distribution within ~1/n of uniform while keeping samples
  /// fresh (walk sources are T rounds old when they arrive, and stale
  /// sources are the dominant loss channel under churn).
  double t_mult = 2.5;
  /// Per-node forwarding cap per round. 0 (default) = auto: twice the
  /// steady-state load 2 * walks_per_round * walk_length (the paper's
  /// "cap = 2x expected arrivals" choice from Lemma 1, adjusted for the
  /// continuous spawning of section 4.1). > 0 = cap_mult * ln n, used by
  /// cap-pressure experiments.
  double cap_mult = 0.0;
  /// Sample retention window in rounds = window_mult * tau.
  double window_mult = 2.5;
  /// Forward-loop scatter strategy (execution detail; results identical).
  ScatterMode scatter = ScatterMode::kAuto;
};

struct ProtocolConfig {
  /// Committee size target h * ln n. Paper: h log n.
  double h = 1.0;
  /// Invitations sent per (re-)formation = oversample * target. Walk
  /// samples are ~T rounds old, so a churn-rate-dependent fraction of the
  /// sampled sources is already gone; oversampling keeps the expected
  /// surviving membership at the target (the paper hides this in its
  /// constant slack, e.g. h <= alpha/36).
  double invite_oversample = 3.0;
  /// Leader redundancy R: top-R ranked members all attempt re-formation,
  /// ordered by rank (paper footnote's fallback, made explicit).
  std::uint32_t leader_redundancy = 2;
  /// Landmark tree fanout (paper: 2).
  std::uint32_t tree_fanout = 2;
  /// delta in the landmark tree depth formula (paper eq. 4 uses the churn
  /// exponent; the depth is capped to (0.5 + delta) log2 n).
  double delta = 0.25;
  /// Landmark TTL and rebuild period, in units of tau (paper: 2 and 1).
  double landmark_ttl_taus = 2.0;
  double landmark_rebuild_taus = 1.0;
  /// Committee refresh period, in units of tau. The paper refreshes every
  /// 2*tau where tau is the mixing time; our tau already includes the full
  /// walk length plus slack, so 1 tau of ours covers the paper's intent and
  /// survives the much-larger-than-asymptotic churn fractions reachable at
  /// simulatable n. Ablated in bench_ablation.
  double refresh_taus = 1.0;
  /// Search deadline, in units of tau.
  double search_timeout_taus = 4.0;
  /// Max inquiries a search landmark issues per round (0 = all samples,
  /// matching the paper's "contacts all nodes of received samples").
  std::uint32_t inquiry_cap = 0;
  /// Data item payload size in bits (for message accounting).
  std::uint64_t item_bits = 1024;
  /// Erasure coding (section 4.4): store IDA pieces instead of replicas.
  bool use_erasure_coding = false;
  /// IDA piece surplus: K = committee_target - surplus pieces reconstruct
  /// (paper: K = (h-2) log n, i.e. surplus = 2 log n; at simulatable
  /// committee sizes a fixed surplus of 3 keeps reconstruction robust).
  std::uint32_t ida_surplus = 3;
};

/// tau = dynamic mixing time in rounds for network size n: the walk length
/// (t_mult * ln n steps) plus slack for cap-induced queueing. Every periodic
/// protocol constant (committee refresh 2*tau, landmark TTL 2*tau, rebuild
/// tau) derives from this.
[[nodiscard]] std::uint32_t tau_rounds(std::uint32_t n, const WalkConfig& wc);

[[nodiscard]] std::uint32_t walks_per_round(std::uint32_t n, const WalkConfig& wc);
[[nodiscard]] std::uint32_t walk_length(std::uint32_t n, const WalkConfig& wc);
[[nodiscard]] std::uint32_t forward_cap(std::uint32_t n, const WalkConfig& wc);
[[nodiscard]] std::uint32_t committee_target(std::uint32_t n,
                                             const ProtocolConfig& pc);

/// Landmark tree depth mu. Uses paper equation (4) where it is defined;
/// for the small n reachable in simulation the equation's denominator
/// degenerates (its loss terms are asymptotic), so the depth falls back to
/// the sizing bound ceil(log2(sqrt(n)/committee)) + 1 that achieves the same
/// goal (committee * 2^mu >= sqrt(n)). Clamped to [1, (0.5+delta) log2 n].
[[nodiscard]] std::uint32_t landmark_tree_depth(std::uint32_t n, double churn_k,
                                                double delta,
                                                std::uint32_t committee_size);

}  // namespace churnstore
