#include "net/adversary.h"

#include <algorithm>
#include <numeric>

namespace churnstore {

Adversary::Adversary(AdversaryKind kind, std::uint32_t n, Rng rng)
    : kind_(kind), n_(n), rng_(rng) {
  if (kind_ == AdversaryKind::kBlockSweep) {
    sweep_pos_ = static_cast<Vertex>(rng_.next_below(n_));
  }
}

void Adversary::select(Round /*r*/, std::uint32_t count,
                       const std::vector<Round>& birth_round,
                       std::vector<Vertex>& out) {
  count = std::min(count, n_);
  out.clear();
  if (count == 0) return;

  switch (kind_) {
    case AdversaryKind::kNone:
    case AdversaryKind::kAdaptive:  // handled by Network's targeter path
      break;

    case AdversaryKind::kUniform: {
      rng_.sample_without_replacement_into(n_, count, out, index_scratch_,
                                           seen_scratch_);
      break;
    }

    case AdversaryKind::kBlockSweep: {
      // Replace a contiguous block and advance the cursor, wiping whole
      // neighborhoods of the id space round after round.
      for (std::uint32_t i = 0; i < count; ++i) {
        out.push_back(sweep_pos_);
        sweep_pos_ = (sweep_pos_ + 1) % n_;
      }
      break;
    }

    case AdversaryKind::kRegionRepeat: {
      // Hammer a fixed region of 2*count vertices, randomly chosen once:
      // peers there are replaced every other round, so anything the
      // protocol places in the region keeps dying.
      const std::uint32_t want = std::min(2 * count, n_);
      if (region_.size() != want) {
        const auto picks = rng_.sample_without_replacement(n_, want);
        region_.assign(picks.begin(), picks.end());
      }
      rng_.sample_without_replacement_into(
          static_cast<std::uint32_t>(region_.size()), count, pick_scratch_,
          index_scratch_, seen_scratch_);
      for (const auto i : pick_scratch_) out.push_back(region_[i]);
      break;
    }

    case AdversaryKind::kOldestFirst:
    case AdversaryKind::kYoungestFirst: {
      index_scratch_.resize(n_);
      std::iota(index_scratch_.begin(), index_scratch_.end(), 0u);
      const bool oldest = kind_ == AdversaryKind::kOldestFirst;
      std::nth_element(index_scratch_.begin(), index_scratch_.begin() + count,
                       index_scratch_.end(), [&](Vertex a, Vertex b) {
                         if (birth_round[a] != birth_round[b]) {
                           return oldest ? birth_round[a] < birth_round[b]
                                         : birth_round[a] > birth_round[b];
                         }
                         return a < b;
                       });
      out.assign(index_scratch_.begin(), index_scratch_.begin() + count);
      break;
    }
  }
}

}  // namespace churnstore
