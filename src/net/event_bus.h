// Typed publish/subscribe event bus.
//
// The simulation's cross-module coupling points (churn notification,
// adaptive-adversary target queries, landmark rebuild triggers) used to be
// bespoke std::function hooks wired by hand in P2PSystem. The bus replaces
// them with one mechanism: any module can publish a typed event, any module
// can subscribe to the event's type, and neither needs to know the other
// exists. Events are delivered synchronously in subscription order.
//
// Events are passed by non-const reference so that *query* events (e.g.
// AdaptiveTargetQuery) can collect answers from subscribers in their fields.
#pragma once

#include <functional>
#include <memory>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace churnstore {

class EventBus {
 public:
  template <typename E>
  using Handler = std::function<void(E&)>;

  /// Subscribe to events of type E. Subscriptions are permanent for the
  /// bus's lifetime (protocol modules live as long as the network).
  template <typename E>
  void subscribe(Handler<E> fn) {
    channel<E>().handlers.push_back(std::move(fn));
  }

  /// Deliver `event` to every subscriber of E, in subscription order.
  template <typename E>
  void publish(E& event) const {
    const auto it = channels_.find(std::type_index(typeid(E)));
    if (it == channels_.end()) return;
    for (const auto& fn : static_cast<const Channel<E>*>(it->second.get())->handlers) {
      fn(event);
    }
  }

  template <typename E>
  [[nodiscard]] std::size_t subscriber_count() const {
    const auto it = channels_.find(std::type_index(typeid(E)));
    if (it == channels_.end()) return 0;
    return static_cast<const Channel<E>*>(it->second.get())->handlers.size();
  }

 private:
  struct ChannelBase {
    virtual ~ChannelBase() = default;
  };
  template <typename E>
  struct Channel final : ChannelBase {
    std::vector<Handler<E>> handlers;
  };

  template <typename E>
  Channel<E>& channel() {
    auto& slot = channels_[std::type_index(typeid(E))];
    if (!slot) slot = std::make_unique<Channel<E>>();
    return *static_cast<Channel<E>*>(slot.get());
  }

  std::unordered_map<std::type_index, std::unique_ptr<ChannelBase>> channels_;
};

}  // namespace churnstore
