// Fundamental identifier types shared by all protocol modules.
#pragma once

#include <cstdint>

#include "graph/graph.h"  // Vertex

namespace churnstore {

/// Globally unique, never-reused peer identifier (the "IP address"
/// abstraction of the paper: knowing a PeerId lets you message that peer).
using PeerId = std::uint64_t;
inline constexpr PeerId kNoPeer = 0;

/// Unique identifier of a stored data item (e.g. its hash).
using ItemId = std::uint64_t;

/// Round counter of the synchronous execution.
using Round = std::int64_t;

}  // namespace churnstore
