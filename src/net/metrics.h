// Execution metrics. The paper's scalability claim is that each node
// processes/sends only polylog(n) bits per round; this collector tracks
// exact per-node per-round bit counts plus protocol-level event counters so
// benches can verify the claim quantitatively (experiment E8).
#pragma once

#include <cstdint>
#include <vector>

#include "net/types.h"
#include "stats/summary.h"

namespace churnstore {

class Metrics {
 public:
  explicit Metrics(std::uint32_t n, std::uint32_t shards = 1)
      : bits_this_round_(n, 0),
        touched_shard_(shards == 0 ? 1 : shards) {}

  /// --- per-round accounting -------------------------------------------
  /// First-toucher bookkeeping: a vertex whose counter goes 0 -> nonzero is
  /// appended to exactly one touched list (the serial list here, the charging
  /// shard's list in charge_bits_local — during the sharded phase only v's
  /// owner charges it, so the 0-test never races). end_round then sweeps
  /// only touched vertices instead of all n, which is the difference between
  /// O(active) and O(n) per round at n = 1M with sparse traffic.
  void charge_bits(Vertex v, std::uint64_t bits) noexcept {
    if (bits != 0 && bits_this_round_[v] == 0) touched_serial_.push_back(v);
    bits_this_round_[v] += bits;
    total_bits_ += bits;
  }
  /// Shard-task variant: touches only v's per-round counter and the calling
  /// shard's touched list (safe when the caller owns v's shard). The caller
  /// accounts the global total separately via add_total_bits from serial
  /// context.
  void charge_bits_local(Vertex v, std::uint64_t bits,
                         std::uint32_t shard) noexcept {
    if (bits != 0 && bits_this_round_[v] == 0) touched_shard_[shard].push_back(v);
    bits_this_round_[v] += bits;
  }
  void add_total_bits(std::uint64_t bits) noexcept { total_bits_ += bits; }
  void count_message() noexcept { ++total_messages_; }
  void count_dropped() noexcept { ++dropped_messages_; }
  void count_tokens_lost(std::uint64_t k) noexcept { tokens_lost_ += k; }
  void count_tokens_completed(std::uint64_t k) noexcept { tokens_completed_ += k; }
  void count_tokens_spawned(std::uint64_t k) noexcept { tokens_spawned_ += k; }
  void count_tokens_queued(std::uint64_t k) noexcept { tokens_queued_ += k; }
  void count_committee_formed(std::uint64_t k = 1) noexcept {
    committees_formed_ += k;
  }
  void count_committee_lost(std::uint64_t k = 1) noexcept {
    committees_lost_ += k;
  }
  void count_landmark_created(std::uint64_t k = 1) noexcept {
    landmarks_created_ += k;
  }
  void count_landmark_collision(std::uint64_t k = 1) noexcept {
    landmark_collisions_ += k;
  }

  /// Finalize per-round counters; call once per round after delivery.
  /// Sweeps only the touched-vertex lists: max and sum over the touched set
  /// equal max and sum over all n vertices exactly (untouched counters are
  /// zero and contribute nothing to either), so the published stats are
  /// bit-identical to the old full sweep (pinned in tests/obs_trace_test).
  void end_round() noexcept {
    std::uint64_t mx = 0;
    std::uint64_t sum = 0;
    const auto drain = [&](std::vector<Vertex>& touched) {
      for (const Vertex v : touched) {
        const std::uint64_t b = bits_this_round_[v];
        mx = b > mx ? b : mx;
        sum += b;
        bits_this_round_[v] = 0;
      }
      touched.clear();  // capacity kept for next round
    };
    drain(touched_serial_);
    for (auto& list : touched_shard_) drain(list);
    last_round_max_bits_ = mx;
    last_round_mean_bits_ = static_cast<double>(sum) /
                            static_cast<double>(bits_this_round_.size());
    max_bits_per_node_round_.add(static_cast<double>(mx));
    mean_bits_per_node_round_.add(last_round_mean_bits_);
    ++rounds_;
  }

  /// --- aggregated views --------------------------------------------------
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t total_bits() const noexcept { return total_bits_; }
  [[nodiscard]] std::uint64_t total_messages() const noexcept { return total_messages_; }
  [[nodiscard]] std::uint64_t dropped_messages() const noexcept { return dropped_messages_; }
  [[nodiscard]] std::uint64_t tokens_lost() const noexcept { return tokens_lost_; }
  [[nodiscard]] std::uint64_t tokens_completed() const noexcept { return tokens_completed_; }
  [[nodiscard]] std::uint64_t tokens_spawned() const noexcept { return tokens_spawned_; }
  [[nodiscard]] std::uint64_t tokens_queued() const noexcept { return tokens_queued_; }
  [[nodiscard]] std::uint64_t committees_formed() const noexcept { return committees_formed_; }
  [[nodiscard]] std::uint64_t committees_lost() const noexcept { return committees_lost_; }
  [[nodiscard]] std::uint64_t landmarks_created() const noexcept { return landmarks_created_; }
  [[nodiscard]] std::uint64_t landmark_collisions() const noexcept { return landmark_collisions_; }

  /// Distribution (over rounds) of the maximum bits any node sent that round.
  [[nodiscard]] const RunningStat& max_bits_per_node_round() const noexcept {
    return max_bits_per_node_round_;
  }
  [[nodiscard]] const RunningStat& mean_bits_per_node_round() const noexcept {
    return mean_bits_per_node_round_;
  }
  /// Last finished round's values (the per-round jsonl exporter reads these;
  /// the RunningStats above only expose run-cumulative aggregates).
  [[nodiscard]] std::uint64_t last_round_max_bits() const noexcept {
    return last_round_max_bits_;
  }
  [[nodiscard]] double last_round_mean_bits() const noexcept {
    return last_round_mean_bits_;
  }

 private:
  std::vector<std::uint64_t> bits_this_round_;
  /// Vertices whose round counter went 0 -> nonzero via serial charge_bits /
  /// via each shard's charge_bits_local; cleared (capacity kept) every
  /// end_round.
  std::vector<Vertex> touched_serial_;
  std::vector<std::vector<Vertex>> touched_shard_;
  std::uint64_t last_round_max_bits_ = 0;
  double last_round_mean_bits_ = 0.0;
  RunningStat max_bits_per_node_round_;
  RunningStat mean_bits_per_node_round_;
  std::uint64_t rounds_ = 0;
  std::uint64_t total_bits_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t dropped_messages_ = 0;
  std::uint64_t tokens_lost_ = 0;
  std::uint64_t tokens_completed_ = 0;
  std::uint64_t tokens_spawned_ = 0;
  std::uint64_t tokens_queued_ = 0;
  std::uint64_t committees_formed_ = 0;
  std::uint64_t committees_lost_ = 0;
  std::uint64_t landmarks_created_ = 0;
  std::uint64_t landmark_collisions_ = 0;
};

}  // namespace churnstore
