// Execution metrics. The paper's scalability claim is that each node
// processes/sends only polylog(n) bits per round; this collector tracks
// exact per-node per-round bit counts plus protocol-level event counters so
// benches can verify the claim quantitatively (experiment E8).
#pragma once

#include <cstdint>
#include <vector>

#include "net/types.h"
#include "stats/summary.h"

namespace churnstore {

class Metrics {
 public:
  explicit Metrics(std::uint32_t n) : bits_this_round_(n, 0) {}

  /// --- per-round accounting -------------------------------------------
  void charge_bits(Vertex v, std::uint64_t bits) noexcept {
    bits_this_round_[v] += bits;
    total_bits_ += bits;
  }
  /// Shard-task variant: touches only v's per-round counter (safe when the
  /// caller owns v's shard). The caller accounts the global total
  /// separately via add_total_bits from serial context.
  void charge_bits_local(Vertex v, std::uint64_t bits) noexcept {
    bits_this_round_[v] += bits;
  }
  void add_total_bits(std::uint64_t bits) noexcept { total_bits_ += bits; }
  void count_message() noexcept { ++total_messages_; }
  void count_dropped() noexcept { ++dropped_messages_; }
  void count_tokens_lost(std::uint64_t k) noexcept { tokens_lost_ += k; }
  void count_tokens_completed(std::uint64_t k) noexcept { tokens_completed_ += k; }
  void count_tokens_spawned(std::uint64_t k) noexcept { tokens_spawned_ += k; }
  void count_tokens_queued(std::uint64_t k) noexcept { tokens_queued_ += k; }
  void count_committee_formed(std::uint64_t k = 1) noexcept {
    committees_formed_ += k;
  }
  void count_committee_lost(std::uint64_t k = 1) noexcept {
    committees_lost_ += k;
  }
  void count_landmark_created(std::uint64_t k = 1) noexcept {
    landmarks_created_ += k;
  }
  void count_landmark_collision(std::uint64_t k = 1) noexcept {
    landmark_collisions_ += k;
  }

  /// Finalize per-round counters; call once per round after delivery.
  void end_round() noexcept {
    std::uint64_t mx = 0;
    std::uint64_t sum = 0;
    for (auto& b : bits_this_round_) {
      mx = b > mx ? b : mx;
      sum += b;
      b = 0;
    }
    max_bits_per_node_round_.add(static_cast<double>(mx));
    mean_bits_per_node_round_.add(static_cast<double>(sum) /
                                  static_cast<double>(bits_this_round_.size()));
    ++rounds_;
  }

  /// --- aggregated views --------------------------------------------------
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t total_bits() const noexcept { return total_bits_; }
  [[nodiscard]] std::uint64_t total_messages() const noexcept { return total_messages_; }
  [[nodiscard]] std::uint64_t dropped_messages() const noexcept { return dropped_messages_; }
  [[nodiscard]] std::uint64_t tokens_lost() const noexcept { return tokens_lost_; }
  [[nodiscard]] std::uint64_t tokens_completed() const noexcept { return tokens_completed_; }
  [[nodiscard]] std::uint64_t tokens_spawned() const noexcept { return tokens_spawned_; }
  [[nodiscard]] std::uint64_t tokens_queued() const noexcept { return tokens_queued_; }
  [[nodiscard]] std::uint64_t committees_formed() const noexcept { return committees_formed_; }
  [[nodiscard]] std::uint64_t committees_lost() const noexcept { return committees_lost_; }
  [[nodiscard]] std::uint64_t landmarks_created() const noexcept { return landmarks_created_; }
  [[nodiscard]] std::uint64_t landmark_collisions() const noexcept { return landmark_collisions_; }

  /// Distribution (over rounds) of the maximum bits any node sent that round.
  [[nodiscard]] const RunningStat& max_bits_per_node_round() const noexcept {
    return max_bits_per_node_round_;
  }
  [[nodiscard]] const RunningStat& mean_bits_per_node_round() const noexcept {
    return mean_bits_per_node_round_;
  }

 private:
  std::vector<std::uint64_t> bits_this_round_;
  RunningStat max_bits_per_node_round_;
  RunningStat mean_bits_per_node_round_;
  std::uint64_t rounds_ = 0;
  std::uint64_t total_bits_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t dropped_messages_ = 0;
  std::uint64_t tokens_lost_ = 0;
  std::uint64_t tokens_completed_ = 0;
  std::uint64_t tokens_spawned_ = 0;
  std::uint64_t tokens_queued_ = 0;
  std::uint64_t committees_formed_ = 0;
  std::uint64_t committees_lost_ = 0;
  std::uint64_t landmarks_created_ = 0;
  std::uint64_t landmark_collisions_ = 0;
};

}  // namespace churnstore
