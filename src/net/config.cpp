#include "net/config.h"

#include <algorithm>
#include <cmath>

namespace churnstore {

std::uint32_t ChurnSpec::per_round(std::uint32_t n) const noexcept {
  if (kind == AdversaryKind::kNone || n == 0) return 0;
  std::int64_t c;
  if (absolute >= 0) {
    c = absolute;
  } else {
    const double ln_n = std::log(std::max<std::uint32_t>(n, 3));
    c = static_cast<std::int64_t>(
        std::floor(multiplier * static_cast<double>(n) / std::pow(ln_n, k)));
  }
  c = std::max<std::int64_t>(c, 0);
  c = std::min<std::int64_t>(c, n / 4);
  return static_cast<std::uint32_t>(c);
}

std::uint32_t walks_per_round(std::uint32_t n, const WalkConfig& wc) {
  const double ln_n = std::log(std::max<std::uint32_t>(n, 3));
  return std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(wc.rate_mult * ln_n)));
}

std::uint32_t walk_length(std::uint32_t n, const WalkConfig& wc) {
  const double ln_n = std::log(std::max<std::uint32_t>(n, 3));
  return std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(std::lround(wc.t_mult * ln_n)));
}

std::uint32_t forward_cap(std::uint32_t n, const WalkConfig& wc) {
  // With continuous spawning (alpha log n fresh walks per node per round,
  // section 4.1) the steady-state in-flight load per node is
  // walks_per_round * walk_length = Theta(log^2 n) tokens; mirroring the
  // paper's "cap = twice the expected load" choice (Lemma 1) the default
  // cap is twice that, so every token is forwarded once per round w.h.p.
  // cap_mult > 0 overrides with cap_mult * ln n for cap-pressure studies.
  if (wc.cap_mult > 0.0) {
    const double ln_n = std::log(std::max<std::uint32_t>(n, 3));
    return std::max<std::uint32_t>(
        4, static_cast<std::uint32_t>(std::lround(wc.cap_mult * ln_n)));
  }
  return std::max<std::uint32_t>(4,
                                 2 * walks_per_round(n, wc) * walk_length(n, wc));
}

std::uint32_t tau_rounds(std::uint32_t n, const WalkConfig& wc) {
  // Walks advance one step per round unless queued by the cap; Lemma 1 shows
  // queueing is negligible, so tau = T plus a small constant slack.
  return walk_length(n, wc) + 2;
}

std::uint32_t committee_target(std::uint32_t n, const ProtocolConfig& pc) {
  const double ln_n = std::log(std::max<std::uint32_t>(n, 3));
  return std::max<std::uint32_t>(
      3, static_cast<std::uint32_t>(std::lround(pc.h * ln_n)));
}

std::uint32_t landmark_tree_depth(std::uint32_t n, double churn_k, double delta,
                                  std::uint32_t committee_size) {
  const double nn = std::max<std::uint32_t>(n, 8);
  const double ln_n = std::log(nn);
  const double log2_n = std::log2(nn);
  // Paper equation (4). log() in the paper is natural log; the loss terms
  // use the churn exponent k.
  const double loss_core = 1.0 - 1.0 / std::pow(ln_n, (churn_k - 1.0) / 2.0);
  const double loss_churn = 1.0 - 1.0 / std::pow(ln_n, churn_k - 1.0);
  const double loss_collide = 1.0 - 1.0 / (nn * nn * nn);
  const double arg = 2.0 * loss_core * loss_churn * loss_collide;
  double mu_paper = 0.0;
  if (arg > 1.0) {
    const double denom = 2.0 * std::log2(arg);
    mu_paper =
        std::ceil((log2_n - 2.0 * (std::log2(log2_n) + std::log(2.0))) / denom);
  }
  // Sizing bound: committee * 2^mu must reach sqrt(n) landmarks.
  const double c = std::max<std::uint32_t>(committee_size, 1);
  const double mu_size = std::ceil(0.5 * log2_n - std::log2(c)) + 1.0;
  double mu = std::max({mu_paper, mu_size, 1.0});
  const double cap = std::ceil((0.5 + delta) * log2_n);
  mu = std::min(mu, cap);
  return static_cast<std::uint32_t>(std::max(1.0, mu));
}

}  // namespace churnstore
