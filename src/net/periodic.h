// Staggered per-vertex maintenance schedule.
//
// Periodic protocol work (Chord stabilization, flooding refresh, replica
// repair) should not fire for every vertex in the same round: a synchronized
// pulse doubles the per-round peak traffic the paper's per-node bound is
// measured against. PeriodicSchedule answers "is vertex v due in round r"
// with each vertex on its own phase, derived by hashing the vertex index —
// a pure function of (period, v, r), so the schedule is identical for every
// shard count and safe to query concurrently from shard tasks.
#pragma once

#include <cstdint>

#include "net/types.h"
#include "util/rng.h"

namespace churnstore {

class PeriodicSchedule {
 public:
  /// period = rounds between ticks per vertex; 0 disables (never due).
  explicit PeriodicSchedule(std::uint32_t period = 0) noexcept
      : period_(period) {}

  [[nodiscard]] std::uint32_t period() const noexcept { return period_; }

  /// True when vertex `v` is due for its periodic tick in round `r`.
  [[nodiscard]] bool due(Vertex v, Round r) const noexcept {
    if (period_ == 0) return false;
    if (period_ == 1) return true;
    const std::uint64_t phase = mix64(v) % period_;
    return (static_cast<std::uint64_t>(r) % period_) == phase;
  }

 private:
  std::uint32_t period_;
};

}  // namespace churnstore
