// Per-shard slab allocator with size-class freelists.
//
// The sharded round engine allocates the same transient buffers every round
// — token queues, staged handoff buckets, outbox-lane vectors — and at
// n >= 100k the general-purpose allocator becomes a measurable cost (and a
// fragmentation source: ~50M live tokens at n=100k, ~150M at n=1M). An
// Arena carves fixed slabs into power-of-two blocks and recycles freed
// blocks through freelists, so after the first few rounds the steady state
// performs ZERO heap calls: every vector growth pops a recycled block.
//
// Concurrency contract: an Arena is NOT thread-safe. The engine keeps one
// Arena per shard (owned by Network) and the staging discipline guarantees
// each arena is only touched by its shard's task during a sharded phase —
// a vector allocated from shard s's arena must only grow/shrink from shard
// s's task (or from serial context between phases). ArenaAllocator makes a
// std::vector carry its arena along, so cur_.swap(next_) style buffer
// rotation keeps every buffer bound to the shard that owns it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace churnstore {

class Arena {
 public:
  /// Blocks above the largest size class fall through to operator new.
  static constexpr std::size_t kMinBlock = 16;
  static constexpr std::size_t kMaxBlock = std::size_t{1} << 20;
  /// Blocks >= one cache line come back line-aligned, so multi-column
  /// containers (SoA token buckets) can flush whole lines to column tails
  /// with non-temporal stores. Smaller blocks keep dense packing.
  static constexpr std::size_t kLineAlign = 64;
  /// Slabs and oversize blocks >= 2 MB are 2 MB-aligned and advised
  /// MADV_HUGEPAGE, so the multi-GB token working set at n=1M sits on a
  /// few hundred dTLB entries instead of hundreds of thousands.
  static constexpr std::size_t kHugeAlign = std::size_t{2} << 20;

  explicit Arena(std::size_t slab_bytes = std::size_t{1} << 20)
      : next_slab_bytes_(slab_bytes < kMaxBlock ? kMaxBlock : slab_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() { release(); }

  void* allocate(std::size_t bytes) {
    if (bytes > kMaxBlock) {
      bytes_in_use_ += bytes;
      if (bytes_in_use_ > high_water_) high_water_ = bytes_in_use_;
      ++oversize_live_;
      return os_alloc(bytes);
    }
    const std::size_t cls = size_class(bytes);
    const std::size_t block = class_block(cls);
    bytes_in_use_ += block;
    if (bytes_in_use_ > high_water_) high_water_ = bytes_in_use_;
    if (FreeNode* node = freelists_[cls]) {
      freelists_[cls] = node->next;
      ++reused_blocks_;
      return node;
    }
    ++fresh_blocks_;
    return bump(block);
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    if (p == nullptr) return;
    if (bytes > kMaxBlock) {
      bytes_in_use_ -= bytes;
      --oversize_live_;
      os_free(p, bytes);
      return;
    }
    const std::size_t cls = size_class(bytes);
    bytes_in_use_ -= class_block(cls);
    auto* node = static_cast<FreeNode*>(p);
    node->next = freelists_[cls];
    freelists_[cls] = node;
  }

  /// Usable bytes of the block allocate(bytes) actually returns (the size-
  /// class round-up; past kMaxBlock the request is exact). Multi-column
  /// containers that pack parallel arrays into one block use this to turn
  /// the rounding slack into extra capacity instead of waste.
  [[nodiscard]] static std::size_t usable_size(std::size_t bytes) noexcept {
    if (bytes > kMaxBlock) return bytes;
    return class_block(size_class(bytes));
  }

  /// Drop every slab and freelist. Only valid when no allocation is live.
  void release() noexcept {
    for (const Slab& s : slabs_) os_free(s.base, s.bytes);
    slabs_.clear();
    reserved_bytes_ = 0;
    for (FreeNode*& head : freelists_) head = nullptr;
    bump_at_ = bump_end_ = nullptr;
  }

  /// --- thread-bound spill target ----------------------------------------
  /// SmallVec (inline-word messages, util/small_vec.h) spills into the
  /// arena bound to the current thread, so message building inside a shard
  /// task draws from that shard's arena without threading an allocator
  /// through every protocol signature. Network::run_sharded binds each
  /// task's shard arena for the task's duration (ScopedArenaBind below);
  /// unbound contexts (serial prologues, tests) spill to the global heap.
  [[nodiscard]] static Arena* current() noexcept { return current_; }
  /// Installs `a` as the current thread's spill arena; returns the previous
  /// binding so scopes nest.
  static Arena* bind_current(Arena* a) noexcept {
    Arena* prev = current_;
    current_ = a;
    return prev;
  }

  /// --- stats (the arena unit test and capacity bench read these) --------
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    return reserved_bytes_;
  }
  [[nodiscard]] std::size_t bytes_in_use() const noexcept { return bytes_in_use_; }
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }
  [[nodiscard]] std::uint64_t reused_blocks() const noexcept { return reused_blocks_; }
  [[nodiscard]] std::uint64_t fresh_blocks() const noexcept { return fresh_blocks_; }
  [[nodiscard]] std::size_t slab_count() const noexcept { return slabs_.size(); }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  /// Size classes run 16, 24, 32, 48, 64, 96, ... — two per octave, so the
  /// worst-case rounding waste is 33% instead of the ~100% of pure powers
  /// of two. All blocks stay multiples of 8, preserving alignment.
  [[nodiscard]] static std::size_t class_block(std::size_t cls) noexcept {
    std::size_t block = kMinBlock << (cls / 2);
    if (cls % 2) block += block / 2;
    return block;
  }
  /// Index of the smallest class holding `bytes`.
  [[nodiscard]] static std::size_t size_class(std::size_t bytes) noexcept {
    std::size_t cls = 0;
    while (class_block(cls) < bytes) ++cls;
    return cls;
  }
  static constexpr std::size_t kClasses = 34;  // 16 B .. 1 MiB, 2 per octave

  /// Raw block source for slabs and oversize requests: cache-line aligned
  /// always, 2 MB-aligned + MADV_HUGEPAGE once the request is huge-page
  /// sized (a no-op hint off Linux or when THP is unavailable). Alignment
  /// is derived from `bytes` alone so os_free can pick the matching
  /// aligned-delete overload deterministically.
  [[nodiscard]] static std::byte* os_alloc(std::size_t bytes) {
    const std::size_t align = bytes >= kHugeAlign ? kHugeAlign : kLineAlign;
    auto* p = static_cast<std::byte*>(
        ::operator new(bytes, std::align_val_t{align}));
#if defined(__linux__) && defined(MADV_HUGEPAGE)
    if (bytes >= kHugeAlign) (void)madvise(p, bytes, MADV_HUGEPAGE);
#endif
    return p;
  }
  static void os_free(void* p, std::size_t bytes) noexcept {
    const std::size_t align = bytes >= kHugeAlign ? kHugeAlign : kLineAlign;
    ::operator delete(p, std::align_val_t{align});
  }

  void* bump(std::size_t block) {
    std::size_t pad = 0;
    if (block >= kLineAlign && bump_at_ != nullptr) {
      const auto at = reinterpret_cast<std::uintptr_t>(bump_at_);
      pad = (kLineAlign - (at & (kLineAlign - 1))) & (kLineAlign - 1);
    }
    if (static_cast<std::size_t>(bump_end_ - bump_at_) < block + pad) {
      // Slabs grow geometrically (initial size .. 4 MB cap): arenas that
      // stay small reserve little, arenas holding the n=1M working set
      // reach huge-page-backed slabs within a few allocations. The cap is
      // deliberately modest — at 16 MB the tail-slab slack across S=16
      // arenas showed up as ~35 MB of maxrss at n=16k.
      const std::size_t slab_bytes = next_slab_bytes_;
      if (next_slab_bytes_ < kMaxSlabBytes) next_slab_bytes_ *= 2;
      slabs_.push_back(Slab{os_alloc(slab_bytes), slab_bytes});
      reserved_bytes_ += slab_bytes;
      bump_at_ = slabs_.back().base;  // os_alloc is >= line aligned
      bump_end_ = bump_at_ + slab_bytes;
      pad = 0;
    }
    void* p = bump_at_ + pad;
    bump_at_ += pad + block;
    return p;
  }

  struct Slab {
    std::byte* base;
    std::size_t bytes;
  };
  static constexpr std::size_t kMaxSlabBytes = std::size_t{4} << 20;

  std::size_t next_slab_bytes_;
  std::size_t reserved_bytes_ = 0;
  std::vector<Slab> slabs_;
  std::byte* bump_at_ = nullptr;
  std::byte* bump_end_ = nullptr;
  FreeNode* freelists_[kClasses] = {};

  std::size_t bytes_in_use_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t reused_blocks_ = 0;
  std::uint64_t fresh_blocks_ = 0;
  std::size_t oversize_live_ = 0;

  inline static thread_local Arena* current_ = nullptr;
};

/// RAII binding of Arena::current() for the enclosing scope (exception-safe
/// restore; Network::run_sharded wraps every shard task in one).
class ScopedArenaBind {
 public:
  explicit ScopedArenaBind(Arena* a) noexcept
      : prev_(Arena::bind_current(a)) {}
  ~ScopedArenaBind() { Arena::bind_current(prev_); }
  ScopedArenaBind(const ScopedArenaBind&) = delete;
  ScopedArenaBind& operator=(const ScopedArenaBind&) = delete;

 private:
  Arena* prev_;
};

/// STL allocator adapter: std::vector<T, ArenaAllocator<T>> draws from (and
/// recycles into) the bound Arena. The arena pointer travels with the
/// container on copy/move/swap, so buffers stay bound to their owning shard
/// through the engine's buffer rotations.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) noexcept : arena_(o.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    return static_cast<T*>(arena_->allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (arena_ == nullptr) {
      ::operator delete(p);
      return;
    }
    arena_->deallocate(p, n * sizeof(T));
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  [[nodiscard]] friend bool operator==(const ArenaAllocator& a,
                                       const ArenaAllocator<U>& b) noexcept {
    return a.arena() == b.arena();
  }
  template <typename U>
  [[nodiscard]] friend bool operator!=(const ArenaAllocator& a,
                                       const ArenaAllocator<U>& b) noexcept {
    return a.arena() != b.arena();
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace churnstore
