#include "util/logging.h"

#include <cstdio>
#include <mutex>

namespace churnstore {

std::atomic<int> Logger::level_{static_cast<int>(LogLevel::kWarn)};

void Logger::emit(LogLevel lv, const std::string& msg) {
  static std::mutex mu;
  const char* tag = "?";
  switch (lv) {
    case LogLevel::kDebug: tag = "DEBUG"; break;
    case LogLevel::kInfo: tag = "INFO"; break;
    case LogLevel::kWarn: tag = "WARN"; break;
    case LogLevel::kError: tag = "ERROR"; break;
    case LogLevel::kOff: tag = "OFF"; break;
  }
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

}  // namespace churnstore
