#include "util/rng.h"

#include <cmath>
#include <unordered_set>

namespace churnstore {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

std::uint64_t stream_seed(std::uint64_t key, std::uint64_t stream) noexcept {
  return mix64(key ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
}

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

double Rng::exponential(double lambda) noexcept {
  double u = uniform01();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

double Rng::normal() noexcept {
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
}

std::uint64_t Rng::geometric(double p) noexcept {
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  if (p >= 1.0) return 0;
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log(1.0 - p)));
}

Rng Rng::fork(std::uint64_t salt) noexcept {
  return Rng(mix64(next() ^ mix64(salt)));
}

std::vector<std::uint32_t> Rng::sample_without_replacement(
    std::uint32_t pool, std::uint32_t k) noexcept {
  if (k >= pool) {
    std::vector<std::uint32_t> all(pool);
    for (std::uint32_t i = 0; i < pool; ++i) all[i] = i;
    shuffle(all);
    return all;
  }
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (k * 3ULL >= pool) {
    // Dense case: partial Fisher-Yates over an index array.
    std::vector<std::uint32_t> all(pool);
    for (std::uint32_t i = 0; i < pool; ++i) all[i] = i;
    for (std::uint32_t i = 0; i < k; ++i) {
      const std::uint32_t j =
          i + static_cast<std::uint32_t>(next_below(pool - i));
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return out;
  }
  std::unordered_set<std::uint32_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    const auto c = static_cast<std::uint32_t>(next_below(pool));
    if (seen.insert(c).second) out.push_back(c);
  }
  return out;
}

void Rng::sample_without_replacement_into(
    std::uint32_t pool, std::uint32_t k, std::vector<std::uint32_t>& out,
    std::vector<std::uint32_t>& index_scratch,
    std::vector<std::uint8_t>& seen_scratch) noexcept {
  // Mirror of sample_without_replacement, branch for branch and draw for
  // draw: the two must stay in lockstep or seeded trajectories diverge
  // depending on which form a caller picked.
  out.clear();
  if (k >= pool) {
    out.resize(pool);
    for (std::uint32_t i = 0; i < pool; ++i) out[i] = i;
    shuffle(out);
    return;
  }
  if (k * 3ULL >= pool) {
    // Dense case: partial Fisher-Yates over the reusable index array.
    index_scratch.resize(pool);
    for (std::uint32_t i = 0; i < pool; ++i) index_scratch[i] = i;
    for (std::uint32_t i = 0; i < k; ++i) {
      const std::uint32_t j =
          i + static_cast<std::uint32_t>(next_below(pool - i));
      std::swap(index_scratch[i], index_scratch[j]);
      out.push_back(index_scratch[i]);
    }
    return;
  }
  // Sparse case: rejection against a bitmap instead of a hash set — the
  // accept/reject outcome per draw is identical (pure membership), so the
  // draw stream matches the allocating form exactly.
  if (seen_scratch.size() < pool) seen_scratch.assign(pool, 0);
  while (out.size() < k) {
    const auto c = static_cast<std::uint32_t>(next_below(pool));
    if (!seen_scratch[c]) {
      seen_scratch[c] = 1;
      out.push_back(c);
    }
  }
  for (const std::uint32_t c : out) seen_scratch[c] = 0;  // leave all-zero
}

}  // namespace churnstore
