// Process resource introspection for the bench layer.
//
// The n=1M memory work (ROADMAP) was measured by hand with /usr/bin/time;
// that made regressions invisible to the recorded BENCH_*.json baselines.
// peak_rss_bytes() puts the number in the tables themselves: capacity and
// soup_step emit a "maxrss MB" column, so a memory regression shows up in
// the same diff as a throughput regression.
//
// Note the value is the PROCESS peak (getrusage ru_maxrss), so within one
// table it is monotone across rows — read the last row of a sweep as "the
// whole sweep fit in this much".
#pragma once

#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace churnstore {

/// Peak resident set size of this process in bytes; 0 when the platform
/// does not expose it.
[[nodiscard]] inline std::uint64_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace churnstore
