// Fixed-size thread pool for running independent Monte-Carlo trials in
// parallel. Each trial owns its own RNG fork and simulator, so no
// synchronization is needed beyond the work queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace churnstore {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, count) across the pool and wait for completion.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Like parallel_for, but the CALLING thread also drains work, pulling
  /// indices from a shared counter alongside the pool workers. Safe to call
  /// from inside a task running on this same pool (nested trial x shard
  /// scheduling): even when every worker is busy with an outer task, the
  /// caller finishes all indices itself, so the nesting can never deadlock —
  /// it only degrades to serial. If fn throws, the remaining indices still
  /// run and the first exception is rethrown here after the barrier.
  void for_each_helping(std::size_t count,
                        const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace churnstore
