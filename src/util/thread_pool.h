// Fixed-size thread pool for running independent Monte-Carlo trials in
// parallel. Each trial owns its own RNG fork and simulator, so no
// synchronization is needed beyond the work queue.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace churnstore {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, count) across the pool and wait for completion.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Like parallel_for, but the CALLING thread also drains work, pulling
  /// indices from a shared counter alongside the pool workers. Safe to call
  /// from inside a task running on this same pool (nested trial x shard
  /// scheduling): even when every worker is busy with an outer task, the
  /// caller finishes all indices itself, so the nesting can never deadlock —
  /// it only degrades to serial. If fn throws, the remaining indices still
  /// run and the first exception is rethrown here after the barrier.
  ///
  /// Dispatch is allocation-free at steady state: the pool owns ONE
  /// persistent fork-join slot (no per-call task packaging), so the round
  /// engine's sharded phases stay heap-quiet under HeapQuiesceScope. The
  /// slot being singular means a nested call — or a second thread calling
  /// while a job is in flight — runs its indices serially inline, which is
  /// the same degradation the queue-based version exhibited when the pool
  /// was saturated by outer tasks.
  void for_each_helping(std::size_t count,
                        const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  /// Claim-and-run loop for the active fork-join job, shared by workers
  /// and the posting caller. `epoch` pins the job generation: the claim
  /// counter is (epoch << 32) | next_index, so a worker descheduled across
  /// a job boundary can never claim an index of a later job with this
  /// job's `fn` (its CAS fails once the epoch bits move on).
  void drain_help(std::uint64_t epoch, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;

  /// --- persistent fork-join slot (for_each_helping) ---------------------
  bool job_active_ = false;                                 ///< guarded by mu_
  std::uint64_t job_epoch_ = 0;                             ///< guarded by mu_
  std::size_t job_count_ = 0;                               ///< guarded by mu_
  const std::function<void(std::size_t)>* job_fn_ = nullptr;  ///< guarded by mu_
  std::exception_ptr job_error_;                            ///< guarded by mu_
  std::atomic<std::uint64_t> job_claim_{0};  ///< (epoch << 32) | next index
  std::atomic<std::size_t> job_done_{0};     ///< indices finished this job
  std::condition_variable job_cv_;           ///< caller's completion barrier
};

}  // namespace churnstore
