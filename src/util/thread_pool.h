// Fixed-size thread pool for running independent Monte-Carlo trials in
// parallel. Each trial owns its own RNG fork and simulator, so no
// synchronization is needed beyond the work queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace churnstore {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, count) across the pool and wait for completion.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace churnstore
