#include "util/perf_counters.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace churnstore {

namespace {
bool g_force_unavailable = false;
}  // namespace

void PerfCounters::force_unavailable_for_testing(bool on) noexcept {
  g_force_unavailable = on;
}

#if defined(__linux__)

namespace {

int open_event(std::uint32_t type, std::uint64_t config) noexcept {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // paranoid=2 hosts allow user-only counting
  attr.exclude_hv = 1;
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          /*group_fd=*/-1, /*flags=*/0);
  return static_cast<int>(fd);
}

constexpr std::uint64_t cache_config(std::uint64_t cache, std::uint64_t op,
                                     std::uint64_t result) noexcept {
  return cache | (op << 8) | (result << 16);
}

}  // namespace

PerfCounters::PerfCounters() {
  if (g_force_unavailable) return;
  fds_[0] = open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  fds_[1] = open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  fds_[2] = open_event(PERF_TYPE_HW_CACHE,
                       cache_config(PERF_COUNT_HW_CACHE_LL,
                                    PERF_COUNT_HW_CACHE_OP_READ,
                                    PERF_COUNT_HW_CACHE_RESULT_MISS));
  fds_[3] = open_event(PERF_TYPE_HW_CACHE,
                       cache_config(PERF_COUNT_HW_CACHE_DTLB,
                                    PERF_COUNT_HW_CACHE_OP_READ,
                                    PERF_COUNT_HW_CACHE_RESULT_MISS));
}

PerfCounters::~PerfCounters() {
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

bool PerfCounters::available() const noexcept {
  for (int fd : fds_) {
    if (fd >= 0) return true;
  }
  return false;
}

void PerfCounters::start() noexcept {
  for (int fd : fds_) {
    if (fd < 0) continue;
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

void PerfCounters::stop() noexcept {
  for (int fd : fds_) {
    if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
}

PerfCounters::Values PerfCounters::read() const noexcept {
  Values out;
  std::uint64_t* vals[kEvents] = {&out.cycles, &out.instructions,
                                  &out.llc_misses, &out.dtlb_misses};
  bool* oks[kEvents] = {&out.cycles_ok, &out.instructions_ok,
                        &out.llc_misses_ok, &out.dtlb_misses_ok};
  for (int i = 0; i < kEvents; ++i) {
    if (fds_[i] < 0) continue;
    std::uint64_t v = 0;
    const ssize_t got = ::read(fds_[i], &v, sizeof(v));
    if (got == static_cast<ssize_t>(sizeof(v))) {
      *vals[i] = v;
      *oks[i] = true;
    }
  }
  return out;
}

#else  // !__linux__

PerfCounters::PerfCounters() { (void)g_force_unavailable; }
PerfCounters::~PerfCounters() = default;
bool PerfCounters::available() const noexcept { return false; }
void PerfCounters::start() noexcept {}
void PerfCounters::stop() noexcept {}
PerfCounters::Values PerfCounters::read() const noexcept { return Values{}; }

#endif

}  // namespace churnstore
