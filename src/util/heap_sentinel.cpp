#include "util/heap_sentinel.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace churnstore {
namespace {

// util/ static-state exemption: process-wide allocation counters, written
// through per-thread slots (each thread bumps only its own cacheline) and
// read with relaxed loads. Constant-initialized so counting is safe from
// the very first allocation, before any dynamic initializer runs.
struct alignas(64) CounterSlot {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> bytes{0};
};

// One slot per thread that ever allocates. 256 covers every realistic
// pool; threads past the table share the last slot (still correct — it is
// atomic — just contended, and only in that pathological case).
constexpr std::size_t kMaxSlots = 256;
CounterSlot g_slots[kMaxSlots];
std::atomic<std::size_t> g_slots_used{0};
std::atomic<bool> g_forced_off{false};

#if defined(CHURNSTORE_HEAP_SENTINEL)
CounterSlot& local_slot() noexcept {
  // Lazy registration on the thread's first allocation. The initializer
  // performs no heap allocation itself, so operator new cannot recurse.
  thread_local CounterSlot* slot = [] {
    const std::size_t i = g_slots_used.fetch_add(1, std::memory_order_relaxed);
    return &g_slots[i < kMaxSlots ? i : kMaxSlots - 1];
  }();
  return *slot;
}

void note_alloc(std::size_t size) noexcept {
  CounterSlot& s = local_slot();
  s.allocs.fetch_add(1, std::memory_order_relaxed);
  s.bytes.fetch_add(size, std::memory_order_relaxed);
}

void note_free() noexcept {
  local_slot().frees.fetch_add(1, std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) noexcept {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p != nullptr) note_alloc(size);
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  // posix_memalign demands a pointer-sized power-of-two alignment; the
  // language guarantees align is a power of two, so only clamp the floor.
  if (align < alignof(void*)) align = alignof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : 1) != 0) return nullptr;
  note_alloc(size);
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  note_free();
  std::free(p);
}
#endif  // CHURNSTORE_HEAP_SENTINEL

}  // namespace

bool HeapSentinel::available() noexcept {
#if defined(CHURNSTORE_HEAP_SENTINEL)
  return !g_forced_off.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

HeapSentinel::Totals HeapSentinel::thread_totals() noexcept {
  Totals t;
#if defined(CHURNSTORE_HEAP_SENTINEL)
  const CounterSlot& s = local_slot();
  t.allocs = s.allocs.load(std::memory_order_relaxed);
  t.frees = s.frees.load(std::memory_order_relaxed);
  t.bytes = s.bytes.load(std::memory_order_relaxed);
#endif
  return t;
}

HeapSentinel::Totals HeapSentinel::process_totals() noexcept {
  Totals t;
  std::size_t used = g_slots_used.load(std::memory_order_acquire);
  if (used > kMaxSlots) used = kMaxSlots;
  for (std::size_t i = 0; i < used; ++i) {
    t.allocs += g_slots[i].allocs.load(std::memory_order_relaxed);
    t.frees += g_slots[i].frees.load(std::memory_order_relaxed);
    t.bytes += g_slots[i].bytes.load(std::memory_order_relaxed);
  }
  return t;
}

void HeapSentinel::force_unavailable_for_testing(bool on) noexcept {
  g_forced_off.store(on, std::memory_order_relaxed);
}

}  // namespace churnstore

#if defined(CHURNSTORE_HEAP_SENTINEL)
// Replacement global allocation functions ([new.delete.single/array]).
// Every form forwards to malloc/posix_memalign and bumps the calling
// thread's counter slot; delete counts non-null frees. free() accepts
// posix_memalign memory, so one delete family serves both.

void* operator new(std::size_t size) {
  void* p = churnstore::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return churnstore::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return churnstore::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = churnstore::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return churnstore::counted_aligned_alloc(size,
                                           static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return churnstore::counted_aligned_alloc(size,
                                           static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { churnstore::counted_free(p); }
void operator delete[](void* p) noexcept { churnstore::counted_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  churnstore::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  churnstore::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  churnstore::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  churnstore::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  churnstore::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  churnstore::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  churnstore::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  churnstore::counted_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  churnstore::counted_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  churnstore::counted_free(p);
}
#endif  // CHURNSTORE_HEAP_SENTINEL
