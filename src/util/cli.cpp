#include "util/cli.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace churnstore {

Cli::Cli(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  parse(tokens);
}

Cli::Cli(std::vector<std::string> tokens) { parse(tokens); }

void Cli::parse(const std::vector<std::string>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.rfind("--", 0) != 0) {
      // Bare key=value tokens are flags too (scenario-spec syntax).
      const auto eq = tok.find('=');
      if (eq != std::string::npos && eq > 0) {
        values_[tok.substr(0, eq)] = tok.substr(eq + 1);
      } else {
        positional_.push_back(tok);
      }
      continue;
    }
    std::string body = tok.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      values_[body] = tokens[++i];
    } else {
      values_[body] = "true";
    }
  }
}

const std::string* Cli::lookup(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end()) return &it->second;
  if (const auto it = env_cache_.find(name); it != env_cache_.end())
    return &it->second;
  std::string env_name = "CHURNSTORE_";
  for (const char c : name)
    env_name += (c == '-') ? '_' : static_cast<char>(std::toupper(c));
  if (const char* v = std::getenv(env_name.c_str())) {
    env_cache_[name] = v;
    return &env_cache_[name];
  }
  return nullptr;
}

bool Cli::has(const std::string& name) const { return lookup(name) != nullptr; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const std::string* v = lookup(name);
  return v ? *v : fallback;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const std::string* v = lookup(name);
  if (!v) return fallback;
  return std::stoll(*v);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const std::string* v = lookup(name);
  if (!v) return fallback;
  return std::stod(*v);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const std::string* v = lookup(name);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

std::vector<std::int64_t> Cli::get_int_list(
    const std::string& name, std::vector<std::int64_t> fallback) const {
  const std::string* v = lookup(name);
  if (!v) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(*v);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (!part.empty()) out.push_back(std::stoll(part));
  }
  return out.empty() ? fallback : out;
}

}  // namespace churnstore
