// Aligned text-table and CSV emitter for bench output.
//
// Every bench binary prints the rows of the table/figure it regenerates via
// this class, so EXPERIMENTS.md entries can be produced by copy-paste.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace churnstore {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Row-building helpers: begin_row() then cell(...) in column order.
  Table& begin_row();
  Table& cell(const std::string& v);
  Table& cell(std::int64_t v);
  Table& cell(std::uint64_t v);
  Table& cell(double v, int precision = 4);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;
  /// JSON array of row objects keyed by header; numeric-looking cells are
  /// emitted as numbers, everything else as strings.
  void print_json(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data() const {
    return rows_;
  }

  static std::string fmt(double v, int precision = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace churnstore
