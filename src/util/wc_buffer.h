// Software write-combining for the radix scatter (the classic in-memory
// partitioning technique: Satish et al., Wassenberg & Sanders, Polychroniou
// & Ross).
//
// The forward loop scatters tokens into hundreds of per-(src shard, dst
// page) SoA buckets. Pushing directly means every token dirties three
// far-apart cache lines (one per column tail), and with hundreds of open
// write streams the hardware gives up: each push is a read-for-ownership
// DRAM round-trip plus a dTLB walk. A WcScatter keeps one 64-byte staging
// line per bucket column in a compact table that DOES fit in L1/L2; pushes
// land in the staging line, and only a FULL line is written to the real
// bucket tail — one line-sized burst per 8/16/32 tokens instead of three
// touches per token.
//
// Full-line writes optionally use non-temporal stores (CHURNSTORE_NT_STORES,
// on by default via CMake): the bucket tails are not re-read until a later
// phase, so bypassing the cache skips the RFO read entirely. The fallback is
// plain memcpy (which the compiler lowers to ordinary vector moves). After
// an NT epilogue the caller's flush_all() issues one sfence; the engine's
// pool barrier would also order the stores, but the fence makes the handoff
// self-contained.
//
// Determinism contract: per-bucket element order under WC buffering is
// byte-identical to direct push_back order — elements enter the staging
// line in push order and lines are flushed in order, so this is pure
// plumbing under the engine's S-invariance (golden baselines do not move).
//
// Bucket interface (see TokenSoup::HandoffBucket, tests/wc_buffer_test.cpp):
//   std::uint64_t* src();  std::uint32_t* dst();  std::uint16_t* meta();
//   void wc_reserve(n);   // cap >= n; growth may copy garbage tails
//   void wc_commit(n);    // size = n (absolute), after tails are in place
// Alignment contract: the bucket block is 64-byte aligned and its capacity
// is a multiple of 16, so all three column bases are 64-byte aligned and
// every full-line flush targets an aligned line.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#if defined(CHURNSTORE_NT_STORES) && defined(__SSE2__)
#include <emmintrin.h>
#define CHURNSTORE_WC_NT 1
#else
#define CHURNSTORE_WC_NT 0
#endif

namespace churnstore {

/// One full cache line, plain stores (lowered to vector moves).
inline void wc_copy_line(std::byte* dst, const std::byte* line) noexcept {
  std::memcpy(dst, line, 64);
}

/// One full cache line, non-temporal when the toggle + SSE2 are available
/// (dst must be 16-byte aligned — the WC alignment contract gives 64).
inline void wc_stream_line(std::byte* dst, const std::byte* line) noexcept {
#if CHURNSTORE_WC_NT
  auto* d = reinterpret_cast<__m128i*>(dst);
  const auto* s = reinterpret_cast<const __m128i*>(line);
  _mm_stream_si128(d + 0, _mm_load_si128(s + 0));
  _mm_stream_si128(d + 1, _mm_load_si128(s + 1));
  _mm_stream_si128(d + 2, _mm_load_si128(s + 2));
  _mm_stream_si128(d + 3, _mm_load_si128(s + 3));
#else
  std::memcpy(dst, line, 64);
#endif
}

/// Orders prior non-temporal stores before subsequent reads (no-op in the
/// memcpy fallback).
inline void wc_stream_fence() noexcept {
#if CHURNSTORE_WC_NT
  _mm_sfence();
#endif
}

/// Write-combining front end for a contiguous array of SoA buckets with the
/// engine's token record shape: (u64 src, u32 dst, u16 meta). Hard-coding
/// the shape keeps push() at three masked stores — the hot loop runs this
/// tens of millions of times per round. kNonTemporal selects streaming
/// full-line flushes; use `false` for buckets that are re-read immediately
/// (two-level runs) and `true` for buckets read a phase later (final
/// handoff buckets).
///
/// Not thread-safe: one WcScatter per shard, touched only by that shard's
/// task — the same contract as the buckets it fronts.
template <class Bucket, bool kNonTemporal = false>
class WcScatter {
 public:
  /// Line quanta per column: 8 x u64 / 16 x u32 / 32 x u16 fill 64 bytes.
  static constexpr std::uint32_t kLine0 = 8;
  static constexpr std::uint32_t kLine1 = 16;
  static constexpr std::uint32_t kLine2 = 32;

  /// Point at `count` buckets (must outlive the scatter or be re-attached).
  /// Staging state is reset; bucket sizes are untouched.
  void attach(Bucket* buckets, std::uint32_t count) {
    buckets_ = buckets;
    count_ = count;
    slots_.assign(count, Slot{});
    counts_.assign(count, 0u);
  }

  [[nodiscard]] std::uint32_t bucket_count() const noexcept { return count_; }
  /// Staged-but-unflushed elements of bucket b (testing / introspection).
  [[nodiscard]] std::uint32_t pending(std::uint32_t b) const noexcept {
    return counts_[b];
  }

  void push(std::uint32_t b, std::uint64_t src, std::uint32_t dst,
            std::uint16_t meta) {
    Slot& sl = slots_[b];
    const std::uint32_t c = counts_[b];
    reinterpret_cast<std::uint64_t*>(sl.line[0])[c & (kLine0 - 1)] = src;
    reinterpret_cast<std::uint32_t*>(sl.line[1])[c & (kLine1 - 1)] = dst;
    reinterpret_cast<std::uint16_t*>(sl.line[2])[c & (kLine2 - 1)] = meta;
    const std::uint32_t n = c + 1;
    counts_[b] = n;
    if ((n & (kLine0 - 1)) == 0) spill(b, n);
  }

  /// Deterministic epilogue: copy every partial staging tail to its column,
  /// commit bucket sizes, reset staging. After this the buckets read exactly
  /// as if every element had been push_back'd directly.
  void flush_all() {
    for (std::uint32_t b = 0; b < count_; ++b) {
      const std::uint32_t n = counts_[b];
      if (n == 0) continue;
      Bucket& bk = buckets_[b];
      bk.wc_reserve(n);
      Slot& sl = slots_[b];
      // Full lines already hit the columns at spill time; each partial tail
      // sits at the front of its staging line (indices wrap at the line
      // quantum), destined for the last committed line boundary.
      const std::uint32_t t0 = n & (kLine0 - 1);
      const std::uint32_t t1 = n & (kLine1 - 1);
      const std::uint32_t t2 = n & (kLine2 - 1);
      if (t0 != 0) {
        std::memcpy(reinterpret_cast<std::byte*>(bk.src()) +
                        std::size_t{n - t0} * 8,
                    sl.line[0], std::size_t{t0} * 8);
      }
      if (t1 != 0) {
        std::memcpy(reinterpret_cast<std::byte*>(bk.dst()) +
                        std::size_t{n - t1} * 4,
                    sl.line[1], std::size_t{t1} * 4);
      }
      if (t2 != 0) {
        std::memcpy(reinterpret_cast<std::byte*>(bk.meta()) +
                        std::size_t{n - t2} * 2,
                    sl.line[2], std::size_t{t2} * 2);
      }
      bk.wc_commit(n);
      counts_[b] = 0;
    }
    if constexpr (kNonTemporal) wc_stream_fence();
  }

 private:
  struct Slot {
    alignas(64) std::byte line[3][64];
  };

  static void store_line(std::byte* dst, const std::byte* line) noexcept {
    if constexpr (kNonTemporal) {
      wc_stream_line(dst, line);
    } else {
      wc_copy_line(dst, line);
    }
  }

  /// Write the just-completed col-0 line (and col-1/col-2 lines when their
  /// larger quanta also completed) to the bucket tails. n is a multiple of 8.
  void spill(std::uint32_t b, std::uint32_t n) {
    Bucket& bk = buckets_[b];
    bk.wc_reserve(n);
    assert((reinterpret_cast<std::uintptr_t>(bk.src()) & 63) == 0 &&
           "WC bucket block must be 64-byte aligned");
    Slot& sl = slots_[b];
    store_line(reinterpret_cast<std::byte*>(bk.src()) +
                   std::size_t{n - kLine0} * 8,
               sl.line[0]);
    if ((n & (kLine1 - 1)) == 0) {
      store_line(reinterpret_cast<std::byte*>(bk.dst()) +
                     std::size_t{n - kLine1} * 4,
                 sl.line[1]);
    }
    if ((n & (kLine2 - 1)) == 0) {
      store_line(reinterpret_cast<std::byte*>(bk.meta()) +
                     std::size_t{n - kLine2} * 2,
                 sl.line[2]);
    }
  }

  Bucket* buckets_ = nullptr;
  std::uint32_t count_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> counts_;
};

}  // namespace churnstore
