// Deterministic partition of vertex slots into contiguous shards.
//
// The sharded round engine (TokenSoup::step, Network's sharded outboxes)
// splits the vertex range [0, n) into `count` contiguous ranges and runs
// each range as one task. Contiguity is load-bearing for determinism:
// every shard scans its range in ascending vertex order, and every merge
// concatenates per-shard buffers in ascending shard order, so the merged
// stream is in ascending GLOBAL vertex order — independent of how many
// shards the work was split into. That is what makes shards=1 and
// shards=16 bit-identical (see tests/sharded_engine_test.cpp).
#pragma once

#include <algorithm>
#include <cstdint>

namespace churnstore {

class ShardPlan {
 public:
  ShardPlan() = default;
  /// Partition [0, n) into `count` near-equal contiguous ranges; the first
  /// n % count shards get one extra slot. count is clamped to [1, max(n,1)].
  ShardPlan(std::uint32_t n, std::uint32_t count)
      : n_(n),
        count_(std::clamp<std::uint32_t>(count, 1, std::max<std::uint32_t>(n, 1))),
        base_(n_ / count_),
        extra_(n_ % count_) {}

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t count() const noexcept { return count_; }

  [[nodiscard]] std::uint32_t begin(std::uint32_t s) const noexcept {
    return s * base_ + std::min(s, extra_);
  }
  [[nodiscard]] std::uint32_t end(std::uint32_t s) const noexcept {
    return begin(s + 1);
  }

  [[nodiscard]] std::uint32_t shard_of(std::uint32_t v) const noexcept {
    const std::uint32_t wide = extra_ * (base_ + 1);
    if (v < wide) return v / (base_ + 1);
    return extra_ + (v - wide) / base_;
  }

 private:
  std::uint32_t n_ = 0;
  std::uint32_t count_ = 1;
  std::uint32_t base_ = 0;   ///< n / count
  std::uint32_t extra_ = 0;  ///< n % count (first `extra_` shards are +1)
};

}  // namespace churnstore
