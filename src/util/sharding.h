// Deterministic partition of vertex slots into contiguous shards.
//
// The sharded round engine (TokenSoup::step, Network's sharded outboxes)
// splits the vertex range [0, n) into `count` contiguous ranges and runs
// each range as one task. Contiguity is load-bearing for determinism:
// every shard scans its range in ascending vertex order, and every merge
// concatenates per-shard buffers in ascending shard order, so the merged
// stream is in ascending GLOBAL vertex order — independent of how many
// shards the work was split into. That is what makes shards=1 and
// shards=16 bit-identical (see tests/sharded_engine_test.cpp).
#pragma once

#include <algorithm>
#include <cstdint>

namespace churnstore {

/// Exact unsigned 32-bit division by a runtime-fixed divisor via one
/// widening multiply and shift (Granlund–Montgomery round-up method):
/// with L = ceil(log2 d) and m = ceil(2^(32+L) / d), m*d lands in
/// [2^(32+L), 2^(32+L) + d - 1] and d - 1 <= 2^L, which is exactly the
/// condition under which floor((v * m) >> (32+L)) == v / d for EVERY
/// 32-bit v. The walk engine calls shard_of once per moving token, and a
/// hardware 32-bit divide (~20+ cycles, unpipelined) was a measurable
/// slice of the forwarding loop; the multiply-shift is ~3 cycles and
/// pipelines. Exactness is pinned by the ShardPlan fast-division test.
class FastDiv32 {
 public:
  FastDiv32() = default;
  explicit FastDiv32(std::uint32_t d) noexcept {
    std::uint32_t log2_ceil = 0;
    while ((std::uint64_t{1} << log2_ceil) < d) ++log2_ceil;
    shift_ = 32 + log2_ceil;
    mul_ = static_cast<std::uint64_t>(
        ((static_cast<__uint128_t>(1) << shift_) + d - 1) / d);
  }

  [[nodiscard]] std::uint32_t divide(std::uint32_t v) const noexcept {
    // m can be 33 bits, so the product needs the full 128-bit widening
    // multiply (one mulx on x86-64).
    return static_cast<std::uint32_t>(
        (static_cast<__uint128_t>(v) * mul_) >> shift_);
  }

 private:
  std::uint64_t mul_ = 1ULL << 32;  ///< identity: divide by 1
  std::uint32_t shift_ = 32;
};

class ShardPlan {
 public:
  ShardPlan() = default;
  /// Partition [0, n) into `count` near-equal contiguous ranges; the first
  /// n % count shards get one extra slot. count is clamped to [1, max(n,1)].
  ShardPlan(std::uint32_t n, std::uint32_t count)
      : n_(n),
        count_(std::clamp<std::uint32_t>(count, 1, std::max<std::uint32_t>(n, 1))),
        base_(n_ / count_),
        extra_(n_ % count_),
        wide_(extra_ * (base_ + 1)),
        div_wide_(base_ + 1),
        div_narrow_(std::max<std::uint32_t>(base_, 1)) {}

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t count() const noexcept { return count_; }

  [[nodiscard]] std::uint32_t begin(std::uint32_t s) const noexcept {
    return s * base_ + std::min(s, extra_);
  }
  [[nodiscard]] std::uint32_t end(std::uint32_t s) const noexcept {
    return begin(s + 1);
  }

  [[nodiscard]] std::uint32_t shard_of(std::uint32_t v) const noexcept {
    if (v < wide_) return div_wide_.divide(v);
    return extra_ + div_narrow_.divide(v - wide_);
  }

 private:
  std::uint32_t n_ = 0;
  std::uint32_t count_ = 1;
  std::uint32_t base_ = 0;   ///< n / count
  std::uint32_t extra_ = 0;  ///< n % count (first `extra_` shards are +1)
  std::uint32_t wide_ = 0;   ///< first vertex owned by a base_-sized shard
  FastDiv32 div_wide_{};     ///< divide by base_ + 1
  FastDiv32 div_narrow_{};   ///< divide by base_ (>= 1 whenever reachable)
};

}  // namespace churnstore
