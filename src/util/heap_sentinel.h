// Runtime allocation sentinel — the dynamic half of the arena discipline.
//
// shardcheck R6/R7 prove *lexically* that hot regions do not touch the
// global heap; this module proves it *at runtime*: replacement global
// operator new/delete count every allocation (per thread and process-wide),
// and HeapQuiesceScope snapshots the counters around a region so callers
// can assert "this steady-state round performed zero heap allocations" —
// or print honest allocs/round columns when it did not.
//
// Counting is always on (when compiled in): each thread owns one
// cacheline-aligned counter slot in a fixed global table, registered
// lock-free on first allocation, and bumps it with relaxed atomics — an
// uncontended ~1ns add per malloc, negligible next to the malloc itself.
// process_totals() sums the slots; concurrent reads are racy-but-monotonic
// snapshots, which is exactly what a before/after delta needs.
//
// Graceful degradation mirrors util/perf_counters.h: when the replacements
// are compiled out (-DCHURNSTORE_HEAP_SENTINEL absent — e.g. a host
// allocator that must not be shadowed) every total reads as zero, and when
// force_unavailable_for_testing() is set the counters keep running but the
// availability contract flips. Either way available() reports false and
// callers MUST treat the readings as absent, not zero — print "n/a" and
// move on, never a fake heap-quiet claim.
#pragma once

#include <cstdint>

namespace churnstore {

class HeapSentinel {
 public:
  struct Totals {
    std::uint64_t allocs = 0;  ///< operator new calls
    std::uint64_t frees = 0;   ///< operator delete calls (non-null)
    std::uint64_t bytes = 0;   ///< bytes requested from operator new

    friend Totals operator-(const Totals& a, const Totals& b) noexcept {
      return Totals{a.allocs - b.allocs, a.frees - b.frees,
                    a.bytes - b.bytes};
    }
  };

  /// True when the counting operator new/delete replacements are linked
  /// and active. False when compiled out or forced off for testing — in
  /// which case totals read zero and mean "unknown", not "no allocations".
  [[nodiscard]] static bool available() noexcept;

  /// The calling thread's own counters (exact: only this thread writes
  /// its slot).
  [[nodiscard]] static Totals thread_totals() noexcept;

  /// Sum over every thread that ever allocated. Monotonic; concurrent
  /// writers may land between the per-slot reads, so a delta of two
  /// snapshots can attribute an in-flight allocation to either side —
  /// never lose or double-count a completed one.
  [[nodiscard]] static Totals process_totals() noexcept;

  /// Test hook: makes available() report false so the degraded path
  /// ("n/a", skipped quiet assertions) is testable on hosts where the
  /// replacements work. Counting itself keeps running — only the
  /// availability contract flips. (util/ static-state exemption:
  /// test-only, never touched from shard tasks.)
  static void force_unavailable_for_testing(bool on) noexcept;
};

/// RAII probe for the heap-quiet invariant: snapshots process totals at
/// construction; delta() is the allocation traffic since then, across ALL
/// threads (shard-pool workers included — which is the point: a sharded
/// round's allocations happen on pool threads, not the caller).
///
///   HeapQuiesceScope probe;
///   sys.run_round();
///   if (HeapQuiesceScope::supported() && !probe.quiet()) report(probe.delta());
///
/// The scope records, it does not enforce: destruction never asserts or
/// throws. Callers decide whether a non-quiet region is a bug (the soup
/// steady state) or the honest cost of a control-plane event (a committee
/// reconfiguration mid-round).
class HeapQuiesceScope {
 public:
  HeapQuiesceScope() noexcept : start_(HeapSentinel::process_totals()) {}

  /// Allocation traffic since construction. All-zero when !supported().
  [[nodiscard]] HeapSentinel::Totals delta() const noexcept {
    return HeapSentinel::process_totals() - start_;
  }

  /// True when zero operator-new calls landed since construction. Only
  /// meaningful when supported(); an unavailable sentinel reads quiet
  /// vacuously, so gate any assertion on supported() first.
  [[nodiscard]] bool quiet() const noexcept { return delta().allocs == 0; }

  /// Whether quiet()/delta() carry real measurements on this build/host.
  [[nodiscard]] static bool supported() noexcept {
    return HeapSentinel::available();
  }

 private:
  HeapSentinel::Totals start_;
};

}  // namespace churnstore
