// Hardware counter proof for hot-loop claims (perf_event_open wrapper).
//
// "The WC scatter removed the DRAM round-trips" is a falsifiable statement:
// cycles, LLC misses, and dTLB misses per token either drop or they don't.
// This wrapper counts exactly those three (plus instructions) around a
// measured region so soup_step can print counter-backed columns next to
// Mtokens/sec.
//
// Graceful degradation is a hard requirement, not an afterthought: CI
// containers and many VMs deny perf_event_open (EPERM under seccomp,
// ENOENT when no PMU is exposed, or the syscall is absent off Linux). In
// every such case the wrapper reports available() == false and read()
// returns values with per-counter ok flags cleared — never a crash, never
// garbage. Callers print "n/a" and move on.
//
// Each event gets its own fd (no group leader): on hosts where some events
// exist and others don't, we keep what we can instead of losing the group.
// Counting mode only (no sampling, no mmap), exclude_kernel+exclude_hv so
// perf_event_paranoid=2 hosts still permit it.
#pragma once

#include <cstdint>

namespace churnstore {

class PerfCounters {
 public:
  struct Values {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llc_misses = 0;
    std::uint64_t dtlb_misses = 0;
    bool cycles_ok = false;
    bool instructions_ok = false;
    bool llc_misses_ok = false;
    bool dtlb_misses_ok = false;
    /// True when at least one counter produced a real reading.
    [[nodiscard]] bool any() const noexcept {
      return cycles_ok || instructions_ok || llc_misses_ok || dtlb_misses_ok;
    }
  };

  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when at least one event opened. False on denial, absent PMU, or
  /// non-Linux — callers must treat the readings as absent, not zero.
  [[nodiscard]] bool available() const noexcept;

  /// Reset and enable every opened counter (no-op when unavailable).
  void start() noexcept;
  /// Disable counting (readings freeze; no-op when unavailable).
  void stop() noexcept;
  /// Current readings with per-counter validity flags. Safe to call in any
  /// state; unavailable counters come back with ok = false and value 0.
  [[nodiscard]] Values read() const noexcept;

  /// Test hook: forces every subsequently-constructed PerfCounters to
  /// behave as if perf_event_open failed, so the degraded path is testable
  /// on hosts where the syscall happens to work. (util/ static-state
  /// exemption: test-only, never touched from shard tasks.)
  static void force_unavailable_for_testing(bool on) noexcept;

 private:
  static constexpr int kEvents = 4;
  int fds_[kEvents] = {-1, -1, -1, -1};
};

}  // namespace churnstore
