// Software-prefetch shim for the hot loops.
//
// The sharded walk engine's two big scans — the per-vertex token-queue
// drain and the handoff-merge refill — stride through arena blocks and
// scatter into per-vertex queue headers that the hardware prefetcher
// cannot predict (the next address depends on a loaded destination
// vertex). A well-placed software prefetch turns each of those dependent
// misses into an overlapped one. The shim compiles to nothing on
// toolchains without __builtin_prefetch, so call sites never need guards.
#pragma once

namespace churnstore {

#if defined(__GNUC__) || defined(__clang__)
/// Hint a read of the cache line holding `p` (high temporal locality).
inline void prefetch_read(const void* p) noexcept {
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
}
/// Hint a write to the cache line holding `p`.
inline void prefetch_write(const void* p) noexcept {
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
}
#else
inline void prefetch_read(const void*) noexcept {}
inline void prefetch_write(const void*) noexcept {}
#endif

}  // namespace churnstore
