#include "util/table.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <sstream>

namespace churnstore {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::begin_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& v) {
  rows_.back().push_back(v);
  return *this;
}

Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(double v, int precision) { return cell(fmt(v, precision)); }

std::string Table::fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string();
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << v;
    }
    os << '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < width.size(); ++c)
    rule += std::string(width[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

void emit_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << ch;
    }
  }
  os << '"';
}

}  // namespace

void Table::print_json(std::ostream& os) const {
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    const auto& row = rows_[r];
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c) os << ", ";
      emit_json_string(os, header_[c]);
      os << ": ";
      const std::string& v = c < row.size() ? row[c] : std::string();
      if (looks_numeric(v)) {
        os << v;
      } else {
        emit_json_string(os, v);
      }
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace churnstore
