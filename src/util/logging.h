// Tiny leveled logger. Simulations at scale must not pay for logging in hot
// paths, so the macros compile down to a level check on an atomic.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace churnstore {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel level() noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  static void set_level(LogLevel lv) noexcept {
    level_.store(static_cast<int>(lv), std::memory_order_relaxed);
  }
  static bool enabled(LogLevel lv) noexcept { return lv >= level(); }

  /// Thread-safe single-line emission to stderr.
  static void emit(LogLevel lv, const std::string& msg);

 private:
  static std::atomic<int> level_;
};

#define CHURNSTORE_LOG(lv, expr)                                       \
  do {                                                                 \
    if (::churnstore::Logger::enabled(lv)) {                           \
      std::ostringstream churnstore_log_ss_;                           \
      churnstore_log_ss_ << expr;                                      \
      ::churnstore::Logger::emit(lv, churnstore_log_ss_.str());        \
    }                                                                  \
  } while (0)

#define LOG_DEBUG(expr) CHURNSTORE_LOG(::churnstore::LogLevel::kDebug, expr)
#define LOG_INFO(expr) CHURNSTORE_LOG(::churnstore::LogLevel::kInfo, expr)
#define LOG_WARN(expr) CHURNSTORE_LOG(::churnstore::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) CHURNSTORE_LOG(::churnstore::LogLevel::kError, expr)

}  // namespace churnstore
