// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component of the system (adversary, protocol, workload)
// draws from its own Rng stream derived from a master seed, so that runs are
// exactly reproducible and the adversary's randomness is provably
// independent of the protocol's randomness (the paper's oblivious-adversary
// model requires the adversary to commit to its choices before observing any
// protocol coin flips; separate streams with no feedback path realize this).
//
// The generator is xoshiro256++ seeded via splitmix64, which is
// statistically strong, tiny, and far faster than std::mt19937_64.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace churnstore {

/// splitmix64 step; used for seeding and for cheap hash mixing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mix of a 64-bit value (one splitmix64 round on a copy).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// Seed of the counter-based stream `stream` under `key` (golden-ratio
/// counter mix). stream_rng(key, i) for i = 0, 1, 2, ... yields mutually
/// independent generators that are pure functions of (key, i) — no parent
/// state to advance, so any number of them can be forked concurrently. The
/// sharded round engine derives one per (round, vertex) this way.
[[nodiscard]] std::uint64_t stream_seed(std::uint64_t key,
                                        std::uint64_t stream) noexcept;

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions, though the member helpers below are
/// preferred in hot paths.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xdeadbeefcafef00dULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  /// Defined inline: next()/next_below() are the innermost operations of
  /// the walk hot loop (one draw per forwarded token), so they must not
  /// cost a cross-TU call. stream_fill_below below batches them further.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl_(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl_(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (l < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Exponential variate with rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// Standard normal variate (Box-Muller, no caching).
  double normal() noexcept;

  /// Geometric: number of failures before first success, p in (0, 1].
  std::uint64_t geometric(double p) noexcept;

  /// Derive an independent child stream; deterministic in (this state, salt).
  /// Advances this generator by one draw. For forking WITHOUT shared parent
  /// state (e.g. concurrently, per shard), use the free stream_rng instead.
  [[nodiscard]] Rng fork(std::uint64_t salt) noexcept;

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, pool) without replacement.
  /// Complexity O(k) expected when k << pool (hash-based rejection),
  /// O(pool) otherwise.
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
      std::uint32_t pool, std::uint32_t k) noexcept;

  /// sample_without_replacement into caller-owned buffers: consumes the
  /// SAME rng draws and produces the SAME sequence (the rejection test
  /// against `seen_scratch` bits matches the hash-set membership test bit
  /// for bit), but performs zero heap allocations once the scratch
  /// capacities have reached steady state — the repeated-sampling form
  /// hot loops (the churn adversary, every round, forever) must use.
  /// `index_scratch` is resized to pool in the dense branch;
  /// `seen_scratch` is grown to pool once and returned all-zero.
  void sample_without_replacement_into(
      std::uint32_t pool, std::uint32_t k, std::vector<std::uint32_t>& out,
      std::vector<std::uint32_t>& index_scratch,
      std::vector<std::uint8_t>& seen_scratch) noexcept;

 private:
  static std::uint64_t rotl_(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// The generator seeded by stream_seed(key, stream); see stream_seed.
[[nodiscard]] inline Rng stream_rng(std::uint64_t key,
                                    std::uint64_t stream) noexcept {
  return Rng(stream_seed(key, stream));
}

/// Batched counter-stream draws: fills out[0..k) with k uniform values in
/// [0, bound), all drawn from the SINGLE stream stream_rng(key, stream) —
/// draw-for-draw identical to constructing that stream once and calling
/// next_below(bound) k times. The walk hot loop makes one call per
/// (round, vertex) and then indexes neighbors straight off the buffer,
/// which keeps the per-(round, vertex) stream discipline that shardcheck
/// R1 enforces while removing every per-token generator interaction from
/// the inner loop. bound must be > 0 and fit in 32 bits (it is a vertex
/// degree or similar small fan-out).
inline void stream_fill_below(std::uint64_t key, std::uint64_t stream,
                              std::uint64_t bound, std::uint32_t* out,
                              std::size_t k) noexcept {
  Rng rng = stream_rng(key, stream);
  for (std::size_t i = 0; i < k; ++i) {
    out[i] = static_cast<std::uint32_t>(rng.next_below(bound));
  }
}

}  // namespace churnstore
