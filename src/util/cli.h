// Minimal command-line flag parser used by benches and examples.
//
// Flags take the form --name=value, --name value, or bare key=value (the
// ScenarioSpec syntax: `bench_driver --scenario=search n=512 trials=4`);
// bare --name sets a bool. Unknown flags are collected and can be rejected
// by the caller. Environment variables CHURNSTORE_<NAME> (uppercased,
// '-'→'_') act as defaults so the whole bench suite can be scaled down/up
// without editing command lines.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace churnstore {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Construct from pre-split tokens (used by tests).
  explicit Cli(std::vector<std::string> tokens);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. --n=256,512,1024.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, std::vector<std::int64_t> fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::map<std::string, std::string>& flags() const {
    return values_;
  }

 private:
  void parse(const std::vector<std::string>& tokens);
  /// Looks up flag value, falling back to CHURNSTORE_<NAME> env var.
  [[nodiscard]] const std::string* lookup(const std::string& name) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, std::string> env_cache_;
};

}  // namespace churnstore
