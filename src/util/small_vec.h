// Small-vector with N inline slots spilling to a per-shard Arena.
//
// Wire messages are the last hot-path allocator customers: every
// invite/count/inquiry/probe used to carry its scalar words in a heap
// std::vector even though almost all of them hold a handful of values. A
// SmallVec stores up to N elements inside the object itself — the common
// messages perform ZERO allocator calls end to end — and spills larger
// payloads (member lists, item blobs) into the Arena bound to the current
// shard task (Arena::current(), bound by Network::run_sharded), falling
// back to the global heap in unbound serial contexts.
//
// Ownership/concurrency contract (same staging discipline as util/arena.h):
// a spilled SmallVec remembers the arena its block came from and returns it
// there on growth/destruction. Growth and destruction must therefore happen
// either on the task that owns that arena or in serial context between
// phases. The round engine satisfies this naturally: messages are built and
// grown on one shard task, MOVED across stages (moves never touch the
// arena), and destroyed serially when inboxes/outboxes are cleared.
//
// Only trivially copyable element types are supported: growth is memcpy,
// destruction frees the block without element teardown, and moved-from
// containers reset to the inline empty state.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <type_traits>
#include <vector>

#include "util/arena.h"

namespace churnstore {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec supports trivially copyable elements only");
  static_assert(N * sizeof(T) >= 2 * sizeof(void*),
                "inline area must be able to hold the spill header");
  static_assert(N > 0 && N < 0x7fffffff);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept {}
  SmallVec(std::initializer_list<T> init) { assign(init.begin(), init.end()); }
  SmallVec(const SmallVec& o) { assign(o.data(), o.data() + o.size_); }
  SmallVec(SmallVec&& o) noexcept { steal(o); }
  ~SmallVec() { release(); }

  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) assign(o.data(), o.data() + o.size_);
    return *this;
  }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      release();
      steal(o);
    }
    return *this;
  }
  SmallVec& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }
  SmallVec& operator=(const std::vector<T>& v) {
    assign(v.data(), v.data() + v.size());
    return *this;
  }

  [[nodiscard]] T* data() noexcept { return spilled() ? spill_.data : inline_; }
  [[nodiscard]] const T* data() const noexcept {
    return spilled() ? spill_.data : inline_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool spilled() const noexcept { return cap_ > N; }

  [[nodiscard]] iterator begin() noexcept { return data(); }
  [[nodiscard]] iterator end() noexcept { return data() + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data(); }
  [[nodiscard]] const_iterator end() const noexcept { return data() + size_; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data()[i];
  }
  [[nodiscard]] T& back() noexcept { return data()[size_ - 1]; }
  [[nodiscard]] const T& back() const noexcept { return data()[size_ - 1]; }

  void clear() noexcept { size_ = 0; }

  void reserve(std::size_t want) {
    if (want > cap_) grow(want);
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow(size_ + 1);
    data()[size_++] = v;
  }

  void assign(std::size_t n, const T& v) {
    if (n > cap_) {
      release();
      grow(n);
    }
    T* d = data();
    for (std::size_t i = 0; i < n; ++i) d[i] = v;
    size_ = static_cast<std::uint32_t>(n);
  }

  template <std::forward_iterator It>
  void assign(It first, It last) {
    const auto n = static_cast<std::size_t>(std::distance(first, last));
    if (n > cap_) {
      // Old contents are irrelevant; drop any spill before reallocating so
      // assign never copies twice.
      release();
      grow(n);
    }
    T* d = data();
    std::size_t i = 0;
    for (It it = first; it != last; ++it, ++i) d[i] = *it;
    size_ = static_cast<std::uint32_t>(n);
  }

  /// End-insertion only (the one form wire-format builders use); keeps the
  /// growth path trivial. Forward iterators only: the range is measured
  /// first, then copied.
  template <std::forward_iterator It>
  void insert(const_iterator pos, It first, It last) {
    assert(pos == end() && "SmallVec supports end-insertion only");
    (void)pos;
    const auto n = static_cast<std::size_t>(std::distance(first, last));
    reserve(size_ + n);
    T* d = data() + size_;
    for (It it = first; it != last; ++it, ++d) *d = *it;
    size_ += static_cast<std::uint32_t>(n);
  }

  [[nodiscard]] std::vector<T> to_vector() const {
    return std::vector<T>(begin(), end());
  }

  template <std::size_t M>
  [[nodiscard]] friend bool operator==(const SmallVec& a,
                                       const SmallVec<T, M>& b) noexcept {
    if (a.size() != b.size()) return false;
    return std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
  }

 private:
  struct Spill {
    T* data;
    Arena* arena;  ///< where `data` came from (nullptr = global heap)
  };

  static T* alloc(std::size_t n, Arena* a) {
    return static_cast<T*>(a != nullptr ? a->allocate(n * sizeof(T))
                                        : ::operator new(n * sizeof(T)));
  }
  static void dealloc(T* p, std::size_t n, Arena* a) noexcept {
    if (a != nullptr) {
      a->deallocate(p, n * sizeof(T));
    } else {
      ::operator delete(p);
    }
  }

  /// Free any spill block and return to the inline empty state.
  void release() noexcept {
    if (spilled()) dealloc(spill_.data, cap_, spill_.arena);
    size_ = 0;
    cap_ = static_cast<std::uint32_t>(N);
  }

  void steal(SmallVec& o) noexcept {
    size_ = o.size_;
    cap_ = o.cap_;
    if (o.spilled()) {
      spill_ = o.spill_;
    } else {
      // Constant-size copy of the whole inline area: the tail past size_ is
      // garbage either way, and the fixed length keeps the compiler's
      // bounds analysis (and the optimizer) happy.
      std::memcpy(inline_, o.inline_, N * sizeof(T));
    }
    o.size_ = 0;
    o.cap_ = static_cast<std::uint32_t>(N);
  }

  void grow(std::size_t min_cap) {
    std::size_t new_cap = 2 * static_cast<std::size_t>(cap_);
    if (new_cap < min_cap) new_cap = min_cap;
    Arena* a = Arena::current();
    T* nd = alloc(new_cap, a);
    std::memcpy(nd, data(), size_ * sizeof(T));
    if (spilled()) dealloc(spill_.data, cap_, spill_.arena);
    spill_.data = nd;
    spill_.arena = a;
    cap_ = static_cast<std::uint32_t>(new_cap);
  }

  union {
    T inline_[N];
    /// Default-initialized variant member: a never-spilled SmallVec reads
    /// only size_/cap_, but zeroing the header keeps the compiler's
    /// uninitialized-use analysis (and destructor inlining) warning-free.
    Spill spill_ = {nullptr, nullptr};
  };
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = static_cast<std::uint32_t>(N);
};

}  // namespace churnstore
