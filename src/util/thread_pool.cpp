#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace churnstore {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futs.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::drain_help(std::uint64_t epoch, std::size_t count,
                            const std::function<void(std::size_t)>& fn) {
  // Exceptions from fn must neither hang the barrier (a drainer that died
  // without bumping job_done_) nor unwind the caller's frame while other
  // drainers still hold `fn`: every drain catches, records the first error,
  // keeps counting, and the posting caller rethrows after the barrier.
  const std::uint64_t goal = (epoch << 32) | static_cast<std::uint64_t>(count);
  std::uint64_t cur = job_claim_.load(std::memory_order_acquire);
  // job_claim_ is monotonic and was set to (epoch << 32) before this job's
  // drainers could observe it, so cur < goal already implies the epoch bits
  // match: the CAS can only claim indices of THIS job.
  while (cur < goal) {
    if (!job_claim_.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_acq_rel)) {
      continue;  // cur was reloaded by the failed CAS
    }
    const std::size_t i = static_cast<std::size_t>(cur & 0xffffffffULL);
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!job_error_) job_error_ = std::current_exception();
    }
    if (job_done_.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
      std::lock_guard<std::mutex> lock(mu_);
      job_cv_.notify_all();
    }
    cur = job_claim_.load(std::memory_order_acquire);
  }
}

void ThreadPool::for_each_helping(std::size_t count,
                                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  std::uint64_t epoch = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (job_active_) {
      // The single job slot is taken: either fn of the active job called
      // back in (nesting), or another thread is mid-job. Run serially
      // inline — no lock held, so the active job keeps draining — with the
      // same run-everything-then-rethrow-first contract.
      lock.unlock();
      std::exception_ptr err;
      for (std::size_t i = 0; i < count; ++i) {
        try {
          fn(i);
        } catch (...) {
          if (!err) err = std::current_exception();
        }
      }
      if (err) std::rethrow_exception(err);
      return;
    }
    job_active_ = true;
    epoch = ++job_epoch_;
    job_count_ = count;
    job_fn_ = &fn;
    job_error_ = nullptr;
    job_done_.store(0, std::memory_order_relaxed);
    job_claim_.store(epoch << 32, std::memory_order_release);
  }
  cv_.notify_all();
  drain_help(epoch, count, fn);
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    job_cv_.wait(lock, [this, count] {
      return job_done_.load(std::memory_order_acquire) == count;
    });
    // Barrier passed: every index ran and returned, so no drainer can still
    // be inside fn; stale workers fail their epoch-checked CAS harmlessly.
    job_active_ = false;
    job_fn_ = nullptr;
    err = job_error_;
    job_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    bool help = false;
    std::uint64_t epoch = 0;
    std::size_t count = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        // Wake for the fork-join slot only while it still has unclaimed
        // indices — once they are all claimed the comparison goes false and
        // workers stop spinning even though job_active_ stays set until the
        // caller's barrier clears it.
        return stopping_ || !queue_.empty() ||
               (job_active_ &&
                job_claim_.load(std::memory_order_relaxed) <
                    ((job_epoch_ << 32) | static_cast<std::uint64_t>(job_count_)));
      });
      if (stopping_ && queue_.empty()) return;
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop();
      } else if (job_active_) {
        help = true;
        epoch = job_epoch_;
        count = job_count_;
        fn = job_fn_;
      } else {
        continue;
      }
    }
    if (help) {
      drain_help(epoch, count, *fn);
    } else {
      task();
    }
  }
}

}  // namespace churnstore
