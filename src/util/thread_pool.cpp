#include "util/thread_pool.h"

#include <algorithm>

namespace churnstore {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futs.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace churnstore
