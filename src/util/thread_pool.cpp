#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace churnstore {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futs.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::for_each_helping(std::size_t count,
                                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t count = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;  ///< first throw from fn, guarded by mu
  };
  // Helpers may dequeue after this call returned (e.g. the queue was backed
  // up behind outer tasks); shared ownership keeps the state alive for them.
  // They can no longer see an index < count by then, so `fn` is never
  // dereferenced after it goes out of scope.
  auto st = std::make_shared<State>();
  st->count = count;
  st->fn = &fn;
  // Exceptions from fn must neither hang the barrier (a helper that died
  // without bumping `done`) nor unwind the caller's frame while helpers
  // still hold `fn`: every drain catches, records the first error, keeps
  // counting, and the caller rethrows after the barrier.
  const auto drain = [](const std::shared_ptr<State>& s) {
    std::size_t i;
    while ((i = s->next.fetch_add(1)) < s->count) {
      try {
        (*s->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s->mu);
        if (!s->error) s->error = std::current_exception();
      }
      if (s->done.fetch_add(1) + 1 == s->count) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->cv.notify_all();
      }
    }
  };
  const std::size_t helpers = std::min(count - 1, workers_.size());
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([st, drain] { drain(st); });
  }
  drain(st);
  std::unique_lock<std::mutex> lock(st->mu);
  st->cv.wait(lock, [&st] { return st->done.load() == st->count; });
  if (st->error) std::rethrow_exception(st->error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace churnstore
