// Baseline: Chord-like structured DHT under churn (paper related work:
// structured/DHT schemes have "no provable performance guarantees under
// large adversarial churn"). Self-contained round simulator over the ring
// id space: items live at the r successors of their key; joins/leaves
// happen every round; a periodic stabilization pass re-replicates items
// from surviving copies to the current correct successors. Between
// stabilizations replication decays, and once all r copies die within one
// period the item is lost forever — which happens readily at the paper's
// churn rates, unlike in the committee protocol.
//
// Lookups route greedily over idealized finger tables (ceil(log2 n) hops,
// one hop per round); routing itself is assumed perfect so that measured
// failures isolate the DATA loss channel, which is the comparison that
// matters for storage under churn.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/protocol.h"
#include "core/service.h"
#include "util/rng.h"

namespace churnstore {

class ChordSim {
 public:
  struct Options {
    std::uint32_t n = 1024;
    std::uint32_t replication = 8;           ///< r successors hold each key
    std::uint32_t stabilize_period = 16;     ///< rounds between repair passes
    std::uint32_t churn_per_round = 8;
    std::uint64_t seed = 1;
    std::uint64_t item_bits = 1024;
  };

  explicit ChordSim(Options options);

  void store(std::uint64_t key);

  /// Advance one round: churn, then (periodically) stabilization.
  void run_round();
  void run_rounds(std::uint32_t k);

  struct LookupResult {
    bool success = false;
    std::uint32_t hops = 0;
  };
  /// Route to the key's successor set; succeeds if a live replica exists at
  /// completion time (churn continues during the hops).
  LookupResult lookup(std::uint64_t key);

  [[nodiscard]] std::size_t replicas_alive(std::uint64_t key) const;
  [[nodiscard]] bool item_lost(std::uint64_t key) const {
    return replicas_alive(key) == 0;
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  /// Messages spent on stabilization so far (repair cost accounting).
  [[nodiscard]] std::uint64_t stabilize_messages() const noexcept {
    return stabilize_messages_;
  }
  [[nodiscard]] std::size_t ring_size() const noexcept { return ring_.size(); }

 private:
  [[nodiscard]] std::vector<std::uint64_t> successors(std::uint64_t key,
                                                      std::uint32_t count) const;
  void churn_step();
  void stabilize();

  Options options_;
  Rng rng_;
  std::uint64_t round_ = 0;
  std::set<std::uint64_t> ring_;                        ///< live node ids
  /// key -> node ids currently holding a replica (live or not, pruned on
  /// access). Stored as sets for cheap erase on churn.
  std::unordered_map<std::uint64_t, std::set<std::uint64_t>> holders_;
  /// node id -> keys it holds (to drop replicas when the node leaves).
  std::unordered_map<std::uint64_t, std::set<std::uint64_t>> inventory_;
  std::uint64_t stabilize_messages_ = 0;
};

/// Chord on the shared simulation driver — the LEGACY `chord=ring` stack
/// variant (the default `chord=net` is the message-accurate
/// baseline/chord_net/ subsystem, whose lookup-success numbers this
/// adapter matches at zero churn). The ring simulator keeps its own
/// idealized routing (see ChordSim above) and ignores the expander topology;
/// what the adapter synchronizes is the ROUND CLOCK and the churn VOLUME:
/// every network round advances the ring one round with the same per-round
/// replacement count the expander-side adversary uses, so success rates are
/// measured under identical churn exposure. Items live at ring positions
/// derived from their id; the creator/initiator vertices only matter as
/// workload labels (routing is idealized anyway).
class ChordBaseline final : public Protocol, public StorageService {
 public:
  struct Options {
    std::uint32_t replication = 8;        ///< r successors hold each key
    std::uint32_t stabilize_period = 16;  ///< rounds between repair passes
    std::uint64_t item_bits = 1024;
  };

  ChordBaseline() : ChordBaseline(Options{}) {}
  explicit ChordBaseline(Options options);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "chord";
  }
  void on_attach(Network& net) override;
  /// Round work runs in the ring sim, NOT on the sharded vertex engine —
  /// Chord keeps its idealized-routing adapter (serial round fallback), and
  /// honestly reports the serial default for dispatch too. With per-protocol
  /// dispatch gating that costs nothing: only messages whose consume chain
  /// actually reaches Chord (none — it consumes no Network messages) drain
  /// serially, while committee/landmark/store/search in a mixed stack keep
  /// dispatching on their shard lanes.
  void on_round_begin() override;

  [[nodiscard]] ChordSim& sim() noexcept { return *sim_; }

  /// --- StorageService -----------------------------------------------------
  bool try_store(Vertex creator, ItemId item) override;
  [[nodiscard]] std::uint64_t begin_search(Vertex initiator,
                                           ItemId item) override;
  [[nodiscard]] WorkloadOutcome search_outcome(
      std::uint64_t sid) const override;
  [[nodiscard]] std::uint32_t search_timeout() const override { return 1; }
  [[nodiscard]] std::size_t copies_alive(ItemId item) const override {
    return sim_->replicas_alive(item);
  }

 private:
  Options options_;
  std::unique_ptr<ChordSim> sim_;
  std::uint64_t next_sid_ = 1;
  // shardcheck:cold-state(outcome registry of the serial ring-sim wrapper; no sharded hooks touch it)
  std::unordered_map<std::uint64_t, WorkloadOutcome> outcomes_;
};

}  // namespace churnstore
