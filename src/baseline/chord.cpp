#include "baseline/chord.h"

#include <algorithm>
#include <cmath>

namespace churnstore {

ChordSim::ChordSim(Options options)
    : options_(options), rng_(mix64(options.seed ^ 0x63686f72ULL)) {
  while (ring_.size() < options_.n) {
    ring_.insert(rng_.next());
  }
}

std::vector<std::uint64_t> ChordSim::successors(std::uint64_t key,
                                                std::uint32_t count) const {
  std::vector<std::uint64_t> out;
  out.reserve(count);
  auto it = ring_.lower_bound(key);
  while (out.size() < count && out.size() < ring_.size()) {
    if (it == ring_.end()) it = ring_.begin();
    out.push_back(*it);
    ++it;
  }
  return out;
}

void ChordSim::store(std::uint64_t key) {
  for (const std::uint64_t node : successors(key, options_.replication)) {
    holders_[key].insert(node);
    inventory_[node].insert(key);
  }
}

void ChordSim::churn_step() {
  for (std::uint32_t i = 0; i < options_.churn_per_round && !ring_.empty();
       ++i) {
    // Remove a uniformly random node (with its replicas)...
    auto it = ring_.lower_bound(rng_.next());
    if (it == ring_.end()) it = ring_.begin();
    const std::uint64_t victim = *it;
    ring_.erase(it);
    if (const auto inv = inventory_.find(victim); inv != inventory_.end()) {
      for (const std::uint64_t key : inv->second) holders_[key].erase(victim);
      inventory_.erase(inv);
    }
    // ...and admit a fresh node with a random id (joins hold no data until
    // the next stabilization pass).
    std::uint64_t fresh = rng_.next();
    while (!ring_.insert(fresh).second) fresh = rng_.next();
  }
}

void ChordSim::stabilize() {
  // For every key that still has at least one live replica, one surviving
  // holder pushes copies to the key's current r successors. Each push is a
  // message carrying the item.
  for (auto& [key, nodes] : holders_) {
    if (nodes.empty()) continue;
    const auto succ = successors(key, options_.replication);
    for (const std::uint64_t node : succ) {
      if (nodes.insert(node).second) {
        inventory_[node].insert(key);
        ++stabilize_messages_;
      }
    }
    // Holders that are no longer among the successors hand off and drop.
    for (auto it = nodes.begin(); it != nodes.end();) {
      if (std::find(succ.begin(), succ.end(), *it) == succ.end()) {
        inventory_[*it].erase(key);
        it = nodes.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void ChordSim::run_round() {
  ++round_;
  churn_step();
  if (options_.stabilize_period != 0 &&
      round_ % options_.stabilize_period == 0) {
    stabilize();
  }
}

void ChordSim::run_rounds(std::uint32_t k) {
  for (std::uint32_t i = 0; i < k; ++i) run_round();
}

std::size_t ChordSim::replicas_alive(std::uint64_t key) const {
  const auto it = holders_.find(key);
  return it == holders_.end() ? 0 : it->second.size();
}

ChordSim::LookupResult ChordSim::lookup(std::uint64_t key) {
  LookupResult res;
  res.hops = static_cast<std::uint32_t>(
      std::ceil(std::log2(std::max<std::size_t>(ring_.size(), 2))));
  // Routing takes one round per hop; churn keeps running underneath.
  run_rounds(res.hops);
  res.success = replicas_alive(key) > 0;
  return res;
}

ChordBaseline::ChordBaseline(Options options) : options_(options) {}

void ChordBaseline::on_attach(Network& net_ref) {
  Protocol::on_attach(net_ref);
  const SimConfig& sim_cfg = net().config();
  ChordSim::Options o;
  o.n = sim_cfg.n;
  o.replication = options_.replication;
  o.stabilize_period = options_.stabilize_period;
  o.churn_per_round = sim_cfg.churn.per_round(sim_cfg.n);
  o.seed = mix64(sim_cfg.seed ^ 0x63686f7264ULL);
  o.item_bits = options_.item_bits;
  sim_ = std::make_unique<ChordSim>(o);
}

void ChordBaseline::on_round_begin() { sim_->run_round(); }

bool ChordBaseline::try_store(Vertex creator, ItemId item) {
  (void)creator;  // items live at ring positions of their id
  sim_->store(item);
  return true;
}

std::uint64_t ChordBaseline::begin_search(Vertex initiator, ItemId item) {
  (void)initiator;  // routing is idealized; the searcher's slot is a label
  const std::uint64_t sid = mix64(next_sid_++ ^ 0x6c6f6f6bULL) | 1;
  const ChordSim::LookupResult res = sim_->lookup(item);
  WorkloadOutcome out;
  out.done = true;
  out.located = out.fetched = res.success;
  if (res.success) {
    out.located_round = out.fetched_round =
        net().round() + static_cast<Round>(res.hops);
  }
  outcomes_[sid] = out;
  return sid;
}

WorkloadOutcome ChordBaseline::search_outcome(std::uint64_t sid) const {
  const auto it = outcomes_.find(sid);
  return it == outcomes_.end() ? WorkloadOutcome{} : it->second;
}

}  // namespace churnstore
