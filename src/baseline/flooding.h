// Baseline: flooding storage (the naive solution of paper section 4, first
// paragraph). The creator floods the item through the network; every node
// stores a replica, so retrieval is trivially local and persistence is
// near-certain — at the cost of linear storage and per-node traffic
// proportional to d * |I| bits per round during the flood. Freshly churned-
// in nodes pull nothing, so coverage decays unless the item is re-flooded
// (optional refresh knob), which is exactly the scalability failure the
// paper's protocol avoids.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/network.h"

namespace churnstore {

class FloodingStore {
 public:
  struct Options {
    /// Re-flood from every holder each `refresh_period` rounds (0 = never).
    std::uint32_t refresh_period = 0;
    std::uint64_t item_bits = 1024;
  };

  FloodingStore(Network& net, Options options);

  /// Inject the item at `creator`; it floods from there.
  void store(Vertex creator, ItemId item);

  /// Drive the flood frontier one round. Call between begin_round() and
  /// deliver(); then call handle() on delivered kFloodData messages.
  void on_round();
  bool handle(Vertex v, const Message& m);

  [[nodiscard]] bool has_item(Vertex v, ItemId item) const;
  /// Fraction of nodes currently holding the item.
  [[nodiscard]] double coverage(ItemId item) const;

 private:
  void on_churn(Vertex v);

  Network& net_;
  Options options_;
  std::vector<std::unordered_set<ItemId>> held_;
  std::vector<std::unordered_set<ItemId>> forwarded_;
  std::vector<std::pair<Vertex, ItemId>> frontier_;
};

}  // namespace churnstore
