// Baseline: flooding storage (the naive solution of paper section 4, first
// paragraph). The creator floods the item through the network; every node
// stores a replica, so retrieval is trivially local and persistence is
// near-certain — at the cost of linear storage and per-node traffic
// proportional to d * |I| bits per round during the flood. Freshly churned-
// in nodes pull nothing, so coverage decays unless the item is re-flooded
// (optional refresh knob), which is exactly the scalability failure the
// paper's protocol avoids.
//
// Runs as a Protocol module on the shared driver; the StorageService facade
// models retrieval as a local lookup at the initiator (resolved one round
// after begin_search), which is flooding's whole selling point.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/protocol.h"
#include "core/service.h"
#include "net/network.h"

namespace churnstore {

class FloodingStore final : public Protocol, public StorageService {
 public:
  struct Options {
    /// Re-flood from every holder each `refresh_period` rounds (0 = never).
    std::uint32_t refresh_period = 0;
    std::uint64_t item_bits = 1024;
  };

  explicit FloodingStore(Options options);
  /// Construct and attach in one step (standalone tests/benches).
  FloodingStore(Network& net, Options options);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "flooding";
  }
  void on_attach(Network& net) override;
  /// Sharded round: pending lookups and refresh bookkeeping stay in the
  /// serial prologue; the flood frontier is partitioned per shard (entries
  /// staged to the shard owning the forwarding vertex) and each shard
  /// forwards its own vertices' items through ctx.
  [[nodiscard]] bool sharded_round() const noexcept override { return true; }
  void on_round_begin() override;
  void on_round_begin(std::uint32_t shard, ShardContext& ctx) override;
  [[nodiscard]] bool sharded_dispatch() const noexcept override { return true; }
  bool on_message(Vertex v, const Message& m, ShardContext& ctx) override;
  void on_churn(Vertex v, PeerId old_peer, PeerId new_peer) override;

  /// Inject the item at `creator`; it floods from there.
  void store(Vertex creator, ItemId item);

  [[nodiscard]] bool has_item(Vertex v, ItemId item) const;
  /// Fraction of nodes currently holding the item.
  [[nodiscard]] double coverage(ItemId item) const;

  /// --- StorageService -----------------------------------------------------
  bool try_store(Vertex creator, ItemId item) override;
  [[nodiscard]] std::uint64_t begin_search(Vertex initiator,
                                           ItemId item) override;
  [[nodiscard]] WorkloadOutcome search_outcome(
      std::uint64_t sid) const override;
  [[nodiscard]] std::uint32_t search_timeout() const override { return 2; }
  [[nodiscard]] std::size_t copies_alive(ItemId item) const override;

 private:
  struct PendingLookup {
    std::uint64_t sid = 0;
    PeerId initiator = kNoPeer;
    ItemId item = 0;
  };

  Options options_;
  // shardcheck:arena-backed(per-vertex replica sets grow with every newly received item — the flooding baseline allocates by design and makes no heap-quiet claim)
  std::vector<std::unordered_set<ItemId>> held_;
  // shardcheck:arena-backed(forwarding dedup sets grow with every first-seen item, same design budget as held_)
  std::vector<std::unordered_set<ItemId>> forwarded_;
  /// Per-shard flood frontier: entry (v, item) lives in v's shard queue, so
  /// each shard forwards only its own vertices' items (canonical order:
  /// ascending shard, staging order within the shard).
  // shardcheck:arena-backed(per-shard flood frontier grows with newly received items each round, by design)
  std::vector<std::vector<std::pair<Vertex, ItemId>>> frontiers_;
  std::uint64_t next_sid_ = 1;
  // shardcheck:cold-state(grown only from the serial lookup() API path)
  std::vector<PendingLookup> pending_lookups_;
  // shardcheck:cold-state(outcome registry mutated only from serial lookup bookkeeping)
  std::unordered_map<std::uint64_t, WorkloadOutcome> outcomes_;
};

}  // namespace churnstore
