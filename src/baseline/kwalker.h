// Baseline: k-walker unstructured search (Lv et al. style, paper's related
// work on random-walk search in unstructured P2P networks). The item sits
// at a replication set of random nodes with no maintenance; a search
// launches k walker agents that move one hop per round and succeed when a
// walker lands on a holder. Under churn both holders and in-flight walkers
// die, so success decays with churn — the soup/committee design fixes both
// failure modes.
//
// Runs as a Protocol module on the shared driver; register after the
// TokenSoup it samples placement targets from.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/protocol.h"
#include "core/service.h"
#include "net/network.h"
#include "util/rng.h"
#include "walk/token_soup.h"

namespace churnstore {

class KWalkerSearch final : public Protocol, public StorageService {
 public:
  struct Options {
    std::uint32_t walkers = 16;       ///< k
    std::uint32_t replication = 0;    ///< holders; 0 = sqrt(n)
    std::uint64_t item_bits = 1024;
    /// Default walker TTL for StorageService searches (0 = 4 * tau).
    std::uint32_t default_ttl = 0;
  };

  KWalkerSearch(TokenSoup& soup, Options options);
  /// Construct and attach in one step (standalone tests/benches).
  KWalkerSearch(Network& net, TokenSoup& soup, Options options);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "k-walker";
  }
  void on_attach(Network& net) override;
  /// Sharded round: walkers are global agents, so the round partitions the
  /// WALKER index range (not the vertex range) across the same shard count;
  /// every walker draws from its own per-(round, index) stream, processing
  /// charges stage through ctx, and hits/survivors merge in canonical
  /// walker-index order. Walkers at churned vertices die (on_churn).
  [[nodiscard]] bool sharded_round() const noexcept override { return true; }
  void on_round_begin() override;
  void on_round_begin(std::uint32_t shard, ShardContext& ctx) override;
  void on_round_merge() override;
  [[nodiscard]] bool sharded_dispatch() const noexcept override {
    return true;  // no on_message at all
  }
  void on_churn(Vertex v, PeerId old_peer, PeerId new_peer) override;

  /// Place replicas from the creator's walk samples; 0 while buffer cold.
  std::size_t store(Vertex creator, ItemId item);

  std::uint64_t search(Vertex initiator, ItemId item, std::uint32_t ttl);

  struct SearchOutcome {
    bool done = false;
    bool success = false;
    Round rounds_taken = -1;
    std::uint32_t walkers_lost = 0;
  };
  [[nodiscard]] SearchOutcome outcome(std::uint64_t sid) const;

  [[nodiscard]] std::size_t holders_alive(ItemId item) const;

  /// --- StorageService -----------------------------------------------------
  bool try_store(Vertex creator, ItemId item) override;
  [[nodiscard]] std::uint64_t begin_search(Vertex initiator,
                                           ItemId item) override;
  [[nodiscard]] WorkloadOutcome search_outcome(
      std::uint64_t sid) const override;
  [[nodiscard]] std::uint32_t search_timeout() const override {
    return default_ttl_ + 2;
  }
  [[nodiscard]] std::size_t copies_alive(ItemId item) const override {
    return holders_alive(item);
  }

 private:
  struct Walker {
    std::uint64_t sid;
    ItemId item;
    Vertex at;
    std::uint32_t ttl;
  };

  TokenSoup& soup_;
  Options options_;
  std::uint64_t stream_salt_ = 0;
  std::uint32_t default_ttl_ = 0;
  std::uint64_t next_sid_ = 1;
  // shardcheck:arena-backed(per-vertex replica sets grow on placement messages; baseline control plane, no heap-quiet claim)
  std::vector<std::unordered_set<ItemId>> held_;
  // shardcheck:cold-state(god-view placement map mutated only from the serial store path)
  std::unordered_map<ItemId, std::vector<PeerId>> placed_;
  // shardcheck:cold-state(walker population rebuilt in the serial merge from staged survivors)
  std::vector<Walker> walkers_;
  // shardcheck:cold-state(outcome registry mutated in serial search/merge context)
  std::unordered_map<std::uint64_t, SearchOutcome> outcomes_;
  // shardcheck:cold-state(mutated only from the serial search() API path)
  std::unordered_map<std::uint64_t, Round> start_round_;
  /// Sampled probes awaiting an end event (obs/trace.h). Resolved in the
  /// serial merge: success when the outcome flips done, failure when no
  /// walker of the sid survives. Usually empty (only sampled probes).
  struct TracedProbe {
    std::uint64_t sid;
    Vertex initiator;
  };
  // shardcheck:cold-state(mutated only in serial search()/merge context)
  std::vector<TracedProbe> traced_;
  /// Walker-index partition for the current round (set in the prologue).
  ShardPlan walker_plan_;
  /// Per-shard staging: surviving walkers and this round's hits, merged in
  /// ascending shard (= walker index) order.
  struct ShardStage {
    std::vector<Walker> survivors;
    std::vector<std::uint64_t> hit_sids;
  };
  // shardcheck:cold-state(outer vector sized to the shard count at attach; inner staging vectors carry reasoned R6 suppressions at their growth sites)
  std::vector<ShardStage> stage_;
};

}  // namespace churnstore
