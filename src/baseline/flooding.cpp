#include "baseline/flooding.h"

namespace churnstore {

FloodingStore::FloodingStore(Network& net, Options options)
    : net_(net), options_(options), held_(net.n()), forwarded_(net.n()) {
  net_.add_churn_listener([this](Vertex v, PeerId, PeerId) { on_churn(v); });
}

void FloodingStore::on_churn(Vertex v) {
  held_[v].clear();
  forwarded_[v].clear();
}

void FloodingStore::store(Vertex creator, ItemId item) {
  held_[creator].insert(item);
  frontier_.emplace_back(creator, item);
}

bool FloodingStore::has_item(Vertex v, ItemId item) const {
  return held_[v].count(item) > 0;
}

double FloodingStore::coverage(ItemId item) const {
  std::uint64_t acc = 0;
  for (const auto& s : held_) acc += s.count(item);
  return static_cast<double>(acc) / static_cast<double>(held_.size());
}

void FloodingStore::on_round() {
  // Periodic refresh: every holder re-enters the frontier so newly churned-
  // in nodes eventually receive the item again.
  if (options_.refresh_period != 0 &&
      net_.round() % options_.refresh_period == 0) {
    for (Vertex v = 0; v < net_.n(); ++v) {
      forwarded_[v].clear();
      for (const ItemId item : held_[v]) frontier_.emplace_back(v, item);
    }
  }

  std::vector<std::pair<Vertex, ItemId>> frontier;
  frontier.swap(frontier_);
  const RegularGraph& g = net_.graph();
  for (const auto& [v, item] : frontier) {
    if (!held_[v].count(item)) continue;  // churned away since queued
    if (!forwarded_[v].insert(item).second) continue;
    const PeerId self = net_.peer_at(v);
    for (std::uint32_t i = 0; i < g.degree(); ++i) {
      Message msg;
      msg.src = self;
      msg.dst = net_.peer_at(g.neighbor(v, i));
      msg.type = MsgType::kFloodData;
      msg.words = {item};
      msg.payload_bits = options_.item_bits;
      net_.send(v, std::move(msg));
    }
  }
}

bool FloodingStore::handle(Vertex v, const Message& m) {
  if (m.type != MsgType::kFloodData) return false;
  const ItemId item = m.words[0];
  if (held_[v].insert(item).second) {
    frontier_.emplace_back(v, item);
  }
  return true;
}

}  // namespace churnstore
