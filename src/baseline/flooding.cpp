#include "baseline/flooding.h"

#include <algorithm>

#include "util/rng.h"

namespace churnstore {

FloodingStore::FloodingStore(Options options) : options_(options) {}

FloodingStore::FloodingStore(Network& net_ref, Options options)
    : FloodingStore(options) {
  on_attach(net_ref);
}

void FloodingStore::on_attach(Network& net_ref) {
  Protocol::on_attach(net_ref);
  held_.assign(net().n(), {});
  forwarded_.assign(net().n(), {});
  frontiers_.assign(net().shards().count(), {});
}

void FloodingStore::on_churn(Vertex v, PeerId, PeerId) {
  held_[v].clear();
  forwarded_[v].clear();
}

void FloodingStore::store(Vertex creator, ItemId item) {
  held_[creator].insert(item);
  frontiers_[net().shards().shard_of(creator)].emplace_back(creator, item);
}

bool FloodingStore::has_item(Vertex v, ItemId item) const {
  return held_[v].count(item) > 0;
}

double FloodingStore::coverage(ItemId item) const {
  std::uint64_t acc = 0;
  for (const auto& s : held_) acc += s.count(item);
  return static_cast<double>(acc) / static_cast<double>(held_.size());
}

std::size_t FloodingStore::copies_alive(ItemId item) const {
  std::size_t acc = 0;
  for (const auto& s : held_) acc += s.count(item);
  return acc;
}

bool FloodingStore::try_store(Vertex creator, ItemId item) {
  store(creator, item);
  return true;
}

std::uint64_t FloodingStore::begin_search(Vertex initiator, ItemId item) {
  const std::uint64_t sid = mix64(next_sid_++ ^ 0x666c64ULL) | 1;
  pending_lookups_.push_back(PendingLookup{sid, net().peer_at(initiator), item});
  outcomes_[sid] = WorkloadOutcome{};
  return sid;
}

WorkloadOutcome FloodingStore::search_outcome(std::uint64_t sid) const {
  const auto it = outcomes_.find(sid);
  return it == outcomes_.end() ? WorkloadOutcome{} : it->second;
}

void FloodingStore::on_round_begin() {
  // Resolve pending local lookups: retrieval under flooding is a local
  // table check at the initiator (if it survived to this round).
  std::vector<PendingLookup> lookups;
  lookups.swap(pending_lookups_);
  for (const PendingLookup& lk : lookups) {
    WorkloadOutcome& out = outcomes_[lk.sid];
    out.done = true;
    const auto v = net().find_vertex(lk.initiator);
    if (!v) {
      out.censored = true;
      continue;
    }
    if (held_[*v].count(lk.item)) {
      out.located = out.fetched = true;
      out.located_round = out.fetched_round = net().round();
    }
  }

  // Periodic refresh: every holder re-enters the frontier so newly churned-
  // in nodes eventually receive the item again.
  if (options_.refresh_period != 0 &&
      net().round() % options_.refresh_period == 0) {
    const ShardPlan& plan = net().shards();
    for (Vertex v = 0; v < net().n(); ++v) {
      forwarded_[v].clear();
      for (const ItemId item : held_[v]) {
        frontiers_[plan.shard_of(v)].emplace_back(v, item);
      }
    }
  }
}

void FloodingStore::on_round_begin(std::uint32_t shard, ShardContext& ctx) {
  // shardcheck:ok(R6: frontier swap-out: O(flood entries this round); the flooding baseline allocates by design and makes no heap-quiet claim)
  std::vector<std::pair<Vertex, ItemId>> frontier;
  frontier.swap(frontiers_[shard]);
  // Canonical order: ascending vertex (stable per vertex). Dispatch stages
  // entries in ascending order already, but store()/refresh injections may
  // not be; sorting makes the merged flood stream identical for every
  // shard count.
  std::stable_sort(frontier.begin(), frontier.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  const RegularGraph& g = net().graph();
  for (const auto& [v, item] : frontier) {
    if (!held_[v].count(item)) continue;  // churned away since queued
    if (!forwarded_[v].insert(item).second) continue;
    const PeerId self = net().peer_at(v);
    for (std::uint32_t i = 0; i < g.degree(); ++i) {
      Message msg;
      msg.src = self;
      msg.dst = net().peer_at(g.neighbor(v, i));
      msg.type = MsgType::kFloodData;
      msg.words = {item};
      msg.payload_bits = options_.item_bits;
      ctx.send(v, std::move(msg));
    }
  }
}

bool FloodingStore::on_message(Vertex v, const Message& m, ShardContext& ctx) {
  if (m.type != MsgType::kFloodData) return false;
  const ItemId item = m.words[0];
  if (held_[v].insert(item).second) {
    frontiers_[ctx.shard()].emplace_back(v, item);
  }
  return true;
}

}  // namespace churnstore
