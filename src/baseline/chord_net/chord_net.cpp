#include "baseline/chord_net/chord_net.h"

#include <algorithm>
#include <cassert>

#include "storage/item.h"
#include "util/rng.h"

namespace churnstore {

namespace {

// Wire formats (words):
//   kChordLookup         [0] key  [1] token  [2] want_data  [3] origin_peer
//                        [4] ndead  [5..] ndead x dead peer
//                        (semi-recursive: each hop forwards the lookup to
//                        the next node — one ROUND per hop — and sends a
//                        progress ack to the origin so it can detect and
//                        route around dead hops precisely. The dead list
//                        travels WITH the lookup: a router with a stale
//                        finger would otherwise forward every retry into
//                        the same dead node until its own repair cycle
//                        catches up, livelocking the lookup.)
//   kChordLookupReply    [0] key  [1] token  [2] done  [3] count
//                        [4..] count x (peer, id) — done == 1: holder-first
//                        candidate list; done == 0, count == 1: progress ack
//                        naming the hop now carrying the lookup; done == 0,
//                        count == 0: can't-route nack (unjoined receiver)
//   kChordStabilize      (empty)
//   kChordStabilizeReply [0] has_pred  [1] pred_peer  [2] pred_id
//                        [3] count  [4..] count x (peer, id) successor list
//   kChordNotify         [0] sender's chord id
//   kChordFetch          [0] item  [1] token
//   kChordFetchReply     [0] item  [1] token  [2] found; blob = payload
//   kChordTransfer       [0] item  [1] primary  [2] ack token (0 = none);
//                        blob = payload
//   kChordStoreAck       [0] item  [1] ack token
constexpr std::uint64_t kJoinSalt = 0x63686a6eULL;   // "chjn"
constexpr std::uint64_t kIdSalt = 0x63686f72644944ULL;
constexpr Round kNever = -1;

}  // namespace

void ChordNetProtocol::LookupStats::accumulate(const LookupStats& o) noexcept {
  searches_ok += o.searches_ok;
  searches_failed += o.searches_failed;
  stores_ok += o.stores_ok;
  stores_failed += o.stores_failed;
  hop_messages += o.hop_messages;
  ok_hops_sum += o.ok_hops_sum;
  ok_hops_max = std::max(ok_hops_max, o.ok_hops_max);
  maintenance_messages += o.maintenance_messages;
  transfers += o.transfers;
  joins_completed += o.joins_completed;
  ok_hops.merge(o.ok_hops);
}

void ChordNetProtocol::LookupStats::reset() noexcept {
  searches_ok = 0;
  searches_failed = 0;
  stores_ok = 0;
  stores_failed = 0;
  hop_messages = 0;
  ok_hops_sum = 0;
  ok_hops_max = 0;
  maintenance_messages = 0;
  transfers = 0;
  joins_completed = 0;
  ok_hops.clear();
}

ChordNetProtocol::ChordNetProtocol(Options options)
    : options_(options),
      stabilize_(options.stabilize_period),
      replicate_(options.replicate_period) {
  if (options_.successors == 0) options_.successors = 1;
}

ChordNetProtocol::ChordId ChordNetProtocol::chord_id(PeerId p) noexcept {
  return mix64(p ^ kIdSalt);
}

bool ChordNetProtocol::in_oc(ChordId a, ChordId x, ChordId b) noexcept {
  const std::uint64_t dx = x - a;
  const std::uint64_t db = b - a;
  if (db == 0) return dx != 0;  // (a, a] = full ring
  return dx != 0 && dx <= db;
}

bool ChordNetProtocol::in_oo(ChordId a, ChordId x, ChordId b) noexcept {
  const std::uint64_t dx = x - a;
  const std::uint64_t db = b - a;
  if (db == 0) return dx != 0;  // (a, a) = full ring minus a
  return dx != 0 && dx < db;
}

ChordNetProtocol::ChordId ChordNetProtocol::finger_target(
    ChordId id, std::uint32_t k) const noexcept {
  // Finger k covers distance 2^(63-k): half the ring, then quarter, ...
  // down to ~2^64 / 8n, below the expected node spacing.
  return id + (std::uint64_t{1} << (63 - k));
}

void ChordNetProtocol::on_attach(Network& net_ref) {
  Protocol::on_attach(net_ref);
  const std::uint32_t n = net().n();
  nodes_.assign(n, {});
  keys_.assign(n, {});
  lookups_.assign(n, {});
  shard_stats_.assign(net().shards().count(), {});
  seed_ = net().config().seed;

  std::uint32_t log2n = 0;
  while ((std::uint32_t{1} << log2n) < n) ++log2n;
  finger_count_ = std::min<std::uint32_t>(64, log2n + 3);
  // Semi-recursive hops cost one round each; the slack covers a re-join of
  // the initiator plus a few dead-hop retries.
  deadline_rounds_ = options_.timeout_mult * (log2n + 8);
  init_ring();
}

void ChordNetProtocol::init_ring() {
  // The experiment starts from a converged ring (ids sorted, successor
  // lists, predecessors and fingers exact) — the steady state a long-lived
  // deployment would be in. Churn then degrades it; maintenance repairs it.
  const std::uint32_t n = net().n();
  std::vector<std::pair<ChordId, Vertex>> ring;
  ring.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    nodes_[v].id = chord_id(net().peer_at(v));
    ring.emplace_back(nodes_[v].id, v);
  }
  std::sort(ring.begin(), ring.end());

  const std::uint32_t r =
      std::min<std::uint32_t>(options_.successors, n > 1 ? n - 1 : 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    NodeState& s = nodes_[ring[i].second];
    s.joined = true;
    s.stab_sent = kNever;
    const auto& prev = ring[(i + n - 1) % n];
    s.pred = net().peer_at(prev.second);
    s.pred_id = prev.first;
    s.pred_seen = 0;
    s.succ.clear();
    for (std::uint32_t j = 1; j <= r && n > 1; ++j) {
      const auto& nx = ring[(i + j) % n];
      s.succ.push_back(Entry{net().peer_at(nx.second), nx.first});
    }
    s.finger.assign(finger_count_, Entry{});
    for (std::uint32_t k = 0; k < finger_count_; ++k) {
      const ChordId target = finger_target(s.id, k);
      // Successor of `target` in the sorted ring (wrapping past the top).
      auto it = std::lower_bound(
          ring.begin(), ring.end(), std::make_pair(target, Vertex{0}),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      if (it == ring.end()) it = ring.begin();
      s.finger[k] = Entry{net().peer_at(it->second), it->first};
    }
  }
}

void ChordNetProtocol::on_churn(Vertex v, PeerId, PeerId new_peer) {
  // The fresh peer knows nothing: it must bootstrap off a graph neighbor
  // and re-join the ring. In-flight searches it initiated are censored.
  for (const Lookup& lk : lookups_[v]) {
    if (lk.kind != Lookup::Kind::kSearch) continue;
    const auto it = records_.find(lk.sid);
    if (it == records_.end() || it->second.out.done) continue;
    it->second.out.done = true;
    it->second.out.censored = true;
  }
  lookups_[v].clear();
  keys_[v].clear();
  NodeState& s = nodes_[v];
  s = NodeState{};
  s.id = chord_id(new_peer);
  s.stab_sent = kNever;
}

bool ChordNetProtocol::contains_peer(const std::vector<PeerId>& list,
                                     PeerId p) noexcept {
  return std::find(list.begin(), list.end(), p) != list.end();
}

ChordNetProtocol::Entry ChordNetProtocol::closest_preceding(
    const NodeState& s, ChordId key, const std::vector<PeerId>& dead) const {
  Entry best{};
  std::uint64_t best_d = 0;
  const std::uint64_t dk = key - s.id;
  const auto consider = [&](const Entry& e) {
    if (e.peer == kNoPeer || contains_peer(dead, e.peer)) return;
    const std::uint64_t d = e.id - s.id;
    if (d == 0) return;
    if ((dk == 0 || d < dk) && d > best_d) {
      best = e;
      best_d = d;
    }
  };
  for (const Entry& e : s.finger) consider(e);
  for (const Entry& e : s.succ) consider(e);
  return best;
}

void ChordNetProtocol::adopt_successors(NodeState& s, const Entry& head,
                                        const std::vector<Entry>& rest,
                                        PeerId self) {
  s.succ.clear();
  const auto push = [&](const Entry& e) {
    if (e.peer == kNoPeer || e.peer == self) return;
    if (s.succ.size() >= options_.successors) return;
    for (const Entry& have : s.succ) {
      if (have.peer == e.peer) return;
    }
    s.succ.push_back(e);
  };
  push(head);
  for (const Entry& e : rest) push(e);
}

void ChordNetProtocol::learn_entry(NodeState& s, const Entry& e) {
  if (e.peer == kNoPeer || e.id == s.id) return;
  for (std::uint32_t k = 0; k < s.finger.size(); ++k) {
    const ChordId target = finger_target(s.id, k);
    const std::uint64_t d_e = e.id - target;
    if (d_e >= s.id - target) continue;  // not in [target, self)
    Entry& f = s.finger[k];
    if (f.peer == kNoPeer || d_e < f.id - target) f = e;
  }
}

void ChordNetProtocol::forget_peer(NodeState& s, PeerId p) {
  for (Entry& f : s.finger) {
    if (f.peer == p) f = Entry{};
  }
  for (std::size_t i = 0; i < s.succ.size();) {
    if (s.succ[i].peer == p) {
      s.succ.erase(s.succ.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

// --- public API -------------------------------------------------------------

bool ChordNetProtocol::put(Vertex creator, ItemId item,
                           std::vector<std::uint8_t> payload) {
  if (items_.count(item)) return false;
  items_[item] = ItemInfo{content_hash(payload), payload.size()};
  Lookup lk;
  lk.kind = Lookup::Kind::kStore;
  lk.key = item;
  lk.token = nodes_[creator].next_token++;
  lk.deadline = net().round() + deadline_rounds_;
  lk.payload = std::move(payload);
  // Stores draw a trace id from the same sid counter as searches whether or
  // not a collector is installed, so the sid sequence (and with it every
  // downstream draw) is identical in traced and untraced runs.
  const std::uint64_t tid = mix64(next_sid_++ ^ 0x63737472ULL) | 1;  // "cstr"
  if (TraceCollector* tc = net().trace_collector();
      tc != nullptr && tc->sampled(tid)) {
    lk.trace = tid;
    lk.started = net().round();
    tc->record(make_trace_event(tid, lk.started, creator, 0, 0,
                                RequestClass::kChordStore, TraceEv::kBegin));
  }
  lookups_[creator].push_back(std::move(lk));
  return true;
}

std::uint64_t ChordNetProtocol::get(Vertex initiator, ItemId item) {
  const std::uint64_t sid = mix64(next_sid_++ ^ 0x63686f7264ULL) | 1;
  TraceCollector* tc = net().trace_collector();
  const bool traced = tc != nullptr && tc->sampled(sid);
  if (traced) {
    tc->record(make_trace_event(sid, net().round(), initiator, 0, 0,
                                RequestClass::kChordSearch, TraceEv::kBegin));
  }
  SearchRec& rec = records_[sid];
  rec.item = item;
  // Local hit: the initiator already holds a verified replica.
  const auto it = keys_[initiator].find(item);
  if (it != keys_[initiator].end() &&
      verify_payload(item, it->second.bytes.data(), it->second.bytes.size())) {
    rec.out.done = rec.out.located = rec.out.fetched = true;
    rec.out.located_round = rec.out.fetched_round = net().round();
    rec.value = it->second.bytes;
    ++totals_.searches_ok;  // serial context: totals mutated directly
    totals_.ok_hops.add(0.0);
    if (traced) {
      tc->record(make_trace_event(sid, net().round(), initiator, 0, 0,
                                  RequestClass::kChordSearch, TraceEv::kEndOk));
    }
    return sid;
  }
  Lookup lk;
  lk.kind = Lookup::Kind::kSearch;
  lk.key = item;
  lk.sid = sid;
  lk.token = nodes_[initiator].next_token++;
  lk.deadline = net().round() + deadline_rounds_;
  if (traced) {
    lk.trace = sid;
    lk.started = net().round();
  }
  lookups_[initiator].push_back(std::move(lk));
  return sid;
}

const ChordNetProtocol::SearchRec* ChordNetProtocol::record(
    std::uint64_t sid) const {
  const auto it = records_.find(sid);
  return it == records_.end() ? nullptr : &it->second;
}

bool ChordNetProtocol::try_store(Vertex creator, ItemId item) {
  // "Not ready" while the creator is still rejoining the ring — the
  // store-search driver retries from another creator next round.
  if (!nodes_[creator].joined) return false;
  return put(creator, item, make_payload(item, options_.item_bits));
}

std::uint64_t ChordNetProtocol::begin_search(Vertex initiator, ItemId item) {
  return get(initiator, item);
}

WorkloadOutcome ChordNetProtocol::search_outcome(std::uint64_t sid) const {
  const SearchRec* rec = record(sid);
  return rec ? rec->out : WorkloadOutcome{};
}

std::size_t ChordNetProtocol::copies_alive(ItemId item) const {
  std::size_t acc = 0;
  for (const auto& held : keys_) acc += held.count(item);
  return acc;
}

double ChordNetProtocol::ring_consistency() const {
  std::vector<std::pair<ChordId, Vertex>> ring;
  for (Vertex v = 0; v < net().n(); ++v) {
    if (nodes_[v].joined) ring.emplace_back(nodes_[v].id, v);
  }
  if (ring.size() < 2) return 1.0;
  std::sort(ring.begin(), ring.end());
  std::size_t good = 0;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const NodeState& s = nodes_[ring[i].second];
    const Vertex true_succ = ring[(i + 1) % ring.size()].second;
    if (!s.succ.empty() && s.succ[0].peer == net().peer_at(true_succ)) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(ring.size());
}

std::size_t ChordNetProtocol::joined_count() const {
  std::size_t acc = 0;
  for (const NodeState& s : nodes_) acc += s.joined;
  return acc;
}

std::vector<PeerId> ChordNetProtocol::successor_list(Vertex v) const {
  std::vector<PeerId> out;
  out.reserve(nodes_[v].succ.size());
  for (const Entry& e : nodes_[v].succ) out.push_back(e.peer);
  return out;
}

bool ChordNetProtocol::verify_payload(ItemId item, const std::uint8_t* data,
                                      std::size_t len) const {
  const auto it = items_.find(item);
  return it != items_.end() && it->second.bytes == len &&
         it->second.hash == content_hash(data, len);
}

// --- round work -------------------------------------------------------------

void ChordNetProtocol::on_round_begin(std::uint32_t shard, ShardContext& ctx) {
  const Round now = net().round();
  LookupStats& st = shard_stats_[shard];
  for (Vertex v = ctx.begin(); v < ctx.end(); ++v) {
    NodeState& s = nodes_[v];
    if (!s.joined) {
      maintain_join(v, s, now);
    } else {
      if (stabilize_.due(v, now)) tick_stabilize(v, s, now, ctx, st);
      if (replicate_.due(v, now)) tick_replicate(v, s, now, ctx, st);
    }
    advance_lookups(v, now, ctx, st);
  }
}

void ChordNetProtocol::on_round_merge() {
  for (LookupStats& st : shard_stats_) {
    totals_.accumulate(st);
    st.reset();  // in place: the histogram member must not reallocate
  }
}

void ChordNetProtocol::on_dispatch_merge() { on_round_merge(); }

void ChordNetProtocol::maintain_join(Vertex v, NodeState& s, Round now) {
  for (const Lookup& lk : lookups_[v]) {
    if (lk.kind == Lookup::Kind::kJoin) return;  // join already in flight
  }
  Lookup lk;
  lk.kind = Lookup::Kind::kJoin;
  lk.key = s.id;
  lk.token = s.next_token++;
  lk.deadline = now + deadline_rounds_;
  lookups_[v].push_back(std::move(lk));
}

// shardcheck:sharded-hook(called from the sharded on_round_begin lane)
void ChordNetProtocol::tick_stabilize(Vertex v, NodeState& s, Round now,
                                      ShardContext& ctx, LookupStats& st) {
  // check_predecessor, without a ping: a live predecessor re-notifies every
  // stabilize tick, so a pred that has been silent for two periods is
  // presumed dead. Dropping it lets the next notify install the true
  // predecessor — without this, stale preds block ring repair forever and
  // stabilize replies would keep advertising dead nodes as successors.
  if (s.pred != kNoPeer &&
      now - s.pred_seen >
          static_cast<Round>(2 * stabilize_.period() + 2)) {
    s.pred = kNoPeer;
  }
  // No reply since the last request (the reply lands one round after the
  // request): the peer we ASKED is presumed dead; purge it from the
  // successor list and fingers. Forgetting whatever sits at succ[0] *now*
  // would evict a live successor when a lookup timeout already removed the
  // silent one in between.
  if (s.stab_sent != kNever && now - s.stab_sent >= 2) {
    forget_peer(s, s.stab_target);
    if (s.succ.empty()) {
      // Ring contact lost entirely: behave like a fresh node and re-join.
      s.joined = false;
      s.pred = kNoPeer;
      s.stab_sent = kNever;
      return;
    }
  }
  if (s.succ.empty()) return;
  // Rotate one finger per tick through an iterative lookup.
  if (finger_count_ > 0) {
    const std::uint32_t k = s.next_finger;
    s.next_finger = (s.next_finger + 1) % finger_count_;
    bool active = false;
    for (const Lookup& lk : lookups_[v]) {
      if (lk.kind == Lookup::Kind::kFinger) {
        active = true;
        break;
      }
    }
    if (!active) {
      Lookup lk;
      lk.kind = Lookup::Kind::kFinger;
      lk.key = finger_target(s.id, k);
      lk.finger_idx = static_cast<std::uint8_t>(k);
      lk.token = s.next_token++;
      lk.deadline = now + deadline_rounds_;
      lookups_[v].push_back(std::move(lk));
    }
  }
  Message m;
  m.src = net().peer_at(v);
  m.dst = s.succ[0].peer;
  m.type = MsgType::kChordStabilize;
  s.stab_target = m.dst;
  ctx.send(v, std::move(m));
  s.stab_sent = now;
  ++st.maintenance_messages;
}

// shardcheck:sharded-hook(called from the sharded on_round_begin lane)
void ChordNetProtocol::tick_replicate(Vertex v, NodeState& s, Round now,
                                      ShardContext& ctx, LookupStats& st) {
  if (s.pred == kNoPeer || s.succ.empty()) return;
  // The lease must outlast the worst-case primary takeover (pred-silence
  // detection + successor promotion + notify + push), or a transient
  // repair stall erases every copy of an otherwise healthy item.
  const auto lease =
      static_cast<Round>(4 * replicate_.period() + 8);
  auto& held = keys_[v];
  for (auto it = held.begin(); it != held.end();) {
    const ItemId item = it->first;
    Replica& rep = it->second;
    if (in_oc(s.pred_id, item, s.id)) {
      // Primary for exactly the keys in (pred, self]: push to the replica
      // set and renew the local lease.
      rep.refreshed = now;
      for (const Entry& e : s.succ) {
        send_transfer(v, e.peer, item, rep.bytes, /*primary=*/false, ctx, st);
      }
      ++it;
    } else if (now - rep.refreshed > lease) {
      // Replica the primary stopped refreshing: we left the key's successor
      // set (or the copy migrated on); drop it.
      it = held.erase(it);
    } else {
      ++it;
    }
  }
}

// shardcheck:sharded-hook(called from the sharded on_round_begin lane)
void ChordNetProtocol::advance_lookups(Vertex v, Round now, ShardContext& ctx,
                                       LookupStats& st) {
  auto& list = lookups_[v];
  std::size_t write = 0;
  for (std::size_t read = 0; read < list.size(); ++read) {
    Lookup& lk = list[read];
    bool finished = false;
    if (now > lk.deadline) {
      if (lk.kind == Lookup::Kind::kSearch) {
        finish_search_failure(v, lk, now, ctx, st);
      }
      if (lk.kind == Lookup::Kind::kStore) {
        ++st.stores_failed;
        if (lk.trace != 0) {
          ctx.trace(make_trace_event(lk.trace, now, v, now - lk.started,
                                     lk.hops, RequestClass::kChordStore,
                                     TraceEv::kEndFail));
        }
      }
      finished = true;
    } else if (lk.storing) {
      if (now - lk.sent >= static_cast<Round>(2 * options_.lookup_retry)) {
        // No candidate acked the placement: the resolved successor set was
        // stale or died; re-resolve the key from scratch.
        lk.storing = false;
        lk.candidates.clear();
        finished = issue_hop(v, lk, now, ctx, st);
      }
    } else if (lk.hop == kNoPeer) {
      finished = lk.fetching ? advance_fetch(v, lk, now, ctx, st)
                             : issue_hop(v, lk, now, ctx, st);
    } else if (now - lk.sent >=
               static_cast<Round>(options_.lookup_retry)) {
      // The outstanding hop never answered: presume it churned out, route
      // around it (and drop it from our own tables).
      // shardcheck:ok(R6: dead-hop list grows one entry per unanswered lookup retry — O(routing timeouts), chord routing control plane with no heap-quiet claim)
      lk.dead.push_back(lk.hop);
      forget_peer(nodes_[v], lk.hop);
      lk.hop = kNoPeer;
      if (lk.fetching) {
        ++lk.fetch_idx;
        finished = advance_fetch(v, lk, now, ctx, st);
      } else {
        finished = issue_hop(v, lk, now, ctx, st);
      }
    }
    if (!finished) {
      if (write != read) list[write] = std::move(list[read]);
      ++write;
    }
  }
  list.resize(write);
}

Message ChordNetProtocol::make_lookup(PeerId src, PeerId dst,
                                      const Lookup& lk) const {
  Message m;
  m.src = src;
  m.dst = dst;
  m.type = MsgType::kChordLookup;
  m.words.push_back(lk.key);
  m.words.push_back(lk.token);
  m.words.push_back(lk.kind == Lookup::Kind::kSearch ? std::uint64_t{1} : 0);
  m.words.push_back(src);
  // Ship the (most recent) dead hops with the lookup so every router
  // excludes them; cap the tail so the message stays small.
  const std::size_t cap = 8;
  const std::size_t n = std::min(lk.dead.size(), cap);
  m.words.push_back(n);
  for (std::size_t i = lk.dead.size() - n; i < lk.dead.size(); ++i) {
    m.words.push_back(lk.dead[i]);
  }
  m.trace_id = lk.trace;  // 0 (untraced) costs nothing; see Message::size_bits
  return m;
}

// shardcheck:sharded-hook(called from both sharded lanes: round begin and dispatch)
bool ChordNetProtocol::issue_hop(Vertex v, Lookup& lk, Round now,
                                 ShardContext& ctx, LookupStats& st) {
  NodeState& s = nodes_[v];
  const PeerId self = net().peer_at(v);

  if (lk.kind == Lookup::Kind::kJoin) {
    // Bootstrap: ask a random graph neighbor (the model's "nodes know their
    // current neighbors") to resolve our own id.
    const RegularGraph& g = net().graph();
    if (g.degree() == 0) return false;
    Rng pick = stream_rng(mix64(seed_ ^ kJoinSalt) ^
                              static_cast<std::uint64_t>(now),
                          v);
    PeerId boot = kNoPeer;
    for (std::uint32_t attempt = 0; attempt < g.degree(); ++attempt) {
      const Vertex nb = g.neighbor(v, static_cast<std::uint32_t>(
                                          pick.next_below(g.degree())));
      const PeerId p = net().peer_at(nb);
      if (p != self && !contains_peer(lk.dead, p)) {
        boot = p;
        break;
      }
    }
    if (boot == kNoPeer) return false;  // all neighbors dead-listed; wait
    ctx.send(v, make_lookup(self, boot, lk));
    lk.hop = boot;
    lk.sent = now;
    ++lk.hops;
    ++st.hop_messages;
    return false;
  }

  if (!s.joined || s.succ.empty()) {
    // Cannot route right now; keep the lookup, a later round retries (the
    // deadline bounds how long).
    lk.sent = now;
    return false;
  }
  // Terminal checks against our own state first.
  if (s.pred != kNoPeer && in_oc(s.pred_id, lk.key, s.id)) {
    // shardcheck:ok(R6: candidate scratch for one terminal lookup resolution, O(successor-list) entries — chord control plane)
    std::vector<Entry> cands;
    cands.push_back(Entry{self, s.id});
    cands.insert(cands.end(), s.succ.begin(), s.succ.end());
    return complete_resolution(v, lk, std::move(cands), now, ctx, st);
  }
  if (in_oc(s.id, lk.key, s.succ[0].id)) {
    return complete_resolution(v, lk, s.succ, now, ctx, st);
  }
  Entry next = closest_preceding(s, lk.key, lk.dead);
  if (next.peer == kNoPeer) {
    if (!contains_peer(lk.dead, s.succ[0].peer)) {
      next = s.succ[0];
    } else {
      lk.sent = now;  // nothing routable; retry after the next repair
      return false;
    }
  }
  ctx.send(v, make_lookup(self, next.peer, lk));
  lk.hop = next.peer;
  lk.sent = now;
  ++lk.hops;
  ++st.hop_messages;
  if (lk.trace != 0) {
    ctx.trace(make_trace_event(lk.trace, now, v, kHopIssue, lk.hops,
                               lk.kind == Lookup::Kind::kStore
                                   ? RequestClass::kChordStore
                                   : RequestClass::kChordSearch,
                               TraceEv::kHop));
  }
  return false;
}

// shardcheck:sharded-hook(called from both sharded lanes: round begin and dispatch)
bool ChordNetProtocol::complete_resolution(Vertex v, Lookup& lk,
                                           std::vector<Entry> candidates,
                                           Round now, ShardContext& ctx,
                                           LookupStats& st) {
  NodeState& s = nodes_[v];
  const PeerId self = net().peer_at(v);
  switch (lk.kind) {
    case Lookup::Kind::kJoin: {
      Entry head{};
      // shardcheck:ok(R6: successor-candidate scratch built once per completed join, O(successor-list) entries)
      std::vector<Entry> rest;
      for (const Entry& e : candidates) {
        if (e.peer == kNoPeer || e.peer == self) continue;
        if (head.peer == kNoPeer) {
          head = e;
        } else {
          rest.push_back(e);
        }
      }
      if (head.peer == kNoPeer) return true;  // degenerate; re-join later
      adopt_successors(s, head, rest, self);
      s.joined = true;
      s.pred = kNoPeer;
      s.stab_sent = kNever;
      // shardcheck:ok(R6: finger table rebuilt once per completed join, O(log n) entries)
      s.finger.assign(finger_count_, Entry{});
      s.next_finger = 0;
      send_notify(v, s, ctx, st);
      ++st.joins_completed;
      return true;
    }
    case Lookup::Kind::kFinger: {
      if (!candidates.empty() && candidates[0].peer != kNoPeer &&
          lk.finger_idx < s.finger.size()) {
        s.finger[lk.finger_idx] = candidates[0];
      }
      return true;
    }
    case Lookup::Kind::kStore: {
      // Place the payload at the key's successor set: the primary re-pushes
      // to its own successor list, the rest receive plain replicas. Every
      // transfer carries the lookup token, so any candidate that stores a
      // copy acks the placement; until an ack lands the lookup stays alive
      // and re-resolves (the whole chain may have died under churn).
      const std::uint32_t copies = std::min<std::uint32_t>(
          options_.successors, static_cast<std::uint32_t>(candidates.size()));
      bool local = false;
      for (std::uint32_t i = 0; i < copies; ++i) {
        const Entry& e = candidates[i];
        if (e.peer == kNoPeer) continue;
        if (e.peer == self) {
          keys_[v][lk.key] = Replica{lk.payload, now};
          local = true;
          continue;
        }
        send_transfer(v, e.peer, lk.key, lk.payload, /*primary=*/i == 0, ctx,
                      st, lk.token);
      }
      if (local) {
        ++st.stores_ok;  // a copy exists at the creator's own slot
        if (lk.trace != 0) {
          ctx.trace(make_trace_event(lk.trace, now, v, now - lk.started,
                                     lk.hops, RequestClass::kChordStore,
                                     TraceEv::kEndOk));
        }
        return true;
      }
      lk.storing = true;
      lk.hop = kNoPeer;
      lk.sent = now;
      return false;
    }
    case Lookup::Kind::kSearch: {
      lk.candidates = std::move(candidates);
      lk.fetching = true;
      lk.fetch_idx = 0;
      lk.hop = kNoPeer;
      return advance_fetch(v, lk, now, ctx, st);
    }
  }
  return true;
}

// shardcheck:sharded-hook(called from both sharded lanes: round begin and dispatch)
bool ChordNetProtocol::advance_fetch(Vertex v, Lookup& lk, Round now,
                                     ShardContext& ctx, LookupStats& st) {
  const PeerId self = net().peer_at(v);
  while (lk.fetch_idx < lk.candidates.size()) {
    const Entry& c = lk.candidates[lk.fetch_idx];
    if (c.peer == kNoPeer || contains_peer(lk.dead, c.peer)) {
      ++lk.fetch_idx;
      continue;
    }
    if (c.peer == self) {
      const auto it = keys_[v].find(lk.key);
      if (it != keys_[v].end() &&
          verify_payload(lk.key, it->second.bytes.data(),
                         it->second.bytes.size())) {
        const auto rit = records_.find(lk.sid);
        if (rit != records_.end() && !rit->second.out.done) {
          rit->second.out.done = rit->second.out.located =
              rit->second.out.fetched = true;
          rit->second.out.located_round = rit->second.out.fetched_round = now;
          rit->second.value = it->second.bytes;
        }
        ++st.searches_ok;
        st.ok_hops_sum += lk.hops;
        st.ok_hops_max = std::max<std::uint64_t>(st.ok_hops_max, lk.hops);
        st.ok_hops.add(static_cast<double>(lk.hops));
        if (lk.trace != 0) {
          ctx.trace(make_trace_event(lk.trace, now, v, now - lk.started,
                                     lk.hops, RequestClass::kChordSearch,
                                     TraceEv::kEndOk));
        }
        return true;
      }
      ++lk.fetch_idx;
      continue;
    }
    Message m;
    m.src = self;
    m.dst = c.peer;
    m.type = MsgType::kChordFetch;
    m.words = {lk.key, lk.token};
    m.trace_id = lk.trace;
    ctx.send(v, std::move(m));
    lk.hop = c.peer;
    lk.sent = now;
    if (lk.trace != 0) {
      ctx.trace(make_trace_event(lk.trace, now, v, kHopFetch, lk.fetch_idx,
                                 RequestClass::kChordSearch, TraceEv::kHop));
    }
    return false;
  }
  finish_search_failure(v, lk, now, ctx, st);
  return true;
}

// shardcheck:sharded-hook(called from both sharded lanes: round begin and dispatch)
void ChordNetProtocol::finish_search_failure(Vertex v, const Lookup& lk,
                                             Round now, ShardContext& ctx,
                                             LookupStats& st) {
  const auto it = records_.find(lk.sid);
  if (it != records_.end() && !it->second.out.done) {
    it->second.out.done = true;
  }
  ++st.searches_failed;
  if (lk.trace != 0) {
    ctx.trace(make_trace_event(lk.trace, now, v, now - lk.started, lk.hops,
                               RequestClass::kChordSearch, TraceEv::kEndFail));
  }
}

// shardcheck:sharded-hook(called from the sharded on_round_begin lane)
void ChordNetProtocol::send_notify(Vertex v, const NodeState& s,
                                   ShardContext& ctx, LookupStats& st) {
  if (s.succ.empty()) return;
  Message m;
  m.src = net().peer_at(v);
  m.dst = s.succ[0].peer;
  m.type = MsgType::kChordNotify;
  m.words = {s.id};
  ctx.send(v, std::move(m));
  ++st.maintenance_messages;
}

// shardcheck:sharded-hook(called from both sharded lanes: round begin and dispatch)
void ChordNetProtocol::send_transfer(Vertex v, PeerId to, ItemId item,
                                     const std::vector<std::uint8_t>& bytes,
                                     bool primary, ShardContext& ctx,
                                     LookupStats& st,
                                     std::uint64_t ack_token) {
  if (to == kNoPeer || to == net().peer_at(v)) return;
  Message m;
  m.src = net().peer_at(v);
  m.dst = to;
  m.type = MsgType::kChordTransfer;
  m.words = {item, primary ? std::uint64_t{1} : 0, ack_token};
  m.blob.assign(bytes.data(), bytes.data() + bytes.size());
  ctx.send(v, std::move(m));
  ++st.transfers;
}

// --- message handlers -------------------------------------------------------

bool ChordNetProtocol::on_message(Vertex v, const Message& m,
                                  ShardContext& ctx) {
  NodeState& s = nodes_[v];
  LookupStats& st = shard_stats_[ctx.shard()];
  const PeerId self = net().peer_at(v);
  const Round now = net().round();

  switch (m.type) {
    case MsgType::kChordLookup: {
      const ChordId key = m.words[0];
      const std::uint64_t token = m.words[1];
      const bool want_data = m.words[2] != 0;
      const PeerId origin = m.words[3];
      // shardcheck:ok(R6: dead-hop list parsed from one routed lookup message, O(carried dead hops))
      std::vector<PeerId> dead;
      // shardcheck:ok(R6: pre-sizing the same per-message dead-hop scratch)
      dead.reserve(m.words[4]);
      for (std::uint64_t i = 0; i < m.words[4]; ++i) {
        // shardcheck:ok(R6: appending the parsed dead hops, bounded by the message word count)
        dead.push_back(m.words[5 + i]);
      }
      Message reply;
      reply.src = self;
      reply.dst = origin;
      reply.type = MsgType::kChordLookupReply;
      const auto append_entries = [&reply](const Entry& head,
                                           const std::vector<Entry>& rest) {
        std::uint64_t count = 0;
        const std::size_t count_slot = reply.words.size();
        reply.words.push_back(0);
        if (head.peer != kNoPeer) {
          reply.words.push_back(head.peer);
          reply.words.push_back(head.id);
          ++count;
        }
        for (const Entry& e : rest) {
          if (e.peer == kNoPeer) continue;
          reply.words.push_back(e.peer);
          reply.words.push_back(e.id);
          ++count;
        }
        reply.words[count_slot] = count;
      };
      reply.words = {key, token, 0};
      if (!s.joined || s.succ.empty()) {
        // Can't-route nack: the origin re-routes next round instead of
        // burning a full retry timeout on our silence.
        append_entries(Entry{}, {});
      } else if ((want_data && keys_[v].count(key)) ||
                 (s.pred != kNoPeer && in_oc(s.pred_id, key, s.id))) {
        reply.words[2] = 1;  // done: I am the holder
        append_entries(Entry{self, s.id}, s.succ);
      } else if (in_oc(s.id, key, s.succ[0].id)) {
        reply.words[2] = 1;  // done: my successor list covers the key
        append_entries(Entry{}, s.succ);
      } else {
        // Semi-recursive forward: hand the lookup to the next hop (one
        // round per hop) and ack our choice to the origin so its failure
        // detector tracks the live frontier.
        Entry next = closest_preceding(s, key, dead);
        if (next.peer == kNoPeer) {
          for (const Entry& e : s.succ) {
            if (!contains_peer(dead, e.peer)) {
              next = e;
              break;
            }
          }
        }
        if (next.peer == kNoPeer) {
          append_entries(Entry{}, {});  // everything routable is dead: nack
        } else {
          Message fwd;
          fwd.src = self;
          fwd.dst = next.peer;
          fwd.type = MsgType::kChordLookup;
          fwd.words = m.words;  // key/token/want/origin/dead ride along
          fwd.trace_id = m.trace_id;
          ctx.send(v, std::move(fwd));
          ++st.hop_messages;
          if (m.trace_id != 0) {
            // Router-side hop: the trace id rides the message, so forwards
            // made far from the initiator still land in its span.
            ctx.trace(make_trace_event(m.trace_id, net().round(), v,
                                       kHopForward, 0,
                                       want_data ? RequestClass::kChordSearch
                                                 : RequestClass::kChordStore,
                                       TraceEv::kHop));
          }
          append_entries(next, {});
        }
      }
      ctx.send(v, std::move(reply));
      return true;
    }

    case MsgType::kChordLookupReply: {
      const std::uint64_t token = m.words[1];
      auto& list = lookups_[v];
      for (std::size_t i = 0; i < list.size(); ++i) {
        Lookup& lk = list[i];
        if (lk.token != token || lk.fetching || lk.storing) continue;
        const bool done = m.words[2] != 0;
        const std::uint64_t count = m.words[3];
        // shardcheck:ok(R6: entry list parsed from one lookup reply, O(successor-list) entries)
        std::vector<Entry> entries;
        entries.reserve(count);
        for (std::uint64_t e = 0; e < count; ++e) {
          entries.push_back(
              Entry{m.words[4 + 2 * e], m.words[4 + 2 * e + 1]});
        }
        for (const Entry& e : entries) learn_entry(s, e);
        bool finished = false;
        if (done) {
          finished = complete_resolution(v, lk, std::move(entries), now, ctx,
                                         st);
        } else if (!entries.empty() && entries[0].peer != kNoPeer) {
          // Progress ack: the named hop now carries the lookup; watch it.
          lk.hop = entries[0].peer;
          lk.sent = now;
          ++lk.hops;
        } else {
          // Can't-route nack (receiver not joined yet): re-issue from our
          // own tables next round.
          lk.hop = kNoPeer;
          lk.sent = now;
        }
        if (finished) list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      return true;
    }

    case MsgType::kChordStabilize: {
      Message reply;
      reply.src = self;
      reply.dst = m.src;
      reply.type = MsgType::kChordStabilizeReply;
      reply.words = {s.joined && s.pred != kNoPeer ? std::uint64_t{1} : 0,
                     s.pred, s.pred_id,
                     static_cast<std::uint64_t>(s.joined ? s.succ.size() : 0)};
      if (s.joined) {
        for (const Entry& e : s.succ) {
          reply.words.push_back(e.peer);
          reply.words.push_back(e.id);
        }
      }
      ctx.send(v, std::move(reply));
      ++st.maintenance_messages;
      return true;
    }

    case MsgType::kChordStabilizeReply: {
      // The asked peer answered: clear the failure detector even when it is
      // no longer succ[0] (a lookup timeout may have rotated the list), or
      // the next tick would evict the CURRENT successor for its silence.
      if (m.src == s.stab_target) s.stab_sent = kNever;
      if (!s.joined || s.succ.empty() || m.src != s.succ[0].peer) return true;
      s.stab_sent = kNever;
      const bool has_pred = m.words[0] != 0;
      const Entry succ0 = s.succ[0];
      const std::uint64_t count = m.words[3];
      // shardcheck:ok(R6: successor candidates parsed from one stabilize reply, O(successor-list) entries)
      std::vector<Entry> rest;
      rest.reserve(count + 1);
      Entry head = succ0;
      if (has_pred) {
        const Entry p{m.words[1], m.words[2]};
        if (p.peer != kNoPeer && p.peer != self &&
            in_oo(s.id, p.id, succ0.id)) {
          head = p;  // a closer successor surfaced between us and succ[0]
          rest.push_back(succ0);
        }
      }
      for (std::uint64_t e = 0; e < count; ++e) {
        rest.push_back(Entry{m.words[4 + 2 * e], m.words[4 + 2 * e + 1]});
      }
      adopt_successors(s, head, rest, self);
      learn_entry(s, head);
      for (const Entry& e : rest) learn_entry(s, e);
      send_notify(v, s, ctx, st);
      return true;
    }

    case MsgType::kChordNotify: {
      if (!s.joined) return true;
      const Entry p{m.src, m.words[0]};
      learn_entry(s, p);
      if (p.peer == s.pred) s.pred_seen = now;
      if (s.pred == kNoPeer || in_oo(s.pred_id, p.id, s.id)) {
        const bool changed = s.pred != p.peer;
        const bool had_pred = s.pred != kNoPeer;
        const ChordId old_pred_id = s.pred_id;
        s.pred = p.peer;
        s.pred_id = p.id;
        s.pred_seen = now;
        if (changed) {
          // Range handover: ONLY the slice we surrendered — keys in
          // (old_pred, new_pred] — moves to the new predecessor (which
          // re-pushes replicas as its primary). Transferring anything wider
          // (e.g. every key outside our range) makes stale copies creep
          // backwards around the ring forever. We keep our copy: we sit in
          // the key's successor set, and the lease retires it if not.
          // Conversely, keys we just ACQUIRED (our primary died and its
          // predecessor adopted us) are pushed to our replica set NOW — a
          // takeover that waited for the next replicate tick would race the
          // remaining copies' leases.
          for (auto& [item, rep] : keys_[v]) {
            if (had_pred && in_oc(old_pred_id, item, p.id)) {
              send_transfer(v, p.peer, item, rep.bytes, /*primary=*/true, ctx,
                            st);
            } else if (in_oc(p.id, item, s.id) &&
                       (!had_pred || !in_oc(old_pred_id, item, s.id))) {
              rep.refreshed = now;
              for (const Entry& e : s.succ) {
                send_transfer(v, e.peer, item, rep.bytes, /*primary=*/false,
                              ctx, st);
              }
            } else if (!had_pred && !in_oc(p.id, item, s.id)) {
              send_transfer(v, p.peer, item, rep.bytes, /*primary=*/true, ctx,
                            st);
            }
          }
        }
      }
      return true;
    }

    case MsgType::kChordFetch: {
      const ItemId item = m.words[0];
      Message reply;
      reply.src = self;
      reply.dst = m.src;
      reply.type = MsgType::kChordFetchReply;
      const auto it = keys_[v].find(item);
      const bool found = it != keys_[v].end();
      reply.words = {item, m.words[1], found ? std::uint64_t{1} : 0};
      if (found) {
        reply.blob.assign(it->second.bytes.data(),
                          it->second.bytes.data() + it->second.bytes.size());
      }
      ctx.send(v, std::move(reply));
      return true;
    }

    case MsgType::kChordFetchReply: {
      const std::uint64_t token = m.words[1];
      auto& list = lookups_[v];
      for (std::size_t i = 0; i < list.size(); ++i) {
        Lookup& lk = list[i];
        if (lk.token != token || !lk.fetching) continue;
        const bool found = m.words[2] != 0 &&
                           verify_payload(lk.key, m.blob.data(),
                                          m.blob.size());
        bool finished;
        if (found) {
          const auto rit = records_.find(lk.sid);
          if (rit != records_.end() && !rit->second.out.done) {
            rit->second.out.done = rit->second.out.located =
                rit->second.out.fetched = true;
            rit->second.out.located_round = rit->second.out.fetched_round =
                now;
            // shardcheck:ok(R6: retrieved payload copied once per completed search, O(item bytes))
            rit->second.value.assign(m.blob.data(),
                                     m.blob.data() + m.blob.size());
          }
          ++st.searches_ok;
          st.ok_hops_sum += lk.hops;
          st.ok_hops_max = std::max<std::uint64_t>(st.ok_hops_max, lk.hops);
          st.ok_hops.add(static_cast<double>(lk.hops));
          if (lk.trace != 0) {
            ctx.trace(make_trace_event(lk.trace, now, v, now - lk.started,
                                       lk.hops, RequestClass::kChordSearch,
                                       TraceEv::kEndOk));
          }
          finished = true;
        } else {
          // Holder answered but had no (valid) copy: try the next candidate.
          lk.hop = kNoPeer;
          ++lk.fetch_idx;
          finished = advance_fetch(v, lk, now, ctx, st);
        }
        if (finished) list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      return true;
    }

    case MsgType::kChordTransfer: {
      const ItemId item = m.words[0];
      Replica& rep = keys_[v][item];
      // shardcheck:ok(R6: replica payload copied once per transfer message, O(item bytes))
      rep.bytes.assign(m.blob.data(), m.blob.data() + m.blob.size());
      rep.refreshed = now;
      if (m.words[1] != 0 && s.joined &&
          (s.pred == kNoPeer || in_oc(s.pred_id, item, s.id))) {
        // Primary placement: seed the replica set from here — but only if
        // the key actually falls in our range (a mis-targeted "primary"
        // push would otherwise spray copies from every handover).
        for (const Entry& e : s.succ) {
          send_transfer(v, e.peer, item, rep.bytes, /*primary=*/false, ctx,
                        st);
        }
      }
      if (m.words[2] != 0) {
        Message ack;
        ack.src = self;
        ack.dst = m.src;
        ack.type = MsgType::kChordStoreAck;
        ack.words = {item, m.words[2]};
        ctx.send(v, std::move(ack));
      }
      return true;
    }

    case MsgType::kChordStoreAck: {
      const std::uint64_t token = m.words[1];
      auto& list = lookups_[v];
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i].token != token || !list[i].storing) continue;
        ++st.stores_ok;
        if (list[i].trace != 0) {
          ctx.trace(make_trace_event(list[i].trace, now, v,
                                     now - list[i].started, list[i].hops,
                                     RequestClass::kChordStore,
                                     TraceEv::kEndOk));
        }
        list.erase(list.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      return true;
    }

    default:
      return false;
  }
}

}  // namespace churnstore
