// Baseline: message-accurate Chord DHT on the shared Network engine.
//
// Unlike the ChordSim ring simulator (baseline/chord.h, kept as chord=ring),
// every protocol action here is a typed Message charged through the normal
// outbox lanes, so the golden bit-charge accounting and the per-node traffic
// columns apply to Chord exactly as they do to the paper stack:
//
//   * identifier ring — each peer's position is a 64-bit hash of its PeerId;
//     vertex slots are Chord nodes, and a churned-in peer must re-JOIN
//     (bootstrap via a live graph neighbor, then find_successor of its own
//     id) before it participates;
//   * successor lists + finger tables — per-vertex routing state, repaired
//     by staggered periodic stabilize/notify and one fix_fingers lookup per
//     maintenance tick (net/periodic.h schedules the stagger);
//   * iterative find_successor — the initiator drives the lookup hop by hop
//     (kChordLookup/kChordLookupReply), so every handler touches only the
//     receiving vertex's state, which is what makes the whole protocol
//     shard-safe under the ShardContext contract;
//   * data — items live at the first r successors of their id; the primary
//     pushes replicas (kChordTransfer), fetches carry the real payload
//     bytes (kChordFetch/kChordFetchReply) and are hash-verified end to
//     end, and ranges hand over on predecessor changes.
//
// Sharded execution: sharded_round()/sharded_dispatch() both true. Round
// work (joins, stabilize ticks, replica pushes, lookup retries) runs per
// vertex in ascending order inside each shard; message handlers mutate only
// the destination vertex's state; global counters are staged per shard and
// summed in the merge hooks — so results are bit-identical for every
// shards= value, serial or pooled (tests/chord_net_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/protocol.h"
#include "core/service.h"
#include "net/network.h"
#include "stats/histogram.h"
#include "net/periodic.h"

namespace churnstore {

class ChordNetProtocol final : public Protocol, public StorageService {
 public:
  using ChordId = std::uint64_t;

  struct Options {
    /// Successor-list length r; doubles as the replica set size.
    std::uint32_t successors = 8;
    /// Rounds between stabilize/fix-fingers ticks per vertex (staggered).
    std::uint32_t stabilize_period = 2;
    /// Rounds between replica pushes per primary holder (staggered).
    std::uint32_t replicate_period = 8;
    /// Rounds without a reply before a lookup hop is presumed dead.
    std::uint32_t lookup_retry = 3;
    /// Search deadline = timeout_mult * (ceil(log2 n) + 8) rounds
    /// (semi-recursive hops cost one round each).
    std::uint32_t timeout_mult = 3;
    std::uint64_t item_bits = 1024;
  };

  /// Aggregated protocol statistics (order-independent sums/maxima, so the
  /// per-shard staging merge is trivially shard-count invariant).
  struct LookupStats {
    std::uint64_t searches_ok = 0;      ///< fetch-verified successes
    std::uint64_t searches_failed = 0;  ///< deadline / candidates exhausted
    std::uint64_t stores_ok = 0;        ///< ack-confirmed placements
    std::uint64_t stores_failed = 0;    ///< store deadline expired unacked
    std::uint64_t hop_messages = 0;     ///< kChordLookup messages sent
    std::uint64_t ok_hops_sum = 0;      ///< hops summed over successes
    std::uint64_t ok_hops_max = 0;
    std::uint64_t maintenance_messages = 0;  ///< stabilize/notify/replies
    std::uint64_t transfers = 0;             ///< replica pushes + handovers
    std::uint64_t joins_completed = 0;
    /// Full hop-count distribution over successful searches (unit bins over
    /// [0, 256)); sum/max above stay for the legacy columns, this feeds the
    /// E14 p50/p95/p99 hop columns and the obs exports.
    Histogram ok_hops{0.0, 256.0, 256};

    [[nodiscard]] double mean_hops() const noexcept {
      return searches_ok ? static_cast<double>(ok_hops_sum) /
                               static_cast<double>(searches_ok)
                         : 0.0;
    }
    [[nodiscard]] double success_rate() const noexcept {
      const std::uint64_t done = searches_ok + searches_failed;
      return done ? static_cast<double>(searches_ok) /
                        static_cast<double>(done)
                  : 0.0;
    }
    void accumulate(const LookupStats& o) noexcept;
    /// Zero every counter and histogram count in place (no reallocation —
    /// the per-round shard-stats reset runs on the round path).
    void reset() noexcept;
  };

  ChordNetProtocol() : ChordNetProtocol(Options{}) {}
  explicit ChordNetProtocol(Options options);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "chord-net";
  }
  void on_attach(Network& net) override;
  [[nodiscard]] bool sharded_round() const noexcept override { return true; }
  void on_round_begin(std::uint32_t shard, ShardContext& ctx) override;
  void on_round_merge() override;
  [[nodiscard]] bool sharded_dispatch() const noexcept override { return true; }
  bool on_message(Vertex v, const Message& m, ShardContext& ctx) override;
  void on_dispatch_merge() override;
  void on_churn(Vertex v, PeerId old_peer, PeerId new_peer) override;

  /// --- direct API (kv workload, tests) ------------------------------------
  /// Store `payload` under `item` from the peer at `creator`: routes a
  /// find_successor lookup for the item id, then transfers the payload to
  /// the r successors. False when the item id is already stored.
  bool put(Vertex creator, ItemId item, std::vector<std::uint8_t> payload);

  /// Begin a lookup+fetch for `item`; returns a search handle. The fetch
  /// succeeds only when the returned bytes hash-match the stored payload.
  [[nodiscard]] std::uint64_t get(Vertex initiator, ItemId item);

  struct SearchRec {
    WorkloadOutcome out;
    ItemId item = 0;
    std::vector<std::uint8_t> value;  ///< verified payload on success
  };
  [[nodiscard]] const SearchRec* record(std::uint64_t sid) const;

  /// --- StorageService -----------------------------------------------------
  bool try_store(Vertex creator, ItemId item) override;
  [[nodiscard]] std::uint64_t begin_search(Vertex initiator,
                                           ItemId item) override;
  [[nodiscard]] WorkloadOutcome search_outcome(
      std::uint64_t sid) const override;
  [[nodiscard]] std::uint32_t search_timeout() const override {
    return deadline_rounds_ + 4;
  }
  [[nodiscard]] std::size_t copies_alive(ItemId item) const override;

  /// --- god-view instrumentation (serial context only) ---------------------
  [[nodiscard]] const LookupStats& stats() const noexcept { return totals_; }
  /// Fraction of joined vertices whose succ[0] is the true live successor
  /// (over the ring of joined vertices). 1.0 on a converged ring.
  [[nodiscard]] double ring_consistency() const;
  [[nodiscard]] std::size_t joined_count() const;
  [[nodiscard]] ChordId node_id(Vertex v) const { return nodes_[v].id; }
  [[nodiscard]] bool is_joined(Vertex v) const { return nodes_[v].joined; }
  [[nodiscard]] std::vector<PeerId> successor_list(Vertex v) const;
  [[nodiscard]] bool holds(Vertex v, ItemId item) const {
    return keys_[v].count(item) > 0;
  }

 private:
  struct Entry {
    PeerId peer = kNoPeer;
    ChordId id = 0;
  };

  struct NodeState {
    ChordId id = 0;
    PeerId pred = kNoPeer;
    ChordId pred_id = 0;
    Round pred_seen = -1;  ///< round of the last notify from pred
    std::vector<Entry> succ;    ///< ordered successor list (<= r entries)
    std::vector<Entry> finger;  ///< finger k covers distance 2^(63-k)
    std::uint32_t next_finger = 0;
    bool joined = false;
    Round stab_sent = -1;  ///< round of the outstanding stabilize, -1 none
    PeerId stab_target = kNoPeer;  ///< who that stabilize was sent to
    std::uint32_t next_token = 1;
  };

  struct Lookup {
    enum class Kind : std::uint8_t { kJoin, kFinger, kStore, kSearch };
    std::uint32_t token = 0;
    Kind kind = Kind::kSearch;
    ChordId key = 0;  ///< ring target; equals the ItemId for store/search
    std::uint64_t sid = 0;
    std::uint8_t finger_idx = 0;
    PeerId hop = kNoPeer;  ///< outstanding hop/fetch target; kNoPeer = unsent
    Round sent = 0;
    std::uint32_t hops = 0;
    Round deadline = 0;
    bool fetching = false;
    bool storing = false;  ///< transfers sent, awaiting a kChordStoreAck
    std::uint32_t fetch_idx = 0;
    std::uint64_t trace = 0;  ///< sampled trace id (0 = untraced)
    Round started = 0;        ///< round the request was issued (traced only)
    std::vector<Entry> candidates;       ///< holder + successors, once found
    std::vector<PeerId> dead;            ///< timed-out peers, never re-tried
    std::vector<std::uint8_t> payload;   ///< kStore: bytes to place
  };

  struct ItemInfo {
    std::uint64_t hash = 0;
    std::uint64_t bytes = 0;
  };

  [[nodiscard]] static ChordId chord_id(PeerId p) noexcept;
  /// x in (a, b] on the ring; (a, a] is the full ring.
  [[nodiscard]] static bool in_oc(ChordId a, ChordId x, ChordId b) noexcept;
  /// x in (a, b) on the ring; (a, a) is the full ring minus a.
  [[nodiscard]] static bool in_oo(ChordId a, ChordId x, ChordId b) noexcept;
  [[nodiscard]] ChordId finger_target(ChordId id, std::uint32_t k) const noexcept;

  void init_ring();
  [[nodiscard]] static bool contains_peer(const std::vector<PeerId>& list,
                                          PeerId p) noexcept;
  [[nodiscard]] Entry closest_preceding(const NodeState& s, ChordId key,
                                        const std::vector<PeerId>& dead) const;
  void adopt_successors(NodeState& s, const Entry& head,
                        const std::vector<Entry>& rest, PeerId self);
  /// Passive finger maintenance: any live (peer, id) carried by protocol
  /// traffic (stabilize replies, lookup acks/candidates, notifies) may
  /// improve a finger slot — at zero extra messages. Under heavy churn this
  /// is what keeps routing tables fresher than the one-lookup-per-tick
  /// fix_fingers cycle alone can.
  void learn_entry(NodeState& s, const Entry& e);
  /// Drop every routing-table reference to a peer we just presumed dead.
  void forget_peer(NodeState& s, PeerId p);

  void maintain_join(Vertex v, NodeState& s, Round now);
  void tick_stabilize(Vertex v, NodeState& s, Round now, ShardContext& ctx,
                      LookupStats& st);
  void tick_replicate(Vertex v, NodeState& s, Round now, ShardContext& ctx,
                      LookupStats& st);
  void advance_lookups(Vertex v, Round now, ShardContext& ctx,
                       LookupStats& st);
  [[nodiscard]] Message make_lookup(PeerId src, PeerId dst,
                                    const Lookup& lk) const;
  /// True when the lookup is finished and should be erased.
  bool issue_hop(Vertex v, Lookup& lk, Round now, ShardContext& ctx,
                 LookupStats& st);
  bool complete_resolution(Vertex v, Lookup& lk, std::vector<Entry> candidates,
                           Round now, ShardContext& ctx, LookupStats& st);
  bool advance_fetch(Vertex v, Lookup& lk, Round now, ShardContext& ctx,
                     LookupStats& st);
  void finish_search_failure(Vertex v, const Lookup& lk, Round now,
                             ShardContext& ctx, LookupStats& st);
  [[nodiscard]] bool verify_payload(ItemId item,
                                    const std::uint8_t* data,
                                    std::size_t len) const;
  void send_notify(Vertex v, const NodeState& s, ShardContext& ctx,
                   LookupStats& st);
  /// ack_token != 0 asks the receiver to confirm the placement back to us.
  void send_transfer(Vertex v, PeerId to, ItemId item,
                     const std::vector<std::uint8_t>& bytes, bool primary,
                     ShardContext& ctx, LookupStats& st,
                     std::uint64_t ack_token = 0);

  /// A stored copy with its lease: the primary re-pushes every replicate
  /// tick, refreshing the lease; a copy whose lease expires (its holder
  /// left the key's successor set, or the primary died) is dropped at the
  /// next tick — this is what keeps the replica set near r instead of
  /// creeping toward flooding as handovers spread copies.
  struct Replica {
    std::vector<std::uint8_t> bytes;
    Round refreshed = 0;
  };

  Options options_;
  PeriodicSchedule stabilize_;
  PeriodicSchedule replicate_;
  std::uint32_t finger_count_ = 0;
  std::uint32_t deadline_rounds_ = 0;
  std::uint64_t seed_ = 0;

  // shardcheck:cold-state(sized to n at attach in serial context; handlers mutate each vertex's NodeState in place)
  std::vector<NodeState> nodes_;
  /// Per-vertex replica store; std::map so handover/replication iterate keys
  /// in a canonical (ascending) order for every shard count.
  // shardcheck:arena-backed(replica maps grow on transfer/replication messages — O(items x r) global-heap nodes; the chord baseline control plane makes no heap-quiet claim)
  std::vector<std::map<ItemId, Replica>> keys_;
  // shardcheck:arena-backed(per-vertex active-lookup lists grow on lookup starts: O(active lookups), no heap-quiet claim)
  std::vector<std::vector<Lookup>> lookups_;

  /// Stored-item registry (hash for end-to-end verification). Written from
  /// serial context only; dispatch handlers only find().
  // shardcheck:cold-state(written from serial context only; dispatch handlers only find())
  std::unordered_map<ItemId, ItemInfo> items_;
  // shardcheck:cold-state(search registry grown only from the serial search()/store() API paths)
  std::unordered_map<std::uint64_t, SearchRec> records_;
  std::uint64_t next_sid_ = 1;

  /// Per-shard staged counters, summed into totals_ in the merge hooks.
  // shardcheck:cold-state(sized to the shard count at attach; hooks bump counters in place)
  std::vector<LookupStats> shard_stats_;
  LookupStats totals_;
};

}  // namespace churnstore
