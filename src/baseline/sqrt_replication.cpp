#include "baseline/sqrt_replication.h"

#include <algorithm>
#include <cmath>

namespace churnstore {

namespace {
// kProbe:    [0] item [1] sid
// kProbeHit: [0] item [1] sid
}  // namespace

SqrtReplication::SqrtReplication(TokenSoup& soup, Options options)
    : soup_(soup), options_(options) {}

SqrtReplication::SqrtReplication(Network& net_ref, TokenSoup& soup,
                                 Options options)
    : SqrtReplication(soup, options) {
  on_attach(net_ref);
}

void SqrtReplication::on_attach(Network& net_ref) {
  Protocol::on_attach(net_ref);
  held_.assign(net().n(), {});
  default_timeout_ = options_.default_timeout != 0 ? options_.default_timeout
                                                   : 4 * soup_.tau();
}

void SqrtReplication::on_churn(Vertex v, PeerId, PeerId) { held_[v].clear(); }

bool SqrtReplication::try_store(Vertex creator, ItemId item) {
  return store(creator, item) > 0;
}

std::uint64_t SqrtReplication::begin_search(Vertex initiator, ItemId item) {
  return search(initiator, item, default_timeout_);
}

WorkloadOutcome SqrtReplication::search_outcome(std::uint64_t sid) const {
  const SearchOutcome native = outcome(sid);
  WorkloadOutcome out;
  out.done = native.done;
  out.censored = native.censored;
  out.located = out.fetched = native.success;
  if (native.success) {
    const auto it = start_round_.find(sid);
    const Round start = it == start_round_.end() ? 0 : it->second;
    out.located_round = out.fetched_round = start + native.rounds_taken;
  }
  return out;
}

std::size_t SqrtReplication::store(Vertex creator, ItemId item) {
  const double n = static_cast<double>(net().n());
  const auto want = static_cast<std::size_t>(
      std::ceil(options_.replication_mult * std::sqrt(n * std::log(n))));
  const auto targets = soup_.samples(creator).recent_distinct(want);
  if (targets.size() < want / 2 || targets.empty()) return 0;
  const PeerId self = net().peer_at(creator);
  for (const PeerId t : targets) {
    Message msg;
    msg.src = self;
    msg.dst = t;
    msg.type = MsgType::kFloodData;  // reuse: "store this replica"
    msg.words = {item};
    msg.payload_bits = options_.item_bits;
    net().send(creator, std::move(msg));
  }
  placed_[item] = targets;
  return targets.size();
}

std::uint64_t SqrtReplication::search(Vertex initiator, ItemId item,
                                      std::uint32_t timeout) {
  const std::uint64_t sid = mix64(next_sid_++ ^ 0x73717274ULL) | 1;
  active_.push_back(ActiveSearch{sid, item, net().peer_at(initiator),
                                 net().round(),
                                 net().round() + static_cast<Round>(timeout)});
  outcomes_[sid] = SearchOutcome{};
  start_round_[sid] = net().round();
  return sid;
}

SqrtReplication::SearchOutcome SqrtReplication::outcome(
    std::uint64_t sid) const {
  const auto it = outcomes_.find(sid);
  return it == outcomes_.end() ? SearchOutcome{} : it->second;
}

std::size_t SqrtReplication::holders_alive(ItemId item) const {
  const auto it = placed_.find(item);
  if (it == placed_.end()) return 0;
  std::size_t alive = 0;
  for (const PeerId p : it->second) {
    const auto v = net().find_vertex(p);
    if (v && held_[*v].count(item)) ++alive;
  }
  return alive;
}

void SqrtReplication::on_round_begin() {
  const Round now = net().round();
  probe_jobs_.clear();
  std::size_t write = 0;
  for (std::size_t read = 0; read < active_.size(); ++read) {
    ActiveSearch& s = active_[read];
    SearchOutcome& out = outcomes_[s.sid];
    if (out.done) continue;
    const auto iv_slot = net().find_vertex(s.initiator);
    if (!iv_slot) {
      out.done = true;
      out.censored = true;
      continue;
    }
    const Vertex iv = *iv_slot;
    if (now > s.deadline) {
      out.done = true;
      continue;
    }
    probe_jobs_.push_back(ProbeJob{iv, s.item, s.sid});
    active_[write++] = s;
  }
  active_.resize(write);
  // Canonical emission order: ascending initiator vertex (stable for
  // same-vertex searches). Each shard then owns a contiguous run, and the
  // merged probe stream is identical for every shard count.
  std::stable_sort(probe_jobs_.begin(), probe_jobs_.end(),
                   [](const ProbeJob& a, const ProbeJob& b) {
                     return a.initiator < b.initiator;
                   });
}

void SqrtReplication::on_round_begin(std::uint32_t shard, ShardContext& ctx) {
  // Probe the sources of walks that completed at the initiator last round
  // (the birthday-paradox sampling step); each initiator's probes go out
  // from its own shard.
  const Round now = net().round();
  const ShardPlan& plan = net().shards();
  for (const ProbeJob& job : probe_jobs_) {
    if (plan.shard_of(job.initiator) != shard) continue;
    const auto& sources = soup_.samples(job.initiator).at(now - 1);
    const std::size_t cap =
        options_.probes_per_round == 0
            ? sources.size()
            : std::min<std::size_t>(options_.probes_per_round, sources.size());
    const PeerId self = net().peer_at(job.initiator);
    for (std::size_t i = 0; i < cap; ++i) {
      Message msg;
      msg.src = self;
      msg.dst = sources[i];
      msg.type = MsgType::kProbe;
      msg.words = {job.item, job.sid};
      ctx.send(job.initiator, std::move(msg));
    }
  }
}

bool SqrtReplication::on_message(Vertex v, const Message& m,
                                 ShardContext& ctx) {
  switch (m.type) {
    case MsgType::kFloodData: {
      held_[v].insert(m.words[0]);
      return true;
    }
    case MsgType::kProbe: {
      if (held_[v].count(m.words[0])) {
        Message hit;
        hit.src = net().peer_at(v);
        hit.dst = m.src;
        hit.type = MsgType::kProbeHit;
        hit.words = m.words;
        ctx.send(v, std::move(hit));
      }
      return true;
    }
    case MsgType::kProbeHit: {
      // Only the search initiator's vertex receives hits for its sid, so
      // the outcome record is exclusively this shard's to mutate.
      const auto it = outcomes_.find(m.words[1]);
      if (it == outcomes_.end()) return true;
      SearchOutcome& out = it->second;
      if (!out.done) {
        out.done = true;
        out.success = true;
        const auto sit = start_round_.find(m.words[1]);
        out.rounds_taken =
            net().round() - (sit == start_round_.end() ? 0 : sit->second);
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace churnstore
