// Baseline: birthday-paradox sqrt(n) replication (the "well known solution"
// paper section 4 discusses and rejects). The creator places the item at
// ~c * sqrt(n log n) random nodes (chosen through walk samples); a searcher
// probes its own fresh walk samples each round and succeeds when a probe
// lands on a holder. There is NO maintenance: churn steadily erodes the
// holder set, so availability decays — the pitfall the committee-based
// protocol fixes.
//
// Runs as a Protocol module on the shared driver; register after the
// TokenSoup it samples placement targets and probes from.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/protocol.h"
#include "core/service.h"
#include "net/network.h"
#include "walk/token_soup.h"

namespace churnstore {

class SqrtReplication final : public Protocol, public StorageService {
 public:
  struct Options {
    double replication_mult = 1.0;  ///< copies = mult * sqrt(n * ln n)
    std::uint64_t item_bits = 1024;
    std::uint32_t probes_per_round = 0;  ///< 0 = all fresh samples
    /// Default deadline for StorageService searches (0 = 4 * tau).
    std::uint32_t default_timeout = 0;
  };

  SqrtReplication(TokenSoup& soup, Options options);
  /// Construct and attach in one step (standalone tests/benches).
  SqrtReplication(Network& net, TokenSoup& soup, Options options);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "sqrt-replication";
  }
  void on_attach(Network& net) override;
  /// Sharded round: the serial prologue handles per-search bookkeeping
  /// (censoring, deadlines, compaction) and stages one probe job per live
  /// search; the sharded phase sends each job's probes from the initiator
  /// vertex's own shard through ctx.
  [[nodiscard]] bool sharded_round() const noexcept override { return true; }
  void on_round_begin() override;
  void on_round_begin(std::uint32_t shard, ShardContext& ctx) override;
  [[nodiscard]] bool sharded_dispatch() const noexcept override { return true; }
  bool on_message(Vertex v, const Message& m, ShardContext& ctx) override;
  void on_churn(Vertex v, PeerId old_peer, PeerId new_peer) override;

  /// Place replicas from the creator's samples. Returns the number placed
  /// (0 while the creator's buffer is cold: retry next round).
  std::size_t store(Vertex creator, ItemId item);

  /// Begin a search; returns a search id.
  std::uint64_t search(Vertex initiator, ItemId item, std::uint32_t timeout);

  struct SearchOutcome {
    bool done = false;
    bool success = false;
    Round rounds_taken = -1;
    bool censored = false;  ///< initiator churned out
  };
  [[nodiscard]] SearchOutcome outcome(std::uint64_t sid) const;

  /// Live holders of the item (god view, for the decay measurement).
  [[nodiscard]] std::size_t holders_alive(ItemId item) const;

  /// --- StorageService -----------------------------------------------------
  bool try_store(Vertex creator, ItemId item) override;
  [[nodiscard]] std::uint64_t begin_search(Vertex initiator,
                                           ItemId item) override;
  [[nodiscard]] WorkloadOutcome search_outcome(
      std::uint64_t sid) const override;
  [[nodiscard]] std::uint32_t search_timeout() const override {
    return default_timeout_ + 2;
  }
  [[nodiscard]] std::size_t copies_alive(ItemId item) const override {
    return holders_alive(item);
  }

 private:
  struct ActiveSearch {
    std::uint64_t sid;
    ItemId item;
    PeerId initiator;
    Round start;
    Round deadline;
  };

  TokenSoup& soup_;
  Options options_;
  std::uint32_t default_timeout_ = 0;
  std::uint64_t next_sid_ = 1;
  // shardcheck:arena-backed(per-vertex replica sets grow on placement messages; baseline control plane, no heap-quiet claim)
  std::vector<std::unordered_set<ItemId>> held_;
  // shardcheck:cold-state(god-view placement map mutated only from the serial store path)
  std::unordered_map<ItemId, std::vector<PeerId>> placed_;  ///< god view
  // shardcheck:cold-state(active-search list maintained in serial prologue/epilogue context)
  std::vector<ActiveSearch> active_;
  // shardcheck:cold-state(outcome registry mutated in serial search/merge context)
  std::unordered_map<std::uint64_t, SearchOutcome> outcomes_;
  // shardcheck:cold-state(mutated only from the serial search() API path)
  std::unordered_map<std::uint64_t, Round> start_round_;
  /// Probe jobs for this round, staged by the prologue; read-only in the
  /// sharded phase (each shard sends the jobs owned by its vertices).
  struct ProbeJob {
    Vertex initiator;
    ItemId item;
    std::uint64_t sid;
  };
  // shardcheck:cold-state(rebuilt by the serial prologue each round; read-only in the sharded phase)
  std::vector<ProbeJob> probe_jobs_;
};

}  // namespace churnstore
