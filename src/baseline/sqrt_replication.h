// Baseline: birthday-paradox sqrt(n) replication (the "well known solution"
// paper section 4 discusses and rejects). The creator places the item at
// ~c * sqrt(n log n) random nodes (chosen through walk samples); a searcher
// probes its own fresh walk samples each round and succeeds when a probe
// lands on a holder. There is NO maintenance: churn steadily erodes the
// holder set, so availability decays — the pitfall the committee-based
// protocol fixes.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/network.h"
#include "walk/token_soup.h"

namespace churnstore {

class SqrtReplication {
 public:
  struct Options {
    double replication_mult = 1.0;  ///< copies = mult * sqrt(n * ln n)
    std::uint64_t item_bits = 1024;
    std::uint32_t probes_per_round = 0;  ///< 0 = all fresh samples
  };

  SqrtReplication(Network& net, TokenSoup& soup, Options options);

  /// Place replicas from the creator's samples. Returns the number placed
  /// (0 while the creator's buffer is cold: retry next round).
  std::size_t store(Vertex creator, ItemId item);

  /// Begin a search; returns a search id.
  std::uint64_t search(Vertex initiator, ItemId item, std::uint32_t timeout);

  void on_round();
  bool handle(Vertex v, const Message& m);

  struct SearchOutcome {
    bool done = false;
    bool success = false;
    Round rounds_taken = -1;
    bool censored = false;  ///< initiator churned out
  };
  [[nodiscard]] SearchOutcome outcome(std::uint64_t sid) const;

  /// Live holders of the item (god view, for the decay measurement).
  [[nodiscard]] std::size_t holders_alive(ItemId item) const;

 private:
  struct ActiveSearch {
    std::uint64_t sid;
    ItemId item;
    PeerId initiator;
    Round start;
    Round deadline;
  };

  void on_churn(Vertex v);

  Network& net_;
  TokenSoup& soup_;
  Options options_;
  std::uint64_t next_sid_ = 1;
  std::vector<std::unordered_set<ItemId>> held_;
  std::unordered_map<ItemId, std::vector<PeerId>> placed_;  ///< god view
  std::vector<ActiveSearch> active_;
  std::unordered_map<std::uint64_t, SearchOutcome> outcomes_;
  std::unordered_map<std::uint64_t, Round> start_round_;
};

}  // namespace churnstore
