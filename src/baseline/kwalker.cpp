#include "baseline/kwalker.h"

#include <algorithm>
#include <cmath>

namespace churnstore {

KWalkerSearch::KWalkerSearch(TokenSoup& soup, Options options)
    : soup_(soup), options_(options) {}

KWalkerSearch::KWalkerSearch(Network& net_ref, TokenSoup& soup, Options options)
    : KWalkerSearch(soup, options) {
  on_attach(net_ref);
}

void KWalkerSearch::on_attach(Network& net_ref) {
  Protocol::on_attach(net_ref);
  rng_ = net().protocol_rng().fork(0x6b77616cULL);
  held_.assign(net().n(), {});
  default_ttl_ =
      options_.default_ttl != 0 ? options_.default_ttl : 4 * soup_.tau();
}

void KWalkerSearch::on_churn(Vertex v, PeerId, PeerId) {
  held_[v].clear();
  // Walkers currently sitting at v die with the peer that was carrying them.
  for (auto& w : walkers_) {
    if (w.at == v && w.ttl > 0) {
      w.ttl = 0;
      ++outcomes_[w.sid].walkers_lost;
    }
  }
}

std::size_t KWalkerSearch::store(Vertex creator, ItemId item) {
  const auto want =
      options_.replication != 0
          ? options_.replication
          : static_cast<std::uint32_t>(
                std::ceil(std::sqrt(static_cast<double>(net().n()))));
  const auto targets = soup_.samples(creator).recent_distinct(want);
  if (targets.size() < std::max<std::size_t>(1, want / 2)) return 0;
  const PeerId self = net().peer_at(creator);
  for (const PeerId t : targets) {
    Message msg;
    msg.src = self;
    msg.dst = t;
    msg.type = MsgType::kFloodData;
    msg.words = {item};
    msg.payload_bits = options_.item_bits;
    net().send(creator, std::move(msg));
    // Place synchronously for the god view (the message also charges cost).
    if (const auto tv = net().find_vertex(t)) held_[*tv].insert(item);
  }
  placed_[item] = targets;
  return targets.size();
}

std::uint64_t KWalkerSearch::search(Vertex initiator, ItemId item,
                                    std::uint32_t ttl) {
  const std::uint64_t sid = mix64(next_sid_++ ^ 0x6b77ULL) | 1;
  outcomes_[sid] = SearchOutcome{};
  start_round_[sid] = net().round();
  for (std::uint32_t i = 0; i < options_.walkers; ++i) {
    walkers_.push_back(Walker{sid, item, initiator, ttl});
  }
  return sid;
}

KWalkerSearch::SearchOutcome KWalkerSearch::outcome(std::uint64_t sid) const {
  const auto it = outcomes_.find(sid);
  return it == outcomes_.end() ? SearchOutcome{} : it->second;
}

std::size_t KWalkerSearch::holders_alive(ItemId item) const {
  const auto it = placed_.find(item);
  if (it == placed_.end()) return 0;
  std::size_t alive = 0;
  for (const PeerId p : it->second) {
    const auto v = net().find_vertex(p);
    if (v && held_[*v].count(item)) ++alive;
  }
  return alive;
}

bool KWalkerSearch::try_store(Vertex creator, ItemId item) {
  return store(creator, item) > 0;
}

std::uint64_t KWalkerSearch::begin_search(Vertex initiator, ItemId item) {
  return search(initiator, item, default_ttl_);
}

WorkloadOutcome KWalkerSearch::search_outcome(std::uint64_t sid) const {
  const SearchOutcome native = outcome(sid);
  WorkloadOutcome out;
  out.done = native.done;
  out.located = out.fetched = native.success;
  if (native.success) {
    const auto it = start_round_.find(sid);
    const Round start = it == start_round_.end() ? 0 : it->second;
    out.located_round = out.fetched_round = start + native.rounds_taken;
  }
  return out;
}

void KWalkerSearch::on_round_begin() {
  const RegularGraph& g = net().graph();
  const std::uint32_t d = g.degree();
  std::size_t write = 0;
  for (std::size_t read = 0; read < walkers_.size(); ++read) {
    Walker w = walkers_[read];
    if (w.ttl == 0) continue;
    SearchOutcome& out = outcomes_[w.sid];
    if (out.done) continue;
    w.at = g.neighbor(w.at, static_cast<std::uint32_t>(rng_.next_below(d)));
    --w.ttl;
    net().charge_processing(w.at, 64 + 64 + 16);  // item id + sid + ttl
    if (held_[w.at].count(w.item)) {
      out.done = true;
      out.success = true;
      out.rounds_taken = net().round() - start_round_[w.sid];
      continue;
    }
    if (w.ttl > 0) walkers_[write++] = w;
  }
  walkers_.resize(write);
}

}  // namespace churnstore
