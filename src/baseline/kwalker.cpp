#include "baseline/kwalker.h"

#include <algorithm>
#include <cmath>

namespace churnstore {

KWalkerSearch::KWalkerSearch(TokenSoup& soup, Options options)
    : soup_(soup), options_(options) {}

KWalkerSearch::KWalkerSearch(Network& net_ref, TokenSoup& soup, Options options)
    : KWalkerSearch(soup, options) {
  on_attach(net_ref);
}

void KWalkerSearch::on_attach(Network& net_ref) {
  Protocol::on_attach(net_ref);
  stream_salt_ = net().protocol_rng().fork(0x6b77616cULL).next();
  held_.assign(net().n(), {});
  stage_.assign(net().shards().count(), {});
  default_ttl_ =
      options_.default_ttl != 0 ? options_.default_ttl : 4 * soup_.tau();
}

void KWalkerSearch::on_churn(Vertex v, PeerId, PeerId) {
  held_[v].clear();
  // Walkers currently sitting at v die with the peer that was carrying them.
  for (auto& w : walkers_) {
    if (w.at == v && w.ttl > 0) {
      w.ttl = 0;
      ++outcomes_[w.sid].walkers_lost;
    }
  }
}

std::size_t KWalkerSearch::store(Vertex creator, ItemId item) {
  const auto want =
      options_.replication != 0
          ? options_.replication
          : static_cast<std::uint32_t>(
                std::ceil(std::sqrt(static_cast<double>(net().n()))));
  const auto targets = soup_.samples(creator).recent_distinct(want);
  if (targets.size() < std::max<std::size_t>(1, want / 2)) return 0;
  const PeerId self = net().peer_at(creator);
  for (const PeerId t : targets) {
    Message msg;
    msg.src = self;
    msg.dst = t;
    msg.type = MsgType::kFloodData;
    msg.words = {item};
    msg.payload_bits = options_.item_bits;
    net().send(creator, std::move(msg));
    // Place synchronously for the god view (the message also charges cost).
    if (const auto tv = net().find_vertex(t)) held_[*tv].insert(item);
  }
  placed_[item] = targets;
  return targets.size();
}

std::uint64_t KWalkerSearch::search(Vertex initiator, ItemId item,
                                    std::uint32_t ttl) {
  const std::uint64_t sid = mix64(next_sid_++ ^ 0x6b77ULL) | 1;
  outcomes_[sid] = SearchOutcome{};
  start_round_[sid] = net().round();
  for (std::uint32_t i = 0; i < options_.walkers; ++i) {
    walkers_.push_back(Walker{sid, item, initiator, ttl});
  }
  if (TraceCollector* tc = net().trace_collector();
      tc != nullptr && tc->sampled(sid)) {
    traced_.push_back(TracedProbe{sid, initiator});
    tc->record(make_trace_event(sid, net().round(), initiator, 0,
                                options_.walkers, RequestClass::kWalkerProbe,
                                TraceEv::kBegin));
  }
  return sid;
}

KWalkerSearch::SearchOutcome KWalkerSearch::outcome(std::uint64_t sid) const {
  const auto it = outcomes_.find(sid);
  return it == outcomes_.end() ? SearchOutcome{} : it->second;
}

std::size_t KWalkerSearch::holders_alive(ItemId item) const {
  const auto it = placed_.find(item);
  if (it == placed_.end()) return 0;
  std::size_t alive = 0;
  for (const PeerId p : it->second) {
    const auto v = net().find_vertex(p);
    if (v && held_[*v].count(item)) ++alive;
  }
  return alive;
}

bool KWalkerSearch::try_store(Vertex creator, ItemId item) {
  return store(creator, item) > 0;
}

std::uint64_t KWalkerSearch::begin_search(Vertex initiator, ItemId item) {
  return search(initiator, item, default_ttl_);
}

WorkloadOutcome KWalkerSearch::search_outcome(std::uint64_t sid) const {
  const SearchOutcome native = outcome(sid);
  WorkloadOutcome out;
  out.done = native.done;
  out.located = out.fetched = native.success;
  if (native.success) {
    const auto it = start_round_.find(sid);
    const Round start = it == start_round_.end() ? 0 : it->second;
    out.located_round = out.fetched_round = start + native.rounds_taken;
  }
  return out;
}

void KWalkerSearch::on_round_begin() {
  // Partition the walker index range across the engine's shard count; the
  // walkers themselves are processed in the sharded hook.
  walker_plan_ = ShardPlan(static_cast<std::uint32_t>(walkers_.size()),
                           net().shards().count());
}

void KWalkerSearch::on_round_begin(std::uint32_t shard, ShardContext& ctx) {
  if (walkers_.empty() || shard >= walker_plan_.count()) return;
  const RegularGraph& g = net().graph();
  const std::uint32_t d = g.degree();
  const std::uint64_t round_key =
      mix64(stream_salt_ ^ static_cast<std::uint64_t>(net().round()));
  ShardStage& stage = stage_[shard];
  for (std::uint32_t i = walker_plan_.begin(shard);
       i < walker_plan_.end(shard); ++i) {
    Walker w = walkers_[i];
    if (w.ttl == 0) continue;
    const auto out_it = outcomes_.find(w.sid);
    if (out_it != outcomes_.end() && out_it->second.done) continue;
    // Per-(round, walker) stream: trajectories are independent of the
    // shard partition and of sibling walkers' draws.
    Rng rng = stream_rng(round_key, i);
    w.at = g.neighbor(w.at, static_cast<std::uint32_t>(rng.next_below(d)));
    --w.ttl;
    ctx.charge(w.at, 64 + 64 + 16);  // item id + sid + ttl
    if (held_[w.at].count(w.item)) {
      // Same-round sibling hits resolve at the merge (first in canonical
      // walker order wins); the walker retires either way.
      // shardcheck:ok(R6: staged walker hits: O(walkers hitting this round), k-walker baseline makes no heap-quiet claim)
      stage.hit_sids.push_back(w.sid);
      continue;
    }
    // shardcheck:ok(R6: surviving walkers restaged each round: O(active walkers), amortized by vector capacity reuse)
    if (w.ttl > 0) stage.survivors.push_back(w);
  }
}

void KWalkerSearch::on_round_merge() {
  const Round now = net().round();
  walkers_.clear();
  for (ShardStage& stage : stage_) {
    for (const std::uint64_t sid : stage.hit_sids) {
      SearchOutcome& out = outcomes_[sid];
      if (!out.done) {
        out.done = true;
        out.success = true;
        out.rounds_taken = now - start_round_[sid];
      }
    }
    stage.hit_sids.clear();
    walkers_.insert(walkers_.end(), stage.survivors.begin(),
                    stage.survivors.end());
    stage.survivors.clear();
  }

  // Resolve sampled probes (serial; traced_ is empty unless sampling hit).
  // A probe ends ok the round its outcome flips done, and ends failed once
  // no walker of its sid survives (all TTLs expired or churned out).
  if (!traced_.empty()) {
    std::size_t write = 0;
    for (std::size_t read = 0; read < traced_.size(); ++read) {
      const TracedProbe& tp = traced_[read];
      const auto out_it = outcomes_.find(tp.sid);
      if (out_it != outcomes_.end() && out_it->second.done) {
        net().trace_serial(make_trace_event(
            tp.sid, now, tp.initiator, out_it->second.rounds_taken,
            options_.walkers, RequestClass::kWalkerProbe, TraceEv::kEndOk));
        continue;
      }
      bool alive = false;
      for (const Walker& w : walkers_) {
        if (w.sid == tp.sid) {
          alive = true;
          break;
        }
      }
      if (!alive) {
        net().trace_serial(make_trace_event(
            tp.sid, now, tp.initiator, now - start_round_[tp.sid],
            options_.walkers, RequestClass::kWalkerProbe, TraceEv::kEndFail));
        continue;
      }
      if (write != read) traced_[write] = traced_[read];
      ++write;
    }
    traced_.resize(write);
  }
}

}  // namespace churnstore
