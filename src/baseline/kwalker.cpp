#include "baseline/kwalker.h"

#include <algorithm>
#include <cmath>

namespace churnstore {

KWalkerSearch::KWalkerSearch(Network& net, TokenSoup& soup, Options options)
    : net_(net),
      soup_(soup),
      options_(options),
      rng_(net.protocol_rng().fork(0x6b77616cULL)),
      held_(net.n()) {
  net_.add_churn_listener([this](Vertex v, PeerId, PeerId) { on_churn(v); });
}

void KWalkerSearch::on_churn(Vertex v) {
  held_[v].clear();
  // Walkers currently sitting at v die with the peer that was carrying them.
  for (auto& w : walkers_) {
    if (w.at == v && w.ttl > 0) {
      w.ttl = 0;
      ++outcomes_[w.sid].walkers_lost;
    }
  }
}

std::size_t KWalkerSearch::store(Vertex creator, ItemId item) {
  const auto want =
      options_.replication != 0
          ? options_.replication
          : static_cast<std::uint32_t>(
                std::ceil(std::sqrt(static_cast<double>(net_.n()))));
  const auto targets = soup_.samples(creator).recent_distinct(want);
  if (targets.size() < std::max<std::size_t>(1, want / 2)) return 0;
  const PeerId self = net_.peer_at(creator);
  for (const PeerId t : targets) {
    Message msg;
    msg.src = self;
    msg.dst = t;
    msg.type = MsgType::kFloodData;
    msg.words = {item};
    msg.payload_bits = options_.item_bits;
    net_.send(creator, std::move(msg));
    // Place synchronously for the god view (the message also charges cost).
    const Vertex tv = net_.vertex_of(t);
    if (tv != net_.n()) held_[tv].insert(item);
  }
  placed_[item] = targets;
  return targets.size();
}

std::uint64_t KWalkerSearch::search(Vertex initiator, ItemId item,
                                    std::uint32_t ttl) {
  const std::uint64_t sid = mix64(next_sid_++ ^ 0x6b77ULL) | 1;
  outcomes_[sid] = SearchOutcome{};
  start_round_[sid] = net_.round();
  for (std::uint32_t i = 0; i < options_.walkers; ++i) {
    walkers_.push_back(Walker{sid, item, initiator, ttl});
  }
  return sid;
}

KWalkerSearch::SearchOutcome KWalkerSearch::outcome(std::uint64_t sid) const {
  const auto it = outcomes_.find(sid);
  return it == outcomes_.end() ? SearchOutcome{} : it->second;
}

std::size_t KWalkerSearch::holders_alive(ItemId item) const {
  const auto it = placed_.find(item);
  if (it == placed_.end()) return 0;
  std::size_t alive = 0;
  for (const PeerId p : it->second) {
    const Vertex v = net_.vertex_of(p);
    if (v != net_.n() && held_[v].count(item)) ++alive;
  }
  return alive;
}

void KWalkerSearch::on_round() {
  const RegularGraph& g = net_.graph();
  const std::uint32_t d = g.degree();
  std::size_t write = 0;
  for (std::size_t read = 0; read < walkers_.size(); ++read) {
    Walker w = walkers_[read];
    if (w.ttl == 0) continue;
    SearchOutcome& out = outcomes_[w.sid];
    if (out.done) continue;
    w.at = g.neighbor(w.at, static_cast<std::uint32_t>(rng_.next_below(d)));
    --w.ttl;
    net_.charge_processing(w.at, 64 + 64 + 16);  // item id + sid + ttl
    if (held_[w.at].count(w.item)) {
      out.done = true;
      out.success = true;
      out.rounds_taken = net_.round() - start_round_[w.sid];
      continue;
    }
    if (w.ttl > 0) walkers_[write++] = w;
  }
  walkers_.resize(write);
}

}  // namespace churnstore
