// d-regular simple undirected graph with O(1) endpoint swaps.
//
// The paper's network model is a d-regular non-bipartite expander at every
// round. We store the adjacency as n*d slots; slot (v, i) holds the i-th
// neighbor of v plus the global index of the reciprocal slot, which makes
// degree-preserving 2-swaps (the edge-dynamics primitive) constant time.
#pragma once

#include <cstdint>
#include <vector>

namespace churnstore {

using Vertex = std::uint32_t;

class RegularGraph {
 public:
  RegularGraph() = default;
  RegularGraph(Vertex n, std::uint32_t d);

  [[nodiscard]] Vertex n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t degree() const noexcept { return d_; }
  [[nodiscard]] std::size_t slot_count() const noexcept { return nbr_.size(); }

  [[nodiscard]] Vertex neighbor(Vertex v, std::uint32_t i) const noexcept {
    return nbr_[static_cast<std::size_t>(v) * d_ + i];
  }

  /// Base pointer of v's neighbor row: d consecutive entries, row(v)[i] ==
  /// neighbor(v, i). The walk hot loop hoists this (and degree()) out of
  /// its per-token loop and gathers neighbors straight off a batch of RNG
  /// draws — no per-token index arithmetic or bounds dance.
  [[nodiscard]] const Vertex* row(Vertex v) const noexcept {
    return nbr_.data() + static_cast<std::size_t>(v) * d_;
  }

  /// Global slot index helpers.
  [[nodiscard]] std::size_t slot(Vertex v, std::uint32_t i) const noexcept {
    return static_cast<std::size_t>(v) * d_ + i;
  }
  [[nodiscard]] Vertex slot_owner(std::size_t s) const noexcept {
    return static_cast<Vertex>(s / d_);
  }
  [[nodiscard]] Vertex slot_target(std::size_t s) const noexcept { return nbr_[s]; }
  [[nodiscard]] std::size_t mirror(std::size_t s) const noexcept { return mirror_[s]; }

  /// True if u and v are adjacent (O(d) scan).
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const noexcept;

  /// Install the undirected edge (u, v) into slots (u, iu) and (v, iv).
  /// Used by generators; does not check simplicity.
  void set_edge(Vertex u, std::uint32_t iu, Vertex v, std::uint32_t iv) noexcept;

  /// Double-edge swap: given slots s1 = (a->b) and s2 = (c->e), replace edges
  /// {a,b},{c,e} by {a,e},{c,b}. Caller must have verified the swap keeps the
  /// graph simple. O(1).
  void swap_edges(std::size_t s1, std::size_t s2) noexcept;

  /// Validates the mirror structure and regularity; used by tests.
  [[nodiscard]] bool check_invariants() const noexcept;

 private:
  Vertex n_ = 0;
  std::uint32_t d_ = 0;
  std::vector<Vertex> nbr_;
  std::vector<std::size_t> mirror_;
};

}  // namespace churnstore
