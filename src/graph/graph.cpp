#include "graph/graph.h"

namespace churnstore {

RegularGraph::RegularGraph(Vertex n, std::uint32_t d)
    : n_(n),
      d_(d),
      nbr_(static_cast<std::size_t>(n) * d, 0),
      mirror_(static_cast<std::size_t>(n) * d, 0) {}

bool RegularGraph::has_edge(Vertex u, Vertex v) const noexcept {
  const std::size_t base = static_cast<std::size_t>(u) * d_;
  for (std::uint32_t i = 0; i < d_; ++i) {
    if (nbr_[base + i] == v) return true;
  }
  return false;
}

void RegularGraph::set_edge(Vertex u, std::uint32_t iu, Vertex v,
                            std::uint32_t iv) noexcept {
  const std::size_t su = slot(u, iu);
  const std::size_t sv = slot(v, iv);
  nbr_[su] = v;
  nbr_[sv] = u;
  mirror_[su] = sv;
  mirror_[sv] = su;
}

void RegularGraph::swap_edges(std::size_t s1, std::size_t s2) noexcept {
  // s1: a -> b (mirror m1: b -> a); s2: c -> e (mirror m2: e -> c).
  const std::size_t m1 = mirror_[s1];
  const std::size_t m2 = mirror_[s2];
  const Vertex a = slot_owner(s1);
  const Vertex b = nbr_[s1];
  const Vertex c = slot_owner(s2);
  const Vertex e = nbr_[s2];
  // New edges: {a, e} via (s1, m2) and {c, b} via (s2, m1).
  nbr_[s1] = e;
  nbr_[m2] = a;
  mirror_[s1] = m2;
  mirror_[m2] = s1;
  nbr_[s2] = b;
  nbr_[m1] = c;
  mirror_[s2] = m1;
  mirror_[m1] = s2;
  (void)b;
  (void)e;
  (void)a;
  (void)c;
}

bool RegularGraph::check_invariants() const noexcept {
  const std::size_t total = static_cast<std::size_t>(n_) * d_;
  if (nbr_.size() != total || mirror_.size() != total) return false;
  for (std::size_t s = 0; s < total; ++s) {
    if (nbr_[s] >= n_) return false;
    const std::size_t m = mirror_[s];
    if (m >= total) return false;
    if (mirror_[m] != s) return false;
    // Mirror must point back: slot s is (u -> v), mirror is (v -> u).
    if (slot_owner(m) != nbr_[s]) return false;
    if (nbr_[m] != slot_owner(s)) return false;
    if (nbr_[s] == slot_owner(s)) return false;  // self-loop
  }
  // Simplicity: no vertex may list the same neighbor twice.
  for (Vertex v = 0; v < n_; ++v) {
    for (std::uint32_t i = 0; i < d_; ++i) {
      for (std::uint32_t j = i + 1; j < d_; ++j) {
        if (neighbor(v, i) == neighbor(v, j)) return false;
      }
    }
  }
  return true;
}

}  // namespace churnstore
