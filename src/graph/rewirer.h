// Edge dynamics: the adversary may change edges arbitrarily each round as
// long as the graph stays a d-regular non-bipartite expander. We realize
// this with random degree-preserving double-edge swaps (the standard Markov
// chain on d-regular simple graphs, whose stationary distribution is uniform
// — so sustained rewiring keeps the graph a uniform random d-regular graph,
// i.e. an expander w.h.p.). A connectivity guard re-checks periodically and
// rolls forward with extra swaps in the (rare) disconnected case.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace churnstore {

class Rewirer {
 public:
  struct Options {
    /// Swaps attempted per apply() call; 0 disables edge dynamics.
    std::uint32_t swaps_per_round = 0;
    /// Re-check connectivity every this many apply() calls (0 = never).
    std::uint32_t connectivity_check_period = 64;
  };

  Rewirer(Options opts, Rng rng) : opts_(opts), rng_(rng) {}

  /// Applies one round of edge dynamics to g. Returns swaps performed.
  std::uint32_t apply(RegularGraph& g);

  [[nodiscard]] std::uint64_t total_swaps() const noexcept { return total_swaps_; }
  [[nodiscard]] std::uint64_t repairs() const noexcept { return repairs_; }

 private:
  std::uint32_t do_swaps(RegularGraph& g, std::uint32_t count);

  Options opts_;
  Rng rng_;
  std::uint64_t total_swaps_ = 0;
  std::uint64_t repairs_ = 0;
  std::uint32_t rounds_since_check_ = 0;
  /// BFS scratch for the periodic connectivity audit; apply() runs inside
  /// the round path, so the audit must not allocate at steady state.
  // shardcheck:cold-state(connectivity-audit BFS scratch grown to n on the first check, reused in place after)
  std::vector<std::int32_t> dist_scratch_;
  // shardcheck:cold-state(connectivity-audit BFS queue grown to n on the first check, reused in place after)
  std::vector<Vertex> queue_scratch_;
};

}  // namespace churnstore
