#include "graph/rewirer.h"

#include "graph/properties.h"

namespace churnstore {

std::uint32_t Rewirer::do_swaps(RegularGraph& g, std::uint32_t count) {
  const std::size_t slots = g.slot_count();
  if (slots == 0) return 0;
  std::uint32_t done = 0;
  for (std::uint32_t t = 0; t < count; ++t) {
    const std::size_t s1 = static_cast<std::size_t>(rng_.next_below(slots));
    const std::size_t s2 = static_cast<std::size_t>(rng_.next_below(slots));
    const Vertex a = g.slot_owner(s1);
    const Vertex b = g.slot_target(s1);
    const Vertex c = g.slot_owner(s2);
    const Vertex e = g.slot_target(s2);
    // Proposed new edges {a, e} and {c, b}; reject anything that would make
    // a self-loop or a parallel edge, and degenerate picks sharing a slot.
    if (s1 == s2 || s1 == g.mirror(s2)) continue;
    if (a == e || c == b) continue;
    if (g.has_edge(a, e) || g.has_edge(c, b)) continue;
    g.swap_edges(s1, s2);
    ++done;
  }
  return done;
}

std::uint32_t Rewirer::apply(RegularGraph& g) {
  if (opts_.swaps_per_round == 0) return 0;
  // Provision the audit scratch on the first apply(), not on the first
  // audit: the audit can land arbitrarily deep into a run (check period),
  // and growing scratch there would break an established heap-quiet
  // steady state mid-measurement.
  if (opts_.connectivity_check_period != 0 &&
      dist_scratch_.capacity() < g.n()) {
    dist_scratch_.reserve(g.n());
    queue_scratch_.reserve(g.n());
  }
  std::uint32_t done = do_swaps(g, opts_.swaps_per_round);
  total_swaps_ += done;
  if (opts_.connectivity_check_period != 0 &&
      ++rounds_since_check_ >= opts_.connectivity_check_period) {
    rounds_since_check_ = 0;
    // Random 2-swaps disconnect a d-regular expander only with tiny
    // probability; when it happens, additional mixing swaps reconnect it
    // quickly (the swap chain is irreducible over connected d-regular
    // graphs and disconnected states are a vanishing fraction).
    int guard = 0;
    while (!is_connected(g, dist_scratch_, queue_scratch_) && guard++ < 32) {
      ++repairs_;
      total_swaps_ += do_swaps(g, opts_.swaps_per_round + g.n());
    }
  }
  return done;
}

}  // namespace churnstore
