// Spectral-gap estimation for the random-walk matrix P = A/d.
//
// The paper assumes a fixed bound lambda < 1 on the second-largest
// eigenvalue (in absolute value) of every round's graph. We estimate
// max(|lambda_2|, |lambda_n|) by power iteration on P with deflation of the
// principal (all-ones) eigenvector; tests and the topology-maintenance bench
// use this to verify the rewired graphs remain expanders.
#pragma once

#include "graph/graph.h"
#include "util/rng.h"

namespace churnstore {

struct SpectralOptions {
  int iterations = 120;
  Vertex seed_vertex = 0;  ///< deterministic start vector perturbation
};

/// Estimated second-largest absolute eigenvalue of P = A/d, in [0, 1].
[[nodiscard]] double second_eigenvalue_estimate(
    const RegularGraph& g, Rng& rng,
    const SpectralOptions& opts = SpectralOptions{});

}  // namespace churnstore
