#include "graph/properties.h"

#include <algorithm>
#include <queue>
#include <vector>

namespace churnstore {

namespace {

/// BFS filling dist with levels; returns number of reached vertices and the
/// farthest vertex found.
struct BfsResult {
  std::uint32_t reached = 0;
  Vertex farthest = 0;
  std::uint32_t depth = 0;
};

BfsResult bfs(const RegularGraph& g, Vertex from, std::vector<std::int32_t>& dist) {
  dist.assign(g.n(), -1);
  std::queue<Vertex> q;
  dist[from] = 0;
  q.push(from);
  BfsResult res;
  res.reached = 1;
  res.farthest = from;
  while (!q.empty()) {
    const Vertex v = q.front();
    q.pop();
    for (std::uint32_t i = 0; i < g.degree(); ++i) {
      const Vertex u = g.neighbor(v, i);
      if (dist[u] >= 0) continue;
      dist[u] = dist[v] + 1;
      ++res.reached;
      if (static_cast<std::uint32_t>(dist[u]) > res.depth) {
        res.depth = static_cast<std::uint32_t>(dist[u]);
        res.farthest = u;
      }
      q.push(u);
    }
  }
  return res;
}

}  // namespace

bool is_connected(const RegularGraph& g) {
  if (g.n() == 0) return true;
  std::vector<std::int32_t> dist;
  return bfs(g, 0, dist).reached == g.n();
}

bool is_bipartite(const RegularGraph& g) {
  std::vector<std::int8_t> color(g.n(), -1);
  std::queue<Vertex> q;
  for (Vertex start = 0; start < g.n(); ++start) {
    if (color[start] >= 0) continue;
    color[start] = 0;
    q.push(start);
    while (!q.empty()) {
      const Vertex v = q.front();
      q.pop();
      for (std::uint32_t i = 0; i < g.degree(); ++i) {
        const Vertex u = g.neighbor(v, i);
        if (color[u] < 0) {
          color[u] = static_cast<std::int8_t>(1 - color[v]);
          q.push(u);
        } else if (color[u] == color[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

std::uint32_t eccentricity(const RegularGraph& g, Vertex from) {
  std::vector<std::int32_t> dist;
  return bfs(g, from, dist).depth;
}

std::uint32_t diameter_lower_bound(const RegularGraph& g) {
  if (g.n() == 0) return 0;
  std::vector<std::int32_t> dist;
  const BfsResult first = bfs(g, 0, dist);
  const BfsResult second = bfs(g, first.farthest, dist);
  return second.depth;
}

}  // namespace churnstore
