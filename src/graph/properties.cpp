#include "graph/properties.h"

#include <algorithm>
#include <vector>

namespace churnstore {

namespace {

/// BFS filling dist with levels; returns number of reached vertices and the
/// farthest vertex found.
struct BfsResult {
  std::uint32_t reached = 0;
  Vertex farthest = 0;
  std::uint32_t depth = 0;
};

/// The FIFO is a plain vector with a read cursor: every vertex enters the
/// queue at most once, so the backing store never exceeds n entries and a
/// pop never needs to reclaim space. Unlike std::deque (which allocates its
/// map + first chunk on every construction), both scratch buffers reach a
/// steady capacity and make repeated calls allocation-free.
BfsResult bfs(const RegularGraph& g, Vertex from,
              std::vector<std::int32_t>& dist, std::vector<Vertex>& queue) {
  dist.assign(g.n(), -1);
  queue.clear();
  dist[from] = 0;
  queue.push_back(from);
  BfsResult res;
  res.reached = 1;
  res.farthest = from;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex v = queue[head];
    for (std::uint32_t i = 0; i < g.degree(); ++i) {
      const Vertex u = g.neighbor(v, i);
      if (dist[u] >= 0) continue;
      dist[u] = dist[v] + 1;
      ++res.reached;
      if (static_cast<std::uint32_t>(dist[u]) > res.depth) {
        res.depth = static_cast<std::uint32_t>(dist[u]);
        res.farthest = u;
      }
      queue.push_back(u);
    }
  }
  return res;
}

}  // namespace

bool is_connected(const RegularGraph& g) {
  std::vector<std::int32_t> dist;
  std::vector<Vertex> queue;
  return is_connected(g, dist, queue);
}

bool is_connected(const RegularGraph& g, std::vector<std::int32_t>& dist_scratch,
                  std::vector<Vertex>& queue_scratch) {
  if (g.n() == 0) return true;
  return bfs(g, 0, dist_scratch, queue_scratch).reached == g.n();
}

bool is_bipartite(const RegularGraph& g) {
  std::vector<std::int8_t> color(g.n(), -1);
  std::vector<Vertex> queue;
  queue.reserve(g.n());
  for (Vertex start = 0; start < g.n(); ++start) {
    if (color[start] >= 0) continue;
    color[start] = 0;
    queue.clear();
    queue.push_back(start);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Vertex v = queue[head];
      for (std::uint32_t i = 0; i < g.degree(); ++i) {
        const Vertex u = g.neighbor(v, i);
        if (color[u] < 0) {
          color[u] = static_cast<std::int8_t>(1 - color[v]);
          queue.push_back(u);
        } else if (color[u] == color[v]) {
          return false;
        }
      }
    }
  }
  return true;
}

std::uint32_t eccentricity(const RegularGraph& g, Vertex from) {
  std::vector<std::int32_t> dist;
  std::vector<Vertex> queue;
  return bfs(g, from, dist, queue).depth;
}

std::uint32_t diameter_lower_bound(const RegularGraph& g) {
  if (g.n() == 0) return 0;
  std::vector<std::int32_t> dist;
  std::vector<Vertex> queue;
  const BfsResult first = bfs(g, 0, dist, queue);
  const BfsResult second = bfs(g, first.farthest, dist, queue);
  return second.depth;
}

}  // namespace churnstore
