// Structural predicates on RegularGraph: connectivity, bipartiteness,
// diameter estimation. Used by the generator's guarantee loop and by tests.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace churnstore {

[[nodiscard]] bool is_connected(const RegularGraph& g);

/// True if the graph is 2-colorable. The paper requires non-bipartite
/// expanders so lazy-free random walks still mix.
[[nodiscard]] bool is_bipartite(const RegularGraph& g);

/// Eccentricity of vertex `from` (longest BFS distance).
[[nodiscard]] std::uint32_t eccentricity(const RegularGraph& g, Vertex from);

/// Cheap diameter upper/lower estimate via double-sweep BFS.
[[nodiscard]] std::uint32_t diameter_lower_bound(const RegularGraph& g);

}  // namespace churnstore
