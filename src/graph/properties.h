// Structural predicates on RegularGraph: connectivity, bipartiteness,
// diameter estimation. Used by the generator's guarantee loop and by tests.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace churnstore {

[[nodiscard]] bool is_connected(const RegularGraph& g);

/// Scratch-reusing overload for callers on the round path (the Rewirer's
/// periodic connectivity audit): `dist_scratch` and `queue_scratch` grow to
/// n on the first call and are reused in place after, so the check is
/// allocation-free at steady state (HeapQuiesceScope polices the rounds it
/// runs inside).
[[nodiscard]] bool is_connected(const RegularGraph& g,
                                std::vector<std::int32_t>& dist_scratch,
                                std::vector<Vertex>& queue_scratch);

/// True if the graph is 2-colorable. The paper requires non-bipartite
/// expanders so lazy-free random walks still mix.
[[nodiscard]] bool is_bipartite(const RegularGraph& g);

/// Eccentricity of vertex `from` (longest BFS distance).
[[nodiscard]] std::uint32_t eccentricity(const RegularGraph& g, Vertex from);

/// Cheap diameter upper/lower estimate via double-sweep BFS.
[[nodiscard]] std::uint32_t diameter_lower_bound(const RegularGraph& g);

}  // namespace churnstore
