#include "graph/regular_generator.h"

#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "graph/properties.h"

namespace churnstore {

namespace {

// Packs an undirected edge into a 64-bit key with min vertex first.
std::uint64_t edge_key(Vertex a, Vertex b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

struct PairingResult {
  std::vector<std::pair<Vertex, Vertex>> edges;
  bool ok = false;
};

// Pairs the n*d stubs, then repairs self-loops and parallel edges by random
// double-edge swaps. Returns ok=false if the repair loop stalls.
PairingResult pair_stubs(Vertex n, std::uint32_t d, Rng& rng) {
  PairingResult res;
  const std::size_t m = static_cast<std::size_t>(n) * d / 2;
  std::vector<Vertex> stubs;
  stubs.reserve(m * 2);
  for (Vertex v = 0; v < n; ++v)
    for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
  rng.shuffle(stubs);

  auto& edges = res.edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    edges.emplace_back(stubs[2 * i], stubs[2 * i + 1]);

  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<std::size_t> bad;
  for (std::size_t i = 0; i < m; ++i) {
    auto [a, b] = edges[i];
    if (a == b || !seen.insert(edge_key(a, b)).second) bad.push_back(i);
  }

  // Repair: swap a bad edge with a random partner edge; accept only swaps
  // that make both results valid.
  std::size_t stall = 0;
  const std::size_t stall_limit = 200 * (bad.size() + 8);
  while (!bad.empty()) {
    if (++stall > stall_limit) return res;  // ok = false
    const std::size_t bi = bad.back();
    auto [a, b] = edges[bi];
    const std::size_t oi = static_cast<std::size_t>(rng.next_below(m));
    if (oi == bi) continue;
    auto [c, e] = edges[oi];
    // Candidate replacement: {a, e} and {c, b} (coin flip orients the swap).
    if (rng.bernoulli(0.5)) std::swap(c, e);
    if (a == e || c == b) continue;
    const bool other_bad = (c == e) || (edges[oi].first == edges[oi].second);
    const std::uint64_t old_other = edge_key(edges[oi].first, edges[oi].second);
    // Remove the other edge from `seen` only if it was validly inserted.
    const bool other_in_seen = !other_bad && seen.count(old_other) > 0;
    if (other_in_seen) seen.erase(old_other);
    const std::uint64_t k1 = edge_key(a, e);
    const std::uint64_t k2 = edge_key(c, b);
    if (k1 == k2 || seen.count(k1) || seen.count(k2)) {
      if (other_in_seen) seen.insert(old_other);
      continue;
    }
    seen.insert(k1);
    seen.insert(k2);
    edges[bi] = {a, e};
    edges[oi] = {c, b};
    bad.pop_back();
    // If the partner edge was itself bad it has now been fixed too; it will
    // be found (and skipped) when its index is reached because it is valid.
    if (other_bad) {
      for (std::size_t j = 0; j < bad.size(); ++j) {
        if (bad[j] == oi) {
          bad[j] = bad.back();
          bad.pop_back();
          break;
        }
      }
    }
    stall = 0;
  }
  res.ok = true;
  return res;
}

RegularGraph build_from_edges(
    Vertex n, std::uint32_t d,
    const std::vector<std::pair<Vertex, Vertex>>& edges) {
  RegularGraph g(n, d);
  std::vector<std::uint32_t> fill(n, 0);
  for (const auto& [a, b] : edges) {
    g.set_edge(a, fill[a]++, b, fill[b]++);
  }
  return g;
}

}  // namespace

RegularGraph random_regular_graph(Vertex n, std::uint32_t d, Rng& rng,
                                  const RegularGraphOptions& opts) {
  if (d == 0 || n < d + 1) {
    throw std::invalid_argument("random_regular_graph: need n >= d + 1, d >= 1");
  }
  if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) {
    throw std::invalid_argument("random_regular_graph: n * d must be even");
  }
  for (int attempt = 0; attempt < opts.max_attempts; ++attempt) {
    PairingResult pr = pair_stubs(n, d, rng);
    if (!pr.ok) continue;
    RegularGraph g = build_from_edges(n, d, pr.edges);
    if (opts.require_connected && !is_connected(g)) continue;
    if (opts.require_non_bipartite && is_bipartite(g)) continue;
    return g;
  }
  throw std::runtime_error(
      "random_regular_graph: failed to generate a valid graph");
}

}  // namespace churnstore
