// Random d-regular simple graph generation (pairing/configuration model with
// conflict repair), plus a guarantee loop that rejects disconnected or
// bipartite outcomes so every generated graph satisfies the paper's
// topology assumptions (random d-regular graphs are expanders w.h.p.).
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace churnstore {

struct RegularGraphOptions {
  /// Require connectivity (always sensible for the P2P model).
  bool require_connected = true;
  /// Require non-bipartiteness (paper assumption; needed for mixing).
  bool require_non_bipartite = true;
  /// Safety valve on the repair/regenerate loop.
  int max_attempts = 64;
};

/// Generates a uniform-ish random d-regular simple graph on n vertices.
/// Requires n >= d + 1 and n * d even. Throws std::runtime_error if no valid
/// graph is produced within max_attempts (practically unreachable for
/// d >= 3 and n >= 8).
[[nodiscard]] RegularGraph random_regular_graph(
    Vertex n, std::uint32_t d, Rng& rng,
    const RegularGraphOptions& opts = RegularGraphOptions{});

}  // namespace churnstore
