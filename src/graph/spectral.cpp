#include "graph/spectral.h"

#include <cmath>
#include <vector>

namespace churnstore {

double second_eigenvalue_estimate(const RegularGraph& g, Rng& rng,
                                  const SpectralOptions& opts) {
  const Vertex n = g.n();
  if (n < 2) return 0.0;
  const double inv_d = 1.0 / static_cast<double>(g.degree());

  std::vector<double> x(n), y(n);
  for (Vertex v = 0; v < n; ++v) x[v] = rng.uniform(-1.0, 1.0);

  auto deflate_and_normalize = [&](std::vector<double>& vec) -> double {
    // Remove the component along the all-ones principal eigenvector.
    double mean = 0.0;
    for (const double t : vec) mean += t;
    mean /= static_cast<double>(n);
    double norm2 = 0.0;
    for (double& t : vec) {
      t -= mean;
      norm2 += t * t;
    }
    const double norm = std::sqrt(norm2);
    if (norm > 0) {
      for (double& t : vec) t /= norm;
    }
    return norm;
  };

  deflate_and_normalize(x);
  double lambda = 0.0;
  for (int it = 0; it < opts.iterations; ++it) {
    // y = P x
    for (Vertex v = 0; v < n; ++v) {
      double acc = 0.0;
      for (std::uint32_t i = 0; i < g.degree(); ++i) acc += x[g.neighbor(v, i)];
      y[v] = acc * inv_d;
    }
    lambda = deflate_and_normalize(y);
    x.swap(y);
    if (lambda == 0.0) break;  // start vector was in the principal eigenspace
  }
  return lambda;
}

}  // namespace churnstore
