#include "walk/sampler.h"

#include <algorithm>
#include <unordered_set>

namespace churnstore {

namespace {
const std::vector<PeerId> kEmpty;
}

void SampleBuffer::add(Round r, PeerId source) {
  if (groups_.empty() || groups_.back().round != r) {
    groups_.push_back(Group{r, {}});
  }
  groups_.back().sources.push_back(source);
}

void SampleBuffer::prune(Round keep_from) {
  while (!groups_.empty() && groups_.front().round < keep_from) {
    groups_.pop_front();
  }
}

const std::vector<PeerId>& SampleBuffer::at(Round r) const {
  // Groups are few (one per retained round); linear scan from the back is
  // cheap and the common query is the most recent round.
  for (auto it = groups_.rbegin(); it != groups_.rend(); ++it) {
    if (it->round == r) return it->sources;
    if (it->round < r) break;
  }
  return kEmpty;
}

std::vector<PeerId> SampleBuffer::recent_distinct(
    std::size_t k, const std::vector<PeerId>& exclude) const {
  std::vector<PeerId> out;
  std::unordered_set<PeerId> seen(exclude.begin(), exclude.end());
  for (auto it = groups_.rbegin(); it != groups_.rend(); ++it) {
    for (const PeerId s : it->sources) {
      if (!seen.insert(s).second) continue;
      out.push_back(s);
      if (k != 0 && out.size() >= k) return out;
    }
  }
  return out;
}

std::size_t SampleBuffer::total() const noexcept {
  std::size_t acc = 0;
  for (const auto& g : groups_) acc += g.sources.size();
  return acc;
}

void ShardedArrivals::reset(std::uint32_t shards) {
  shards_ = shards;
  buckets_.resize(static_cast<std::size_t>(shards) * shards);
  for (auto& b : buckets_) b.clear();
}

void ShardedArrivals::stage(std::uint32_t src_shard, std::uint32_t dst_shard,
                            Vertex dst, PeerId source) {
  buckets_[static_cast<std::size_t>(src_shard) * shards_ + dst_shard]
      .push_back(Arrival{dst, source});
}

void ShardedArrivals::apply_to(std::uint32_t dst_shard, Round r,
                               std::vector<SampleBuffer>& buffers) const {
  for (std::uint32_t src = 0; src < shards_; ++src) {
    const auto& bucket =
        buckets_[static_cast<std::size_t>(src) * shards_ + dst_shard];
    for (const Arrival& a : bucket) buffers[a.dst].add(r, a.source);
  }
}

std::size_t ShardedArrivals::staged_total() const noexcept {
  std::size_t acc = 0;
  for (const auto& b : buckets_) acc += b.size();
  return acc;
}

}  // namespace churnstore
