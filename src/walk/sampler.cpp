#include "walk/sampler.h"

#include <cstring>
#include <new>
#include <unordered_set>

namespace churnstore {

namespace {
/// Group block size when the cohort was not announced (serial add() path,
/// unit tests): grows by doubling, so the constant only matters for tiny
/// buffers.
constexpr std::uint32_t kUnannouncedCap = 4;
constexpr std::uint32_t kInitialDirectoryCap = 4;
}  // namespace

void SampleBuffer::set_arena(Arena* arena) noexcept {
  // Rebinding with live blocks would return them to the wrong allocator.
  assert(gcount_ == 0 && groups_ == nullptr &&
         "set_arena on a non-empty buffer");
  arena_ = arena;
}

void* SampleBuffer::alloc(std::size_t bytes) const {
  return arena_ != nullptr ? arena_->allocate(bytes) : ::operator new(bytes);
}

void SampleBuffer::dealloc(void* p, std::size_t bytes) const noexcept {
  if (p == nullptr) return;
  if (arena_ != nullptr) {
    arena_->deallocate(p, bytes);
  } else {
    ::operator delete(p);
  }
}

void SampleBuffer::push_group(Round r, std::uint32_t cap) {
  if (ghead_ + gcount_ == gcap_) {
    if (ghead_ > 0) {
      // Head space from pruned rounds: compact instead of growing. The
      // steady state (one new round in, one pruned out) stabilizes at a
      // directory of window-many slots, memmoved once per round.
      std::memmove(groups_, groups_ + ghead_, gcount_ * sizeof(Group));
      ghead_ = 0;
    } else {
      const std::uint32_t new_cap =
          gcap_ == 0 ? kInitialDirectoryCap : 2 * gcap_;
      auto* nd = static_cast<Group*>(alloc(new_cap * sizeof(Group)));
      if (gcount_ != 0) {
        std::memcpy(nd, groups_ + ghead_, gcount_ * sizeof(Group));
      }
      dealloc(groups_, gcap_ * sizeof(Group));
      groups_ = nd;
      ghead_ = 0;
      gcap_ = new_cap;
    }
  }
  Group& g = groups_[ghead_ + gcount_];
  g.round = r;
  g.cap = cap > 0 ? cap : 1;
  g.size = 0;
  g.sources = static_cast<PeerId*>(alloc(g.cap * sizeof(PeerId)));
  ++gcount_;
}

void SampleBuffer::reserve_rounds(std::uint32_t rounds) {
  if (rounds <= gcap_) return;
  auto* nd = static_cast<Group*>(alloc(rounds * sizeof(Group)));
  if (gcount_ != 0) {
    std::memcpy(nd, groups_ + ghead_, gcount_ * sizeof(Group));
  }
  dealloc(groups_, gcap_ * sizeof(Group));
  groups_ = nd;
  ghead_ = 0;
  gcap_ = rounds;
}

void SampleBuffer::grow_group(Group& g) {
  const std::uint32_t new_cap = 2 * g.cap;
  auto* nd = static_cast<PeerId*>(alloc(new_cap * sizeof(PeerId)));
  std::memcpy(nd, g.sources, g.size * sizeof(PeerId));
  dealloc(g.sources, g.cap * sizeof(PeerId));
  g.sources = nd;
  g.cap = new_cap;
}

void SampleBuffer::add(Round r, PeerId source) {
  Group* back = gcount_ != 0 ? &groups_[ghead_ + gcount_ - 1] : nullptr;
  if (back == nullptr || back->round != r) {
    // First sample of a new cohort: everything announced for this round
    // shares this one block.
    const std::uint32_t cap = pending_ > 0 ? pending_ : kUnannouncedCap;
    pending_ = 0;
    push_group(r, cap);
    back = &groups_[ghead_ + gcount_ - 1];
  }
  if (back->size == back->cap) grow_group(*back);
  back->sources[back->size++] = source;
}

void SampleBuffer::prune(Round keep_from) {
  while (gcount_ != 0 && groups_[ghead_].round < keep_from) {
    Group& g = groups_[ghead_];
    dealloc(g.sources, g.cap * sizeof(PeerId));
    ++ghead_;
    --gcount_;
  }
  if (gcount_ == 0) ghead_ = 0;
}

void SampleBuffer::clear() noexcept {
  for (std::uint32_t i = 0; i < gcount_; ++i) {
    Group& g = groups_[ghead_ + i];
    dealloc(g.sources, g.cap * sizeof(PeerId));
  }
  gcount_ = 0;
  ghead_ = 0;
  pending_ = 0;
}

void SampleBuffer::destroy() noexcept {
  clear();
  dealloc(groups_, gcap_ * sizeof(Group));
  groups_ = nullptr;
  gcap_ = 0;
}

void SampleBuffer::copy_from(const SampleBuffer& o) {
  // Heap-backed copy: snapshots must outlive the source's Network/arenas.
  arena_ = nullptr;
  groups_ = nullptr;
  ghead_ = gcount_ = gcap_ = 0;
  pending_ = 0;
  for (std::uint32_t i = 0; i < o.gcount_; ++i) {
    const Group& g = o.groups()[i];
    push_group(g.round, g.size != 0 ? g.size : 1);
    Group& mine = groups_[ghead_ + gcount_ - 1];
    std::memcpy(mine.sources, g.sources, g.size * sizeof(PeerId));
    mine.size = g.size;
  }
}

void SampleBuffer::steal(SampleBuffer& o) noexcept {
  groups_ = o.groups_;
  ghead_ = o.ghead_;
  gcount_ = o.gcount_;
  gcap_ = o.gcap_;
  pending_ = o.pending_;
  arena_ = o.arena_;
  o.groups_ = nullptr;
  o.ghead_ = o.gcount_ = o.gcap_ = 0;
  o.pending_ = 0;
}

SampleView SampleBuffer::at(Round r) const noexcept {
  // Groups are few (one per retained round); linear scan from the back is
  // cheap and the common query is the most recent round.
  for (std::uint32_t i = gcount_; i-- > 0;) {
    const Group& g = groups()[i];
    if (g.round == r) return SampleView{g.sources, g.size};
    if (g.round < r) break;
  }
  return SampleView{};
}

std::vector<PeerId> SampleBuffer::recent_distinct(
    std::size_t k, const std::vector<PeerId>& exclude) const {
  std::vector<PeerId> out;
  std::unordered_set<PeerId> seen(exclude.begin(), exclude.end());
  for (std::uint32_t i = gcount_; i-- > 0;) {
    const Group& g = groups()[i];
    for (std::uint32_t j = 0; j < g.size; ++j) {
      const PeerId s = g.sources[j];
      if (!seen.insert(s).second) continue;
      out.push_back(s);
      if (k != 0 && out.size() >= k) return out;
    }
  }
  return out;
}

std::size_t SampleBuffer::total() const noexcept {
  std::size_t acc = 0;
  for (std::uint32_t i = 0; i < gcount_; ++i) acc += groups()[i].size;
  return acc;
}

bool SampleBuffer::equals(const SampleBuffer& o) const noexcept {
  if (gcount_ != o.gcount_) return false;
  for (std::uint32_t i = 0; i < gcount_; ++i) {
    const Group& a = groups()[i];
    const Group& b = o.groups()[i];
    if (a.round != b.round || a.size != b.size) return false;
    if (std::memcmp(a.sources, b.sources, a.size * sizeof(PeerId)) != 0) {
      return false;
    }
  }
  return true;
}

void ShardedArrivals::reset(std::uint32_t src_shards,
                            std::uint32_t dst_buckets) {
  src_shards_ = src_shards;
  dst_buckets_ = dst_buckets;
  buckets_.resize(static_cast<std::size_t>(src_shards) * dst_buckets);
  for (auto& b : buckets_) b.clear();
}

void ShardedArrivals::stage(std::uint32_t src_shard, std::uint32_t dst_bucket,
                            Vertex dst, PeerId source) {
  buckets_[static_cast<std::size_t>(src_shard) * dst_buckets_ + dst_bucket]
      .push_back(Arrival{dst, source});
}

void ShardedArrivals::apply_to(std::uint32_t first_bucket,
                               std::uint32_t last_bucket, Vertex vbegin,
                               Vertex vend, Round r,
                               std::vector<SampleBuffer>& buffers) const {
  // Bucket by bucket so the scatter stays inside one destination window;
  // within a bucket, pass 1 announces cohort sizes so pass 2 lands every
  // (round, vertex) cohort in a single exact-size block of the
  // destination shard's arena.
  for (std::uint32_t b = first_bucket; b <= last_bucket; ++b) {
    for (std::uint32_t src = 0; src < src_shards_; ++src) {
      const auto& bucket =
          buckets_[static_cast<std::size_t>(src) * dst_buckets_ + b];
      for (const Arrival& a : bucket) {
        if (a.dst < vbegin || a.dst >= vend) continue;
        buffers[a.dst].announce(1);
      }
    }
    for (std::uint32_t src = 0; src < src_shards_; ++src) {
      const auto& bucket =
          buckets_[static_cast<std::size_t>(src) * dst_buckets_ + b];
      for (const Arrival& a : bucket) {
        if (a.dst < vbegin || a.dst >= vend) continue;
        buffers[a.dst].add(r, a.source);
      }
    }
  }
}

std::size_t ShardedArrivals::staged_total() const noexcept {
  std::size_t acc = 0;
  for (const auto& b : buckets_) acc += b.size();
  return acc;
}

}  // namespace churnstore
