#include "walk/token_soup.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/prefetch.h"

namespace churnstore {

namespace {
/// Bits a node processes to forward one token: source id + hop counter.
constexpr std::uint64_t kTokenBits = 64 + 16;
/// Merge-refill prefetch distance, in tokens: the destination queue of
/// handoff i+kHeaderDist gets its header line hinted, a data-dependent
/// scatter the hardware prefetcher cannot see. (Hinting the queue TAIL as
/// well was measured slower — computing the tail address needs two
/// dependent loads, which stalls the loop more than the miss it hides.)
constexpr std::size_t kHeaderDist = 16;
}  // namespace

std::byte* TokenSoup::alloc_block(Arena* a, std::size_t bytes) {
  if (a != nullptr) return static_cast<std::byte*>(a->allocate(bytes));
  return static_cast<std::byte*>(::operator new(bytes));
}

void TokenSoup::free_block(Arena* a, std::byte* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (a != nullptr) {
    a->deallocate(p, bytes);
  } else {
    ::operator delete(p);
  }
}

// Growth for the single-block SoA containers: capacity is whatever the
// arena's size class actually holds (Arena::usable_size), so the class
// round-up becomes extra tokens. The byte count handed back to
// deallocate lands in the same size class the allocation came from
// (cap * kTokenBytes > the previous class bound by construction), so the
// block recycles into its own freelist.
void TokenSoup::TokenQueue::grow(std::size_t min_cap) {
  std::size_t want = std::size_t{cap_} * 2;
  if (want < min_cap) want = min_cap;
  const std::size_t new_cap = Arena::usable_size(want * kTokenBytes) / kTokenBytes;
  std::byte* nb = alloc_block(arena_, new_cap * kTokenBytes);
  if (size_ > 0) {
    std::memcpy(nb, base_, std::size_t{size_} * 8);
    std::memcpy(nb + new_cap * 8, meta(), std::size_t{size_} * 2);
  }
  free_block(arena_, base_, std::size_t{cap_} * kTokenBytes);
  base_ = nb;
  cap_ = static_cast<std::uint32_t>(new_cap);
}

void TokenSoup::HandoffBucket::grow(std::size_t min_cap) {
  std::size_t want = std::size_t{cap_} * 2;
  if (want < min_cap) want = min_cap;
  const std::size_t new_cap = Arena::usable_size(want * kTokenBytes) / kTokenBytes;
  std::byte* nb = alloc_block(arena_, new_cap * kTokenBytes);
  if (size_ > 0) {
    std::memcpy(nb, base_, std::size_t{size_} * 8);
    std::memcpy(nb + new_cap * 8, dst(), std::size_t{size_} * 4);
    std::memcpy(nb + new_cap * 12, meta(), std::size_t{size_} * 2);
  }
  free_block(arena_, base_, std::size_t{cap_} * kTokenBytes);
  base_ = nb;
  cap_ = static_cast<std::uint32_t>(new_cap);
}

TokenSoup::TokenSoup(const WalkConfig& config) : config_(config) {}

TokenSoup::TokenSoup(Network& net, const WalkConfig& config)
    : TokenSoup(config) {
  on_attach(net);
}

void TokenSoup::on_attach(Network& net_ref) {
  Protocol::on_attach(net_ref);
  const std::uint32_t n = net().n();
  stream_salt_ = net().protocol_rng().fork(0x736f7570ULL).next();
  walks_ = churnstore::walks_per_round(n, config_);
  length_ = churnstore::walk_length(n, config_);
  cap_ = churnstore::forward_cap(n, config_);
  tau_ = churnstore::tau_rounds(n, config_);
  window_ = static_cast<Round>(config_.window_mult * tau_) + 2;
  assert(length_ <= kMaxSteps && "walk length must fit the packed meta");
  const ShardPlan& plan = net().shards();
  const std::uint32_t shards = plan.count();
  // Token queues and handoff buckets are arena-backed: a queue draws from
  // the arena of the shard owning its vertex, a bucket from its SOURCE
  // shard's arena — always the task that grows it. Queues are pre-sized to
  // the expected steady load (walks * length tokens in flight per vertex):
  // without this, warm-up grows every queue through the same doubling
  // chain in lockstep, stranding each abandoned size class in the
  // freelists (~0.5 GB of dead blocks at n=1M).
  cur_.clear();
  cur_.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    Arena* a = &net().shard_arena(plan.shard_of(v));
    cur_.emplace_back(a);
    cur_.back().reserve(static_cast<std::size_t>(walks_) * length_);
  }
  // Sample buffers allocate their cohort groups from the arena of the
  // shard owning their vertex: growth happens on the destination shard's
  // task (ShardedArrivals::apply_to), pruning in the same task's merge
  // slice, churn clears in serial context — always the arena's owner.
  samples_.assign(n, SampleBuffer{});
  for (Vertex v = 0; v < n; ++v) {
    samples_[v].set_arena(&net().shard_arena(plan.shard_of(v)));
    // Retention holds window_+1 round-groups, +1 for the round that lands
    // before the next prune.
    samples_[v].reserve_rounds(static_cast<std::uint32_t>(window_) + 2);
  }
  // Destination pages: the merge refill is a data-dependent scatter into
  // the token queues, and at n=1M those queues span hundreds of MB — a
  // shard-granular scatter pays DRAM latency per token. Size a power-of-
  // two vertex page so one page's queues (data + header + size-class
  // slack) stay inside ~1.5 MB of L2, stage handoffs per (src shard,
  // dst page), and let the merge walk page by page so every queue touch
  // lands in a cache-resident window.
  const std::uint64_t per_vertex_bytes =
      static_cast<std::uint64_t>(walks_) * length_ * TokenQueue::kTokenBytes +
      64;
  constexpr std::uint64_t kMergeWindowBytes = 3u << 19;  // ~1.5 MB of L2
  page_shift_ = 0;
  while (page_shift_ < 16 &&
         (std::uint64_t{2} << page_shift_) * per_vertex_bytes <=
             kMergeWindowBytes) {
    ++page_shift_;
  }
  pages_ = n > 0 ? ((n - 1) >> page_shift_) + 1 : 1;
  // Pre-size each (src, page) bucket to its share of the steady in-flight
  // population (walks * length per vertex, near-uniform walk targets).
  // Growth past the reserve still works, it just reallocates once; the
  // reserve exists so steady-state rounds never double a hundreds-of-MB
  // column (the old+new copy overlap was a maxrss spike at n=1M).
  moves_.clear();
  moves_.reserve(static_cast<std::size_t>(shards) * pages_);
  const std::uint64_t page_span = std::uint64_t{1} << page_shift_;
  for (std::uint32_t src = 0; src < shards; ++src) {
    const std::uint64_t src_span = plan.end(src) - plan.begin(src);
    for (std::uint32_t page = 0; page < pages_; ++page) {
      moves_.emplace_back(&net().shard_arena(src));
      if (n > 0) {
        const std::uint64_t expected = static_cast<std::uint64_t>(walks_) *
                                       length_ * src_span * page_span / n;
        moves_.back().reserve(expected + expected / 16 + 8);
      }
    }
  }
  probes_.assign(shards, {});
  counters_.assign(shards, {});
  fwd_count_.assign(n, 0);
  draws_.assign(shards, std::vector<std::uint32_t>(cap_));
  alive_.assign(shards, 0);
}

void TokenSoup::on_churn(Vertex v, PeerId, PeerId) {
  // The peer at v is gone: its queued tokens and its learned samples die
  // with it (the fresh peer starts with empty state).
  net().metrics().count_tokens_lost(cur_[v].size());
  alive_[net().shards().shard_of(v)] -= cur_[v].size();
  cur_[v].clear();
  samples_[v].clear();
}

void TokenSoup::inject_probe(Vertex v, std::uint64_t tag, std::uint32_t steps) {
  assert(steps >= 1 && steps <= kMaxSteps);
  cur_[v].push_back(tag, pack_meta(steps, /*probe=*/true));
  ++alive_[net().shards().shard_of(v)];
}

std::size_t TokenSoup::tokens_alive() const noexcept {
  std::size_t acc = 0;
  for (const std::uint64_t a : alive_) acc += a;
  return acc;
}

void TokenSoup::on_round_begin() {
  // Every vertex draws from its own stream, keyed by (attach-time salt,
  // round, vertex) — a pure function of the seed, so the walk trajectories
  // are independent of shard count and of which thread runs which shard.
  round_key_ = mix64(stream_salt_ ^ static_cast<std::uint64_t>(net().round()));
  arrivals_.reset(net().shards().count(), pages_);
}

// Phase 1 (parallel over source shards): spawn this round's fresh walks
// (paper: every node initiates alpha log n walks every round; spawned
// tokens join the back of the queue so older, possibly cap-delayed tokens
// go first), then forward up to cap_ tokens per vertex to uniform random
// current neighbors. Handoffs, completions, and probe finishes are staged
// per (source, destination) shard; nothing outside the shard's own
// vertices is mutated.
//
// Hot-loop shape: the whole per-vertex draw batch is generated up front
// (stream_fill_below — same stream, same draws as the former per-token
// next_below loop, so trajectories are bit-identical), the neighbor row
// base pointer and degree are hoisted, and the loop body reads the two
// token columns as flat streams. The only branch that matters is the
// completion check (taken once per walk_length forwards).
void TokenSoup::on_round_begin(std::uint32_t s, ShardContext& ctx) {
  (void)ctx;  // tokens hand off through moves_/arrivals_, not messages
  const RegularGraph& g = net().graph();
  const std::uint32_t d = g.degree();
  const ShardPlan& plan = net().shards();
  ShardCounters& counters = counters_[s];
  HandoffBucket* mv = moves_.data() + static_cast<std::size_t>(s) * pages_;
  std::uint32_t* draws = draws_[s].data();
  const std::uint32_t page_shift = page_shift_;
  const std::uint16_t spawn_meta = pack_meta(length_, /*probe=*/false);
  const Vertex shard_end = plan.end(s);
  for (Vertex v = plan.begin(s); v < shard_end; ++v) {
    TokenQueue& q = cur_[v];
    if (v + 1 < shard_end) {
      // The next queue's block lives elsewhere in the arena; start its
      // head lines early while this vertex's batch drains.
      const TokenQueue& nq = cur_[v + 1];
      prefetch_read(nq.src());
      prefetch_read(nq.meta());
    }
    if (spawning_) {
      q.append_n(net().peer_at(v), spawn_meta, walks_);
    }
    const std::size_t size = q.size();
    const std::size_t fwd = std::min<std::size_t>(size, cap_);
    if (fwd > 0) {
      stream_fill_below(round_key_, v, d, draws, fwd);
      const Vertex* row = g.row(v);
      const std::uint64_t* srcs = q.src();
      const std::uint16_t* metas = q.meta();
      for (std::size_t j = 0; j < fwd; ++j) {
        const std::uint64_t src = srcs[j];
        const std::uint32_t meta = static_cast<std::uint32_t>(metas[j]) - 2;
        const Vertex u = row[draws[j]];
        if (meta < 2) {  // steps_left hit zero: the token completes at u
          ++counters.completed;
          if (meta & kProbeBit) {
            probes_[s].push_back(ProbeDone{src, u});
          } else {
            arrivals_.stage(s, u >> page_shift, u, src);
          }
        } else {
          mv[u >> page_shift].push_back(
              src, u, static_cast<std::uint16_t>(meta));
        }
      }
    }
    if (fwd < size) {
      // Cap-delayed tokens stay at v: route them through v's own page
      // bucket so the merge interleaves them at v's canonical source
      // position (identical queue order for every shard count).
      counters.queued += size - fwd;
      const std::uint64_t* srcs = q.src();
      const std::uint16_t* metas = q.meta();
      HandoffBucket& self_bucket = mv[v >> page_shift];
      for (std::size_t j = fwd; j < size; ++j) {
        self_bucket.push_back(srcs[j], v, metas[j]);
      }
    }
    fwd_count_[v] = static_cast<std::uint32_t>(fwd);
    q.clear();
  }
}

// Phase 2 (parallel over destination shards): merge the staged handoffs
// and sample deliveries addressed to this shard, scanning pages in
// ascending order and, within a page, source shards in ascending order.
// Each bucket was appended in ascending source-vertex order, so every
// queue receives its tokens in ascending GLOBAL source order — the same
// stream the shard-keyed merge produced, bit-identical for every shard
// count, serial or parallel. The handoffs refill cur_ in place: phase 1
// cleared every queue, and a queue's vertex belongs to exactly this
// destination shard, so single-buffering is race-free. Retire samples
// that have aged out of the retention window while we own the shard.
//
// Cache blocking: one page's queues fit in L2 by construction
// (page_shift_), so the data-dependent scatter never leaves a ~1.5 MB
// window; the queue header of handoff i+kHeaderDist is still hinted
// ahead because the first touch of each line in a fresh window misses.
// A page that straddles a shard boundary is scanned by BOTH neighboring
// shards, each filing only its own vertices — concurrent reads of the
// bucket are safe, and the serial epilogue does the clearing.
// shardcheck:sharded-hook(phase-2 refill; runs on the dst shard's task inside on_round_merge's run_sharded)
void TokenSoup::merge_shard(std::uint32_t dst, Round r, Round keep_from) {
  const ShardPlan& plan = net().shards();
  const std::uint32_t shards = plan.count();
  const Vertex vbegin = plan.begin(dst);
  const Vertex vend = plan.end(dst);
  std::uint64_t alive = 0;
  const std::uint32_t p0 = vbegin >> page_shift_;
  const std::uint32_t p1 = (vend - 1) >> page_shift_;
  for (std::uint32_t p = p0; p <= p1; ++p) {
    const std::uint64_t pstart = std::uint64_t{p} << page_shift_;
    const std::uint64_t pend = std::uint64_t{p + 1} << page_shift_;
    // The last page over-extends past n; it is still wholly owned when
    // this shard's range runs to n.
    const bool owned = pstart >= vbegin && (pend <= vend || vend == plan.n());
    for (std::uint32_t src = 0; src < shards; ++src) {
      const HandoffBucket& bucket =
          moves_[static_cast<std::size_t>(src) * pages_ + p];
      const std::size_t m = bucket.size();
      const std::uint64_t* hsrc = bucket.src();
      const Vertex* hdst = bucket.dst();
      const std::uint16_t* hmeta = bucket.meta();
      if (owned) {
        for (std::size_t i = 0; i < m; ++i) {
          if (i + kHeaderDist < m) prefetch_read(&cur_[hdst[i + kHeaderDist]]);
          cur_[hdst[i]].push_back(hsrc[i], hmeta[i]);
        }
        alive += m;
      } else {
        for (std::size_t i = 0; i < m; ++i) {
          const Vertex w = hdst[i];
          if (w < vbegin || w >= vend) continue;
          cur_[w].push_back(hsrc[i], hmeta[i]);
          ++alive;
        }
      }
    }
  }
  // Phase 1 drained every queue, so the merged handoffs ARE this shard's
  // whole live population: settle the alive counter here instead of ever
  // scanning queues (tokens_alive() just sums these).
  alive_[dst] = alive;
  arrivals_.apply_to(p0, p1, vbegin, vend, r, samples_);
  for (Vertex v = vbegin; v < vend; ++v) {
    samples_[v].prune(keep_from);
  }
}

void TokenSoup::on_round_merge() {
  const Round r = net().round();
  const Vertex n = net().n();
  const std::uint32_t shards = net().shards().count();
  const Round keep_from = r - window_;
  net().run_sharded([&](std::uint32_t dst) { merge_shard(dst, r, keep_from); });

  // Serial epilogue. Buckets are cleared here, not in merge_shard: a page
  // that straddles a shard boundary is read by both neighboring shards'
  // merge tasks (clear() only resets the size, so no arena traffic from
  // serial context).
  for (HandoffBucket& bucket : moves_) bucket.clear();

  // User-facing probe hooks (canonical source order — the hook may touch
  // arbitrary shared state) and metrics.
  std::uint64_t completed = 0;
  std::uint64_t queued = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    for (const ProbeDone& p : probes_[s]) {
      if (probe_hook_) probe_hook_(p.tag, p.dst, r);
    }
    probes_[s].clear();
    completed += counters_[s].completed;
    queued += counters_[s].queued;
    counters_[s] = ShardCounters{};
  }
  for (Vertex v = 0; v < n; ++v) {
    if (fwd_count_[v] > 0) net().charge_processing(v, fwd_count_[v] * kTokenBits);
  }
  if (spawning_) {
    net().metrics().count_tokens_spawned(static_cast<std::uint64_t>(n) * walks_);
  }
  net().metrics().count_tokens_completed(completed);
  net().metrics().count_tokens_queued(queued);
}

void TokenSoup::step() {
  on_round_begin();
  net().run_sharded([this](std::uint32_t s) {
    ShardContext ctx(net(), s);
    on_round_begin(s, ctx);
  });
  on_round_merge();
}

}  // namespace churnstore
