#include "walk/token_soup.h"

#include <algorithm>

namespace churnstore {

namespace {
/// Bits a node processes to forward one token: source id + hop counter.
constexpr std::uint64_t kTokenBits = 64 + 16;
}  // namespace

TokenSoup::TokenSoup(const WalkConfig& config) : config_(config) {}

TokenSoup::TokenSoup(Network& net, const WalkConfig& config)
    : TokenSoup(config) {
  on_attach(net);
}

void TokenSoup::on_attach(Network& net_ref) {
  Protocol::on_attach(net_ref);
  const std::uint32_t n = net().n();
  stream_salt_ = net().protocol_rng().fork(0x736f7570ULL).next();
  walks_ = churnstore::walks_per_round(n, config_);
  length_ = churnstore::walk_length(n, config_);
  cap_ = churnstore::forward_cap(n, config_);
  tau_ = churnstore::tau_rounds(n, config_);
  window_ = static_cast<Round>(config_.window_mult * tau_) + 2;
  const ShardPlan& plan = net().shards();
  const std::uint32_t shards = plan.count();
  // Token queues and handoff buckets are arena-backed: a queue draws from
  // the arena of the shard owning its vertex, a bucket from its SOURCE
  // shard's arena — always the task that grows it. Queues are pre-sized to
  // the expected steady load (walks * length tokens in flight per vertex):
  // without this, warm-up grows every queue through the same doubling
  // chain in lockstep, stranding each abandoned size class in the
  // freelists (~0.5 GB of dead blocks at n=1M).
  cur_.clear();
  cur_.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    Arena* a = &net().shard_arena(plan.shard_of(v));
    cur_.emplace_back(ArenaAllocator<Token>(a));
    cur_.back().reserve(static_cast<std::size_t>(walks_) * length_);
  }
  // Sample buffers allocate their cohort groups from the arena of the
  // shard owning their vertex: growth happens on the destination shard's
  // task (ShardedArrivals::apply_to), pruning in the same task's merge
  // slice, churn clears in serial context — always the arena's owner.
  samples_.assign(n, SampleBuffer{});
  for (Vertex v = 0; v < n; ++v) {
    samples_[v].set_arena(&net().shard_arena(plan.shard_of(v)));
    // Retention holds window_+1 round-groups, +1 for the round that lands
    // before the next prune.
    samples_[v].reserve_rounds(static_cast<std::uint32_t>(window_) + 2);
  }
  moves_.clear();
  moves_.reserve(static_cast<std::size_t>(shards) * shards);
  for (std::uint32_t src = 0; src < shards; ++src) {
    for (std::uint32_t dst = 0; dst < shards; ++dst) {
      moves_.emplace_back(ArenaAllocator<Handoff>(&net().shard_arena(src)));
    }
  }
  probes_.assign(shards, {});
  counters_.assign(shards, {});
  fwd_count_.assign(n, 0);
}

void TokenSoup::on_churn(Vertex v, PeerId, PeerId) {
  // The peer at v is gone: its queued tokens and its learned samples die
  // with it (the fresh peer starts with empty state).
  net().metrics().count_tokens_lost(cur_[v].size());
  cur_[v].clear();
  samples_[v].clear();
}

void TokenSoup::inject_probe(Vertex v, std::uint64_t tag, std::uint32_t steps) {
  cur_[v].push_back(Token{tag, static_cast<std::uint16_t>(steps), 1});
}

std::size_t TokenSoup::tokens_alive() const noexcept {
  std::size_t acc = 0;
  for (const auto& q : cur_) acc += q.size();
  return acc;
}

void TokenSoup::on_round_begin() {
  // Every vertex draws from its own stream, keyed by (attach-time salt,
  // round, vertex) — a pure function of the seed, so the walk trajectories
  // are independent of shard count and of which thread runs which shard.
  round_key_ = mix64(stream_salt_ ^ static_cast<std::uint64_t>(net().round()));
  arrivals_.reset(net().shards().count());
}

// Phase 1 (parallel over source shards): spawn this round's fresh walks
// (paper: every node initiates alpha log n walks every round; spawned
// tokens join the back of the queue so older, possibly cap-delayed tokens
// go first), then forward up to cap_ tokens per vertex to uniform random
// current neighbors. Handoffs, completions, and probe finishes are staged
// per (source, destination) shard; nothing outside the shard's own
// vertices is mutated.
void TokenSoup::on_round_begin(std::uint32_t s, ShardContext& ctx) {
  (void)ctx;  // tokens hand off through moves_/arrivals_, not messages
  const RegularGraph& g = net().graph();
  const std::uint32_t d = g.degree();
  const ShardPlan& plan = net().shards();
  const std::uint32_t shards = plan.count();
  ShardCounters& counters = counters_[s];
  for (Vertex v = plan.begin(s); v < plan.end(s); ++v) {
    auto& q = cur_[v];
    if (spawning_) {
      const PeerId self = net().peer_at(v);
      for (std::uint32_t i = 0; i < walks_; ++i) {
        q.push_back(Token{self, static_cast<std::uint16_t>(length_), 0});
      }
    }
    const std::size_t fwd = std::min<std::size_t>(q.size(), cap_);
    if (fwd > 0) {
      Rng rng = stream_rng(round_key_, v);
      for (std::size_t j = 0; j < fwd; ++j) {
        Token t = q[j];
        const Vertex u =
            g.neighbor(v, static_cast<std::uint32_t>(rng.next_below(d)));
        --t.steps_left;
        if (t.steps_left == 0) {
          ++counters.completed;
          if (t.probe) {
            probes_[s].push_back(ProbeDone{t.src_or_tag, u});
          } else {
            arrivals_.stage(s, plan.shard_of(u), u, t.src_or_tag);
          }
        } else {
          moves_[static_cast<std::size_t>(s) * shards + plan.shard_of(u)]
              .push_back(Handoff{t.src_or_tag, u, t.steps_left, t.probe});
        }
      }
    }
    if (fwd < q.size()) {
      counters.queued += q.size() - fwd;
      for (std::size_t j = fwd; j < q.size(); ++j) {
        const Token& t = q[j];
        moves_[static_cast<std::size_t>(s) * shards + s].push_back(
            Handoff{t.src_or_tag, v, t.steps_left, t.probe});
      }
    }
    fwd_count_[v] = static_cast<std::uint32_t>(fwd);
    q.clear();
  }
}

void TokenSoup::on_round_merge() {
  const Round r = net().round();
  const Vertex n = net().n();
  const ShardPlan& plan = net().shards();
  const std::uint32_t shards = plan.count();

  // Phase 2 (parallel over destination shards): merge the staged handoffs
  // and sample deliveries addressed to this shard, scanning source shards
  // in ascending order. With contiguous shards scanned in ascending vertex
  // order, the merged stream equals the ascending global source-vertex
  // order for EVERY shard count — token queue order and sample insertion
  // order are bit-identical serial or parallel. The handoffs refill cur_
  // in place: phase 1 cleared every queue, and a queue's vertex belongs to
  // exactly this destination shard, so single-buffering is race-free.
  // Retire samples that have aged out of the retention window while we own
  // the shard.
  const Round keep_from = r - window_;
  net().run_sharded([&](std::uint32_t dst) {
    for (std::uint32_t src = 0; src < shards; ++src) {
      auto& bucket = moves_[static_cast<std::size_t>(src) * shards + dst];
      for (const Handoff& h : bucket) {
        cur_[h.dst].push_back(Token{h.src_or_tag, h.steps_left, h.probe});
      }
      bucket.clear();
    }
    arrivals_.apply_to(dst, r, samples_);
    for (Vertex v = plan.begin(dst); v < plan.end(dst); ++v) {
      samples_[v].prune(keep_from);
    }
  });

  // Serial epilogue: user-facing probe hooks (canonical source order — the
  // hook may touch arbitrary shared state) and metrics.
  std::uint64_t completed = 0;
  std::uint64_t queued = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    for (const ProbeDone& p : probes_[s]) {
      if (probe_hook_) probe_hook_(p.tag, p.dst, r);
    }
    probes_[s].clear();
    completed += counters_[s].completed;
    queued += counters_[s].queued;
    counters_[s] = ShardCounters{};
  }
  for (Vertex v = 0; v < n; ++v) {
    if (fwd_count_[v] > 0) net().charge_processing(v, fwd_count_[v] * kTokenBits);
  }
  if (spawning_) {
    net().metrics().count_tokens_spawned(static_cast<std::uint64_t>(n) * walks_);
  }
  net().metrics().count_tokens_completed(completed);
  net().metrics().count_tokens_queued(queued);
}

void TokenSoup::step() {
  on_round_begin();
  net().run_sharded([this](std::uint32_t s) {
    ShardContext ctx(net(), s);
    on_round_begin(s, ctx);
  });
  on_round_merge();
}

}  // namespace churnstore
