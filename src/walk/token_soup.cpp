#include "walk/token_soup.h"

#include <algorithm>

namespace churnstore {

namespace {
/// Bits a node processes to forward one token: source id + hop counter.
constexpr std::uint64_t kTokenBits = 64 + 16;
}  // namespace

TokenSoup::TokenSoup(Network& net, const WalkConfig& config)
    : net_(net),
      config_(config),
      rng_(net.protocol_rng().fork(0x736f7570ULL)),
      walks_(churnstore::walks_per_round(net.n(), config)),
      length_(churnstore::walk_length(net.n(), config)),
      cap_(churnstore::forward_cap(net.n(), config)),
      tau_(churnstore::tau_rounds(net.n(), config)),
      window_(static_cast<Round>(config.window_mult * tau_) + 2),
      cur_(net.n()),
      next_(net.n()),
      samples_(net.n()) {
  net_.add_churn_listener(
      [this](Vertex v, PeerId, PeerId) { on_churn(v); });
}

void TokenSoup::on_churn(Vertex v) {
  // The peer at v is gone: its queued tokens and its learned samples die
  // with it (the fresh peer starts with empty state).
  net_.metrics().count_tokens_lost(cur_[v].size());
  cur_[v].clear();
  samples_[v].clear();
}

void TokenSoup::inject_probe(Vertex v, std::uint64_t tag, std::uint32_t steps) {
  cur_[v].push_back(Token{tag, static_cast<std::uint16_t>(steps), 1});
}

std::size_t TokenSoup::tokens_alive() const noexcept {
  std::size_t acc = 0;
  for (const auto& q : cur_) acc += q.size();
  return acc;
}

void TokenSoup::step() {
  const Round r = net_.round();
  const RegularGraph& g = net_.graph();
  const std::uint32_t d = g.degree();
  const Vertex n = g.n();

  // Spawn this round's fresh walks (paper: every node initiates alpha log n
  // walks every round). Spawned tokens join the back of the queue, so
  // older (possibly cap-delayed) tokens are forwarded first.
  if (spawning_) {
    for (Vertex v = 0; v < n; ++v) {
      const PeerId self = net_.peer_at(v);
      for (std::uint32_t i = 0; i < walks_; ++i) {
        cur_[v].push_back(
            Token{self, static_cast<std::uint16_t>(length_), 0});
      }
    }
    net_.metrics().count_tokens_spawned(static_cast<std::uint64_t>(n) * walks_);
  }

  // Advance: each node forwards up to cap_ tokens to uniform random current
  // neighbors; the remainder wait (and may be destroyed by churn first).
  std::uint64_t completed = 0;
  std::uint64_t queued = 0;
  for (Vertex v = 0; v < n; ++v) {
    auto& q = cur_[v];
    const std::size_t fwd = std::min<std::size_t>(q.size(), cap_);
    for (std::size_t j = 0; j < fwd; ++j) {
      Token t = q[j];
      const Vertex u = g.neighbor(v, static_cast<std::uint32_t>(rng_.next_below(d)));
      --t.steps_left;
      if (t.steps_left == 0) {
        ++completed;
        if (t.probe) {
          if (probe_hook_) probe_hook_(t.src_or_tag, u, r);
        } else {
          samples_[u].add(r, t.src_or_tag);
        }
      } else {
        next_[u].push_back(t);
      }
    }
    if (fwd < q.size()) {
      queued += q.size() - fwd;
      for (std::size_t j = fwd; j < q.size(); ++j) next_[v].push_back(q[j]);
    }
    if (fwd > 0) net_.charge_processing(v, fwd * kTokenBits);
    q.clear();
  }
  cur_.swap(next_);
  net_.metrics().count_tokens_completed(completed);
  net_.metrics().count_tokens_queued(queued);

  // Retire samples that have aged out of the retention window.
  const Round keep_from = r - window_;
  for (Vertex v = 0; v < n; ++v) samples_[v].prune(keep_from);
}

}  // namespace churnstore
