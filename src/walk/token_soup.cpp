#include "walk/token_soup.h"

#include <algorithm>

namespace churnstore {

namespace {
/// Bits a node processes to forward one token: source id + hop counter.
constexpr std::uint64_t kTokenBits = 64 + 16;
}  // namespace

TokenSoup::TokenSoup(const WalkConfig& config) : config_(config) {}

TokenSoup::TokenSoup(Network& net, const WalkConfig& config)
    : TokenSoup(config) {
  on_attach(net);
}

void TokenSoup::on_attach(Network& net_ref) {
  Protocol::on_attach(net_ref);
  const std::uint32_t n = net().n();
  rng_ = net().protocol_rng().fork(0x736f7570ULL);
  walks_ = churnstore::walks_per_round(n, config_);
  length_ = churnstore::walk_length(n, config_);
  cap_ = churnstore::forward_cap(n, config_);
  tau_ = churnstore::tau_rounds(n, config_);
  window_ = static_cast<Round>(config_.window_mult * tau_) + 2;
  cur_.assign(n, {});
  next_.assign(n, {});
  samples_.assign(n, SampleBuffer{});
}

void TokenSoup::on_churn(Vertex v, PeerId, PeerId) {
  // The peer at v is gone: its queued tokens and its learned samples die
  // with it (the fresh peer starts with empty state).
  net().metrics().count_tokens_lost(cur_[v].size());
  cur_[v].clear();
  samples_[v].clear();
}

void TokenSoup::inject_probe(Vertex v, std::uint64_t tag, std::uint32_t steps) {
  cur_[v].push_back(Token{tag, static_cast<std::uint16_t>(steps), 1});
}

std::size_t TokenSoup::tokens_alive() const noexcept {
  std::size_t acc = 0;
  for (const auto& q : cur_) acc += q.size();
  return acc;
}

void TokenSoup::step() {
  const Round r = net().round();
  const RegularGraph& g = net().graph();
  const std::uint32_t d = g.degree();
  const Vertex n = g.n();

  // Spawn this round's fresh walks (paper: every node initiates alpha log n
  // walks every round). Spawned tokens join the back of the queue, so
  // older (possibly cap-delayed) tokens are forwarded first.
  if (spawning_) {
    for (Vertex v = 0; v < n; ++v) {
      const PeerId self = net().peer_at(v);
      for (std::uint32_t i = 0; i < walks_; ++i) {
        cur_[v].push_back(
            Token{self, static_cast<std::uint16_t>(length_), 0});
      }
    }
    net().metrics().count_tokens_spawned(static_cast<std::uint64_t>(n) * walks_);
  }

  // Advance: each node forwards up to cap_ tokens to uniform random current
  // neighbors; the remainder wait (and may be destroyed by churn first).
  std::uint64_t completed = 0;
  std::uint64_t queued = 0;
  for (Vertex v = 0; v < n; ++v) {
    auto& q = cur_[v];
    const std::size_t fwd = std::min<std::size_t>(q.size(), cap_);
    for (std::size_t j = 0; j < fwd; ++j) {
      Token t = q[j];
      const Vertex u = g.neighbor(v, static_cast<std::uint32_t>(rng_.next_below(d)));
      --t.steps_left;
      if (t.steps_left == 0) {
        ++completed;
        if (t.probe) {
          if (probe_hook_) probe_hook_(t.src_or_tag, u, r);
        } else {
          samples_[u].add(r, t.src_or_tag);
        }
      } else {
        next_[u].push_back(t);
      }
    }
    if (fwd < q.size()) {
      queued += q.size() - fwd;
      for (std::size_t j = fwd; j < q.size(); ++j) next_[v].push_back(q[j]);
    }
    if (fwd > 0) net().charge_processing(v, fwd * kTokenBits);
    q.clear();
  }
  cur_.swap(next_);
  net().metrics().count_tokens_completed(completed);
  net().metrics().count_tokens_queued(queued);

  // Retire samples that have aged out of the retention window.
  const Round keep_from = r - window_;
  for (Vertex v = 0; v < n; ++v) samples_[v].prune(keep_from);
}

}  // namespace churnstore
