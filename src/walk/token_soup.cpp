#include "walk/token_soup.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <new>

#include "util/prefetch.h"

namespace churnstore {

namespace {
/// Bits a node processes to forward one token: source id + hop counter.
constexpr std::uint64_t kTokenBits = 64 + 16;
/// Scatter-mode auto thresholds (by destination page count, a pure function
/// of n and the walk config — never of the shard count, so every shards=S
/// run of the same workload picks the same mode and stays bit-identical).
/// With <= kDirectMaxPages the bucket tails fit in a handful of lines and
/// staging is pure overhead; up to kWcSingleMaxPages one WC table
/// (3 lines + count per page, ~200 B each) stays L2-resident. Both cut
/// points are measured, not theoretical: on the baseline host single-level
/// WC with non-temporal flushes wins ~+20% at 64 pages (n=16k) and ties
/// direct at ~1000 pages (n=1M, 188 KB table), so single carries the whole
/// measurable range and two-level is the memory-bounded fallback for page
/// counts whose WC table would genuinely thrash (beyond what this host can
/// hold; forcing two-level inside the measured range costs ~15%).
constexpr std::uint32_t kDirectMaxPages = 4;
constexpr std::uint32_t kWcSingleMaxPages = 2048;
/// Two-level sizing: at most kMaxRuns coarse runs per shard (the run WC
/// table must be L1-resident), and source chunks sized so one chunk's run
/// contents (~kRunWindowBytes) stay cache-resident for the immediate
/// re-read in scatter_runs_to_final.
constexpr std::uint32_t kMaxRuns = 48;
constexpr std::uint64_t kRunWindowBytes = std::uint64_t{6} << 20;
}  // namespace

// The heap fallback matches the arena's line alignment so the WC contract
// (64-byte-aligned bucket blocks) holds for arena-less standalone uses too.
std::byte* TokenSoup::alloc_block(Arena* a, std::size_t bytes) {
  if (a != nullptr) return static_cast<std::byte*>(a->allocate(bytes));
  return static_cast<std::byte*>(
      ::operator new(bytes, std::align_val_t{Arena::kLineAlign}));
}

void TokenSoup::free_block(Arena* a, std::byte* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (a != nullptr) {
    a->deallocate(p, bytes);
  } else {
    ::operator delete(p, std::align_val_t{Arena::kLineAlign});
  }
}

// Growth for the single-block SoA containers: capacity is whatever the
// arena's size class actually holds (Arena::usable_size), so the class
// round-up becomes extra tokens. The byte count handed back to
// deallocate lands in the same size class the allocation came from
// (cap * kTokenBytes > the previous class bound by construction), so the
// block recycles into its own freelist.
void TokenSoup::TokenQueue::grow(std::size_t min_cap) {
  std::size_t want = std::size_t{cap_} * 2;
  if (want < min_cap) want = min_cap;
  const std::size_t new_cap = Arena::usable_size(want * kTokenBytes) / kTokenBytes;
  std::byte* nb = alloc_block(arena_, new_cap * kTokenBytes);
  if (size_ > 0) {
    std::memcpy(nb, base_, std::size_t{size_} * 8);
    std::memcpy(nb + new_cap * 8, meta(), std::size_t{size_} * 2);
  }
  free_block(arena_, base_, std::size_t{cap_} * kTokenBytes);
  base_ = nb;
  cap_ = static_cast<std::uint32_t>(new_cap);
}

// Handoff capacity keeps the WC alignment contract: a multiple of 16
// tokens, so the dst column (cap * 8) and meta column (cap * 12) byte
// offsets are multiples of 64 and every column base is line-aligned.
// Growth copies whole old columns (cap_ elements, not size_): the WC
// front end stages committed lines PAST size_ and only publishes the
// count at wc_commit time, so everything up to the old capacity may be
// live. Copying the garbage tail is in-bounds and harmless.
void TokenSoup::HandoffBucket::grow(std::size_t min_cap) {
  std::size_t want = std::size_t{cap_} * 2;
  if (want < min_cap) want = min_cap;
  if (want < 16) want = 16;
  std::size_t new_cap;
  for (;;) {
    new_cap =
        (Arena::usable_size(want * kTokenBytes) / kTokenBytes) & ~std::size_t{15};
    if (new_cap >= min_cap) break;
    want += 16;
  }
  std::byte* nb = alloc_block(arena_, new_cap * kTokenBytes);
  if (cap_ > 0) {
    std::memcpy(nb, base_, std::size_t{cap_} * 8);
    std::memcpy(nb + new_cap * 8, dst(), std::size_t{cap_} * 4);
    std::memcpy(nb + new_cap * 12, meta(), std::size_t{cap_} * 2);
  }
  free_block(arena_, base_, std::size_t{cap_} * kTokenBytes);
  base_ = nb;
  cap_ = static_cast<std::uint32_t>(new_cap);
}

TokenSoup::TokenSoup(const WalkConfig& config) : config_(config) {}

TokenSoup::TokenSoup(Network& net, const WalkConfig& config)
    : TokenSoup(config) {
  on_attach(net);
}

void TokenSoup::on_attach(Network& net_ref) {
  Protocol::on_attach(net_ref);
  const std::uint32_t n = net().n();
  stream_salt_ = net().protocol_rng().fork(0x736f7570ULL).next();
  walks_ = churnstore::walks_per_round(n, config_);
  length_ = churnstore::walk_length(n, config_);
  cap_ = churnstore::forward_cap(n, config_);
  tau_ = churnstore::tau_rounds(n, config_);
  window_ = static_cast<Round>(config_.window_mult * tau_) + 2;
  assert(length_ <= kMaxSteps && "walk length must fit the packed meta");
  const ShardPlan& plan = net().shards();
  const std::uint32_t shards = plan.count();
  // Token queues and handoff buckets are arena-backed: a queue draws from
  // the arena of the shard owning its vertex, a bucket from its SOURCE
  // shard's arena — always the task that grows it. Queues are pre-sized to
  // the expected steady load (walks * length tokens in flight per vertex):
  // without this, warm-up grows every queue through the same doubling
  // chain in lockstep, stranding each abandoned size class in the
  // freelists (~0.5 GB of dead blocks at n=1M).
  cur_.clear();
  cur_.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    Arena* a = &net().shard_arena(plan.shard_of(v));
    cur_.emplace_back(a);
    cur_.back().reserve(static_cast<std::size_t>(walks_) * length_);
  }
  // Sample buffers allocate their cohort groups from the arena of the
  // shard owning their vertex: growth happens on the destination shard's
  // task (ShardedArrivals::apply_to), pruning in the same task's merge
  // slice, churn clears in serial context — always the arena's owner.
  samples_.assign(n, SampleBuffer{});
  for (Vertex v = 0; v < n; ++v) {
    samples_[v].set_arena(&net().shard_arena(plan.shard_of(v)));
    // Retention holds window_+1 round-groups, +1 for the round that lands
    // before the next prune.
    samples_[v].reserve_rounds(static_cast<std::uint32_t>(window_) + 2);
  }
  // Destination pages: the merge refill is a data-dependent scatter into
  // the token queues, and at n=1M those queues span hundreds of MB — a
  // shard-granular scatter pays DRAM latency per token. Size a power-of-
  // two vertex page so one page's queues (data + header + size-class
  // slack) stay inside ~1.5 MB of L2, stage handoffs per (src shard,
  // dst page), and let the merge walk page by page so every queue touch
  // lands in a cache-resident window.
  const std::uint64_t per_vertex_bytes =
      static_cast<std::uint64_t>(walks_) * length_ * TokenQueue::kTokenBytes +
      64;
  constexpr std::uint64_t kMergeWindowBytes = 3u << 19;  // ~1.5 MB of L2
  page_shift_ = 0;
  while (page_shift_ < 16 &&
         (std::uint64_t{2} << page_shift_) * per_vertex_bytes <=
             kMergeWindowBytes) {
    ++page_shift_;
  }
  pages_ = n > 0 ? ((n - 1) >> page_shift_) + 1 : 1;
  // Pre-size each (src, page) bucket to its share of the steady in-flight
  // population (walks * length per vertex, near-uniform walk targets).
  // Growth past the reserve still works, it just reallocates once; the
  // reserve exists so steady-state rounds never double a hundreds-of-MB
  // column (the old+new copy overlap was a maxrss spike at n=1M).
  moves_.clear();
  moves_.reserve(static_cast<std::size_t>(shards) * pages_);
  const std::uint64_t page_span = std::uint64_t{1} << page_shift_;
  for (std::uint32_t src = 0; src < shards; ++src) {
    const std::uint64_t src_span = plan.end(src) - plan.begin(src);
    for (std::uint32_t page = 0; page < pages_; ++page) {
      moves_.emplace_back(&net().shard_arena(src));
      if (n > 0) {
        const std::uint64_t expected = static_cast<std::uint64_t>(walks_) *
                                       length_ * src_span * page_span / n;
        moves_.back().reserve(expected + expected / 16 + 8);
      }
    }
  }
  probes_.clear();
  probes_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    probes_.emplace_back(ArenaAllocator<ProbeDone>(&net().shard_arena(s)));
  }
  counters_.assign(shards, {});
  fwd_count_.assign(n, 0);
  draws_.assign(shards, std::vector<std::uint32_t>(cap_));
  alive_.assign(shards, 0);
  // Scatter mode: resolved from the page count alone (shard-independent, so
  // S-invariance cannot depend on it). The WC front ends point into moves_
  // and runs_, which never reallocate after attach.
  mode_ = config_.scatter;
  if (mode_ == ScatterMode::kAuto) {
    mode_ = pages_ <= kDirectMaxPages    ? ScatterMode::kDirect
            : pages_ <= kWcSingleMaxPages ? ScatterMode::kWcSingle
                                          : ScatterMode::kWcTwoLevel;
  }
  runs_.clear();
  fwc_.clear();
  rwc_.clear();
  run_shift_ = 0;
  runs_n_ = 0;
  chunk_ = 0;
  if (mode_ == ScatterMode::kWcSingle || mode_ == ScatterMode::kWcTwoLevel) {
    fwc_.resize(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      fwc_[s].attach(moves_.data() + static_cast<std::size_t>(s) * pages_,
                     pages_);
    }
  }
  if (mode_ == ScatterMode::kWcTwoLevel) {
    while ((((pages_ - 1) >> run_shift_) + 1) > kMaxRuns) ++run_shift_;
    runs_n_ = ((pages_ - 1) >> run_shift_) + 1;
    runs_.reserve(static_cast<std::size_t>(shards) * runs_n_);
    for (std::uint32_t src = 0; src < shards; ++src) {
      for (std::uint32_t r = 0; r < runs_n_; ++r) {
        runs_.emplace_back(&net().shard_arena(src));
      }
    }
    const std::uint64_t emit_bytes_per_vertex =
        std::max<std::uint64_t>(std::uint64_t{walks_} * length_ *
                                    HandoffBucket::kTokenBytes,
                                1);
    chunk_ = static_cast<Vertex>(std::max<std::uint64_t>(
        kRunWindowBytes / emit_bytes_per_vertex, 1));
    rwc_.resize(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      rwc_[s].attach(runs_.data() + static_cast<std::size_t>(s) * runs_n_,
                     runs_n_);
    }
  }
}

void TokenSoup::on_churn(Vertex v, PeerId, PeerId) {
  // The peer at v is gone: its queued tokens and its learned samples die
  // with it (the fresh peer starts with empty state).
  net().metrics().count_tokens_lost(cur_[v].size());
  alive_[net().shards().shard_of(v)] -= cur_[v].size();
  cur_[v].clear();
  samples_[v].clear();
}

void TokenSoup::inject_probe(Vertex v, std::uint64_t tag, std::uint32_t steps) {
  assert(steps >= 1 && steps <= kMaxSteps);
  cur_[v].push_back(tag, pack_meta(steps, /*probe=*/true));
  ++alive_[net().shards().shard_of(v)];
}

std::size_t TokenSoup::tokens_alive() const noexcept {
  std::size_t acc = 0;
  for (const std::uint64_t a : alive_) acc += a;
  return acc;
}

void TokenSoup::on_round_begin() {
  // Every vertex draws from its own stream, keyed by (attach-time salt,
  // round, vertex) — a pure function of the seed, so the walk trajectories
  // are independent of shard count and of which thread runs which shard.
  round_key_ = mix64(stream_salt_ ^ static_cast<std::uint64_t>(net().round()));
  arrivals_.reset(net().shards().count(), pages_);
}

// Phase 1 (parallel over source shards): spawn this round's fresh walks
// (paper: every node initiates alpha log n walks every round; spawned
// tokens join the back of the queue so older, possibly cap-delayed tokens
// go first), then forward up to cap_ tokens per vertex to uniform random
// current neighbors. Handoffs, completions, and probe finishes are staged
// per (source, destination) shard; nothing outside the shard's own
// vertices is mutated.
//
// Hot-loop shape: the whole per-vertex draw batch is generated up front
// (stream_fill_below — same stream, same draws as the former per-token
// next_below loop, so trajectories are bit-identical), the neighbor row
// base pointer and degree are hoisted, and the loop body reads the two
// token columns as flat streams. The only branch that matters is the
// completion check (taken once per walk_length forwards).
// shardcheck:sharded-hook(phase-1 forward core; runs on shard s's task from on_round_begin(s))
template <class EmitMove, class EmitDone>
void TokenSoup::forward_range(std::uint32_t s, Vertex v0, Vertex v1,
                              EmitMove&& emit_move, EmitDone&& emit_done) {
  const RegularGraph& g = net().graph();
  const std::uint32_t d = g.degree();
  ShardCounters& counters = counters_[s];
  std::uint32_t* draws = draws_[s].data();
  const std::uint16_t spawn_meta = pack_meta(length_, /*probe=*/false);
  for (Vertex v = v0; v < v1; ++v) {
    TokenQueue& q = cur_[v];
    if (v + 1 < v1) {
      // The next queue's block lives elsewhere in the arena; start its
      // head lines early while this vertex's batch drains.
      const TokenQueue& nq = cur_[v + 1];
      prefetch_read(nq.src());
      prefetch_read(nq.meta());
    }
    if (spawning_) {
      q.append_n(net().peer_at(v), spawn_meta, walks_);
    }
    const std::size_t size = q.size();
    const std::size_t fwd = std::min<std::size_t>(size, cap_);
    if (fwd > 0) {
      stream_fill_below(round_key_, v, d, draws, fwd);
      const Vertex* row = g.row(v);
      const std::uint64_t* srcs = q.src();
      const std::uint16_t* metas = q.meta();
      for (std::size_t j = 0; j < fwd; ++j) {
        const std::uint64_t src = srcs[j];
        const std::uint32_t meta = static_cast<std::uint32_t>(metas[j]) - 2;
        const Vertex u = row[draws[j]];
        if (meta < 2) {  // steps_left hit zero: the token completes at u
          ++counters.completed;
          if (meta & kProbeBit) {
            probes_[s].push_back(ProbeDone{src, u});
          } else {
            emit_done(src, u);
          }
        } else {
          emit_move(src, u, static_cast<std::uint16_t>(meta));
        }
      }
    }
    if (fwd < size) {
      // Cap-delayed tokens stay at v: route them through v's own page
      // bucket so the merge interleaves them at v's canonical source
      // position (identical queue order for every shard count). Their
      // meta is undecremented, hence always >= 2 — never mistakable for
      // a completion when riding the two-level runs.
      counters.queued += size - fwd;
      const std::uint64_t* srcs = q.src();
      const std::uint16_t* metas = q.meta();
      for (std::size_t j = fwd; j < size; ++j) {
        emit_move(srcs[j], v, metas[j]);
      }
    }
    fwd_count_[v] = static_cast<std::uint32_t>(fwd);
    q.clear();
  }
}

// shardcheck:sharded-hook(two-level pass B; runs on shard s's task from on_round_begin(s))
void TokenSoup::scatter_runs_to_final(std::uint32_t s) {
  HandoffBucket* runs = runs_.data() + static_cast<std::size_t>(s) * runs_n_;
  auto& fwc = fwc_[s];
  const std::uint32_t page_shift = page_shift_;
  for (std::uint32_t r = 0; r < runs_n_; ++r) {
    HandoffBucket& run = runs[r];
    const std::size_t m = run.size();
    const std::uint64_t* rsrc = run.src();
    const Vertex* rdst = run.dst();
    const std::uint16_t* rmeta = run.meta();
    // A run covers <= 2^run_shift_ consecutive pages, so this sequential
    // scan feeds the final WC table with at most that many active
    // streams — cache-resident by construction. Scan order equals
    // emission order, so each final bucket receives exactly the
    // sequence a direct push would have produced.
    for (std::size_t i = 0; i < m; ++i) {
      const Vertex u = rdst[i];
      const std::uint16_t meta = rmeta[i];
      if (meta < 2) {
        arrivals_.stage(s, u >> page_shift, u, rsrc[i]);
      } else {
        fwc.push(u >> page_shift, rsrc[i], u, meta);
      }
    }
    run.clear();
  }
}

void TokenSoup::on_round_begin(std::uint32_t s, ShardContext& ctx) {
  (void)ctx;  // tokens hand off through moves_/arrivals_, not messages
  const ShardPlan& plan = net().shards();
  const Vertex v0 = plan.begin(s);
  const Vertex v1 = plan.end(s);
  const std::uint32_t page_shift = page_shift_;
  HandoffBucket* mv = moves_.data() + static_cast<std::size_t>(s) * pages_;
  switch (mode_) {
    case ScatterMode::kDirect:
      forward_range(
          s, v0, v1,
          [&](std::uint64_t src, Vertex u, std::uint16_t m) {
            mv[u >> page_shift].push_back(src, u, m);
          },
          [&](std::uint64_t src, Vertex u) {
            arrivals_.stage(s, u >> page_shift, u, src);
          });
      break;
    case ScatterMode::kWcSingle: {
      auto& fwc = fwc_[s];
      forward_range(
          s, v0, v1,
          [&](std::uint64_t src, Vertex u, std::uint16_t m) {
            fwc.push(u >> page_shift, src, u, m);
          },
          [&](std::uint64_t src, Vertex u) {
            arrivals_.stage(s, u >> page_shift, u, src);
          });
      fwc.flush_all();
      break;
    }
    case ScatterMode::kWcTwoLevel: {
      // Pass A partitions emissions into a few dozen coarse runs (WC with
      // plain stores — the runs are re-read within the chunk, so streaming
      // past the cache would hurt); pass B demuxes each run into the final
      // buckets / arrival staging. Source vertices go in chunks so the
      // transient run memory stays a few MB. Non-probe completions ride
      // the runs tagged by their meta < 2; probes complete inside
      // forward_range as always.
      auto& rwc = rwc_[s];
      const std::uint32_t lvl1_shift = page_shift_ + run_shift_;
      for (Vertex c0 = v0; c0 < v1; c0 += chunk_) {
        const Vertex c1 = c0 + chunk_ < v1 ? c0 + chunk_ : v1;
        forward_range(
            s, c0, c1,
            [&](std::uint64_t src, Vertex u, std::uint16_t m) {
              rwc.push(u >> lvl1_shift, src, u, m);
            },
            [&](std::uint64_t src, Vertex u) {
              rwc.push(u >> lvl1_shift, src, u, /*meta=*/0);
            });
        rwc.flush_all();
        scatter_runs_to_final(s);
      }
      fwc_[s].flush_all();
      break;
    }
    case ScatterMode::kAuto:
      assert(false && "scatter mode is resolved at attach");
      break;
  }
}

// Phase 2 (parallel over destination shards): merge the staged handoffs
// and sample deliveries addressed to this shard, scanning pages in
// ascending order and, within a page, source shards in ascending order.
// Each bucket was appended in ascending source-vertex order, so every
// queue receives its tokens in ascending GLOBAL source order — the same
// stream the shard-keyed merge produced, bit-identical for every shard
// count, serial or parallel. The handoffs refill cur_ in place: phase 1
// cleared every queue, and a queue's vertex belongs to exactly this
// destination shard, so single-buffering is race-free. Retire samples
// that have aged out of the retention window while we own the shard.
//
// Cache blocking: one page's queues fit in L2 by construction
// (page_shift_), so the data-dependent scatter never leaves a ~1.5 MB
// window. A page that straddles a shard boundary is scanned by BOTH
// neighboring shards, each filing only its own vertices — concurrent
// reads of the bucket are safe, and the serial epilogue does the
// clearing.
// shardcheck:sharded-hook(phase-2 refill; runs on the dst shard's task inside on_round_merge's run_sharded)
void TokenSoup::merge_shard(std::uint32_t dst, Round r, Round keep_from) {
  const ShardPlan& plan = net().shards();
  const std::uint32_t shards = plan.count();
  const Vertex vbegin = plan.begin(dst);
  const Vertex vend = plan.end(dst);
  std::uint64_t alive = 0;
  const std::uint32_t p0 = vbegin >> page_shift_;
  const std::uint32_t p1 = (vend - 1) >> page_shift_;
  // Owned pages refill by counting sort: one histogram pass over the
  // bucket dst columns, one exact reserve per touched vertex, then a raw
  // cursor scatter. That trades a second sequential read of the bucket for
  // dropping the per-token queue-header load, capacity branch, and size
  // writeback — the cursor array is a few KB and stays in L1 while the
  // token columns stream through the page's L2 window. Order per queue is
  // unchanged: buckets are visited src-shard-major exactly as before, and
  // each cursor advances in bucket scan order.
  const std::uint32_t span = std::uint32_t{1} << page_shift_;
  struct Cursor {
    std::uint64_t* s;
    std::uint16_t* m;
  };
  // Scratch draws from this shard's arena (alloc and free both happen on
  // this task): after the first round both pops come off the freelist, so
  // the refill stays heap-quiet instead of paying two mallocs per shard
  // per round.
  Arena* arena = &net().shard_arena(dst);
  std::vector<std::uint32_t, ArenaAllocator<std::uint32_t>> cnt(
      span, ArenaAllocator<std::uint32_t>(arena));
  std::vector<Cursor, ArenaAllocator<Cursor>> cursor(
      span, ArenaAllocator<Cursor>(arena));
  for (std::uint32_t p = p0; p <= p1; ++p) {
    const std::uint64_t pstart = std::uint64_t{p} << page_shift_;
    const std::uint64_t pend = std::uint64_t{p + 1} << page_shift_;
    // The last page over-extends past n; it is still wholly owned when
    // this shard's range runs to n.
    const bool owned = pstart >= vbegin && (pend <= vend || vend == plan.n());
    if (owned) {
      const std::uint32_t used = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(pend, plan.n()) - pstart);
      std::fill(cnt.begin(), cnt.begin() + used, 0u);
      for (std::uint32_t src = 0; src < shards; ++src) {
        const HandoffBucket& bucket =
            moves_[static_cast<std::size_t>(src) * pages_ + p];
        const Vertex* hdst = bucket.dst();
        const std::size_t m = bucket.size();
        for (std::size_t i = 0; i < m; ++i) {
          ++cnt[hdst[i] - static_cast<Vertex>(pstart)];
        }
        alive += m;
      }
      for (std::uint32_t lv = 0; lv < used; ++lv) {
        if (cnt[lv] == 0) continue;
        TokenQueue& q = cur_[static_cast<Vertex>(pstart) + lv];
        const std::uint32_t off = q.extend_for_refill(cnt[lv]);
        cursor[lv] = Cursor{q.src() + off, q.meta() + off};
      }
      for (std::uint32_t src = 0; src < shards; ++src) {
        const HandoffBucket& bucket =
            moves_[static_cast<std::size_t>(src) * pages_ + p];
        const std::uint64_t* hsrc = bucket.src();
        const Vertex* hdst = bucket.dst();
        const std::uint16_t* hmeta = bucket.meta();
        const std::size_t m = bucket.size();
        for (std::size_t i = 0; i < m; ++i) {
          Cursor& c = cursor[hdst[i] - static_cast<Vertex>(pstart)];
          *c.s++ = hsrc[i];
          *c.m++ = hmeta[i];
        }
      }
    } else {
      for (std::uint32_t src = 0; src < shards; ++src) {
        const HandoffBucket& bucket =
            moves_[static_cast<std::size_t>(src) * pages_ + p];
        const std::size_t m = bucket.size();
        const std::uint64_t* hsrc = bucket.src();
        const Vertex* hdst = bucket.dst();
        const std::uint16_t* hmeta = bucket.meta();
        for (std::size_t i = 0; i < m; ++i) {
          const Vertex w = hdst[i];
          if (w < vbegin || w >= vend) continue;
          cur_[w].push_back(hsrc[i], hmeta[i]);
          ++alive;
        }
      }
    }
  }
  // Phase 1 drained every queue, so the merged handoffs ARE this shard's
  // whole live population: settle the alive counter here instead of ever
  // scanning queues (tokens_alive() just sums these).
  alive_[dst] = alive;
  arrivals_.apply_to(p0, p1, vbegin, vend, r, samples_);
  for (Vertex v = vbegin; v < vend; ++v) {
    samples_[v].prune(keep_from);
  }
}

void TokenSoup::on_round_merge() {
  const Round r = net().round();
  const Vertex n = net().n();
  const std::uint32_t shards = net().shards().count();
  const Round keep_from = r - window_;
  merge_round_ = r;
  merge_keep_from_ = keep_from;
  net().run_sharded(merge_task_);

  // Serial epilogue. Buckets are cleared here, not in merge_shard: a page
  // that straddles a shard boundary is read by both neighboring shards'
  // merge tasks (clear() only resets the size, so no arena traffic from
  // serial context).
  for (HandoffBucket& bucket : moves_) bucket.clear();

  // User-facing probe hooks (canonical source order — the hook may touch
  // arbitrary shared state) and metrics.
  std::uint64_t completed = 0;
  std::uint64_t queued = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    for (const ProbeDone& p : probes_[s]) {
      if (probe_hook_) probe_hook_(p.tag, p.dst, r);
    }
    probes_[s].clear();
    completed += counters_[s].completed;
    queued += counters_[s].queued;
    counters_[s] = ShardCounters{};
  }
  for (Vertex v = 0; v < n; ++v) {
    if (fwd_count_[v] > 0) net().charge_processing(v, fwd_count_[v] * kTokenBits);
  }
  if (spawning_) {
    net().metrics().count_tokens_spawned(static_cast<std::uint64_t>(n) * walks_);
  }
  net().metrics().count_tokens_completed(completed);
  net().metrics().count_tokens_queued(queued);
}

void TokenSoup::step() {
  on_round_begin();
  net().run_sharded([this](std::uint32_t s) {
    ShardContext ctx(net(), s);
    on_round_begin(s, ctx);
  });
  on_round_merge();
}

}  // namespace churnstore
