// Per-node buffer of random-walk samples.
//
// When a walk completes its T steps at a node, the node records the walk's
// source id: by the Soup Theorem these sources are near-uniform samples of
// the network, and every protocol building block (committee creation,
// leader re-formation, landmark child selection, search inquiries) draws
// from this buffer. Samples are grouped by arrival round because Algorithm 1
// counts and consumes "the random walks received in round r" specifically.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/types.h"

namespace churnstore {

class SampleBuffer {
 public:
  void add(Round r, PeerId source);

  /// Drop groups with round < keep_from.
  void prune(Round keep_from);

  void clear() noexcept { groups_.clear(); }

  /// Sources of walks that completed exactly in round r (empty if none).
  [[nodiscard]] const std::vector<PeerId>& at(Round r) const;

  [[nodiscard]] std::size_t count_at(Round r) const { return at(r).size(); }

  /// Up to `k` distinct most-recent sources (newest rounds first), skipping
  /// ids in `exclude`. Pass k = 0 for "all distinct".
  [[nodiscard]] std::vector<PeerId> recent_distinct(
      std::size_t k, const std::vector<PeerId>& exclude = {}) const;

  [[nodiscard]] std::size_t total() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return groups_.empty(); }

 private:
  struct Group {
    Round round;
    std::vector<PeerId> sources;
  };
  std::deque<Group> groups_;  ///< ascending by round
};

}  // namespace churnstore
