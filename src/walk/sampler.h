// Per-node buffer of random-walk samples.
//
// When a walk completes its T steps at a node, the node records the walk's
// source id: by the Soup Theorem these sources are near-uniform samples of
// the network, and every protocol building block (committee creation,
// leader re-formation, landmark child selection, search inquiries) draws
// from this buffer. Samples are grouped by arrival round because Algorithm 1
// counts and consumes "the random walks received in round r" specifically.
//
// Representation: cohort groups on the per-shard arena. The n=1M profile
// showed the former deque<Group{vector<PeerId>}> costing ~2 GB in pure
// container overhead (512-byte deque chunks, one malloc per round-group).
// Now every (round, vertex) cohort — all tokens that completed in the same
// round at the same vertex — shares ONE arena block sized exactly to the
// cohort (ShardedArrivals announces the count before filling), and the
// group directory itself is a single compacting arena array. A buffer is
// bound to the arena of the shard owning its vertex (set_arena), so the
// engine's growth (dst-shard task), pruning (dst-shard task) and churn
// clears (serial context) all follow the arena ownership discipline.
// Unbound buffers (unit tests, copies) use the global heap.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "net/types.h"
#include "util/arena.h"
#include "util/sharding.h"

namespace churnstore {

/// Non-owning view of one round-cohort's source list.
using SampleView = std::span<const PeerId>;

class SampleBuffer {
 public:
  SampleBuffer() noexcept = default;
  ~SampleBuffer() { destroy(); }

  /// Deep copies are heap-backed (arena unbound): tests snapshot buffers
  /// past the owning Network's lifetime.
  SampleBuffer(const SampleBuffer& o) { copy_from(o); }
  SampleBuffer& operator=(const SampleBuffer& o) {
    if (this != &o) {
      destroy();
      copy_from(o);
    }
    return *this;
  }
  SampleBuffer(SampleBuffer&& o) noexcept { steal(o); }
  SampleBuffer& operator=(SampleBuffer&& o) noexcept {
    if (this != &o) {
      destroy();
      steal(o);
    }
    return *this;
  }

  /// Bind the arena all groups allocate from (the owning shard's arena).
  /// Only valid while the buffer is empty.
  void set_arena(Arena* arena) noexcept;

  /// Pre-announce `k` samples of the NEXT cohort: the first add() of a new
  /// round-group sizes its block to everything announced, so a cohort costs
  /// exactly one allocation (ShardedArrivals counts, then fills).
  void announce(std::uint32_t k) noexcept { pending_ += k; }

  /// Pre-size the group directory for a retention window of `rounds`
  /// groups in one exact allocation. Without it, every buffer grows its
  /// directory through the same doubling chain during warm-up — in
  /// lockstep across n vertices — stranding each abandoned size class in
  /// the freelists.
  void reserve_rounds(std::uint32_t rounds);

  void add(Round r, PeerId source);

  /// Drop groups with round < keep_from.
  void prune(Round keep_from);

  void clear() noexcept;

  /// Sources of walks that completed exactly in round r (empty if none).
  [[nodiscard]] SampleView at(Round r) const noexcept;

  [[nodiscard]] std::size_t count_at(Round r) const noexcept {
    return at(r).size();
  }

  /// Up to `k` distinct most-recent sources (newest rounds first), skipping
  /// ids in `exclude`. Pass k = 0 for "all distinct".
  [[nodiscard]] std::vector<PeerId> recent_distinct(
      std::size_t k, const std::vector<PeerId>& exclude = {}) const;

  [[nodiscard]] std::size_t total() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return gcount_ == 0; }

  /// Exact equality, including per-group insertion order — the determinism
  /// tests compare whole buffers across shard counts with this.
  [[nodiscard]] friend bool operator==(const SampleBuffer& a,
                                       const SampleBuffer& b) noexcept {
    return a.equals(b);
  }

 private:
  /// One arrival-round cohort: every source shares the single `sources`
  /// block (exact-size when announced, doubling otherwise).
  struct Group {
    Round round;
    PeerId* sources;
    std::uint32_t size;
    std::uint32_t cap;
  };

  [[nodiscard]] Group* groups() noexcept { return groups_ + ghead_; }
  [[nodiscard]] const Group* groups() const noexcept { return groups_ + ghead_; }

  [[nodiscard]] void* alloc(std::size_t bytes) const;
  void dealloc(void* p, std::size_t bytes) const noexcept;

  void push_group(Round r, std::uint32_t cap);
  void grow_group(Group& g);
  void destroy() noexcept;
  void copy_from(const SampleBuffer& o);
  void steal(SampleBuffer& o) noexcept;
  [[nodiscard]] bool equals(const SampleBuffer& o) const noexcept;

  Group* groups_ = nullptr;  ///< directory block: [ghead_, ghead_+gcount_)
  std::uint32_t ghead_ = 0;
  std::uint32_t gcount_ = 0;
  std::uint32_t gcap_ = 0;
  std::uint32_t pending_ = 0;  ///< announced size of the next cohort
  Arena* arena_ = nullptr;
};

/// Per-shard staging of walk completions for the sharded round engine.
//
// Shard tasks may not touch a destination vertex's SampleBuffer directly
// (the destination usually lives in another shard), so each SOURCE shard
// stages its completions here, bucketed by a caller-defined DESTINATION
// partition. After the barrier, each destination shard applies the
// buckets addressed to it in ascending (bucket, source-shard) order.
// Because shards are contiguous and scanned in ascending vertex order,
// that merge equals the ascending global source-vertex order per
// destination vertex — the buffers end up bit-identical for every shard
// count AND for every destination-bucket granularity.
//
// The destination partition is usually finer than a shard: TokenSoup
// buckets by destination PAGE (a power-of-two vertex range whose queues
// and sample state fit in L2), so the apply scatter — the header, the
// group directory, and the cohort block of random vertices — stays
// inside a cache-resident window instead of paying DRAM latency per
// completion across the whole shard span.
class ShardedArrivals {
 public:
  /// Size (or resize) the src_shards x dst_buckets grid and clear every
  /// bucket. Buckets keep their capacity across rounds.
  void reset(std::uint32_t src_shards, std::uint32_t dst_buckets);

  /// Stage a completion observed by `src_shard`: the walk from `source`
  /// finished at vertex `dst`, which maps to `dst_bucket` under the
  /// caller's partition. Only `src_shard`'s task may call this.
  void stage(std::uint32_t src_shard, std::uint32_t dst_bucket, Vertex dst,
             PeerId source);

  /// Apply buckets [first_bucket, last_bucket] into `buffers` (indexed by
  /// vertex) as round-`r` samples, in canonical source order, skipping
  /// arrivals outside [vbegin, vend) — a bucket that straddles a shard
  /// boundary is applied by BOTH neighboring shards, each filing only its
  /// own vertices (concurrent reads are safe). Each bucket runs two
  /// passes — announce per-vertex cohort sizes, then fill — so every
  /// cohort lands in one exact-size arena block and the scatter stays in
  /// the bucket's window. Only the owning dst task may pass a vertex
  /// range it owns.
  void apply_to(std::uint32_t first_bucket, std::uint32_t last_bucket,
                Vertex vbegin, Vertex vend, Round r,
                std::vector<SampleBuffer>& buffers) const;

  [[nodiscard]] std::size_t staged_total() const noexcept;

 private:
  struct Arrival {
    Vertex dst;
    PeerId source;
  };
  std::uint32_t src_shards_ = 0;
  std::uint32_t dst_buckets_ = 0;
  std::vector<std::vector<Arrival>> buckets_;  ///< [src * dst_buckets_ + b]
};

}  // namespace churnstore
