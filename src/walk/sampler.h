// Per-node buffer of random-walk samples.
//
// When a walk completes its T steps at a node, the node records the walk's
// source id: by the Soup Theorem these sources are near-uniform samples of
// the network, and every protocol building block (committee creation,
// leader re-formation, landmark child selection, search inquiries) draws
// from this buffer. Samples are grouped by arrival round because Algorithm 1
// counts and consumes "the random walks received in round r" specifically.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/types.h"
#include "util/sharding.h"

namespace churnstore {

class SampleBuffer {
 public:
  void add(Round r, PeerId source);

  /// Drop groups with round < keep_from.
  void prune(Round keep_from);

  void clear() noexcept { groups_.clear(); }

  /// Sources of walks that completed exactly in round r (empty if none).
  [[nodiscard]] const std::vector<PeerId>& at(Round r) const;

  [[nodiscard]] std::size_t count_at(Round r) const { return at(r).size(); }

  /// Up to `k` distinct most-recent sources (newest rounds first), skipping
  /// ids in `exclude`. Pass k = 0 for "all distinct".
  [[nodiscard]] std::vector<PeerId> recent_distinct(
      std::size_t k, const std::vector<PeerId>& exclude = {}) const;

  [[nodiscard]] std::size_t total() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return groups_.empty(); }

  /// Exact equality, including per-group insertion order — the determinism
  /// tests compare whole buffers across shard counts with this.
  [[nodiscard]] friend bool operator==(const SampleBuffer& a,
                                       const SampleBuffer& b) {
    return a.groups_ == b.groups_;
  }

 private:
  struct Group {
    Round round;
    std::vector<PeerId> sources;

    [[nodiscard]] friend bool operator==(const Group& x, const Group& y) {
      return x.round == y.round && x.sources == y.sources;
    }
  };
  std::deque<Group> groups_;  ///< ascending by round
};

/// Per-shard staging of walk completions for the sharded round engine.
//
// Shard tasks may not touch a destination vertex's SampleBuffer directly
// (the destination usually lives in another shard), so each SOURCE shard
// stages its completions here, bucketed by DESTINATION shard. After the
// barrier, each destination shard applies the buckets addressed to it in
// ascending source-shard order. Because shards are contiguous and scanned
// in ascending vertex order, that merge equals the ascending global
// source-vertex order — the buffers end up bit-identical for every shard
// count.
class ShardedArrivals {
 public:
  /// Size (or resize) the src x dst bucket grid and clear every bucket.
  /// Buckets keep their capacity across rounds.
  void reset(std::uint32_t shards);

  /// Stage a completion observed by `src_shard`: the walk from `source`
  /// finished at vertex `dst`. Only `src_shard`'s task may call this.
  void stage(std::uint32_t src_shard, std::uint32_t dst_shard, Vertex dst,
             PeerId source);

  /// Apply every bucket addressed to `dst_shard` into `buffers` (indexed by
  /// vertex) as round-`r` samples, in canonical source order. Only
  /// `dst_shard`'s task may call this.
  void apply_to(std::uint32_t dst_shard, Round r,
                std::vector<SampleBuffer>& buffers) const;

  [[nodiscard]] std::size_t staged_total() const noexcept;

 private:
  struct Arrival {
    Vertex dst;
    PeerId source;
  };
  std::uint32_t shards_ = 0;
  std::vector<std::vector<Arrival>> buckets_;  ///< [src * shards_ + dst]
};

}  // namespace churnstore
