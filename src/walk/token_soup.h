// The "soup of random walks" (paper section 3).
//
// Every node starts walks_per_round fresh walk tokens each round (the
// paper's alpha log n walks) and forwards up to forward_cap tokens per round
// (the paper's 2h log n cap); excess tokens queue at the node. A token moves
// to a uniformly random current neighbor each round; after T steps it is
// delivered to the node it landed on, which records the token's source id in
// its SampleBuffer. Tokens sitting at a churned-out node are destroyed —
// exactly the loss/bias mechanism the Soup Theorem bounds.
//
// Besides the steady-state soup, the class supports tagged probe walks whose
// completions are reported through a hook instead of sample buffers; the
// Soup-Theorem and mixing benches (E1-E3) use probes to measure the
// source->destination distribution directly.
//
// TokenSoup is a Protocol module: register it first in a stack (siblings
// read its tau() during their own on_attach).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/protocol.h"
#include "net/config.h"
#include "net/network.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/wc_buffer.h"
#include "walk/sampler.h"

namespace churnstore {

class TokenSoup final : public Protocol {
 public:
  explicit TokenSoup(const WalkConfig& config = {});
  /// Construct and attach in one step (standalone tests/benches).
  TokenSoup(Network& net, const WalkConfig& config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "token-soup";
  }
  void on_attach(Network& net) override;

  /// Sharded round hooks: the driver runs the serial prologue, fans the
  /// spawn/forward phase out per shard, then merges. Standalone benches
  /// call step(), which drives the same three stages inline.
  [[nodiscard]] bool sharded_round() const noexcept override { return true; }
  void on_round_begin() override;
  void on_round_begin(std::uint32_t shard, ShardContext& ctx) override;
  void on_round_merge() override;
  [[nodiscard]] bool sharded_dispatch() const noexcept override {
    return true;  // no on_message at all
  }
  void on_churn(Vertex v, PeerId old_peer, PeerId new_peer) override;

  /// Advance one round: spawn new walks, move tokens, deliver completions.
  /// Call once per round after Network::begin_round() (the driver does this
  /// through the round hooks).
  ///
  /// Sharded execution: the vertex range is partitioned by the Network's
  /// ShardPlan and each shard moves its own vertices' tokens concurrently,
  /// drawing from a counter-based per-(round, vertex) RNG stream. Cross-
  /// shard handoffs and sample deliveries are staged per (source, dest)
  /// shard and merged in canonical (shard, vertex) order behind a barrier,
  /// so the result is bit-identical for every shard count, serial or on a
  /// ThreadPool. Probe hooks fire after the merge, in ascending source-
  /// vertex order. Token queues and handoff buckets live in the per-shard
  /// arenas (util/arena.h), so the steady state performs no heap calls.
  void step();

  /// Turn automatic per-round spawning on/off (benches that only study
  /// probes disable the soup to isolate the measurement).
  void set_spawning(bool on) noexcept { spawning_ = on; }

  [[nodiscard]] const SampleBuffer& samples(Vertex v) const noexcept {
    return samples_[v];
  }

  /// --- probe interface ---------------------------------------------------
  /// Injects a tagged walk of `steps` steps starting at `v` (start counts as
  /// position before the first step). Completion calls the probe hook.
  void inject_probe(Vertex v, std::uint64_t tag, std::uint32_t steps);

  /// hook(tag, destination_vertex, completion_round)
  using ProbeHook = std::function<void(std::uint64_t, Vertex, Round)>;
  void set_probe_hook(ProbeHook hook) { probe_hook_ = std::move(hook); }

  /// --- introspection -------------------------------------------------------
  /// Live (queued) token count, maintained as per-shard counters that the
  /// round merge settles — O(shards), never a queue scan. Valid between
  /// rounds (mid-phase the queues are transiently drained into the
  /// staging buckets).
  [[nodiscard]] std::size_t tokens_alive() const noexcept;
  [[nodiscard]] std::uint32_t walks_per_round() const noexcept { return walks_; }
  [[nodiscard]] std::uint32_t walk_length() const noexcept { return length_; }
  [[nodiscard]] std::uint32_t cap() const noexcept { return cap_; }
  [[nodiscard]] std::uint32_t tau() const noexcept { return tau_; }
  [[nodiscard]] const WalkConfig& config() const noexcept { return config_; }

 private:
  /// --- structure-of-arrays token storage ----------------------------------
  /// Tokens are stored as parallel columns, not structs: an 8-byte
  /// src_or_tag column (source PeerId, or tag for probes) plus a 2-byte
  /// packed meta column holding `steps_left:15 | probe:1`
  /// (meta = steps_left << 1 | probe). Versus the former 16-byte
  /// array-of-structs element (12 bytes + padding) that is 10 bytes per
  /// queued token and 14 per staged handoff (which adds a 4-byte dst
  /// column) — a 25-37% cut of the two buffers that transiently hold every
  /// live token, and the phase-1 drain becomes pure streaming reads of
  /// flat arrays.
  ///
  /// Both containers pack ALL their columns into a SINGLE arena block
  /// (src first, then dst where present, then meta — alignment decreases,
  /// so every column is naturally aligned). One block per container keeps
  /// the bookkeeping at one size + one capacity branch per push (a
  /// vector-per-column design pays that per column), and capacity is
  /// derived from Arena::usable_size, so the size-class rounding slack
  /// becomes extra token capacity instead of waste. Allocation goes
  /// through the owning shard's arena exactly as before, preserving the
  /// zero-heap-calls steady state.

  /// meta packing: steps_left in the high 15 bits, probe flag in bit 0.
  /// Decrementing a step is `meta - 2`; "just completed" is `meta < 2`.
  static constexpr std::uint16_t kProbeBit = 1;
  static constexpr std::uint16_t kMaxSteps = 0x7fff;
  [[nodiscard]] static constexpr std::uint16_t pack_meta(
      std::uint32_t steps_left, bool probe) noexcept {
    return static_cast<std::uint16_t>((steps_left << 1) |
                                      (probe ? kProbeBit : 0));
  }

  /// Arena-backed queue: bound to the arena of the shard owning its vertex.
  /// Columns: src (8 B), meta (2 B) — 10 bytes per token in one block.
  struct TokenQueue {
    static constexpr std::size_t kTokenBytes =
        sizeof(std::uint64_t) + sizeof(std::uint16_t);

    explicit TokenQueue(Arena* a) noexcept : arena_(a) {}
    TokenQueue(TokenQueue&& o) noexcept
        : base_(o.base_), size_(o.size_), cap_(o.cap_), arena_(o.arena_) {
      o.base_ = nullptr;
      o.size_ = o.cap_ = 0;
    }
    TokenQueue(const TokenQueue&) = delete;
    TokenQueue& operator=(const TokenQueue&) = delete;
    ~TokenQueue() { free_block(arena_, base_, cap_ * kTokenBytes); }

    [[nodiscard]] std::uint64_t* src() const noexcept {
      return reinterpret_cast<std::uint64_t*>(base_);
    }
    [[nodiscard]] std::uint16_t* meta() const noexcept {
      return reinterpret_cast<std::uint16_t*>(base_ +
                                              std::size_t{cap_} * 8);
    }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }

    void push_back(std::uint64_t s, std::uint16_t m) {
      if (size_ == cap_) grow(size_ + 1);
      src()[size_] = s;
      meta()[size_] = m;
      ++size_;
    }
    /// Append k copies of (s, m) — the per-round spawn burst.
    void append_n(std::uint64_t s, std::uint16_t m, std::uint32_t k) {
      if (size_ + k > cap_) grow(size_ + k);
      std::uint64_t* sp = src() + size_;
      std::uint16_t* mp = meta() + size_;
      for (std::uint32_t i = 0; i < k; ++i) {
        sp[i] = s;
        mp[i] = m;
      }
      size_ += k;
    }
    void reserve(std::size_t k) {
      if (k > cap_) grow(k);
    }
    /// Counting-sort refill: make room for k more tokens and publish the
    /// new size up front, returning the previous size (the write offset).
    /// The merge fills the k slots immediately afterwards through a cursor
    /// array, single-threaded on the vertex's owner shard.
    std::uint32_t extend_for_refill(std::uint32_t k) {
      const std::uint32_t off = size_;
      if (off + k > cap_) grow(std::size_t{off} + k);
      size_ = off + k;
      return off;
    }
    void clear() noexcept { size_ = 0; }

   private:
    void grow(std::size_t min_cap);

    std::byte* base_ = nullptr;
    std::uint32_t size_ = 0;
    std::uint32_t cap_ = 0;
    Arena* arena_ = nullptr;
  };

  /// Single-block alloc/free helpers shared by the SoA containers (null
  /// arena falls through to the global heap so standalone uses still work).
  static std::byte* alloc_block(Arena* a, std::size_t bytes);
  static void free_block(Arena* a, std::byte* p, std::size_t bytes) noexcept;

  WalkConfig config_;
  /// Salt of the per-(round, vertex) RNG streams; forked once at attach
  /// from the protocol RNG so sibling protocols keep their own streams.
  /// Rounds derive a key from (salt, round) and vertices fork counter-based
  /// streams off that key — see step().
  std::uint64_t stream_salt_ = 0;
  std::uint64_t round_key_ = 0;  ///< mix of (salt, round), set each prologue
  std::uint32_t walks_ = 0;
  std::uint32_t length_ = 0;
  std::uint32_t cap_ = 0;
  std::uint32_t tau_ = 0;
  Round window_ = 0;
  bool spawning_ = true;

  /// Single-buffered: phase 1 drains and clears each vertex's queue (its
  /// own shard's task), phase 2 refills it from the staged handoffs (the
  /// SAME shard's task, since the queue's vertex is the handoff target) —
  /// so no second queue array is needed. At n=1M that halves queue memory.
  // shardcheck:arena-backed(outer vector sized once at attach/churn in serial context; TokenQueue elements draw from their vertex's shard arena)
  std::vector<TokenQueue> cur_;
  // shardcheck:arena-backed(outer vector sized once at attach in serial context; SampleBuffer cohort groups draw from the owning shard's arena)
  std::vector<SampleBuffer> samples_;
  ProbeHook probe_hook_;

  /// --- per-round sharded staging (reused across rounds) -------------------
  /// Handoff buckets are the same SoA columns as the queues plus a dst
  /// column (14 bytes per staged token, was 16 packed / 24 padded): the
  /// buckets transiently hold every moving token, so every byte here is
  /// multiplied by the full in-flight population. Pre-sized at attach to
  /// the expected steady split so steady-state rounds never reallocate
  /// (the doubling of a hundreds-of-MB column kept old+new alive at once
  /// and showed up as a maxrss spike at n=1M).
  /// Columns: src (8 B), dst (4 B), meta (2 B) in one block.
  struct HandoffBucket {
    static constexpr std::size_t kTokenBytes =
        sizeof(std::uint64_t) + sizeof(Vertex) + sizeof(std::uint16_t);

    explicit HandoffBucket(Arena* a) noexcept : arena_(a) {}
    HandoffBucket(HandoffBucket&& o) noexcept
        : base_(o.base_), size_(o.size_), cap_(o.cap_), arena_(o.arena_) {
      o.base_ = nullptr;
      o.size_ = o.cap_ = 0;
    }
    HandoffBucket(const HandoffBucket&) = delete;
    HandoffBucket& operator=(const HandoffBucket&) = delete;
    ~HandoffBucket() { free_block(arena_, base_, cap_ * kTokenBytes); }

    [[nodiscard]] std::uint64_t* src() const noexcept {
      return reinterpret_cast<std::uint64_t*>(base_);
    }
    [[nodiscard]] Vertex* dst() const noexcept {
      return reinterpret_cast<Vertex*>(base_ + std::size_t{cap_} * 8);
    }
    [[nodiscard]] std::uint16_t* meta() const noexcept {
      return reinterpret_cast<std::uint16_t*>(base_ +
                                              std::size_t{cap_} * 12);
    }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }

    void push_back(std::uint64_t s, Vertex d, std::uint16_t m) {
      if (size_ == cap_) grow(size_ + 1);
      src()[size_] = s;
      dst()[size_] = d;
      meta()[size_] = m;
      ++size_;
    }
    void reserve(std::size_t k) {
      if (k > cap_) grow(k);
    }
    void clear() noexcept { size_ = 0; }

    /// --- write-combining back end (util/wc_buffer.h contract) ------------
    /// WcScatter writes committed lines PAST size_ into capacity space and
    /// only publishes the element count at epilogue time via wc_commit.
    /// The alignment contract (64-byte block base, capacity a multiple of
    /// 16 so all three column bases are line-aligned) is upheld by grow().
    void wc_reserve(std::uint32_t min_cap) {
      if (min_cap > cap_) grow(min_cap);
    }
    void wc_commit(std::uint32_t n) noexcept { size_ = n; }

   private:
    void grow(std::size_t min_cap);

    std::byte* base_ = nullptr;
    std::uint32_t size_ = 0;
    std::uint32_t cap_ = 0;
    Arena* arena_ = nullptr;
  };
  struct ProbeDone {
    std::uint64_t tag;
    Vertex dst;
  };
  struct ShardCounters {
    std::uint64_t completed = 0;
    std::uint64_t queued = 0;
  };

  /// Phase-2 refill of one destination shard's queues from the staged
  /// handoff buckets (hook-only helper, runs on the dst shard's task).
  void merge_shard(std::uint32_t dst, Round r, Round keep_from);

  /// Sharded merge task, built once: a fresh capturing lambda every round
  /// would re-wrap into std::function at the run_sharded call and heap-spill
  /// its closure (>16 bytes), breaking the heap-quiet steady state. The
  /// round parameters travel through the two members below instead.
  Round merge_round_ = 0;
  Round merge_keep_from_ = 0;
  std::function<void(std::uint32_t)> merge_task_ =
      [this](std::uint32_t dst) {
        merge_shard(dst, merge_round_, merge_keep_from_);
      };

  /// [src_shard * pages_ + dst_page]; each bucket allocates from its
  /// SOURCE shard's arena (the source task does all the growing).
  ///
  /// Buckets are keyed by destination PAGE, not destination shard: a page
  /// is a power-of-two vertex range (page_shift_) sized at attach so one
  /// page's token queues fit in L2 (~1.5 MB). The refill scatter is the
  /// engine's only data-dependent access pattern, and at n=1M the queue
  /// arena is hundreds of MB — scattering into it bucket-by-shard costs
  /// 2-3 DRAM misses per token. Merging page-by-page keeps every queue
  /// touch inside an L2-resident window. Dst-page bucketing also makes
  /// the phase-1 route computation a shift instead of a divide, and the
  /// canonical order is preserved: scanning (src shard ascending, bucket
  /// append order) within a page files each queue's tokens in exactly the
  /// ascending-global-source order the shard-keyed merge produced.
  // shardcheck:arena-backed(outer vector sized at attach in serial context; each HandoffBucket draws from its source shard's arena)
  std::vector<HandoffBucket> moves_;
  std::uint32_t page_shift_ = 0;  ///< log2 of the dst-page vertex span
  std::uint32_t pages_ = 1;       ///< total dst pages covering [0, n)
  ShardedArrivals arrivals_;
  /// Per source shard; each inner vector draws from its shard's arena
  /// (grown on that shard's task, cleared/read in the serial epilogue).
  std::vector<std::vector<ProbeDone, ArenaAllocator<ProbeDone>>> probes_;
  // shardcheck:cold-state(sized to the shard count at attach in serial context; hooks only increment elements in place)
  std::vector<ShardCounters> counters_;         ///< per source shard
  // shardcheck:cold-state(sized to n at attach in serial context; hooks store per-vertex counts in place)
  std::vector<std::uint32_t> fwd_count_;        ///< per vertex, for metrics
  /// Per-shard scratch for the batched neighbor draws (cap_ entries each):
  /// stream_fill_below writes a vertex's whole batch here, the forward
  /// loop gathers neighbors off it. Only shard s's task touches draws_[s].
  // shardcheck:cold-state(inner buffers pre-sized to cap_ at attach in serial context; stream_fill_below writes batches in place)
  std::vector<std::vector<std::uint32_t>> draws_;
  /// Per-shard live-token counters: settled by merge_shard (the merged
  /// handoffs are exactly the shard's queue contents), adjusted serially
  /// by inject_probe / on_churn. Replaces the former O(n) queue scan in
  /// tokens_alive().
  // shardcheck:cold-state(sized to the shard count at attach in serial context; merge_shard settles elements in place)
  std::vector<std::uint64_t> alive_;

  /// --- phase-1 scatter strategy (util/wc_buffer.h) ------------------------
  /// Resolved from config_.scatter at attach (kAuto picks by page count:
  /// few pages -> direct pushes, a table-sized page count -> one WC layer
  /// over the final buckets, beyond that -> two-level). Every mode yields
  /// byte-identical bucket contents; see forward_range / on_round_begin.
  ScatterMode mode_ = ScatterMode::kDirect;
  /// Two-level only: coarse runs keyed by dst page group
  /// (u >> (page_shift_ + run_shift_)), at most kMaxRuns per shard so the
  /// run WC table stays L1-resident. [src_shard * runs_n_ + run], each from
  /// its SOURCE shard's arena.
  // shardcheck:arena-backed(outer vector sized at attach in serial context; run buckets draw from their source shard's arena)
  std::vector<HandoffBucket> runs_;
  std::uint32_t run_shift_ = 0;  ///< log2 pages per run
  std::uint32_t runs_n_ = 0;     ///< runs covering [0, pages_)
  /// Two-level only: source vertices are processed in chunks sized so one
  /// chunk's run contents stay cache-resident (the runs are re-read
  /// immediately by scatter_runs_to_final) — this bounds the transient
  /// run memory to a few MB instead of a second copy of the whole
  /// in-flight population.
  Vertex chunk_ = 0;
  /// Per-shard WC front ends. Final buckets are read a whole phase later,
  /// so their full-line flushes stream (non-temporal when enabled); run
  /// buckets are re-read within the chunk, so they use plain stores.
  // shardcheck:cold-state(WC tables allocated at attach in serial context; the hot path stores through pre-allocated lines)
  std::vector<WcScatter<HandoffBucket, /*kNonTemporal=*/true>> fwc_;
  // shardcheck:cold-state(WC tables allocated at attach in serial context; the hot path stores through pre-allocated lines)
  std::vector<WcScatter<HandoffBucket, /*kNonTemporal=*/false>> rwc_;

  /// Phase-1 forward core, shared by every scatter mode: spawns, draws,
  /// and walks the vertex range [v0, v1), calling emit_move(src, u, meta)
  /// for surviving handoffs (meta >= 2, already decremented; cap-delayed
  /// leftovers keep their undecremented meta, also >= 2) and
  /// emit_done(src, u) for non-probe completions. Probe completions and
  /// counters are handled inside. Hook-only helper: runs on shard s's task.
  template <class EmitMove, class EmitDone>
  void forward_range(std::uint32_t s, Vertex v0, Vertex v1,
                     EmitMove&& emit_move, EmitDone&& emit_done);
  /// Two-level pass B: demux one shard's coarse runs into the final WC
  /// table (handoffs) and the arrival staging (completions), then reset
  /// the runs for the next chunk. Hook-only helper: runs on shard s's task.
  void scatter_runs_to_final(std::uint32_t s);
};

}  // namespace churnstore
