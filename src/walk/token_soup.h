// The "soup of random walks" (paper section 3).
//
// Every node starts walks_per_round fresh walk tokens each round (the
// paper's alpha log n walks) and forwards up to forward_cap tokens per round
// (the paper's 2h log n cap); excess tokens queue at the node. A token moves
// to a uniformly random current neighbor each round; after T steps it is
// delivered to the node it landed on, which records the token's source id in
// its SampleBuffer. Tokens sitting at a churned-out node are destroyed —
// exactly the loss/bias mechanism the Soup Theorem bounds.
//
// Besides the steady-state soup, the class supports tagged probe walks whose
// completions are reported through a hook instead of sample buffers; the
// Soup-Theorem and mixing benches (E1-E3) use probes to measure the
// source->destination distribution directly.
//
// TokenSoup is a Protocol module: register it first in a stack (siblings
// read its tau() during their own on_attach).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/protocol.h"
#include "net/config.h"
#include "net/network.h"
#include "util/arena.h"
#include "util/rng.h"
#include "walk/sampler.h"

namespace churnstore {

class TokenSoup final : public Protocol {
 public:
  explicit TokenSoup(const WalkConfig& config = {});
  /// Construct and attach in one step (standalone tests/benches).
  TokenSoup(Network& net, const WalkConfig& config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "token-soup";
  }
  void on_attach(Network& net) override;

  /// Sharded round hooks: the driver runs the serial prologue, fans the
  /// spawn/forward phase out per shard, then merges. Standalone benches
  /// call step(), which drives the same three stages inline.
  [[nodiscard]] bool sharded_round() const noexcept override { return true; }
  void on_round_begin() override;
  void on_round_begin(std::uint32_t shard, ShardContext& ctx) override;
  void on_round_merge() override;
  [[nodiscard]] bool sharded_dispatch() const noexcept override {
    return true;  // no on_message at all
  }
  void on_churn(Vertex v, PeerId old_peer, PeerId new_peer) override;

  /// Advance one round: spawn new walks, move tokens, deliver completions.
  /// Call once per round after Network::begin_round() (the driver does this
  /// through the round hooks).
  ///
  /// Sharded execution: the vertex range is partitioned by the Network's
  /// ShardPlan and each shard moves its own vertices' tokens concurrently,
  /// drawing from a counter-based per-(round, vertex) RNG stream. Cross-
  /// shard handoffs and sample deliveries are staged per (source, dest)
  /// shard and merged in canonical (shard, vertex) order behind a barrier,
  /// so the result is bit-identical for every shard count, serial or on a
  /// ThreadPool. Probe hooks fire after the merge, in ascending source-
  /// vertex order. Token queues and handoff buckets live in the per-shard
  /// arenas (util/arena.h), so the steady state performs no heap calls.
  void step();

  /// Turn automatic per-round spawning on/off (benches that only study
  /// probes disable the soup to isolate the measurement).
  void set_spawning(bool on) noexcept { spawning_ = on; }

  [[nodiscard]] const SampleBuffer& samples(Vertex v) const noexcept {
    return samples_[v];
  }

  /// --- probe interface ---------------------------------------------------
  /// Injects a tagged walk of `steps` steps starting at `v` (start counts as
  /// position before the first step). Completion calls the probe hook.
  void inject_probe(Vertex v, std::uint64_t tag, std::uint32_t steps);

  /// hook(tag, destination_vertex, completion_round)
  using ProbeHook = std::function<void(std::uint64_t, Vertex, Round)>;
  void set_probe_hook(ProbeHook hook) { probe_hook_ = std::move(hook); }

  /// --- introspection -------------------------------------------------------
  [[nodiscard]] std::size_t tokens_alive() const noexcept;
  [[nodiscard]] std::uint32_t walks_per_round() const noexcept { return walks_; }
  [[nodiscard]] std::uint32_t walk_length() const noexcept { return length_; }
  [[nodiscard]] std::uint32_t cap() const noexcept { return cap_; }
  [[nodiscard]] std::uint32_t tau() const noexcept { return tau_; }
  [[nodiscard]] const WalkConfig& config() const noexcept { return config_; }

 private:
  struct Token {
    std::uint64_t src_or_tag;  ///< source PeerId, or tag for probes
    std::uint16_t steps_left;
    std::uint16_t probe;  ///< 1 if probe token
  };
  /// Arena-backed queue: bound to the arena of the shard owning its vertex.
  using TokenQueue = std::vector<Token, ArenaAllocator<Token>>;

  WalkConfig config_;
  /// Salt of the per-(round, vertex) RNG streams; forked once at attach
  /// from the protocol RNG so sibling protocols keep their own streams.
  /// Rounds derive a key from (salt, round) and vertices fork counter-based
  /// streams off that key — see step().
  std::uint64_t stream_salt_ = 0;
  std::uint64_t round_key_ = 0;  ///< mix of (salt, round), set each prologue
  std::uint32_t walks_ = 0;
  std::uint32_t length_ = 0;
  std::uint32_t cap_ = 0;
  std::uint32_t tau_ = 0;
  Round window_ = 0;
  bool spawning_ = true;

  /// Single-buffered: phase 1 drains and clears each vertex's queue (its
  /// own shard's task), phase 2 refills it from the staged handoffs (the
  /// SAME shard's task, since the queue's vertex is the handoff target) —
  /// so no second queue array is needed. At n=1M that halves queue memory.
  std::vector<TokenQueue> cur_;
  std::vector<SampleBuffer> samples_;
  ProbeHook probe_hook_;

  /// --- per-round sharded staging (reused across rounds) -------------------
  /// Flat 16-byte layout (vs 24 for {Vertex, Token}): the handoff buckets
  /// transiently hold every moving token, so the padding was ~250 MB at
  /// n=1M.
  struct Handoff {
    std::uint64_t src_or_tag;
    Vertex dst;
    std::uint16_t steps_left;
    std::uint16_t probe;
  };
  struct ProbeDone {
    std::uint64_t tag;
    Vertex dst;
  };
  struct ShardCounters {
    std::uint64_t completed = 0;
    std::uint64_t queued = 0;
  };
  /// [src_shard * S + dst_shard]; each bucket allocates from its SOURCE
  /// shard's arena (the source task does all the growing).
  using HandoffVec = std::vector<Handoff, ArenaAllocator<Handoff>>;
  std::vector<HandoffVec> moves_;
  ShardedArrivals arrivals_;
  std::vector<std::vector<ProbeDone>> probes_;  ///< per source shard
  std::vector<ShardCounters> counters_;         ///< per source shard
  std::vector<std::uint32_t> fwd_count_;        ///< per vertex, for metrics
};

}  // namespace churnstore
