// Persistent storage of data items (paper Algorithm 3).
//
// Storing item I: the creator elects a committee entrusted with I (every
// member stores a replica — or one IDA piece in erasure mode), and the
// committee keeps rebuilding landmark trees so that Omega(sqrt(n)) random
// nodes can point searchers at the members. The committee instance id is
// the item id, which is how inquiry handlers look up "do I hold I?".
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "committee/committee.h"
#include "core/protocol.h"
#include "landmark/landmark.h"
#include "net/network.h"
#include "storage/item.h"

namespace churnstore {

class StoreManager final : public Protocol {
 public:
  StoreManager(CommitteeManager& committees, LandmarkManager& landmarks,
               const ProtocolConfig& config);
  /// Construct and attach in one step (standalone tests/benches).
  StoreManager(Network& net, CommitteeManager& committees,
               LandmarkManager& landmarks, const ProtocolConfig& config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "store";
  }
  /// No message handlers and no per-round work: trivially shard-safe, so a
  /// store module never forces the stack's dispatch onto the serial path.
  [[nodiscard]] bool sharded_dispatch() const noexcept override { return true; }

  /// Issue a store of `payload` under id `item` from the peer at `creator`.
  /// Returns false if the creator lacks walk samples (retry next round).
  bool store(Vertex creator, ItemId item, std::vector<std::uint8_t> payload);

  [[nodiscard]] const ItemRecord* record(ItemId item) const;
  [[nodiscard]] std::size_t item_count() const noexcept { return records_.size(); }

  /// --- god-view measurements (experiments E6/E10) ------------------------
  /// Members of the item's current committee generation still alive.
  [[nodiscard]] std::size_t copies_alive(ItemId item) const;
  /// Live (unexpired) landmarks pointing at the item's committee.
  [[nodiscard]] std::size_t landmarks_alive(ItemId item) const;
  /// Definition 1 availability proxy: enough live copies to recover the
  /// item (1 replica, or ida_k pieces) AND a landmark set of size at least
  /// sqrt(n)/4 so searches can find them quickly.
  [[nodiscard]] bool is_available(ItemId item) const;
  /// Weaker predicate: the item content is still recoverable at all.
  [[nodiscard]] bool is_recoverable(ItemId item) const;

 private:
  CommitteeManager& committees_;
  LandmarkManager& landmarks_;
  ProtocolConfig config_;
  // shardcheck:cold-state(item registry grown only from the serial store() API path)
  std::unordered_map<ItemId, ItemRecord> records_;
};

}  // namespace churnstore
