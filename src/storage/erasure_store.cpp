#include "storage/erasure_store.h"

#include <algorithm>

namespace churnstore {

std::vector<IdaPiece> ErasurePolicy::encode(const std::vector<std::uint8_t>& data,
                                            std::uint32_t k,
                                            std::uint32_t count) const {
  // The Cauchy row of piece i depends only on (i, k), not on the total piece
  // count, so producing `count` pieces with a codec sized for the largest
  // index keeps pieces from different generations mutually compatible.
  const std::uint32_t l = std::max(count, k);
  IdaCodec codec(k, std::min<std::uint32_t>(l, 255));
  auto pieces = codec.encode(data);
  pieces.resize(std::min<std::size_t>(pieces.size(), count));
  return pieces;
}

std::optional<std::vector<std::uint8_t>> ErasurePolicy::reconstruct(
    const std::vector<IdaPiece>& pieces, std::uint32_t k,
    std::size_t original_size) const {
  std::uint32_t max_index = 0;
  for (const auto& p : pieces) max_index = std::max(max_index, p.index);
  const std::uint32_t l =
      std::min<std::uint32_t>(std::max(max_index + 1, k), 255);
  if (k > l) return std::nullopt;
  IdaCodec codec(k, l);
  return codec.decode(pieces, original_size);
}

}  // namespace churnstore
