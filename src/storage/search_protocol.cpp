#include "storage/search_protocol.h"

#include <algorithm>

namespace churnstore {

namespace {
// kInquiry:       [0] item [1] sid
// kInquiryHit /
// kReport:        [0] item [1] sid [2] holder count m [3 .. 3+m) holder ids
// kFetchRequest:  [0] item [1] sid
// kFetchReply:    [0] item [1] sid [2] piece_index [3] ida_k
//                 [4] original_size [5] member count m [6 .. 6+m) member ids
//                 blob: replica or IDA piece
constexpr std::size_t kHoldersAt = 3;
constexpr std::size_t kReplyMembersAt = 6;
constexpr std::size_t kFetchParallelism = 2;
}  // namespace

SearchManager::SearchManager(TokenSoup& soup, CommitteeManager& committees,
                             LandmarkManager& landmarks, StoreManager& store,
                             const ProtocolConfig& config)
    : soup_(soup),
      committees_(committees),
      landmarks_(landmarks),
      store_(store),
      config_(config) {}

SearchManager::SearchManager(Network& net_ref, TokenSoup& soup,
                             CommitteeManager& committees,
                             LandmarkManager& landmarks, StoreManager& store,
                             const ProtocolConfig& config)
    : SearchManager(soup, committees, landmarks, store, config) {
  on_attach(net_ref);
}

void SearchManager::on_attach(Network& net_ref) {
  Protocol::on_attach(net_ref);
  timeout_ = std::max<std::uint32_t>(
      8, static_cast<std::uint32_t>(config_.search_timeout_taus *
                                    committees_.tau()));
  initiator_.assign(net().n(), {});
}

void SearchManager::on_churn(Vertex v, PeerId, PeerId) {
  initiator_[v].clear();
}

const SearchStatus* SearchManager::status(std::uint64_t sid) const {
  const auto it = status_.find(sid);
  return it == status_.end() ? nullptr : &it->second;
}

std::uint64_t SearchManager::start_search(Vertex initiator, ItemId item) {
  const std::uint64_t sid = mix64(next_sid_++ ^ 0x73696400ULL) | 1;
  SearchStatus st;
  st.sid = sid;
  st.item = item;
  st.initiator = net().peer_at(initiator);
  st.start = net().round();
  st.deadline = st.start + timeout_;
  if (TraceCollector* tc = net().trace_collector();
      tc != nullptr && tc->sampled(sid)) {
    st.trace = sid;
    tc->record(make_trace_event(sid, st.start, initiator, 0, 0,
                                RequestClass::kSearch, TraceEv::kBegin));
  }
  status_[sid] = st;
  active_.push_back(sid);

  InitiatorState is;
  is.sid = sid;
  is.item = item;
  initiator_[initiator][sid] = std::move(is);
  return sid;
}

void SearchManager::finish(std::uint64_t sid) {
  auto& st = status_[sid];
  st.finished = true;
  const auto v = net().find_vertex(st.initiator);
  if (v) initiator_[*v].erase(sid);
  if (st.trace != 0) {
    // Span payload: detail = end-to-end latency in rounds; hop = rounds to
    // locate a holder (the locate/fetch phase breakdown of the span).
    const Round now = net().round();
    const Round locate = st.located >= 0 ? st.located - st.start : 0;
    net().trace_serial(make_trace_event(
        st.trace, now, v ? *v : 0, now - st.start, locate,
        RequestClass::kSearch,
        st.fetch_ok ? TraceEv::kEndOk : TraceEv::kEndFail));
  }
}

void SearchManager::reply_if_holder(Vertex v, ItemId item, std::uint64_t sid,
                                    PeerId to, ShardContext& ctx) {
  const std::vector<PeerId>* holders = nullptr;
  if (const Membership* mem = committees_.membership_at(v, item);
      mem && mem->purpose == Purpose::kStorage) {
    holders = &mem->members;
  } else if (const LandmarkState* lm = landmarks_.state_at(v, item);
             lm && lm->purpose == Purpose::kStorage) {
    holders = &lm->committee;
  }
  if (!holders || holders->empty()) return;
  Message msg;
  msg.src = net().peer_at(v);
  msg.dst = to;
  msg.type = MsgType::kInquiryHit;
  msg.words = {item, sid, holders->size()};
  msg.words.insert(msg.words.end(), holders->begin(), holders->end());
  ctx.send(v, std::move(msg));
}

void SearchManager::issue_fetches(Vertex v, InitiatorState& st) {
  if (st.holders.empty()) return;
  const PeerId self = net().peer_at(v);
  for (std::size_t i = 0; i < kFetchParallelism; ++i) {
    const PeerId holder = st.holders[st.next_fetch % st.holders.size()];
    ++st.next_fetch;
    Message msg;
    msg.src = self;
    msg.dst = holder;
    msg.type = MsgType::kFetchRequest;
    msg.words = {st.item, st.sid};
    net().send(v, std::move(msg));
  }
}

void SearchManager::on_round_begin() {
  const Round now = net().round();
  inquiry_jobs_.clear();
  std::size_t write = 0;
  for (std::size_t read = 0; read < active_.size(); ++read) {
    const std::uint64_t sid = active_[read];
    SearchStatus& st = status_[sid];
    if (st.finished) continue;

    const std::optional<Vertex> iv_slot = net().find_vertex(st.initiator);
    if (!iv_slot) {
      // The searcher itself was churned out; the paper's guarantee is for
      // nodes that stay long enough, so this is a censored trial.
      st.initiator_churned = true;
      st.finished = true;
      if (st.trace != 0) {
        net().trace_serial(make_trace_event(st.trace, now, 0, now - st.start,
                                            0, RequestClass::kSearch,
                                            TraceEv::kEndCensored));
      }
      continue;
    }
    const Vertex iv = *iv_slot;
    if (now > st.deadline) {
      finish(sid);
      continue;
    }
    if (st.fetch_ok) {
      finish(sid);
      continue;
    }

    // Create the search committee (retrying until the initiator's sample
    // buffer is warm enough).
    if (st.committee_created < 0) {
      if (committees_.create(iv, sid, Purpose::kSearch, st.item, st.initiator,
                             {}, st.deadline + 2)) {
        st.committee_created = now;
      }
    }

    // The landmark-driven inquiry fan-out happens in the sharded phase;
    // collect this search's live landmarks here (for_each_landmark also
    // lazily compacts the index).
    landmarks_.for_each_landmark(sid, [this, sid](Vertex w, LandmarkState& lm) {
      if (lm.purpose == Purpose::kSearch) inquiry_jobs_.emplace_back(w, sid);
    });

    // Fetch from reported holders once located.
    if (st.located >= 0 && st.fetched < 0) {
      const auto it = initiator_[iv].find(sid);
      if (it != initiator_[iv].end()) issue_fetches(iv, it->second);
    }

    active_[write++] = sid;
  }
  active_.resize(write);
  // Canonical job order: ascending landmark vertex, stable for multiple
  // searches at one vertex.
  std::stable_sort(inquiry_jobs_.begin(), inquiry_jobs_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
}

void SearchManager::on_round_begin(std::uint32_t shard, ShardContext& ctx) {
  // Drive search landmarks: each contacts the sources of the walks it
  // received last round and inquires about the item (Algorithm 4 step 2).
  // Fanned out over the landmark vertices' own shards (each shard owns a
  // contiguous run of the sorted job list); everything read here
  // (landmark/committee state, samples) is stable during the phase, and
  // all sends stage through ctx.
  (void)shard;
  if (inquiry_jobs_.empty()) return;
  const Round now = net().round();
  const auto lo = std::lower_bound(
      inquiry_jobs_.begin(), inquiry_jobs_.end(), ctx.begin(),
      [](const auto& job, Vertex v) { return job.first < v; });
  for (auto it = lo; it != inquiry_jobs_.end() && it->first < ctx.end();
       ++it) {
    const auto [w, sid] = *it;
    const LandmarkState* lm = landmarks_.state_at(w, sid);
    if (lm == nullptr) continue;
    // A search landmark that itself knows the item reports immediately.
    reply_if_holder(w, lm->item, sid, lm->search_root, ctx);
    const auto& sources = soup_.samples(w).at(now - 1);
    const std::size_t cap = config_.inquiry_cap == 0
                                ? sources.size()
                                : std::min<std::size_t>(config_.inquiry_cap,
                                                        sources.size());
    const PeerId self = net().peer_at(w);
    for (std::size_t i = 0; i < cap; ++i) {
      Message msg;
      msg.src = self;
      msg.dst = sources[i];
      msg.type = MsgType::kInquiry;
      msg.words = {lm->item, sid};
      ctx.send(w, std::move(msg));
    }
  }
}

bool SearchManager::on_message(Vertex v, const Message& m,
                               ShardContext& ctx) {
  switch (m.type) {
    case MsgType::kInquiry: {
      reply_if_holder(v, m.words[0], m.words[1], m.src, ctx);
      return true;
    }
    case MsgType::kInquiryHit: {
      // Forward to the search initiator recorded in our landmark state.
      const std::uint64_t sid = m.words[1];
      const LandmarkState* lm = landmarks_.state_at(v, sid);
      if (!lm || lm->search_root == kNoPeer) return true;
      Message fwd;
      fwd.src = net().peer_at(v);
      fwd.dst = lm->search_root;
      fwd.type = MsgType::kReport;
      fwd.words = m.words;
      ctx.send(v, std::move(fwd));
      return true;
    }
    case MsgType::kReport: {
      const std::uint64_t sid = m.words[1];
      const auto sit = initiator_[v].find(sid);
      if (sit == initiator_[v].end()) return true;
      InitiatorState& st = sit->second;
      const auto stat_it = status_.find(sid);
      if (stat_it == status_.end()) return true;
      SearchStatus& status = stat_it->second;
      const std::uint64_t count = m.words[2];
      for (std::uint64_t i = 0; i < count; ++i) {
        const PeerId h = m.words[kHoldersAt + i];
        // shardcheck:ok(R6: holder dedup on a search reply: O(holders in the reply) per active search, not per token)
        if (h != kNoPeer && st.holder_set.insert(h).second) {
          // shardcheck:ok(R6: holder list on a search reply: O(holders) per active search)
          st.holders.push_back(h);
        }
      }
      if (status.located < 0 && !st.holders.empty()) {
        status.located = net().round();
      }
      return true;
    }
    case MsgType::kFetchRequest: {
      const ItemId item = m.words[0];
      const Membership* mem = committees_.membership_at(v, item);
      if (!mem || mem->purpose != Purpose::kStorage || mem->payload.empty()) {
        return true;
      }
      Message reply;
      reply.src = net().peer_at(v);
      reply.dst = m.src;
      reply.type = MsgType::kFetchReply;
      reply.words = {item,
                     m.words[1],
                     mem->piece_index,
                     mem->ida_k,
                     mem->original_size,
                     mem->members.size()};
      reply.words.insert(reply.words.end(), mem->members.begin(),
                         mem->members.end());
      reply.blob = mem->payload;
      ctx.send(v, std::move(reply));
      return true;
    }
    case MsgType::kFetchReply: {
      const std::uint64_t sid = m.words[1];
      const auto sit = initiator_[v].find(sid);
      if (sit == initiator_[v].end()) return true;
      InitiatorState& st = sit->second;
      const auto stat_it = status_.find(sid);
      if (stat_it == status_.end()) return true;
      SearchStatus& status = stat_it->second;
      if (status.fetched >= 0) return true;

      const auto piece_index = static_cast<std::uint32_t>(m.words[2]);
      const ItemRecord* rec = store_.record(st.item);
      if (piece_index == kNoPiece) {
        status.fetched = net().round();
        status.fetch_ok =
            rec && content_hash(m.blob.data(), m.blob.size()) == rec->hash;
        // shardcheck:ok(R6: fetched item payload copy: O(item bytes) per completed fetch)
        status.fetched_data.assign(m.blob.begin(), m.blob.end());
        return true;
      }
      // Erasure mode: gather distinct pieces; holders list in the reply
      // extends the fetch candidates.
      const std::uint64_t count = m.words[5];
      for (std::uint64_t i = 0; i < count; ++i) {
        const PeerId h = m.words[kReplyMembersAt + i];
        // shardcheck:ok(R6: holder dedup on a fetch reply: O(holders) per active search)
        if (h != kNoPeer && st.holder_set.insert(h).second) {
          // shardcheck:ok(R6: holder list on a fetch reply: O(holders) per active search)
          st.holders.push_back(h);
        }
      }
      // shardcheck:ok(R6: distinct-piece tracking: O(ida_k) per active erasure fetch)
      if (st.piece_indices.insert(piece_index).second) {
        // shardcheck:ok(R6: gathered erasure pieces: O(ida_k x piece bytes) per active fetch)
        st.pieces.push_back(IdaPiece{piece_index, m.blob.to_vector()});
      }
      const auto ida_k = static_cast<std::uint32_t>(m.words[3]);
      const auto original_size = static_cast<std::size_t>(m.words[4]);
      if (ida_k > 0 && st.pieces.size() >= ida_k) {
        const ErasurePolicy policy(config_.ida_surplus);
        const auto data = policy.reconstruct(st.pieces, ida_k, original_size);
        if (data) {
          status.fetched = net().round();
          status.fetch_ok = rec && content_hash(*data) == rec->hash;
          status.fetched_data = *data;
        }
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace churnstore
