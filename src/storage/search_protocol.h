// Data retrieval (paper Algorithm 4).
//
// A node u searching for item I elects a *search committee* (with a
// dissolve deadline), which builds Omega(sqrt(n)) *search landmarks*. Every
// search landmark, each round, contacts the sources of the walk samples it
// just received and inquires about I; a contacted node that is a storage
// landmark or a storage-committee member for I replies with the storage
// member ids, the search landmark reports them to u, and u fetches the item
// (one replica, or K IDA pieces in erasure mode). Searches also succeed
// trivially when a search landmark itself already knows about I.
//
// The manager keeps a god-view SearchStatus per search for the benches:
// locate round (u learns a holder id — the paper's success criterion),
// fetch round (payload reconstructed and integrity-checked), or failure
// (deadline passed / initiator churned out).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "committee/committee.h"
#include "core/protocol.h"
#include "landmark/landmark.h"
#include "net/network.h"
#include "storage/item.h"
#include "storage/store_protocol.h"
#include "walk/token_soup.h"

namespace churnstore {

struct SearchStatus {
  std::uint64_t sid = 0;
  ItemId item = 0;
  PeerId initiator = kNoPeer;
  Round start = 0;
  Round deadline = 0;
  Round committee_created = -1;
  Round located = -1;   ///< u first learned a live holder id
  Round fetched = -1;   ///< payload reconstructed at u
  bool fetch_ok = false;  ///< reconstructed content matched the stored hash
  std::vector<std::uint8_t> fetched_data;  ///< the retrieved item content
  bool initiator_churned = false;
  bool finished = false;
  std::uint64_t trace = 0;  ///< sampled trace id (obs/trace.h); 0 = untraced

  [[nodiscard]] bool succeeded_locate() const noexcept { return located >= 0; }
  [[nodiscard]] bool succeeded_fetch() const noexcept { return fetch_ok; }
};

class SearchManager final : public Protocol {
 public:
  SearchManager(TokenSoup& soup, CommitteeManager& committees,
                LandmarkManager& landmarks, StoreManager& store,
                const ProtocolConfig& config);
  /// Construct and attach in one step (standalone tests/benches). The
  /// siblings must already be attached to `net`.
  SearchManager(Network& net, TokenSoup& soup, CommitteeManager& committees,
                LandmarkManager& landmarks, StoreManager& store,
                const ProtocolConfig& config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "search";
  }
  void on_attach(Network& net) override;

  /// Start a search for `item` from the peer at `initiator`. Returns the
  /// search id (always succeeds; committee creation retries internally).
  std::uint64_t start_search(Vertex initiator, ItemId item);

  /// Sharded round. Serial prologue: per-search bookkeeping (deadlines,
  /// censoring, committee creation, fetch issuance) — O(active searches).
  /// Sharded phase: the heavy part — every search landmark contacts the
  /// sources of the walks it received last round (Algorithm 4 step 2),
  /// fanned out over the landmark vertices' shards.
  [[nodiscard]] bool sharded_round() const noexcept override { return true; }
  void on_round_begin() override;
  void on_round_begin(std::uint32_t shard, ShardContext& ctx) override;

  /// Routes kInquiry / kInquiryHit / kReport / kFetch*; true if consumed.
  /// Handlers touch the receiving vertex's state and the per-search status
  /// record (owned by the initiator's vertex), and reply through ctx.
  [[nodiscard]] bool sharded_dispatch() const noexcept override { return true; }
  bool on_message(Vertex v, const Message& m, ShardContext& ctx) override;
  void on_churn(Vertex v, PeerId old_peer, PeerId new_peer) override;

  [[nodiscard]] const SearchStatus* status(std::uint64_t sid) const;
  [[nodiscard]] std::size_t active_searches() const noexcept {
    return active_.size();
  }
  [[nodiscard]] std::uint32_t timeout_rounds() const noexcept { return timeout_; }

 private:
  struct InitiatorState {
    std::uint64_t sid = 0;
    ItemId item = 0;
    std::vector<PeerId> holders;           ///< reported, in arrival order
    std::unordered_set<PeerId> holder_set;
    std::size_t next_fetch = 0;            ///< round-robin fetch cursor
    std::vector<IdaPiece> pieces;          ///< gathered pieces (erasure)
    std::unordered_set<std::uint32_t> piece_indices;
  };

  void finish(std::uint64_t sid);
  void reply_if_holder(Vertex v, ItemId item, std::uint64_t sid, PeerId to,
                       ShardContext& ctx);
  void issue_fetches(Vertex v, InitiatorState& st);

  TokenSoup& soup_;
  CommitteeManager& committees_;
  LandmarkManager& landmarks_;
  StoreManager& store_;
  ProtocolConfig config_;
  std::uint32_t timeout_ = 0;
  std::uint64_t next_sid_ = 1;

  // shardcheck:cold-state(search bookkeeping mutated only from the serial begin_search/prologue path and serial merges)
  std::unordered_map<std::uint64_t, SearchStatus> status_;
  // shardcheck:cold-state(active-search id list maintained in serial prologue/epilogue context)
  std::vector<std::uint64_t> active_;
  /// This round's (landmark vertex, sid) inquiry jobs, collected by the
  /// serial prologue from the landmark index (O(live landmarks), not
  /// O(n)) and stably sorted by vertex: each shard owns a contiguous run,
  /// and the merged inquiry stream is identical for every shard count.
  // shardcheck:cold-state(rebuilt by the serial on_round_begin prologue each round)
  std::vector<std::pair<Vertex, std::uint64_t>> inquiry_jobs_;
  /// Initiator-side state, held at the initiator's vertex.
  // shardcheck:cold-state(map nodes inserted/erased only from the serial begin_search/expiry paths; hooks mutate found elements in place)
  std::vector<std::unordered_map<std::uint64_t, InitiatorState>> initiator_;
};

}  // namespace churnstore
