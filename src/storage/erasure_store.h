// Erasure-coded storage policy (paper section 4.4).
//
// Bridges the IDA codec into the committee protocol: when enabled, each
// committee member stores one IDA piece of the item instead of a full
// replica, and on every committee re-formation the leader gathers pieces,
// reconstructs the item, re-encodes for the incoming member set, and hands
// each new member a fresh piece. K (pieces needed) is fixed at store time;
// L tracks the current committee size, so the blowup stays ~L/K = h/(h-2).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "coding/ida.h"

namespace churnstore {

class ErasurePolicy {
 public:
  /// surplus: K = committee_size - surplus (clamped to >= 1).
  explicit ErasurePolicy(std::uint32_t surplus) : surplus_(surplus) {}

  [[nodiscard]] std::uint32_t pieces_needed(std::uint32_t committee_size) const {
    if (committee_size <= surplus_ + 1) return 1;
    return committee_size - surplus_;
  }

  /// Encode `data` into `count` pieces, any `k` of which reconstruct.
  [[nodiscard]] std::vector<IdaPiece> encode(const std::vector<std::uint8_t>& data,
                                             std::uint32_t k,
                                             std::uint32_t count) const;

  /// Reconstruct from gathered pieces; nullopt if < k distinct pieces.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> reconstruct(
      const std::vector<IdaPiece>& pieces, std::uint32_t k,
      std::size_t original_size) const;

 private:
  std::uint32_t surplus_;
};

}  // namespace churnstore
