#include "storage/item.h"

namespace churnstore {

std::uint64_t content_hash(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t content_hash(const std::vector<std::uint8_t>& data) {
  return content_hash(data.data(), data.size());
}

std::vector<std::uint8_t> make_payload(ItemId id, std::uint64_t bits) {
  const std::size_t bytes = static_cast<std::size_t>((bits + 7) / 8);
  std::vector<std::uint8_t> out(bytes);
  Rng rng(mix64(id ^ 0x6974656dULL));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

}  // namespace churnstore
