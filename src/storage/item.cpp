#include "storage/item.h"

namespace churnstore {

std::uint64_t content_hash(const std::vector<std::uint8_t>& data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<std::uint8_t> make_payload(ItemId id, std::uint64_t bits) {
  const std::size_t bytes = static_cast<std::size_t>((bits + 7) / 8);
  std::vector<std::uint8_t> out(bytes);
  Rng rng(mix64(id ^ 0x6974656dULL));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

}  // namespace churnstore
