#include "storage/store_protocol.h"

#include <cmath>

namespace churnstore {

StoreManager::StoreManager(CommitteeManager& committees,
                           LandmarkManager& landmarks,
                           const ProtocolConfig& config)
    : committees_(committees), landmarks_(landmarks), config_(config) {}

StoreManager::StoreManager(Network& net_ref, CommitteeManager& committees,
                           LandmarkManager& landmarks,
                           const ProtocolConfig& config)
    : StoreManager(committees, landmarks, config) {
  on_attach(net_ref);
}

bool StoreManager::store(Vertex creator, ItemId item,
                         std::vector<std::uint8_t> payload) {
  ItemRecord rec;
  rec.id = item;
  rec.hash = content_hash(payload);
  rec.size_bytes = payload.size();
  rec.stored_round = net().round();
  rec.creator = net().peer_at(creator);
  if (!committees_.create(creator, /*kid=*/item, Purpose::kStorage, item,
                          kNoPeer, payload, /*expire=*/-1)) {
    return false;
  }
  records_[item] = rec;
  // Begin-only span: paper-stack stores have no acknowledgement to the
  // creator (the committee owns the item from here), so the trace marks
  // the request without a completion event.
  const std::uint64_t tid = mix64(item ^ 0x73746f7265ULL) | 1;  // "store"
  if (TraceCollector* tc = net().trace_collector();
      tc != nullptr && tc->sampled(tid)) {
    tc->record(make_trace_event(tid, rec.stored_round, creator, 0, 0,
                                RequestClass::kStore, TraceEv::kBegin));
  }
  return true;
}

const ItemRecord* StoreManager::record(ItemId item) const {
  const auto it = records_.find(item);
  return it == records_.end() ? nullptr : &it->second;
}

std::size_t StoreManager::copies_alive(ItemId item) const {
  return committees_.alive_members(item);
}

std::size_t StoreManager::landmarks_alive(ItemId item) const {
  return landmarks_.live_count(item);
}

bool StoreManager::is_recoverable(ItemId item) const {
  const std::size_t alive = copies_alive(item);
  if (alive == 0) return false;
  if (!config_.use_erasure_coding) return true;
  // Erasure mode: the last generation's member count determines the L in
  // play; K was fixed at store time from the protocol config.
  const ErasurePolicy policy(config_.ida_surplus);
  return alive >= policy.pieces_needed(committees_.target_size());
}

bool StoreManager::is_available(ItemId item) const {
  if (!is_recoverable(item)) return false;
  const double threshold = std::sqrt(static_cast<double>(net().n())) / 4.0;
  return static_cast<double>(landmarks_alive(item)) >= threshold;
}

}  // namespace churnstore
