// Data items: identifiers, payload generation, and integrity hashing.
#pragma once

#include <cstdint>
#include <vector>

#include "net/types.h"
#include "util/rng.h"

namespace churnstore {

/// FNV-1a content hash used to verify end-to-end integrity of retrievals.
[[nodiscard]] std::uint64_t content_hash(const std::uint8_t* data,
                                         std::size_t len);
[[nodiscard]] std::uint64_t content_hash(const std::vector<std::uint8_t>& data);

/// Deterministic pseudo-random payload of `bits` bits for item `id`.
[[nodiscard]] std::vector<std::uint8_t> make_payload(ItemId id, std::uint64_t bits);

/// God-view record of a stored item (measurement bookkeeping only).
struct ItemRecord {
  ItemId id = 0;
  std::uint64_t hash = 0;       ///< content hash of the original payload
  std::uint64_t size_bytes = 0;
  Round stored_round = 0;
  PeerId creator = kNoPeer;
};

}  // namespace churnstore
