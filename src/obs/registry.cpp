#include "obs/registry.h"

#include <string>

#include "core/system.h"
#include "obs/trace.h"
#include "util/heap_sentinel.h"

namespace churnstore {

void MetricsRegistry::add(std::string name, Read read) {
  entries_.push_back(Entry{std::move(name), std::move(read), nullptr});
}

void MetricsRegistry::add_gated(std::string name, Read read, Ok ok) {
  entries_.push_back(Entry{std::move(name), std::move(read), std::move(ok)});
}

void MetricsRegistry::add_histogram(std::string name, const Histogram* hist) {
  histograms_.emplace_back(std::move(name), hist);
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(entries_.size() + 5 * histograms_.size());
  for (const Entry& e : entries_) {
    Sample s;
    s.name = e.name;
    s.ok = !e.ok || e.ok();
    s.value = s.ok ? e.read() : 0.0;
    out.push_back(std::move(s));
  }
  for (const auto& [name, hist] : histograms_) {
    const bool has_mass = hist->total() > 0;
    const auto q = [&](const char* suffix, double quant) {
      Sample s;
      s.name = name + suffix;
      s.ok = has_mass;
      s.value = has_mass ? hist->quantile(quant) : 0.0;
      out.push_back(std::move(s));
    };
    q(".p50", 0.50);
    q(".p95", 0.95);
    q(".p99", 0.99);
    q(".p999", 0.999);
    Sample c;
    c.name = name + ".count";
    c.value = static_cast<double>(hist->total());
    out.push_back(std::move(c));
  }
  return out;
}

void register_standard_metrics(MetricsRegistry& reg, P2PSystem& sys) {
  Metrics& m = sys.network().metrics();
  const auto counter = [&reg, &m](const char* name,
                                  std::uint64_t (Metrics::*get)()
                                      const noexcept) {
    reg.add(name, [&m, get] { return static_cast<double>((m.*get)()); });
  };
  counter("rounds", &Metrics::rounds);
  counter("bits.total", &Metrics::total_bits);
  counter("messages.total", &Metrics::total_messages);
  counter("messages.dropped", &Metrics::dropped_messages);
  counter("tokens.spawned", &Metrics::tokens_spawned);
  counter("tokens.completed", &Metrics::tokens_completed);
  counter("tokens.lost", &Metrics::tokens_lost);
  counter("committees.formed", &Metrics::committees_formed);
  counter("committees.lost", &Metrics::committees_lost);
  counter("landmarks.created", &Metrics::landmarks_created);
  reg.add("churn.events", [&sys] {
    return static_cast<double>(sys.network().churn_events());
  });
  reg.add("bits.node_round.last_max",
          [&m] { return static_cast<double>(m.last_round_max_bits()); });
  reg.add("bits.node_round.last_mean",
          [&m] { return m.last_round_mean_bits(); });

  // Wall-clock phase timers: valid only while phase timing is enabled.
  const auto phase = [&reg, &sys](const char* name,
                                  double RoundPhaseTimers::*field) {
    reg.add_gated(
        name, [&sys, field] { return sys.phase_timers().*field; },
        [&sys] { return sys.phase_timers().enabled; });
  };
  phase("secs.churn", &RoundPhaseTimers::churn_secs);
  phase("secs.soup", &RoundPhaseTimers::soup_secs);
  phase("secs.handlers", &RoundPhaseTimers::handler_secs);
  phase("secs.deliver", &RoundPhaseTimers::deliver_secs);
  phase("secs.dispatch", &RoundPhaseTimers::dispatch_secs);

  // Heap-sentinel round stats: "unknown" (not zero) when the sentinel is
  // compiled out or force-disabled.
  const auto heap = [&reg, &sys](const char* name,
                                 std::uint64_t RoundHeapStats::*field) {
    reg.add_gated(
        name,
        [&sys, field] {
          return static_cast<double>(sys.heap_stats().*field);
        },
        [] { return HeapSentinel::available(); });
  };
  heap("heap.rounds", &RoundHeapStats::rounds);
  heap("heap.allocs", &RoundHeapStats::allocs);
  heap("heap.frees", &RoundHeapStats::frees);
  heap("heap.bytes", &RoundHeapStats::bytes);
}

void register_trace_metrics(MetricsRegistry& reg, const TraceCollector& tc) {
  for (std::size_t c = 0; c < kRequestClassCount; ++c) {
    const auto cls = static_cast<RequestClass>(c);
    const std::string base = std::string("trace.") + request_class_name(cls);
    reg.add(base + ".begun",
            [&tc, cls] { return static_cast<double>(tc.spans_begun(cls)); });
    reg.add(base + ".ok",
            [&tc, cls] { return static_cast<double>(tc.spans_ok(cls)); });
    reg.add(base + ".failed",
            [&tc, cls] { return static_cast<double>(tc.spans_failed(cls)); });
    reg.add(base + ".censored", [&tc, cls] {
      return static_cast<double>(tc.spans_censored(cls));
    });
    reg.add_histogram(base + ".latency_rounds", &tc.latency(cls));
    reg.add_histogram(base + ".hops", &tc.hops(cls));
  }
  reg.add("trace.events",
          [&tc] { return static_cast<double>(tc.events_recorded()); });
}

}  // namespace churnstore
