// Observability exporters: spec-key plumbing (obs=/obs-file=/trace-sample=)
// and the ObsSession round observer that writes them.
//
//   obs=jsonl   one flat JSON object per round (unified-registry snapshot:
//               deterministic engine counters first, then gated host
//               metrics) plus one "span" object per completed sampled
//               request, and a final "summary" object with the per-class
//               latency/hop quantiles.
//   obs=chrome  chrome://tracing / Perfetto-loadable JSON. Two process
//               tracks: pid 0 renders measured wall-clock round phases
//               (churn/soup/handlers/deliver/dispatch and the per-protocol
//               breakdown) on a cumulative-microsecond timeline built from
//               the phase timers (no new clock reads — shardcheck-R4 keeps
//               ambient clocks out of src/); pid 1 renders sampled request
//               spans on VIRTUAL time, 1 round = 1 ms, because request
//               latency is measured in rounds, not seconds.
//
// Determinism: with host metrics suppressed (ObsConfig::host_metrics =
// false) the jsonl byte stream is a pure function of the seed — identical
// for every shards= value. The chrome export's pid-0 track is wall-clock
// and therefore machine-dependent by nature; its pid-1 span track is
// deterministic.
//
// Everything in this header is cold-path: exporter allocations and file IO
// are observability overhead, excluded from the heap-quiet claim (they run
// after the round's heap delta is read; see P2PSystem::run_round).
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/system.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/perf_counters.h"

namespace churnstore {

struct ObsConfig {
  enum class Mode { kNone, kJsonl, kChrome };
  Mode mode = Mode::kNone;
  std::string path;  ///< output file; "" = obs.jsonl / obs_trace.json
  std::uint32_t sample_every = 1;  ///< trace-sample=k keeps 1/k of requests
  bool host_metrics = true;  ///< include wall-clock/heap fields in jsonl
};

/// Parse the obs spec keys out of a scenario's extras map:
///   obs=jsonl|chrome|off   obs-file=PATH   trace-sample=K
/// Unknown obs= values throw (same contract as every other spec key).
[[nodiscard]] ObsConfig obs_config_from_extras(
    const std::map<std::string, std::string>& extras);

/// Derive a per-cell output path: "dir/base.ext" + "label" ->
/// "dir/base.label.ext" (scenarios running several cells give each its own
/// file instead of overwriting one).
[[nodiscard]] std::string obs_path_with_label(const std::string& path,
                                              const std::string& label);

/// One observed run: owns the TraceCollector and the output file, installs
/// itself on the system's network + round observer hook, writes one round
/// record per run_round, and finalizes (summary line / trailing bracket)
/// on destruction. Construct AFTER the P2PSystem and destroy BEFORE it
/// (the collector's lanes borrow the network's shard arenas).
class ObsSession final : public RoundObserver {
 public:
  ObsSession(P2PSystem& sys, ObsConfig config);
  ~ObsSession() override;
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  void on_round_observed(P2PSystem& sys) override;

  [[nodiscard]] TraceCollector& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceCollector& trace() const noexcept { return trace_; }

  /// Write the trailing summary / close the JSON and uninstall the hooks;
  /// idempotent, also run by the destructor.
  void finalize();

 private:
  void consume_spans(Round round, const TraceEvent* events, std::size_t n);
  void write_round_jsonl();
  void write_round_chrome(P2PSystem& sys);

  P2PSystem& sys_;
  ObsConfig config_;
  TraceCollector trace_;
  MetricsRegistry registry_;
  std::ofstream out_;
  bool finalized_ = false;
  bool first_chrome_event_ = true;
  double ts_cursor_us_ = 0.0;  ///< pid-0 wall-clock timeline position
  RoundPhaseTimers prev_timers_;
  std::vector<double> prev_protocol_secs_;
};

}  // namespace churnstore
