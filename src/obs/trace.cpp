#include "obs/trace.h"

#include "net/network.h"

namespace churnstore {

namespace {
// Histogram shapes are part of the export contract: latency in rounds,
// unit bins over [0, 1024); hop metric, unit bins over [0, 256). Bin
// midpoints land on x + 0.5, so quantiles read back as value + 0.5.
constexpr double kLatencyLo = 0.0;
constexpr double kLatencyHi = 1024.0;
constexpr std::size_t kLatencyBins = 1024;
constexpr double kHopsLo = 0.0;
constexpr double kHopsHi = 256.0;
constexpr std::size_t kHopsBins = 256;
}  // namespace

const char* request_class_name(RequestClass cls) noexcept {
  switch (cls) {
    case RequestClass::kChordSearch:
      return "chord-search";
    case RequestClass::kChordStore:
      return "chord-store";
    case RequestClass::kSearch:
      return "search";
    case RequestClass::kStore:
      return "store";
    case RequestClass::kWalkerProbe:
      return "walker-probe";
  }
  return "unknown";
}

TraceCollector::TraceCollector(std::uint64_t seed, std::uint32_t sample_every)
    : sample_key_(mix64(seed ^ 0x7472616365ULL)),  // "trace"
      sample_every_(sample_every) {
  latency_.reserve(kRequestClassCount);
  hops_.reserve(kRequestClassCount);
  for (std::size_t c = 0; c < kRequestClassCount; ++c) {
    latency_.emplace_back(kLatencyLo, kLatencyHi, kLatencyBins);
    hops_.emplace_back(kHopsLo, kHopsHi, kHopsBins);
  }
}

void TraceCollector::bind(Network& net) {
  lanes_.clear();
  const std::uint32_t shards = net.shards().count();
  lanes_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    lanes_.emplace_back(ArenaAllocator<TraceEvent>(&net.shard_arena(s)));
  }
}

// shardcheck:hot-path(serial lane merge on the per-round path; appends into the recycled merged log, lanes cleared capacity-kept)
void TraceCollector::flush_lanes() {
  for (Lane& lane : lanes_) {
    if (lane.empty()) continue;
    log_.insert(log_.end(), lane.begin(), lane.end());
    lane.clear();
  }
}

void TraceCollector::end_round(Round round) {
  flush_lanes();  // catch serial-context lane stragglers (none expected)
  for (const TraceEvent& e : log_) {
    const auto c = static_cast<std::size_t>(e.cls);
    switch (static_cast<TraceEv>(e.ev)) {
      case TraceEv::kBegin:
        ++begun_[c];
        break;
      case TraceEv::kHop:
        break;
      case TraceEv::kEndOk:
        ++ok_[c];
        latency_[c].add(static_cast<double>(e.detail));
        hops_[c].add(static_cast<double>(e.hop));
        break;
      case TraceEv::kEndFail:
        ++failed_[c];
        break;
      case TraceEv::kEndCensored:
        ++censored_[c];
        break;
    }
  }
  events_recorded_ += log_.size();
  if (consumer_ && !log_.empty()) consumer_(round, log_.data(), log_.size());
  log_.clear();  // capacity kept: next round's appends recycle it
}

}  // namespace churnstore
