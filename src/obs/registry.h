// Unified metrics registry: one named counter/gauge/histogram surface over
// the repo's scattered instruments — Metrics counters, P2PSystem phase
// timers, heap-sentinel round stats, perf-counter readings — so exporters
// (obs/export.h) snapshot everything through one API instead of growing a
// bespoke column per instrument.
//
// Degradation contract (matches the perf-counter/heap-sentinel precedent):
// every entry carries an ok flag; a gauge whose source is unavailable
// (perf_event_open denied, sentinel compiled out) snapshots ok=false and
// exporters print null/n/a — never silent zeros dressed up as measurements.
//
// The registry is cold-path by design: it is built once per session and
// read once per round by exporters. Nothing here runs inside sharded hooks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.h"

namespace churnstore {

class P2PSystem;
class TraceCollector;

class MetricsRegistry {
 public:
  /// Reads the current value of a scalar instrument (counter or gauge).
  using Read = std::function<double()>;
  /// Reads whether the instrument's source is currently trustworthy.
  using Ok = std::function<bool()>;

  /// Register an always-valid scalar.
  void add(std::string name, Read read);
  /// Register a scalar whose validity is gated (perf counters, heap stats).
  void add_gated(std::string name, Read read, Ok ok);
  /// Register a borrowed histogram; snapshots expand to
  /// name.p50/.p95/.p99/.p999/.count. The histogram must outlive the
  /// registry.
  void add_histogram(std::string name, const Histogram* hist);

  struct Sample {
    std::string name;
    double value = 0.0;
    bool ok = true;  ///< false = source unavailable; render null, not 0
  };
  /// Evaluate every entry now, in registration order (deterministic output
  /// order is part of the jsonl format contract).
  [[nodiscard]] std::vector<Sample> snapshot() const;

 private:
  struct Entry {
    std::string name;
    Read read;
    Ok ok;  ///< null = always ok
  };
  std::vector<Entry> entries_;
  std::vector<std::pair<std::string, const Histogram*>> histograms_;
};

/// Adopt the standard instruments of a P2PSystem run: Metrics counters,
/// round/phase timers (gated on phase timing being enabled), heap-sentinel
/// round stats (gated on HeapSentinel::available). Borrow-only: `sys` must
/// outlive the registry.
void register_standard_metrics(MetricsRegistry& reg, P2PSystem& sys);

/// Adopt a trace collector's per-class latency/hop histograms and span
/// counters.
void register_trace_metrics(MetricsRegistry& reg, const TraceCollector& tc);

}  // namespace churnstore
