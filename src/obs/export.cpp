#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "core/scenario.h"

namespace churnstore {

namespace {

/// Chrome span track: request latency is measured in rounds; render one
/// round as one millisecond of virtual time so Perfetto's zoom is usable.
constexpr double kRoundUs = 1000.0;

void append_num(std::string& s, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  s += buf;
}

void append_u64(std::string& s, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  s += buf;
}

/// u64 fields (trace ids especially) must not round-trip through double —
/// %.12g would corrupt ids above 2^40.
void append_kv_u64(std::string& s, const char* key, std::uint64_t v) {
  s += '"';
  s += key;
  s += "\":";
  append_u64(s, v);
}

void append_kv(std::string& s, const char* key, double v, bool ok = true) {
  s += '"';
  s += key;
  s += "\":";
  if (ok) {
    append_num(s, v);
  } else {
    s += "null";  // source unavailable: n/a, never a fake zero
  }
}

bool is_host_metric(const std::string& name) {
  return name.rfind("secs.", 0) == 0 || name.rfind("heap.", 0) == 0;
}

}  // namespace

ObsConfig obs_config_from_extras(
    const std::map<std::string, std::string>& extras) {
  ObsConfig cfg;
  const std::string mode = extras_string(extras, "obs", "off");
  if (mode == "jsonl") {
    cfg.mode = ObsConfig::Mode::kJsonl;
  } else if (mode == "chrome") {
    cfg.mode = ObsConfig::Mode::kChrome;
  } else if (mode == "off" || mode == "none" || mode.empty()) {
    cfg.mode = ObsConfig::Mode::kNone;
  } else {
    throw std::invalid_argument("obs= must be jsonl|chrome|off, got " + mode);
  }
  cfg.path = extras_string(extras, "obs-file", "");
  const std::int64_t k = extras_int(extras, "trace-sample", 1);
  if (k < 0) throw std::invalid_argument("trace-sample= must be >= 0");
  cfg.sample_every = static_cast<std::uint32_t>(k);
  // obs-host=0 drops the wall-clock/heap fields: the remaining jsonl byte
  // stream is a pure function of the seed (S-invariance checkable by cmp).
  cfg.host_metrics = extras_int(extras, "obs-host", 1) != 0;
  return cfg;
}

std::string obs_path_with_label(const std::string& path,
                                const std::string& label) {
  if (label.empty()) return path;
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + "." + label;
  }
  return path.substr(0, dot) + "." + label + path.substr(dot);
}

ObsSession::ObsSession(P2PSystem& sys, ObsConfig config)
    : sys_(sys),
      config_(std::move(config)),
      trace_(sys.config().sim.seed,
             config_.sample_every == 0 ? 1 : config_.sample_every) {
  if (config_.mode == ObsConfig::Mode::kNone) {
    finalized_ = true;
    return;
  }
  if (config_.path.empty()) {
    config_.path = config_.mode == ObsConfig::Mode::kJsonl ? "obs.jsonl"
                                                           : "obs_trace.json";
  }
  out_.open(config_.path, std::ios::out | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("obs: cannot open output file " + config_.path);
  }

  trace_.bind(sys_.network());
  sys_.network().set_trace_collector(&trace_);
  trace_.set_consumer([this](Round round, const TraceEvent* ev,
                             std::size_t n) { consume_spans(round, ev, n); });
  register_standard_metrics(registry_, sys_);
  sys_.set_round_observer(this);

  if (config_.mode == ObsConfig::Mode::kChrome) {
    sys_.enable_phase_timing(true);
    prev_timers_ = sys_.phase_timers();
    prev_protocol_secs_ = sys_.protocol_secs();
    out_ << "{\"traceEvents\":[";
    // Track metadata: pid 0 = measured wall clock, pid 1 = virtual rounds.
    std::string meta;
    meta +=
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{"
        "\"name\":\"round phases (wall clock)\"}}";
    meta +=
        ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{"
        "\"name\":\"request spans (virtual: 1 round = 1ms)\"}}";
    meta +=
        ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"phases\"}}";
    const auto& protocols = sys_.protocols();
    for (std::size_t pi = 0; pi < protocols.size(); ++pi) {
      meta += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
      append_num(meta, static_cast<double>(pi + 1));
      meta += ",\"args\":{\"name\":\"protocol: ";
      meta += std::string(protocols[pi]->name());
      meta += "\"}}";
    }
    for (std::size_t c = 0; c < kRequestClassCount; ++c) {
      meta += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
      append_num(meta, static_cast<double>(c));
      meta += ",\"args\":{\"name\":\"";
      meta += request_class_name(static_cast<RequestClass>(c));
      meta += "\"}}";
    }
    out_ << meta;
    first_chrome_event_ = false;  // metadata already wrote the first events
  }
}

ObsSession::~ObsSession() { finalize(); }

void ObsSession::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (config_.mode == ObsConfig::Mode::kJsonl) {
    // Trailing summary object: per-class span counts + tail quantiles from
    // the drained histograms.
    std::string line = "{\"summary\":true";
    for (std::size_t c = 0; c < kRequestClassCount; ++c) {
      const auto cls = static_cast<RequestClass>(c);
      if (trace_.spans_begun(cls) == 0 && trace_.spans_ok(cls) == 0) continue;
      const std::string base = request_class_name(cls);
      line += ",\"" + base + "\":{";
      append_kv(line, "begun", static_cast<double>(trace_.spans_begun(cls)));
      line += ',';
      append_kv(line, "ok", static_cast<double>(trace_.spans_ok(cls)));
      line += ',';
      append_kv(line, "failed", static_cast<double>(trace_.spans_failed(cls)));
      line += ',';
      append_kv(line, "censored",
                static_cast<double>(trace_.spans_censored(cls)));
      const Histogram& lat = trace_.latency(cls);
      const Histogram& hops = trace_.hops(cls);
      const bool mass = lat.total() > 0;
      const auto quant = [&](const char* key, const Histogram& h, double q) {
        line += ',';
        append_kv(line, key, mass ? h.quantile(q) : 0.0, mass);
      };
      quant("latency_p50", lat, 0.50);
      quant("latency_p95", lat, 0.95);
      quant("latency_p99", lat, 0.99);
      quant("latency_p999", lat, 0.999);
      quant("hops_p50", hops, 0.50);
      quant("hops_p95", hops, 0.95);
      quant("hops_p99", hops, 0.99);
      line += '}';
    }
    line += ",";
    append_kv(line, "trace_events",
              static_cast<double>(trace_.events_recorded()));
    line += "}\n";
    out_ << line;
  } else if (config_.mode == ObsConfig::Mode::kChrome) {
    out_ << "]}";
  }
  if (out_.is_open()) out_.close();
  sys_.network().set_trace_collector(nullptr);
  sys_.set_round_observer(nullptr);
}

void ObsSession::on_round_observed(P2PSystem& sys) {
  if (finalized_) return;
  if (config_.mode == ObsConfig::Mode::kJsonl) {
    write_round_jsonl();
  } else {
    write_round_chrome(sys);
  }
}

void ObsSession::consume_spans(Round round, const TraceEvent* events,
                               std::size_t n) {
  (void)round;
  if (finalized_) return;
  std::string buf;
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& e = events[i];
    const auto ev = static_cast<TraceEv>(e.ev);
    const auto cls = static_cast<RequestClass>(e.cls);
    if (config_.mode == ObsConfig::Mode::kJsonl) {
      // One line per COMPLETED span; begins/hops are aggregated state.
      if (ev != TraceEv::kEndOk && ev != TraceEv::kEndFail &&
          ev != TraceEv::kEndCensored) {
        continue;
      }
      buf += "{\"span\":\"";
      buf += request_class_name(cls);
      buf += "\",\"outcome\":\"";
      buf += ev == TraceEv::kEndOk        ? "ok"
             : ev == TraceEv::kEndFail    ? "fail"
                                          : "censored";
      buf += "\",";
      append_kv_u64(buf, "trace", e.trace_id);
      buf += ',';
      append_kv_u64(buf, "end_round", e.round);
      buf += ',';
      append_kv_u64(buf, "vertex", e.vertex);
      buf += ',';
      append_kv_u64(buf, "latency_rounds", e.detail);
      buf += ',';
      append_kv_u64(buf, "hops", e.hop);
      buf += "}\n";
      continue;
    }
    // Chrome: end events render the whole span as one X slice on virtual
    // time; hop events render as instants inside it.
    if (ev == TraceEv::kEndOk || ev == TraceEv::kEndFail ||
        ev == TraceEv::kEndCensored) {
      const double start_us =
          (static_cast<double>(e.round) - static_cast<double>(e.detail)) *
          kRoundUs;
      buf += ",{\"name\":\"";
      buf += request_class_name(cls);
      buf += ev == TraceEv::kEndOk        ? ""
             : ev == TraceEv::kEndFail    ? " (fail)"
                                          : " (censored)";
      buf += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
      append_num(buf, static_cast<double>(e.cls));
      buf += ",\"ts\":";
      append_num(buf, start_us);
      buf += ",\"dur\":";
      append_num(buf, std::max(static_cast<double>(e.detail) * kRoundUs,
                               kRoundUs * 0.25));
      buf += ",\"args\":{";
      append_kv_u64(buf, "trace", e.trace_id);
      buf += ',';
      append_kv_u64(buf, "vertex", e.vertex);
      buf += ',';
      append_kv_u64(buf, "hops", e.hop);
      buf += "}}";
    } else if (ev == TraceEv::kHop) {
      buf += ",{\"name\":\"hop\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":";
      append_num(buf, static_cast<double>(e.cls));
      buf += ",\"ts\":";
      append_num(buf, static_cast<double>(e.round) * kRoundUs);
      buf += ",\"args\":{";
      append_kv_u64(buf, "trace", e.trace_id);
      buf += ',';
      append_kv_u64(buf, "vertex", e.vertex);
      buf += ',';
      append_kv_u64(buf, "kind", e.detail);
      buf += "}}";
    }
  }
  if (!buf.empty()) out_ << buf;
}

void ObsSession::write_round_jsonl() {
  std::string line = "{";
  append_kv(line, "round", static_cast<double>(sys_.network().round()));
  for (const MetricsRegistry::Sample& s : registry_.snapshot()) {
    if (!config_.host_metrics && is_host_metric(s.name)) continue;
    line += ',';
    append_kv(line, s.name.c_str(), s.value, s.ok);
  }
  line += "}\n";
  out_ << line;
}

void ObsSession::write_round_chrome(P2PSystem& sys) {
  const RoundPhaseTimers& t = sys.phase_timers();
  const std::vector<double>& proto = sys.protocol_secs();
  std::string buf;
  const auto slice = [&buf](const char* name, double pid, double tid,
                            double ts_us, double dur_us) {
    if (dur_us <= 0.0) return;
    buf += ",{\"name\":\"";
    buf += name;
    buf += "\",\"ph\":\"X\",\"pid\":";
    append_num(buf, pid);
    buf += ",\"tid\":";
    append_num(buf, tid);
    buf += ",\"ts\":";
    append_num(buf, ts_us);
    buf += ",\"dur\":";
    append_num(buf, dur_us);
    buf += "}";
  };
  const auto us = [](double secs) { return secs * 1e6; };

  const double churn = us(t.churn_secs - prev_timers_.churn_secs);
  const double soup = us(t.soup_secs - prev_timers_.soup_secs);
  const double handlers = us(t.handler_secs - prev_timers_.handler_secs);
  const double deliver = us(t.deliver_secs - prev_timers_.deliver_secs);
  const double dispatch = us(t.dispatch_secs - prev_timers_.dispatch_secs);

  double cursor = ts_cursor_us_;
  slice("churn", 0, 0, cursor, churn);
  cursor += churn;
  // Per-protocol breakdown of the soup+handler window, each protocol on
  // its own tid, laid out sequentially (they really do run sequentially).
  double proto_cursor = cursor;
  for (std::size_t pi = 0; pi < proto.size(); ++pi) {
    const double prev =
        pi < prev_protocol_secs_.size() ? prev_protocol_secs_[pi] : 0.0;
    const double dur = us(proto[pi] - prev);
    slice(std::string(sys.protocols()[pi]->name()).c_str(), 0,
          static_cast<double>(pi + 1), proto_cursor, dur);
    proto_cursor += dur;
  }
  slice("protocols", 0, 0, cursor, soup + handlers);
  cursor += soup + handlers;
  slice("deliver", 0, 0, cursor, deliver);
  cursor += deliver;
  slice("dispatch", 0, 0, cursor, dispatch);
  cursor += dispatch;
  ts_cursor_us_ = cursor;
  prev_timers_ = t;
  prev_protocol_secs_ = proto;
  if (!buf.empty()) out_ << buf;
}

}  // namespace churnstore
