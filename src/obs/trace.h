// Request-lifecycle tracing: per-hop spans for lookups/searches/probes,
// drained into per-request-class latency and hop histograms.
//
// The trace stream obeys the same determinism contract as the message
// stream (src/core/protocol.h): events emitted from sharded hooks are
// staged on per-shard arena-backed lanes and merged in canonical
// (phase, shard, vertex) order — the lanes flush at exactly the points
// Network::flush_shard_lanes merges the message lanes — so the byte
// stream of trace events is bit-identical for EVERY shards= value,
// serial or pooled (tests/sharded_engine_test.cpp pins this). Serial
// code (request start/finish outside sharded hooks) appends straight to
// the merged log.
//
// Sampling is deterministic: a trace id is sampled iff
// stream_rng(sample_key, id).next_below(sample_every) == 0, a pure
// function of (seed, id) with no wall-clock or global state, so the
// SAME requests are traced in every run of the same seed regardless of
// shard count or sampling decisions elsewhere.
//
// Heap discipline (PR-9 contract): lane appends draw from the owning
// shard's arena; the merged log and the per-class histograms are
// pre-grown/recycled buffers that reach steady-state capacity after
// warm-up, so steady-state rounds with tracing enabled perform ZERO
// global-heap allocations (tests/heap_quiesce_test.cpp measures this).
// The optional per-round Consumer (the obs exporters) is explicitly
// cold-path: file IO and JSON formatting allocate, and that cost is
// documented as exporter overhead, not engine traffic.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/types.h"
#include "stats/histogram.h"
#include "util/arena.h"
#include "util/rng.h"

namespace churnstore {

class Network;

/// Which request lifecycle a span belongs to; selects the Histogram pair
/// (latency-in-rounds, hops) the completed span drains into.
enum class RequestClass : std::uint8_t {
  kChordSearch = 0,  ///< chord_net get(): find_successor + fetch
  kChordStore = 1,   ///< chord_net put(): find_successor + store ack
  kSearch = 2,       ///< churnstore SearchManager locate + fetch
  kStore = 3,        ///< churnstore StoreManager (begin-only: no ack exists)
  kWalkerProbe = 4,  ///< k-walker baseline probe
};
inline constexpr std::size_t kRequestClassCount = 5;

/// Short stable name for exports ("chord-search", "search", ...).
[[nodiscard]] const char* request_class_name(RequestClass cls) noexcept;

/// Event kind within a span.
enum class TraceEv : std::uint8_t {
  kBegin = 0,        ///< request issued (detail unused)
  kHop = 1,          ///< one routing/fetch hop (detail = hop kind, hop = index)
  kEndOk = 2,        ///< success (detail = latency rounds, hop = hop metric)
  kEndFail = 3,      ///< definitive failure (same payload as kEndOk)
  kEndCensored = 4,  ///< initiator churned mid-request; excluded from hists
};

/// Hop-kind codes carried in TraceEvent::detail on kHop events.
inline constexpr std::uint32_t kHopIssue = 0;    ///< initiator issued a hop
inline constexpr std::uint32_t kHopForward = 1;  ///< router forwarded in place
inline constexpr std::uint32_t kHopFetch = 2;    ///< data-fetch attempt

/// One fixed-size POD trace record (24 bytes). The S-invariance test
/// compares raw event bytes, so the layout is part of the contract.
struct TraceEvent {
  std::uint64_t trace_id = 0;  ///< sampled request id (never 0 when traced)
  std::uint32_t round = 0;     ///< round stamp at emission
  std::uint32_t vertex = 0;    ///< vertex the event happened at
  std::uint32_t detail = 0;    ///< kHop: hop kind; kEnd*: latency in rounds
  std::uint16_t hop = 0;       ///< kHop: hop index; kEnd*: class hop metric
  std::uint8_t cls = 0;        ///< RequestClass
  std::uint8_t ev = 0;         ///< TraceEv
};
static_assert(sizeof(TraceEvent) == 24, "trace events are a 24-byte POD");

/// Convenience constructor centralizing the narrowing casts.
[[nodiscard]] inline TraceEvent make_trace_event(
    std::uint64_t trace_id, Round round, Vertex vertex, std::uint64_t detail,
    std::uint64_t hop, RequestClass cls, TraceEv ev) noexcept {
  TraceEvent e;
  e.trace_id = trace_id;
  e.round = static_cast<std::uint32_t>(round);
  e.vertex = static_cast<std::uint32_t>(vertex);
  e.detail = static_cast<std::uint32_t>(detail);
  e.hop = hop > 0xffff ? 0xffff : static_cast<std::uint16_t>(hop);
  e.cls = static_cast<std::uint8_t>(cls);
  e.ev = static_cast<std::uint8_t>(ev);
  return e;
}

/// Collects the trace stream of one run. Borrowed by Network (installed
/// with Network::set_trace_collector); must outlive the rounds it
/// observes and be destroyed BEFORE the Network whose shard arenas back
/// its lanes. Protocols reach it through ShardContext::trace (sharded
/// hooks) and Network::trace_serial (serial context).
class TraceCollector {
 public:
  /// sample_every = k samples 1/k of trace ids (0 and 1 both mean "all").
  TraceCollector(std::uint64_t seed, std::uint32_t sample_every);

  /// Size one event lane per shard, element storage drawn from that
  /// shard's arena. Call once, before the first traced round.
  void bind(Network& net);

  /// Deterministic sampling decision for a request id (pure in seed+id).
  [[nodiscard]] bool sampled(std::uint64_t id) const noexcept {
    if (sample_every_ <= 1) return true;
    return stream_rng(sample_key_, id).next_below(sample_every_) == 0;
  }
  [[nodiscard]] std::uint32_t sample_every() const noexcept {
    return sample_every_;
  }

  /// Append from serial context (request start/finish, merge epilogues):
  /// goes straight to the merged log at the current position.
  // shardcheck:hot-path(per-round serial trace append; the merged log is cleared, capacity kept, every end_round, so steady-state appends recycle storage)
  void record(const TraceEvent& ev) { log_.push_back(ev); }

  /// Append from a sharded hook: staged on the shard's arena-backed lane,
  /// merged canonically at the next flush_lanes().
  // shardcheck:sharded-hook(per-shard lane append reached from protocol sharded hooks via ShardContext::trace; touches only the caller shard's lane)
  void lane_append(std::uint32_t shard, const TraceEvent& ev) {
    lanes_[shard].push_back(ev);
  }

  /// Merge staged lane events into the log in ascending shard order.
  /// Network::flush_shard_lanes calls this at exactly the message-lane
  /// merge points, so trace order is pinned to the same canonical
  /// schedule for every shard count.
  void flush_lanes();

  /// End-of-round drain: route completed spans into the per-class
  /// histograms and span counters, hand the round's raw events to the
  /// consumer (if any), then recycle the log. Called by P2PSystem after
  /// each round when the collector is installed; drivers stepping the
  /// Network directly call it themselves.
  void end_round(Round round);

  /// Cold-path sink for the round's merged events (exporters). Runs
  /// inside end_round before the log recycles; allocation there is
  /// exporter overhead, outside the heap-quiet claim.
  using Consumer = std::function<void(Round round, const TraceEvent* events,
                                      std::size_t count)>;
  void set_consumer(Consumer consumer) { consumer_ = std::move(consumer); }

  /// --- drained results ----------------------------------------------------
  [[nodiscard]] const Histogram& latency(RequestClass cls) const noexcept {
    return latency_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] const Histogram& hops(RequestClass cls) const noexcept {
    return hops_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] std::uint64_t spans_begun(RequestClass cls) const noexcept {
    return begun_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] std::uint64_t spans_ok(RequestClass cls) const noexcept {
    return ok_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] std::uint64_t spans_failed(RequestClass cls) const noexcept {
    return failed_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] std::uint64_t spans_censored(RequestClass cls) const noexcept {
    return censored_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] std::uint64_t events_recorded() const noexcept {
    return events_recorded_;
  }

 private:
  using Lane = std::vector<TraceEvent, ArenaAllocator<TraceEvent>>;

  std::uint64_t sample_key_;
  std::uint32_t sample_every_;
  // shardcheck:arena-backed(one lane per shard, element storage from that shard's arena; the outer vector is sized once in bind and never grows)
  std::vector<Lane> lanes_;
  // shardcheck:arena-backed(merged per-round event log: cleared capacity-kept every end_round, so steady-state appends recycle global-heap storage acquired during warm-up)
  std::vector<TraceEvent> log_;
  std::vector<Histogram> latency_;  // kRequestClassCount entries, fixed in ctor
  std::vector<Histogram> hops_;     // kRequestClassCount entries, fixed in ctor
  std::array<std::uint64_t, kRequestClassCount> begun_{};
  std::array<std::uint64_t, kRequestClassCount> ok_{};
  std::array<std::uint64_t, kRequestClassCount> failed_{};
  std::array<std::uint64_t, kRequestClassCount> censored_{};
  std::uint64_t events_recorded_ = 0;
  Consumer consumer_;
};

}  // namespace churnstore
