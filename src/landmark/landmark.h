// Landmark tree construction (paper Algorithm 2).
//
// Every committee member periodically grows a tree of "landmark" nodes:
// it picks `fanout` of its walk samples as children and sends them a grow
// message carrying the committee's member ids; each child becomes a
// landmark for the committee (it can point searchers at the members),
// then recruits `fanout` children of its own, one tree level per round, up
// to depth mu (paper equation 4). Landmarks expire after 2*tau rounds; the
// committee rebuilds the trees every tau rounds, so the live landmark set
// stays Omega(sqrt(n)) and near-uniformly distributed over the Core.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "committee/committee.h"
#include "core/protocol.h"
#include "net/config.h"
#include "net/network.h"
#include "walk/token_soup.h"

namespace churnstore {

struct LandmarkState {
  std::uint64_t kid = 0;
  ItemId item = 0;
  Purpose purpose = Purpose::kStorage;
  PeerId search_root = kNoPeer;
  std::vector<PeerId> committee;  ///< the members this landmark points to
  Round expiry = 0;
  std::uint64_t wave = 0;          ///< rebuild wave id (creation round)
  std::uint32_t pending_depth = 0; ///< levels still to grow below this node
};

class LandmarkManager final : public Protocol {
 public:
  LandmarkManager(TokenSoup& soup, CommitteeManager& committees,
                  const ProtocolConfig& config);
  /// Construct and attach in one step (standalone tests/benches). The soup
  /// and committee manager must already be attached to `net`.
  LandmarkManager(Network& net, TokenSoup& soup, CommitteeManager& committees,
                  const ProtocolConfig& config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "landmark";
  }
  /// Subscribes to LandmarkRebuildRequest: committee members trigger tree
  /// (re)builds through the event bus, not a direct dependency.
  void on_attach(Network& net) override;
  /// Grow pending tree levels and sweep expired landmarks.
  void on_round_begin() override;
  /// Routes kLandmarkGrow; returns true if consumed.
  bool on_message(Vertex v, const Message& m) override;
  void on_churn(Vertex v, PeerId old_peer, PeerId new_peer) override;

  /// Start a new tree rooted at committee member `v` (also reachable by
  /// publishing LandmarkRebuildRequest).
  void start_tree(Vertex v, const Membership& m);

  /// Landmark state at vertex v for committee kid (nullptr if none/expired).
  [[nodiscard]] const LandmarkState* state_at(Vertex v, std::uint64_t kid) const;

  /// Visit every live landmark of committee `kid`: fn(vertex, state).
  template <typename Fn>
  void for_each_landmark(std::uint64_t kid, Fn&& fn) {
    const auto it = index_.find(kid);
    if (it == index_.end()) return;
    const Round now = net().round();
    auto& verts = it->second;
    std::size_t write = 0;
    for (std::size_t read = 0; read < verts.size(); ++read) {
      const Vertex v = verts[read];
      const auto sit = state_[v].find(kid);
      if (sit == state_[v].end() || sit->second.expiry < now) continue;
      fn(v, sit->second);
      verts[write++] = v;
    }
    verts.resize(write);
  }

  /// Number of currently live landmarks for committee kid (exact count).
  [[nodiscard]] std::size_t live_count(std::uint64_t kid) const;

  [[nodiscard]] std::uint32_t tree_depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint32_t ttl() const noexcept { return ttl_; }

 private:
  void grow_children(Vertex v, LandmarkState& st);

  TokenSoup& soup_;
  CommitteeManager& committees_;
  ProtocolConfig config_;
  std::uint32_t depth_ = 0;
  std::uint32_t ttl_ = 0;

  std::vector<std::unordered_map<std::uint64_t, LandmarkState>> state_;
  /// kid -> vertices that (may) hold a landmark for it; validated lazily.
  std::unordered_map<std::uint64_t, std::vector<Vertex>> index_;
  /// Vertices with pending growth this round.
  std::vector<Vertex> grow_queue_;
};

}  // namespace churnstore
