// Landmark tree construction (paper Algorithm 2).
//
// Every committee member periodically grows a tree of "landmark" nodes:
// it picks `fanout` of its walk samples as children and sends them a grow
// message carrying the committee's member ids; each child becomes a
// landmark for the committee (it can point searchers at the members),
// then recruits `fanout` children of its own, one tree level per round, up
// to depth mu (paper equation 4). Landmarks expire after 2*tau rounds; the
// committee rebuilds the trees every tau rounds, so the live landmark set
// stays Omega(sqrt(n)) and near-uniformly distributed over the Core.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "committee/committee.h"
#include "core/protocol.h"
#include "net/config.h"
#include "net/network.h"
#include "walk/token_soup.h"

namespace churnstore {

struct LandmarkState {
  std::uint64_t kid = 0;
  ItemId item = 0;
  Purpose purpose = Purpose::kStorage;
  PeerId search_root = kNoPeer;
  std::vector<PeerId> committee;  ///< the members this landmark points to
  Round expiry = 0;
  std::uint64_t wave = 0;          ///< rebuild wave id (creation round)
  std::uint32_t pending_depth = 0; ///< levels still to grow below this node
};

class LandmarkManager final : public Protocol {
 public:
  LandmarkManager(TokenSoup& soup, CommitteeManager& committees,
                  const ProtocolConfig& config);
  /// Construct and attach in one step (standalone tests/benches). The soup
  /// and committee manager must already be attached to `net`.
  LandmarkManager(Network& net, TokenSoup& soup, CommitteeManager& committees,
                  const ProtocolConfig& config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "landmark";
  }
  /// Subscribes to LandmarkRebuildRequest: committee members trigger tree
  /// (re)builds through the event bus, not a direct dependency.
  void on_attach(Network& net) override;
  /// Sharded round: each shard grows its own vertices' pending tree levels
  /// (per-shard grow queues, sends through ctx) and sweeps its slice of
  /// expired landmark state; the kid -> vertices index sweeps at the merge.
  [[nodiscard]] bool sharded_round() const noexcept override { return true; }
  void on_round_begin(std::uint32_t shard, ShardContext& ctx) override;
  void on_round_merge() override;
  /// Routes kLandmarkGrow; touches only the receiving vertex's state plus
  /// per-shard staging (grow queue, index additions, counters).
  [[nodiscard]] bool sharded_dispatch() const noexcept override { return true; }
  bool on_message(Vertex v, const Message& m, ShardContext& ctx) override;
  void on_dispatch_merge() override;
  void on_churn(Vertex v, PeerId old_peer, PeerId new_peer) override;

  /// Start a new tree rooted at committee member `v` (also reachable by
  /// publishing LandmarkRebuildRequest). Serial context only.
  void start_tree(Vertex v, const Membership& m);
  void start_tree(Vertex v, std::uint64_t kid, ItemId item, Purpose purpose,
                  PeerId search_root, const std::vector<PeerId>& members);

  /// Landmark state at vertex v for committee kid (nullptr if none/expired).
  [[nodiscard]] const LandmarkState* state_at(Vertex v, std::uint64_t kid) const;

  /// Visit every live landmark of committee `kid`: fn(vertex, state).
  template <typename Fn>
  void for_each_landmark(std::uint64_t kid, Fn&& fn) {
    const auto it = index_.find(kid);
    if (it == index_.end()) return;
    const Round now = net().round();
    auto& verts = it->second;
    std::size_t write = 0;
    for (std::size_t read = 0; read < verts.size(); ++read) {
      const Vertex v = verts[read];
      const auto sit = state_[v].find(kid);
      if (sit == state_[v].end() || sit->second.expiry < now) continue;
      fn(v, sit->second);
      verts[write++] = v;
    }
    verts.resize(write);
  }

  /// Number of currently live landmarks for committee kid (exact count).
  [[nodiscard]] std::size_t live_count(std::uint64_t kid) const;

  [[nodiscard]] std::uint32_t tree_depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint32_t ttl() const noexcept { return ttl_; }

 private:
  /// Sends through ctx when given (sharded round phase), else serially.
  void grow_children(Vertex v, LandmarkState& st, ShardContext* ctx);

  TokenSoup& soup_;
  CommitteeManager& committees_;
  ProtocolConfig config_;
  std::uint32_t depth_ = 0;
  std::uint32_t ttl_ = 0;

  // shardcheck:arena-backed(per-vertex landmark maps grow on rebuild-wave messages — O(wave events) global-heap nodes, landmark control plane outside the soup heap-quiet invariant)
  std::vector<std::unordered_map<std::uint64_t, LandmarkState>> state_;
  /// kid -> vertices that (may) hold a landmark for it; validated lazily.
  /// Global map: only mutated from serial context (merge hooks).
  // shardcheck:cold-state(mutated only from the serial merge that applies staged index_add entries)
  std::unordered_map<std::uint64_t, std::vector<Vertex>> index_;
  /// Per-shard staging, applied in ascending shard order at the merges.
  struct ShardStage {
    std::vector<Vertex> grow_queue;  ///< vertices with pending growth
    std::vector<std::pair<std::uint64_t, Vertex>> index_add;
    std::uint64_t created = 0;
    std::uint64_t collisions = 0;
  };
  // shardcheck:cold-state(outer vector sized to the shard count at attach; inner staging vectors carry reasoned R6 suppressions at their growth sites)
  std::vector<ShardStage> stage_;
};

}  // namespace churnstore
