#include "landmark/landmark.h"

#include <algorithm>

namespace churnstore {

namespace {
// kLandmarkGrow word layout:
//   [0] kid [1] item [2] purpose [3] search_root [4] depth [5] wave
//   [6] committee count m  [7 .. 7+m) committee member ids
constexpr std::size_t kCommitteeAt = 7;
}  // namespace

LandmarkManager::LandmarkManager(TokenSoup& soup, CommitteeManager& committees,
                                 const ProtocolConfig& config)
    : soup_(soup), committees_(committees), config_(config) {}

LandmarkManager::LandmarkManager(Network& net_ref, TokenSoup& soup,
                                 CommitteeManager& committees,
                                 const ProtocolConfig& config)
    : LandmarkManager(soup, committees, config) {
  on_attach(net_ref);
}

void LandmarkManager::on_attach(Network& net_ref) {
  Protocol::on_attach(net_ref);
  depth_ = landmark_tree_depth(net().n(), net().config().churn.k,
                               config_.delta, committees_.target_size());
  ttl_ = std::max<std::uint32_t>(
      4, static_cast<std::uint32_t>(config_.landmark_ttl_taus *
                                    committees_.tau()));
  state_.assign(net().n(), {});
  stage_.assign(net().shards().count(), {});
  net().events().subscribe<LandmarkRebuildRequest>(
      [this](LandmarkRebuildRequest& req) {
        start_tree(req.vertex, req.kid, req.item, req.purpose,
                   req.search_root, *req.members);
      });
}

void LandmarkManager::on_churn(Vertex v, PeerId, PeerId) { state_[v].clear(); }

const LandmarkState* LandmarkManager::state_at(Vertex v,
                                               std::uint64_t kid) const {
  const auto it = state_[v].find(kid);
  if (it == state_[v].end()) return nullptr;
  if (it->second.expiry < net().round()) return nullptr;
  return &it->second;
}

std::size_t LandmarkManager::live_count(std::uint64_t kid) const {
  const auto it = index_.find(kid);
  if (it == index_.end()) return 0;
  const Round now = net().round();
  std::size_t alive = 0;
  for (const Vertex v : it->second) {
    const auto sit = state_[v].find(kid);
    if (sit != state_[v].end() && sit->second.expiry >= now) ++alive;
  }
  return alive;
}

void LandmarkManager::grow_children(Vertex v, LandmarkState& st,
                                    ShardContext* ctx) {
  const PeerId self = net().peer_at(v);
  const auto children = soup_.samples(v).recent_distinct(
      config_.tree_fanout, {self});
  for (const PeerId child : children) {
    Message msg;
    msg.src = self;
    msg.dst = child;
    msg.type = MsgType::kLandmarkGrow;
    msg.words = {st.kid,
                 st.item,
                 static_cast<std::uint64_t>(st.purpose),
                 st.search_root,
                 st.pending_depth,
                 st.wave,
                 st.committee.size()};
    msg.words.insert(msg.words.end(), st.committee.begin(),
                     st.committee.end());
    if (ctx != nullptr) {
      ctx->send(v, std::move(msg));
    } else {
      net().send(v, std::move(msg));
    }
  }
  st.pending_depth = 0;
}

void LandmarkManager::start_tree(Vertex v, const Membership& m) {
  start_tree(v, m.kid, m.item, m.purpose, m.search_root, m.members);
}

void LandmarkManager::start_tree(Vertex v, std::uint64_t kid, ItemId item,
                                 Purpose purpose, PeerId search_root,
                                 const std::vector<PeerId>& members) {
  // The member acts as the tree root: it is not itself a landmark (it is
  // better — it holds the item), it just recruits the first level.
  LandmarkState root;
  root.kid = kid;
  root.item = item;
  root.purpose = purpose;
  root.search_root = search_root;
  root.committee = members;
  root.wave = static_cast<std::uint64_t>(net().round());
  root.pending_depth = depth_;
  grow_children(v, root, nullptr);
}

void LandmarkManager::on_round_begin(std::uint32_t shard, ShardContext& ctx) {
  // Grow one tree level: every vertex with pending depth recruits children.
  // The queue was staged by this shard's own dispatch task last round, in
  // ascending vertex order.
  ShardStage& stage = stage_[shard];
  // shardcheck:ok(R6: level-grow queue swap-out: O(recruiting vertices per rebuild wave), landmark control plane outside the soup heap-quiet invariant)
  std::vector<Vertex> queue;
  queue.swap(stage.grow_queue);
  for (const Vertex v : queue) {
    // shardcheck:ok(R2: per-vertex map whose insertion history is fixed by the canonical dispatch order, so bucket order is the same for every shard count; pinned by the ShardedFullStack S-invariance tests)
    for (auto& [kid, st] : state_[v]) {
      if (st.pending_depth > 0) grow_children(v, st, &ctx);
    }
  }

  // Periodic garbage collection of expired landmark state ("discards any
  // information about I" after the TTL, per Algorithm 2 step 4); this
  // shard's vertex slice only — the global index sweeps at the merge.
  const Round now = net().round();
  if (now % ttl_ == 0) {
    for (Vertex v = ctx.begin(); v < ctx.end(); ++v) {
      auto& st_map = state_[v];
      // shardcheck:ok(R2: TTL sweep — each element is erased or kept independently, so visit order cannot change the result)
      for (auto it = st_map.begin(); it != st_map.end();) {
        it = (it->second.expiry < now) ? st_map.erase(it) : std::next(it);
      }
    }
  }
}

void LandmarkManager::on_round_merge() {
  const Round now = net().round();
  if (now % ttl_ != 0) return;
  // shardcheck:ok(R2: serial merge sweep with order-independent per-entry compaction; no sends or charges depend on visit order)
  for (auto it = index_.begin(); it != index_.end();) {
    auto& verts = it->second;
    std::size_t write = 0;
    for (const Vertex v : verts) {
      if (state_[v].count(it->first)) verts[write++] = v;
    }
    verts.resize(write);
    it = verts.empty() ? index_.erase(it) : std::next(it);
  }
}

bool LandmarkManager::on_message(Vertex v, const Message& m,
                                 ShardContext& ctx) {
  if (m.type != MsgType::kLandmarkGrow) return false;
  ShardStage& stage = stage_[ctx.shard()];
  const std::uint64_t kid = m.words[0];
  const std::uint64_t wave = m.words[5];
  auto& st_map = state_[v];
  const auto it = st_map.find(kid);
  if (it != st_map.end() && it->second.wave == wave &&
      it->second.expiry >= net().round()) {
    // Already recruited into this wave's tree ("unused" check of the paper,
    // resolved at the child): the branch dies here.
    ++stage.collisions;
    return true;
  }
  LandmarkState st;
  st.kid = kid;
  st.item = m.words[1];
  st.purpose = static_cast<Purpose>(m.words[2]);
  st.search_root = m.words[3];
  const auto depth = static_cast<std::uint32_t>(m.words[4]);
  st.wave = wave;
  const std::uint64_t count = m.words[6];
  // shardcheck:ok(R6: committee list decode from a landmark-grow message: O(committee size) per rebuild event)
  st.committee.assign(
      m.words.begin() + kCommitteeAt,
      m.words.begin() + kCommitteeAt + static_cast<std::ptrdiff_t>(count));
  st.expiry = net().round() + ttl_;
  st.pending_depth = depth > 1 ? depth - 1 : 0;
  const bool was_absent = (it == st_map.end());
  st_map[kid] = std::move(st);
  // shardcheck:ok(R6: staged growth queue: O(recruiting vertices per rebuild wave))
  if (st_map[kid].pending_depth > 0) stage.grow_queue.push_back(v);
  // shardcheck:ok(R6: staged index update: O(new landmarks per rebuild wave))
  if (was_absent) stage.index_add.emplace_back(kid, v);
  ++stage.created;
  return true;
}

void LandmarkManager::on_dispatch_merge() {
  // Ascending shard order + ascending vertex order within a shard's
  // dispatch = the index receives vertices in ascending global order, as a
  // serial dispatch would have inserted them.
  for (ShardStage& stage : stage_) {
    for (const auto& [kid, v] : stage.index_add) index_[kid].push_back(v);
    stage.index_add.clear();
    net().metrics().count_landmark_created(stage.created);
    net().metrics().count_landmark_collision(stage.collisions);
    stage.created = stage.collisions = 0;
  }
}

}  // namespace churnstore
