// Committee election and maintenance (paper Algorithm 1).
//
// A committee is a clique of ~h log n near-random nodes entrusted with a
// persistent task (storing an item, or driving a search). Creation: the
// creator invites h log n of its walk samples. Maintenance: every 2*tau
// rounds the members (1) count the walks they received in the anchor round,
// (2) exchange counts so the ranking is common knowledge, (3) the top-ranked
// member c_r invites the sources of h log n walks that stopped at it in the
// anchor round to form the next committee, and (4) the old members resign.
//
// The paper's footnote (c_r may be churned out) is realized explicitly:
// the top R ("leader_redundancy") ranked members all issue invitations,
// candidates announce themselves to the clique, and every lower-ranked
// candidate that observes a higher-ranked announcement dissolves its own
// formation — so exactly one new committee survives whenever at least one
// candidate lives through the 3-round handover window.
//
// Per-cycle message timeline, with t = round - epoch_base (mod P = 2*tau):
//   t=0  anchor: samples of this round are the cycle's currency
//   t=1  members send kCommitteeCount (plus their IDA piece, section 4.4)
//   t=2  top-R candidates send kCommitteeInvite + kCommitteeCandidateAlive
//   t=3  invitees send kCommitteeAccept; outranked candidates send dissolve
//   t=4  surviving best candidate sends kCommitteeConfirm (with payload)
//   t=5  old members resign
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/protocol.h"
#include "net/config.h"
#include "net/network.h"
#include "storage/erasure_store.h"
#include "walk/token_soup.h"

namespace churnstore {

enum class Purpose : std::uint8_t { kStorage = 0, kSearch = 1 };

/// Sentinel piece index meaning "full replica, not an IDA piece".
inline constexpr std::uint32_t kNoPiece = 0xffffffffu;

/// Confirmed committee-member state held at one vertex.
struct Membership {
  std::uint64_t kid = 0;       ///< committee instance id (== item id for storage)
  Purpose purpose = Purpose::kStorage;
  ItemId item = 0;
  PeerId search_root = kNoPeer;  ///< initiator to report to (search only)
  Round epoch_base = 0;          ///< phase reference for the refresh cycle
  Round expire = -1;             ///< dissolve deadline (< 0: persistent)
  std::vector<PeerId> members;   ///< the clique (includes self)
  std::vector<std::uint8_t> payload;  ///< item replica or IDA piece bytes
  std::uint32_t piece_index = kNoPiece;
  std::uint32_t ida_k = 0;            ///< pieces needed (erasure mode)
  std::uint64_t original_size = 0;    ///< item size before encoding

  // --- per-cycle scratch, reset each refresh ---------------------------
  std::uint32_t my_count = 0;
  std::vector<std::pair<PeerId, std::uint32_t>> counts;
  std::vector<IdaPiece> gathered_pieces;
  bool candidate = false;
  std::uint32_t my_rank = 0;
  std::uint32_t best_alive_rank = 0xffffffffu;
  bool dissolved = false;
  /// Set when a successor committee confirmed this cycle; old members only
  /// resign after a successful handover (the paper explicitly allows
  /// postponing resignation to ensure smooth task transition).
  bool handover_seen = false;
  std::vector<PeerId> invited;
  std::vector<PeerId> accepted;
};

/// Published (via Network::events()) for every confirmed member that should
/// (re)build its landmark tree this round (creation and every rebuild
/// period). LandmarkManager subscribes; the committee layer does not know
/// the landmark layer exists. Carries the membership fields by value/pointer
/// into committee staging (not a Membership*): requests are staged per shard
/// during the sharded round phase and published at the merge, after the
/// phase may already have erased the membership they came from. `members`
/// points into that staging and is valid ONLY for the duration of the
/// synchronous publish — subscribers must copy, never retain the pointer.
struct LandmarkRebuildRequest {
  Vertex vertex = 0;
  std::uint64_t kid = 0;
  ItemId item = 0;
  Purpose purpose = Purpose::kStorage;
  PeerId search_root = kNoPeer;
  const std::vector<PeerId>* members = nullptr;
};

class CommitteeManager final : public Protocol {
 public:
  CommitteeManager(TokenSoup& soup, const ProtocolConfig& config);
  /// Construct and attach in one step (standalone tests/benches). The soup
  /// must already be attached to `net`.
  CommitteeManager(Network& net, TokenSoup& soup, const ProtocolConfig& config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "committee";
  }
  void on_attach(Network& net) override;
  /// Sharded round: every shard runs the refresh-cycle phases for its own
  /// vertices (per-(round, vertex) RNG streams, sends through ctx); registry
  /// updates, landmark-rebuild events, and committee counters are staged per
  /// shard and applied at the merge in canonical order.
  [[nodiscard]] bool sharded_round() const noexcept override { return true; }
  void on_round_begin(std::uint32_t shard, ShardContext& ctx) override;
  void on_round_merge() override;
  /// Message handlers only touch the receiving vertex's maps (plus the
  /// per-shard active flags), so dispatch may run sharded.
  [[nodiscard]] bool sharded_dispatch() const noexcept override { return true; }
  bool on_message(Vertex v, const Message& m, ShardContext& ctx) override;
  void on_churn(Vertex v, PeerId old_peer, PeerId new_peer) override;

  /// Create a committee entrusted with (purpose, item). Returns false when
  /// the creator does not yet hold enough walk samples (caller retries).
  /// `payload` is the full item content; in erasure mode it is IDA-encoded
  /// and spread one piece per member.
  bool create(Vertex creator, std::uint64_t kid, Purpose purpose, ItemId item,
              PeerId search_root, const std::vector<std::uint8_t>& payload,
              Round expire);

  /// --- lookup -----------------------------------------------------------
  [[nodiscard]] const Membership* membership_at(Vertex v, std::uint64_t kid) const;
  [[nodiscard]] std::size_t memberships_at(Vertex v) const {
    return state_[v].size();
  }

  /// Vertices currently holding at least one membership (up to `max`).
  /// Used by the *adaptive* adversary demonstration — a capability the
  /// paper's oblivious model explicitly denies the adversary.
  [[nodiscard]] std::vector<Vertex> occupied_vertices(std::uint32_t max) const;

  /// Subscribe this manager's occupied vertices to the kAdaptive
  /// adversary's AdaptiveTargetQuery channel. Deliberately violates the
  /// paper's oblivious model (see AdversaryKind::kAdaptive); call at most
  /// once, after attach.
  void expose_to_adaptive_adversary();

  /// --- god-view instrumentation (measurement only, never fed back) -----
  struct Info {
    ItemId item = 0;
    Purpose purpose = Purpose::kStorage;
    PeerId search_root = kNoPeer;
    Round created = 0;
    std::uint32_t generations = 0;  ///< successful re-formations
    std::vector<PeerId> last_members;
  };
  [[nodiscard]] const Info* info(std::uint64_t kid) const;
  /// Number of peers of the last confirmed generation still in the network.
  [[nodiscard]] std::size_t alive_members(std::uint64_t kid) const;

  /// --- derived constants ---------------------------------------------------
  [[nodiscard]] std::uint32_t refresh_period() const noexcept { return period_; }
  [[nodiscard]] std::uint32_t target_size() const noexcept { return target_; }
  [[nodiscard]] std::uint32_t tau() const noexcept { return tau_; }
  [[nodiscard]] const ProtocolConfig& config() const noexcept { return config_; }

 private:
  struct PendingJoin {
    std::uint64_t kid = 0;
    std::uint32_t rank = 0;
    PeerId candidate = kNoPeer;
    Purpose purpose = Purpose::kStorage;
    ItemId item = 0;
    PeerId search_root = kNoPeer;
    Round new_base = 0;
    Round expire = -1;
    Round received = 0;
    bool accept_sent = false;
  };

  /// Per-shard staging for cross-shard state the round phase may not touch
  /// directly: the god-view registry, the landmark-rebuild event channel,
  /// and the global committee counters. Applied in on_round_merge, scanning
  /// shards in ascending order.
  struct ShardStage {
    struct Confirm {
      std::uint64_t kid;
      std::vector<PeerId> members;
    };
    struct Rebuild {
      Vertex vertex;
      std::uint64_t kid;
      ItemId item;
      Purpose purpose;
      PeerId search_root;
      std::vector<PeerId> members;
    };
    std::vector<Confirm> confirms;
    std::vector<Rebuild> rebuilds;
    std::uint64_t formed = 0;
    std::uint64_t lost = 0;
  };

  void run_cycle_phase(Vertex v, Membership& m, Round now, std::uint64_t t_mod,
                       Round anchor, ShardContext& ctx, ShardStage& stage);
  void send_invites(Vertex v, Membership& m, Round now, Round anchor,
                    ShardContext& ctx);
  void confirm_committee(Vertex v, Membership& m, Round now, Round anchor,
                         ShardContext& ctx, ShardStage& stage);
  /// Deterministic per-(round, vertex) sample pick; `rng` must be the
  /// vertex's stream for this round (vertex_rng), never a shared sequence.
  [[nodiscard]] std::vector<PeerId> pick_sources(Vertex v, Round anchor,
                                                 std::uint32_t want,
                                                 Rng& rng) const;
  /// Stream keyed by (round, vertex, kid): a vertex creating or leading
  /// several committees in one round draws independent randomness per kid.
  [[nodiscard]] Rng vertex_rng(Vertex v, std::uint64_t kid) const {
    return stream_rng(mix64(stream_salt_ ^ mix64(kid) ^
                            static_cast<std::uint64_t>(net().round())),
                      v);
  }

  TokenSoup& soup_;
  ProtocolConfig config_;
  ErasurePolicy erasure_;
  std::uint64_t stream_salt_ = 0;
  std::uint32_t tau_ = 0;
  std::uint32_t period_ = 0;
  std::uint32_t target_ = 0;

  // shardcheck:arena-backed(per-vertex membership maps grow on committee events — O(events x log n) global-heap nodes per cycle; the committee control plane is outside the soup heap-quiet invariant)
  std::vector<std::unordered_map<std::uint64_t, Membership>> state_;
  // shardcheck:arena-backed(pending-join nodes: O(formation events) global-heap growth per cycle, same control-plane budget as state_)
  std::vector<std::unordered_map<std::uint64_t, PendingJoin>> pending_;
  // shardcheck:cold-state(god-view registry mutated only from the serial create path and the serial confirm merge)
  std::unordered_map<std::uint64_t, Info> registry_;
  /// Per-vertex "holds any membership/pending state" flags plus a per-shard
  /// population count, so each shard's round task scans its vertex range
  /// only when it has work (canonical ascending-vertex order either way).
  // shardcheck:cold-state(sized to n at attach in serial context; hooks flip flags in place)
  std::vector<std::uint8_t> active_flag_;
  // shardcheck:cold-state(sized to the shard count at attach; elements adjusted in place)
  std::vector<std::uint32_t> active_count_;  ///< per shard
  // shardcheck:cold-state(outer vector sized to the shard count at attach; the inner staging vectors carry reasoned R6 suppressions at their growth sites)
  std::vector<ShardStage> stage_;             ///< per shard

  void mark_active(Vertex v);
};

}  // namespace churnstore
