#include "committee/committee.h"

#include <algorithm>

namespace churnstore {

namespace {

// kCommitteeInvite (creation) / kCommitteeConfirm word layout.
//   [0] kid  [1] purpose  [2] item  [3] search_root  [4] rank
//   [5] epoch_base  [6] expire+1 (0 = persistent)  [7] flags
//   [8] piece_index  [9] ida_k  [10] original_size
//   [11] member count m  [12 .. 12+m) member ids
// blob: item replica or IDA piece.
constexpr std::uint64_t kFlagCreation = 1;
constexpr std::size_t kMembersAt = 12;

// kCommitteeCount: [0] kid [1] count [2] piece_index [3] ida_k
//                  [4] original_size; blob: IDA piece (erasure mode only).
// kCommitteeCandidateAlive / kCommitteeAccept / kCommitteeDissolve:
//   [0] kid [1] rank.

std::uint64_t encode_expire(Round expire) {
  return expire < 0 ? 0 : static_cast<std::uint64_t>(expire) + 1;
}

Round decode_expire(std::uint64_t w) {
  return w == 0 ? -1 : static_cast<Round>(w - 1);
}

}  // namespace

CommitteeManager::CommitteeManager(TokenSoup& soup,
                                   const ProtocolConfig& config)
    : soup_(soup), config_(config), erasure_(config.ida_surplus) {}

CommitteeManager::CommitteeManager(Network& net_ref, TokenSoup& soup,
                                   const ProtocolConfig& config)
    : CommitteeManager(soup, config) {
  on_attach(net_ref);
}

void CommitteeManager::on_attach(Network& net_ref) {
  Protocol::on_attach(net_ref);
  const std::uint32_t n = net().n();
  stream_salt_ = net().protocol_rng().fork(0x636f6dULL).next();
  tau_ = soup_.tau();
  period_ = std::max<std::uint32_t>(
      8, static_cast<std::uint32_t>(config_.refresh_taus * tau_));
  target_ = committee_target(n, config_);
  state_.assign(n, {});
  pending_.assign(n, {});
  active_flag_.assign(n, 0);
  active_count_.assign(net().shards().count(), 0);
  stage_.assign(net().shards().count(), {});
}

void CommitteeManager::on_churn(Vertex v, PeerId, PeerId) {
  state_[v].clear();
  pending_[v].clear();
}

void CommitteeManager::expose_to_adaptive_adversary() {
  net().events().subscribe<AdaptiveTargetQuery>([this](AdaptiveTargetQuery& q) {
    for (const Vertex v : occupied_vertices(q.quota)) q.victims.push_back(v);
  });
}

void CommitteeManager::mark_active(Vertex v) {
  if (!active_flag_[v]) {
    active_flag_[v] = 1;
    ++active_count_[net().shards().shard_of(v)];
  }
}

const Membership* CommitteeManager::membership_at(Vertex v,
                                                  std::uint64_t kid) const {
  const auto it = state_[v].find(kid);
  return it == state_[v].end() ? nullptr : &it->second;
}

std::vector<Vertex> CommitteeManager::occupied_vertices(
    std::uint32_t max) const {
  std::vector<Vertex> out;
  for (Vertex v = 0; v < net().n() && out.size() < max; ++v) {
    if (active_flag_[v] && !state_[v].empty()) out.push_back(v);
  }
  return out;
}

const CommitteeManager::Info* CommitteeManager::info(std::uint64_t kid) const {
  const auto it = registry_.find(kid);
  return it == registry_.end() ? nullptr : &it->second;
}

std::size_t CommitteeManager::alive_members(std::uint64_t kid) const {
  const Info* inf = info(kid);
  if (!inf) return 0;
  std::size_t alive = 0;
  for (const PeerId p : inf->last_members) alive += net().is_alive(p);
  return alive;
}

// shardcheck:sharded-hook(called from send_invites on the shard lanes; the serial create path obeys the same rules)
std::vector<PeerId> CommitteeManager::pick_sources(Vertex v, Round anchor,
                                                   std::uint32_t want,
                                                   // shardcheck:ok(R1: callers pass their own per-vertex vertex_rng, never a shared sequence)
                                                   Rng& rng) const {
  const PeerId self = net().peer_at(v);
  // shardcheck:ok(R6: committee formation draws O(want) sources per refresh event, not per token; control plane is outside the soup heap-quiet invariant)
  std::vector<PeerId> out;
  if (anchor >= 0) {
    // Paper: the leader uses the walks that stopped at it in the anchor
    // round; we dedupe sources and draw `want` of them.
    const SampleView anchor_samples = soup_.samples(v).at(anchor);
    // shardcheck:ok(R6: anchor-sample dedup pool: O(samples at the leader) per formation event)
    std::vector<PeerId> pool(anchor_samples.begin(), anchor_samples.end());
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    std::erase(pool, kNoPeer);
    rng.shuffle(pool);
    for (const PeerId p : pool) {
      if (out.size() >= want) break;
      out.push_back(p);
    }
  }
  if (out.size() < want) {
    const auto extra = soup_.samples(v).recent_distinct(want, out);
    for (const PeerId p : extra) {
      if (out.size() >= want) break;
      if (p != kNoPeer && p != self) out.push_back(p);
    }
  }
  return out;
}

bool CommitteeManager::create(Vertex creator, std::uint64_t kid,
                              Purpose purpose, ItemId item, PeerId search_root,
                              const std::vector<std::uint8_t>& payload,
                              Round expire) {
  const Round now = net().round();
  const auto want = static_cast<std::uint32_t>(
      std::max(1.0, config_.invite_oversample) * target_);
  Rng rng = vertex_rng(creator, kid);
  const std::vector<PeerId> members = pick_sources(creator, -1, want, rng);
  if (members.size() < 3) return false;

  const bool erasure =
      config_.use_erasure_coding && purpose == Purpose::kStorage;
  std::vector<IdaPiece> pieces;
  std::uint32_t ida_k = 0;
  if (erasure) {
    // K is fixed for the item's lifetime, sized from the *target* committee
    // (the steady-state survivor count), not the oversampled invite list.
    ida_k = erasure_.pieces_needed(target_);
    pieces = erasure_.encode(payload, ida_k,
                             static_cast<std::uint32_t>(members.size()));
  }

  Info& inf = registry_[kid];
  inf.item = item;
  inf.purpose = purpose;
  inf.search_root = search_root;
  inf.created = now;
  inf.last_members = members;

  for (std::size_t i = 0; i < members.size(); ++i) {
    Message msg;
    msg.src = net().peer_at(creator);
    msg.dst = members[i];
    msg.type = MsgType::kCommitteeInvite;
    msg.words = {kid,
                 static_cast<std::uint64_t>(purpose),
                 item,
                 search_root,
                 0 /*rank*/,
                 static_cast<std::uint64_t>(now),
                 encode_expire(expire),
                 kFlagCreation,
                 erasure ? static_cast<std::uint64_t>(pieces[i].index)
                         : kNoPiece,
                 ida_k,
                 payload.size()};
    msg.words.push_back(members.size());
    msg.words.insert(msg.words.end(), members.begin(), members.end());
    msg.blob = erasure ? pieces[i].bytes : payload;
    net().send(creator, std::move(msg));
  }
  net().metrics().count_committee_formed();
  return true;
}

// shardcheck:sharded-hook(runs on the shard lanes via run_cycle_phase)
void CommitteeManager::send_invites(Vertex v, Membership& m, Round now,
                                    Round anchor, ShardContext& ctx) {
  (void)now;
  const auto want = static_cast<std::uint32_t>(
      std::max(1.0, config_.invite_oversample) * target_);
  Rng rng = vertex_rng(v, m.kid);
  m.invited = pick_sources(v, anchor, want, rng);
  const PeerId self = net().peer_at(v);
  for (const PeerId p : m.invited) {
    Message msg;
    msg.src = self;
    msg.dst = p;
    msg.type = MsgType::kCommitteeInvite;
    msg.words = {m.kid,
                 static_cast<std::uint64_t>(m.purpose),
                 m.item,
                 m.search_root,
                 m.my_rank,
                 static_cast<std::uint64_t>(anchor),
                 encode_expire(m.expire),
                 0 /*flags: re-formation, no payload yet*/,
                 kNoPiece,
                 m.ida_k,
                 m.original_size,
                 0 /*no member list yet; final list comes with confirm*/};
    ctx.send(v, std::move(msg));
  }
  // Announce candidacy to the clique so outranked candidates stand down.
  for (const PeerId p : m.members) {
    if (p == self) continue;
    Message msg;
    msg.src = self;
    msg.dst = p;
    msg.type = MsgType::kCommitteeCandidateAlive;
    msg.words = {m.kid, m.my_rank};
    ctx.send(v, std::move(msg));
  }
  m.best_alive_rank = std::min(m.best_alive_rank, m.my_rank);
}

// shardcheck:sharded-hook(runs on the shard lanes via run_cycle_phase)
void CommitteeManager::confirm_committee(Vertex v, Membership& m, Round now,
                                         Round anchor, ShardContext& ctx,
                                         ShardStage& stage) {
  const bool erasure =
      config_.use_erasure_coding && m.purpose == Purpose::kStorage;
  // shardcheck:ok(R6: erasure scratch on committee confirmation: O(committee) bytes per formation event)
  std::vector<IdaPiece> pieces;
  // shardcheck:ok(R6: payload copy on committee confirmation: O(item bytes) per formation event)
  std::vector<std::uint8_t> full_payload = m.payload;
  if (erasure) {
    // Gather pieces: my own plus the ones attached to count messages.
    // shardcheck:ok(R6: piece gather for reconstruct: O(committee) per formation event)
    std::vector<IdaPiece> gathered = m.gathered_pieces;
    if (m.piece_index != kNoPiece) {
      gathered.push_back(IdaPiece{m.piece_index, m.payload});
    }
    const auto rebuilt = erasure_.reconstruct(
        gathered, m.ida_k, static_cast<std::size_t>(m.original_size));
    if (!rebuilt) {
      // Too many pieces lost to churn within one refresh period: the item
      // cannot be re-dispersed. The committee (and the item) dies here.
      ++stage.lost;
      return;
    }
    full_payload = *rebuilt;
    pieces = erasure_.encode(full_payload, m.ida_k,
                             static_cast<std::uint32_t>(m.accepted.size()));
  }

  std::sort(m.accepted.begin(), m.accepted.end());
  m.accepted.erase(std::unique(m.accepted.begin(), m.accepted.end()),
                   m.accepted.end());
  const PeerId self = net().peer_at(v);
  for (std::size_t i = 0; i < m.accepted.size(); ++i) {
    Message msg;
    msg.src = self;
    msg.dst = m.accepted[i];
    msg.type = MsgType::kCommitteeConfirm;
    msg.words = {m.kid,
                 static_cast<std::uint64_t>(m.purpose),
                 m.item,
                 m.search_root,
                 m.my_rank,
                 static_cast<std::uint64_t>(anchor),
                 encode_expire(m.expire),
                 0,
                 erasure && i < pieces.size()
                     ? static_cast<std::uint64_t>(pieces[i].index)
                     : kNoPiece,
                 m.ida_k,
                 erasure ? m.original_size : full_payload.size()};
    msg.words.push_back(m.accepted.size());
    msg.words.insert(msg.words.end(), m.accepted.begin(), m.accepted.end());
    msg.blob = (erasure && i < pieces.size()) ? pieces[i].bytes : full_payload;
    ctx.send(v, std::move(msg));
  }

  // Tell the outgoing generation the handover succeeded so it can resign.
  for (const PeerId p : m.members) {
    if (p == self) continue;
    Message msg;
    msg.src = self;
    msg.dst = p;
    msg.type = MsgType::kCommitteeHandover;
    msg.words = {m.kid};
    ctx.send(v, std::move(msg));
  }
  m.handover_seen = true;

  // The god-view registry is global: stage the generation update for the
  // serial merge.
  // shardcheck:ok(R6: staged god-view registry update: O(committees confirming per cycle))
  stage.confirms.push_back(ShardStage::Confirm{m.kid, m.accepted});
  ++stage.formed;
  (void)now;
}

// shardcheck:sharded-hook(per-vertex phase driver called from the sharded on_round_begin lane)
void CommitteeManager::run_cycle_phase(Vertex v, Membership& m, Round now,
                                       std::uint64_t t_mod, Round anchor,
                                       ShardContext& ctx, ShardStage& stage) {
  const PeerId self = net().peer_at(v);
  const bool erasure =
      config_.use_erasure_coding && m.purpose == Purpose::kStorage;
  switch (t_mod) {
    case 1: {
      // Reset the cycle scratch and exchange walk counts (plus IDA pieces,
      // so a future leader can reconstruct the item).
      m.counts.clear();
      m.gathered_pieces.clear();
      m.candidate = false;
      m.dissolved = false;
      m.handover_seen = false;
      m.invited.clear();
      m.accepted.clear();
      m.best_alive_rank = 0xffffffffu;
      m.my_count =
          static_cast<std::uint32_t>(soup_.samples(v).count_at(anchor));
      for (const PeerId p : m.members) {
        if (p == self) continue;
        Message msg;
        msg.src = self;
        msg.dst = p;
        msg.type = MsgType::kCommitteeCount;
        msg.words = {m.kid, m.my_count,
                     erasure ? static_cast<std::uint64_t>(m.piece_index)
                             : kNoPiece,
                     m.ida_k, m.original_size};
        if (erasure && m.piece_index != kNoPiece) msg.blob = m.payload;
        ctx.send(v, std::move(msg));
      }
      break;
    }
    case 2: {
      // Ranking is common knowledge: everyone received the same counts.
      // shardcheck:ok(R6: handover ranking: O(committee size) per cycle event)
      std::vector<std::pair<std::uint64_t, PeerId>> ranking;
      ranking.reserve(m.counts.size() + 1);
      ranking.emplace_back(m.my_count, self);
      for (const auto& [p, c] : m.counts) ranking.emplace_back(c, p);
      std::sort(ranking.begin(), ranking.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second > b.second;
                });
      std::uint32_t rank = 0xffffffffu;
      for (std::size_t i = 0; i < ranking.size(); ++i) {
        if (ranking[i].second == self) {
          rank = static_cast<std::uint32_t>(i);
          break;
        }
      }
      if (rank < config_.leader_redundancy) {
        m.candidate = true;
        m.my_rank = rank;
        send_invites(v, m, now, anchor, ctx);
      }
      break;
    }
    case 3: {
      if (m.candidate && m.best_alive_rank < m.my_rank) {
        // A better-ranked candidate survived to issue invitations; stand
        // down and dissolve this formation.
        m.dissolved = true;
        for (const PeerId p : m.invited) {
          Message msg;
          msg.src = self;
          msg.dst = p;
          msg.type = MsgType::kCommitteeDissolve;
          msg.words = {m.kid, m.my_rank};
          ctx.send(v, std::move(msg));
        }
      }
      break;
    }
    case 4: {
      if (m.candidate && !m.dissolved && !m.accepted.empty()) {
        confirm_committee(v, m, now, anchor, ctx, stage);
      }
      break;
    }
    default:
      break;
  }
}

void CommitteeManager::on_round_begin(std::uint32_t shard, ShardContext& ctx) {
  if (active_count_[shard] == 0) return;
  const Round now = net().round();
  const std::uint32_t rebuild = std::max<std::uint32_t>(
      4, static_cast<std::uint32_t>(config_.landmark_rebuild_taus * tau_));
  ShardStage& stage = stage_[shard];

  // shardcheck:ok(R6: expiry sweep scratch: O(expiring committees per cycle))
  std::vector<std::uint64_t> to_erase;
  for (Vertex v = ctx.begin(); v < ctx.end(); ++v) {
    if (!active_flag_[v]) continue;
    auto& st = state_[v];
    auto& pn = pending_[v];

    // Invitee side: accept the best-ranked invitation received last round.
    // shardcheck:ok(R2: per-vertex map whose insertion history is fixed by the canonical dispatch order, so bucket order is the same for every shard count; pinned by the ShardedFullStack S-invariance tests)
    for (auto it = pn.begin(); it != pn.end();) {
      PendingJoin& pj = it->second;
      if (!pj.accept_sent && pj.received == now - 1) {
        Message msg;
        msg.src = net().peer_at(v);
        msg.dst = pj.candidate;
        msg.type = MsgType::kCommitteeAccept;
        msg.words = {pj.kid, pj.rank};
        ctx.send(v, std::move(msg));
        pj.accept_sent = true;
        ++it;
      } else if (pj.received < now - 3) {
        it = pn.erase(it);  // confirm never came; candidate died
      } else {
        ++it;
      }
    }

    to_erase.clear();
    // shardcheck:ok(R2: same as above — insertion history of state_[v] is S-invariant, so the emission order this loop produces is too)
    for (auto& [kid, m] : st) {
      if (m.expire >= 0 && now >= m.expire) {
        to_erase.push_back(kid);
        continue;
      }
      // First landmark wave right after creation (members install at the end
      // of epoch_base + 1, so their first active round is t == 2), then one
      // wave per rebuild period aligned after each handover window. The
      // event channel is shared, so the request is staged (with a copy of
      // the membership fields) and published at the merge.
      const std::int64_t t = now - m.epoch_base;
      if (t == 2 || (t >= 6 && (t - 6) % rebuild == 0)) {
        // shardcheck:ok(R6: staged landmark rebuild request: O(committees per rebuild wave))
        stage.rebuilds.push_back(ShardStage::Rebuild{
            v, kid, m.item, m.purpose, m.search_root, m.members});
      }
      if (t >= static_cast<std::int64_t>(period_)) {
        const std::uint64_t t_mod =
            static_cast<std::uint64_t>(t) % period_;
        if (t_mod == 5) {
          // Old generation resigns once a successor confirmed; if the
          // re-formation failed (all candidates churned mid-handover), the
          // members stay on and retry next cycle — the paper explicitly
          // permits postponing resignation. Confirmed successors have
          // epoch_base == anchor, so t == 5 < period_ leaves them alone.
          if (m.handover_seen) {
            to_erase.push_back(kid);
          } else {
            ++stage.lost;  // failed re-formation
          }
          continue;
        }
        if (t_mod >= 1 && t_mod <= 4) {
          const Round anchor = now - static_cast<Round>(t_mod);
          run_cycle_phase(v, m, now, t_mod, anchor, ctx, stage);
        }
      }
    }
    for (const std::uint64_t kid : to_erase) st.erase(kid);

    if (st.empty() && pn.empty()) {
      active_flag_[v] = 0;
      --active_count_[shard];
    }
  }
}

void CommitteeManager::on_round_merge() {
  // Canonical order: ascending shard, staging order within a shard (which
  // is ascending vertex) — the same stream a serial run produces.
  for (ShardStage& stage : stage_) {
    for (ShardStage::Confirm& c : stage.confirms) {
      Info& inf = registry_[c.kid];
      inf.last_members = std::move(c.members);
      ++inf.generations;
    }
    stage.confirms.clear();
    for (const ShardStage::Rebuild& r : stage.rebuilds) {
      LandmarkRebuildRequest req{r.vertex,      r.kid,  r.item,
                                 r.purpose,     r.search_root,
                                 &r.members};
      net().events().publish(req);
    }
    stage.rebuilds.clear();
    net().metrics().count_committee_formed(stage.formed);
    net().metrics().count_committee_lost(stage.lost);
    stage.formed = stage.lost = 0;
  }
}

bool CommitteeManager::on_message(Vertex v, const Message& m,
                                  ShardContext& ctx) {
  (void)ctx;  // handlers only mutate v-owned state (+ shard-local flags)
  switch (m.type) {
    case MsgType::kCommitteeInvite: {
      const std::uint64_t kid = m.words[0];
      const auto flags = m.words[7];
      if (flags & kFlagCreation) {
        Membership mem;
        mem.kid = kid;
        mem.purpose = static_cast<Purpose>(m.words[1]);
        mem.item = m.words[2];
        mem.search_root = m.words[3];
        mem.epoch_base = static_cast<Round>(m.words[5]);
        mem.expire = decode_expire(m.words[6]);
        mem.piece_index = static_cast<std::uint32_t>(m.words[8]);
        mem.ida_k = static_cast<std::uint32_t>(m.words[9]);
        mem.original_size = m.words[10];
        const std::uint64_t count = m.words[11];
        // shardcheck:ok(R6: membership decode from a handover message: O(committee size) per event)
        mem.members.assign(m.words.begin() + kMembersAt,
                           m.words.begin() + kMembersAt +
                               static_cast<std::ptrdiff_t>(count));
        // shardcheck:ok(R6: payload decode from a handover message: O(item bytes) per event)
        mem.payload.assign(m.blob.begin(), m.blob.end());
        state_[v][kid] = std::move(mem);
        mark_active(v);
      } else {
        auto& pj = pending_[v][kid];
        const auto rank = static_cast<std::uint32_t>(m.words[4]);
        if (pj.candidate == kNoPeer || rank < pj.rank) {
          pj.kid = kid;
          pj.rank = rank;
          pj.candidate = m.src;
          pj.purpose = static_cast<Purpose>(m.words[1]);
          pj.item = m.words[2];
          pj.search_root = m.words[3];
          pj.new_base = static_cast<Round>(m.words[5]);
          pj.expire = decode_expire(m.words[6]);
          pj.received = net().round();
          pj.accept_sent = false;
        }
        mark_active(v);
      }
      return true;
    }
    case MsgType::kCommitteeCount: {
      const auto it = state_[v].find(m.words[0]);
      if (it == state_[v].end()) return true;
      Membership& mem = it->second;
      // shardcheck:ok(R6: count-message aggregation: O(committee size) per formation event)
      mem.counts.emplace_back(m.src,
                              static_cast<std::uint32_t>(m.words[1]));
      const auto piece_index = static_cast<std::uint32_t>(m.words[2]);
      if (piece_index != kNoPiece) {
        // shardcheck:ok(R6: erasure piece gather: O(committee) per formation event)
        mem.gathered_pieces.push_back(IdaPiece{piece_index, m.blob.to_vector()});
      }
      return true;
    }
    case MsgType::kCommitteeHandover: {
      const auto it = state_[v].find(m.words[0]);
      if (it != state_[v].end()) it->second.handover_seen = true;
      return true;
    }
    case MsgType::kCommitteeCandidateAlive: {
      const auto it = state_[v].find(m.words[0]);
      if (it == state_[v].end()) return true;
      it->second.best_alive_rank =
          std::min(it->second.best_alive_rank,
                   static_cast<std::uint32_t>(m.words[1]));
      return true;
    }
    case MsgType::kCommitteeAccept: {
      const auto it = state_[v].find(m.words[0]);
      if (it == state_[v].end()) return true;
      Membership& mem = it->second;
      // shardcheck:ok(R6: accept votes: O(committee size) per formation event)
      if (mem.candidate && !mem.dissolved) mem.accepted.push_back(m.src);
      return true;
    }
    case MsgType::kCommitteeDissolve: {
      auto& pn = pending_[v];
      const auto it = pn.find(m.words[0]);
      if (it != pn.end() && it->second.candidate == m.src) pn.erase(it);
      return true;
    }
    case MsgType::kCommitteeConfirm: {
      const std::uint64_t kid = m.words[0];
      Membership mem;
      mem.kid = kid;
      mem.purpose = static_cast<Purpose>(m.words[1]);
      mem.item = m.words[2];
      mem.search_root = m.words[3];
      mem.epoch_base = static_cast<Round>(m.words[5]);
      mem.expire = decode_expire(m.words[6]);
      mem.piece_index = static_cast<std::uint32_t>(m.words[8]);
      mem.ida_k = static_cast<std::uint32_t>(m.words[9]);
      mem.original_size = m.words[10];
      const std::uint64_t count = m.words[11];
      // shardcheck:ok(R6: membership decode from a confirm message: O(committee size) per event)
      mem.members.assign(
          m.words.begin() + kMembersAt,
          m.words.begin() + kMembersAt + static_cast<std::ptrdiff_t>(count));
      // shardcheck:ok(R6: payload decode from a confirm message: O(item bytes) per event)
      mem.payload.assign(m.blob.begin(), m.blob.end());
      state_[v][kid] = std::move(mem);
      pending_[v].erase(kid);
      mark_active(v);
      return true;
    }
    default:
      return false;
  }
}

}  // namespace churnstore
