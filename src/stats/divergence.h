// Distribution-distance measures used to verify the Soup Theorem's
// near-uniformity claims: total variation distance against uniform,
// chi-square statistic, and min/max probability scaled by n.
#pragma once

#include <cstdint>
#include <vector>

namespace churnstore {

/// Total variation distance between the empirical distribution induced by
/// `counts` and the uniform distribution over counts.size() outcomes.
[[nodiscard]] double tvd_from_uniform(const std::vector<std::uint64_t>& counts);

/// Chi-square statistic of counts against the uniform expectation.
[[nodiscard]] double chi_square_uniform(const std::vector<std::uint64_t>& counts);

struct UniformityReport {
  double tvd = 0.0;
  double chi_square = 0.0;
  /// min/max empirical probability multiplied by the number of outcomes
  /// (so ideal uniform gives both == 1.0). The Soup Theorem's claim is that
  /// these stay within constant factors: [1/17, 3/2] in the paper.
  double min_prob_times_n = 0.0;
  double max_prob_times_n = 0.0;
  std::uint64_t total = 0;
  /// Fraction of outcomes with zero observations.
  double zero_fraction = 0.0;
};

[[nodiscard]] UniformityReport uniformity_report(
    const std::vector<std::uint64_t>& counts);

}  // namespace churnstore
