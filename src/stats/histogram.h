// Fixed-bin histogram for rounds-to-success distributions and token loads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace churnstore {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); values outside are clamped to edge bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void merge(const Histogram& other);
  /// Zero every count in place (capacity and layout kept — the per-round
  /// LookupStats reset must not reallocate on the hot path).
  void clear() noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;

  /// Value v such that fraction q of the mass lies below v (bin midpoint).
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Compact ASCII rendering (one line per non-empty bin).
  [[nodiscard]] std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace churnstore
