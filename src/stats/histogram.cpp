#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace churnstore {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::int64_t>(std::floor(t * static_cast<double>(counts_.size())));
  bin = std::clamp<std::int64_t>(bin, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ || other.hi_ != hi_)
    throw std::invalid_argument("Histogram::merge: incompatible layout");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return bin_lo(bin + 1);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  if (!(q > 0.0)) q = 0.0;  // negative and NaN both mean "the minimum"
  if (q > 1.0) q = 1.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t acc = 0;
  std::size_t last_nonempty = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) last_nonempty = i;
    acc += counts_[i];
    if (acc > target) return (bin_lo(i) + bin_hi(i)) / 2.0;
  }
  // q == 1: target == total, so the scan consumed every count without ever
  // exceeding the target. The answer is the highest OBSERVED bin — returning
  // hi_ here (the old behavior) invented a value beyond the data whenever
  // all mass sat in lower bins (e.g. a single clamped edge bin).
  return (bin_lo(last_nonempty) + bin_hi(last_nonempty)) / 2.0;
}

void Histogram::clear() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

std::string Histogram::render(std::size_t max_width) const {
  std::uint64_t peak = 0;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = peak ? static_cast<std::size_t>(
                                static_cast<double>(counts_[i]) /
                                static_cast<double>(peak) *
                                static_cast<double>(max_width))
                          : 0;
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(std::max<std::size_t>(bar, 1), '#') << " " << counts_[i]
       << "\n";
  }
  return os.str();
}

}  // namespace churnstore
