#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace churnstore {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double linear_slope(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double nn = static_cast<double>(n);
  const double denom = nn * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (nn * sxy - sx * sy) / denom;
}

double loglog_slope(const std::vector<double>& x, const std::vector<double>& y) {
  std::vector<double> lx, ly;
  const std::size_t n = std::min(x.size(), y.size());
  lx.reserve(n);
  ly.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] > 0 && y[i] > 0) {
      lx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  return linear_slope(lx, ly);
}

}  // namespace churnstore
