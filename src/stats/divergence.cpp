#include "stats/divergence.h"

#include <algorithm>
#include <cmath>

namespace churnstore {

double tvd_from_uniform(const std::vector<std::uint64_t>& counts) {
  if (counts.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 1.0;
  const double u = 1.0 / static_cast<double>(counts.size());
  double acc = 0.0;
  for (const auto c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    acc += std::abs(p - u);
  }
  return acc / 2.0;
}

double chi_square_uniform(const std::vector<std::uint64_t>& counts) {
  if (counts.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  const double expected =
      static_cast<double>(total) / static_cast<double>(counts.size());
  double acc = 0.0;
  for (const auto c : counts) {
    const double d = static_cast<double>(c) - expected;
    acc += d * d / expected;
  }
  return acc;
}

UniformityReport uniformity_report(const std::vector<std::uint64_t>& counts) {
  UniformityReport rep;
  if (counts.empty()) return rep;
  std::uint64_t total = 0;
  std::uint64_t zeros = 0;
  std::uint64_t mn = counts[0];
  std::uint64_t mx = counts[0];
  for (const auto c : counts) {
    total += c;
    zeros += (c == 0);
    mn = std::min(mn, c);
    mx = std::max(mx, c);
  }
  rep.total = total;
  rep.zero_fraction =
      static_cast<double>(zeros) / static_cast<double>(counts.size());
  if (total == 0) return rep;
  const double n = static_cast<double>(counts.size());
  rep.min_prob_times_n = static_cast<double>(mn) / static_cast<double>(total) * n;
  rep.max_prob_times_n = static_cast<double>(mx) / static_cast<double>(total) * n;
  rep.tvd = tvd_from_uniform(counts);
  rep.chi_square = chi_square_uniform(counts);
  return rep;
}

}  // namespace churnstore
