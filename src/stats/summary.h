// Streaming and batch summary statistics used throughout benches and tests:
// Welford mean/variance accumulation, percentiles, and normal-approximation
// confidence intervals over Monte-Carlo trials.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace churnstore {

/// Numerically stable streaming accumulator (Welford).
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  /// Half-width of the ~95% normal CI for the mean.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch percentile; q in [0,1]; linear interpolation; copies the data.
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// Least-squares slope of log(y) against log(x); used to estimate scaling
/// exponents (e.g. "search time grows like log n", "landmarks like sqrt n").
[[nodiscard]] double loglog_slope(const std::vector<double>& x,
                                  const std::vector<double>& y);

/// Ordinary least-squares slope of y against x.
[[nodiscard]] double linear_slope(const std::vector<double>& x,
                                  const std::vector<double>& y);

}  // namespace churnstore
