#include "core/stacks.h"

#include <stdexcept>

#include "baseline/chord.h"
#include "baseline/chord_net/chord_net.h"
#include "core/scenario.h"
#include "baseline/flooding.h"
#include "baseline/kwalker.h"
#include "baseline/sqrt_replication.h"

namespace churnstore {

WorkloadOutcome ChurnstoreService::search_outcome(std::uint64_t sid) const {
  const SearchStatus* st = sys_.search_status(sid);
  WorkloadOutcome out;
  if (!st) return out;
  out.done = st->finished;
  out.located = st->succeeded_locate();
  out.fetched = st->succeeded_fetch();
  out.censored = st->initiator_churned && !st->succeeded_locate();
  out.located_round = st->located;
  out.fetched_round = st->fetched;
  return out;
}

namespace {

struct StackEntry {
  std::string summary;
  StackBuilder builder;
};

std::map<std::string, StackEntry>& registry() {
  // shardcheck:ok(R4: Meyers registry of stack builders — populated by static initializers, read-only once trials start)
  static std::map<std::string, StackEntry> stacks;
  return stacks;
}

BuiltSystem build_churnstore(const SystemConfig& config, const StackExtras&) {
  BuiltSystem built;
  built.system = std::make_unique<P2PSystem>(config);
  built.owned_service = std::make_unique<ChurnstoreService>(*built.system);
  built.service = built.owned_service.get();
  return built;
}

BuiltSystem build_chord(const SystemConfig& config, const StackExtras& extras) {
  const std::string variant = extras_string(extras, "chord", "net");
  BuiltSystem built;
  if (variant == "ring") {
    // Legacy idealized-routing ring simulator (overlay traffic NOT charged
    // to Network metrics); kept for parity checks against chord=net.
    ChordBaseline::Options opts;
    opts.replication = static_cast<std::uint32_t>(
        extras_int(extras, "chord-replication", opts.replication));
    opts.stabilize_period = static_cast<std::uint32_t>(
        extras_int(extras, "chord-stabilize", opts.stabilize_period));
    opts.item_bits = config.protocol.item_bits;

    auto chord = std::make_unique<ChordBaseline>(opts);
    ChordBaseline* service = chord.get();
    std::vector<std::unique_ptr<Protocol>> mods;
    mods.push_back(std::move(chord));
    built.system = std::make_unique<P2PSystem>(config, std::move(mods));
    built.service = service;
    return built;
  }
  if (variant != "net") {
    throw std::invalid_argument("chord= accepts 'net' or 'ring', got: " +
                                variant);
  }
  // Message-accurate Chord on the Network layer (default): every lookup,
  // stabilization, and transfer is a charged Message, so hop and bit
  // columns are measured, not estimated.
  ChordNetProtocol::Options opts;
  opts.successors = static_cast<std::uint32_t>(
      extras_int(extras, "chord-replication", opts.successors));
  opts.stabilize_period = static_cast<std::uint32_t>(
      extras_int(extras, "chord-stabilize", opts.stabilize_period));
  opts.replicate_period = static_cast<std::uint32_t>(
      extras_int(extras, "chord-replicate", opts.replicate_period));
  opts.item_bits = config.protocol.item_bits;

  auto chord = std::make_unique<ChordNetProtocol>(opts);
  ChordNetProtocol* service = chord.get();
  std::vector<std::unique_ptr<Protocol>> mods;
  mods.push_back(std::move(chord));
  built.system = std::make_unique<P2PSystem>(config, std::move(mods));
  built.service = service;
  return built;
}

BuiltSystem build_flooding(const SystemConfig& config,
                           const StackExtras& extras) {
  FloodingStore::Options opts;
  opts.refresh_period = static_cast<std::uint32_t>(
      extras_int(extras, "flood-refresh", 8));
  opts.item_bits = config.protocol.item_bits;

  auto flood = std::make_unique<FloodingStore>(opts);
  FloodingStore* service = flood.get();
  std::vector<std::unique_ptr<Protocol>> mods;
  mods.push_back(std::move(flood));

  BuiltSystem built;
  built.system = std::make_unique<P2PSystem>(config, std::move(mods));
  built.service = service;
  return built;
}

BuiltSystem build_kwalker(const SystemConfig& config,
                          const StackExtras& extras) {
  KWalkerSearch::Options opts;
  opts.walkers =
      static_cast<std::uint32_t>(extras_int(extras, "walkers", 16));
  opts.replication = static_cast<std::uint32_t>(
      extras_int(extras, "replication", opts.replication));
  opts.item_bits = config.protocol.item_bits;

  auto soup = std::make_unique<TokenSoup>(config.walk);
  auto kw = std::make_unique<KWalkerSearch>(*soup, opts);
  KWalkerSearch* service = kw.get();
  std::vector<std::unique_ptr<Protocol>> mods;
  mods.push_back(std::move(soup));
  mods.push_back(std::move(kw));

  BuiltSystem built;
  built.system = std::make_unique<P2PSystem>(config, std::move(mods));
  built.service = service;
  return built;
}

BuiltSystem build_sqrt(const SystemConfig& config, const StackExtras& extras) {
  SqrtReplication::Options opts;
  opts.replication_mult =
      extras_double(extras, "replication-mult", opts.replication_mult);
  opts.probes_per_round = static_cast<std::uint32_t>(
      extras_int(extras, "probes-per-round", opts.probes_per_round));
  opts.item_bits = config.protocol.item_bits;

  auto soup = std::make_unique<TokenSoup>(config.walk);
  auto repl = std::make_unique<SqrtReplication>(*soup, opts);
  SqrtReplication* service = repl.get();
  std::vector<std::unique_ptr<Protocol>> mods;
  mods.push_back(std::move(soup));
  mods.push_back(std::move(repl));

  BuiltSystem built;
  built.system = std::make_unique<P2PSystem>(config, std::move(mods));
  built.service = service;
  return built;
}

bool register_builtins() {
  register_stack("churnstore",
                 "paper stack: soup + committees + landmarks + store/search",
                 build_churnstore);
  register_stack("chord",
                 "structured DHT with message-accurate lookups and periodic "
                 "stabilization on the Network layer (chord=net, default) or "
                 "the legacy idealized ring sim (chord=ring); knobs: chord, "
                 "chord-replication, chord-stabilize, chord-replicate",
                 build_chord);
  register_stack("flooding",
                 "flood every node, retrieve locally; knob: flood-refresh",
                 build_flooding);
  register_stack("k-walker",
                 "unmaintained replicas + k walker agents; knobs: walkers, "
                 "replication",
                 build_kwalker);
  register_stack("sqrt-replication",
                 "birthday-paradox placement, probe own samples; knobs: "
                 "replication-mult, probes-per-round",
                 build_sqrt);
  return true;
}

const bool builtins_registered = register_builtins();

}  // namespace

bool register_stack(const std::string& name, const std::string& summary,
                    StackBuilder builder) {
  return registry()
      .emplace(name, StackEntry{summary, std::move(builder)})
      .second;
}

BuiltSystem build_stack(std::string_view name, const SystemConfig& config,
                        const StackExtras& extras) {
  (void)builtins_registered;
  const auto it = registry().find(std::string(name));
  if (it == registry().end()) {
    throw std::invalid_argument("unknown protocol stack: " +
                                std::string(name));
  }
  return it->second.builder(config, extras);
}

std::vector<std::pair<std::string, std::string>> stack_catalog() {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [name, entry] : registry()) {
    out.emplace_back(name, entry.summary);
  }
  return out;
}

}  // namespace churnstore
