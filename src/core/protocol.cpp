#include "core/protocol.h"

namespace churnstore {

void Protocol::on_attach(Network& net) {
  assert(net_ == nullptr && "protocol attached twice");
  net_ = &net;
  net.events().subscribe<PeerChurned>([this](PeerChurned& ev) {
    on_churn(ev.vertex, ev.old_peer, ev.new_peer);
  });
}

}  // namespace churnstore
