// Distributed network-size estimation (the exponential-minimum technique
// the paper sketches in section 4 for counting data nodes, following [2]).
//
// Every node draws k independent Exp(1) variates; each round, nodes
// exchange component-wise minima with their current neighbors. After
// O(diameter) = O(log n) rounds every (connected, surviving) node holds the
// k global minima z_1..z_k; since min of n Exp(1) variables is Exp(n), the
// unbiased estimator n_hat = (k-1) / sum(z_i) concentrates around n with
// relative error O(1/sqrt(k)).
//
// Under churn a fresh node starts with its own draws and re-absorbs the
// global minima from its neighbors within a round or two, so the estimate
// self-heals. k = Theta(log n) keeps the per-round traffic polylog.
#pragma once

#include <cstdint>
#include <vector>

#include "core/protocol.h"
#include "net/network.h"
#include "util/rng.h"

namespace churnstore {

class SizeEstimator final : public Protocol {
 public:
  /// k: exponential variates per node (accuracy ~ 1/sqrt(k)).
  explicit SizeEstimator(std::uint32_t k);
  /// Construct and attach in one step (standalone tests/benches).
  SizeEstimator(Network& net, std::uint32_t k);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "size-estimator";
  }
  void on_attach(Network& net) override;
  /// Sharded round: the neighbor min-gather is embarrassingly parallel over
  /// destination vertices (each shard writes only its own scratch rows,
  /// reading the previous round's field). Epoch restarts stay serial in the
  /// prologue; the field swap and traffic charges land in the merge.
  [[nodiscard]] bool sharded_round() const noexcept override { return true; }
  void on_round_begin() override;
  void on_round_begin(std::uint32_t shard, ShardContext& ctx) override;
  void on_round_merge() override;
  [[nodiscard]] bool sharded_dispatch() const noexcept override {
    return true;  // no on_message at all
  }
  void on_churn(Vertex v, PeerId old_peer, PeerId new_peer) override;

  /// One round of neighbor min-exchange. Call between begin_round() and
  /// deliver(); traffic is charged to the metrics (k * 64 bits per edge).
  void step();

  /// Current estimate at vertex v: (k-1) / sum of its minima.
  [[nodiscard]] double estimate(Vertex v) const;

  /// Median estimate across all nodes (robust summary for benches/tests).
  [[nodiscard]] double median_estimate() const;

  /// Rounds until the first completed epoch is readable (~2 epochs).
  [[nodiscard]] std::uint32_t convergence_rounds() const;
  /// Aggregation restarts every epoch (just over the diameter) so that
  /// churned-in peers' fresh draws cannot ratchet the minimum downward.
  [[nodiscard]] std::uint32_t epoch_rounds() const;

  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }

 private:
  void fresh_draws(Vertex v);
  /// Gather component-wise neighbor minima of `field` into `out` for the
  /// vertex range [from, to).
  void gather_min(const std::vector<double>& field, std::vector<double>& out,
                  Vertex from, Vertex to);

  std::uint32_t k_;
  Rng rng_;
  /// Row-major [vertex][i] minima of the running epoch.
  // shardcheck:cold-state(sized to n x k at attach in serial context; hooks write row minima in place)
  std::vector<double> mins_;
  /// Minima of the last completed epoch (what estimate() reads).
  // shardcheck:cold-state(sized at attach; swapped/filled only in serial epoch rollover)
  std::vector<double> last_;
  // shardcheck:cold-state(sized at attach; gather_min writes elements in place)
  std::vector<double> scratch_;   ///< next mins_
  // shardcheck:cold-state(sized at attach; gather_min writes elements in place)
  std::vector<double> scratch2_;  ///< next last_
  std::uint64_t epochs_completed_ = 0;
};

}  // namespace churnstore
