// The pluggable protocol-module interface.
//
// Every distributed algorithm in the repository — the paper's random-walk
// soup, committee, landmark, storage and search layers, and each baseline
// (flooding, sqrt-replication, k-walker, Chord) — implements Protocol and
// plugs into the one simulation driver (P2PSystem). The driver runs the
// paper's synchronous round structure, sharded end to end:
//
//   net.begin_round()                  adversary fixes churn + G^r
//   for p in protocols (registration order):
//     p.on_round_begin()                      serial prologue
//     if p.sharded_round():
//       run_sharded(s -> p.on_round_begin(s, ctx))   per-shard round work
//       p.on_round_merge()                    serial staging merge
//       net.flush_shard_lanes()               canonical send/charge merge
//   net.deliver()                      messages sent this round arrive
//   for each vertex v, message m:      first protocol whose on_message
//     for p in protocols: ...          returns true consumes m — sharded by
//                                      destination vertex when every
//                                      protocol is sharded_dispatch()
//   for p: p.on_dispatch_merge()       serial staging merge after dispatch
//   for p in protocols: p.on_round_end()     end-of-round bookkeeping
//
// The ShardContext contract (what a sharded hook body may do). The
// mechanically checkable clauses are enforced by the in-repo linter,
// tools/shardcheck (scripts/check.sh --lint); the [shardcheck-Rn] tags
// below name the rule that guards each clause:
//   - read/write state owned by vertices in [ctx.begin(), ctx.end()) only,
//     iterating them in ASCENDING order — and never iterate unordered
//     containers, whose bucket order is not shard-count-invariant
//     [shardcheck-R2];
//   - read any state that no protocol mutates during the current phase
//     (the graph, peer table, sibling protocols' per-vertex state);
//   - send through ctx.send and charge through ctx.charge — both stage
//     into the shard's lane and merge in canonical (shard, vertex) order,
//     so the observable stream is independent of the shard count; direct
//     net().send / un-deferred charges are banned [shardcheck-R3];
//   - stage every cross-shard mutation (global registries, index maps,
//     global counters) per shard and apply it in on_round_merge /
//     on_dispatch_merge, scanning shards in ascending order (merge bodies
//     are also R2-checked — unordered iteration there leaks bucket order
//     into the observable stream);
//   - draw randomness from counter-based per-(round, vertex) streams
//     (util/rng.h stream_rng), never from a shared sequential Rng
//     [shardcheck-R1] — and, everywhere in src/, never from ambient
//     sources (rand, std::random_device, wall clocks) or mutable static
//     state [shardcheck-R4]; pointer-keyed ordering is equally
//     non-deterministic across runs [shardcheck-R5];
//   - never allocate from the global heap at steady state: no new /
//     make_unique / make_shared, no std::function construction, no local
//     std containers without ArenaAllocator, no growth of members that
//     have not declared their arena discipline [shardcheck-R6]. Draw from
//     the shard arena or pre-sized member buffers; hoist one-time setup to
//     on_attach / the serial prologue. The claim is enforced twice: R6
//     statically, and util/heap_sentinel.h's HeapQuiesceScope dynamically
//     around every P2PSystem::run_round (tests/heap_quiesce_test.cpp
//     asserts 0 allocs/round over measured steady-state rounds).
//   - declare, at the declaration site, where every container member's
//     storage comes from: ArenaAllocator in the type, or an arena-backed /
//     cold-state annotation comment on the line above (syntax in
//     tools/shardcheck/shardcheck.h) [shardcheck-R7]. arena-backed exempts
//     the member from R6 growth checks; cold-state documents that only
//     cold serial context ever resizes it (hot growth still fires).
// Under that contract the SAME seed is bit-identical for EVERY shards=
// value, serial or pooled (tests/sharded_engine_test.cpp). Helper
// functions reachable only from sharded hooks opt into the same checks
// with the linter's sharded-hook annotation comment above their
// definition; per-round helpers outside any hook opt into R6 alone with
// the hot-path annotation (syntax in tools/shardcheck/shardcheck.h).
//
// Attachment: on_attach(net) is called exactly once, before the first
// round, in registration order. The base implementation records the network
// and subscribes on_churn to the PeerChurned event channel; overrides call
// Protocol::on_attach(net) first, then size per-vertex state and derive
// constants from net.config(). A protocol that depends on a sibling (e.g.
// CommitteeManager reads TokenSoup's tau) must be registered after it.
#pragma once

#include <cassert>
#include <string_view>

#include "net/network.h"

namespace churnstore {

/// Handle a sharded hook receives: identifies the shard, exposes its vertex
/// range, and routes sends/charges through the shard's staging lane.
class ShardContext {
 public:
  ShardContext(Network& net, std::uint32_t shard) noexcept
      : net_(net), shard_(shard) {}

  [[nodiscard]] std::uint32_t shard() const noexcept { return shard_; }
  [[nodiscard]] const ShardPlan& plan() const noexcept { return net_.shards(); }
  /// The contiguous vertex range this shard owns.
  [[nodiscard]] Vertex begin() const noexcept { return plan().begin(shard_); }
  [[nodiscard]] Vertex end() const noexcept { return plan().end(shard_); }

  [[nodiscard]] Network& net() const noexcept { return net_; }

  /// Queue a message from the peer at `from` (staged on this shard's lane;
  /// charged and merged canonically at the next lane flush).
  void send(Vertex from, Message&& m) {
    net_.send_sharded(shard_, from, std::move(m));
  }
  /// Charge processing bits to any vertex (deferred; cross-shard safe).
  void charge(Vertex v, std::uint64_t bits) {
    net_.charge_sharded(shard_, v, bits);
  }
  /// True when a TraceCollector is installed (span events will be kept).
  [[nodiscard]] bool tracing() const noexcept {
    return net_.trace_collector() != nullptr;
  }
  /// Stage a request-trace event on this shard's lane (obs/trace.h);
  /// merged in canonical order with the message lanes. No-op untraced.
  void trace(const TraceEvent& ev) { net_.trace_sharded(shard_, ev); }

 private:
  Network& net_;
  std::uint32_t shard_;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Join a network: subscribe to events, size per-vertex state, derive
  /// constants. Overrides must call Protocol::on_attach(net) first.
  virtual void on_attach(Network& net);

  /// --- round hooks --------------------------------------------------------
  /// True when this protocol implements the sharded round hook below; the
  /// driver then fans on_round_begin(shard, ctx) out over the shard plan
  /// after the serial prologue. False (the default) is the serial fallback:
  /// all round work happens in on_round_begin().
  [[nodiscard]] virtual bool sharded_round() const noexcept { return false; }

  /// Serial prologue (sharded protocols) or the whole per-round protocol
  /// work (serial fallback), after churn/edge dynamics fixed G^r and before
  /// message delivery. Called in registration order.
  virtual void on_round_begin() {}

  /// Per-shard round work (see the ShardContext contract above). Runs once
  /// per shard, possibly concurrently, between on_round_begin() and
  /// on_round_merge().
  virtual void on_round_begin(std::uint32_t shard, ShardContext& ctx) {
    (void)shard;
    (void)ctx;
  }

  /// Serial epilogue after every shard of on_round_begin(shard, ctx)
  /// returned: apply staged cross-shard mutations in canonical order.
  virtual void on_round_merge() {}

  /// --- message dispatch ---------------------------------------------------
  /// True when on_message only touches state owned by the receiving vertex
  /// (plus per-shard staging) and sends through ctx — i.e. the driver may
  /// dispatch this protocol's inbound messages concurrently by destination
  /// shard. A false gates only THIS protocol: a message whose consume chain
  /// reaches it is staged and resumed serially (in canonical shard/vertex/
  /// inbox order) after the sharded pass; earlier sharded protocols in the
  /// chain still run on the shard lanes. Register serial protocols AFTER
  /// the sharded ones — a sharded handler resumed behind a serial one runs
  /// (correctly, but) serially, and its per-shard staging then merges
  /// behind the sharded pass's.
  [[nodiscard]] virtual bool sharded_dispatch() const noexcept { return false; }

  /// Offered every message delivered to vertex `v` this round; return true
  /// to consume it (stops the chain). ctx is bound to v's shard; handlers
  /// must send replies through it. The default forwards to the legacy
  /// serial overload so unported protocols keep working (serially).
  virtual bool on_message(Vertex v, const Message& m, ShardContext& ctx) {
    (void)ctx;
    return on_message(v, m);
  }

  /// Legacy serial handler; only called through the default 3-arg
  /// on_message above. Ported protocols override the 3-arg form directly.
  virtual bool on_message(Vertex v, const Message& m) {
    (void)v;
    (void)m;
    return false;
  }

  /// Serial epilogue after all inboxes dispatched: apply staged cross-shard
  /// mutations from on_message in canonical order.
  virtual void on_dispatch_merge() {}

  /// The peer occupying `v` was replaced by a fresh one; drop the lost
  /// peer's state. Dispatched through the PeerChurned event channel.
  virtual void on_churn(Vertex v, PeerId old_peer, PeerId new_peer) {
    (void)v;
    (void)old_peer;
    (void)new_peer;
  }

  /// After delivery and message dispatch; measurement/bookkeeping.
  virtual void on_round_end() {}

  [[nodiscard]] bool attached() const noexcept { return net_ != nullptr; }

 protected:
  [[nodiscard]] Network& net() const noexcept {
    assert(net_ != nullptr && "protocol used before on_attach");
    return *net_;
  }

 private:
  Network* net_ = nullptr;
};

}  // namespace churnstore
