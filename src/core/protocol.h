// The pluggable protocol-module interface.
//
// Every distributed algorithm in the repository — the paper's random-walk
// soup, committee, landmark, storage and search layers, and each baseline
// (flooding, sqrt-replication, k-walker, Chord) — implements Protocol and
// plugs into the one simulation driver (P2PSystem). The driver runs the
// paper's synchronous round structure:
//
//   net.begin_round()                  adversary fixes churn + G^r
//   for p in protocols: p.on_round_begin()   per-round protocol work,
//                                            registration order
//   net.deliver()                      messages sent this round arrive
//   for each vertex v, message m:      first protocol whose on_message
//     for p in protocols: ...          returns true consumes m
//   for p in protocols: p.on_round_end()     end-of-round bookkeeping
//
// Attachment: on_attach(net) is called exactly once, before the first
// round, in registration order. The base implementation records the network
// and subscribes on_churn to the PeerChurned event channel; overrides call
// Protocol::on_attach(net) first, then size per-vertex state and derive
// constants from net.config(). A protocol that depends on a sibling (e.g.
// CommitteeManager reads TokenSoup's tau) must be registered after it.
#pragma once

#include <cassert>
#include <string_view>

#include "net/network.h"

namespace churnstore {

class Protocol {
 public:
  virtual ~Protocol() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Join a network: subscribe to events, size per-vertex state, derive
  /// constants. Overrides must call Protocol::on_attach(net) first.
  virtual void on_attach(Network& net);

  /// Per-round protocol work, after churn/edge dynamics fixed G^r and
  /// before message delivery. Called in registration order.
  virtual void on_round_begin() {}

  /// Offered every message delivered to vertex `v` this round; return true
  /// to consume it (stops the chain).
  virtual bool on_message(Vertex v, const Message& m) {
    (void)v;
    (void)m;
    return false;
  }

  /// The peer occupying `v` was replaced by a fresh one; drop the lost
  /// peer's state. Dispatched through the PeerChurned event channel.
  virtual void on_churn(Vertex v, PeerId old_peer, PeerId new_peer) {
    (void)v;
    (void)old_peer;
    (void)new_peer;
  }

  /// After delivery and message dispatch; measurement/bookkeeping.
  virtual void on_round_end() {}

  [[nodiscard]] bool attached() const noexcept { return net_ != nullptr; }

 protected:
  [[nodiscard]] Network& net() const noexcept {
    assert(net_ != nullptr && "protocol used before on_attach");
    return *net_;
  }

 private:
  Network* net_ = nullptr;
};

}  // namespace churnstore
