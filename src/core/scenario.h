// Declarative experiment scenarios.
//
// A ScenarioSpec captures everything a workload run needs — network size(s),
// degree, churn model, adversary kind, protocol stack, workload shape,
// trial count, seeds, and execution options — as a flat set of key=value
// pairs parsed through util/cli. Every former bench binary is a *registered
// scenario*: a named function that receives the parsed spec and drives the
// Runner, so adding a workload is a registration, not a new main():
//
//   bench_driver --list
//   bench_driver --scenario=search n=256,512 trials=4 churn-mult=1.0
//   bench_driver --scenario=baselines protocol=chord n=512 json=true
//
// Spec round-trips: ScenarioSpec::from_cli(Cli(spec.to_key_values()))
// reproduces the spec (tested).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/system.h"
#include "util/cli.h"
#include "util/table.h"

namespace churnstore {

/// Workload: store `items` items after warm-up, wait `age_taus` taus, then
/// run `batches` batches of `searchers_per_batch` concurrent searches from
/// uniformly random initiators; each batch runs to the search timeout.
struct StoreSearchOptions {
  std::uint32_t items = 4;
  std::uint32_t searchers_per_batch = 16;
  std::uint32_t batches = 2;
  /// Extra churn exposure between store and first search, in taus.
  double age_taus = 2.0;
};

struct ScenarioSpec {
  /// Protocol stack name (see core/stacks.h): churnstore, chord, flooding,
  /// k-walker, sqrt-replication.
  std::string protocol = "churnstore";

  /// Workload driven through the stack: "store-search" (the canonical
  /// store -> age -> search trial) or "kv" (the KvStore facade: string keys,
  /// payload round-trip verification; churnstore stack only).
  std::string workload_kind = "store-search";

  /// Network sizes; scenarios sweep the list, single-system helpers use the
  /// first entry.
  std::vector<std::uint32_t> ns = {1024};
  std::uint32_t degree = 8;
  std::uint64_t seed = 1;
  std::uint32_t trials = 2;

  /// Paper-form churn at a survivable multiplier; see
  /// default_system_config() for the rationale behind 0.5.
  ChurnSpec churn{.kind = AdversaryKind::kUniform, .k = 1.5, .multiplier = 0.5};
  EdgeDynamics edge_dynamics = EdgeDynamics::kRewire;
  std::uint32_t rewire_swaps = 0;

  WalkConfig walk{};
  ProtocolConfig protocol_config{};

  StoreSearchOptions workload{};

  /// Runner execution: worker threads (0 = hardware) and parallel on/off.
  std::size_t threads = 0;
  bool parallel = true;
  /// Intra-round shards per trial system (1 = unsharded, 0 = hardware).
  /// Any value yields bit-identical results; see util/sharding.h.
  std::uint32_t shards = 1;

  /// Output format.
  bool csv = false;
  bool json = false;

  /// Scenario- or stack-specific keys that the common spec does not model
  /// (e.g. chord-stabilize=8, flood-refresh=8, walkers=16).
  std::map<std::string, std::string> extras;

  /// Parses a spec from key=value flags. Every key must be either a common
  /// spec key or a registered scenario/stack extra: an unknown key (e.g. the
  /// typo `shard=4`) throws std::invalid_argument listing the accepted keys
  /// instead of being silently ignored.
  [[nodiscard]] static ScenarioSpec from_cli(const Cli& cli);

  /// Registers an extra key (scenario- or stack-specific knob) as accepted
  /// by from_cli. Built-in extras (chord-stabilize, walkers, shard-sweep,
  /// ...) are pre-registered; out-of-tree scenarios call this for theirs.
  static void accept_extra_key(const std::string& key);
  /// All keys from_cli accepts (common spec keys + registered extras),
  /// sorted; the validation error lists these.
  [[nodiscard]] static std::vector<std::string> accepted_keys();

  /// Canonical key=value form; from_cli(Cli(to_key_values())) round-trips.
  [[nodiscard]] std::vector<std::string> to_key_values() const;

  [[nodiscard]] std::uint32_t n() const noexcept { return ns.front(); }
  [[nodiscard]] SystemConfig system_config() const { return system_config(n()); }
  [[nodiscard]] SystemConfig system_config(std::uint32_t n_override) const;

  [[nodiscard]] ScenarioSpec with_n(std::uint32_t n_override) const;
  [[nodiscard]] ScenarioSpec with_churn_multiplier(double multiplier) const;
  [[nodiscard]] ScenarioSpec with_seed(std::uint64_t seed_override) const;

  [[nodiscard]] std::string extra(const std::string& key,
                                  const std::string& fallback) const;
  [[nodiscard]] std::int64_t extra_int(const std::string& key,
                                       std::int64_t fallback) const;
  [[nodiscard]] double extra_double(const std::string& key,
                                    double fallback) const;
};

/// Lookup helpers for key=value extras maps (shared by ScenarioSpec and
/// the stack builders).
[[nodiscard]] std::string extras_string(
    const std::map<std::string, std::string>& extras, const std::string& key,
    const std::string& fallback);
[[nodiscard]] std::int64_t extras_int(
    const std::map<std::string, std::string>& extras, const std::string& key,
    std::int64_t fallback);
[[nodiscard]] double extras_double(
    const std::map<std::string, std::string>& extras, const std::string& key,
    double fallback);

/// Enum <-> name mappings used by the spec (and anywhere else a config
/// field meets a command line).
[[nodiscard]] std::string_view to_name(AdversaryKind kind) noexcept;
[[nodiscard]] std::string_view to_name(EdgeDynamics dynamics) noexcept;
[[nodiscard]] AdversaryKind adversary_from_name(std::string_view name);
[[nodiscard]] EdgeDynamics edge_dynamics_from_name(std::string_view name);

/// Print `table` in the spec's chosen format (aligned text, CSV, or JSON).
void emit_table(const Table& table, const ScenarioSpec& spec,
                std::ostream& os);

/// --- scenario registry ----------------------------------------------------
struct ScenarioDef {
  std::string name;
  std::string summary;
  std::function<void(const ScenarioSpec&, const Cli&)> run;
};

class ScenarioRegistry {
 public:
  [[nodiscard]] static ScenarioRegistry& instance();

  void add(ScenarioDef def);
  [[nodiscard]] const ScenarioDef* find(std::string_view name) const;
  /// All scenarios, sorted by name.
  [[nodiscard]] std::vector<const ScenarioDef*> all() const;

 private:
  std::map<std::string, ScenarioDef> defs_;
};

struct ScenarioRegistrar {
  ScenarioRegistrar(std::string name, std::string summary,
                    std::function<void(const ScenarioSpec&, const Cli&)> run) {
    ScenarioRegistry::instance().add(
        ScenarioDef{std::move(name), std::move(summary), std::move(run)});
  }
};

/// Defines and registers a scenario in one go:
///   CHURNSTORE_SCENARIO(search, "E7: retrieval success and latency") {
///     ... body with `spec` and `cli` in scope ...
///   }
#define CHURNSTORE_SCENARIO(ident, summary)                                  \
  static void churnstore_scenario_##ident(const ::churnstore::ScenarioSpec&, \
                                          const ::churnstore::Cli&);         \
  static const ::churnstore::ScenarioRegistrar                               \
      churnstore_scenario_registrar_##ident{#ident, summary,                 \
                                            churnstore_scenario_##ident};    \
  static void churnstore_scenario_##ident(                                   \
      const ::churnstore::ScenarioSpec& spec, const ::churnstore::Cli& cli)

}  // namespace churnstore
