#include "core/system.h"

namespace churnstore {

P2PSystem::P2PSystem(const SystemConfig& config) : config_(config) {
  net_ = std::make_unique<Network>(config_.sim);
  soup_ = std::make_unique<TokenSoup>(*net_, config_.walk);
  committees_ =
      std::make_unique<CommitteeManager>(*net_, *soup_, config_.protocol);
  landmarks_ = std::make_unique<LandmarkManager>(*net_, *soup_, *committees_,
                                                 config_.protocol);
  store_ = std::make_unique<StoreManager>(*net_, *committees_, *landmarks_,
                                          config_.protocol);
  searches_ = std::make_unique<SearchManager>(
      *net_, *soup_, *committees_, *landmarks_, *store_, config_.protocol);

  // Committee members rebuild their landmark trees on creation and every
  // rebuild period (Algorithm 2's "every tau rounds").
  committees_->on_tree_trigger = [this](Vertex v, const Membership& m) {
    landmarks_->start_tree(v, m);
  };
}

void P2PSystem::enable_adaptive_adversary() {
  net_->set_adaptive_targeter([this](std::uint32_t count) {
    return committees_->occupied_vertices(count);
  });
}

void P2PSystem::run_round() {
  net_->begin_round();       // adversary: churn + edge dynamics
  soup_->step();             // random walks advance along G^r
  committees_->on_round();   // Algorithm 1 phases
  landmarks_->on_round();    // Algorithm 2 tree growth
  searches_->on_round();     // Algorithm 4 inquiries and fetches
  net_->deliver();           // messages sent this round arrive
  dispatch_inboxes();        // receivers process them
}

void P2PSystem::run_rounds(std::uint32_t k) {
  for (std::uint32_t i = 0; i < k; ++i) run_round();
}

void P2PSystem::dispatch_inboxes() {
  const Vertex n = net_->n();
  for (Vertex v = 0; v < n; ++v) {
    for (const Message& m : net_->inbox(v)) {
      if (committees_->handle(v, m)) continue;
      if (landmarks_->handle(v, m)) continue;
      if (searches_->handle(v, m)) continue;
    }
  }
}

bool P2PSystem::store_item(Vertex creator, ItemId item) {
  return store_item(creator, item,
                    make_payload(item, config_.protocol.item_bits));
}

bool P2PSystem::store_item(Vertex creator, ItemId item,
                           std::vector<std::uint8_t> payload) {
  return store_->store(creator, item, std::move(payload));
}

std::uint64_t P2PSystem::search(Vertex initiator, ItemId item) {
  return searches_->start_search(initiator, item);
}

}  // namespace churnstore
