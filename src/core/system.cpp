#include "core/system.h"

namespace churnstore {

std::vector<std::unique_ptr<Protocol>> P2PSystem::paper_protocols(
    const SystemConfig& config) {
  auto soup = std::make_unique<TokenSoup>(config.walk);
  auto committees =
      std::make_unique<CommitteeManager>(*soup, config.protocol);
  auto landmarks = std::make_unique<LandmarkManager>(*soup, *committees,
                                                     config.protocol);
  auto store = std::make_unique<StoreManager>(*committees, *landmarks,
                                              config.protocol);
  auto searches = std::make_unique<SearchManager>(
      *soup, *committees, *landmarks, *store, config.protocol);

  std::vector<std::unique_ptr<Protocol>> mods;
  mods.push_back(std::move(soup));
  mods.push_back(std::move(committees));
  mods.push_back(std::move(landmarks));
  mods.push_back(std::move(store));
  mods.push_back(std::move(searches));
  return mods;
}

P2PSystem::P2PSystem(const SystemConfig& config)
    : P2PSystem(config, paper_protocols(config)) {}

P2PSystem::P2PSystem(const SystemConfig& config,
                     std::vector<std::unique_ptr<Protocol>> protocols)
    : config_(config),
      net_(std::make_unique<Network>(config_.sim)),
      protocols_(std::move(protocols)) {
  for (const auto& p : protocols_) p->on_attach(*net_);
  soup_ = find_protocol<TokenSoup>();
  committees_ = find_protocol<CommitteeManager>();
  landmarks_ = find_protocol<LandmarkManager>();
  store_ = find_protocol<StoreManager>();
  searches_ = find_protocol<SearchManager>();
}

Protocol* P2PSystem::find_protocol(std::string_view name) const noexcept {
  for (const auto& p : protocols_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

void P2PSystem::enable_adaptive_adversary() {
  committees().expose_to_adaptive_adversary();
}

void P2PSystem::run_round() {
  using clock = std::chrono::steady_clock;
  const bool timed = phase_timers_.enabled;
  clock::time_point t0;
  if (timed) t0 = clock::now();
  auto lap = [&](double RoundPhaseTimers::*field) {
    if (!timed) return;
    const auto t1 = clock::now();
    phase_timers_.*field += std::chrono::duration<double>(t1 - t0).count();
    t0 = t1;
  };

  net_->begin_round();  // adversary: churn + edge dynamics
  lap(&RoundPhaseTimers::churn_secs);
  for (const auto& p : protocols_) {
    p->on_round_begin();  // serial prologue (or whole round work)
    if (p->sharded_round()) {
      Protocol* raw = p.get();
      net_->run_sharded([this, raw](std::uint32_t s) {
        ShardContext ctx(*net_, s);
        raw->on_round_begin(s, ctx);
      });
      raw->on_round_merge();
      net_->flush_shard_lanes();
    }
    if (timed) {
      lap(p.get() == static_cast<Protocol*>(soup_)
              ? &RoundPhaseTimers::soup_secs
              : &RoundPhaseTimers::handler_secs);
    }
  }
  net_->deliver();      // messages sent this round arrive
  lap(&RoundPhaseTimers::deliver_secs);
  dispatch_inboxes();   // receivers process them
  lap(&RoundPhaseTimers::dispatch_secs);
  for (const auto& p : protocols_) p->on_round_end();
}

void P2PSystem::run_rounds(std::uint32_t k) {
  for (std::uint32_t i = 0; i < k; ++i) run_round();
}

void P2PSystem::dispatch_inboxes() {
  // One unported protocol forces the serial path for the whole stack (the
  // consume chain is shared); the orderings are identical either way — a
  // vertex's messages are always handled in inbox order by the shard (or
  // the loop) owning that vertex.
  bool sharded = true;
  for (const auto& p : protocols_) sharded = sharded && p->sharded_dispatch();

  auto dispatch_shard = [this](std::uint32_t s) {
    ShardContext ctx(*net_, s);
    const ShardPlan& plan = net_->shards();
    for (Vertex v = plan.begin(s); v < plan.end(s); ++v) {
      for (const Message& m : net_->inbox(v)) {
        for (const auto& p : protocols_) {
          if (p->on_message(v, m, ctx)) break;
        }
      }
    }
  };
  if (sharded) {
    net_->run_sharded(dispatch_shard);
  } else {
    const std::uint32_t count = net_->shards().count();
    for (std::uint32_t s = 0; s < count; ++s) dispatch_shard(s);
  }
  for (const auto& p : protocols_) p->on_dispatch_merge();
  // Flush the reply lanes NOW so next round's first protocol phase never
  // shares a lane with this round's replies (sharing would interleave the
  // two streams per shard, an S-dependent order). The charges land after
  // end_round, i.e. on the next round — exactly where the serial engine
  // charged dispatch-time sends.
  net_->flush_shard_lanes();
}

bool P2PSystem::store_item(Vertex creator, ItemId item) {
  return store_item(creator, item,
                    make_payload(item, config_.protocol.item_bits));
}

bool P2PSystem::store_item(Vertex creator, ItemId item,
                           std::vector<std::uint8_t> payload) {
  return store().store(creator, item, std::move(payload));
}

std::uint64_t P2PSystem::search(Vertex initiator, ItemId item) {
  return searches().start_search(initiator, item);
}

}  // namespace churnstore
