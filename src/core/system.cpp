#include "core/system.h"

namespace churnstore {

std::vector<std::unique_ptr<Protocol>> P2PSystem::paper_protocols(
    const SystemConfig& config) {
  auto soup = std::make_unique<TokenSoup>(config.walk);
  auto committees =
      std::make_unique<CommitteeManager>(*soup, config.protocol);
  auto landmarks = std::make_unique<LandmarkManager>(*soup, *committees,
                                                     config.protocol);
  auto store = std::make_unique<StoreManager>(*committees, *landmarks,
                                              config.protocol);
  auto searches = std::make_unique<SearchManager>(
      *soup, *committees, *landmarks, *store, config.protocol);

  std::vector<std::unique_ptr<Protocol>> mods;
  mods.push_back(std::move(soup));
  mods.push_back(std::move(committees));
  mods.push_back(std::move(landmarks));
  mods.push_back(std::move(store));
  mods.push_back(std::move(searches));
  return mods;
}

P2PSystem::P2PSystem(const SystemConfig& config)
    : P2PSystem(config, paper_protocols(config)) {}

P2PSystem::P2PSystem(const SystemConfig& config,
                     std::vector<std::unique_ptr<Protocol>> protocols)
    : config_(config),
      net_(std::make_unique<Network>(config_.sim)),
      protocols_(std::move(protocols)) {
  for (const auto& p : protocols_) p->on_attach(*net_);
  soup_ = find_protocol<TokenSoup>();
  committees_ = find_protocol<CommitteeManager>();
  landmarks_ = find_protocol<LandmarkManager>();
  store_ = find_protocol<StoreManager>();
  searches_ = find_protocol<SearchManager>();
}

Protocol* P2PSystem::find_protocol(std::string_view name) const noexcept {
  for (const auto& p : protocols_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

void P2PSystem::enable_adaptive_adversary() {
  committees().expose_to_adaptive_adversary();
}

void P2PSystem::run_round() {
  net_->begin_round();  // adversary: churn + edge dynamics
  for (const auto& p : protocols_) p->on_round_begin();
  net_->deliver();      // messages sent this round arrive
  dispatch_inboxes();   // receivers process them
  for (const auto& p : protocols_) p->on_round_end();
}

void P2PSystem::run_rounds(std::uint32_t k) {
  for (std::uint32_t i = 0; i < k; ++i) run_round();
}

void P2PSystem::dispatch_inboxes() {
  const Vertex n = net_->n();
  for (Vertex v = 0; v < n; ++v) {
    for (const Message& m : net_->inbox(v)) {
      for (const auto& p : protocols_) {
        if (p->on_message(v, m)) break;
      }
    }
  }
}

bool P2PSystem::store_item(Vertex creator, ItemId item) {
  return store_item(creator, item,
                    make_payload(item, config_.protocol.item_bits));
}

bool P2PSystem::store_item(Vertex creator, ItemId item,
                           std::vector<std::uint8_t> payload) {
  return store().store(creator, item, std::move(payload));
}

std::uint64_t P2PSystem::search(Vertex initiator, ItemId item) {
  return searches().start_search(initiator, item);
}

}  // namespace churnstore
