#include "core/system.h"

#include "util/heap_sentinel.h"

namespace churnstore {

std::vector<std::unique_ptr<Protocol>> P2PSystem::paper_protocols(
    const SystemConfig& config) {
  auto soup = std::make_unique<TokenSoup>(config.walk);
  auto committees =
      std::make_unique<CommitteeManager>(*soup, config.protocol);
  auto landmarks = std::make_unique<LandmarkManager>(*soup, *committees,
                                                     config.protocol);
  auto store = std::make_unique<StoreManager>(*committees, *landmarks,
                                              config.protocol);
  auto searches = std::make_unique<SearchManager>(
      *soup, *committees, *landmarks, *store, config.protocol);

  std::vector<std::unique_ptr<Protocol>> mods;
  mods.push_back(std::move(soup));
  mods.push_back(std::move(committees));
  mods.push_back(std::move(landmarks));
  mods.push_back(std::move(store));
  mods.push_back(std::move(searches));
  return mods;
}

P2PSystem::P2PSystem(const SystemConfig& config)
    : P2PSystem(config, paper_protocols(config)) {}

P2PSystem::P2PSystem(const SystemConfig& config,
                     std::vector<std::unique_ptr<Protocol>> protocols)
    : config_(config),
      net_(std::make_unique<Network>(config_.sim)),
      protocols_(std::move(protocols)),
      protocol_secs_(protocols_.size(), 0.0) {
  for (const auto& p : protocols_) p->on_attach(*net_);
  soup_ = find_protocol<TokenSoup>();
  committees_ = find_protocol<CommitteeManager>();
  landmarks_ = find_protocol<LandmarkManager>();
  store_ = find_protocol<StoreManager>();
  searches_ = find_protocol<SearchManager>();
}

Protocol* P2PSystem::find_protocol(std::string_view name) const noexcept {
  for (const auto& p : protocols_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

void P2PSystem::enable_adaptive_adversary() {
  committees().expose_to_adaptive_adversary();
}

void P2PSystem::run_round() {
  const HeapQuiesceScope heap_probe;  // process-wide: sees pool threads too
  using clock = std::chrono::steady_clock;
  const bool timed = phase_timers_.enabled;
  clock::time_point t0;
  if (timed) t0 = clock::now();
  auto lap = [&](double RoundPhaseTimers::*field) {
    if (!timed) return;
    const auto t1 = clock::now();
    phase_timers_.*field += std::chrono::duration<double>(t1 - t0).count();
    t0 = t1;
  };

  net_->begin_round();  // adversary: churn + edge dynamics
  lap(&RoundPhaseTimers::churn_secs);
  for (std::size_t pi = 0; pi < protocols_.size(); ++pi) {
    const auto& p = protocols_[pi];
    p->on_round_begin();  // serial prologue (or whole round work)
    if (p->sharded_round()) {
      Protocol* raw = p.get();
      net_->run_sharded([this, raw](std::uint32_t s) {
        ShardContext ctx(*net_, s);
        raw->on_round_begin(s, ctx);
      });
      raw->on_round_merge();
      net_->flush_shard_lanes();
    }
    if (timed) {
      // Same clock reads feed the phase bucket and the per-protocol
      // breakdown the chrome-trace exporter renders.
      const auto t1 = clock::now();
      const double dt = std::chrono::duration<double>(t1 - t0).count();
      protocol_secs_[pi] += dt;
      (p.get() == static_cast<Protocol*>(soup_)
           ? phase_timers_.soup_secs
           : phase_timers_.handler_secs) += dt;
      t0 = t1;
    }
  }
  net_->deliver();      // messages sent this round arrive
  lap(&RoundPhaseTimers::deliver_secs);
  dispatch_inboxes();   // receivers process them
  lap(&RoundPhaseTimers::dispatch_secs);
  for (const auto& p : protocols_) p->on_round_end();

  const HeapSentinel::Totals d = heap_probe.delta();
  ++heap_stats_.rounds;
  heap_stats_.allocs += d.allocs;
  heap_stats_.frees += d.frees;
  heap_stats_.bytes += d.bytes;

  // Observability epilogue, after the heap delta is read: the trace drain
  // is heap-quiet, but the collector's consumer and the round observer are
  // exporters (file IO, JSON) whose allocations are exporter overhead, not
  // engine traffic — they stay out of heap_stats_ by construction.
  if (TraceCollector* tc = net_->trace_collector()) {
    tc->end_round(net_->round());
  }
  if (observer_ != nullptr) observer_->on_round_observed(*this);
}

void P2PSystem::run_rounds(std::uint32_t k) {
  for (std::uint32_t i = 0; i < k; ++i) run_round();
}

void P2PSystem::dispatch_inboxes() {
  // Per-protocol capability gating: the consume chain for each message
  // walks the protocols in registration order, but the chain runs on the
  // destination shard's lane only while every protocol it meets is
  // sharded_dispatch(). The first serial protocol PAUSES the chain — the
  // message (with its resume position) is staged on the shard's pending
  // list — so one serial protocol (chord's ring-sim adapter) no longer
  // forces the whole stack onto the serial path; only messages that
  // actually reach it drain serially.
  const std::uint32_t count = net_->shards().count();
  if (dispatch_pending_.size() != count) dispatch_pending_.resize(count);

  // Snapshot each protocol's (constant) dispatch capability once: the
  // inner loop below runs per (message, protocol) on the hottest path, and
  // concurrent shard tasks read this array only.
  std::vector<std::uint8_t> shard_safe(protocols_.size());
  for (std::size_t pi = 0; pi < protocols_.size(); ++pi) {
    shard_safe[pi] = protocols_[pi]->sharded_dispatch() ? 1 : 0;
  }

  auto dispatch_shard = [this, &shard_safe](std::uint32_t s) {
    ShardContext ctx(*net_, s);
    const ShardPlan& plan = net_->shards();
    auto& pending = dispatch_pending_[s];
    for (Vertex v = plan.begin(s); v < plan.end(s); ++v) {
      const auto& box = net_->inbox(v);
      for (std::uint32_t i = 0; i < box.size(); ++i) {
        for (std::uint32_t pi = 0; pi < protocols_.size(); ++pi) {
          if (!shard_safe[pi]) {
            pending.push_back(PendingDispatch{v, i, pi});
            break;
          }
          if (protocols_[pi]->on_message(v, box[i], ctx)) break;
        }
      }
    }
  };
  net_->run_sharded(dispatch_shard);

  bool any_pending = false;
  for (const auto& pending : dispatch_pending_) {
    any_pending = any_pending || !pending.empty();
  }

  if (any_pending) {
    // Flush the sharded pass's replies BEFORE the serial continuation so
    // the outbox reads [sharded replies, canonical][serial replies,
    // canonical] for every shard count; interleaving the two streams per
    // lane would be an S-dependent order. Then resume each paused chain in
    // canonical (ascending shard, ascending vertex, inbox) order from the
    // serial protocol that paused it.
    net_->flush_shard_lanes();
    for (std::uint32_t s = 0; s < count; ++s) {
      ShardContext ctx(*net_, s);
      for (const PendingDispatch& pd : dispatch_pending_[s]) {
        const Message& m = net_->inbox(pd.vertex)[pd.msg];
        for (std::uint32_t pi = pd.protocol; pi < protocols_.size(); ++pi) {
          if (protocols_[pi]->on_message(pd.vertex, m, ctx)) break;
        }
      }
      dispatch_pending_[s].clear();
    }
  }
  for (const auto& p : protocols_) p->on_dispatch_merge();
  // Flush the reply lanes NOW so next round's first protocol phase never
  // shares a lane with this round's replies (sharing would interleave the
  // two streams per shard, an S-dependent order). The charges land after
  // end_round, i.e. on the next round — exactly where the serial engine
  // charged dispatch-time sends.
  net_->flush_shard_lanes();
}

bool P2PSystem::store_item(Vertex creator, ItemId item) {
  return store_item(creator, item,
                    make_payload(item, config_.protocol.item_bits));
}

bool P2PSystem::store_item(Vertex creator, ItemId item,
                           std::vector<std::uint8_t> payload) {
  return store().store(creator, item, std::move(payload));
}

std::uint64_t P2PSystem::search(Vertex initiator, ItemId item) {
  return searches().start_search(initiator, item);
}

}  // namespace churnstore
