#include "core/scenario.h"

#include <algorithm>
#include <iomanip>
#include <set>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace churnstore {

namespace {

/// Exact double round-trip (17 significant digits).
std::string fmt_double(double v) {
  std::ostringstream ss;
  ss << std::setprecision(17) << v;
  return ss.str();
}

std::string fmt_n_list(const std::vector<std::uint32_t>& ns) {
  std::string out;
  for (std::size_t i = 0; i < ns.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(ns[i]);
  }
  return out;
}

/// Keys the common spec models; everything else must be a registered extra.
/// The driver's own switches (scenario, list, stacks, help) count as known
/// so a spec parsed from the driver's argv validates cleanly.
const char* const kKnownKeys[] = {
    "protocol",   "workload",   "n",             "degree",
    "seed",       "trials",     "churn",         "churn-mult",
    "churn-k",    "churn-absolute",              "adaptive-pad",
    "edge",       "rewire-swaps",                "walk-rate",
    "walk-t",     "walk-cap",   "walk-window",   "h",
    "oversample", "leader-redundancy",           "fanout",
    "delta",      "landmark-ttl-taus",           "landmark-rebuild-taus",
    "refresh-taus",             "timeout-taus",  "inquiry-cap",
    "item-bits",  "erasure",    "ida-surplus",   "items",
    "searches",   "batches",    "age-taus",      "threads",
    "parallel",   "shards",     "csv",           "json",
    "scenario",   "list",       "stacks",        "help",
};

/// Scenario-/stack-specific knobs shipped in-tree; out-of-tree code extends
/// the set through ScenarioSpec::accept_extra_key.
std::set<std::string>& extra_key_registry() {
  // shardcheck:ok(R4: Meyers registry mutated only during static init and CLI parsing, before any round runs)
  static std::set<std::string> keys = {
      // scenario knobs
      "baseline-sps", "counters", "horizon-taus", "measure-rounds", "periods",
      "probes", "scatter", "shard-sweep", "steps",
      // observability (obs/export.h)
      "obs", "obs-file", "obs-host", "trace-sample",
      // stack knobs (core/stacks.cpp builders)
      "chord", "chord-replicate", "chord-replication", "chord-stabilize",
      "flood-refresh", "probes-per-round", "replication", "replication-mult",
      "walkers",
  };
  return keys;
}

bool is_known_key(const std::string& key) {
  for (const char* k : kKnownKeys) {
    if (key == k) return true;
  }
  return extra_key_registry().count(key) > 0;
}

}  // namespace

void ScenarioSpec::accept_extra_key(const std::string& key) {
  extra_key_registry().insert(key);
}

std::vector<std::string> ScenarioSpec::accepted_keys() {
  std::vector<std::string> out(std::begin(kKnownKeys), std::end(kKnownKeys));
  out.insert(out.end(), extra_key_registry().begin(),
             extra_key_registry().end());
  std::sort(out.begin(), out.end());
  return out;
}

std::string_view to_name(AdversaryKind kind) noexcept {
  switch (kind) {
    case AdversaryKind::kNone: return "none";
    case AdversaryKind::kUniform: return "uniform";
    case AdversaryKind::kBlockSweep: return "block-sweep";
    case AdversaryKind::kRegionRepeat: return "region-repeat";
    case AdversaryKind::kOldestFirst: return "oldest-first";
    case AdversaryKind::kYoungestFirst: return "youngest-first";
    case AdversaryKind::kAdaptive: return "adaptive";
  }
  return "uniform";
}

std::string_view to_name(EdgeDynamics dynamics) noexcept {
  switch (dynamics) {
    case EdgeDynamics::kStatic: return "static";
    case EdgeDynamics::kRewire: return "rewire";
    case EdgeDynamics::kRegenerate: return "regenerate";
  }
  return "rewire";
}

AdversaryKind adversary_from_name(std::string_view name) {
  for (const AdversaryKind k :
       {AdversaryKind::kNone, AdversaryKind::kUniform,
        AdversaryKind::kBlockSweep, AdversaryKind::kRegionRepeat,
        AdversaryKind::kOldestFirst, AdversaryKind::kYoungestFirst,
        AdversaryKind::kAdaptive}) {
    if (name == to_name(k)) return k;
  }
  throw std::invalid_argument("unknown adversary kind: " + std::string(name));
}

EdgeDynamics edge_dynamics_from_name(std::string_view name) {
  for (const EdgeDynamics d : {EdgeDynamics::kStatic, EdgeDynamics::kRewire,
                               EdgeDynamics::kRegenerate}) {
    if (name == to_name(d)) return d;
  }
  throw std::invalid_argument("unknown edge dynamics: " + std::string(name));
}

ScenarioSpec ScenarioSpec::from_cli(const Cli& cli) {
  ScenarioSpec spec;
  spec.protocol = cli.get("protocol", spec.protocol);
  spec.workload_kind = cli.get("workload", spec.workload_kind);

  spec.ns.clear();
  for (const std::int64_t n : cli.get_int_list("n", {1024})) {
    spec.ns.push_back(static_cast<std::uint32_t>(n));
  }
  if (spec.ns.empty()) spec.ns = {1024};
  spec.degree = static_cast<std::uint32_t>(cli.get_int("degree", spec.degree));
  spec.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(spec.seed)));
  spec.trials = static_cast<std::uint32_t>(cli.get_int("trials", spec.trials));

  // Churn defaults follow default_system_config: the paper-form formula at a
  // survivable multiplier (see core/experiment.cpp for the rationale).
  spec.churn.kind = adversary_from_name(cli.get("churn", "uniform"));
  spec.churn.multiplier = cli.get_double("churn-mult", 0.5);
  spec.churn.k = cli.get_double("churn-k", spec.churn.k);
  spec.churn.absolute = cli.get_int("churn-absolute", spec.churn.absolute);
  spec.churn.adaptive_pad_uniform =
      cli.get_bool("adaptive-pad", spec.churn.adaptive_pad_uniform);
  spec.edge_dynamics = edge_dynamics_from_name(cli.get("edge", "rewire"));
  spec.rewire_swaps =
      static_cast<std::uint32_t>(cli.get_int("rewire-swaps", spec.rewire_swaps));

  spec.walk.rate_mult = cli.get_double("walk-rate", spec.walk.rate_mult);
  spec.walk.t_mult = cli.get_double("walk-t", spec.walk.t_mult);
  spec.walk.cap_mult = cli.get_double("walk-cap", spec.walk.cap_mult);
  spec.walk.window_mult = cli.get_double("walk-window", spec.walk.window_mult);

  ProtocolConfig& pc = spec.protocol_config;
  pc.h = cli.get_double("h", pc.h);
  pc.invite_oversample = cli.get_double("oversample", pc.invite_oversample);
  pc.leader_redundancy = static_cast<std::uint32_t>(
      cli.get_int("leader-redundancy", pc.leader_redundancy));
  pc.tree_fanout =
      static_cast<std::uint32_t>(cli.get_int("fanout", pc.tree_fanout));
  pc.delta = cli.get_double("delta", pc.delta);
  pc.landmark_ttl_taus =
      cli.get_double("landmark-ttl-taus", pc.landmark_ttl_taus);
  pc.landmark_rebuild_taus =
      cli.get_double("landmark-rebuild-taus", pc.landmark_rebuild_taus);
  pc.refresh_taus = cli.get_double("refresh-taus", pc.refresh_taus);
  pc.search_timeout_taus =
      cli.get_double("timeout-taus", pc.search_timeout_taus);
  pc.inquiry_cap =
      static_cast<std::uint32_t>(cli.get_int("inquiry-cap", pc.inquiry_cap));
  pc.item_bits = static_cast<std::uint64_t>(
      cli.get_int("item-bits", static_cast<std::int64_t>(pc.item_bits)));
  pc.use_erasure_coding = cli.get_bool("erasure", pc.use_erasure_coding);
  pc.ida_surplus =
      static_cast<std::uint32_t>(cli.get_int("ida-surplus", pc.ida_surplus));

  spec.workload.items =
      static_cast<std::uint32_t>(cli.get_int("items", spec.workload.items));
  spec.workload.searchers_per_batch = static_cast<std::uint32_t>(
      cli.get_int("searches", spec.workload.searchers_per_batch));
  spec.workload.batches =
      static_cast<std::uint32_t>(cli.get_int("batches", spec.workload.batches));
  spec.workload.age_taus = cli.get_double("age-taus", spec.workload.age_taus);

  spec.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  spec.parallel = cli.get_bool("parallel", spec.parallel);
  spec.shards = static_cast<std::uint32_t>(cli.get_int("shards", spec.shards));
  spec.csv = cli.get_bool("csv", spec.csv);
  spec.json = cli.get_bool("json", spec.json);

  for (const auto& [key, value] : cli.flags()) {
    if (!is_known_key(key)) {
      std::string msg = "unknown spec key '" + key + "'; accepted keys:";
      for (const std::string& k : accepted_keys()) msg += " " + k;
      throw std::invalid_argument(msg);
    }
    // Registered extras ride along for the scenario/stack that owns them.
    if (extra_key_registry().count(key)) spec.extras[key] = value;
  }
  return spec;
}

std::vector<std::string> ScenarioSpec::to_key_values() const {
  std::vector<std::string> out;
  auto kv = [&out](const std::string& k, const std::string& v) {
    out.push_back(k + "=" + v);
  };
  kv("protocol", protocol);
  kv("workload", workload_kind);
  kv("n", fmt_n_list(ns));
  kv("degree", std::to_string(degree));
  kv("seed", std::to_string(seed));
  kv("trials", std::to_string(trials));
  kv("churn", std::string(to_name(churn.kind)));
  kv("churn-mult", fmt_double(churn.multiplier));
  kv("churn-k", fmt_double(churn.k));
  kv("churn-absolute", std::to_string(churn.absolute));
  kv("adaptive-pad", churn.adaptive_pad_uniform ? "true" : "false");
  kv("edge", std::string(to_name(edge_dynamics)));
  kv("rewire-swaps", std::to_string(rewire_swaps));
  kv("walk-rate", fmt_double(walk.rate_mult));
  kv("walk-t", fmt_double(walk.t_mult));
  kv("walk-cap", fmt_double(walk.cap_mult));
  kv("walk-window", fmt_double(walk.window_mult));
  kv("h", fmt_double(protocol_config.h));
  kv("oversample", fmt_double(protocol_config.invite_oversample));
  kv("leader-redundancy", std::to_string(protocol_config.leader_redundancy));
  kv("fanout", std::to_string(protocol_config.tree_fanout));
  kv("delta", fmt_double(protocol_config.delta));
  kv("landmark-ttl-taus", fmt_double(protocol_config.landmark_ttl_taus));
  kv("landmark-rebuild-taus",
     fmt_double(protocol_config.landmark_rebuild_taus));
  kv("refresh-taus", fmt_double(protocol_config.refresh_taus));
  kv("timeout-taus", fmt_double(protocol_config.search_timeout_taus));
  kv("inquiry-cap", std::to_string(protocol_config.inquiry_cap));
  kv("item-bits", std::to_string(protocol_config.item_bits));
  kv("erasure", protocol_config.use_erasure_coding ? "true" : "false");
  kv("ida-surplus", std::to_string(protocol_config.ida_surplus));
  kv("items", std::to_string(workload.items));
  kv("searches", std::to_string(workload.searchers_per_batch));
  kv("batches", std::to_string(workload.batches));
  kv("age-taus", fmt_double(workload.age_taus));
  kv("threads", std::to_string(threads));
  kv("parallel", parallel ? "true" : "false");
  kv("shards", std::to_string(shards));
  kv("csv", csv ? "true" : "false");
  kv("json", json ? "true" : "false");
  for (const auto& [key, value] : extras) kv(key, value);
  return out;
}

SystemConfig ScenarioSpec::system_config(std::uint32_t n_override) const {
  SystemConfig cfg;
  cfg.sim.n = n_override;
  cfg.sim.degree = degree;
  cfg.sim.seed = seed;
  cfg.sim.churn = churn;
  cfg.sim.edge_dynamics = edge_dynamics;
  cfg.sim.rewire_swaps = rewire_swaps;
  cfg.sim.shards = shards;
  cfg.walk = walk;
  cfg.protocol = protocol_config;
  return cfg;
}

ScenarioSpec ScenarioSpec::with_n(std::uint32_t n_override) const {
  ScenarioSpec out = *this;
  out.ns = {n_override};
  return out;
}

ScenarioSpec ScenarioSpec::with_churn_multiplier(double multiplier) const {
  ScenarioSpec out = *this;
  out.churn.multiplier = multiplier;
  if (multiplier <= 0.0 && out.churn.absolute < 0) {
    out.churn.kind = AdversaryKind::kNone;
  }
  return out;
}

ScenarioSpec ScenarioSpec::with_seed(std::uint64_t seed_override) const {
  ScenarioSpec out = *this;
  out.seed = seed_override;
  return out;
}

std::string extras_string(const std::map<std::string, std::string>& extras,
                          const std::string& key,
                          const std::string& fallback) {
  const auto it = extras.find(key);
  return it == extras.end() ? fallback : it->second;
}

std::int64_t extras_int(const std::map<std::string, std::string>& extras,
                        const std::string& key, std::int64_t fallback) {
  const auto it = extras.find(key);
  return it == extras.end() ? fallback : std::stoll(it->second);
}

double extras_double(const std::map<std::string, std::string>& extras,
                     const std::string& key, double fallback) {
  const auto it = extras.find(key);
  return it == extras.end() ? fallback : std::stod(it->second);
}

std::string ScenarioSpec::extra(const std::string& key,
                                const std::string& fallback) const {
  return extras_string(extras, key, fallback);
}

std::int64_t ScenarioSpec::extra_int(const std::string& key,
                                     std::int64_t fallback) const {
  return extras_int(extras, key, fallback);
}

double ScenarioSpec::extra_double(const std::string& key,
                                  double fallback) const {
  return extras_double(extras, key, fallback);
}

void emit_table(const Table& table, const ScenarioSpec& spec,
                std::ostream& os) {
  if (spec.json) {
    table.print_json(os);
  } else if (spec.csv) {
    table.print_csv(os);
  } else {
    table.print(os);
  }
}

ScenarioRegistry& ScenarioRegistry::instance() {
  // shardcheck:ok(R4: Meyers singleton registry — populated by static initializers, read-only once trials start)
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(ScenarioDef def) {
  const std::string name = def.name;
  defs_[name] = std::move(def);
}

const ScenarioDef* ScenarioRegistry::find(std::string_view name) const {
  const auto it = defs_.find(std::string(name));
  return it == defs_.end() ? nullptr : &it->second;
}

std::vector<const ScenarioDef*> ScenarioRegistry::all() const {
  std::vector<const ScenarioDef*> defs;
  defs.reserve(defs_.size());
  for (const auto& [name, def] : defs_) defs.push_back(&def);
  return defs;
}

}  // namespace churnstore
