// The uniform store/search facade over a protocol stack.
//
// Every storage scheme in the repository — the paper's committee protocol
// and all four baselines — exposes the same minimal workload surface:
// try to store an item, begin a search, poll the outcome. The generic
// store-then-search trial (core/experiment.h) and the Runner drive ANY
// stack through this interface, so swapping the paper protocol for Chord or
// sqrt-replication is a ScenarioSpec field, not a new main().
//
// Semantics:
//  * try_store returns false while the protocol is not ready (e.g. cold
//    walk-sample buffers); the caller advances a round and retries.
//  * begin_search returns a search id; outcomes stabilize after
//    search_timeout() rounds of the driver.
//  * `located` is the paper's success criterion (a live holder identified);
//    `fetched` additionally requires the payload retrieved and verified.
//    Baselines without a payload-integrity path report fetched == located.
//  * God-view accessors (copies_alive, ...) are measurement-only and
//    default to "no notion of this".
#pragma once

#include <cstdint>

#include "net/types.h"

namespace churnstore {

struct WorkloadOutcome {
  bool done = false;
  bool located = false;
  bool fetched = false;
  bool censored = false;  ///< initiator churned out before locating
  Round located_round = -1;  ///< absolute round of locate, -1 if none
  Round fetched_round = -1;
};

class StorageService {
 public:
  virtual ~StorageService() = default;

  /// Attempt to store `item` (deterministic payload) from the peer at
  /// `creator`. False = not ready yet, advance a round and retry.
  virtual bool try_store(Vertex creator, ItemId item) = 0;

  /// Begin a search for `item` from the peer at `initiator`.
  [[nodiscard]] virtual std::uint64_t begin_search(Vertex initiator,
                                                   ItemId item) = 0;

  [[nodiscard]] virtual WorkloadOutcome search_outcome(
      std::uint64_t sid) const = 0;

  /// Rounds the driver should run after a search batch before judging.
  [[nodiscard]] virtual std::uint32_t search_timeout() const = 0;

  /// --- god-view instrumentation (measurement only) ----------------------
  [[nodiscard]] virtual std::size_t copies_alive(ItemId item) const {
    (void)item;
    return 0;
  }
  [[nodiscard]] virtual std::size_t landmarks_alive(ItemId item) const {
    (void)item;
    return 0;
  }
  [[nodiscard]] virtual bool is_available(ItemId item) const {
    return copies_alive(item) > 0;
  }
};

}  // namespace churnstore
