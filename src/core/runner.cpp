#include "core/runner.h"

#include <algorithm>

#include "core/experiment.h"

namespace churnstore {

Runner::Runner(RunnerOptions options) : options_(options) {}

Runner::Runner(const ScenarioSpec& spec)
    : options_(RunnerOptions{spec.threads, spec.parallel}) {}

ThreadPool& Runner::pool() {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(options_.threads);
  return *pool_;
}

StoreSearchResult Runner::store_search(const ScenarioSpec& spec) {
  // Lend the trial pool to each trial's sharded round engine. Serial mode
  // keeps the engine serial too, preserving the bit-identity contract.
  ThreadPool* shard_pool =
      (options_.parallel && spec.shards != 1) ? &pool() : nullptr;
  const auto results = map_trials<StoreSearchResult>(
      std::max(1u, spec.trials), [&spec, shard_pool](std::uint32_t t) {
        return run_store_search_trial(
            spec.with_seed(trial_seed(spec.seed, t)), shard_pool);
      });
  StoreSearchResult total;
  bool first = true;
  for (const StoreSearchResult& r : results) {
    if (first) {
      total = r;
      first = false;
    } else {
      total.merge(r);
    }
  }
  return total;
}

}  // namespace churnstore
