// KvStore — the downstream-facing key/value API over P2PSystem.
//
// Maps string keys to item ids (content addressing via FNV hash, the
// paper's "each data item is uniquely identified by an id such as its hash
// value"), drives the store/search protocols, and hands back the retrieved
// bytes once a get completes.
//
//   KvStore kv(sys);
//   kv.put(/*creator=*/3, "album/cover.png", bytes);
//   auto h = kv.get(/*initiator=*/900, "album/cover.png");
//   sys.run_rounds(sys.search_timeout());
//   if (auto* r = kv.result(h); r && r->complete) use(r->value);
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/system.h"

namespace churnstore {

class KvStore {
 public:
  explicit KvStore(P2PSystem& sys) : sys_(sys) {}

  /// Item id for a key (stable content addressing).
  [[nodiscard]] static ItemId key_to_item(std::string_view key);

  /// Store `value` under `key` from the peer at `creator`. Returns false
  /// while the creator's walk samples are still cold (retry next round) or
  /// if the key is already stored.
  bool put(Vertex creator, std::string_view key,
           std::vector<std::uint8_t> value);

  /// Begin retrieving `key` from the peer at `initiator`; returns a handle.
  [[nodiscard]] std::uint64_t get(Vertex initiator, std::string_view key);

  struct GetResult {
    bool complete = false;   ///< search finished (success or failure)
    bool found = false;      ///< value retrieved and hash-verified
    std::vector<std::uint8_t> value;
    Round rounds_taken = -1;
  };
  /// Snapshot of a get's progress; nullopt for unknown handles.
  [[nodiscard]] std::optional<GetResult> result(std::uint64_t handle) const;

  /// Whether a previously put key is still recoverable in the network.
  [[nodiscard]] bool contains(std::string_view key) const;

  [[nodiscard]] std::size_t key_count() const noexcept { return key_index_.size(); }

 private:
  P2PSystem& sys_;
  std::unordered_map<std::string, ItemId> key_index_;
};

}  // namespace churnstore
