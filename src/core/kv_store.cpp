#include "core/kv_store.h"

namespace churnstore {

ItemId KvStore::key_to_item(std::string_view key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h | 1;  // keep ids nonzero
}

bool KvStore::put(Vertex creator, std::string_view key,
                  std::vector<std::uint8_t> value) {
  const std::string k(key);
  if (key_index_.count(k)) return false;
  const ItemId item = key_to_item(key);
  if (!sys_.store_item(creator, item, std::move(value))) return false;
  key_index_.emplace(k, item);
  return true;
}

std::uint64_t KvStore::get(Vertex initiator, std::string_view key) {
  return sys_.search(initiator, key_to_item(key));
}

std::optional<KvStore::GetResult> KvStore::result(std::uint64_t handle) const {
  const SearchStatus* st = sys_.search_status(handle);
  if (!st) return std::nullopt;
  GetResult r;
  r.complete = st->finished;
  r.found = st->fetch_ok;
  if (st->fetch_ok) {
    r.value = st->fetched_data;
    r.rounds_taken = st->fetched - st->start;
  }
  return r;
}

bool KvStore::contains(std::string_view key) const {
  const auto it = key_index_.find(std::string(key));
  if (it == key_index_.end()) return false;
  return sys_.store().is_recoverable(it->second);
}

}  // namespace churnstore
