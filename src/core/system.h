// churnstore::P2PSystem — the simulation driver and public API.
//
// P2PSystem owns a dynamic Network and an ordered list of Protocol modules
// and drives the paper's synchronous round structure over them. The default
// constructor wires the paper's stack (soup, committees, landmarks, store,
// search); with_protocols() builds a system around ANY protocol list, which
// is how the baselines (flooding, sqrt-replication, k-walker, Chord) run on
// the same driver:
//
//   P2PSystem sys({.sim = {.n = 1024, .seed = 7}});
//   sys.run_rounds(sys.warmup_rounds());              // fill sample buffers
//   sys.store_item(/*creator=*/3, /*item=*/42);
//   sys.run_rounds(2 * sys.tau());
//   auto sid = sys.search(/*initiator=*/900, /*item=*/42);
//   sys.run_rounds(sys.search_timeout());
//   const SearchStatus* st = sys.search_status(sid);  // located? fetched?
//
//   // Custom stack: only the walk soup plus a baseline.
//   std::vector<std::unique_ptr<Protocol>> mods;
//   mods.push_back(std::make_unique<TokenSoup>(cfg.walk));
//   auto sys2 = P2PSystem::with_protocols(cfg, std::move(mods));
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "committee/committee.h"
#include "core/protocol.h"
#include "landmark/landmark.h"
#include "net/config.h"
#include "net/network.h"
#include "storage/search_protocol.h"
#include "storage/store_protocol.h"
#include "walk/token_soup.h"

namespace churnstore {

struct SystemConfig {
  SimConfig sim{};
  WalkConfig walk{};
  ProtocolConfig protocol{};
};

/// Cumulative wall-clock seconds per round phase (capacity scenario: where
/// does a round actually go — soup vs protocol handlers vs delivery?).
/// Zero-cost unless enabled via P2PSystem::enable_phase_timing.
struct RoundPhaseTimers {
  bool enabled = false;
  double churn_secs = 0;     ///< begin_round: adversary churn + edges
  double soup_secs = 0;      ///< TokenSoup round work (sharded token moves)
  double handler_secs = 0;   ///< every other protocol's round hooks
  double deliver_secs = 0;   ///< outbox flush + inbox fill
  double dispatch_secs = 0;  ///< on_message dispatch over all inboxes

  void reset() noexcept { *this = RoundPhaseTimers{.enabled = enabled}; }
};

/// Cumulative global-heap traffic across run_round() calls, measured by
/// the HeapSentinel across every thread (shard-pool workers included).
/// Always accumulated (one counter snapshot per round); when
/// HeapSentinel::available() is false the alloc/free/byte fields stay
/// zero and mean "unknown" — report n/a, never a fake heap-quiet claim.
struct RoundHeapStats {
  std::uint64_t rounds = 0;  ///< run_round() calls observed
  std::uint64_t allocs = 0;  ///< operator new calls during those rounds
  std::uint64_t frees = 0;   ///< operator delete calls during those rounds
  std::uint64_t bytes = 0;   ///< bytes requested during those rounds

  void reset() noexcept { *this = RoundHeapStats{}; }
};

class P2PSystem;

/// End-of-round callback for exporters (obs/export.h): runs after the
/// round's protocols, delivery, heap accounting, and trace drain, so it
/// observes the finished round. Explicitly cold-path — anything it
/// allocates is exporter overhead, excluded from heap_stats().
struct RoundObserver {
  virtual ~RoundObserver() = default;
  virtual void on_round_observed(P2PSystem& sys) = 0;
};

class P2PSystem {
 public:
  /// Build the paper's full protocol stack.
  explicit P2PSystem(const SystemConfig& config);

  /// Build a system around an arbitrary protocol list. Protocols are
  /// attached (and later run) in list order; modules that read a sibling's
  /// derived constants at attach time (e.g. CommitteeManager reads
  /// TokenSoup::tau) must come after that sibling.
  P2PSystem(const SystemConfig& config,
            std::vector<std::unique_ptr<Protocol>> protocols);

  [[nodiscard]] static P2PSystem with_protocols(
      const SystemConfig& config,
      std::vector<std::unique_ptr<Protocol>> protocols) {
    return P2PSystem(config, std::move(protocols));
  }

  /// The paper stack as a protocol list (soup, committees, landmarks,
  /// store, search) for callers that want to extend it before building.
  [[nodiscard]] static std::vector<std::unique_ptr<Protocol>> paper_protocols(
      const SystemConfig& config);

  P2PSystem(P2PSystem&&) = default;
  P2PSystem& operator=(P2PSystem&&) = default;

  /// --- round driver ---------------------------------------------------
  /// Execute exactly one synchronous round (churn/edges, protocol work,
  /// delivery, message dispatch).
  void run_round();
  void run_rounds(std::uint32_t k);

  /// Install the worker pool the sharded round engine runs on (borrowed;
  /// nullptr = serial). With sim.shards > 1 the per-round work (TokenSoup
  /// token moves, staged merges) spreads across the pool, caller helping,
  /// so a Runner can nest trial x shard scheduling on ONE pool. Results are
  /// bit-identical with or without a pool.
  void set_shard_pool(ThreadPool* pool) noexcept {
    net_->set_worker_pool(pool);
  }

  /// Per-phase round timing (off by default; ~2 clock reads per phase when
  /// on). The capacity scenario uses this to report soup vs handler vs
  /// delivery rounds/sec in isolation.
  void enable_phase_timing(bool on) noexcept { phase_timers_.enabled = on; }
  [[nodiscard]] const RoundPhaseTimers& phase_timers() const noexcept {
    return phase_timers_;
  }
  void reset_phase_timers() noexcept {
    phase_timers_.reset();
    std::fill(protocol_secs_.begin(), protocol_secs_.end(), 0.0);
  }
  /// Cumulative round-hook seconds per registered protocol (index-aligned
  /// with protocols()); accumulated only while phase timing is enabled.
  /// The chrome-trace exporter renders these as per-protocol segments.
  [[nodiscard]] const std::vector<double>& protocol_secs() const noexcept {
    return protocol_secs_;
  }

  /// Install (or clear, with nullptr) the end-of-round observer (borrowed).
  void set_round_observer(RoundObserver* obs) noexcept { observer_ = obs; }

  /// Global-heap traffic per round (HeapSentinel deltas around run_round).
  /// The steady-state proof reads: reset, run K rounds, assert allocs == 0
  /// — valid only while HeapSentinel::available().
  [[nodiscard]] const RoundHeapStats& heap_stats() const noexcept {
    return heap_stats_;
  }
  void reset_heap_stats() noexcept { heap_stats_.reset(); }

  /// Rounds of warm-up needed before sample buffers are useful (~2 tau).
  [[nodiscard]] std::uint32_t warmup_rounds() const noexcept {
    return 2 * tau() + 2;
  }

  /// --- storage / search API (paper stack; asserts if absent) -------------
  /// Store an item with a deterministic pseudo-random payload of the
  /// configured size. Returns false while the creator's samples are cold.
  bool store_item(Vertex creator, ItemId item);
  /// Store explicit content.
  bool store_item(Vertex creator, ItemId item, std::vector<std::uint8_t> payload);

  [[nodiscard]] std::uint64_t search(Vertex initiator, ItemId item);
  [[nodiscard]] const SearchStatus* search_status(std::uint64_t sid) const {
    return searches().status(sid);
  }

  /// Demonstration hook: when sim.churn.kind == kAdaptive, the adversary
  /// churns current committee members first — power the paper's oblivious
  /// model denies it (see AdaptiveTargetQuery). Call once after construction.
  void enable_adaptive_adversary();

  /// --- protocol access ----------------------------------------------------
  /// First registered protocol of dynamic type P, or nullptr.
  template <typename P>
  [[nodiscard]] P* find_protocol() const noexcept {
    for (const auto& p : protocols_) {
      if (auto* typed = dynamic_cast<P*>(p.get())) return typed;
    }
    return nullptr;
  }
  /// First registered protocol with the given name(), or nullptr.
  [[nodiscard]] Protocol* find_protocol(std::string_view name) const noexcept;

  [[nodiscard]] const std::vector<std::unique_ptr<Protocol>>& protocols()
      const noexcept {
    return protocols_;
  }

  /// Paper-stack component accessors; assert when the module is absent.
  [[nodiscard]] Network& network() noexcept { return *net_; }
  [[nodiscard]] const Network& network() const noexcept { return *net_; }
  [[nodiscard]] TokenSoup& soup() const noexcept { return *checked(soup_); }
  [[nodiscard]] CommitteeManager& committees() const noexcept {
    return *checked(committees_);
  }
  [[nodiscard]] LandmarkManager& landmarks() const noexcept {
    return *checked(landmarks_);
  }
  [[nodiscard]] StoreManager& store() const noexcept { return *checked(store_); }
  [[nodiscard]] SearchManager& searches() const noexcept {
    return *checked(searches_);
  }
  [[nodiscard]] const Metrics& metrics() const noexcept { return net_->metrics(); }

  /// --- derived constants --------------------------------------------------
  [[nodiscard]] std::uint32_t n() const noexcept { return net_->n(); }
  [[nodiscard]] Round round() const noexcept { return net_->round(); }
  /// Mixing-time unit; derived from the config so it is meaningful for
  /// every stack, including those without a TokenSoup module.
  [[nodiscard]] std::uint32_t tau() const noexcept {
    return tau_rounds(config_.sim.n, config_.walk);
  }
  [[nodiscard]] std::uint32_t search_timeout() const noexcept {
    return searches().timeout_rounds();
  }
  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }

 private:
  void dispatch_inboxes();

  /// A message whose consume chain reached a serial-dispatch protocol
  /// during the sharded pass: resume serially at `protocol`, in canonical
  /// (shard, vertex, inbox) order.
  struct PendingDispatch {
    Vertex vertex;
    std::uint32_t msg;       ///< index into inbox(vertex)
    std::uint32_t protocol;  ///< chain resume position
  };

  template <typename P>
  static P* checked(P* p) noexcept {
    assert(p != nullptr && "module absent from this protocol stack");
    return p;
  }

  SystemConfig config_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<Protocol>> protocols_;
  RoundPhaseTimers phase_timers_;
  /// Per-protocol cumulative round-hook seconds (see protocol_secs()).
  std::vector<double> protocol_secs_;
  RoundHeapStats heap_stats_;
  RoundObserver* observer_ = nullptr;
  /// Per-shard lists of paused dispatch chains (reused across rounds).
  std::vector<std::vector<PendingDispatch>> dispatch_pending_;

  // Cached paper-stack modules (null when absent from a custom stack).
  TokenSoup* soup_ = nullptr;
  CommitteeManager* committees_ = nullptr;
  LandmarkManager* landmarks_ = nullptr;
  StoreManager* store_ = nullptr;
  SearchManager* searches_ = nullptr;
};

}  // namespace churnstore
