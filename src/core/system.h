// churnstore::P2PSystem — the public API of the library.
//
// Wires together the dynamic network, the random-walk soup, and the
// committee / landmark / storage / search protocols, and drives the paper's
// synchronous round structure:
//
//   P2PSystem sys({.sim = {.n = 1024, .seed = 7}});
//   sys.run_rounds(sys.warmup_rounds());              // fill sample buffers
//   sys.store_item(/*creator=*/3, /*item=*/42);
//   sys.run_rounds(2 * sys.tau());
//   auto sid = sys.search(/*initiator=*/900, /*item=*/42);
//   sys.run_rounds(sys.search_timeout());
//   const SearchStatus* st = sys.search_status(sid);  // located? fetched?
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "committee/committee.h"
#include "landmark/landmark.h"
#include "net/config.h"
#include "net/network.h"
#include "storage/search_protocol.h"
#include "storage/store_protocol.h"
#include "walk/token_soup.h"

namespace churnstore {

struct SystemConfig {
  SimConfig sim{};
  WalkConfig walk{};
  ProtocolConfig protocol{};
};

class P2PSystem {
 public:
  explicit P2PSystem(const SystemConfig& config);

  /// --- round driver ---------------------------------------------------
  /// Execute exactly one synchronous round (churn/edges, walks, protocols,
  /// delivery, message dispatch).
  void run_round();
  void run_rounds(std::uint32_t k);

  /// Rounds of warm-up needed before sample buffers are useful (~2 tau).
  [[nodiscard]] std::uint32_t warmup_rounds() const noexcept {
    return 2 * soup_->tau() + 2;
  }

  /// --- storage / search API ----------------------------------------------
  /// Store an item with a deterministic pseudo-random payload of the
  /// configured size. Returns false while the creator's samples are cold.
  bool store_item(Vertex creator, ItemId item);
  /// Store explicit content.
  bool store_item(Vertex creator, ItemId item, std::vector<std::uint8_t> payload);

  [[nodiscard]] std::uint64_t search(Vertex initiator, ItemId item);
  [[nodiscard]] const SearchStatus* search_status(std::uint64_t sid) const {
    return searches_->status(sid);
  }

  /// Demonstration hook: when sim.churn.kind == kAdaptive, the adversary
  /// churns current committee members first — power the paper's oblivious
  /// model denies it. Call once after construction (see bench_adversary).
  void enable_adaptive_adversary();

  /// --- component access ---------------------------------------------------
  [[nodiscard]] Network& network() noexcept { return *net_; }
  [[nodiscard]] const Network& network() const noexcept { return *net_; }
  [[nodiscard]] TokenSoup& soup() noexcept { return *soup_; }
  [[nodiscard]] CommitteeManager& committees() noexcept { return *committees_; }
  [[nodiscard]] LandmarkManager& landmarks() noexcept { return *landmarks_; }
  [[nodiscard]] StoreManager& store() noexcept { return *store_; }
  [[nodiscard]] SearchManager& searches() noexcept { return *searches_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return net_->metrics(); }

  /// --- derived constants --------------------------------------------------
  [[nodiscard]] std::uint32_t n() const noexcept { return net_->n(); }
  [[nodiscard]] Round round() const noexcept { return net_->round(); }
  [[nodiscard]] std::uint32_t tau() const noexcept { return soup_->tau(); }
  [[nodiscard]] std::uint32_t search_timeout() const noexcept {
    return searches_->timeout_rounds();
  }
  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }

 private:
  void dispatch_inboxes();

  SystemConfig config_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<TokenSoup> soup_;
  std::unique_ptr<CommitteeManager> committees_;
  std::unique_ptr<LandmarkManager> landmarks_;
  std::unique_ptr<StoreManager> store_;
  std::unique_ptr<SearchManager> searches_;
};

}  // namespace churnstore
