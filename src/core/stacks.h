// Named protocol stacks: one registry mapping a ScenarioSpec's `protocol`
// field to a built P2PSystem plus the StorageService facade that drives it.
//
// Built-ins: "churnstore" (the paper's full stack), "chord", "flooding",
// "k-walker", "sqrt-replication". New stacks register with register_stack()
// — after that they are reachable from every scenario via
// `protocol=<name>` with no other code changes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/service.h"
#include "core/system.h"

namespace churnstore {

struct BuiltSystem {
  std::unique_ptr<P2PSystem> system;
  /// Set when the service is a standalone adapter; when the service IS one
  /// of the stack's protocols, the system owns it and this stays null.
  std::unique_ptr<StorageService> owned_service;
  StorageService* service = nullptr;
};

/// Stack-specific knobs come from the spec's `extras` key=value map (e.g.
/// chord-stabilize=8, flood-refresh=8, walkers=16, replication-mult=1.0).
using StackExtras = std::map<std::string, std::string>;
using StackBuilder =
    std::function<BuiltSystem(const SystemConfig&, const StackExtras&)>;

/// Registers a stack; returns false (and keeps the old one) on name clash.
bool register_stack(const std::string& name, const std::string& summary,
                    StackBuilder builder);

/// Builds the named stack; throws std::invalid_argument for unknown names.
[[nodiscard]] BuiltSystem build_stack(std::string_view name,
                                      const SystemConfig& config,
                                      const StackExtras& extras = {});

/// (name, summary) for every registered stack, sorted by name.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> stack_catalog();

/// StorageService over the paper stack (wraps Store/Search managers).
class ChurnstoreService final : public StorageService {
 public:
  explicit ChurnstoreService(P2PSystem& sys) : sys_(sys) {}

  bool try_store(Vertex creator, ItemId item) override {
    return sys_.store_item(creator, item);
  }
  [[nodiscard]] std::uint64_t begin_search(Vertex initiator,
                                           ItemId item) override {
    return sys_.search(initiator, item);
  }
  [[nodiscard]] WorkloadOutcome search_outcome(
      std::uint64_t sid) const override;
  [[nodiscard]] std::uint32_t search_timeout() const override {
    return sys_.search_timeout();
  }
  [[nodiscard]] std::size_t copies_alive(ItemId item) const override {
    return sys_.store().copies_alive(item);
  }
  [[nodiscard]] std::size_t landmarks_alive(ItemId item) const override {
    return sys_.store().landmarks_alive(item);
  }
  [[nodiscard]] bool is_available(ItemId item) const override {
    return sys_.store().is_available(item);
  }

 private:
  P2PSystem& sys_;
};

}  // namespace churnstore
