// Deterministic Monte-Carlo trial runner.
//
// Runs N independent trials of a workload across the ThreadPool. Every
// trial owns its own seed (a pure function of the base seed and the trial
// index) and its own simulator, and results land in a vector indexed by
// trial — so the SAME SEED produces BIT-IDENTICAL results whether the
// trials execute serially or across all cores (tested). Aggregation happens
// after the barrier, in trial order.
//
//   Runner runner({.threads = 0, .parallel = true});
//   StoreSearchResult merged = runner.store_search(spec);   // spec.trials
//
//   auto results = runner.map_trials<double>(16, [&](std::uint32_t t) {
//     return measure(Runner::trial_seed(spec.seed, t));
//   });
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/scenario.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace churnstore {

struct StoreSearchResult;

struct RunnerOptions {
  std::size_t threads = 0;  ///< worker threads; 0 = hardware concurrency
  bool parallel = true;     ///< false = run trials inline on this thread
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {});
  /// Execution options from the spec (threads / parallel keys).
  explicit Runner(const ScenarioSpec& spec);

  /// Deterministic per-trial seed: a pure function of (base, trial).
  [[nodiscard]] static std::uint64_t trial_seed(std::uint64_t base,
                                                std::uint32_t trial) noexcept {
    return mix64(base ^ (0x9e3779b97f4a7c15ULL * (trial + 1)));
  }

  /// Runs fn(trial) for trial in [0, trials); returns results in trial
  /// order. fn must not touch shared mutable state (each trial builds its
  /// own simulator).
  template <typename R, typename Fn>
  std::vector<R> map_trials(std::uint32_t trials, Fn&& fn) {
    std::vector<R> out(trials);
    if (!options_.parallel || trials <= 1) {
      for (std::uint32_t t = 0; t < trials; ++t) out[t] = fn(t);
    } else {
      pool().parallel_for(trials, [&](std::size_t t) {
        out[t] = fn(static_cast<std::uint32_t>(t));
      });
    }
    return out;
  }

  /// spec.trials store-then-search trials of spec's protocol stack, merged
  /// in trial order. Deterministic in (spec, trials) — independent of
  /// thread count, parallel/serial mode, and spec.shards. When the spec
  /// asks for intra-round sharding (shards != 1), every trial's system runs
  /// its shard tasks on the SAME pool as the trials (nested, caller-helping
  /// — see ThreadPool::for_each_helping), so one pool saturates the cores
  /// whether the parallelism comes from many trials or one big network.
  [[nodiscard]] StoreSearchResult store_search(const ScenarioSpec& spec);

  [[nodiscard]] const RunnerOptions& options() const noexcept {
    return options_;
  }

  /// The runner's pool (created on first use). Exposed so scenarios can
  /// lend it to standalone systems (P2PSystem::set_shard_pool).
  [[nodiscard]] ThreadPool& pool();

 private:
  RunnerOptions options_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace churnstore
