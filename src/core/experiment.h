// Shared experiment workloads (DESIGN.md E1-E13): the canonical
// store-then-search trial, availability tracking over time, and Monte-Carlo
// aggregation across seeds.
//
// The store-search trial is generic over the protocol stack: it drives any
// ScenarioSpec-named stack (paper protocol or baseline) through the
// StorageService facade, so `protocol=chord` and `protocol=churnstore` run
// the identical workload. Multi-trial aggregation goes through the Runner
// (core/runner.h) and saturates all cores deterministically.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scenario.h"
#include "core/system.h"
#include "stats/histogram.h"
#include "stats/summary.h"

namespace churnstore {

class ThreadPool;

struct StoreSearchResult {
  std::uint64_t searches = 0;
  std::uint64_t located = 0;
  std::uint64_t fetched = 0;
  std::uint64_t censored = 0;  ///< initiator churned out mid-search
  RunningStat locate_rounds;   ///< rounds from start to locate, successes only
  RunningStat fetch_rounds;
  /// Full locate-latency distribution (same observations as locate_rounds)
  /// so scenarios can print tail quantiles, not just the mean.
  Histogram locate_hist{0.0, 256.0, 256};
  RunningStat copies_alive;       ///< sampled at search time, per item
  RunningStat landmarks_alive;
  /// Per-trial summaries: each trial contributes ONE observation, so after
  /// a merge the mean/stddev/ci95_halfwidth are across-trial statistics
  /// (the tables print mean +/- ci95). Replaces the old trial-weighted
  /// double averages, which could not report confidence intervals.
  RunningStat availability;         ///< fraction of item-checks available
  RunningStat bits_node_round_max;  ///< mean over rounds of per-round max
  RunningStat bits_node_round_mean;
  /// Trials merged into this result.
  std::uint64_t trial_count = 1;

  void merge(const StoreSearchResult& o);
  [[nodiscard]] double locate_rate() const;
  [[nodiscard]] double fetch_rate() const;
};

/// One workload trial of the spec's protocol stack (spec.seed): the
/// canonical store-then-search trial, or the KvStore workload when
/// spec.workload_kind == "kv". `shard_pool` (borrowed, may be null) is lent
/// to the trial system's sharded round engine (sim.shards from the spec).
[[nodiscard]] StoreSearchResult run_store_search_trial(
    const ScenarioSpec& spec, ThreadPool* shard_pool = nullptr);

/// Churnstore-stack trial from a raw SystemConfig (test/bench convenience).
[[nodiscard]] StoreSearchResult run_store_search_trial(
    const SystemConfig& config, const StoreSearchOptions& options,
    ThreadPool* shard_pool = nullptr);

/// Runs `trials` independently seeded trials (Runner::trial_seed) on the
/// ThreadPool and merges the results in trial order; deterministic in
/// (config, options, trials) regardless of thread count.
[[nodiscard]] StoreSearchResult run_store_search_trials(
    SystemConfig config, const StoreSearchOptions& options,
    std::uint32_t trials);

/// Availability-over-time workload (experiment E6/E10): store one item and
/// record copies/landmarks/availability every `sample_every` rounds for
/// `horizon_taus` taus.
struct AvailabilityTrace {
  std::vector<Round> rounds;
  std::vector<std::uint64_t> copies;
  std::vector<std::uint64_t> landmarks;
  std::vector<std::uint8_t> available;
  std::vector<std::uint8_t> recoverable;
  std::uint64_t generations = 0;

  [[nodiscard]] double availability_fraction() const;
  [[nodiscard]] double recoverable_fraction() const;
  [[nodiscard]] Round first_unrecoverable() const;  ///< -1 if never
};

[[nodiscard]] AvailabilityTrace run_availability_trial(
    const SystemConfig& config, double horizon_taus,
    std::uint32_t sample_every = 4);

/// Default system config used by benches; callers tweak fields afterwards.
[[nodiscard]] SystemConfig default_system_config(std::uint32_t n,
                                                 std::uint64_t seed);

}  // namespace churnstore
