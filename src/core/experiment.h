// Shared experiment harness used by the bench binaries (DESIGN.md E1-E13):
// canonical store-then-search workloads, availability tracking over time,
// and Monte-Carlo aggregation across seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/system.h"
#include "stats/summary.h"

namespace churnstore {

/// Workload: store `items` items after warm-up, wait 2*tau, then run
/// `batches` batches of `searchers_per_batch` concurrent searches from
/// uniformly random initiators; each batch runs to the search timeout.
struct StoreSearchOptions {
  std::uint32_t items = 4;
  std::uint32_t searchers_per_batch = 16;
  std::uint32_t batches = 2;
  /// Extra churn exposure between store and first search, in taus.
  double age_taus = 2.0;
};

struct StoreSearchResult {
  std::uint64_t searches = 0;
  std::uint64_t located = 0;
  std::uint64_t fetched = 0;
  std::uint64_t censored = 0;  ///< initiator churned out mid-search
  RunningStat locate_rounds;   ///< rounds from start to locate, successes only
  RunningStat fetch_rounds;
  RunningStat copies_alive;       ///< sampled at search time, per item
  RunningStat landmarks_alive;
  double availability_fraction = 0.0;  ///< fraction of item-checks available
  double max_bits_node_round = 0.0;
  double mean_bits_node_round = 0.0;

  void merge(const StoreSearchResult& o);
  [[nodiscard]] double locate_rate() const;
  [[nodiscard]] double fetch_rate() const;
};

[[nodiscard]] StoreSearchResult run_store_search_trial(
    const SystemConfig& config, const StoreSearchOptions& options);

/// Runs `trials` seeds of fn(seed) sequentially and merges the results.
[[nodiscard]] StoreSearchResult run_store_search_trials(
    SystemConfig config, const StoreSearchOptions& options,
    std::uint32_t trials);

/// Availability-over-time workload (experiment E6/E10): store one item and
/// record copies/landmarks/availability every `sample_every` rounds for
/// `horizon_taus` taus.
struct AvailabilityTrace {
  std::vector<Round> rounds;
  std::vector<std::uint64_t> copies;
  std::vector<std::uint64_t> landmarks;
  std::vector<std::uint8_t> available;
  std::vector<std::uint8_t> recoverable;
  std::uint64_t generations = 0;

  [[nodiscard]] double availability_fraction() const;
  [[nodiscard]] double recoverable_fraction() const;
  [[nodiscard]] Round first_unrecoverable() const;  ///< -1 if never
};

[[nodiscard]] AvailabilityTrace run_availability_trial(
    const SystemConfig& config, double horizon_taus,
    std::uint32_t sample_every = 4);

/// Default system config used by benches; callers tweak fields afterwards.
[[nodiscard]] SystemConfig default_system_config(std::uint32_t n,
                                                 std::uint64_t seed);

}  // namespace churnstore
