// Shared experiment workloads (DESIGN.md E1-E13): the canonical
// store-then-search trial, availability tracking over time, and Monte-Carlo
// aggregation across seeds.
//
// The store-search trial is generic over the protocol stack: it drives any
// ScenarioSpec-named stack (paper protocol or baseline) through the
// StorageService facade, so `protocol=chord` and `protocol=churnstore` run
// the identical workload. Multi-trial aggregation goes through the Runner
// (core/runner.h) and saturates all cores deterministically.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scenario.h"
#include "core/system.h"
#include "stats/summary.h"

namespace churnstore {

struct StoreSearchResult {
  std::uint64_t searches = 0;
  std::uint64_t located = 0;
  std::uint64_t fetched = 0;
  std::uint64_t censored = 0;  ///< initiator churned out mid-search
  RunningStat locate_rounds;   ///< rounds from start to locate, successes only
  RunningStat fetch_rounds;
  RunningStat copies_alive;       ///< sampled at search time, per item
  RunningStat landmarks_alive;
  double availability_fraction = 0.0;  ///< fraction of item-checks available
  double max_bits_node_round = 0.0;
  double mean_bits_node_round = 0.0;
  /// Trials merged into this result (weights availability_fraction).
  std::uint64_t trial_count = 1;

  void merge(const StoreSearchResult& o);
  [[nodiscard]] double locate_rate() const;
  [[nodiscard]] double fetch_rate() const;
};

/// One store-then-search trial of the spec's protocol stack (spec.seed).
[[nodiscard]] StoreSearchResult run_store_search_trial(
    const ScenarioSpec& spec);

/// Churnstore-stack trial from a raw SystemConfig (test/bench convenience).
[[nodiscard]] StoreSearchResult run_store_search_trial(
    const SystemConfig& config, const StoreSearchOptions& options);

/// Runs `trials` independently seeded trials (Runner::trial_seed) on the
/// ThreadPool and merges the results in trial order; deterministic in
/// (config, options, trials) regardless of thread count.
[[nodiscard]] StoreSearchResult run_store_search_trials(
    SystemConfig config, const StoreSearchOptions& options,
    std::uint32_t trials);

/// Availability-over-time workload (experiment E6/E10): store one item and
/// record copies/landmarks/availability every `sample_every` rounds for
/// `horizon_taus` taus.
struct AvailabilityTrace {
  std::vector<Round> rounds;
  std::vector<std::uint64_t> copies;
  std::vector<std::uint64_t> landmarks;
  std::vector<std::uint8_t> available;
  std::vector<std::uint8_t> recoverable;
  std::uint64_t generations = 0;

  [[nodiscard]] double availability_fraction() const;
  [[nodiscard]] double recoverable_fraction() const;
  [[nodiscard]] Round first_unrecoverable() const;  ///< -1 if never
};

[[nodiscard]] AvailabilityTrace run_availability_trial(
    const SystemConfig& config, double horizon_taus,
    std::uint32_t sample_every = 4);

/// Default system config used by benches; callers tweak fields afterwards.
[[nodiscard]] SystemConfig default_system_config(std::uint32_t n,
                                                 std::uint64_t seed);

}  // namespace churnstore
