#include "core/experiment.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace churnstore {

void StoreSearchResult::merge(const StoreSearchResult& o) {
  searches += o.searches;
  located += o.located;
  fetched += o.fetched;
  censored += o.censored;
  locate_rounds.merge(o.locate_rounds);
  fetch_rounds.merge(o.fetch_rounds);
  copies_alive.merge(o.copies_alive);
  landmarks_alive.merge(o.landmarks_alive);
  availability_fraction = (availability_fraction + o.availability_fraction) / 2;
  max_bits_node_round = std::max(max_bits_node_round, o.max_bits_node_round);
  mean_bits_node_round = std::max(mean_bits_node_round, o.mean_bits_node_round);
}

double StoreSearchResult::locate_rate() const {
  const std::uint64_t eligible = searches - censored;
  return eligible ? static_cast<double>(located) / static_cast<double>(eligible)
                  : 0.0;
}

double StoreSearchResult::fetch_rate() const {
  const std::uint64_t eligible = searches - censored;
  return eligible ? static_cast<double>(fetched) / static_cast<double>(eligible)
                  : 0.0;
}

SystemConfig default_system_config(std::uint32_t n, std::uint64_t seed) {
  SystemConfig c;
  c.sim.n = n;
  c.sim.seed = seed;
  c.sim.degree = 8;
  c.sim.churn.kind = AdversaryKind::kUniform;
  c.sim.churn.k = 1.5;
  // Paper-form churn c * n / ln^k n. The paper's c = 4 means >25% of the
  // network per round at simulatable n (ln n ~ 6-9), far outside the
  // asymptotic regime the analysis lives in; c = 0.5 (~2-4% per round) keeps
  // the same functional form at a survivable constant. bench_churn_limit
  // sweeps c to find the breaking point.
  c.sim.churn.multiplier = 0.5;
  c.sim.edge_dynamics = EdgeDynamics::kRewire;
  return c;
}

StoreSearchResult run_store_search_trial(const SystemConfig& config,
                                         const StoreSearchOptions& options) {
  P2PSystem sys(config);
  Rng workload(mix64(config.sim.seed ^ 0x776f726bULL));
  StoreSearchResult res;

  sys.run_rounds(sys.warmup_rounds());

  // Store the items from random creators (retrying while buffers are cold).
  std::vector<ItemId> items;
  for (std::uint32_t i = 0; i < options.items; ++i) {
    const ItemId item = mix64(config.sim.seed * 1000 + i) | 1;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto creator =
          static_cast<Vertex>(workload.next_below(sys.n()));
      if (sys.store_item(creator, item)) {
        items.push_back(item);
        break;
      }
      sys.run_round();
    }
  }

  // Let the storage committees build their landmark sets and survive churn
  // for a while before anyone searches.
  sys.run_rounds(static_cast<std::uint32_t>(options.age_taus * sys.tau()) +
                 2 * sys.tau());

  for (std::uint32_t b = 0; b < options.batches; ++b) {
    // Sample availability god-view at batch start.
    std::uint64_t avail = 0;
    for (const ItemId item : items) {
      res.copies_alive.add(static_cast<double>(sys.store().copies_alive(item)));
      res.landmarks_alive.add(
          static_cast<double>(sys.store().landmarks_alive(item)));
      avail += sys.store().is_available(item);
    }
    res.availability_fraction +=
        items.empty() ? 0.0
                      : static_cast<double>(avail) /
                            static_cast<double>(items.size()) /
                            static_cast<double>(options.batches);

    std::vector<std::uint64_t> sids;
    const Round batch_start = sys.round();
    for (std::uint32_t s = 0; s < options.searchers_per_batch; ++s) {
      if (items.empty()) break;
      const ItemId item = items[workload.next_below(items.size())];
      const auto initiator =
          static_cast<Vertex>(workload.next_below(sys.n()));
      sids.push_back(sys.search(initiator, item));
    }
    sys.run_rounds(sys.search_timeout() + 4);

    for (const std::uint64_t sid : sids) {
      const SearchStatus* st = sys.search_status(sid);
      if (!st) continue;
      ++res.searches;
      if (st->initiator_churned && !st->succeeded_locate()) {
        // Churned out before locating: censored trial (the guarantee is for
        // nodes that stay long enough to finish their search).
        ++res.censored;
        continue;
      }
      if (st->succeeded_locate()) {
        ++res.located;
        res.locate_rounds.add(static_cast<double>(st->located - batch_start));
      }
      if (st->succeeded_fetch()) {
        ++res.fetched;
        res.fetch_rounds.add(static_cast<double>(st->fetched - batch_start));
      }
    }
  }

  res.max_bits_node_round = sys.metrics().max_bits_per_node_round().mean();
  res.mean_bits_node_round = sys.metrics().mean_bits_per_node_round().mean();
  return res;
}

StoreSearchResult run_store_search_trials(SystemConfig config,
                                          const StoreSearchOptions& options,
                                          std::uint32_t trials) {
  StoreSearchResult total;
  bool first = true;
  for (std::uint32_t t = 0; t < trials; ++t) {
    config.sim.seed = mix64(config.sim.seed + t * 7919 + 1);
    const StoreSearchResult r = run_store_search_trial(config, options);
    if (first) {
      total = r;
      first = false;
    } else {
      total.merge(r);
    }
  }
  return total;
}

double AvailabilityTrace::availability_fraction() const {
  if (available.empty()) return 0.0;
  std::uint64_t acc = 0;
  for (const auto a : available) acc += a;
  return static_cast<double>(acc) / static_cast<double>(available.size());
}

double AvailabilityTrace::recoverable_fraction() const {
  if (recoverable.empty()) return 0.0;
  std::uint64_t acc = 0;
  for (const auto a : recoverable) acc += a;
  return static_cast<double>(acc) / static_cast<double>(recoverable.size());
}

Round AvailabilityTrace::first_unrecoverable() const {
  for (std::size_t i = 0; i < recoverable.size(); ++i) {
    if (!recoverable[i]) return rounds[i];
  }
  return -1;
}

AvailabilityTrace run_availability_trial(const SystemConfig& config,
                                         double horizon_taus,
                                         std::uint32_t sample_every) {
  P2PSystem sys(config);
  Rng workload(mix64(config.sim.seed ^ 0x61766169ULL));
  AvailabilityTrace trace;

  sys.run_rounds(sys.warmup_rounds());
  const ItemId item = mix64(config.sim.seed ^ 0x4954454dULL) | 1;
  for (int attempt = 0; attempt < 32; ++attempt) {
    const auto creator = static_cast<Vertex>(workload.next_below(sys.n()));
    if (sys.store_item(creator, item)) break;
    sys.run_round();
  }
  // Give the first landmark wave time to complete before judging
  // availability.
  sys.run_rounds(2 * sys.tau());

  const auto horizon =
      static_cast<std::uint32_t>(horizon_taus * sys.tau());
  for (std::uint32_t r = 0; r < horizon; ++r) {
    sys.run_round();
    if (r % sample_every != 0) continue;
    trace.rounds.push_back(sys.round());
    trace.copies.push_back(sys.store().copies_alive(item));
    trace.landmarks.push_back(sys.store().landmarks_alive(item));
    trace.available.push_back(sys.store().is_available(item) ? 1 : 0);
    trace.recoverable.push_back(sys.store().is_recoverable(item) ? 1 : 0);
  }
  if (const auto* inf = sys.committees().info(item)) {
    trace.generations = inf->generations;
  }
  return trace;
}

}  // namespace churnstore
