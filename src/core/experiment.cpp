#include "core/experiment.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "baseline/chord_net/chord_net.h"
#include "core/kv_store.h"
#include "core/runner.h"
#include "core/stacks.h"
#include "storage/item.h"
#include "util/rng.h"

namespace churnstore {

void StoreSearchResult::merge(const StoreSearchResult& o) {
  searches += o.searches;
  located += o.located;
  fetched += o.fetched;
  censored += o.censored;
  locate_rounds.merge(o.locate_rounds);
  fetch_rounds.merge(o.fetch_rounds);
  locate_hist.merge(o.locate_hist);
  copies_alive.merge(o.copies_alive);
  landmarks_alive.merge(o.landmarks_alive);
  availability.merge(o.availability);
  bits_node_round_max.merge(o.bits_node_round_max);
  bits_node_round_mean.merge(o.bits_node_round_mean);
  trial_count += o.trial_count;
}

double StoreSearchResult::locate_rate() const {
  const std::uint64_t eligible = searches - censored;
  return eligible ? static_cast<double>(located) / static_cast<double>(eligible)
                  : 0.0;
}

double StoreSearchResult::fetch_rate() const {
  const std::uint64_t eligible = searches - censored;
  return eligible ? static_cast<double>(fetched) / static_cast<double>(eligible)
                  : 0.0;
}

SystemConfig default_system_config(std::uint32_t n, std::uint64_t seed) {
  SystemConfig c;
  c.sim.n = n;
  c.sim.seed = seed;
  c.sim.degree = 8;
  c.sim.churn.kind = AdversaryKind::kUniform;
  c.sim.churn.k = 1.5;
  // Paper-form churn c * n / ln^k n. The paper's c = 4 means >25% of the
  // network per round at simulatable n (ln n ~ 6-9), far outside the
  // asymptotic regime the analysis lives in; c = 0.5 (~2-4% per round) keeps
  // the same functional form at a survivable constant. The churn_limit
  // scenario sweeps c to find the breaking point.
  c.sim.churn.multiplier = 0.5;
  c.sim.edge_dynamics = EdgeDynamics::kRewire;
  return c;
}

namespace {

/// The canonical store -> age -> search workload over ANY protocol stack.
StoreSearchResult drive_store_search(P2PSystem& sys, StorageService& svc,
                                     const StoreSearchOptions& options,
                                     std::uint64_t seed) {
  Rng workload(mix64(seed ^ 0x776f726bULL));
  StoreSearchResult res;

  sys.run_rounds(sys.warmup_rounds());

  // Store the items from random creators (retrying while the stack is not
  // ready, e.g. walk-sample buffers still cold).
  std::vector<ItemId> items;
  for (std::uint32_t i = 0; i < options.items; ++i) {
    const ItemId item = mix64(seed * 1000 + i) | 1;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto creator = static_cast<Vertex>(workload.next_below(sys.n()));
      if (svc.try_store(creator, item)) {
        items.push_back(item);
        break;
      }
      sys.run_round();
    }
  }

  // Let the stack reach steady state and survive churn for a while before
  // anyone searches.
  sys.run_rounds(static_cast<std::uint32_t>(options.age_taus * sys.tau()) +
                 2 * sys.tau());

  double avail_fraction = 0.0;
  for (std::uint32_t b = 0; b < options.batches; ++b) {
    // Sample availability god-view at batch start.
    std::uint64_t avail = 0;
    for (const ItemId item : items) {
      res.copies_alive.add(static_cast<double>(svc.copies_alive(item)));
      res.landmarks_alive.add(static_cast<double>(svc.landmarks_alive(item)));
      avail += svc.is_available(item);
    }
    avail_fraction +=
        items.empty() ? 0.0
                      : static_cast<double>(avail) /
                            static_cast<double>(items.size()) /
                            static_cast<double>(options.batches);

    std::vector<std::uint64_t> sids;
    const Round batch_start = sys.round();
    for (std::uint32_t s = 0; s < options.searchers_per_batch; ++s) {
      if (items.empty()) break;
      const ItemId item = items[workload.next_below(items.size())];
      const auto initiator = static_cast<Vertex>(workload.next_below(sys.n()));
      sids.push_back(svc.begin_search(initiator, item));
    }
    sys.run_rounds(svc.search_timeout() + 4);

    for (const std::uint64_t sid : sids) {
      const WorkloadOutcome out = svc.search_outcome(sid);
      ++res.searches;
      if (out.censored && !out.located) {
        // Churned out before locating: censored trial (the guarantee is for
        // nodes that stay long enough to finish their search).
        ++res.censored;
        continue;
      }
      if (out.located) {
        ++res.located;
        const auto rounds = static_cast<double>(out.located_round - batch_start);
        res.locate_rounds.add(rounds);
        res.locate_hist.add(rounds);
      }
      if (out.fetched) {
        ++res.fetched;
        res.fetch_rounds.add(
            static_cast<double>(out.fetched_round - batch_start));
      }
    }
  }

  res.availability.add(avail_fraction);
  res.bits_node_round_max.add(sys.metrics().max_bits_per_node_round().mean());
  res.bits_node_round_mean.add(sys.metrics().mean_bits_per_node_round().mean());
  return res;
}

/// StorageService adapter over the KvStore facade (workload=kv): the
/// generic workload's item ids become string keys with real payload bytes,
/// so the ONE store -> age -> search driver above also exercises the kv
/// path. `located` and `fetched` coincide — kv reports hash-verified
/// fetches only — and kv gets have no censoring channel.
class KvWorkloadService final : public StorageService {
 public:
  explicit KvWorkloadService(P2PSystem& sys) : sys_(sys), kv_(sys) {}

  bool try_store(Vertex creator, ItemId item) override {
    return kv_.put(creator, key_for(item),
                   make_payload(item, sys_.config().protocol.item_bits));
  }
  [[nodiscard]] std::uint64_t begin_search(Vertex initiator,
                                           ItemId item) override {
    const std::uint64_t handle = kv_.get(initiator, key_for(item));
    start_round_[handle] = sys_.round();
    return handle;
  }
  [[nodiscard]] WorkloadOutcome search_outcome(
      std::uint64_t sid) const override {
    WorkloadOutcome out;
    const auto res = kv_.result(sid);
    if (!res) return out;
    out.done = res->complete;
    out.located = out.fetched = res->found;
    if (res->found) {
      const auto it = start_round_.find(sid);
      const Round start = it == start_round_.end() ? 0 : it->second;
      out.located_round = out.fetched_round = start + res->rounds_taken;
    }
    return out;
  }
  [[nodiscard]] std::uint32_t search_timeout() const override {
    return sys_.search_timeout();
  }
  [[nodiscard]] std::size_t copies_alive(ItemId item) const override {
    return sys_.store().copies_alive(KvStore::key_to_item(key_for(item)));
  }
  [[nodiscard]] std::size_t landmarks_alive(ItemId item) const override {
    return sys_.store().landmarks_alive(KvStore::key_to_item(key_for(item)));
  }
  [[nodiscard]] bool is_available(ItemId item) const override {
    return kv_.contains(key_for(item));
  }

 private:
  [[nodiscard]] static std::string key_for(ItemId item) {
    return "item/" + std::to_string(item);
  }

  P2PSystem& sys_;
  KvStore kv_;
  std::unordered_map<std::uint64_t, Round> start_round_;
};

/// workload=kv over the Chord stack: string keys hash to item ids, puts
/// carry real payload bytes, and gets route through iterative
/// find_successor lookups — `fetched` means the returned bytes
/// hash-verified against the stored value.
class ChordKvWorkloadService final : public StorageService {
 public:
  explicit ChordKvWorkloadService(ChordNetProtocol& chord,
                                  std::uint64_t item_bits)
      : chord_(chord), item_bits_(item_bits) {}

  bool try_store(Vertex creator, ItemId item) override {
    // Same "not ready" gate as ChordNetProtocol::try_store: an unjoined
    // creator cannot route the placement, and counting it as stored would
    // deflate workload=kv availability relative to store-search.
    if (!chord_.is_joined(creator)) return false;
    const ItemId id = key_to_item(item);
    return chord_.put(creator, id, make_payload(id, item_bits_));
  }
  [[nodiscard]] std::uint64_t begin_search(Vertex initiator,
                                           ItemId item) override {
    return chord_.get(initiator, key_to_item(item));
  }
  [[nodiscard]] WorkloadOutcome search_outcome(
      std::uint64_t sid) const override {
    return chord_.search_outcome(sid);
  }
  [[nodiscard]] std::uint32_t search_timeout() const override {
    return chord_.search_timeout();
  }
  [[nodiscard]] std::size_t copies_alive(ItemId item) const override {
    return chord_.copies_alive(key_to_item(item));
  }

 private:
  /// Content addressing like KvStore: key string -> item id.
  [[nodiscard]] static ItemId key_to_item(ItemId item) {
    return KvStore::key_to_item("item/" + std::to_string(item));
  }

  ChordNetProtocol& chord_;
  std::uint64_t item_bits_;
};

}  // namespace

StoreSearchResult run_store_search_trial(const ScenarioSpec& spec,
                                         ThreadPool* shard_pool) {
  if (spec.workload_kind == "kv") {
    if (spec.protocol == "chord") {
      // Verified fetches route through Chord find_successor lookups.
      BuiltSystem built =
          build_stack(spec.protocol, spec.system_config(), spec.extras);
      auto* chord = built.system->find_protocol<ChordNetProtocol>();
      if (chord == nullptr) {
        throw std::invalid_argument(
            "workload=kv with protocol=chord requires chord=net");
      }
      built.system->set_shard_pool(shard_pool);
      ChordKvWorkloadService svc(*chord,
                                 spec.system_config().protocol.item_bits);
      return drive_store_search(*built.system, svc, spec.workload, spec.seed);
    }
    // The kv facade drives Store/Search managers directly: paper stack only.
    if (spec.protocol != "churnstore") {
      throw std::invalid_argument(
          "workload=kv requires protocol=churnstore or protocol=chord");
    }
    P2PSystem sys(spec.system_config());
    sys.set_shard_pool(shard_pool);
    KvWorkloadService svc(sys);
    return drive_store_search(sys, svc, spec.workload, spec.seed);
  }
  if (spec.workload_kind != "store-search") {
    throw std::invalid_argument("unknown workload: " + spec.workload_kind);
  }
  BuiltSystem built =
      build_stack(spec.protocol, spec.system_config(), spec.extras);
  built.system->set_shard_pool(shard_pool);
  return drive_store_search(*built.system, *built.service, spec.workload,
                            spec.seed);
}

StoreSearchResult run_store_search_trial(const SystemConfig& config,
                                         const StoreSearchOptions& options,
                                         ThreadPool* shard_pool) {
  P2PSystem sys(config);
  sys.set_shard_pool(shard_pool);
  ChurnstoreService svc(sys);
  return drive_store_search(sys, svc, options, config.sim.seed);
}

StoreSearchResult run_store_search_trials(SystemConfig config,
                                          const StoreSearchOptions& options,
                                          std::uint32_t trials) {
  Runner runner;
  const std::uint64_t base_seed = config.sim.seed;
  const auto results = runner.map_trials<StoreSearchResult>(
      trials, [&config, &options, base_seed](std::uint32_t t) {
        SystemConfig trial_config = config;
        trial_config.sim.seed = Runner::trial_seed(base_seed, t);
        return run_store_search_trial(trial_config, options);
      });
  StoreSearchResult total;
  bool first = true;
  for (const StoreSearchResult& r : results) {
    if (first) {
      total = r;
      first = false;
    } else {
      total.merge(r);
    }
  }
  return total;
}

double AvailabilityTrace::availability_fraction() const {
  if (available.empty()) return 0.0;
  std::uint64_t acc = 0;
  for (const auto a : available) acc += a;
  return static_cast<double>(acc) / static_cast<double>(available.size());
}

double AvailabilityTrace::recoverable_fraction() const {
  if (recoverable.empty()) return 0.0;
  std::uint64_t acc = 0;
  for (const auto a : recoverable) acc += a;
  return static_cast<double>(acc) / static_cast<double>(recoverable.size());
}

Round AvailabilityTrace::first_unrecoverable() const {
  for (std::size_t i = 0; i < recoverable.size(); ++i) {
    if (!recoverable[i]) return rounds[i];
  }
  return -1;
}

AvailabilityTrace run_availability_trial(const SystemConfig& config,
                                         double horizon_taus,
                                         std::uint32_t sample_every) {
  P2PSystem sys(config);
  Rng workload(mix64(config.sim.seed ^ 0x61766169ULL));
  AvailabilityTrace trace;

  sys.run_rounds(sys.warmup_rounds());
  const ItemId item = mix64(config.sim.seed ^ 0x4954454dULL) | 1;
  for (int attempt = 0; attempt < 32; ++attempt) {
    const auto creator = static_cast<Vertex>(workload.next_below(sys.n()));
    if (sys.store_item(creator, item)) break;
    sys.run_round();
  }
  // Give the first landmark wave time to complete before judging
  // availability.
  sys.run_rounds(2 * sys.tau());

  const auto horizon =
      static_cast<std::uint32_t>(horizon_taus * sys.tau());
  for (std::uint32_t r = 0; r < horizon; ++r) {
    sys.run_round();
    if (r % sample_every != 0) continue;
    trace.rounds.push_back(sys.round());
    trace.copies.push_back(sys.store().copies_alive(item));
    trace.landmarks.push_back(sys.store().landmarks_alive(item));
    trace.available.push_back(sys.store().is_available(item) ? 1 : 0);
    trace.recoverable.push_back(sys.store().is_recoverable(item) ? 1 : 0);
  }
  if (const auto* inf = sys.committees().info(item)) {
    trace.generations = inf->generations;
  }
  return trace;
}

}  // namespace churnstore
