#include "core/size_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace churnstore {

SizeEstimator::SizeEstimator(std::uint32_t k) : k_(std::max(1u, k)) {}

SizeEstimator::SizeEstimator(Network& net_ref, std::uint32_t k)
    : SizeEstimator(k) {
  on_attach(net_ref);
}

void SizeEstimator::on_attach(Network& net_ref) {
  Protocol::on_attach(net_ref);
  rng_ = net().protocol_rng().fork(0x73697a65ULL);
  mins_.assign(static_cast<std::size_t>(net().n()) * k_, 0.0);
  last_.assign(mins_.size(), 0.0);
  scratch_.assign(mins_.size(), 0.0);
  scratch2_.assign(mins_.size(), 0.0);
  for (Vertex v = 0; v < net().n(); ++v) fresh_draws(v);
  std::copy(mins_.begin(), mins_.end(), last_.begin());
}

void SizeEstimator::fresh_draws(Vertex v) {
  double* row = mins_.data() + static_cast<std::size_t>(v) * k_;
  for (std::uint32_t i = 0; i < k_; ++i) row[i] = rng_.exponential(1.0);
}

void SizeEstimator::on_churn(Vertex v, PeerId, PeerId) {
  // The replacement peer contributes fresh draws to the RUNNING epoch only.
  // Its completed-epoch view starts empty (infinity) and is filled by the
  // neighbor flood within ~1 round — injecting its own draws there would
  // pollute the already-finalized aggregate and ratchet the estimate up.
  fresh_draws(v);
  const std::size_t off = static_cast<std::size_t>(v) * k_;
  std::fill(last_.begin() + static_cast<std::ptrdiff_t>(off),
            last_.begin() + static_cast<std::ptrdiff_t>(off + k_),
            std::numeric_limits<double>::infinity());
}

void SizeEstimator::gather_min(const std::vector<double>& field,
                               std::vector<double>& out, Vertex from,
                               Vertex to) {
  const RegularGraph& g = net().graph();
  const std::uint32_t d = g.degree();
  for (Vertex v = from; v < to; ++v) {
    double* dst = out.data() + static_cast<std::size_t>(v) * k_;
    const double* own = field.data() + static_cast<std::size_t>(v) * k_;
    std::copy(own, own + k_, dst);
    for (std::uint32_t e = 0; e < d; ++e) {
      const double* src =
          field.data() + static_cast<std::size_t>(g.neighbor(v, e)) * k_;
      for (std::uint32_t i = 0; i < k_; ++i) {
        dst[i] = std::min(dst[i], src[i]);
      }
    }
  }
}

void SizeEstimator::on_round_begin() {
  // Epoch restart: without it, every churned-in peer adds fresh draws and
  // the all-time minimum ratchets downward, inflating the estimate without
  // bound. Each epoch aggregates only the draws of peers present during
  // that epoch; reads are served from the last completed epoch. Serial: the
  // draws come from the protocol's sequential stream.
  const auto epoch_len = static_cast<Round>(epoch_rounds());
  if (net().round() % epoch_len == 0) {
    last_.swap(mins_);
    for (Vertex v = 0; v < net().n(); ++v) fresh_draws(v);
    ++epochs_completed_;
  }
}

void SizeEstimator::on_round_begin(std::uint32_t shard, ShardContext& ctx) {
  // Both fields keep flooding: the running epoch converges, the completed
  // epoch's result reaches freshly churned-in peers. Each shard writes its
  // own vertices' scratch rows, reading the whole previous-round fields.
  (void)shard;
  gather_min(mins_, scratch_, ctx.begin(), ctx.end());
  gather_min(last_, scratch2_, ctx.begin(), ctx.end());
}

void SizeEstimator::on_round_merge() {
  mins_.swap(scratch_);
  last_.swap(scratch2_);
  // Each node sends both k-vectors to each neighbor once per round.
  const std::uint64_t bits =
      static_cast<std::uint64_t>(net().graph().degree()) * 2 * k_ * 64;
  for (Vertex v = 0; v < net().n(); ++v) net().charge_processing(v, bits);
}

void SizeEstimator::step() {
  on_round_begin();
  net().run_sharded([this](std::uint32_t s) {
    ShardContext ctx(net(), s);
    on_round_begin(s, ctx);
  });
  on_round_merge();
}

double SizeEstimator::estimate(Vertex v) const {
  const std::vector<double>& field = epochs_completed_ > 0 ? last_ : mins_;
  const double* row = field.data() + static_cast<std::size_t>(v) * k_;
  double sum = 0.0;
  for (std::uint32_t i = 0; i < k_; ++i) sum += row[i];
  if (sum <= 0.0) return 0.0;
  // MLE of n from k Exp(n) minima is k/sum; (k-1)/sum is unbiased.
  const double numer = k_ > 1 ? static_cast<double>(k_ - 1)
                              : static_cast<double>(k_);
  return numer / sum;
}

double SizeEstimator::median_estimate() const {
  std::vector<double> est(net().n());
  for (Vertex v = 0; v < net().n(); ++v) est[v] = estimate(v);
  std::nth_element(est.begin(), est.begin() + est.size() / 2, est.end());
  return est[est.size() / 2];
}

std::uint32_t SizeEstimator::epoch_rounds() const {
  // Just over the expander diameter (O(log n)) so each epoch's minima reach
  // everyone; short epochs also bound the churn-draw inflation to
  // ~(1 + churn * epoch / n).
  return static_cast<std::uint32_t>(
             std::ceil(std::log2(std::max(2u, net().n())))) +
         6;
}

std::uint32_t SizeEstimator::convergence_rounds() const {
  return 2 * epoch_rounds() + 2;
}

}  // namespace churnstore
