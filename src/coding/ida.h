// Rabin's Information Dispersal Algorithm (IDA) — paper section 4.4.
//
// A data item of |I| bytes is split into L pieces, each of ceil(|I|/K)
// bytes, such that ANY K pieces reconstruct the original. Total stored bytes
// are L/K * |I| (the "blowup ratio"), so replication's Θ(log n)·|I| cost
// shrinks to a constant-factor overhead when L/K is a constant.
//
// Encoding uses a Cauchy matrix (every K×K submatrix invertible); decoding
// inverts the submatrix selected by the surviving piece indices.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace churnstore {

struct IdaPiece {
  std::uint32_t index = 0;            ///< row of the dispersal matrix
  std::vector<std::uint8_t> bytes;    ///< ceil(|I|/K) encoded bytes
};

class IdaCodec {
 public:
  /// k = pieces needed, l = pieces produced; requires 0 < k <= l <= 255.
  IdaCodec(std::uint32_t k, std::uint32_t l);

  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
  [[nodiscard]] std::uint32_t l() const noexcept { return l_; }
  /// Storage blowup L/K.
  [[nodiscard]] double blowup() const noexcept {
    return static_cast<double>(l_) / static_cast<double>(k_);
  }

  [[nodiscard]] std::vector<IdaPiece> encode(
      const std::vector<std::uint8_t>& data) const;

  /// Reconstructs the original from any >= k distinct pieces. Returns
  /// nullopt if fewer than k distinct valid pieces are supplied or if piece
  /// lengths disagree. `original_size` trims the zero padding.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> decode(
      const std::vector<IdaPiece>& pieces, std::size_t original_size) const;

 private:
  std::uint32_t k_;
  std::uint32_t l_;
};

}  // namespace churnstore
