// Arithmetic over GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1 (0x11b),
// implemented with log/antilog tables. This is the field underlying the
// Rabin Information Dispersal Algorithm (IDA) of paper section 4.4.
#pragma once

#include <cstdint>
#include <vector>

namespace churnstore::gf256 {

/// Builds the tables on first use (thread-safe, C++11 static init).
void ensure_tables() noexcept;

[[nodiscard]] std::uint8_t add(std::uint8_t a, std::uint8_t b) noexcept;
[[nodiscard]] std::uint8_t sub(std::uint8_t a, std::uint8_t b) noexcept;
[[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept;
[[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b);  // throws on b==0
[[nodiscard]] std::uint8_t inv(std::uint8_t a);                  // throws on a==0
[[nodiscard]] std::uint8_t pow(std::uint8_t a, unsigned e) noexcept;

/// dst[i] ^= c * src[i] for i in [0, len) — the inner loop of encode/decode.
void mul_acc(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
             std::size_t len) noexcept;

/// Dense matrix over GF(256), row-major.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::uint8_t& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::uint8_t at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const std::uint8_t* row(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }
  [[nodiscard]] std::uint8_t* row(std::size_t r) noexcept {
    return data_.data() + r * cols_;
  }

  /// Gauss-Jordan inverse. Returns false if singular.
  [[nodiscard]] bool invert(Matrix& out) const;

  [[nodiscard]] Matrix multiply(const Matrix& rhs) const;

  /// Cauchy matrix rows x cols: a_ij = 1/(x_i + y_j) with x_i = i + cols,
  /// y_j = j. Every square submatrix is invertible, which is exactly the
  /// property IDA needs (any K of the L pieces reconstruct).
  static Matrix cauchy(std::size_t rows, std::size_t cols);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::uint8_t> data_;
};

}  // namespace churnstore::gf256
