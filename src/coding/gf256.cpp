#include "coding/gf256.h"

#include <array>
#include <stdexcept>

namespace churnstore::gf256 {

namespace {

struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};

  Tables() noexcept {
    // Generator 3 is primitive for 0x11b.
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      log[static_cast<std::uint8_t>(x)] = static_cast<std::uint8_t>(i);
      // multiply x by 3 = x * 2 + x in GF(2^8)
      std::uint16_t x2 = static_cast<std::uint16_t>(x << 1);
      if (x2 & 0x100) x2 ^= 0x11b;
      x = static_cast<std::uint16_t>(x2 ^ x);
    }
    for (int i = 255; i < 512; ++i)
      exp[static_cast<std::size_t>(i)] =
          exp[static_cast<std::size_t>(i - 255)];
  }
};

const Tables& tables() noexcept {
  static const Tables t;
  return t;
}

}  // namespace

void ensure_tables() noexcept { (void)tables(); }

std::uint8_t add(std::uint8_t a, std::uint8_t b) noexcept {
  return static_cast<std::uint8_t>(a ^ b);
}

std::uint8_t sub(std::uint8_t a, std::uint8_t b) noexcept {
  return static_cast<std::uint8_t>(a ^ b);
}

std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  if (a == 0) throw std::domain_error("gf256::inv(0)");
  const auto& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  if (b == 0) throw std::domain_error("gf256::div by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  const int d = static_cast<int>(t.log[a]) - static_cast<int>(t.log[b]);
  return t.exp[static_cast<std::size_t>(d < 0 ? d + 255 : d)];
}

std::uint8_t pow(std::uint8_t a, unsigned e) noexcept {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const auto l = (static_cast<unsigned>(t.log[a]) * e) % 255u;
  return t.exp[l];
}

void mul_acc(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
             std::size_t len) noexcept {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < len; ++i) dst[i] ^= src[i];
    return;
  }
  const auto& t = tables();
  const std::uint8_t lc = t.log[c];
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint8_t s = src[i];
    if (s) dst[i] ^= t.exp[static_cast<std::size_t>(t.log[s]) + lc];
  }
}

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

bool Matrix::invert(Matrix& out) const {
  if (rows_ != cols_) return false;
  const std::size_t n = rows_;
  Matrix work(*this);
  out = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot search.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work.at(pivot, c), work.at(col, c));
        std::swap(out.at(pivot, c), out.at(col, c));
      }
    }
    const std::uint8_t piv_inv = inv(work.at(col, col));
    for (std::size_t c = 0; c < n; ++c) {
      work.at(col, c) = mul(work.at(col, c), piv_inv);
      out.at(col, c) = mul(out.at(col, c), piv_inv);
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t f = work.at(r, col);
      if (f == 0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        work.at(r, c) = sub(work.at(r, c), mul(f, work.at(col, c)));
        out.at(r, c) = sub(out.at(r, c), mul(f, out.at(col, c)));
      }
    }
  }
  return true;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("gf256 matmul shape");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::uint8_t a = at(r, k);
      if (a == 0) continue;
      mul_acc(out.row(r), rhs.row(k), a, rhs.cols_);
    }
  }
  return out;
}

Matrix Matrix::cauchy(std::size_t rows, std::size_t cols) {
  if (rows + cols > 256)
    throw std::invalid_argument("gf256 Cauchy: rows + cols must be <= 256");
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto x = static_cast<std::uint8_t>(r + cols);
    for (std::size_t c = 0; c < cols; ++c) {
      const auto y = static_cast<std::uint8_t>(c);
      m.at(r, c) = inv(add(x, y));
    }
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

}  // namespace churnstore::gf256
