#include "coding/ida.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "coding/gf256.h"

namespace churnstore {

IdaCodec::IdaCodec(std::uint32_t k, std::uint32_t l) : k_(k), l_(l) {
  if (k == 0 || l < k || l > 255 || k + l > 256)
    throw std::invalid_argument("IdaCodec: need 0 < k <= l and k+l <= 256");
  gf256::ensure_tables();
}

std::vector<IdaPiece> IdaCodec::encode(
    const std::vector<std::uint8_t>& data) const {
  const std::size_t piece_len = (data.size() + k_ - 1) / k_;
  // Lay the (zero-padded) data out as a K x piece_len matrix; each encoded
  // piece i is the inner product of Cauchy row i with the data columns.
  const auto cauchy = gf256::Matrix::cauchy(l_, k_);
  std::vector<IdaPiece> pieces(l_);
  for (std::uint32_t i = 0; i < l_; ++i) {
    pieces[i].index = i;
    pieces[i].bytes.assign(piece_len, 0);
  }
  if (piece_len == 0) return pieces;
  std::vector<std::uint8_t> strip(piece_len, 0);
  for (std::uint32_t row = 0; row < k_; ++row) {
    const std::size_t off = static_cast<std::size_t>(row) * piece_len;
    std::fill(strip.begin(), strip.end(), 0);
    const std::size_t avail =
        off < data.size() ? std::min(piece_len, data.size() - off) : 0;
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(off), avail,
                strip.begin());
    for (std::uint32_t i = 0; i < l_; ++i) {
      gf256::mul_acc(pieces[i].bytes.data(), strip.data(),
                     cauchy.at(i, row), piece_len);
    }
  }
  return pieces;
}

std::optional<std::vector<std::uint8_t>> IdaCodec::decode(
    const std::vector<IdaPiece>& pieces, std::size_t original_size) const {
  // Select k distinct, consistent pieces.
  std::vector<const IdaPiece*> chosen;
  std::unordered_set<std::uint32_t> seen;
  std::size_t piece_len = 0;
  for (const auto& p : pieces) {
    if (p.index >= l_) continue;
    if (!seen.insert(p.index).second) continue;
    if (chosen.empty()) {
      piece_len = p.bytes.size();
    } else if (p.bytes.size() != piece_len) {
      return std::nullopt;
    }
    chosen.push_back(&p);
    if (chosen.size() == k_) break;
  }
  if (chosen.size() < k_) return std::nullopt;
  const std::size_t expect_len = (original_size + k_ - 1) / k_;
  if (piece_len < expect_len) return std::nullopt;

  // Build the K x K submatrix of the Cauchy matrix and invert it.
  const auto cauchy = gf256::Matrix::cauchy(l_, k_);
  gf256::Matrix sub(k_, k_);
  for (std::uint32_t r = 0; r < k_; ++r)
    for (std::uint32_t c = 0; c < k_; ++c)
      sub.at(r, c) = cauchy.at(chosen[r]->index, c);
  gf256::Matrix sub_inv(k_, k_);
  if (!sub.invert(sub_inv)) return std::nullopt;  // cannot happen for Cauchy

  std::vector<std::uint8_t> out(static_cast<std::size_t>(k_) * piece_len, 0);
  for (std::uint32_t row = 0; row < k_; ++row) {
    std::uint8_t* dst = out.data() + static_cast<std::size_t>(row) * piece_len;
    for (std::uint32_t c = 0; c < k_; ++c) {
      gf256::mul_acc(dst, chosen[c]->bytes.data(), sub_inv.at(row, c),
                     piece_len);
    }
  }
  out.resize(original_size);
  return out;
}

}  // namespace churnstore
