// shardcheck's C++ tokenizer.
//
// A real lexer, not a line-regex pass: comments, string literals (with
// escapes), char literals, raw strings (R"delim(...)delim" with any
// delimiter), digit separators, and preprocessor directives (including
// backslash continuations and block comments inside them) are all consumed
// so that rule patterns can never fire on text inside them. Comments are
// kept on a side list because the suppression / annotation syntax lives in
// them.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace shardcheck {

enum class Tok {
  Ident,    ///< identifiers and keywords (keywords are not distinguished)
  Number,   ///< integer / floating literals, including 0x1'000 separators
  String,   ///< "..." and R"delim(...)delim" (prefixes u8/u/U/L folded in)
  CharLit,  ///< '...'
  Punct,    ///< one punctuation char, except "::" and "->" which are fused
};

struct Token {
  Tok kind;
  std::string_view text;  ///< view into the lexed source buffer
  int line;               ///< 1-based line of the token's first character
};

struct Comment {
  std::string text;  ///< comment body, delimiters stripped
  int line;          ///< 1-based line the comment starts on
  bool own_line;     ///< only whitespace precedes it on its line
};

struct LexOutput {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenize `src`. The returned token text views point into `src`; the
/// caller keeps the buffer alive for as long as the tokens are used.
[[nodiscard]] LexOutput lex(std::string_view src);

}  // namespace shardcheck
