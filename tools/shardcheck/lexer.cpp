#include "shardcheck/lexer.h"

#include <cctype>

namespace shardcheck {

namespace {

[[nodiscard]] bool ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
[[nodiscard]] bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexOutput run() {
    while (pos_ < src_.size()) step();
    return std::move(out_);
  }

 private:
  [[nodiscard]] char cur() const noexcept { return src_[pos_]; }
  [[nodiscard]] char peek(std::size_t k = 1) const noexcept {
    return pos_ + k < src_.size() ? src_[pos_ + k] : '\0';
  }
  void advance() noexcept {
    if (src_[pos_] == '\n') {
      ++line_;
      line_has_code_ = false;
    }
    ++pos_;
  }

  void emit(Tok kind, std::size_t begin, int line) {
    out_.tokens.push_back(Token{kind, src_.substr(begin, pos_ - begin), line});
    line_has_code_ = true;
  }

  void step() {
    const char c = cur();
    if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
        c == '\f') {
      advance();
      return;
    }
    if (c == '/' && peek() == '/') {
      line_comment();
      return;
    }
    if (c == '/' && peek() == '*') {
      block_comment();
      return;
    }
    if (c == '#' && !line_has_code_) {
      preprocessor_line();
      return;
    }
    if (c == '"') {
      string_literal();
      return;
    }
    if (c == '\'') {
      char_literal();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek())))) {
      number();
      return;
    }
    if (ident_start(c)) {
      identifier_or_prefixed_literal();
      return;
    }
    punct();
  }

  void line_comment() {
    const int line = line_;
    const bool own = !line_has_code_;
    const std::size_t begin = pos_ + 2;
    while (pos_ < src_.size() && cur() != '\n') advance();
    out_.comments.push_back(
        Comment{std::string(src_.substr(begin, pos_ - begin)), line, own});
  }

  void block_comment() {
    const int line = line_;
    const bool own = !line_has_code_;
    advance();  // '/'
    advance();  // '*'
    const std::size_t begin = pos_;
    std::size_t end = src_.size();
    while (pos_ < src_.size()) {
      if (cur() == '*' && peek() == '/') {
        end = pos_;
        advance();
        advance();
        break;
      }
      advance();
    }
    out_.comments.push_back(
        Comment{std::string(src_.substr(begin, end - begin)), line, own});
    // A block comment does not by itself make the line "have code": a
    // trailing declaration after /* ... */ on the same line still counts as
    // starting the line for #-directive purposes, which is fine — we only
    // use line_has_code_ for '#' and comment own_line classification, and
    // code after an inline block comment is what matters for both.
  }

  /// Consume a whole preprocessor directive: to end of line, honoring
  /// backslash-newline continuations, and skipping comments and string
  /// literals found inside (a block comment may span lines).
  void preprocessor_line() {
    line_has_code_ = true;  // '#' occupies the line; comments after it trail
    while (pos_ < src_.size()) {
      const char c = cur();
      if (c == '\n') {
        advance();
        return;
      }
      if (c == '\\' && peek() == '\n') {
        advance();
        advance();
        continue;
      }
      if (c == '/' && peek() == '/') {
        line_comment();
        return;  // line comment swallows the rest of the directive line
      }
      if (c == '/' && peek() == '*') {
        block_comment();
        continue;
      }
      if (c == '"') {
        string_literal();
        out_.tokens.pop_back();  // literal belongs to the directive
        continue;
      }
      if (c == '\'') {
        // '\'' inside a directive: consume as a char literal when it scans
        // as one; otherwise treat as plain punctuation (e.g. #if 'a' == ...).
        char_literal();
        out_.tokens.pop_back();
        continue;
      }
      advance();
    }
  }

  void string_literal() {
    const int line = line_;
    const std::size_t begin = pos_;
    advance();  // opening quote
    while (pos_ < src_.size()) {
      const char c = cur();
      if (c == '\\' && pos_ + 1 < src_.size()) {
        advance();
        advance();
        continue;
      }
      advance();
      if (c == '"') break;
    }
    emit(Tok::String, begin, line);
  }

  void raw_string_literal() {
    const int line = line_;
    const std::size_t begin = pos_;
    advance();  // 'R'
    advance();  // '"'
    std::string delim;
    while (pos_ < src_.size() && cur() != '(') {
      delim.push_back(cur());
      advance();
    }
    if (pos_ < src_.size()) advance();  // '('
    const std::string closer = ")" + delim + "\"";
    while (pos_ < src_.size()) {
      if (cur() == ')' && src_.compare(pos_, closer.size(), closer) == 0) {
        for (std::size_t i = 0; i < closer.size(); ++i) advance();
        break;
      }
      advance();
    }
    emit(Tok::String, begin, line);
  }

  void char_literal() {
    const int line = line_;
    const std::size_t begin = pos_;
    advance();  // opening quote
    while (pos_ < src_.size()) {
      const char c = cur();
      if (c == '\\' && pos_ + 1 < src_.size()) {
        advance();
        advance();
        continue;
      }
      if (c == '\n') break;  // unterminated; don't eat the file
      advance();
      if (c == '\'') break;
    }
    emit(Tok::CharLit, begin, line);
  }

  void number() {
    const int line = line_;
    const std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      const char c = cur();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '\'') {
        advance();
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          advance();
          continue;
        }
      }
      break;
    }
    emit(Tok::Number, begin, line);
  }

  void identifier_or_prefixed_literal() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < src_.size() && ident_char(cur())) advance();
    const std::string_view id = src_.substr(begin, pos_ - begin);
    if (pos_ < src_.size() && cur() == '"' &&
        (id == "R" || id == "uR" || id == "UR" || id == "LR" || id == "u8R")) {
      pos_ = begin;  // rewind; raw_string_literal consumes prefix + body
      raw_string_literal();
      return;
    }
    if (pos_ < src_.size() && (cur() == '"' || cur() == '\'') &&
        (id == "u8" || id == "u" || id == "U" || id == "L")) {
      if (cur() == '"') {
        string_literal();
      } else {
        char_literal();
      }
      return;
    }
    emit(Tok::Ident, begin, line);
  }

  void punct() {
    const int line = line_;
    const std::size_t begin = pos_;
    const char c = cur();
    advance();
    // Fuse the two operators the rule patterns care about; every other
    // punctuation char stands alone (so >> closes two template levels).
    if ((c == ':' && pos_ < src_.size() && cur() == ':') ||
        (c == '-' && pos_ < src_.size() && cur() == '>')) {
      advance();
    }
    emit(Tok::Punct, begin, line);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool line_has_code_ = false;
  LexOutput out_;
};

}  // namespace

LexOutput lex(std::string_view src) { return Lexer(src).run(); }

}  // namespace shardcheck
