// shardcheck — the repo's determinism and arena-discipline linter.
//
// Statically enforces the ShardContext contract documented in
// src/core/protocol.h. Rules (see README "Static analysis" for the catalog
// with rationale):
//
//   R1  no shared sequential Rng use (rng_ members, protocol_rng(), Rng&
//       bindings/params) inside sharded hook bodies — per-(round,vertex)
//       stream_rng only.
//   R2  no iteration over std::unordered_map / std::unordered_set state
//       inside sharded hooks or on_*_merge() bodies.
//   R3  no direct net().send / net_.send and no un-deferred metrics charges
//       inside sharded hooks — sends/charges route through ctx.send /
//       ctx.charge.
//   R4  global ban (src/ outside util/) on wall-clock and ambient
//       randomness — rand(), std::random_device, time(), *_clock::now —
//       and on mutable static / thread_local state.
//   R5  pointer-keyed ordering: std::map/std::set keyed on raw pointers,
//       std::sort over containers of raw pointers.
//   R6  heap discipline in hot regions (sharded hooks plus functions marked
//       `// shardcheck:hot-path(reason)`; src/ only): no operator new /
//       make_unique / make_shared, no std::function construction, no local
//       std container declarations or temporaries without ArenaAllocator,
//       and no growth calls (push_back / emplace_back / resize / insert /
//       reserve / append / assign, map operator[]-insert, += on strings) on
//       container members not marked `// shardcheck:arena-backed(reason)`.
//       The runtime counterpart is util/heap_sentinel.h: R6 proves the
//       steady state heap-quiet lexically, HeapQuiesceScope proves it
//       empirically — a violation should trip both.
//   R7  arena boundary declared at the declaration site (src/ only): every
//       std container member of a Protocol-derived class either takes
//       ArenaAllocator or carries a `// shardcheck:arena-backed(reason)`
//       (the member is legitimately mutated from hot regions and is exempt
//       from R6 growth checks; the reason declares why that is safe —
//       shard-arena storage, pre-sized capacity, or bounded control-plane
//       growth) or `// shardcheck:cold-state(reason)`
//       (storage allocated/resized only in cold serial context — attach,
//       churn, epilogues; hot code may read/write elements in place, and
//       growth from hot regions is still R6) annotation, so the memory
//       contract is visible in review instead of re-derived from maxrss
//       regressions.
//
// "Sharded hook" means: on_round_begin(shard, ctx); on_message(v, m, ctx)
// of a class whose sharded_dispatch() returns true; and any function marked
// with a `// shardcheck:sharded-hook(reason)` annotation on the line above
// its definition (helpers reachable only from sharded hooks). Merge bodies
// are on_round_merge() / on_dispatch_merge(). A "hot region" for R6 is any
// sharded hook plus any `// shardcheck:hot-path(reason)`-annotated
// function (serial code on the per-round path, e.g. merge helpers).
//
// Suppression: `// shardcheck:ok(Rn: reason)` — the reason is mandatory.
// A trailing comment suppresses its own line; a comment alone on a line
// suppresses the next code line. A suppression that does not match any
// diagnostic is itself an error (unused-suppression), so stale suppressions
// cannot linger; a suppression without a reason is an error
// (bad-suppression). The arena-backed / cold-state / hot-path annotations
// use the same attachment grammar and the same staleness property: an
// annotation that attaches to nothing is an error, and deleting a used one
// flips the exit code.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "shardcheck/lexer.h"

namespace shardcheck {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;     ///< "R1".."R7", "bad-suppression", "unused-suppression"
  std::string message;

  [[nodiscard]] std::string format() const {
    return file + ":" + std::to_string(line) + ": [shardcheck-" + rule + "] " +
           message;
  }
  /// GitHub Actions workflow-annotation form: rendered inline on the PR
  /// diff when printed from a CI step (shardcheck --format=github).
  [[nodiscard]] std::string format_github() const {
    return "::error file=" + file + ",line=" + std::to_string(line) +
           "::[shardcheck-" + rule + "] " + message;
  }
};

/// Cross-file facts gathered in pass 1 over every scanned file. Member
/// containers are declared in headers while hook bodies live in .cpp files,
/// so the name sets must be global to the run.
struct Symbols {
  /// Names declared as std::unordered_map/_set (iterating them is R2).
  std::set<std::string, std::less<>> unordered_direct;
  /// Names declared as ordered containers OF unordered containers, e.g.
  /// std::vector<std::unordered_set<T>> held_ (iterating held_[v] is R2).
  std::set<std::string, std::less<>> unordered_elem;
  /// Names declared as contiguous containers of raw pointers
  /// (std::sort over them is R5).
  std::set<std::string, std::less<>> pointer_containers;
  /// Classes whose sharded_dispatch() override returns true (their 3-arg
  /// on_message is a sharded hook).
  std::set<std::string, std::less<>> sharded_dispatch_classes;
  /// std container members (any class) declared WITHOUT ArenaAllocator and
  /// WITHOUT an arena-backed annotation — growth calls on these inside hot
  /// regions are R6. Declared in headers, grown in .cpp hook bodies, hence
  /// cross-file.
  std::set<std::string, std::less<>> growth_members;
  /// Subset of the above that is map-like (std::map / std::unordered_map):
  /// operator[] on them inserts, so a bare subscript in a hot region is R6.
  std::set<std::string, std::less<>> map_members;
  /// Subset declared std::string (operator+= / append allocate).
  std::set<std::string, std::less<>> string_members;
  /// class -> direct base classes; R7 resolves "Protocol-derived"
  /// transitively from this at analyze time.
  std::map<std::string, std::set<std::string, std::less<>>, std::less<>> bases;
};

/// Scan one lexed file into `sym` (pass 1).
void collect_symbols(const LexOutput& lx, Symbols& sym);

/// Analysis options. Default-constructed = every rule enabled.
struct Options {
  /// Rules to report, e.g. {"R1","R6"}; empty = all. Structural meta
  /// diagnostics (bad-suppression, unused-suppression) are always on,
  /// except that suppressions for disabled rules are exempt from the
  /// unused-suppression check (their diagnostics were filtered away).
  std::set<std::string, std::less<>> rules;

  [[nodiscard]] bool enabled(std::string_view rule) const {
    return rules.empty() || rules.count(rule) > 0;
  }
};

/// Analyze one lexed file (pass 2). `path` is the repo-relative path with
/// forward slashes; it selects the R4 scope (src/ outside src/util/) and
/// the R6/R7 scope (src/). Returned diagnostics are post-suppression and
/// include bad-suppression / unused-suppression meta findings;
/// `suppressed_count`, when non-null, receives the number of diagnostics
/// silenced by valid suppressions.
[[nodiscard]] std::vector<Diagnostic> analyze(const std::string& path,
                                              const LexOutput& lx,
                                              const Symbols& sym,
                                              int* suppressed_count = nullptr,
                                              const Options& options = {});

/// Convenience for tests and single-file use: lex + collect + analyze one
/// buffer as both pass-1 input and pass-2 subject.
[[nodiscard]] std::vector<Diagnostic> check_source(
    const std::string& path, std::string_view text,
    int* suppressed_count = nullptr, const Options& options = {});

}  // namespace shardcheck
