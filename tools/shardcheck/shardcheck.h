// shardcheck — the repo's determinism linter.
//
// Statically enforces the ShardContext contract documented in
// src/core/protocol.h. Rules (see README "Static analysis" for the catalog
// with rationale):
//
//   R1  no shared sequential Rng use (rng_ members, protocol_rng(), Rng&
//       bindings/params) inside sharded hook bodies — per-(round,vertex)
//       stream_rng only.
//   R2  no iteration over std::unordered_map / std::unordered_set state
//       inside sharded hooks or on_*_merge() bodies.
//   R3  no direct net().send / net_.send and no un-deferred metrics charges
//       inside sharded hooks — sends/charges route through ctx.send /
//       ctx.charge.
//   R4  global ban (src/ outside util/) on wall-clock and ambient
//       randomness — rand(), std::random_device, time(), *_clock::now —
//       and on mutable static / thread_local state.
//   R5  pointer-keyed ordering: std::map/std::set keyed on raw pointers,
//       std::sort over containers of raw pointers.
//
// "Sharded hook" means: on_round_begin(shard, ctx); on_message(v, m, ctx)
// of a class whose sharded_dispatch() returns true; and any function marked
// with a `// shardcheck:sharded-hook(reason)` annotation on the line above
// its definition (helpers reachable only from sharded hooks). Merge bodies
// are on_round_merge() / on_dispatch_merge().
//
// Suppression: `// shardcheck:ok(Rn: reason)` — the reason is mandatory.
// A trailing comment suppresses its own line; a comment alone on a line
// suppresses the next code line. A suppression that does not match any
// diagnostic is itself an error (unused-suppression), so stale suppressions
// cannot linger; a suppression without a reason is an error
// (bad-suppression).
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "shardcheck/lexer.h"

namespace shardcheck {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;     ///< "R1".."R5", "bad-suppression", "unused-suppression"
  std::string message;

  [[nodiscard]] std::string format() const {
    return file + ":" + std::to_string(line) + ": [shardcheck-" + rule + "] " +
           message;
  }
};

/// Cross-file facts gathered in pass 1 over every scanned file. Member
/// containers are declared in headers while hook bodies live in .cpp files,
/// so the name sets must be global to the run.
struct Symbols {
  /// Names declared as std::unordered_map/_set (iterating them is R2).
  std::set<std::string, std::less<>> unordered_direct;
  /// Names declared as ordered containers OF unordered containers, e.g.
  /// std::vector<std::unordered_set<T>> held_ (iterating held_[v] is R2).
  std::set<std::string, std::less<>> unordered_elem;
  /// Names declared as contiguous containers of raw pointers
  /// (std::sort over them is R5).
  std::set<std::string, std::less<>> pointer_containers;
  /// Classes whose sharded_dispatch() override returns true (their 3-arg
  /// on_message is a sharded hook).
  std::set<std::string, std::less<>> sharded_dispatch_classes;
};

/// Scan one lexed file into `sym` (pass 1).
void collect_symbols(const LexOutput& lx, Symbols& sym);

/// Analyze one lexed file (pass 2). `path` is the repo-relative path with
/// forward slashes; it selects the R4 scope (src/ outside src/util/).
/// Returned diagnostics are post-suppression and include bad-suppression /
/// unused-suppression meta findings; `suppressed_count`, when non-null,
/// receives the number of diagnostics silenced by valid suppressions.
[[nodiscard]] std::vector<Diagnostic> analyze(const std::string& path,
                                              const LexOutput& lx,
                                              const Symbols& sym,
                                              int* suppressed_count = nullptr);

/// Convenience for tests and single-file use: lex + collect + analyze one
/// buffer as both pass-1 input and pass-2 subject.
[[nodiscard]] std::vector<Diagnostic> check_source(
    const std::string& path, std::string_view text,
    int* suppressed_count = nullptr);

}  // namespace shardcheck
