#include "shardcheck/shardcheck.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstddef>
#include <optional>

namespace shardcheck {

namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] bool is(const Token& t, std::string_view text) noexcept {
  return t.text == text;
}
[[nodiscard]] bool is_ident(const Token& t, std::string_view text) noexcept {
  return t.kind == Tok::Ident && t.text == text;
}

[[nodiscard]] bool starts_with(std::string_view s, std::string_view p) {
  return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
}

/// Index of the token matching the opener at `open` (which must be one of
/// ( [ { ), or ts.size() when unbalanced.
[[nodiscard]] std::size_t match_forward(const Tokens& ts, std::size_t open) {
  const std::string_view o = ts[open].text;
  const std::string_view c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i < ts.size(); ++i) {
    if (ts[i].kind != Tok::Punct) continue;
    if (ts[i].text == o) ++depth;
    if (ts[i].text == c && --depth == 0) return i;
  }
  return ts.size();
}

/// Index of the '>' closing the '<' at `open`, tracking only angle depth
/// (callers use this right after a template name, where shift/comparison
/// operators cannot appear at the top level). Returns ts.size() when the
/// scan runs away (e.g. a real less-than), capped to keep that cheap.
[[nodiscard]] std::size_t match_angle(const Tokens& ts, std::size_t open) {
  int depth = 0;
  const std::size_t limit = std::min(ts.size(), open + 256);
  for (std::size_t i = open; i < limit; ++i) {
    if (ts[i].kind != Tok::Punct) continue;
    if (ts[i].text == "<") ++depth;
    if (ts[i].text == ">" && --depth == 0) return i;
    if (ts[i].text == ";") break;  // statement ended: not a template
  }
  return ts.size();
}

// --- scope tracking ----------------------------------------------------------

/// Brace-depth walker that attributes tokens to their innermost class /
/// struct scope (namespaces tracked for depth only). Feed every token in
/// order through observe().
class ScopeTracker {
 public:
  void observe(const Tokens& ts, std::size_t i) {
    const Token& t = ts[i];
    if (t.kind == Tok::Ident) {
      if ((t.text == "class" || t.text == "struct") &&
          (i == 0 || (!is_ident(ts[i - 1], "enum") &&
                      !is_ident(ts[i - 1], "friend")))) {
        pending_ = Pending{true, true, head_name(ts, i + 1)};
      } else if (t.text == "namespace") {
        pending_ = Pending{true, false, head_name(ts, i + 1)};
      }
      return;
    }
    if (t.kind != Tok::Punct) return;
    // A '(' between the head and its '{' means we misread something like a
    // template parameter or a function signature — drop the pending head.
    if (t.text == "(" || t.text == ";") {
      pending_.active = false;
    } else if (t.text == "{") {
      if (pending_.active) {
        scopes_.push_back(Scope{pending_.is_class, pending_.name, depth_});
        pending_.active = false;
      }
      ++depth_;
    } else if (t.text == "}") {
      --depth_;
      if (!scopes_.empty() && scopes_.back().depth == depth_) {
        scopes_.pop_back();
      }
    }
  }

  /// Innermost enclosing class/struct name, or empty when at namespace /
  /// function scope only.
  [[nodiscard]] std::string_view innermost_class() const noexcept {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->is_class) return it->name;
    }
    return {};
  }

  /// True when the current token sits DIRECTLY inside a class/struct body
  /// (member-declaration scope), not nested in a member function body or
  /// an initializer brace.
  [[nodiscard]] bool at_member_scope() const noexcept {
    return !scopes_.empty() && scopes_.back().is_class &&
           depth_ == scopes_.back().depth + 1;
  }
  /// The class owning the member scope, valid when at_member_scope().
  [[nodiscard]] std::string_view member_class() const noexcept {
    return at_member_scope() ? std::string_view(scopes_.back().name)
                             : std::string_view{};
  }

 private:
  /// First identifier after a class/struct/namespace keyword, skipping
  /// [[attributes]]; empty for anonymous scopes.
  [[nodiscard]] static std::string head_name(const Tokens& ts, std::size_t i) {
    while (i < ts.size()) {
      if (is(ts[i], "[") && i + 1 < ts.size() && is(ts[i + 1], "[")) {
        i = match_forward(ts, i);  // outer ']' of [[...]]
        ++i;
        continue;
      }
      if (ts[i].kind == Tok::Ident) return std::string(ts[i].text);
      break;
    }
    return {};
  }

  struct Pending {
    bool active = false;
    bool is_class = false;
    std::string name;
  };
  struct Scope {
    bool is_class;
    std::string name;
    int depth;
  };
  Pending pending_;
  std::vector<Scope> scopes_;
  int depth_ = 0;
};

// --- container recognition (shared by pass 1 and R6/R7) ----------------------

/// std containers whose storage lives on the global heap unless an
/// ArenaAllocator is threaded through. SmallVec and std::array are exempt
/// by design (inline storage / arena spill).
constexpr std::array<std::string_view, 11> kHeapContainers = {
    "vector",        "deque",         "list",     "map",
    "set",           "multimap",      "multiset", "unordered_map",
    "unordered_set", "basic_string",  "string"};

[[nodiscard]] bool is_heap_container(std::string_view name) noexcept {
  return std::find(kHeapContainers.begin(), kHeapContainers.end(), name) !=
         kHeapContainers.end();
}

/// True when the identifier at `i` is reached through member access or a
/// non-std qualifier (Foo::vector) — never a std container use then.
[[nodiscard]] bool qualified_away(const Tokens& ts, std::size_t i) {
  if (i == 0) return false;
  if (is(ts[i - 1], ".") || is(ts[i - 1], "->")) return true;
  if (is(ts[i - 1], "::")) return !(i >= 2 && is_ident(ts[i - 2], "std"));
  return false;
}

struct ContainerMember {
  std::string name;
  int first_line;   ///< line of the container keyword
  int name_line;    ///< line of the declared member name
  bool arena_alloc; ///< instantiated with ArenaAllocator
  bool map_like;    ///< std::map / std::unordered_map (operator[] inserts)
  bool string_like; ///< std::string (operator+= / append allocate)
};

/// Parse a member declaration whose type starts with the container keyword
/// at `i` (the caller checks member scope). References/pointers are
/// rejected (non-owning), as are typedef/using aliases and function
/// declarators.
[[nodiscard]] std::optional<ContainerMember> parse_container_member(
    const Tokens& ts, std::size_t i) {
  const Token& t = ts[i];
  if (t.kind != Tok::Ident || !is_heap_container(t.text)) return std::nullopt;
  if (qualified_away(ts, i)) return std::nullopt;
  // typedef std::vector<...> Alias; / using handled by the forward scan
  // (the container sits at the END of a using-decl), but typedef needs a
  // lookback over the qualifier tokens.
  std::size_t b = i;
  while (b > 0 &&
         (is(ts[b - 1], "::") || is_ident(ts[b - 1], "std") ||
          is_ident(ts[b - 1], "const") || is_ident(ts[b - 1], "mutable") ||
          is_ident(ts[b - 1], "static"))) {
    --b;
  }
  if (b > 0 && (is_ident(ts[b - 1], "typedef") || is_ident(ts[b - 1], "using"))) {
    return std::nullopt;
  }

  bool arena = false;
  bool map_like = false;
  bool string_like = false;
  std::size_t k;
  if (i + 1 < ts.size() && is(ts[i + 1], "<")) {
    const std::size_t close = match_angle(ts, i + 1);
    if (close >= ts.size()) return std::nullopt;
    for (std::size_t a = i + 1; a < close; ++a) {
      if (is_ident(ts[a], "ArenaAllocator")) arena = true;
    }
    map_like = t.text == "map" || t.text == "unordered_map";
    k = close + 1;
  } else if (t.text == "string") {
    string_like = true;
    k = i + 1;
  } else {
    return std::nullopt;
  }

  while (k < ts.size() && is_ident(ts[k], "const")) ++k;
  if (k < ts.size() && (is(ts[k], "&") || is(ts[k], "*"))) {
    return std::nullopt;  // reference/pointer member: no owned heap storage
  }
  if (k >= ts.size() || ts[k].kind != Tok::Ident) return std::nullopt;
  if (k + 1 >= ts.size()) return std::nullopt;
  const std::string_view after = ts[k + 1].text;
  if (!(after == ";" || after == "=" || after == "{" || after == ",")) {
    return std::nullopt;  // function declarator or other non-member use
  }
  return ContainerMember{std::string(ts[k].text), t.line, ts[k].line,
                         arena, map_like, string_like};
}

// --- symbol collection (pass 1) ----------------------------------------------

/// After the closing '>' of a container template-id, find the declared
/// name: skips cv/ref/ptr tokens; rejects scope access (::), function
/// declarators and other non-declaration uses.
[[nodiscard]] std::optional<std::string> declared_name(const Tokens& ts,
                                                       std::size_t after) {
  std::size_t k = after;
  while (k < ts.size() &&
         (is(ts[k], "&") || is(ts[k], "*") || is_ident(ts[k], "const"))) {
    ++k;
  }
  if (k >= ts.size() || ts[k].kind != Tok::Ident) return std::nullopt;
  if (k + 1 < ts.size()) {
    const std::string_view nxt = ts[k + 1].text;
    // Declarations end in ; , = { ) (member, local, parameter). A '('
    // would be a function returning the container; '::' a nested-name use.
    if (!(nxt == ";" || nxt == "," || nxt == "=" || nxt == "{" ||
          nxt == ")")) {
      return std::nullopt;
    }
  }
  return std::string(ts[k].text);
}

/// First token line strictly greater than `line`; -1 when none. `lines` is
/// the sorted list of lines holding at least one token.
[[nodiscard]] int next_code_line(const std::vector<int>& lines, int line) {
  auto it = std::upper_bound(lines.begin(), lines.end(), line);
  return it == lines.end() ? -1 : *it;
}

[[nodiscard]] std::vector<int> token_lines(const LexOutput& lx) {
  std::vector<int> code_lines;
  code_lines.reserve(lx.tokens.size());
  for (const Token& t : lx.tokens) {
    if (code_lines.empty() || code_lines.back() != t.line) {
      code_lines.push_back(t.line);
    }
  }
  return code_lines;
}

/// Collect the base-class names of the class whose `class`/`struct` keyword
/// sits at `i` into `sym.bases`. Handles `final`, access specifiers,
/// virtual bases and templated bases (Base<T> records Base).
void collect_bases(const Tokens& ts, std::size_t i, Symbols& sym) {
  std::size_t k = i + 1;
  std::string name;
  if (k < ts.size() && ts[k].kind == Tok::Ident) {
    name = std::string(ts[k].text);
    ++k;
  }
  if (name.empty()) return;
  if (k < ts.size() && is_ident(ts[k], "final")) ++k;
  if (k >= ts.size() || !is(ts[k], ":")) return;  // no base clause
  std::set<std::string, std::less<>> bases;
  for (++k; k < ts.size(); ++k) {
    const Token& t = ts[k];
    if (t.kind == Tok::Punct) {
      if (t.text == "{" || t.text == ";" || t.text == "(") break;
      if (t.text == "<") {  // templated base: skip its arguments
        const std::size_t close = match_angle(ts, k);
        if (close >= ts.size()) break;
        k = close;
      }
      continue;
    }
    if (t.kind != Tok::Ident) continue;
    if (t.text == "public" || t.text == "protected" || t.text == "private" ||
        t.text == "virtual") {
      continue;
    }
    // Qualified bases (ns::Base): keep only the last identifier.
    if (k + 1 < ts.size() && is(ts[k + 1], "::")) continue;
    bases.insert(std::string(t.text));
  }
  if (!bases.empty()) sym.bases[name].insert(bases.begin(), bases.end());
}

}  // namespace

void collect_symbols(const LexOutput& lx, Symbols& sym) {
  const Tokens& ts = lx.tokens;
  const std::vector<int> code_lines = token_lines(lx);
  // Pass-1 view of arena-backed annotations: growth-checking must know,
  // across files, which members opted out (pass 2 re-parses the grammar
  // with used-tracking and error reporting).
  std::set<int> arena_lines;
  for (const Comment& c : lx.comments) {
    if (c.text.find("shardcheck:arena-backed") != std::string::npos) {
      arena_lines.insert(c.own_line ? next_code_line(code_lines, c.line)
                                    : c.line);
    }
  }
  const auto arena_annotated = [&arena_lines](int first, int last) {
    auto it = arena_lines.lower_bound(first);
    return it != arena_lines.end() && *it <= last;
  };

  ScopeTracker scopes;
  int parens = 0;  // parameter lists sit at member brace depth: skip them
  for (std::size_t i = 0; i < ts.size(); ++i) {
    scopes.observe(ts, i);
    const Token& t = ts[i];
    if (t.kind == Tok::Punct) {
      if (t.text == "(") ++parens;
      if (t.text == ")") --parens;
    }
    if (t.kind != Tok::Ident) continue;

    // Class inheritance edges (R7 resolves Protocol-derived from these).
    if ((t.text == "class" || t.text == "struct") &&
        (i == 0 || (!is_ident(ts[i - 1], "enum") &&
                    !is_ident(ts[i - 1], "friend")))) {
      collect_bases(ts, i, sym);
      continue;
    }

    // std::unordered_map<...> name / std::unordered_set<...> name, both as
    // a direct declaration and as the element of an ordered outer container
    // (vector<unordered_set<T>> held_ — iterating held_[v] is the hazard).
    if ((t.text == "unordered_map" || t.text == "unordered_set") &&
        i + 1 < ts.size() && is(ts[i + 1], "<")) {
      const std::size_t close = match_angle(ts, i + 1);
      if (close >= ts.size()) continue;
      std::size_t k = close + 1;
      bool wrapped = false;
      while (k < ts.size() && is(ts[k], ">")) {  // outer template closes
        wrapped = true;
        ++k;
      }
      if (auto name = declared_name(ts, k)) {
        (wrapped ? sym.unordered_elem : sym.unordered_direct)
            .insert(std::move(*name));
      }
      // Fall through: the same token may open a container-member parse.
    }

    // Contiguous containers of raw pointers (std::sort hazard).
    if ((t.text == "vector" || t.text == "deque" || t.text == "SmallVec") &&
        i + 1 < ts.size() && is(ts[i + 1], "<")) {
      const std::size_t close = match_angle(ts, i + 1);
      if (close < ts.size()) {
        int depth = 0;
        bool ptr_elem = false;
        for (std::size_t k = i + 1; k < close; ++k) {
          if (is(ts[k], "<")) ++depth;
          if (is(ts[k], ">")) --depth;
          if (depth == 1 && is(ts[k], "*")) ptr_elem = true;
        }
        if (ptr_elem) {
          if (auto name = declared_name(ts, close + 1)) {
            sym.pointer_containers.insert(std::move(*name));
          }
        }
      }
    }

    // Heap-container MEMBERS (any class): growth calls on them inside hot
    // regions are R6 unless they carry ArenaAllocator or an arena-backed
    // annotation at the declaration site.
    if (parens == 0 && scopes.at_member_scope()) {
      if (auto m = parse_container_member(ts, i)) {
        if (!m->arena_alloc && !arena_annotated(m->first_line, m->name_line)) {
          sym.growth_members.insert(m->name);
          if (m->map_like) sym.map_members.insert(m->name);
          if (m->string_like) sym.string_members.insert(m->name);
        }
        continue;
      }
    }

    // Classes whose sharded_dispatch() override returns true: their 3-arg
    // on_message runs concurrently by destination shard.
    if (t.text == "sharded_dispatch" && i + 1 < ts.size() &&
        is(ts[i + 1], "(")) {
      const std::size_t close = match_forward(ts, i + 1);
      bool returns_true = false;
      for (std::size_t k = close; k + 1 < ts.size() && k < close + 12; ++k) {
        if (is_ident(ts[k], "return") && is_ident(ts[k + 1], "true")) {
          returns_true = true;
          break;
        }
        if (is(ts[k], "}") || is(ts[k], ";")) break;
      }
      if (!returns_true) continue;
      if (i >= 2 && is(ts[i - 1], "::") && ts[i - 2].kind == Tok::Ident) {
        sym.sharded_dispatch_classes.insert(std::string(ts[i - 2].text));
      } else if (!scopes.innermost_class().empty()) {
        sym.sharded_dispatch_classes.insert(
            std::string(scopes.innermost_class()));
      }
    }
  }
}

// --- pass 2: suppressions, regions, rules ------------------------------------

namespace {

struct Suppression {
  int target_line = -1;
  int comment_line = 0;
  std::string rule;
  bool used = false;
};

/// sharded-hook / hot-path function annotations.
struct FnAnnotation {
  int target_line = -1;
  int comment_line = 0;
  bool hot_path = false;  ///< hot-path (R6 only) vs sharded-hook (full set)
  bool used = false;
};

/// arena-backed / cold-state member annotations.
struct MemberAnnotation {
  int target_line = -1;
  int comment_line = 0;
  bool cold = false;  ///< cold-state vs arena-backed
  bool used = false;
};

struct Directives {
  std::vector<Suppression> suppressions;
  std::vector<FnAnnotation> annotations;
  std::vector<MemberAnnotation> member_annotations;
  std::vector<Diagnostic> malformed;  ///< bad-suppression diagnostics
};

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parse the shardcheck directive grammar out of every comment:
///   shardcheck:ok(Rn: reason)            suppression (reason mandatory)
///   shardcheck:sharded-hook(reason)      helper joins the sharded rule set
///   shardcheck:hot-path(reason)          function joins the R6 rule set
///   shardcheck:arena-backed(reason)      member growth is arena/capacity-safe
///   shardcheck:cold-state(reason)        member is never touched when hot
/// A trailing comment targets its own line; an own-line comment targets the
/// next code line.
[[nodiscard]] Directives parse_directives(const std::string& path,
                                          const LexOutput& lx,
                                          const std::vector<int>& code_lines) {
  Directives out;
  for (const Comment& c : lx.comments) {
    const std::string& text = c.text;
    const int target =
        c.own_line ? next_code_line(code_lines, c.line) : c.line;
    std::size_t pos = 0;
    while ((pos = text.find("shardcheck:", pos)) != std::string::npos) {
      std::size_t p = pos + std::string_view("shardcheck:").size();
      enum class Kind { kOk, kShardedHook, kHotPath, kArenaBacked, kColdState };
      static constexpr std::pair<std::string_view, Kind> kKeywords[] = {
          {"ok", Kind::kOk},
          {"sharded-hook", Kind::kShardedHook},
          {"hot-path", Kind::kHotPath},
          {"arena-backed", Kind::kArenaBacked},
          {"cold-state", Kind::kColdState},
      };
      std::optional<Kind> kind;
      std::size_t kw_len = 0;
      for (const auto& [word, k] : kKeywords) {
        if (text.compare(p, word.size(), word) == 0 && word.size() > kw_len) {
          kind = k;
          kw_len = word.size();
        }
      }
      pos = p;
      if (!kind) {
        out.malformed.push_back(
            {path, c.line, "bad-suppression",
             "unknown shardcheck directive (expected shardcheck:ok(Rn: "
             "reason), shardcheck:sharded-hook(reason), "
             "shardcheck:hot-path(reason), shardcheck:arena-backed(reason) "
             "or shardcheck:cold-state(reason))"});
        continue;
      }
      p += kw_len;
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p]))) {
        ++p;
      }
      const std::size_t open = p;
      const std::size_t close =
          open < text.size() && text[open] == '('
              ? text.find(')', open)
              : std::string::npos;
      if (close == std::string::npos) {
        out.malformed.push_back(
            {path, c.line, "bad-suppression",
             *kind == Kind::kOk
                 ? "shardcheck:ok needs (Rn: reason) — the reason is mandatory"
                 : "shardcheck annotation needs a (reason)"});
        continue;
      }
      const std::string_view body =
          trim(std::string_view(text).substr(open + 1, close - open - 1));
      if (*kind != Kind::kOk) {
        if (body.empty()) {
          out.malformed.push_back({path, c.line, "bad-suppression",
                                   "shardcheck annotation needs a non-empty "
                                   "reason"});
          continue;
        }
        if (*kind == Kind::kShardedHook || *kind == Kind::kHotPath) {
          out.annotations.push_back(
              FnAnnotation{target, c.line, *kind == Kind::kHotPath, false});
        } else {
          out.member_annotations.push_back(
              MemberAnnotation{target, c.line, *kind == Kind::kColdState,
                               false});
        }
        continue;
      }
      const std::size_t colon = body.find(':');
      std::string_view rule =
          trim(colon == std::string_view::npos ? body : body.substr(0, colon));
      std::string_view reason =
          colon == std::string_view::npos ? std::string_view{}
                                          : trim(body.substr(colon + 1));
      const bool rule_ok =
          rule.size() >= 2 && rule[0] == 'R' &&
          std::all_of(rule.begin() + 1, rule.end(), [](char ch) {
            return std::isdigit(static_cast<unsigned char>(ch));
          });
      if (!rule_ok || reason.empty()) {
        out.malformed.push_back(
            {path, c.line, "bad-suppression",
             "malformed suppression — use shardcheck:ok(Rn: reason) with a "
             "non-empty reason"});
        continue;
      }
      out.suppressions.push_back(
          Suppression{target, c.line, std::string(rule), false});
    }
  }
  return out;
}

struct Region {
  bool sharded = false;  ///< R1 + R3 apply (implies R2 and R6)
  bool merge = false;    ///< R2 applies
  bool hot = false;      ///< R6 applies (sharded hooks and hot-path fns)
  std::size_t param_begin, param_end;  ///< tokens inside ( ... )
  std::size_t body_begin, body_end;    ///< tokens inside { ... }
};

constexpr std::array<std::string_view, 12> kNotAFunctionName = {
    "if",     "for",   "while",    "switch", "catch",  "return",
    "sizeof", "throw", "decltype", "new",    "delete", "co_return"};

/// Recognize function definitions and classify sharded-hook / merge /
/// hot-path regions. Walks the whole token stream once.
[[nodiscard]] std::vector<Region> find_regions(const LexOutput& lx,
                                               const Symbols& sym,
                                               Directives& dirs) {
  const Tokens& ts = lx.tokens;
  std::vector<Region> regions;
  ScopeTracker scopes;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    scopes.observe(ts, i);
    const Token& t = ts[i];
    if (t.kind != Tok::Ident || i + 1 >= ts.size() || !is(ts[i + 1], "(")) {
      continue;
    }
    if (std::find(kNotAFunctionName.begin(), kNotAFunctionName.end(),
                  t.text) != kNotAFunctionName.end()) {
      continue;
    }
    // Member-call and qualified-call sites are never definitions.
    if (i > 0 && (is(ts[i - 1], ".") || is(ts[i - 1], "->"))) continue;

    const std::size_t close = match_forward(ts, i + 1);
    if (close >= ts.size()) continue;
    // Skip cv/ref/noexcept/override between ')' and the body '{'.
    std::size_t k = close + 1;
    while (k < ts.size()) {
      if (is_ident(ts[k], "const") || is_ident(ts[k], "override") ||
          is_ident(ts[k], "final") || is(ts[k], "&")) {
        ++k;
        continue;
      }
      if (is_ident(ts[k], "noexcept")) {
        ++k;
        if (k < ts.size() && is(ts[k], "(")) k = match_forward(ts, k) + 1;
        continue;
      }
      break;
    }
    if (k >= ts.size() || !is(ts[k], "{")) continue;  // call or declaration
    const std::size_t body_end = match_forward(ts, k);
    if (body_end >= ts.size()) continue;

    // Classify.
    bool has_shard_ctx = false;
    for (std::size_t p = i + 2; p < close; ++p) {
      if (is_ident(ts[p], "ShardContext")) has_shard_ctx = true;
    }
    std::string_view cls;
    if (i >= 2 && is(ts[i - 1], "::") && ts[i - 2].kind == Tok::Ident) {
      cls = ts[i - 2].text;
    } else {
      cls = scopes.innermost_class();
    }

    Region r;
    if (t.text == "on_round_begin" && has_shard_ctx) {
      r.sharded = true;
    } else if (t.text == "on_message" && has_shard_ctx && !cls.empty() &&
               sym.sharded_dispatch_classes.count(std::string(cls)) > 0) {
      r.sharded = true;
    } else if (t.text == "on_round_merge" || t.text == "on_dispatch_merge") {
      r.merge = true;
    }
    // A shardcheck:sharded-hook / hot-path annotation right above the
    // definition pulls any function into the respective rule set. The
    // annotation targets the first line of the declaration; the name may
    // sit a couple of lines below it in a multi-line signature.
    for (FnAnnotation& a : dirs.annotations) {
      if (a.target_line >= 0 && a.target_line <= t.line &&
          t.line <= a.target_line + 2) {
        a.used = true;
        if (a.hot_path) {
          r.hot = true;
        } else {
          r.sharded = true;
        }
      }
    }
    if (r.sharded) r.hot = true;
    if (!r.sharded && !r.merge && !r.hot) continue;
    r.param_begin = i + 2;
    r.param_end = close;
    r.body_begin = k + 1;
    r.body_end = body_end;
    regions.push_back(r);
  }
  return regions;
}

constexpr std::array<std::string_view, 10> kGrowthMethods = {
    "push_back", "emplace_back", "push_front", "emplace_front", "resize",
    "insert",    "emplace",      "append",     "reserve",        "assign"};

[[nodiscard]] bool is_growth_method(std::string_view name) noexcept {
  return std::find(kGrowthMethods.begin(), kGrowthMethods.end(), name) !=
         kGrowthMethods.end();
}

/// Protocol plus every class transitively derived from it, resolved from
/// the pass-1 inheritance edges.
[[nodiscard]] std::set<std::string, std::less<>> protocol_derived(
    const Symbols& sym) {
  std::set<std::string, std::less<>> out = {"Protocol"};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [cls, bases] : sym.bases) {
      if (out.count(cls) > 0) continue;
      for (const std::string& b : bases) {
        if (out.count(b) > 0) {
          out.insert(cls);
          changed = true;
          break;
        }
      }
    }
  }
  return out;
}

class Analysis {
 public:
  Analysis(const std::string& path, const LexOutput& lx, const Symbols& sym)
      : path_(path),
        ts_(lx.tokens),
        sym_(sym),
        in_src_(starts_with(path, "src/")) {}

  void diag(int line, const char* rule, std::string message) {
    raw_.push_back(Diagnostic{path_, line, rule, std::move(message)});
  }

  // --- R1/R2/R3/R6 inside one region ------------------------------------
  void check_region(const Region& r) {
    const char* where = r.sharded  ? "sharded hook"
                        : r.merge ? "merge body"
                                  : "hot-path function";
    collect_aliases(r);
    if (r.sharded) {
      for (std::size_t i = r.param_begin; i + 1 < r.param_end; ++i) {
        if (is_ident(ts_[i], "Rng") && is(ts_[i + 1], "&")) {
          diag(ts_[i].line, "R1",
               "Rng& parameter in a sharded hook shares sequential generator "
               "state across shards — take a stream_rng key instead");
        }
      }
    }
    const bool r6 = r.hot && in_src_;
    for (std::size_t i = r.body_begin; i < r.body_end; ++i) {
      const Token& t = ts_[i];
      if (t.kind != Tok::Ident) continue;
      if (r.sharded) check_r1(i);
      if (r.sharded) check_r3(i);
      if (r.sharded || r.merge) check_r2(i, where);
      if (r6) check_r6(i, where);
    }
  }

  void check_r1(std::size_t i) {
    const Token& t = ts_[i];
    if (t.text == "rng_") {
      diag(t.line, "R1",
           "shared sequential rng_ used in a sharded hook — draw from a "
           "per-(round,vertex) stream_rng instead");
    } else if (t.text == "protocol_rng") {
      diag(t.line, "R1",
           "net().protocol_rng() is shared sequential state — sharded hooks "
           "must use per-(round,vertex) stream_rng");
    } else if (t.text == "Rng" && i + 1 < ts_.size() && is(ts_[i + 1], "&")) {
      diag(t.line, "R1",
           "Rng& binding in a sharded hook aliases shared generator state — "
           "copy a stream_rng by value");
    }
  }

  /// Track `auto& alias = unordered_expr;` bindings inside the region so
  /// iteration through the alias is still seen (auto& st = state_[v]; for
  /// (auto& [k, m] : st) is the idiomatic escape hatch).
  void collect_aliases(const Region& r) {
    aliases_.clear();
    for (std::size_t i = r.body_begin; i + 4 < r.body_end; ++i) {
      if (!is_ident(ts_[i], "auto") || !is(ts_[i + 1], "&") ||
          ts_[i + 2].kind != Tok::Ident || !is(ts_[i + 3], "=")) {
        continue;
      }
      const std::size_t rhs = i + 4;
      if (ts_[rhs].kind != Tok::Ident) continue;
      const std::string_view src_name = ts_[rhs].text;
      if (is_direct_unordered(src_name) && rhs + 1 < r.body_end &&
          is(ts_[rhs + 1], ";")) {
        aliases_.insert(std::string(ts_[i + 2].text));
      } else if (sym_.unordered_elem.count(src_name) > 0 &&
                 rhs + 1 < r.body_end && is(ts_[rhs + 1], "[")) {
        const std::size_t rb = match_forward(ts_, rhs + 1);
        if (rb + 1 < r.body_end && is(ts_[rb + 1], ";")) {
          aliases_.insert(std::string(ts_[i + 2].text));
        }
      }
    }
  }

  [[nodiscard]] bool is_direct_unordered(std::string_view name) const {
    return sym_.unordered_direct.count(name) > 0 ||
           aliases_.count(std::string(name)) > 0;
  }

  void check_r2(std::size_t i, const char* where) {
    const Token& t = ts_[i];
    // Range-for whose range expression names unordered state.
    if (t.text == "for" && i + 1 < ts_.size() && is(ts_[i + 1], "(")) {
      const std::size_t close = match_forward(ts_, i + 1);
      if (close >= ts_.size()) return;
      std::size_t colon = ts_.size();
      int depth = 0;
      for (std::size_t k = i + 1; k < close; ++k) {
        if (is(ts_[k], "(") || is(ts_[k], "[")) ++depth;
        if (is(ts_[k], ")") || is(ts_[k], "]")) --depth;
        if (depth == 1 && ts_[k].kind == Tok::Punct && ts_[k].text == ":") {
          colon = k;
          break;
        }
      }
      if (colon == ts_.size()) return;  // classic for; iterator form is
                                        // caught by .begin() below
      for (std::size_t k = colon + 1; k < close; ++k) {
        if (ts_[k].kind != Tok::Ident) continue;
        if (flag_unordered_use(k, where, "iterated by a range-for")) break;
      }
      return;
    }
    // Explicit iterator walks: name.begin() / name[i].begin().
    if (i + 2 < ts_.size() && is(ts_[i + 1], ".") &&
        (is_ident(ts_[i + 2], "begin") || is_ident(ts_[i + 2], "cbegin")) &&
        is_direct_unordered(t.text)) {
      diag(t.line, "R2",
           "iterates std::unordered_* '" + std::string(t.text) + "' in a " +
               where + " — bucket order is not S-invariant; use an ordered "
               "container or stage keys and sort");
    } else if (i + 1 < ts_.size() && is(ts_[i + 1], "[") &&
               sym_.unordered_elem.count(t.text) > 0) {
      const std::size_t rb = match_forward(ts_, i + 1);
      if (rb + 2 < ts_.size() && is(ts_[rb + 1], ".") &&
          (is_ident(ts_[rb + 2], "begin") || is_ident(ts_[rb + 2], "cbegin"))) {
        diag(t.line, "R2",
             "iterates unordered element of '" + std::string(t.text) +
                 "' in a " + where + " — bucket order is not S-invariant");
      }
    }
  }

  /// True (and diagnoses) when token k names unordered state being iterated.
  bool flag_unordered_use(std::size_t k, const char* where,
                          const char* how) {
    const Token& t = ts_[k];
    const bool subscripted = k + 1 < ts_.size() && is(ts_[k + 1], "[");
    if (is_direct_unordered(t.text) && !subscripted) {
      diag(t.line, "R2",
           "std::unordered_* '" + std::string(t.text) + "' " + how + " in a " +
               where + " — bucket order is not S-invariant; use an ordered "
               "container or stage keys and sort");
      return true;
    }
    if (sym_.unordered_elem.count(t.text) > 0 && subscripted) {
      diag(t.line, "R2",
           "unordered element of '" + std::string(t.text) + "' " + how +
               " in a " + where + " — bucket order is not S-invariant");
      return true;
    }
    return false;
  }

  void check_r3(std::size_t i) {
    const Token& t = ts_[i];
    if (t.text == "net" && i + 4 < ts_.size() && is(ts_[i + 1], "(") &&
        is(ts_[i + 2], ")") && is(ts_[i + 3], ".") &&
        is_ident(ts_[i + 4], "send")) {
      diag(t.line, "R3",
           "direct net().send in a sharded hook bypasses the shard lane — "
           "route through ctx.send so merges stay canonical");
    } else if (t.text == "net_" && i + 2 < ts_.size() && is(ts_[i + 1], ".") &&
               is_ident(ts_[i + 2], "send")) {
      diag(t.line, "R3",
           "direct net_.send in a sharded hook bypasses the shard lane — "
           "route through ctx.send");
    } else if (t.text == "charge_bits" || t.text == "charge_bits_local" ||
               t.text == "add_total_bits" || t.text == "charge_processing") {
      diag(t.line, "R3",
           "un-deferred metrics charge '" + std::string(t.text) +
               "' in a sharded hook — use ctx.charge so charges merge in "
               "canonical (shard, vertex) order");
    }
  }

  // --- R6: heap discipline inside hot regions ---------------------------
  void check_r6(std::size_t i, const char* where) {
    const Token& t = ts_[i];
    if (t.text == "new") {
      diag(t.line, "R6",
           std::string("operator new in a ") + where +
               " — the steady state must be heap-quiet; draw from the shard "
               "arena (util/arena.h) or hoist the allocation to "
               "attach/prologue time");
      return;
    }
    if (t.text == "make_unique" || t.text == "make_shared") {
      diag(t.line, "R6",
           "std::" + std::string(t.text) + " allocates in a " + where +
               " — the steady state must be heap-quiet; hoist the allocation "
               "out of the per-round path");
      return;
    }
    if (t.text == "function" && i >= 2 && is(ts_[i - 1], "::") &&
        is_ident(ts_[i - 2], "std") && i + 1 < ts_.size() &&
        is(ts_[i + 1], "<")) {
      diag(t.line, "R6",
           std::string("std::function construction in a ") + where +
               " — capture storage heap-allocates; take a template callable "
               "or a function pointer instead");
      return;
    }
    // Local std container declarations / temporaries without ArenaAllocator.
    if (is_heap_container(t.text) && !qualified_away(ts_, i)) {
      if (i + 1 < ts_.size() && is(ts_[i + 1], "<")) {
        const std::size_t close = match_angle(ts_, i + 1);
        if (close < ts_.size()) {
          bool arena = false;
          for (std::size_t a = i + 1; a < close; ++a) {
            if (is_ident(ts_[a], "ArenaAllocator")) arena = true;
          }
          if (!arena && local_alloc_shape(close + 1)) {
            diag(t.line, "R6",
                 "local std::" + std::string(t.text) + " in a " + where +
                     " allocates from the global heap — instantiate with "
                     "ArenaAllocator or reuse a pre-sized member buffer");
            return;
          }
        }
      } else if (t.text == "string" && local_alloc_shape(i + 1)) {
        diag(t.line, "R6",
             std::string("local std::string in a ") + where +
                 " allocates from the global heap — use string_view or a "
                 "reused member buffer");
        return;
      }
    }
    // Growth calls on members that never declared their arena discipline.
    if (sym_.growth_members.count(t.text) > 0) {
      std::size_t k = i + 1;
      if (k < ts_.size() && is(ts_[k], "[")) {
        const std::size_t rb = match_forward(ts_, k);
        if (rb < ts_.size()) k = rb + 1;
      }
      if (k + 1 < ts_.size() && (is(ts_[k], ".") || is(ts_[k], "->")) &&
          is_growth_method(ts_[k + 1].text)) {
        diag(t.line, "R6",
             "growth call '" + std::string(t.text) + "." +
                 std::string(ts_[k + 1].text) + "' in a " + where +
                 " on a member not marked arena-backed — back it with "
                 "ArenaAllocator, or annotate the declaration "
                 "// shardcheck:arena-backed(reason) with the steady-state "
                 "capacity argument");
        return;
      }
      // The lexer emits single punctuation chars (only :: and -> fuse), so
      // += arrives as '+' '='.
      if (k + 1 < ts_.size() && is(ts_[k], "+") && is(ts_[k + 1], "=") &&
          sym_.string_members.count(t.text) > 0) {
        diag(t.line, "R6",
             "'" + std::string(t.text) + " +=' in a " + where +
                 " may reallocate the string — build cold or annotate the "
                 "member arena-backed with the capacity argument");
        return;
      }
    }
    if (sym_.map_members.count(t.text) > 0 && i + 1 < ts_.size() &&
        is(ts_[i + 1], "[")) {
      diag(t.line, "R6",
           "operator[] on map member '" + std::string(t.text) + "' in a " +
               where +
               " inserts a heap node when the key is absent — use find() for "
               "reads, or annotate the member arena-backed if growth here is "
               "intended");
    }
  }

  /// True when the tokens starting at `k` (right after the container
  /// type-id) declare or construct an owning object: `name ...`,
  /// `(args)` or `{args}`. References, pointers and nested-name uses
  /// (::iterator) don't allocate and return false.
  [[nodiscard]] bool local_alloc_shape(std::size_t k) const {
    while (k < ts_.size() && is_ident(ts_[k], "const")) ++k;
    if (k >= ts_.size()) return false;
    if (is(ts_[k], "&") || is(ts_[k], "*")) return false;
    const Token& nx = ts_[k];
    if (nx.kind == Tok::Ident) {
      if (k + 1 >= ts_.size()) return false;
      const std::string_view after = ts_[k + 1].text;
      return after == ";" || after == "=" || after == "{" || after == "(" ||
             after == ",";
    }
    return is(nx, "(") || is(nx, "{");
  }

  // --- R4 over the whole file (src/ outside util/) ----------------------
  void check_r4() {
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      const Token& t = ts_[i];
      if (t.kind != Tok::Ident) continue;
      const bool call_next = i + 1 < ts_.size() && is(ts_[i + 1], "(");
      if ((t.text == "rand" || t.text == "srand" || t.text == "time") &&
          call_next && plausibly_global_call(i)) {
        diag(t.line, "R4",
             std::string(t.text) +
                 "() draws ambient wall-clock/library state — all randomness "
                 "must come from the seeded Rng tree (util/rng.h)");
      } else if (t.text == "random_device") {
        diag(t.line, "R4",
             "std::random_device is nondeterministic — seed from the master "
             "seed via util/rng.h instead");
      } else if ((t.text == "system_clock" || t.text == "steady_clock" ||
                  t.text == "high_resolution_clock") &&
                 i + 2 < ts_.size() && is(ts_[i + 1], "::") &&
                 is_ident(ts_[i + 2], "now")) {
        diag(t.line, "R4",
             "wall-clock read (" + std::string(t.text) +
                 "::now) in src/ — simulation logic must be a pure function "
                 "of the seed; measurement-only reads need a reasoned "
                 "suppression");
      } else if (t.text == "static" || t.text == "thread_local") {
        check_mutable_static(i);
      }
    }
  }

  [[nodiscard]] bool plausibly_global_call(std::size_t i) const {
    if (i == 0) return true;
    const Token& p = ts_[i - 1];
    if (is(p, ".") || is(p, "->")) return false;  // member call
    if (is(p, "::")) return i >= 2 && is_ident(ts_[i - 2], "std");
    return true;
  }

  void check_mutable_static(std::size_t i) {
    // `static thread_local` — report once, on the first keyword.
    if (i > 0 && (is_ident(ts_[i - 1], "static") ||
                  is_ident(ts_[i - 1], "thread_local"))) {
      return;
    }
    // const/constexpr may precede the storage keyword.
    for (std::size_t b = i; b-- > 0 && b + 4 > i;) {
      if (is_ident(ts_[b], "const") || is_ident(ts_[b], "constexpr") ||
          is_ident(ts_[b], "constinit")) {
        return;
      }
      if (ts_[b].kind == Tok::Punct && !is(ts_[b], "&") && !is(ts_[b], "*")) {
        break;
      }
    }
    // Scan the decl-specifiers: immutable qualifiers allow it; a '(' at
    // angle-depth 0 before any terminator means a function declaration.
    int angle = 0;
    for (std::size_t k = i + 1; k < ts_.size() && k < i + 64; ++k) {
      const Token& t = ts_[k];
      if (t.kind == Tok::Ident) {
        if (t.text == "const" || t.text == "constexpr" ||
            t.text == "constinit") {
          return;
        }
        continue;
      }
      if (t.kind != Tok::Punct) continue;
      if (t.text == "<") ++angle;
      if (t.text == ">") --angle;
      if (angle > 0) continue;
      if (t.text == "(") return;  // function declaration/definition
      if (t.text == ";" || t.text == "=" || t.text == "{") {
        diag(ts_[i].line, "R4",
             "mutable " + std::string(ts_[i].text) +
                 " state is shared across trials/shards — thread it through "
                 "the owning object, or suppress with the reason it is safe");
        return;
      }
    }
  }

  // --- R5 everywhere ----------------------------------------------------
  void check_r5() {
    for (std::size_t i = 0; i + 2 < ts_.size(); ++i) {
      if (!is_ident(ts_[i], "std") || !is(ts_[i + 1], "::")) continue;
      const Token& name = ts_[i + 2];
      if (name.kind != Tok::Ident) continue;
      if ((name.text == "map" || name.text == "set" ||
           name.text == "multimap" || name.text == "multiset") &&
          i + 3 < ts_.size() && is(ts_[i + 3], "<")) {
        const std::size_t close = match_angle(ts_, i + 3);
        if (close >= ts_.size()) continue;
        int depth = 0;
        for (std::size_t k = i + 3; k < close; ++k) {
          if (is(ts_[k], "<")) ++depth;
          if (is(ts_[k], ">")) --depth;
          if (depth == 1 && is(ts_[k], ",")) break;  // key type ends
          if (depth == 1 && is(ts_[k], "*")) {
            diag(name.line, "R5",
                 "std::" + std::string(name.text) +
                     " keyed on a raw pointer orders by address — "
                     "nondeterministic across runs; key on a stable id");
            break;
          }
        }
      } else if ((name.text == "sort" || name.text == "stable_sort") &&
                 i + 3 < ts_.size() && is(ts_[i + 3], "(") &&
                 i + 4 < ts_.size() && ts_[i + 4].kind == Tok::Ident &&
                 sym_.pointer_containers.count(ts_[i + 4].text) > 0) {
        diag(name.line, "R5",
             "std::" + std::string(name.text) + " over pointer container '" +
                 std::string(ts_[i + 4].text) +
                 "' orders by address — nondeterministic across runs; sort "
                 "by a stable key");
      }
    }
  }

  // --- R7: arena discipline declared at the member declaration ----------
  /// Walks every class-member container declaration: marks arena-backed /
  /// cold-state annotations used (any class — the annotation also exempts
  /// R6 growth), and requires one (or ArenaAllocator) on every container
  /// member of a Protocol-derived class.
  void check_r7(Directives& dirs) {
    const std::set<std::string, std::less<>> protocols =
        protocol_derived(sym_);
    ScopeTracker scopes;
    int parens = 0;  // parameter lists sit at member brace depth: skip them
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      scopes.observe(ts_, i);
      if (ts_[i].kind == Tok::Punct) {
        if (ts_[i].text == "(") ++parens;
        if (ts_[i].text == ")") --parens;
      }
      if (ts_[i].kind != Tok::Ident || parens != 0 ||
          !scopes.at_member_scope()) {
        continue;
      }
      const auto m = parse_container_member(ts_, i);
      if (!m) continue;
      bool annotated = false;
      for (MemberAnnotation& a : dirs.member_annotations) {
        if (a.target_line >= m->first_line && a.target_line <= m->name_line) {
          a.used = true;
          annotated = true;
        }
      }
      if (m->arena_alloc || annotated) continue;
      const std::string cls(scopes.member_class());
      if (protocols.count(cls) == 0) continue;
      diag(m->first_line, "R7",
           "container member '" + m->name + "' of Protocol-derived class '" +
               cls +
               "' does not declare its arena discipline — instantiate with "
               "ArenaAllocator, or annotate "
               "// shardcheck:arena-backed(reason) (hot growth is arena-safe) "
               "or // shardcheck:cold-state(reason) (allocated/resized only "
               "in cold serial context)");
    }
  }

  [[nodiscard]] std::vector<Diagnostic> take() { return std::move(raw_); }

 private:
  const std::string& path_;
  const Tokens& ts_;
  const Symbols& sym_;
  const bool in_src_;
  std::set<std::string, std::less<>> aliases_;  ///< region-local bindings
  std::vector<Diagnostic> raw_;
};

}  // namespace

std::vector<Diagnostic> analyze(const std::string& path, const LexOutput& lx,
                                const Symbols& sym, int* suppressed_count,
                                const Options& options) {
  const std::vector<int> code_lines = token_lines(lx);
  Directives dirs = parse_directives(path, lx, code_lines);
  std::vector<Region> regions = find_regions(lx, sym, dirs);

  Analysis a(path, lx, sym);
  for (const Region& r : regions) a.check_region(r);
  if (starts_with(path, "src/") && !starts_with(path, "src/util/")) {
    a.check_r4();
  }
  a.check_r5();
  // R7 runs for src/ only, but always walks the member declarations so
  // arena-backed / cold-state annotations in any scanned file get their
  // used flags set (they may exist purely for R6 growth exemptions).
  a.check_r7(dirs);

  std::vector<Diagnostic> raw;
  for (Diagnostic& d : a.take()) {
    if (d.rule == "R7" && !starts_with(path, "src/")) continue;
    if (options.enabled(d.rule)) raw.push_back(std::move(d));
  }
  std::vector<Diagnostic> out = std::move(dirs.malformed);
  int suppressed = 0;
  for (Diagnostic& d : raw) {
    bool hit = false;
    for (Suppression& s : dirs.suppressions) {
      if (s.target_line == d.line && s.rule == d.rule) {
        s.used = true;
        hit = true;
      }
    }
    if (hit) {
      ++suppressed;
    } else {
      out.push_back(std::move(d));
    }
  }
  for (const Suppression& s : dirs.suppressions) {
    if (!s.used && options.enabled(s.rule)) {
      out.push_back({path, s.comment_line, "unused-suppression",
                     "suppression for " + s.rule +
                         " matches no diagnostic — delete it (stale "
                         "suppressions hide future regressions)"});
    }
  }
  for (const FnAnnotation& an : dirs.annotations) {
    if (!an.used) {
      out.push_back({path, an.comment_line, "unused-suppression",
                     std::string("shardcheck:") +
                         (an.hot_path ? "hot-path" : "sharded-hook") +
                         " annotation is not attached to a function "
                         "definition — move it to the line directly above "
                         "one"});
    }
  }
  for (const MemberAnnotation& an : dirs.member_annotations) {
    if (!an.used) {
      out.push_back({path, an.comment_line, "unused-suppression",
                     std::string("shardcheck:") +
                         (an.cold ? "cold-state" : "arena-backed") +
                         " annotation is not attached to a container member "
                         "declaration — move it onto (or directly above) "
                         "one"});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& x, const Diagnostic& y) {
              return x.line != y.line ? x.line < y.line : x.rule < y.rule;
            });
  if (suppressed_count != nullptr) *suppressed_count = suppressed;
  return out;
}

std::vector<Diagnostic> check_source(const std::string& path,
                                     std::string_view text,
                                     int* suppressed_count,
                                     const Options& options) {
  const LexOutput lx = lex(text);
  Symbols sym;
  collect_symbols(lx, sym);
  return analyze(path, lx, sym, suppressed_count, options);
}

}  // namespace shardcheck
