// shardcheck CLI: scan the repo's source roots and enforce the ShardContext
// determinism contract (see shardcheck.h for the rule catalog).
//
//   shardcheck [--root=DIR] [--compile-commands=FILE] [--rules=R1,R6,...]
//              [--format=human|github] [ROOT...]
//
// ROOTs default to `src bench tests` under --root (default: cwd). Every
// .h/.cpp under the roots is scanned (two passes: cross-file symbols, then
// rules). With --compile-commands, the scanned .cpp set is cross-checked
// against what CMake actually compiles, so a glob/driver drift can never
// silently leave new files unscanned — any mismatch is a hard error.
// --rules limits reporting to the listed rule ids (meta diagnostics stay
// on); --format=github emits `::error file=...` workflow annotations that
// GitHub renders inline on the PR diff (the summary stays human-readable).
//
// Exit codes: 0 clean; 1 unsuppressed diagnostics; 2 usage/IO/drift error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "shardcheck/shardcheck.h"

namespace fs = std::filesystem;

namespace {

struct SourceFile {
  std::string rel;   ///< path relative to root, forward slashes
  std::string text;  ///< file contents
  shardcheck::LexOutput lex;
};

[[nodiscard]] bool has_source_ext(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

[[nodiscard]] std::string to_rel(const fs::path& abs, const fs::path& root) {
  return fs::relative(abs, root).generic_string();
}

/// Minimal compile_commands.json reader: pairs each "file" value with the
/// preceding "directory" value to resolve relative paths. Good for what
/// CMake emits; a parse failure is reported as drift, never ignored.
[[nodiscard]] bool read_compile_commands(const std::string& path,
                                         std::vector<fs::path>& out,
                                         std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path +
            " — configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first";
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();

  auto read_string_after = [&](std::size_t key_end,
                               std::string& value) -> bool {
    std::size_t p = json.find_first_not_of(" \t\r\n", key_end);
    if (p == std::string::npos || json[p] != ':') return false;
    p = json.find_first_not_of(" \t\r\n", p + 1);
    if (p == std::string::npos || json[p] != '"') return false;
    ++p;
    value.clear();
    while (p < json.size() && json[p] != '"') {
      if (json[p] == '\\' && p + 1 < json.size()) {
        ++p;
        value.push_back(json[p] == 'n' ? '\n' : json[p]);
      } else {
        value.push_back(json[p]);
      }
      ++p;
    }
    return p < json.size();
  };

  std::string directory;
  std::size_t pos = 0;
  bool any = false;
  while (pos < json.size()) {
    const std::size_t dk = json.find("\"directory\"", pos);
    const std::size_t fk = json.find("\"file\"", pos);
    if (fk == std::string::npos) break;
    if (dk != std::string::npos && dk < fk) {
      std::string d;
      if (read_string_after(dk + 11, d)) directory = d;
    }
    std::string f;
    if (!read_string_after(fk + 6, f)) {
      error = path + ": malformed entry near offset " + std::to_string(fk);
      return false;
    }
    fs::path fp(f);
    if (fp.is_relative() && !directory.empty()) fp = fs::path(directory) / fp;
    out.push_back(fp);
    any = true;
    pos = fk + 6;
  }
  if (!any) {
    error = path + ": no compile entries found — stale or truncated build "
            "directory; reconfigure and rebuild";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string compile_commands;
  std::vector<std::string> roots;
  shardcheck::Options options;
  bool github_format = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = fs::path(arg.substr(7));
    } else if (arg.rfind("--compile-commands=", 0) == 0) {
      compile_commands = arg.substr(19);
    } else if (arg.rfind("--rules=", 0) == 0) {
      const std::string list = arg.substr(8);
      for (std::size_t b = 0; b <= list.size();) {
        std::size_t e = list.find(',', b);
        if (e == std::string::npos) e = list.size();
        const std::string rule = list.substr(b, e - b);
        if (!rule.empty()) {
          const bool ok = rule[0] == 'R' && rule.size() >= 2 &&
                          std::all_of(rule.begin() + 1, rule.end(),
                                      [](unsigned char c) {
                                        return std::isdigit(c) != 0;
                                      });
          if (!ok) {
            std::fprintf(stderr,
                         "shardcheck: bad rule id '%s' in --rules (expected "
                         "R1..R7)\n",
                         rule.c_str());
            return 2;
          }
          options.rules.insert(rule);
        }
        b = e + 1;
      }
      if (options.rules.empty()) {
        std::fprintf(stderr, "shardcheck: --rules needs at least one rule\n");
        return 2;
      }
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string fmt = arg.substr(9);
      if (fmt == "github") {
        github_format = true;
      } else if (fmt != "human") {
        std::fprintf(stderr,
                     "shardcheck: unknown --format '%s' (human|github)\n",
                     fmt.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: shardcheck [--root=DIR] [--compile-commands=FILE] "
                   "[--rules=R1,R6,...] [--format=human|github] [ROOT...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "shardcheck: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots = {"src", "bench", "tests"};
  root = fs::weakly_canonical(root);

  // --- gather + lex ----------------------------------------------------------
  std::vector<SourceFile> files;
  for (const std::string& r : roots) {
    const fs::path dir = root / r;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
      std::fprintf(stderr, "shardcheck: root %s is not a directory\n",
                   dir.string().c_str());
      return 2;
    }
    for (fs::recursive_directory_iterator it(dir), end; it != end; ++it) {
      if (!it->is_regular_file() || !has_source_ext(it->path())) continue;
      SourceFile sf;
      sf.rel = to_rel(it->path(), root);
      std::ifstream in(it->path(), std::ios::binary);
      std::stringstream ss;
      ss << in.rdbuf();
      sf.text = ss.str();
      files.push_back(std::move(sf));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  for (SourceFile& sf : files) sf.lex = shardcheck::lex(sf.text);

  // --- coverage cross-check against the CMake-compiled set -------------------
  if (!compile_commands.empty()) {
    std::vector<fs::path> compiled;
    std::string error;
    if (!read_compile_commands(compile_commands, compiled, error)) {
      std::fprintf(stderr, "shardcheck: %s\n", error.c_str());
      return 2;
    }
    std::set<std::string> compiled_rel;
    for (const fs::path& p : compiled) {
      const fs::path abs = fs::weakly_canonical(p);
      const std::string rel = to_rel(abs, root);
      for (const std::string& r : roots) {
        if (rel.rfind(r + "/", 0) == 0) {
          compiled_rel.insert(rel);
          break;
        }
      }
    }
    std::set<std::string> scanned_cpp;
    for (const SourceFile& sf : files) {
      if (sf.rel.size() > 4 &&
          sf.rel.compare(sf.rel.size() - 4, 4, ".cpp") == 0) {
        scanned_cpp.insert(sf.rel);
      }
    }
    std::vector<std::string> drift;
    for (const std::string& f : compiled_rel) {
      if (scanned_cpp.count(f) == 0) {
        drift.push_back(f + " is compiled but was not scanned");
      }
    }
    for (const std::string& f : scanned_cpp) {
      if (compiled_rel.count(f) == 0) {
        drift.push_back(f + " is scanned but not in the compile database "
                            "(stale build dir, or the CMake glob missed it)");
      }
    }
    if (!drift.empty()) {
      std::fprintf(stderr,
                   "shardcheck: lint file list drifted from the CMake source "
                   "list (%zu mismatch(es)) — reconfigure the build dir so "
                   "no file is silently unscanned:\n",
                   drift.size());
      for (const std::string& d : drift) {
        std::fprintf(stderr, "  %s\n", d.c_str());
      }
      return 2;
    }
  }

  // --- pass 1: cross-file symbols; pass 2: rules ------------------------------
  shardcheck::Symbols sym;
  for (const SourceFile& sf : files) shardcheck::collect_symbols(sf.lex, sym);

  std::vector<shardcheck::Diagnostic> diags;
  int suppressed_total = 0;
  for (const SourceFile& sf : files) {
    int suppressed = 0;
    auto d = shardcheck::analyze(sf.rel, sf.lex, sym, &suppressed, options);
    suppressed_total += suppressed;
    diags.insert(diags.end(), d.begin(), d.end());
  }

  for (const auto& d : diags) {
    std::printf("%s\n",
                (github_format ? d.format_github() : d.format()).c_str());
  }

  std::map<std::string, int> by_rule;
  for (const auto& d : diags) ++by_rule[d.rule];
  std::printf("shardcheck: %zu file(s) scanned, %zu unsuppressed "
              "diagnostic(s), %d suppressed\n",
              files.size(), diags.size(), suppressed_total);
  for (const auto& [rule, count] : by_rule) {
    std::printf("  shardcheck-%-18s %d\n", rule.c_str(), count);
  }
  return diags.empty() ? 0 : 1;
}
