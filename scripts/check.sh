#!/usr/bin/env bash
# Canonical verification entry point: configure + build (warnings as errors)
# + full test suite. CI and pre-merge checks run exactly this.
#
#   scripts/check.sh            # build into ./build and run ctest
#   BUILD_DIR=out scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

GENERATOR_ARGS=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR_ARGS+=(-G Ninja)
fi

cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
  -DCHURNSTORE_WARNINGS_AS_ERRORS=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo
echo "check.sh: build + tests green"
