#!/usr/bin/env bash
# Canonical verification entry point: configure + build (warnings as errors)
# + full test suite. CI and pre-merge checks run exactly this.
#
#   scripts/check.sh            # build into ./build and run ctest
#   scripts/check.sh --tsan     # ThreadSanitizer build of the sharded
#                               # engine tests (build-tsan/, race checks on
#                               # the concurrent round path)
#   BUILD_DIR=out scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

TSAN=0
if [[ "${1:-}" == "--tsan" ]]; then
  TSAN=1
  shift
fi

GENERATOR_ARGS=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR_ARGS+=(-G Ninja)
fi

if [[ "$TSAN" == "1" ]]; then
  # TSan build: only the concurrency-sensitive tests are worth the ~10x
  # slowdown — the sharded engine suite drives every protocol's round path
  # and the message dispatch across a real ThreadPool.
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
    -DCHURNSTORE_WARNINGS_AS_ERRORS=ON -DCHURNSTORE_TSAN=ON
  cmake --build "$BUILD_DIR" -j "$JOBS" --target churnstore_tests
  TSAN_OPTIONS="halt_on_error=1" \
    "$BUILD_DIR"/churnstore_tests \
    --gtest_filter='Sharded*:ThreadPool*:Arena*:ShardPlan*'
  echo
  echo "check.sh --tsan: sharded engine race-free"
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-build}"
cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
  -DCHURNSTORE_WARNINGS_AS_ERRORS=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo
echo "check.sh: build + tests green"
