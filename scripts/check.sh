#!/usr/bin/env bash
# Canonical verification entry point: configure + build (warnings as errors)
# + full test suite. CI and pre-merge checks run exactly this.
#
#   scripts/check.sh            # build into ./build and run ctest
#   scripts/check.sh --tsan     # ThreadSanitizer build of the sharded
#                               # engine tests (build-tsan/, race checks on
#                               # the concurrent round path)
#   scripts/check.sh --asan     # ASan+UBSan build of the same suite
#                               # (build-asan/, leak/lifetime checks on the
#                               # arena-backed containers: SmallVec spill,
#                               # sample cohorts, token queues, lanes)
#   scripts/check.sh --smoke    # run EVERY registered scenario once at tiny
#                               # n (<= 2k, trials=1) so a scenario that
#                               # crashes or rejects its own spec fails CI,
#                               # not the next person's experiment sweep
#   scripts/check.sh --lint     # shardcheck determinism linter over
#                               # src/ bench/ tests/, cross-checked against
#                               # compile_commands.json so the lint file list
#                               # can never drift from what CMake compiles
#   BUILD_DIR=out scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

TSAN=0
ASAN=0
SMOKE=0
LINT=0
if [[ "${1:-}" == "--tsan" ]]; then
  TSAN=1
  shift
elif [[ "${1:-}" == "--asan" ]]; then
  ASAN=1
  shift
elif [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
  shift
elif [[ "${1:-}" == "--lint" ]]; then
  LINT=1
  shift
fi

GENERATOR_ARGS=()
if command -v ninja >/dev/null 2>&1; then
  GENERATOR_ARGS+=(-G Ninja)
fi

SANITIZED_FILTER='Sharded*:WcScatter*:PerfCounters*:ThreadPool*:Arena*:ShardPlan*:SampleBuffer*:SampleCohorts*:ShardedArrivals*:SmallVec*:Message*:Mixed*:BitCharge*:ChordNet*:HeapSentinel*:HeapQuiesce*'

if [[ "$SMOKE" == "1" ]]; then
  # Scenario smoke: every registered scenario once, tiny spec (n <= 2k,
  # trials=1). Scenario-level regressions (a crash, a spec-validation
  # failure, a scenario that stopped registering) fail here instead of in
  # someone's experiment sweep. Per-scenario overrides keep the expensive
  # defaults (capacity n=100k, soup_step n=16k, storage 20-tau horizons)
  # down at smoke scale.
  BUILD_DIR="${BUILD_DIR:-build}"
  cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
    -DCHURNSTORE_WARNINGS_AS_ERRORS=ON
  cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_driver
  DRIVER="$BUILD_DIR/bench_driver"
  TINY="n=256 trials=1 items=1 searches=3 batches=1 age-taus=0.5"
  SCENARIOS="$("$DRIVER" --list | awk '/^  /{print $1}')"
  [[ -n "$SCENARIOS" ]] || { echo "smoke: no scenarios registered"; exit 1; }
  for sc in $SCENARIOS; do
    EXTRA=""
    case "$sc" in
      capacity)  EXTRA="shard-sweep=1,2 measure-rounds=8" ;;
      chord)     EXTRA="chord=both" ;;
      committee) EXTRA="periods=2" ;;
      mixing)    EXTRA="probes=2000" ;;
      soup)      EXTRA="probes=4" ;;
      soup_step) EXTRA="steps=8 shard-sweep=1,2 counters=true" ;;
      storage)   EXTRA="horizon-taus=2" ;;
      survival)  EXTRA="probes=4" ;;
      churn_limit) EXTRA="steps=2" ;;
    esac
    echo "== smoke: $sc $TINY $EXTRA"
    # shellcheck disable=SC2086
    "$DRIVER" --scenario="$sc" $TINY $EXTRA >/dev/null
  done
  # Observability smoke: the chord scenario with both exporters. Every
  # emitted file must parse — jsonl line by line, the chrome trace as one
  # JSON document (the Perfetto-loadability floor).
  OBS_DIR="$(mktemp -d)"
  trap 'rm -rf "$OBS_DIR"' EXIT
  echo "== smoke: chord $TINY obs=jsonl (and obs=chrome) -> $OBS_DIR"
  # shellcheck disable=SC2086
  "$DRIVER" --scenario=chord $TINY \
    obs=jsonl obs-file="$OBS_DIR/obs.jsonl" trace-sample=1 >/dev/null
  # shellcheck disable=SC2086
  "$DRIVER" --scenario=chord $TINY \
    obs=chrome obs-file="$OBS_DIR/obs_trace.json" >/dev/null
  python3 - "$OBS_DIR" <<'PYEOF'
import glob, json, sys
obs_dir = sys.argv[1]
jsonl = glob.glob(obs_dir + "/obs.*.jsonl")
chrome = glob.glob(obs_dir + "/obs_trace.*.json")
assert jsonl, "obs=jsonl produced no files"
assert chrome, "obs=chrome produced no files"
for path in jsonl:
    summaries = 0
    with open(path) as f:
        for i, line in enumerate(f):
            obj = json.loads(line)  # every line must be valid JSON
            summaries += 1 if obj.get("summary") else 0
    assert summaries == 1, f"{path}: expected exactly one summary line"
for path in chrome:
    with open(path) as f:
        doc = json.load(f)  # the whole file must be one JSON document
    events = doc["traceEvents"]
    assert events, f"{path}: empty traceEvents"
    assert all("ph" in e for e in events), f"{path}: event without ph"
print(f"obs smoke: {len(jsonl)} jsonl + {len(chrome)} chrome files parse")
PYEOF
  echo
  echo "check.sh --smoke: every registered scenario ran at tiny n"
  exit 0
fi

if [[ "$LINT" == "1" ]]; then
  # shardcheck: static enforcement of the ShardContext determinism contract
  # (rule catalog in tools/shardcheck/shardcheck.h, rationale in README).
  # The scan is cross-checked against compile_commands.json: if the CMake
  # glob and the lint walk ever disagree about which .cpp files exist, the
  # run fails instead of silently skipping the new file.
  BUILD_DIR="${BUILD_DIR:-build}"
  cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
    -DCHURNSTORE_WARNINGS_AS_ERRORS=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build "$BUILD_DIR" -j "$JOBS" --target shardcheck
  "$BUILD_DIR"/shardcheck --root=. \
    --compile-commands="$BUILD_DIR"/compile_commands.json src bench tests
  echo
  echo "check.sh --lint: shardcheck clean (0 unsuppressed diagnostics)"
  exit 0
fi

if [[ "$ASAN" == "1" ]]; then
  # ASan+UBSan build: every arena-backed container (SmallVec message
  # words/blobs, sample cohort blocks, token queues, outbox lanes) is
  # exercised by the sharded suite; leaks (blocks that never return to
  # their arena) and lifetime/UB bugs fail the run.
  BUILD_DIR="${BUILD_DIR:-build-asan}"
  cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
    -DCHURNSTORE_WARNINGS_AS_ERRORS=ON -DCHURNSTORE_ASAN=ON
  cmake --build "$BUILD_DIR" -j "$JOBS" --target churnstore_tests
  ASAN_OPTIONS="detect_leaks=1:halt_on_error=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "$BUILD_DIR"/churnstore_tests --gtest_filter="$SANITIZED_FILTER"
  echo
  echo "check.sh --asan: arena-backed containers leak/UB-free"
  exit 0
fi

if [[ "$TSAN" == "1" ]]; then
  # TSan build: only the concurrency-sensitive tests are worth the ~10x
  # slowdown — the sharded engine suite drives every protocol's round path
  # and the message dispatch across a real ThreadPool.
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
    -DCHURNSTORE_WARNINGS_AS_ERRORS=ON -DCHURNSTORE_TSAN=ON
  cmake --build "$BUILD_DIR" -j "$JOBS" --target churnstore_tests
  TSAN_OPTIONS="halt_on_error=1" \
    "$BUILD_DIR"/churnstore_tests --gtest_filter="$SANITIZED_FILTER"
  echo
  echo "check.sh --tsan: sharded engine race-free"
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-build}"
cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
  -DCHURNSTORE_WARNINGS_AS_ERRORS=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo
echo "check.sh: build + tests green"
