#!/usr/bin/env python3
"""Benchmark regression gate (throughput + maxrss) and speedup restitcher.

Gate mode (default): runs a fresh `bench_driver` scenario at the gate size
and compares each (n, shards) row against the checked-in baseline JSON
(BENCH_soup_step.json or BENCH_capacity.json):

  * throughput (Mtokens/sec for soup_step, rounds/sec for capacity) must not
    drop more than --threshold (default 20%),
  * maxrss MB must not rise more than --rss-threshold (default 10%).

Throughput was recorded on a specific host, so cross-host runs (CI) can
drift for reasons that are not code regressions — the CI throughput step is
non-blocking (continue-on-error) and exists to surface the diff in the job
log. Memory, however, is a property of the code, not the host: the CI
maxrss step (--gate maxrss) IS blocking. On the baseline host both gates
are real:

    python3 scripts/bench_diff.py                      # soup_step, both gates
    python3 scripts/bench_diff.py --scenario capacity  # capacity bench
    python3 scripts/bench_diff.py --gate maxrss        # memory only (CI)

Restitch mode: BENCH rows that were produced one process per row (the n=1M
rows are stitched like that to keep each run inside the memory budget)
self-baseline their `speedup` column to 1.00. `--restitch FILE` recomputes
speedup within each n group against that group's first row (the sweep's
baseline shard count) and rewrites the file in place, preserving the
one-row-per-line layout:

    python3 scripts/bench_diff.py --restitch BENCH_soup_step.json
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

SCENARIOS = {
    "soup_step": {
        "baseline": "BENCH_soup_step.json",
        "metric": "Mtokens/sec",
        "extra": [],
    },
    "capacity": {
        "baseline": "BENCH_capacity.json",
        "metric": "rounds/sec",
        "extra": [],
    },
}

SPEEDUP_BASIS = {"soup_step": "steps/sec", "capacity": "rounds/sec"}


def load_rows(text: str):
    """Parse the driver's json=true output (a JSON array of row objects)."""
    rows = json.loads(text)
    if not isinstance(rows, list):
        raise ValueError("expected a JSON array of benchmark rows")
    return {(int(r["n"]), int(r["shards"])): r for r in rows}


def dump_rows(rows) -> str:
    """One row object per line — the layout the BENCH files are kept in."""
    lines = ",\n".join("  " + json.dumps(r) for r in rows)
    return "[\n" + lines + "\n]\n"


def restitch(path: Path) -> int:
    rows = json.loads(path.read_text())
    if not isinstance(rows, list):
        print(f"restitch: {path} is not a JSON array", file=sys.stderr)
        return 2
    basis = None
    for key in SPEEDUP_BASIS.values():
        if rows and key in rows[0]:
            basis = key
            break
    if basis is None:
        print(f"restitch: no speedup basis column in {path}", file=sys.stderr)
        return 2
    group_base = {}
    changed = 0
    for r in rows:
        n = int(r["n"])
        sps = float(r[basis])
        if n not in group_base:
            group_base[n] = sps
        new = round(sps / group_base[n], 2) if group_base[n] > 0 else 0.0
        if r.get("speedup") != new:
            r["speedup"] = new
            changed += 1
    path.write_text(dump_rows(rows))
    print(f"restitch: {path.name}: speedup recomputed from {basis}, "
          f"{changed} row(s) updated")
    return 0


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("--driver", default=str(repo / "build" / "bench_driver"))
    ap.add_argument("--scenario", choices=sorted(SCENARIOS), default="soup_step")
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON (default: the scenario's BENCH file)")
    ap.add_argument("--n", type=int, default=16384)
    ap.add_argument("--shard-sweep", default="1,4,16")
    ap.add_argument("--steps", type=int, default=64,
                    help="timed rounds (soup_step only)")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="max tolerated fractional throughput drop per row",
    )
    ap.add_argument(
        "--rss-threshold",
        type=float,
        default=0.10,
        help="max tolerated fractional maxrss increase per row",
    )
    ap.add_argument(
        "--gate",
        choices=["throughput", "maxrss", "both"],
        default="both",
        help="which comparisons can fail the run (CI runs maxrss blocking, "
        "throughput non-blocking)",
    )
    ap.add_argument(
        "--advisory",
        action="store_true",
        help="report out-of-tolerance rows but exit 0 (used by the "
        "observability-overhead check: tracing-disabled soup_step should "
        "stay within --threshold 0.02 of BENCH_soup_step.json, but "
        "cross-host throughput noise must not block)",
    )
    ap.add_argument(
        "--restitch",
        metavar="FILE",
        default=None,
        help="recompute the speedup column of a stitched BENCH file in "
        "place and exit (no benchmark run)",
    )
    args = ap.parse_args()

    if args.restitch is not None:
        return restitch(Path(args.restitch))

    scen = SCENARIOS[args.scenario]
    metric = scen["metric"]
    baseline_path = Path(args.baseline) if args.baseline else repo / scen["baseline"]
    baseline = load_rows(baseline_path.read_text())
    cmd = [
        args.driver,
        f"--scenario={args.scenario}",
        f"n={args.n}",
        f"shard-sweep={args.shard_sweep}",
        "json=true",
    ]
    if args.scenario == "soup_step":
        cmd.append(f"steps={args.steps}")
    cmd += scen["extra"]
    print("+", " ".join(cmd), flush=True)
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    fresh = load_rows(out.stdout)

    failed = []
    compared = 0
    print(
        f"{'n':>8} {'shards':>6} {'base ' + metric:>16} {'fresh':>10} "
        f"{'delta':>8} {'base rss':>9} {'fresh':>8} {'delta':>8}"
    )
    for key, row in sorted(fresh.items()):
        base_row = baseline.get(key)
        if base_row is None or key[0] != args.n:
            continue
        compared += 1
        old = float(base_row[metric])
        new = float(row[metric])
        delta = (new - old) / old if old > 0 else 0.0
        old_rss = float(base_row.get("maxrss MB", 0.0))
        new_rss = float(row.get("maxrss MB", 0.0))
        rss_delta = (new_rss - old_rss) / old_rss if old_rss > 0 else 0.0
        flags = []
        if args.gate in ("throughput", "both") and delta < -args.threshold:
            failed.append((key, metric, old, new, delta))
            flags.append("THROUGHPUT")
        if args.gate in ("maxrss", "both") and rss_delta > args.rss_threshold:
            failed.append((key, "maxrss MB", old_rss, new_rss, rss_delta))
            flags.append("MAXRSS")
        flag = ("  << " + "+".join(flags)) if flags else ""
        print(
            f"{key[0]:>8} {key[1]:>6} {old:>16.2f} {new:>10.2f} "
            f"{delta:>+7.1%} {old_rss:>9.1f} {new_rss:>8.1f} "
            f"{rss_delta:>+7.1%}{flag}"
        )

    if compared == 0:
        print(
            f"bench_diff: no baseline rows at n={args.n} in {baseline_path.name}",
            file=sys.stderr,
        )
        return 2
    if failed:
        for key, what, old, new, delta in failed:
            print(
                f"bench_diff: {args.scenario} n={key[0]} shards={key[1]} "
                f"{what}: {old:.2f} -> {new:.2f} ({delta:+.1%})",
                file=sys.stderr,
            )
        print(
            f"bench_diff: {len(failed)} comparison(s) outside tolerance "
            f"(throughput -{args.threshold:.0%} / maxrss +{args.rss_threshold:.0%})",
            file=sys.stderr,
        )
        if args.advisory:
            print("bench_diff: --advisory: reporting only, not failing",
                  file=sys.stderr)
            return 0
        return 1
    print(
        f"bench_diff: {compared} row(s) within tolerance "
        f"(throughput -{args.threshold:.0%} / maxrss +{args.rss_threshold:.0%}, "
        f"gate={args.gate})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
