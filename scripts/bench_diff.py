#!/usr/bin/env python3
"""Soup-step throughput regression gate.

Runs a fresh `bench_driver --scenario=soup_step` at the gate size and
compares Mtokens/sec per (n, shards) row against the checked-in
BENCH_soup_step.json baseline. Exits nonzero if any row regresses by more
than the threshold (default 20%).

The baseline was recorded on a specific host, so cross-host runs (CI) can
drift for reasons that are not code regressions — the CI step that invokes
this is non-blocking (continue-on-error) and exists to surface the diff in
the job log, not to gate merges. On the baseline host it is a real gate:

    python3 scripts/bench_diff.py                  # n=16384, 20% threshold
    python3 scripts/bench_diff.py --threshold 0.1 --steps 128
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path


def load_rows(text: str):
    """Parse the driver's json=true output (a JSON array of row objects)."""
    rows = json.loads(text)
    if not isinstance(rows, list):
        raise ValueError("expected a JSON array of benchmark rows")
    return {(int(r["n"]), int(r["shards"])): r for r in rows}


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--driver", default=str(repo / "build" / "bench_driver"))
    ap.add_argument("--baseline", default=str(repo / "BENCH_soup_step.json"))
    ap.add_argument("--n", type=int, default=16384)
    ap.add_argument("--shard-sweep", default="1,4,16")
    ap.add_argument("--steps", type=int, default=64)
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="max tolerated fractional Mtokens/sec drop per row",
    )
    args = ap.parse_args()

    baseline = load_rows(Path(args.baseline).read_text())
    cmd = [
        args.driver,
        "--scenario=soup_step",
        f"n={args.n}",
        f"shard-sweep={args.shard_sweep}",
        f"steps={args.steps}",
        "json=true",
    ]
    print("+", " ".join(cmd), flush=True)
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    fresh = load_rows(out.stdout)

    failed = []
    compared = 0
    print(f"{'n':>8} {'shards':>6} {'baseline':>10} {'fresh':>10} {'delta':>8}")
    for key, row in sorted(fresh.items()):
        base_row = baseline.get(key)
        if base_row is None or key[0] != args.n:
            continue
        compared += 1
        old = float(base_row["Mtokens/sec"])
        new = float(row["Mtokens/sec"])
        delta = (new - old) / old if old > 0 else 0.0
        flag = ""
        if delta < -args.threshold:
            failed.append((key, old, new, delta))
            flag = "  << REGRESSION"
        print(
            f"{key[0]:>8} {key[1]:>6} {old:>10.2f} {new:>10.2f} "
            f"{delta:>+7.1%}{flag}"
        )

    if compared == 0:
        print(f"bench_diff: no baseline rows at n={args.n}", file=sys.stderr)
        return 2
    if failed:
        print(
            f"bench_diff: {len(failed)} row(s) regressed more than "
            f"{args.threshold:.0%} (Mtokens/sec)",
            file=sys.stderr,
        )
        return 1
    print(f"bench_diff: {compared} row(s) within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
