// The sharded deterministic round engine's core contract: the SAME seed
// produces BIT-IDENTICAL protocol state and results for EVERY shard count,
// serial or on a ThreadPool. Sharding is an execution detail, never a model
// parameter.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <tuple>
#include <vector>

#include "core/experiment.h"
#include "core/runner.h"
#include "core/system.h"
#include "net/network.h"
#include "util/sharding.h"
#include "util/thread_pool.h"
#include "walk/token_soup.h"

namespace churnstore {
namespace {

TEST(ShardPlan, ContiguousRangesPartitionTheVertexSet) {
  for (const std::uint32_t n : {1u, 7u, 64u, 1000u}) {
    for (const std::uint32_t count : {1u, 2u, 3u, 16u, 64u, 2000u}) {
      const ShardPlan plan(n, count);
      EXPECT_LE(plan.count(), std::max(n, 1u));
      EXPECT_EQ(plan.begin(0), 0u);
      EXPECT_EQ(plan.end(plan.count() - 1), n);
      for (std::uint32_t s = 0; s + 1 < plan.count(); ++s) {
        EXPECT_EQ(plan.end(s), plan.begin(s + 1));
        EXPECT_LT(plan.begin(s), plan.end(s)) << "empty shard";
      }
      for (std::uint32_t v = 0; v < n; ++v) {
        const std::uint32_t s = plan.shard_of(v);
        EXPECT_GE(v, plan.begin(s));
        EXPECT_LT(v, plan.end(s));
      }
    }
  }
}

TEST(ThreadPoolHelping, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.for_each_helping(hits.size(),
                        [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolHelping, RethrowsTaskExceptionsInsteadOfHanging) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.for_each_helping(16,
                                     [&ran](std::size_t i) {
                                       ++ran;
                                       if (i == 5) {
                                         throw std::runtime_error("boom");
                                       }
                                     }),
               std::runtime_error);
  // The barrier still completed: every index ran despite the throw.
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolHelping, NestsInsideTheSamePoolWithoutDeadlock) {
  // Outer tasks saturate a tiny pool; each runs an inner for_each_helping
  // on the SAME pool. The caller-helps design means the inner loops finish
  // even though no worker is ever free to pick up their helper tasks.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&pool, &total](std::size_t) {
    pool.for_each_helping(16, [&total](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

SimConfig soup_config(std::uint32_t n, std::uint32_t shards) {
  SimConfig c;
  c.n = n;
  c.degree = 8;
  c.seed = 17;
  c.churn.kind = AdversaryKind::kUniform;
  c.churn.absolute = n / 16;
  c.edge_dynamics = EdgeDynamics::kRewire;
  c.shards = shards;
  return c;
}

using ProbeLog = std::vector<std::tuple<std::uint64_t, Vertex, Round>>;

/// Runs the soup for 3 tau rounds under churn (plus a few probes) and
/// captures everything observable: per-vertex sample buffers (exact order),
/// live token count, metric counters, probe completions in hook order.
struct SoupRun {
  std::vector<SampleBuffer> samples;
  std::size_t tokens_alive = 0;
  std::uint64_t completed = 0, lost = 0, queued = 0, spawned = 0;
  RunningStat max_bits;
  ProbeLog probes;
};

SoupRun run_soup(std::uint32_t n, std::uint32_t shards, ThreadPool* pool) {
  Network net(soup_config(n, shards));
  net.set_worker_pool(pool);
  TokenSoup soup(net, WalkConfig{});
  SoupRun run;
  soup.set_probe_hook([&run](std::uint64_t tag, Vertex dst, Round r) {
    run.probes.emplace_back(tag, dst, r);
  });
  const std::uint32_t rounds = 3 * soup.tau();
  for (std::uint32_t i = 0; i < rounds; ++i) {
    net.begin_round();
    if (i == 1) {
      for (Vertex v = 0; v < n; v += 7) soup.inject_probe(v, v, 6);
    }
    soup.step();
    net.deliver();
  }
  for (Vertex v = 0; v < n; ++v) run.samples.push_back(soup.samples(v));
  run.tokens_alive = soup.tokens_alive();
  run.completed = net.metrics().tokens_completed();
  run.lost = net.metrics().tokens_lost();
  run.queued = net.metrics().tokens_queued();
  run.spawned = net.metrics().tokens_spawned();
  run.max_bits = net.metrics().max_bits_per_node_round();
  return run;
}

void expect_identical(const SoupRun& a, const SoupRun& b) {
  EXPECT_EQ(a.tokens_alive, b.tokens_alive);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.queued, b.queued);
  EXPECT_EQ(a.spawned, b.spawned);
  EXPECT_DOUBLE_EQ(a.max_bits.mean(), b.max_bits.mean());
  EXPECT_DOUBLE_EQ(a.max_bits.max(), b.max_bits.max());
  EXPECT_EQ(a.probes, b.probes) << "probe hooks fired in a different order";
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t v = 0; v < a.samples.size(); ++v) {
    EXPECT_TRUE(a.samples[v] == b.samples[v])
        << "sample buffer diverged at vertex " << v;
  }
}

TEST(ShardedSoup, SerialShardCountsAreBitIdentical) {
  // shards=1 vs shards=16, both serial: the partition itself must not
  // change anything.
  const SoupRun s1 = run_soup(192, 1, nullptr);
  const SoupRun s16 = run_soup(192, 16, nullptr);
  ASSERT_GT(s1.completed, 0u);
  ASSERT_FALSE(s1.probes.empty());
  expect_identical(s1, s16);
}

TEST(ShardedSoup, ThreadPoolExecutionIsBitIdentical) {
  // shards=16 on a real pool vs shards=1 serial: concurrent execution with
  // cross-shard merges must reproduce the serial run bit for bit.
  ThreadPool pool(4);
  const SoupRun s1 = run_soup(192, 1, nullptr);
  const SoupRun s16 = run_soup(192, 16, &pool);
  expect_identical(s1, s16);
}

TEST(ShardedSoup, UnevenShardCountIsBitIdentical) {
  ThreadPool pool(3);
  const SoupRun a = run_soup(190, 1, nullptr);   // 190 % 7 != 0
  const SoupRun b = run_soup(190, 7, &pool);
  expect_identical(a, b);
}

TEST(ShardedOutbox, LanesMergeInCanonicalOrderAndChargeSenders) {
  SimConfig cfg = soup_config(64, 4);
  cfg.churn.kind = AdversaryKind::kNone;
  Network net(cfg);
  net.begin_round();
  const PeerId dst = net.peer_at(5);
  auto make = [&](std::uint64_t word) {
    Message m;
    m.src = net.peer_at(0);
    m.dst = dst;
    m.type = MsgType::kProbe;
    m.words = {word};
    return m;
  };
  // Stage out of lane order (as concurrent shards would), plus one serial
  // send, which must come first.
  net.send_sharded(2, /*from=*/40, make(22));
  net.send_sharded(0, /*from=*/1, make(20));
  net.send(0, make(10));
  net.send_sharded(2, /*from=*/41, make(23));
  net.send_sharded(3, /*from=*/60, make(30));
  net.deliver();
  const auto& box = net.inbox(5);
  ASSERT_EQ(box.size(), 5u);
  EXPECT_EQ(box[0].words[0], 10u);  // serial outbox first
  EXPECT_EQ(box[1].words[0], 20u);  // then lanes in ascending shard order
  EXPECT_EQ(box[2].words[0], 22u);
  EXPECT_EQ(box[3].words[0], 23u);
  EXPECT_EQ(box[4].words[0], 30u);
  EXPECT_EQ(net.metrics().total_messages(), 5u);
}

ScenarioSpec sharded_spec(std::uint32_t shards) {
  ScenarioSpec spec = ScenarioSpec::from_cli(
      Cli({"n=128", "trials=2", "items=1", "searches=3", "batches=1",
           "age-taus=1"}));
  spec.shards = shards;
  return spec;
}

void expect_identical_results(const StoreSearchResult& a,
                              const StoreSearchResult& b) {
  EXPECT_EQ(a.searches, b.searches);
  EXPECT_EQ(a.located, b.located);
  EXPECT_EQ(a.fetched, b.fetched);
  EXPECT_EQ(a.censored, b.censored);
  EXPECT_DOUBLE_EQ(a.locate_rounds.mean(), b.locate_rounds.mean());
  EXPECT_DOUBLE_EQ(a.copies_alive.mean(), b.copies_alive.mean());
  EXPECT_DOUBLE_EQ(a.availability.mean(), b.availability.mean());
  EXPECT_DOUBLE_EQ(a.bits_node_round_max.mean(), b.bits_node_round_max.mean());
  EXPECT_DOUBLE_EQ(a.bits_node_round_mean.mean(),
                   b.bits_node_round_mean.mean());
}

TEST(ShardedRunner, FullStackStoreSearchIsShardCountInvariant) {
  // End to end through Runner: serial unsharded vs 16 shards nested on the
  // trial pool. The paper stack's behavior (committees, landmarks, search)
  // all sits downstream of the soup's samples, so bit-identity here means
  // the whole round path is shard-invariant.
  Runner serial(RunnerOptions{.threads = 1, .parallel = false});
  Runner nested(RunnerOptions{.threads = 4, .parallel = true});
  const StoreSearchResult a = serial.store_search(sharded_spec(1));
  const StoreSearchResult b = nested.store_search(sharded_spec(16));
  EXPECT_GT(a.searches, 0u);
  expect_identical_results(a, b);
}

TEST(KvWorkload, RunsAndIsDeterministic) {
  ScenarioSpec spec = sharded_spec(1);
  spec.workload_kind = "kv";
  const StoreSearchResult a = run_store_search_trial(spec);
  const StoreSearchResult b = run_store_search_trial(spec);
  EXPECT_GT(a.searches, 0u);
  EXPECT_GT(a.fetched, 0u) << "kv gets never completed";
  EXPECT_EQ(a.located, a.fetched) << "kv reports verified fetches only";
  expect_identical_results(a, b);
}

TEST(KvWorkload, ShardCountInvariantThroughTheRunner) {
  ScenarioSpec s1 = sharded_spec(1);
  s1.workload_kind = "kv";
  ScenarioSpec s16 = sharded_spec(16);
  s16.workload_kind = "kv";
  Runner serial(RunnerOptions{.threads = 1, .parallel = false});
  Runner nested(RunnerOptions{.threads = 4, .parallel = true});
  expect_identical_results(serial.store_search(s1), nested.store_search(s16));
}

TEST(KvWorkload, RejectsBaselineStacks) {
  ScenarioSpec spec = sharded_spec(1);
  spec.workload_kind = "kv";
  spec.protocol = "flooding";
  EXPECT_THROW((void)run_store_search_trial(spec), std::invalid_argument);
}

TEST(ScenarioSpec, ShardsAndWorkloadRoundTrip) {
  ScenarioSpec spec;
  spec.shards = 16;
  spec.workload_kind = "kv";
  const ScenarioSpec back = ScenarioSpec::from_cli(Cli(spec.to_key_values()));
  EXPECT_EQ(back.shards, 16u);
  EXPECT_EQ(back.workload_kind, "kv");
  EXPECT_EQ(back.system_config().sim.shards, 16u);
}

}  // namespace
}  // namespace churnstore
