// The sharded deterministic round engine's core contract: the SAME seed
// produces BIT-IDENTICAL protocol state and results for EVERY shard count,
// serial or on a ThreadPool. Sharding is an execution detail, never a model
// parameter.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <tuple>
#include <vector>

#include "baseline/chord_net/chord_net.h"
#include "core/experiment.h"
#include "obs/trace.h"
#include "core/runner.h"
#include "core/system.h"
#include "net/network.h"
#include "storage/item.h"
#include "util/rng.h"
#include "util/sharding.h"
#include "util/thread_pool.h"
#include "walk/token_soup.h"

namespace churnstore {
namespace {

TEST(ShardPlan, ContiguousRangesPartitionTheVertexSet) {
  for (const std::uint32_t n : {1u, 7u, 64u, 1000u}) {
    for (const std::uint32_t count : {1u, 2u, 3u, 16u, 64u, 2000u}) {
      const ShardPlan plan(n, count);
      EXPECT_LE(plan.count(), std::max(n, 1u));
      EXPECT_EQ(plan.begin(0), 0u);
      EXPECT_EQ(plan.end(plan.count() - 1), n);
      for (std::uint32_t s = 0; s + 1 < plan.count(); ++s) {
        EXPECT_EQ(plan.end(s), plan.begin(s + 1));
        EXPECT_LT(plan.begin(s), plan.end(s)) << "empty shard";
      }
      for (std::uint32_t v = 0; v < n; ++v) {
        const std::uint32_t s = plan.shard_of(v);
        EXPECT_GE(v, plan.begin(s));
        EXPECT_LT(v, plan.end(s));
      }
    }
  }
}

TEST(ShardPlan, FastDivisionIsExactForEveryTestedDivisor) {
  // shard_of runs once per moving token, so it uses the Granlund-Montgomery
  // multiply-shift (FastDiv32) instead of a hardware divide. The method is
  // exact for ALL 32-bit numerators when the magic constant is the round-up
  // of 2^(32+ceil(log2 d))/d; pin that against the boundary values where an
  // off-by-one magic would first show (multiples of d and their neighbors,
  // plus the extremes of the 32-bit range).
  Rng rng(2026);
  std::vector<std::uint32_t> divisors = {1,       2,       3,      4,    5,
                                         6,       7,       9,      16,   17,
                                         31,      32,      33,     100,  255,
                                         256,     257,     1000,   4095, 65535,
                                         65536,   65537,   1u << 20};
  for (int i = 0; i < 50; ++i) {
    divisors.push_back(1 + static_cast<std::uint32_t>(rng.next_below(1u << 24)));
  }
  const std::uint32_t kMax = 0xffffffffu;
  for (const std::uint32_t d : divisors) {
    const FastDiv32 f(d);
    std::vector<std::uint64_t> values = {0, 1, d - 1, d, d + 1,
                                         2ull * d - 1, 2ull * d,
                                         kMax - 1, kMax, kMax / d * d,
                                         kMax / d * d - 1};
    for (int i = 0; i < 200; ++i) values.push_back(rng.next_below(1ull << 32));
    for (const std::uint64_t v64 : values) {
      if (v64 > kMax) continue;
      const auto v = static_cast<std::uint32_t>(v64);
      ASSERT_EQ(f.divide(v), v / d) << "v=" << v << " d=" << d;
    }
  }
  // Default-constructed: identity (divide by 1), used by empty plans.
  EXPECT_EQ(FastDiv32{}.divide(12345u), 12345u);
}

TEST(ThreadPoolHelping, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.for_each_helping(hits.size(),
                        [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolHelping, RethrowsTaskExceptionsInsteadOfHanging) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.for_each_helping(16,
                                     [&ran](std::size_t i) {
                                       ++ran;
                                       if (i == 5) {
                                         throw std::runtime_error("boom");
                                       }
                                     }),
               std::runtime_error);
  // The barrier still completed: every index ran despite the throw.
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolHelping, NestsInsideTheSamePoolWithoutDeadlock) {
  // Outer tasks saturate a tiny pool; each runs an inner for_each_helping
  // on the SAME pool. The caller-helps design means the inner loops finish
  // even though no worker is ever free to pick up their helper tasks.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&pool, &total](std::size_t) {
    pool.for_each_helping(16, [&total](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

SimConfig soup_config(std::uint32_t n, std::uint32_t shards) {
  SimConfig c;
  c.n = n;
  c.degree = 8;
  c.seed = 17;
  c.churn.kind = AdversaryKind::kUniform;
  c.churn.absolute = n / 16;
  c.edge_dynamics = EdgeDynamics::kRewire;
  c.shards = shards;
  return c;
}

using ProbeLog = std::vector<std::tuple<std::uint64_t, Vertex, Round>>;

/// Runs the soup for 3 tau rounds under churn (plus a few probes) and
/// captures everything observable: per-vertex sample buffers (exact order),
/// live token count, metric counters, probe completions in hook order.
struct SoupRun {
  std::vector<SampleBuffer> samples;
  std::size_t tokens_alive = 0;
  std::uint64_t completed = 0, lost = 0, queued = 0, spawned = 0;
  RunningStat max_bits;
  ProbeLog probes;
};

SoupRun run_soup(std::uint32_t n, std::uint32_t shards, ThreadPool* pool,
                 const WalkConfig& walk = WalkConfig{}) {
  Network net(soup_config(n, shards));
  net.set_worker_pool(pool);
  TokenSoup soup(net, walk);
  SoupRun run;
  soup.set_probe_hook([&run](std::uint64_t tag, Vertex dst, Round r) {
    run.probes.emplace_back(tag, dst, r);
  });
  const std::uint32_t rounds = 3 * soup.tau();
  for (std::uint32_t i = 0; i < rounds; ++i) {
    net.begin_round();
    if (i == 1) {
      for (Vertex v = 0; v < n; v += 7) soup.inject_probe(v, v, 6);
    }
    soup.step();
    net.deliver();
  }
  for (Vertex v = 0; v < n; ++v) run.samples.push_back(soup.samples(v));
  run.tokens_alive = soup.tokens_alive();
  run.completed = net.metrics().tokens_completed();
  run.lost = net.metrics().tokens_lost();
  run.queued = net.metrics().tokens_queued();
  run.spawned = net.metrics().tokens_spawned();
  run.max_bits = net.metrics().max_bits_per_node_round();
  return run;
}

void expect_identical(const SoupRun& a, const SoupRun& b) {
  EXPECT_EQ(a.tokens_alive, b.tokens_alive);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.queued, b.queued);
  EXPECT_EQ(a.spawned, b.spawned);
  EXPECT_DOUBLE_EQ(a.max_bits.mean(), b.max_bits.mean());
  EXPECT_DOUBLE_EQ(a.max_bits.max(), b.max_bits.max());
  EXPECT_EQ(a.probes, b.probes) << "probe hooks fired in a different order";
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t v = 0; v < a.samples.size(); ++v) {
    EXPECT_TRUE(a.samples[v] == b.samples[v])
        << "sample buffer diverged at vertex " << v;
  }
}

TEST(ShardedSoup, SerialShardCountsAreBitIdentical) {
  // shards=1 vs shards=16, both serial: the partition itself must not
  // change anything.
  const SoupRun s1 = run_soup(192, 1, nullptr);
  const SoupRun s16 = run_soup(192, 16, nullptr);
  ASSERT_GT(s1.completed, 0u);
  ASSERT_FALSE(s1.probes.empty());
  expect_identical(s1, s16);
}

TEST(ShardedSoup, ThreadPoolExecutionIsBitIdentical) {
  // shards=16 on a real pool vs shards=1 serial: concurrent execution with
  // cross-shard merges must reproduce the serial run bit for bit.
  ThreadPool pool(4);
  const SoupRun s1 = run_soup(192, 1, nullptr);
  const SoupRun s16 = run_soup(192, 16, &pool);
  expect_identical(s1, s16);
}

TEST(ShardedSoup, UnevenShardCountIsBitIdentical) {
  ThreadPool pool(3);
  const SoupRun a = run_soup(190, 1, nullptr);   // 190 % 7 != 0
  const SoupRun b = run_soup(190, 7, &pool);
  expect_identical(a, b);
}

TEST(SampleCohorts, BuffersAreBitIdenticalForSInOneThreeSixteen) {
  // The cohort representation (shared exact-size arena blocks per
  // (round, vertex) cohort) must be invisible: whole-buffer equality —
  // group rounds, sizes, AND per-group insertion order — across S in
  // {1, 3, 16}, serial and pooled.
  ThreadPool pool(4);
  const SoupRun s1 = run_soup(192, 1, nullptr);
  const SoupRun s3 = run_soup(192, 3, &pool);
  const SoupRun s16 = run_soup(192, 16, &pool);
  ASSERT_GT(s1.completed, 0u);
  expect_identical(s1, s3);
  expect_identical(s1, s16);
}

TEST(ShardedWcScatter, EveryScatterModeIsBitIdenticalAcrossShardCounts) {
  // The scatter strategy (direct pushes, single-level WC staging, two-level
  // run demux) is a pure execution detail: every mode, at every shard
  // count, serial or pooled, must reproduce the direct serial run bit for
  // bit — samples, probe hook order, metrics, everything observable.
  ThreadPool pool(4);
  WalkConfig direct;
  direct.scatter = ScatterMode::kDirect;
  WalkConfig single;
  single.scatter = ScatterMode::kWcSingle;
  WalkConfig two;
  two.scatter = ScatterMode::kWcTwoLevel;
  const SoupRun ref = run_soup(192, 1, nullptr, direct);
  ASSERT_GT(ref.completed, 0u);
  ASSERT_FALSE(ref.probes.empty());
  expect_identical(ref, run_soup(192, 1, nullptr, single));
  expect_identical(ref, run_soup(192, 1, nullptr, two));
  expect_identical(ref, run_soup(192, 3, &pool, two));
  expect_identical(ref, run_soup(192, 16, &pool, two));
}

TEST(ShardedWcScatter, DenseSoupExercisesRunDemuxAndChunkingBitIdentically) {
  // At test sizes the default density collapses two-level to one page and
  // one chunk. A dense soup (rate_mult=5 at n=1024 -> 8 destination pages,
  // per-shard emission volume above the chunk window) makes the run demux
  // and the chunked source loop real: S=1 runs two chunks per round, S=3
  // runs different chunk boundaries per shard — and chunk boundaries must
  // be invisible, because within a (src shard, page) bucket tokens are
  // appended in ascending source-vertex order no matter where chunks cut.
  ThreadPool pool(3);
  WalkConfig dense_direct;
  dense_direct.rate_mult = 5.0;
  dense_direct.scatter = ScatterMode::kDirect;
  WalkConfig dense_two = dense_direct;
  dense_two.scatter = ScatterMode::kWcTwoLevel;
  const std::uint32_t n = 1024;
  auto run = [&](std::uint32_t shards, ThreadPool* p, const WalkConfig& w) {
    Network net(soup_config(n, shards));
    net.set_worker_pool(p);
    TokenSoup soup(net, w);
    SoupRun out;
    const std::uint32_t rounds = soup.tau() + 4;
    for (std::uint32_t i = 0; i < rounds; ++i) {
      net.begin_round();
      if (i == 1) {
        for (Vertex v = 0; v < n; v += 31) soup.inject_probe(v, v, 5);
      }
      soup.step();
      net.deliver();
    }
    for (Vertex v = 0; v < n; ++v) out.samples.push_back(soup.samples(v));
    out.tokens_alive = soup.tokens_alive();
    out.completed = net.metrics().tokens_completed();
    out.lost = net.metrics().tokens_lost();
    out.queued = net.metrics().tokens_queued();
    out.spawned = net.metrics().tokens_spawned();
    out.max_bits = net.metrics().max_bits_per_node_round();
    return out;
  };
  const SoupRun ref = run(1, nullptr, dense_direct);
  ASSERT_GT(ref.completed, 0u);
  expect_identical(ref, run(1, nullptr, dense_two));
  expect_identical(ref, run(3, &pool, dense_two));
}

TEST(ShardedOutbox, LanesMergeInCanonicalOrderAndChargeSenders) {
  SimConfig cfg = soup_config(64, 4);
  cfg.churn.kind = AdversaryKind::kNone;
  Network net(cfg);
  net.begin_round();
  const PeerId dst = net.peer_at(5);
  auto make = [&](std::uint64_t word) {
    Message m;
    m.src = net.peer_at(0);
    m.dst = dst;
    m.type = MsgType::kProbe;
    m.words = {word};
    return m;
  };
  // Stage out of lane order (as concurrent shards would), plus one serial
  // send, which must come first.
  net.send_sharded(2, /*from=*/40, make(22));
  net.send_sharded(0, /*from=*/1, make(20));
  net.send(0, make(10));
  net.send_sharded(2, /*from=*/41, make(23));
  net.send_sharded(3, /*from=*/60, make(30));
  net.deliver();
  const auto& box = net.inbox(5);
  ASSERT_EQ(box.size(), 5u);
  EXPECT_EQ(box[0].words[0], 10u);  // serial outbox first
  EXPECT_EQ(box[1].words[0], 20u);  // then lanes in ascending shard order
  EXPECT_EQ(box[2].words[0], 22u);
  EXPECT_EQ(box[3].words[0], 23u);
  EXPECT_EQ(box[4].words[0], 30u);
  EXPECT_EQ(net.metrics().total_messages(), 5u);
}

/// Everything observable from a full churnstore-stack run: protocol metric
/// counters, per-search outcomes, god-view item state, and the per-node
/// traffic distribution. Bit-equality of this struct across shard counts is
/// the tentpole contract: committees, landmarks, store, search, and
/// delivery all execute on shard lanes, and none of it may depend on S.
struct StackRun {
  std::uint64_t committees_formed = 0, committees_lost = 0;
  std::uint64_t landmarks_created = 0, landmark_collisions = 0;
  std::uint64_t total_messages = 0, dropped = 0, total_bits = 0;
  std::uint64_t tokens_completed = 0;
  std::vector<std::tuple<Round, Round, bool>> searches;  ///< located/fetched/ok
  std::vector<std::size_t> copies;                       ///< per item
  std::vector<bool> available;
  RunningStat max_bits;
};

StackRun run_full_stack(std::uint32_t n, std::uint32_t shards,
                        ThreadPool* pool, bool erasure) {
  SystemConfig cfg;
  cfg.sim.n = n;
  cfg.sim.degree = 8;
  cfg.sim.seed = 23;
  cfg.sim.churn.kind = AdversaryKind::kUniform;
  cfg.sim.churn.absolute = n / 24;
  cfg.sim.edge_dynamics = EdgeDynamics::kRewire;
  cfg.sim.shards = shards;
  cfg.protocol.use_erasure_coding = erasure;
  P2PSystem sys(cfg);
  sys.set_shard_pool(pool);

  Rng workload(99);
  sys.run_rounds(sys.warmup_rounds());
  std::vector<ItemId> items;
  for (std::uint32_t i = 0; i < 3; ++i) {
    const ItemId item = 1000 + i;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const auto creator = static_cast<Vertex>(workload.next_below(n));
      if (sys.store_item(creator, item)) {
        items.push_back(item);
        break;
      }
      sys.run_round();
    }
  }
  sys.run_rounds(sys.tau());

  std::vector<std::uint64_t> sids;
  for (std::uint32_t i = 0; i < 6 && !items.empty(); ++i) {
    const ItemId item = items[workload.next_below(items.size())];
    const auto initiator = static_cast<Vertex>(workload.next_below(n));
    sids.push_back(sys.search(initiator, item));
  }
  sys.run_rounds(sys.search_timeout() + 4);

  StackRun run;
  const Metrics& m = sys.metrics();
  run.committees_formed = m.committees_formed();
  run.committees_lost = m.committees_lost();
  run.landmarks_created = m.landmarks_created();
  run.landmark_collisions = m.landmark_collisions();
  run.total_messages = m.total_messages();
  run.dropped = m.dropped_messages();
  run.total_bits = m.total_bits();
  run.tokens_completed = m.tokens_completed();
  run.max_bits = m.max_bits_per_node_round();
  for (const std::uint64_t sid : sids) {
    const SearchStatus* st = sys.search_status(sid);
    run.searches.emplace_back(st->located, st->fetched, st->fetch_ok);
  }
  for (const ItemId item : items) {
    run.copies.push_back(sys.store().copies_alive(item));
    run.available.push_back(sys.store().is_available(item));
  }
  return run;
}

void expect_identical(const StackRun& a, const StackRun& b) {
  EXPECT_EQ(a.committees_formed, b.committees_formed);
  EXPECT_EQ(a.committees_lost, b.committees_lost);
  EXPECT_EQ(a.landmarks_created, b.landmarks_created);
  EXPECT_EQ(a.landmark_collisions, b.landmark_collisions);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.tokens_completed, b.tokens_completed);
  EXPECT_DOUBLE_EQ(a.max_bits.mean(), b.max_bits.mean());
  EXPECT_DOUBLE_EQ(a.max_bits.max(), b.max_bits.max());
  EXPECT_EQ(a.searches, b.searches) << "search outcomes diverged";
  EXPECT_EQ(a.copies, b.copies);
  EXPECT_EQ(a.available, b.available);
}

TEST(ShardedFullStack, CommitteesLandmarksSearchAreShardCountInvariant) {
  // The whole churnstore stack — soup, committee refresh cycles, landmark
  // trees, store/search messaging — under churn, S in {1, 3, 16} with a
  // real pool and an uneven shard count (n % 3 != 0, n % 16 != 0).
  ThreadPool pool(4);
  const StackRun s1 = run_full_stack(194, 1, nullptr, false);
  ASSERT_FALSE(s1.searches.empty());
  ASSERT_GT(s1.committees_formed, 0u);
  ASSERT_GT(s1.landmarks_created, 0u);
  std::uint64_t located = 0;
  for (const auto& [loc, fetch, ok] : s1.searches) located += loc >= 0;
  EXPECT_GT(located, 0u) << "no search located anything; test is too weak";
  const StackRun s3 = run_full_stack(194, 3, &pool, false);
  const StackRun s16 = run_full_stack(194, 16, &pool, false);
  expect_identical(s1, s3);
  expect_identical(s1, s16);
}

TEST(BitChargeConservation, TotalsMatchThePreInlineWordRepresentation) {
  // Golden totals recorded with the heap-vector Message representation
  // (before inline words + arena blob spill) on exactly the
  // run_full_stack configs. The storage change must be invisible to the
  // charge model: same total bits, same message count, same drops.
  const StackRun plain = run_full_stack(194, 1, nullptr, false);
  EXPECT_EQ(plain.total_bits, 145997040u);
  EXPECT_EQ(plain.total_messages, 9238u);
  EXPECT_EQ(plain.dropped, 3677u);
  const StackRun erasure = run_full_stack(160, 1, nullptr, true);
  EXPECT_EQ(erasure.total_bits, 156117296u);
  EXPECT_EQ(erasure.total_messages, 32915u);
  EXPECT_EQ(erasure.dropped, 8770u);
}

TEST(ShardedFullStack, ErasureCodedStoreIsShardCountInvariant) {
  // IDA piece exchange rides the committee count/confirm messages; the
  // sharded refresh cycle must reproduce it bit for bit.
  ThreadPool pool(4);
  const StackRun s1 = run_full_stack(160, 1, nullptr, true);
  const StackRun s16 = run_full_stack(160, 16, &pool, true);
  ASSERT_GT(s1.committees_formed, 0u);
  expect_identical(s1, s16);
}

/// Serial-dispatch protocol for the mixed-stack case: consumes kProbe
/// messages (nothing in the paper stack sends or handles them) and records
/// their arrival order. sharded_dispatch() stays at the serial default, so
/// its messages PAUSE at its chain position and drain in canonical order
/// after the sharded pass — while committee/landmark/store/search ahead of
/// it keep dispatching on their shard lanes.
class SerialProbeTap final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "serial-tap";
  }
  void on_round_begin() override {
    for (Vertex v = 0; v < net().n(); v += 37) {
      Message m;
      m.src = net().peer_at(v);
      m.dst = net().peer_at((v + 1) % net().n());
      m.type = MsgType::kProbe;
      m.words = {static_cast<std::uint64_t>(v)};
      net().send(v, std::move(m));
    }
  }
  bool on_message(Vertex v, const Message& m) override {
    if (m.type != MsgType::kProbe) return false;
    ++seen_;
    order_hash_ = mix64(order_hash_ ^ (static_cast<std::uint64_t>(v) << 20) ^
                        m.words[0]);
    return true;
  }
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
  [[nodiscard]] std::uint64_t order_hash() const noexcept {
    return order_hash_;
  }

 private:
  std::uint64_t seen_ = 0;
  std::uint64_t order_hash_ = 0;
};

struct MixedRun {
  StackRun stack;  ///< reuses only the metric fields (no searches driven)
  std::uint64_t tap_seen = 0;
  std::uint64_t tap_order = 0;
  std::uint64_t chord_ok = 0;
  std::uint64_t chord_hops = 0;
  std::uint64_t chord_joins = 0;
};

MixedRun run_mixed_chord_stack(std::uint32_t n, std::uint32_t shards,
                               ThreadPool* pool) {
  SystemConfig cfg;
  cfg.sim.n = n;
  cfg.sim.degree = 8;
  cfg.sim.seed = 41;
  cfg.sim.churn.kind = AdversaryKind::kUniform;
  cfg.sim.churn.absolute = n / 24;
  cfg.sim.edge_dynamics = EdgeDynamics::kRewire;
  cfg.sim.shards = shards;
  auto mods = P2PSystem::paper_protocols(cfg);
  auto chord = std::make_unique<ChordNetProtocol>();
  ChordNetProtocol* chord_raw = chord.get();
  mods.push_back(std::move(chord));
  auto tap = std::make_unique<SerialProbeTap>();
  SerialProbeTap* tap_raw = tap.get();
  mods.push_back(std::move(tap));
  P2PSystem sys(cfg, std::move(mods));
  sys.set_shard_pool(pool);

  Rng workload(55);
  sys.run_rounds(sys.warmup_rounds());
  for (std::uint32_t i = 0; i < 2; ++i) {
    const ItemId item = 2000 + i;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const auto creator = static_cast<Vertex>(workload.next_below(n));
      if (sys.store_item(creator, item)) break;
      sys.run_round();
    }
  }
  // Chord traffic rides the same rounds: puts + gets through the DHT while
  // the paper stack stores and the serial tap probes.
  std::vector<std::uint64_t> chord_sids;
  for (std::uint32_t i = 0; i < 2; ++i) {
    const ItemId item = mix64(4000 + i) | 1;
    if (chord_raw->put(static_cast<Vertex>(workload.next_below(n)), item,
                       make_payload(item, 512))) {
      chord_sids.push_back(
          chord_raw->get(static_cast<Vertex>(workload.next_below(n)), item));
    }
  }
  sys.run_rounds(2 * sys.tau());

  MixedRun run;
  const Metrics& m = sys.metrics();
  run.stack.committees_formed = m.committees_formed();
  run.stack.landmarks_created = m.landmarks_created();
  run.stack.total_messages = m.total_messages();
  run.stack.dropped = m.dropped_messages();
  run.stack.total_bits = m.total_bits();
  run.stack.tokens_completed = m.tokens_completed();
  run.stack.max_bits = m.max_bits_per_node_round();
  run.tap_seen = tap_raw->seen();
  run.tap_order = tap_raw->order_hash();
  run.chord_ok = chord_raw->stats().searches_ok;
  run.chord_hops = chord_raw->stats().hop_messages;
  run.chord_joins = chord_raw->stats().joins_completed;
  return run;
}

TEST(MixedDispatchStack, ChordNetPlusChurnstoreRunsFullyShardedAndInvariant) {
  // chord=net is a fully sharded protocol (round AND dispatch), so the old
  // serial carve-out is gone: in a mixed stack only the serial tap's probes
  // drain serially, while churnstore AND chord handlers run on shard lanes.
  // Everything — metrics, tap count/ORDER, chord lookup counters — must be
  // bit-identical for S in {1, 3, 16}, serial or pooled.
  ThreadPool pool(4);
  const MixedRun s1 = run_mixed_chord_stack(194, 1, nullptr);
  ASSERT_GT(s1.tap_seen, 0u) << "serial tap never saw its probes";
  ASSERT_GT(s1.stack.committees_formed, 0u);
  ASSERT_GT(s1.chord_hops, 0u) << "no chord routing traffic; mixed case weak";
  ASSERT_GT(s1.stack.total_messages, s1.tap_seen)
      << "no sharded-protocol traffic; the mixed case is vacuous";
  const MixedRun s3 = run_mixed_chord_stack(194, 3, &pool);
  const MixedRun s16 = run_mixed_chord_stack(194, 16, &pool);
  for (const MixedRun* other : {&s3, &s16}) {
    EXPECT_EQ(s1.tap_seen, other->tap_seen);
    EXPECT_EQ(s1.tap_order, other->tap_order)
        << "serial continuation ran in a shard-count-dependent order";
    EXPECT_EQ(s1.chord_ok, other->chord_ok);
    EXPECT_EQ(s1.chord_hops, other->chord_hops);
    EXPECT_EQ(s1.chord_joins, other->chord_joins);
    EXPECT_EQ(s1.stack.committees_formed, other->stack.committees_formed);
    EXPECT_EQ(s1.stack.landmarks_created, other->stack.landmarks_created);
    EXPECT_EQ(s1.stack.total_messages, other->stack.total_messages);
    EXPECT_EQ(s1.stack.dropped, other->stack.dropped);
    EXPECT_EQ(s1.stack.total_bits, other->stack.total_bits);
    EXPECT_EQ(s1.stack.tokens_completed, other->stack.tokens_completed);
    EXPECT_DOUBLE_EQ(s1.stack.max_bits.mean(), other->stack.max_bits.mean());
    EXPECT_DOUBLE_EQ(s1.stack.max_bits.max(), other->stack.max_bits.max());
  }
}

ScenarioSpec sharded_spec(std::uint32_t shards) {
  ScenarioSpec spec = ScenarioSpec::from_cli(
      Cli({"n=128", "trials=2", "items=1", "searches=3", "batches=1",
           "age-taus=1"}));
  spec.shards = shards;
  return spec;
}

void expect_identical_results(const StoreSearchResult& a,
                              const StoreSearchResult& b) {
  EXPECT_EQ(a.searches, b.searches);
  EXPECT_EQ(a.located, b.located);
  EXPECT_EQ(a.fetched, b.fetched);
  EXPECT_EQ(a.censored, b.censored);
  EXPECT_DOUBLE_EQ(a.locate_rounds.mean(), b.locate_rounds.mean());
  EXPECT_DOUBLE_EQ(a.copies_alive.mean(), b.copies_alive.mean());
  EXPECT_DOUBLE_EQ(a.availability.mean(), b.availability.mean());
  EXPECT_DOUBLE_EQ(a.bits_node_round_max.mean(), b.bits_node_round_max.mean());
  EXPECT_DOUBLE_EQ(a.bits_node_round_mean.mean(),
                   b.bits_node_round_mean.mean());
}

TEST(ShardedBaselines, EveryStackIsShardCountInvariantThroughTheRunner) {
  // flooding / k-walker / sqrt-replication / chord=net all run their round
  // work and message handlers on the shard lanes. All must be S-invariant
  // end to end through the nested Runner.
  for (const char* protocol :
       {"flooding", "k-walker", "sqrt-replication", "chord"}) {
    ScenarioSpec base = ScenarioSpec::from_cli(
        Cli({"n=128", "trials=2", "items=1", "searches=3", "batches=1",
             "age-taus=1"}));
    base.protocol = protocol;
    ScenarioSpec s16 = base;
    s16.shards = 16;
    Runner serial(RunnerOptions{.threads = 1, .parallel = false});
    Runner nested(RunnerOptions{.threads = 4, .parallel = true});
    const StoreSearchResult a = serial.store_search(base);
    const StoreSearchResult b = nested.store_search(s16);
    EXPECT_GT(a.searches, 0u) << protocol;
    expect_identical_results(a, b);
  }
}

TEST(ShardedRunner, FullStackStoreSearchIsShardCountInvariant) {
  // End to end through Runner: serial unsharded vs 16 shards nested on the
  // trial pool. The paper stack's behavior (committees, landmarks, search)
  // all sits downstream of the soup's samples, so bit-identity here means
  // the whole round path is shard-invariant.
  Runner serial(RunnerOptions{.threads = 1, .parallel = false});
  Runner nested(RunnerOptions{.threads = 4, .parallel = true});
  const StoreSearchResult a = serial.store_search(sharded_spec(1));
  const StoreSearchResult b = nested.store_search(sharded_spec(16));
  EXPECT_GT(a.searches, 0u);
  expect_identical_results(a, b);
}

TEST(KvWorkload, RunsAndIsDeterministic) {
  ScenarioSpec spec = sharded_spec(1);
  spec.workload_kind = "kv";
  const StoreSearchResult a = run_store_search_trial(spec);
  const StoreSearchResult b = run_store_search_trial(spec);
  EXPECT_GT(a.searches, 0u);
  EXPECT_GT(a.fetched, 0u) << "kv gets never completed";
  EXPECT_EQ(a.located, a.fetched) << "kv reports verified fetches only";
  expect_identical_results(a, b);
}

TEST(KvWorkload, ShardCountInvariantThroughTheRunner) {
  ScenarioSpec s1 = sharded_spec(1);
  s1.workload_kind = "kv";
  ScenarioSpec s16 = sharded_spec(16);
  s16.workload_kind = "kv";
  Runner serial(RunnerOptions{.threads = 1, .parallel = false});
  Runner nested(RunnerOptions{.threads = 4, .parallel = true});
  expect_identical_results(serial.store_search(s1), nested.store_search(s16));
}

TEST(KvWorkload, RejectsBaselineStacks) {
  ScenarioSpec spec = sharded_spec(1);
  spec.workload_kind = "kv";
  spec.protocol = "flooding";
  EXPECT_THROW((void)run_store_search_trial(spec), std::invalid_argument);
}

/// Run a traced mixed stack (paper protocols + chord=net) and return the
/// raw bytes of every TraceEvent the collector drained, in drain order.
std::vector<std::uint8_t> traced_run_bytes(std::uint32_t shards,
                                           ThreadPool* pool) {
  SystemConfig cfg;
  cfg.sim.n = 160;
  cfg.sim.degree = 8;
  cfg.sim.seed = 77;
  cfg.sim.churn.kind = AdversaryKind::kUniform;
  cfg.sim.churn.absolute = cfg.sim.n / 24;
  cfg.sim.edge_dynamics = EdgeDynamics::kRewire;
  cfg.sim.shards = shards;
  auto mods = P2PSystem::paper_protocols(cfg);
  auto chord = std::make_unique<ChordNetProtocol>();
  ChordNetProtocol* chord_raw = chord.get();
  mods.push_back(std::move(chord));
  P2PSystem sys(cfg, std::move(mods));
  sys.set_shard_pool(pool);

  TraceCollector tc(cfg.sim.seed, /*sample_every=*/1);
  tc.bind(sys.network());
  sys.network().set_trace_collector(&tc);
  std::vector<std::uint8_t> bytes;
  tc.set_consumer([&bytes](Round, const TraceEvent* ev, std::size_t count) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(ev);
    bytes.insert(bytes.end(), p, p + count * sizeof(TraceEvent));
  });

  Rng workload(55);
  sys.run_rounds(sys.warmup_rounds());
  for (std::uint32_t i = 0; i < 2; ++i) {
    const ItemId item = 3000 + i;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const auto creator =
          static_cast<Vertex>(workload.next_below(cfg.sim.n));
      if (sys.store_item(creator, item)) break;
      sys.run_round();
    }
  }
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto v = static_cast<Vertex>(workload.next_below(cfg.sim.n));
    (void)chord_raw->put(v, 9000 + i, {1, 2, 3});
  }
  sys.run_rounds(sys.tau());
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto v = static_cast<Vertex>(workload.next_below(cfg.sim.n));
    (void)sys.search(v, 3000 + (i % 2));
    (void)chord_raw->get(v, 9000 + i);
  }
  sys.run_rounds(sys.search_timeout() + 4);
  sys.network().set_trace_collector(nullptr);
  return bytes;
}

TEST(TracedExport, EventStreamIsBitIdenticalAcrossShardCountsAndPools) {
  // The acceptance pin for sampled request tracing: the drained event
  // stream — ids, rounds, vertices, hop stamps, outcomes, ORDER — is a
  // pure function of the seed, byte for byte, for every shard count,
  // serial or pooled. Trace lanes merge at exactly the message-lane merge
  // points, so this inherits the engine's canonical order or fails loudly.
  ThreadPool pool(4);
  const auto s1 = traced_run_bytes(1, nullptr);
  ASSERT_FALSE(s1.empty())
      << "no trace events recorded: the invariance check is vacuous";
  const auto s3 = traced_run_bytes(3, &pool);
  const auto s16 = traced_run_bytes(16, &pool);
  EXPECT_EQ(s1, s3);
  EXPECT_EQ(s1, s16);
}

TEST(ScenarioSpec, ShardsAndWorkloadRoundTrip) {
  ScenarioSpec spec;
  spec.shards = 16;
  spec.workload_kind = "kv";
  const ScenarioSpec back = ScenarioSpec::from_cli(Cli(spec.to_key_values()));
  EXPECT_EQ(back.shards, 16u);
  EXPECT_EQ(back.workload_kind, "kv");
  EXPECT_EQ(back.system_config().sim.shards, 16u);
}

}  // namespace
}  // namespace churnstore
