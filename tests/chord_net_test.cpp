// Message-accurate Chord on the Network layer (baseline/chord_net):
// ring invariants under churn, verified end-to-end fetches, shard-count
// invariance, and chord=ring vs chord=net parity at zero churn.
#include "baseline/chord_net/chord_net.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/experiment.h"
#include "core/runner.h"
#include "core/stacks.h"
#include "core/system.h"
#include "storage/item.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace churnstore {
namespace {

SystemConfig chord_config(std::uint32_t n, std::int64_t churn_abs,
                          std::uint64_t seed, std::uint32_t shards = 1) {
  SystemConfig cfg;
  cfg.sim.n = n;
  cfg.sim.degree = 8;
  cfg.sim.seed = seed;
  cfg.sim.churn.kind =
      churn_abs > 0 ? AdversaryKind::kUniform : AdversaryKind::kNone;
  cfg.sim.churn.absolute = churn_abs;
  cfg.sim.edge_dynamics = EdgeDynamics::kRewire;
  cfg.sim.shards = shards;
  return cfg;
}

struct ChordSystem {
  P2PSystem sys;
  ChordNetProtocol* chord;
};

ChordSystem make_chord(const SystemConfig& cfg) {
  auto mod = std::make_unique<ChordNetProtocol>();
  ChordNetProtocol* raw = mod.get();
  std::vector<std::unique_ptr<Protocol>> mods;
  mods.push_back(std::move(mod));
  return ChordSystem{P2PSystem(cfg, std::move(mods)), raw};
}

TEST(ChordNet, ConvergedRingResolvesEveryLookupWithoutChurn) {
  auto [sys, chord] = make_chord(chord_config(256, 0, 5));
  sys.run_rounds(4);

  Rng rng(17);
  std::vector<ItemId> items;
  for (int i = 0; i < 4; ++i) {
    const ItemId item = mix64(900 + i) | 1;
    ASSERT_TRUE(
        chord->try_store(static_cast<Vertex>(rng.next_below(256)), item));
    items.push_back(item);
  }
  sys.run_rounds(20);
  for (const ItemId item : items) {
    EXPECT_GE(chord->copies_alive(item), 8u) << "replica set incomplete";
  }
  EXPECT_DOUBLE_EQ(chord->ring_consistency(), 1.0);
  EXPECT_EQ(chord->joined_count(), 256u);

  std::vector<std::uint64_t> sids;
  for (int i = 0; i < 12; ++i) {
    sids.push_back(chord->get(static_cast<Vertex>(rng.next_below(256)),
                              items[rng.next_below(items.size())]));
  }
  sys.run_rounds(chord->search_timeout());
  for (const std::uint64_t sid : sids) {
    const WorkloadOutcome out = chord->search_outcome(sid);
    EXPECT_TRUE(out.done);
    EXPECT_TRUE(out.fetched) << "zero-churn lookup failed";
  }
  // Routing cost: iterative Chord resolves in O(log n) hops.
  EXPECT_GT(chord->stats().searches_ok, 0u);
  EXPECT_LE(chord->stats().mean_hops(), 10.0) << "hops not logarithmic";
  EXPECT_EQ(chord->stats().searches_failed, 0u);
}

TEST(ChordNet, FetchedValuesMatchStoredBytesUnderChurn) {
  // The kv contract: a get returns the exact bytes the put stored, verified
  // against the content hash — under live churn.
  auto [sys, chord] = make_chord(chord_config(256, 3, 7));
  sys.run_rounds(12);

  Rng rng(23);
  std::vector<std::pair<ItemId, std::vector<std::uint8_t>>> stored;
  for (int i = 0; i < 6; ++i) {
    const ItemId item = mix64(7000 + i) | 1;
    std::vector<std::uint8_t> value(64 + static_cast<std::size_t>(i) * 17);
    for (std::size_t b = 0; b < value.size(); ++b) {
      value[b] = static_cast<std::uint8_t>(mix64(item + b));
    }
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto creator = static_cast<Vertex>(rng.next_below(256));
      if (chord->is_joined(creator)) {
        ASSERT_TRUE(chord->put(creator, item, value));
        stored.emplace_back(item, std::move(value));
        break;
      }
      sys.run_round();
    }
  }
  ASSERT_EQ(stored.size(), 6u);
  sys.run_rounds(40);  // age under churn

  std::vector<std::uint64_t> sids;
  for (const auto& [item, value] : stored) {
    sids.push_back(
        chord->get(static_cast<Vertex>(rng.next_below(256)), item));
  }
  sys.run_rounds(chord->search_timeout());

  std::size_t fetched = 0;
  for (std::size_t i = 0; i < sids.size(); ++i) {
    const ChordNetProtocol::SearchRec* rec = chord->record(sids[i]);
    ASSERT_NE(rec, nullptr);
    if (!rec->out.fetched) continue;
    ++fetched;
    EXPECT_EQ(rec->value, stored[i].second)
        << "fetched bytes differ from stored bytes for item " << i;
  }
  EXPECT_GE(fetched, 4u) << "too many fetches failed at mild churn";
}

TEST(ChordNet, RingRepairsAndServesLookupsAfterChurnRounds) {
  // k churn rounds at ~1.5% replacement per round: maintenance must keep
  // most of the ring joined, successor lists consistent, and lookups
  // succeeding — the structural invariants behind every cost table.
  auto [sys, chord] = make_chord(chord_config(256, 4, 11));
  Rng rng(31);
  std::vector<ItemId> items;
  sys.run_rounds(8);
  for (int i = 0; i < 4; ++i) {
    const ItemId item = mix64(3000 + i) | 1;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto creator = static_cast<Vertex>(rng.next_below(256));
      if (chord->try_store(creator, item)) {
        items.push_back(item);
        break;
      }
      sys.run_round();
    }
  }
  ASSERT_EQ(items.size(), 4u);
  sys.run_rounds(80);  // k churn rounds

  EXPECT_GE(chord->joined_count(), 150u) << "ring failed to re-absorb churn";
  EXPECT_GE(chord->ring_consistency(), 0.6)
      << "successor lists inconsistent after churn";

  std::vector<std::uint64_t> sids;
  for (int i = 0; i < 16; ++i) {
    sids.push_back(chord->get(static_cast<Vertex>(rng.next_below(256)),
                              items[rng.next_below(items.size())]));
  }
  sys.run_rounds(chord->search_timeout());
  std::uint64_t ok = 0, eligible = 0;
  for (const std::uint64_t sid : sids) {
    const WorkloadOutcome out = chord->search_outcome(sid);
    if (out.censored) continue;
    ++eligible;
    ok += out.fetched;
  }
  ASSERT_GT(eligible, 8u);
  EXPECT_GE(static_cast<double>(ok) / static_cast<double>(eligible), 0.5)
      << "lookup success collapsed at mild churn";
}

/// Everything observable from a chord=net run: Network metrics, protocol
/// counters, per-search outcomes, per-item god views. Bit-equality across
/// shard counts is the ShardContext contract.
struct ChordRun {
  std::uint64_t total_bits = 0, total_messages = 0, dropped = 0;
  std::uint64_t searches_ok = 0, searches_failed = 0, hop_messages = 0;
  std::uint64_t maintenance = 0, transfers = 0, joins = 0;
  std::uint64_t stores_ok = 0, stores_failed = 0;
  std::size_t joined = 0;
  double consistency = 0.0;
  std::vector<std::size_t> copies;
  std::vector<std::tuple<bool, bool, Round>> outcomes;
  double max_bits_mean = 0.0;
};

ChordRun run_chord_net(std::uint32_t n, std::uint32_t shards,
                       ThreadPool* pool) {
  SystemConfig cfg = chord_config(n, static_cast<std::int64_t>(n) / 48, 29,
                                  shards);
  auto built = make_chord(cfg);
  built.sys.set_shard_pool(pool);
  ChordNetProtocol* chord = built.chord;
  P2PSystem& sys = built.sys;

  Rng rng(41);
  sys.run_rounds(10);
  std::vector<ItemId> items;
  for (int i = 0; i < 3; ++i) {
    const ItemId item = mix64(5000 + i) | 1;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const auto creator = static_cast<Vertex>(rng.next_below(n));
      if (chord->try_store(creator, item)) {
        items.push_back(item);
        break;
      }
      sys.run_round();
    }
  }
  sys.run_rounds(30);
  std::vector<std::uint64_t> sids;
  for (int i = 0; i < 8 && !items.empty(); ++i) {
    sids.push_back(chord->get(static_cast<Vertex>(rng.next_below(n)),
                              items[rng.next_below(items.size())]));
  }
  sys.run_rounds(chord->search_timeout());

  ChordRun run;
  const Metrics& m = sys.metrics();
  run.total_bits = m.total_bits();
  run.total_messages = m.total_messages();
  run.dropped = m.dropped_messages();
  const auto& st = chord->stats();
  run.searches_ok = st.searches_ok;
  run.searches_failed = st.searches_failed;
  run.hop_messages = st.hop_messages;
  run.maintenance = st.maintenance_messages;
  run.transfers = st.transfers;
  run.joins = st.joins_completed;
  run.stores_ok = st.stores_ok;
  run.stores_failed = st.stores_failed;
  run.joined = chord->joined_count();
  run.consistency = chord->ring_consistency();
  for (const ItemId item : items) run.copies.push_back(chord->copies_alive(item));
  for (const std::uint64_t sid : sids) {
    const WorkloadOutcome out = chord->search_outcome(sid);
    run.outcomes.emplace_back(out.located, out.fetched, out.fetched_round);
  }
  run.max_bits_mean = m.max_bits_per_node_round().mean();
  return run;
}

void expect_identical(const ChordRun& a, const ChordRun& b) {
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.searches_ok, b.searches_ok);
  EXPECT_EQ(a.searches_failed, b.searches_failed);
  EXPECT_EQ(a.hop_messages, b.hop_messages);
  EXPECT_EQ(a.maintenance, b.maintenance);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.stores_ok, b.stores_ok);
  EXPECT_EQ(a.stores_failed, b.stores_failed);
  EXPECT_EQ(a.joined, b.joined);
  EXPECT_DOUBLE_EQ(a.consistency, b.consistency);
  EXPECT_EQ(a.copies, b.copies);
  EXPECT_EQ(a.outcomes, b.outcomes) << "search outcomes diverged";
  EXPECT_DOUBLE_EQ(a.max_bits_mean, b.max_bits_mean);
}

TEST(ChordNetSharded, SInOneThreeSixteenIsBitIdentical) {
  // The whole protocol — maintenance ticks, semi-recursive routing, replica
  // leases, store acks — under churn, S in {1, 3, 16} with a real pool and
  // an uneven n. Sharding must be invisible.
  ThreadPool pool(4);
  const ChordRun s1 = run_chord_net(194, 1, nullptr);
  ASSERT_GT(s1.searches_ok, 0u) << "no lookup succeeded; test is vacuous";
  ASSERT_GT(s1.joins, 0u) << "no churn-driven joins exercised";
  const ChordRun s3 = run_chord_net(194, 3, &pool);
  const ChordRun s16 = run_chord_net(194, 16, &pool);
  expect_identical(s1, s3);
  expect_identical(s1, s16);
}

TEST(BitChargeConservation, ChordNetMessageTotalsMatchGolden) {
  // Golden totals for the chord=net message types (lookups with dead-hop
  // tails, stabilize replies carrying successor lists, notifies, fetch and
  // transfer payload blobs, store acks) on exactly the run_chord_net
  // config: size_bits() must stay storage-independent for the new wire
  // formats, like the paper-stack golden in sharded_engine_test.cpp.
  const ChordRun run = run_chord_net(194, 1, nullptr);
  EXPECT_EQ(run.total_bits, 45136064u);
  EXPECT_EQ(run.total_messages, 36688u);
  EXPECT_EQ(run.dropped, 3826u);
}

TEST(ChordNetParity, RingAndNetLookupSuccessAgreeAtZeroChurn) {
  // chord=ring (idealized routing) and chord=net (every hop a message) must
  // agree on WHAT succeeds at zero churn — both resolve every lookup — even
  // though only chord=net pays measured bits for it.
  for (const char* variant : {"ring", "net"}) {
    ScenarioSpec spec = ScenarioSpec::from_cli(
        Cli({"protocol=chord", "n=128", "trials=1", "items=2", "searches=6",
             "batches=1", "age-taus=1", "churn-mult=0"}));
    spec.extras["chord"] = variant;
    const StoreSearchResult res = run_store_search_trial(spec);
    EXPECT_GT(res.searches, 0u) << variant;
    EXPECT_DOUBLE_EQ(res.locate_rate(), 1.0)
        << "chord=" << variant << " failed lookups at zero churn";
    EXPECT_DOUBLE_EQ(res.availability.mean(), 1.0) << variant;
  }
}

TEST(ChordNetKvWorkload, VerifiedFetchesThroughRunnerAndShardInvariant) {
  // workload=kv over protocol=chord: puts carry payload bytes, gets route
  // through find_successor, fetched == hash-verified — and the whole trial
  // is deterministic and shard-count invariant through the Runner.
  // churn-mult well below the paper rate: at n=128 the default 0.5 means
  // ~5% replacement per round, which (correctly) collapses a DHT — here we
  // test the kv round-trip, not the collapse.
  ScenarioSpec s1 = ScenarioSpec::from_cli(
      Cli({"protocol=chord", "workload=kv", "n=128", "trials=2", "items=2",
           "searches=4", "batches=1", "age-taus=1", "churn-mult=0.1"}));
  ScenarioSpec s16 = s1;
  s16.shards = 16;
  Runner serial(RunnerOptions{.threads = 1, .parallel = false});
  Runner nested(RunnerOptions{.threads = 4, .parallel = true});
  const StoreSearchResult a = serial.store_search(s1);
  const StoreSearchResult b = nested.store_search(s16);
  EXPECT_GT(a.searches, 0u);
  EXPECT_GT(a.fetched, 0u) << "kv gets never completed over chord";
  EXPECT_EQ(a.located, a.fetched) << "chord kv reports verified fetches only";
  EXPECT_EQ(a.searches, b.searches);
  EXPECT_EQ(a.located, b.located);
  EXPECT_EQ(a.fetched, b.fetched);
  EXPECT_EQ(a.censored, b.censored);
  EXPECT_DOUBLE_EQ(a.availability.mean(), b.availability.mean());
  EXPECT_DOUBLE_EQ(a.bits_node_round_mean.mean(),
                   b.bits_node_round_mean.mean());
}

TEST(ChordNetStack, BuildStackSelectsVariants) {
  const SystemConfig cfg = chord_config(64, 0, 3);
  BuiltSystem net = build_stack("chord", cfg, {});
  EXPECT_NE(net.system->find_protocol<ChordNetProtocol>(), nullptr)
      << "chord=net must be the default";
  BuiltSystem ring = build_stack("chord", cfg, {{"chord", "ring"}});
  EXPECT_EQ(ring.system->find_protocol<ChordNetProtocol>(), nullptr);
  EXPECT_NE(ring.system->find_protocol("chord"), nullptr);
  EXPECT_THROW((void)build_stack("chord", cfg, {{"chord", "bogus"}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace churnstore
