#include "walk/sampler.h"

#include <gtest/gtest.h>

namespace churnstore {
namespace {

TEST(SampleBuffer, GroupsByRound) {
  SampleBuffer buf;
  buf.add(1, 100);
  buf.add(1, 101);
  buf.add(3, 102);
  EXPECT_EQ(buf.count_at(1), 2u);
  EXPECT_EQ(buf.count_at(2), 0u);
  EXPECT_EQ(buf.count_at(3), 1u);
  EXPECT_EQ(buf.total(), 3u);
  EXPECT_EQ(buf.at(1)[0], 100u);
  EXPECT_EQ(buf.at(3)[0], 102u);
}

TEST(SampleBuffer, PruneDropsOldGroups) {
  SampleBuffer buf;
  for (Round r = 1; r <= 10; ++r) buf.add(r, static_cast<PeerId>(r));
  buf.prune(6);
  EXPECT_EQ(buf.count_at(5), 0u);
  EXPECT_EQ(buf.count_at(6), 1u);
  EXPECT_EQ(buf.total(), 5u);
}

TEST(SampleBuffer, RecentDistinctNewestFirst) {
  SampleBuffer buf;
  buf.add(1, 10);
  buf.add(2, 20);
  buf.add(3, 30);
  const auto got = buf.recent_distinct(2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 30u);
  EXPECT_EQ(got[1], 20u);
}

TEST(SampleBuffer, RecentDistinctDeduplicates) {
  SampleBuffer buf;
  buf.add(1, 7);
  buf.add(2, 7);
  buf.add(2, 8);
  buf.add(3, 7);
  const auto got = buf.recent_distinct(0);  // 0 = all
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 7u);
  EXPECT_EQ(got[1], 8u);
}

TEST(SampleBuffer, RecentDistinctHonorsExclusions) {
  SampleBuffer buf;
  buf.add(1, 1);
  buf.add(1, 2);
  buf.add(1, 3);
  const auto got = buf.recent_distinct(0, {2});
  ASSERT_EQ(got.size(), 2u);
  for (const auto p : got) EXPECT_NE(p, 2u);
}

TEST(SampleBuffer, ClearEmpties) {
  SampleBuffer buf;
  buf.add(1, 1);
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.total(), 0u);
  EXPECT_TRUE(buf.recent_distinct(5).empty());
}

TEST(SampleBuffer, AnnouncedCohortEqualsUnannouncedAdds) {
  // The engine pre-announces cohort sizes (one exact-size block per round);
  // the serial add() path grows by doubling. Same observable buffer.
  SampleBuffer announced;
  announced.announce(5);
  for (PeerId p = 10; p < 15; ++p) announced.add(7, p);
  announced.announce(2);
  for (PeerId p = 20; p < 22; ++p) announced.add(8, p);

  SampleBuffer plain;
  for (PeerId p = 10; p < 15; ++p) plain.add(7, p);
  for (PeerId p = 20; p < 22; ++p) plain.add(8, p);

  EXPECT_TRUE(announced == plain);
  EXPECT_EQ(announced.count_at(7), 5u);
  EXPECT_EQ(announced.at(8)[1], 21u);
}

TEST(SampleBuffer, ArenaBoundBufferReturnsBlocksOnPruneAndClear) {
  Arena arena;
  {
    SampleBuffer buf;
    buf.set_arena(&arena);
    for (Round r = 1; r <= 8; ++r) {
      buf.announce(3);
      for (PeerId p = 0; p < 3; ++p) buf.add(r, 100 * r + p);
    }
    EXPECT_GT(arena.bytes_in_use(), 0u);
    buf.prune(5);
    EXPECT_EQ(buf.total(), 4 * 3u);
    buf.clear();
    EXPECT_TRUE(buf.empty());
    // Only the group directory block may remain live after clear().
  }
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_GT(arena.reused_blocks() + arena.fresh_blocks(), 0u);
}

TEST(SampleBuffer, CopiesAreHeapBackedDeepAndEqual) {
  Arena arena;
  SampleBuffer buf;
  buf.set_arena(&arena);
  for (Round r = 1; r <= 4; ++r) {
    for (PeerId p = 0; p < 4; ++p) buf.add(r, 10 * r + p);
  }
  const SampleBuffer copy(buf);  // deep, heap-backed: outlives the arena
  EXPECT_TRUE(copy == buf);
  buf.clear();
  EXPECT_FALSE(copy == buf);
  EXPECT_EQ(copy.count_at(3), 4u);
  EXPECT_EQ(copy.at(2)[1], 21u);
}

TEST(SampleBuffer, EqualityIsOrderSensitive) {
  SampleBuffer a, b;
  a.add(1, 5);
  a.add(1, 6);
  b.add(1, 6);
  b.add(1, 5);
  EXPECT_FALSE(a == b) << "per-group insertion order must be compared";
}

TEST(SampleBuffer, LongRunningWindowSteadyState) {
  // Rolling window: one round in, one pruned out, hundreds of times — the
  // compacting directory must keep every query exact throughout.
  SampleBuffer buf;
  const Round window = 16;
  for (Round r = 1; r <= 500; ++r) {
    buf.announce(2);
    buf.add(r, static_cast<PeerId>(2 * r));
    buf.add(r, static_cast<PeerId>(2 * r + 1));
    buf.prune(r - window + 1);
  }
  EXPECT_EQ(buf.total(), static_cast<std::size_t>(2 * window));
  EXPECT_EQ(buf.count_at(500), 2u);
  EXPECT_EQ(buf.count_at(500 - window), 0u);
  EXPECT_EQ(buf.at(490)[0], 980u);
}

TEST(ShardedArrivalsCohorts, ApplyMergesInCanonicalSourceOrder) {
  ShardedArrivals arr;
  arr.reset(/*src_shards=*/3, /*dst_buckets=*/1);
  std::vector<SampleBuffer> buffers(4);
  // Same destination vertex fed from three source shards; canonical order
  // is ascending source shard, staging order within a shard.
  arr.stage(2, 0, /*dst=*/1, /*source=*/300);
  arr.stage(0, 0, 1, 100);
  arr.stage(0, 0, 1, 101);
  arr.stage(1, 0, 1, 200);
  EXPECT_EQ(arr.staged_total(), 4u);
  arr.apply_to(0, 0, /*vbegin=*/0, /*vend=*/4, /*r=*/9, buffers);
  ASSERT_EQ(buffers[1].count_at(9), 4u);
  const SampleView got = buffers[1].at(9);
  EXPECT_EQ(got[0], 100u);
  EXPECT_EQ(got[1], 101u);
  EXPECT_EQ(got[2], 200u);
  EXPECT_EQ(got[3], 300u);
}

TEST(ShardedArrivalsCohorts, StraddleBucketAppliedByBothSidesFilesOnce) {
  // A destination bucket that straddles a shard boundary is applied by
  // both neighboring dst tasks; the [vbegin, vend) filter must give each
  // vertex to exactly one of them, preserving canonical order.
  ShardedArrivals arr;
  arr.reset(/*src_shards=*/2, /*dst_buckets=*/2);
  std::vector<SampleBuffer> buffers(8);
  // Bucket 0 covers vertices [0,4), bucket 1 covers [4,8); the shard
  // split is at vertex 2, mid-bucket-0.
  arr.stage(1, 0, /*dst=*/1, /*source=*/500);
  arr.stage(0, 0, 1, 400);
  arr.stage(0, 0, 3, 401);
  arr.stage(1, 1, 5, 501);
  EXPECT_EQ(arr.staged_total(), 4u);
  // Left shard owns [0,2): sees bucket 0 only, files vertex 1 only.
  arr.apply_to(0, 0, /*vbegin=*/0, /*vend=*/2, /*r=*/3, buffers);
  // Right shard owns [2,8): sees buckets 0 and 1, skips vertex 1.
  arr.apply_to(0, 1, /*vbegin=*/2, /*vend=*/8, /*r=*/3, buffers);
  ASSERT_EQ(buffers[1].count_at(3), 2u);
  EXPECT_EQ(buffers[1].at(3)[0], 400u);
  EXPECT_EQ(buffers[1].at(3)[1], 500u);
  ASSERT_EQ(buffers[3].count_at(3), 1u);
  EXPECT_EQ(buffers[3].at(3)[0], 401u);
  ASSERT_EQ(buffers[5].count_at(3), 1u);
  EXPECT_EQ(buffers[5].at(3)[0], 501u);
}

}  // namespace
}  // namespace churnstore
