#include "walk/sampler.h"

#include <gtest/gtest.h>

namespace churnstore {
namespace {

TEST(SampleBuffer, GroupsByRound) {
  SampleBuffer buf;
  buf.add(1, 100);
  buf.add(1, 101);
  buf.add(3, 102);
  EXPECT_EQ(buf.count_at(1), 2u);
  EXPECT_EQ(buf.count_at(2), 0u);
  EXPECT_EQ(buf.count_at(3), 1u);
  EXPECT_EQ(buf.total(), 3u);
  EXPECT_EQ(buf.at(1)[0], 100u);
  EXPECT_EQ(buf.at(3)[0], 102u);
}

TEST(SampleBuffer, PruneDropsOldGroups) {
  SampleBuffer buf;
  for (Round r = 1; r <= 10; ++r) buf.add(r, static_cast<PeerId>(r));
  buf.prune(6);
  EXPECT_EQ(buf.count_at(5), 0u);
  EXPECT_EQ(buf.count_at(6), 1u);
  EXPECT_EQ(buf.total(), 5u);
}

TEST(SampleBuffer, RecentDistinctNewestFirst) {
  SampleBuffer buf;
  buf.add(1, 10);
  buf.add(2, 20);
  buf.add(3, 30);
  const auto got = buf.recent_distinct(2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 30u);
  EXPECT_EQ(got[1], 20u);
}

TEST(SampleBuffer, RecentDistinctDeduplicates) {
  SampleBuffer buf;
  buf.add(1, 7);
  buf.add(2, 7);
  buf.add(2, 8);
  buf.add(3, 7);
  const auto got = buf.recent_distinct(0);  // 0 = all
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 7u);
  EXPECT_EQ(got[1], 8u);
}

TEST(SampleBuffer, RecentDistinctHonorsExclusions) {
  SampleBuffer buf;
  buf.add(1, 1);
  buf.add(1, 2);
  buf.add(1, 3);
  const auto got = buf.recent_distinct(0, {2});
  ASSERT_EQ(got.size(), 2u);
  for (const auto p : got) EXPECT_NE(p, 2u);
}

TEST(SampleBuffer, ClearEmpties) {
  SampleBuffer buf;
  buf.add(1, 1);
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.total(), 0u);
  EXPECT_TRUE(buf.recent_distinct(5).empty());
}

}  // namespace
}  // namespace churnstore
