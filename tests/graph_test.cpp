#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/properties.h"
#include "graph/regular_generator.h"
#include "graph/rewirer.h"
#include "util/rng.h"

namespace churnstore {
namespace {

/// Builds the d=2 cycle 0-1-2-...-n-1-0 explicitly.
RegularGraph make_cycle(Vertex n) {
  RegularGraph g(n, 2);
  for (Vertex v = 0; v < n; ++v) {
    g.set_edge(v, 1, (v + 1) % n, 0);
  }
  return g;
}

TEST(RegularGraph, CycleInvariantsAndProperties) {
  const auto g = make_cycle(10);
  EXPECT_TRUE(g.check_invariants());
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));  // even cycle
  EXPECT_EQ(eccentricity(g, 0), 5u);
  EXPECT_EQ(diameter_lower_bound(g), 5u);

  const auto odd = make_cycle(9);
  EXPECT_FALSE(is_bipartite(odd));  // odd cycle
}

TEST(RegularGraph, SwapEdgesPreservesInvariants) {
  auto g = make_cycle(12);
  // Swap edges {0,1} and {6,7} -> {0,7} and {6,1}.
  const std::size_t s1 = g.slot(0, 1);
  const std::size_t s2 = g.slot(6, 1);
  ASSERT_EQ(g.slot_target(s1), 1u);
  ASSERT_EQ(g.slot_target(s2), 7u);
  g.swap_edges(s1, s2);
  EXPECT_TRUE(g.check_invariants());
  EXPECT_TRUE(g.has_edge(0, 7));
  EXPECT_TRUE(g.has_edge(6, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(6, 7));
}

TEST(Generator, RejectsInvalidParameters) {
  Rng rng(1);
  EXPECT_THROW(random_regular_graph(5, 0, rng), std::invalid_argument);
  EXPECT_THROW(random_regular_graph(4, 4, rng), std::invalid_argument);
  EXPECT_THROW(random_regular_graph(5, 3, rng), std::invalid_argument);  // odd nd
}

class GeneratorProperty
    : public ::testing::TestWithParam<std::tuple<Vertex, std::uint32_t, int>> {};

TEST_P(GeneratorProperty, ProducesValidConnectedNonBipartiteRegularGraph) {
  const auto [n, d, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const auto g = random_regular_graph(n, d, rng);
  EXPECT_EQ(g.n(), n);
  EXPECT_EQ(g.degree(), d);
  EXPECT_TRUE(g.check_invariants());
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(is_bipartite(g));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeneratorProperty,
    ::testing::Values(std::tuple{16u, 4u, 1}, std::tuple{64u, 3u, 2},
                      std::tuple{64u, 8u, 3}, std::tuple{256u, 8u, 4},
                      std::tuple{1000u, 6u, 5}, std::tuple{2048u, 8u, 6},
                      std::tuple{9u, 8u, 7} /* n = d + 1: complete graph */));

TEST(Generator, DifferentSeedsGiveDifferentGraphs) {
  Rng r1(100), r2(200);
  const auto a = random_regular_graph(128, 6, r1);
  const auto b = random_regular_graph(128, 6, r2);
  int same = 0, total = 0;
  for (Vertex v = 0; v < 128; ++v) {
    for (std::uint32_t i = 0; i < 6; ++i) {
      ++total;
      same += b.has_edge(v, a.neighbor(v, i));
    }
  }
  EXPECT_LT(same, total / 2);
}

TEST(Rewirer, PreservesInvariantsOverManyRounds) {
  Rng rng(42);
  auto g = random_regular_graph(256, 8, rng);
  Rewirer rw(Rewirer::Options{.swaps_per_round = 64,
                              .connectivity_check_period = 16},
             rng.fork(1));
  for (int round = 0; round < 200; ++round) {
    rw.apply(g);
  }
  EXPECT_TRUE(g.check_invariants());
  EXPECT_TRUE(is_connected(g));
  EXPECT_GT(rw.total_swaps(), 1000u);
}

TEST(Rewirer, ActuallyChangesEdges) {
  Rng rng(43);
  const auto original = random_regular_graph(128, 8, rng);
  auto g = original;
  Rewirer rw(Rewirer::Options{.swaps_per_round = 128,
                              .connectivity_check_period = 0},
             rng.fork(2));
  for (int round = 0; round < 20; ++round) rw.apply(g);
  int changed = 0;
  for (Vertex v = 0; v < 128; ++v)
    for (std::uint32_t i = 0; i < 8; ++i)
      changed += !original.has_edge(v, g.neighbor(v, i));
  EXPECT_GT(changed, 100);
}

TEST(Rewirer, ZeroSwapsIsNoOp) {
  Rng rng(44);
  const auto original = random_regular_graph(64, 4, rng);
  auto g = original;
  Rewirer rw(Rewirer::Options{.swaps_per_round = 0}, rng.fork(3));
  EXPECT_EQ(rw.apply(g), 0u);
  for (Vertex v = 0; v < 64; ++v)
    for (std::uint32_t i = 0; i < 4; ++i)
      EXPECT_EQ(g.neighbor(v, i), original.neighbor(v, i));
}

TEST(Properties, DisconnectedGraphDetected) {
  // Two disjoint 4-cycles: 2-regular, disconnected, bipartite.
  RegularGraph g(8, 2);
  for (Vertex v = 0; v < 4; ++v) g.set_edge(v, 1, (v + 1) % 4, 0);
  for (Vertex v = 4; v < 8; ++v) g.set_edge(v, 1, 4 + (v + 1) % 4, 0);
  EXPECT_TRUE(g.check_invariants());
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));
}

}  // namespace
}  // namespace churnstore
