#include "core/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/experiment.h"

namespace churnstore {
namespace {

ScenarioSpec small_spec(const std::string& protocol) {
  ScenarioSpec spec = ScenarioSpec::from_cli(
      Cli({"n=128", "trials=3", "items=1", "searches=3", "batches=1",
           "age-taus=1"}));
  spec.protocol = protocol;
  return spec;
}

void expect_identical(const StoreSearchResult& a, const StoreSearchResult& b) {
  EXPECT_EQ(a.searches, b.searches);
  EXPECT_EQ(a.located, b.located);
  EXPECT_EQ(a.fetched, b.fetched);
  EXPECT_EQ(a.censored, b.censored);
  EXPECT_EQ(a.trial_count, b.trial_count);
  EXPECT_EQ(a.locate_rounds.count(), b.locate_rounds.count());
  EXPECT_DOUBLE_EQ(a.locate_rounds.mean(), b.locate_rounds.mean());
  EXPECT_DOUBLE_EQ(a.fetch_rounds.mean(), b.fetch_rounds.mean());
  EXPECT_DOUBLE_EQ(a.copies_alive.mean(), b.copies_alive.mean());
  EXPECT_EQ(a.availability.count(), b.availability.count());
  EXPECT_DOUBLE_EQ(a.availability.mean(), b.availability.mean());
  EXPECT_DOUBLE_EQ(a.availability.ci95_halfwidth(),
                   b.availability.ci95_halfwidth());
  EXPECT_DOUBLE_EQ(a.bits_node_round_max.mean(), b.bits_node_round_max.mean());
  EXPECT_DOUBLE_EQ(a.bits_node_round_mean.mean(),
                   b.bits_node_round_mean.mean());
}

TEST(Runner, TrialSeedIsPureAndDiverse) {
  EXPECT_EQ(Runner::trial_seed(1, 0), Runner::trial_seed(1, 0));
  EXPECT_NE(Runner::trial_seed(1, 0), Runner::trial_seed(1, 1));
  EXPECT_NE(Runner::trial_seed(1, 0), Runner::trial_seed(2, 0));
}

TEST(Runner, MapTrialsPreservesTrialOrder) {
  Runner parallel(RunnerOptions{.threads = 4, .parallel = true});
  const auto out = parallel.map_trials<std::uint32_t>(
      64, [](std::uint32_t t) { return t * t; });
  ASSERT_EQ(out.size(), 64u);
  for (std::uint32_t t = 0; t < 64; ++t) EXPECT_EQ(out[t], t * t);
}

TEST(Runner, MapTrialsActuallyRunsConcurrently) {
  Runner runner(RunnerOptions{.threads = 4, .parallel = true});
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  runner.map_trials<int>(8, [&](std::uint32_t) {
    const int now = ++inside;
    int expect = peak.load();
    while (now > expect && !peak.compare_exchange_weak(expect, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    --inside;
    return 0;
  });
  EXPECT_GT(peak.load(), 1) << "trials never overlapped";
}

TEST(Runner, SerialAndParallelStoreSearchAreBitIdentical) {
  const ScenarioSpec spec = small_spec("churnstore");
  Runner serial(RunnerOptions{.threads = 1, .parallel = false});
  Runner parallel(RunnerOptions{.threads = 4, .parallel = true});
  const StoreSearchResult a = serial.store_search(spec);
  const StoreSearchResult b = parallel.store_search(spec);
  EXPECT_GT(a.searches, 0u);
  expect_identical(a, b);
}

TEST(Runner, SerialAndParallelAgreeForBaselineStack) {
  const ScenarioSpec spec = small_spec("sqrt-replication");
  Runner serial(RunnerOptions{.threads = 1, .parallel = false});
  Runner parallel(RunnerOptions{.threads = 4, .parallel = true});
  expect_identical(serial.store_search(spec), parallel.store_search(spec));
}

TEST(Runner, LegacyTrialsEntryPointIsDeterministic) {
  SystemConfig cfg = default_system_config(128, 3);
  cfg.sim.churn.kind = AdversaryKind::kNone;
  StoreSearchOptions opts;
  opts.items = 1;
  opts.searchers_per_batch = 3;
  opts.batches = 1;
  const auto a = run_store_search_trials(cfg, opts, 3);
  const auto b = run_store_search_trials(cfg, opts, 3);
  expect_identical(a, b);
  EXPECT_EQ(a.trial_count, 3u);
}

TEST(Runner, OptionsComeFromSpec) {
  ScenarioSpec spec;
  spec.threads = 3;
  spec.parallel = false;
  const Runner runner(spec);
  EXPECT_EQ(runner.options().threads, 3u);
  EXPECT_FALSE(runner.options().parallel);
}

}  // namespace
}  // namespace churnstore
