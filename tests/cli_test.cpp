#include "util/cli.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace churnstore {
namespace {

TEST(Cli, ParsesEqualsForm) {
  Cli cli({"--n=1024", "--rate=2.5", "--verbose=true"});
  EXPECT_EQ(cli.get_int("n", 0), 1024);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 2.5);
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, ParsesSpaceForm) {
  Cli cli({"--n", "512", "--name", "soup"});
  EXPECT_EQ(cli.get_int("n", 0), 512);
  EXPECT_EQ(cli.get("name", ""), "soup");
}

TEST(Cli, BareFlagIsTrue) {
  Cli cli({"--fast", "--n=4"});
  EXPECT_TRUE(cli.get_bool("fast", false));
  EXPECT_EQ(cli.get_int("n", 0), 4);
}

TEST(Cli, FallbacksWhenMissing) {
  Cli cli({});
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get("s", "dflt"), "dflt");
  EXPECT_FALSE(cli.has("n"));
}

TEST(Cli, IntListParsing) {
  Cli cli({"--sizes=256,512,1024"});
  const auto v = cli.get_int_list("sizes", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 256);
  EXPECT_EQ(v[1], 512);
  EXPECT_EQ(v[2], 1024);
}

TEST(Cli, IntListFallback) {
  Cli cli({});
  const auto v = cli.get_int_list("sizes", {1, 2});
  ASSERT_EQ(v.size(), 2u);
}

TEST(Cli, PositionalArguments) {
  Cli cli({"run", "--n=2", "fast"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "run");
  EXPECT_EQ(cli.positional()[1], "fast");
}

TEST(Cli, EnvironmentFallback) {
  ::setenv("CHURNSTORE_TEST_KNOB", "99", 1);
  Cli cli({});
  EXPECT_EQ(cli.get_int("test-knob", 0), 99);
  EXPECT_TRUE(cli.has("test-knob"));
  ::unsetenv("CHURNSTORE_TEST_KNOB");
}

TEST(Cli, ExplicitFlagBeatsEnvironment) {
  ::setenv("CHURNSTORE_TEST_KNOB", "99", 1);
  Cli cli({"--test-knob=5"});
  EXPECT_EQ(cli.get_int("test-knob", 0), 5);
  ::unsetenv("CHURNSTORE_TEST_KNOB");
}

}  // namespace
}  // namespace churnstore
