// util/perf_counters.h — perf_event_open wrapper, graceful-degrade contract.
//
// The counters are measurement plumbing, not engine logic: the one property
// the engine (and CI) relies on is that a host without a PMU, a denied
// perf_event_open, or a non-Linux build never crashes, never blocks, and
// never reports garbage as if it were a measurement. The forced-unavailable
// hook lets us pin that path deterministically even on hosts where the PMU
// happens to work.
#include "util/perf_counters.h"

#include <gtest/gtest.h>

namespace churnstore {
namespace {

/// RAII reset so a failing assertion can't leak the forced state into
/// other tests in this binary.
struct ForceUnavailableGuard {
  explicit ForceUnavailableGuard(bool on) {
    PerfCounters::force_unavailable_for_testing(on);
  }
  ~ForceUnavailableGuard() { PerfCounters::force_unavailable_for_testing(false); }
};

TEST(PerfCounters, ForcedUnavailableDegradesGracefully) {
  ForceUnavailableGuard guard(true);
  PerfCounters pc;
  EXPECT_FALSE(pc.available());
  // The full lifecycle must be inert, not an error path.
  pc.start();
  pc.stop();
  const PerfCounters::Values v = pc.read();
  EXPECT_FALSE(v.any());
  EXPECT_FALSE(v.cycles_ok);
  EXPECT_FALSE(v.instructions_ok);
  EXPECT_FALSE(v.llc_misses_ok);
  EXPECT_FALSE(v.dtlb_misses_ok);
  EXPECT_EQ(v.cycles, 0u);
  EXPECT_EQ(v.instructions, 0u);
  EXPECT_EQ(v.llc_misses, 0u);
  EXPECT_EQ(v.dtlb_misses, 0u);
}

TEST(PerfCounters, RepeatedLifecyclesStayInertWhenUnavailable) {
  ForceUnavailableGuard guard(true);
  for (int i = 0; i < 3; ++i) {
    PerfCounters pc;
    pc.start();
    pc.stop();
    EXPECT_FALSE(pc.read().any());
  }
}

TEST(PerfCounters, NaturalConstructionIsConsistent) {
  // No forcing: on a PMU-less host (this repo's CI included) every counter
  // degrades; on real hardware some subset opens. Either way the ok flags
  // and available() must agree, and a counter that did not open must
  // report a zero value rather than stack garbage.
  PerfCounters pc;
  pc.start();
  // A little work so an available cycle counter has something to count.
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) acc += i * i;
  volatile std::uint64_t sink = acc;
  (void)sink;
  pc.stop();
  const PerfCounters::Values v = pc.read();
  if (!pc.available()) {
    // No fd opened -> no counter may claim a reading.
    EXPECT_FALSE(v.any());
  }
  if (!v.cycles_ok) {
    EXPECT_EQ(v.cycles, 0u);
  } else {
    EXPECT_GT(v.cycles, 0u);
  }
  if (!v.instructions_ok) {
    EXPECT_EQ(v.instructions, 0u);
  }
  if (!v.llc_misses_ok) {
    EXPECT_EQ(v.llc_misses, 0u);
  }
  if (!v.dtlb_misses_ok) {
    EXPECT_EQ(v.dtlb_misses, 0u);
  }
}

}  // namespace
}  // namespace churnstore
